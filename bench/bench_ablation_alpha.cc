// Ablation: the safety factor alpha (Sec. 3.2 sets alpha = 3).
//
// Sweeps the threshold inflation and measures, on the BERT mini: (i) the honest-run
// false-positive rate (fresh inputs, cross-device) and (ii) the detection rate for
// injected perturbations of several magnitudes. The trade-off the paper's choice
// navigates: alpha too small -> benign FP disputes; alpha too large -> small
// injections slip past the search-time checks.

#include <cstdio>

#include "bench/bench_common.h"

using namespace tao;
using namespace tao::bench;

namespace {

// Detection rate: fraction of perturbed runs whose *output-node* check (the dispute
// trigger) fires under the scaled thresholds.
double DetectionRate(const Model& model, const ThresholdSet& thresholds, double scale,
                     float magnitude, int trials, uint64_t seed) {
  const ThresholdSet scaled = thresholds.Scaled(scale);
  const Graph& graph = *model.graph;
  const Executor proposer(graph, DeviceRegistry::ByName("H100"));
  const Executor challenger(graph, DeviceRegistry::ByName("RTX4090"));
  Rng rng(seed);
  int detected = 0;
  for (int t = 0; t < trials; ++t) {
    const std::vector<Tensor> input = model.sample_input(rng);
    const NodeId site =
        graph.op_nodes()[rng.NextBounded(static_cast<uint64_t>(graph.num_ops() - 1))];
    Rng delta_rng(rng.NextU64());
    const Tensor delta = Tensor::Randn(graph.node(site).shape, delta_rng, magnitude);
    const ExecutionTrace bad = proposer.RunPerturbed(input, {{site, delta}});
    const ExecutionTrace ref = challenger.Run(input);
    if (scaled.Exceeds(graph.output(), bad.value(graph.output()),
                       ref.value(graph.output()))) {
      ++detected;
    }
  }
  return static_cast<double>(detected) / trials;
}

}  // namespace

int main() {
  std::printf("=== Ablation: threshold safety factor alpha ===\n\n");
  const Model model = BuildBertMini();
  const Calibration calibration = CalibrateModel(model, /*samples=*/8);
  const ThresholdSet thresholds = calibration.MakeThresholds(1.0);  // base envelope

  TablePrinter table({"alpha", "honest FP rate", "detect @1e-3", "detect @1e-2",
                      "detect @5e-2"});
  for (const double alpha : {0.5, 1.0, 2.0, 3.0, 5.0, 10.0}) {
    const double fp = HonestFalsePositiveRate(model, thresholds, alpha, 16, 0xab1a);
    const double d3 = DetectionRate(model, thresholds, alpha, 1e-3f, 10, 0xd3);
    const double d2 = DetectionRate(model, thresholds, alpha, 1e-2f, 10, 0xd2);
    const double d1 = DetectionRate(model, thresholds, alpha, 5e-2f, 10, 0xd1);
    table.AddRow({TablePrinter::Fixed(alpha, 1), TablePrinter::Pct(fp, 1),
                  TablePrinter::Pct(d3, 0), TablePrinter::Pct(d2, 0),
                  TablePrinter::Pct(d1, 0)});
    std::printf("alpha=%.1f done\n", alpha);
  }
  std::printf("\n");
  table.Print();
  std::printf("\nNote: detection here is the Phase-1 output-node trigger only; sub-\n"
              "threshold injections that survive it are exactly the admissible set the\n"
              "attack study (Table 2) shows cannot flip decisions. alpha = 3 keeps\n"
              "honest FP at 0 while still detecting meaningful injections.\n");
  return 0;
}
