// Sec. 5.5 economics: maps the feasible S_slash region (L, D_p] across the
// supervision and error-rate knobs, verifying the incentive constraints (Eq. 17-25)
// and the non-emptiness condition. Regenerates the analysis backing the paper's
// economic-soundness claims.

#include <cstdio>

#include "src/protocol/economics.h"
#include "src/util/table.h"

using namespace tao;

int main() {
  std::printf("=== Sec. 5.5: feasible slash region and incentive constraints ===\n\n");

  // Sweep 1: detection intensity (phi + phi_ch) vs the L bounds.
  std::printf("L bounds vs total supervision probability (eps1=0.01, eps2=0):\n");
  TablePrinter sweep1({"phi+phi_ch", "d", "L1 (cheat deter)", "L2 (challenge IR)",
                       "L3 (committee IR)", "L", "feasible @ D_p=10"});
  for (const double total : {0.02, 0.05, 0.10, 0.15, 0.25, 0.50}) {
    EconomicParams params;
    params.audit_prob = total / 2.0;
    params.challenge_prob = total / 2.0;
    const FeasibleRegion region = ComputeFeasibleRegion(params);
    sweep1.AddRow({TablePrinter::Fixed(total, 2),
                   TablePrinter::Fixed(DetectionProbability(params), 3),
                   TablePrinter::Fixed(region.l1, 2), TablePrinter::Fixed(region.l2, 2),
                   TablePrinter::Fixed(region.l3, 2), TablePrinter::Fixed(region.lower, 2),
                   region.non_empty ? "yes" : "no"});
  }
  sweep1.Print();

  // Sweep 2: tolerance-induced false negatives eps1 (fraud hidden inside the
  // acceptance region) vs required slash.
  std::printf("\nL vs false-negative rate eps1 (phi=0.05, phi_ch=0.10):\n");
  TablePrinter sweep2({"eps1", "d", "L", "S_slash=6 IC?"});
  for (const double eps1 : {0.0, 0.01, 0.05, 0.1, 0.25, 0.5}) {
    EconomicParams params;
    params.false_negative = eps1;
    const FeasibleRegion region = ComputeFeasibleRegion(params);
    sweep2.AddRow({TablePrinter::Fixed(eps1, 2),
                   TablePrinter::Fixed(DetectionProbability(params), 3),
                   TablePrinter::Fixed(region.lower, 2),
                   IncentiveCompatible(params) ? "yes" : "no"});
  }
  sweep2.Print();

  // Sweep 3: committee size vs sustainability bound L3.
  std::printf("\ncommittee sustainability (alpha_cm=0.3, C_a=0.05):\n");
  TablePrinter sweep3({"n", "L3", "u_cm(guilty) @ S=6", "u_cm(clean)"});
  for (const int n : {3, 5, 7, 11, 21}) {
    EconomicParams params;
    params.committee_size = n;
    sweep3.AddRow({std::to_string(n),
                   TablePrinter::Fixed(ComputeFeasibleRegion(params).l3, 2),
                   TablePrinter::Fixed(CommitteeUtilityRuledGuilty(params), 3),
                   TablePrinter::Fixed(CommitteeUtilityRuledClean(params), 3)});
  }
  sweep3.Print();

  std::printf("\nAny S_slash in (L, D_p] with d > eps2 satisfies all constraints\n"
              "simultaneously (Sec. 5.5); the default configuration uses S_slash=6,\n"
              "D_p=10.\n");
  return 0;
}
