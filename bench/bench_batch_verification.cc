// Batch verification throughput: claims/sec for a cohort of marketplace-style
// claims (mixed honest/cheating, supervised/unsupervised) verified through the
// BatchVerifier at batch sizes {1, 4, 16, 64} x thread counts {1, 2, 4, 8}, against
// the sequential one-claim-at-a-time baseline (DisputeGame::Run per supervised
// claim). Every configuration's C0 digests and verdicts are checked against the
// baseline before its timing is reported — batching must never change an outcome.

#include <cstdio>
#include <string>
#include <vector>

#include "src/calib/calibrator.h"
#include "src/protocol/batch_verifier.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

namespace tao {
namespace {

constexpr size_t kClaims = 64;

std::vector<BatchClaim> MakeClaims(const Model& model, size_t count, uint64_t seed) {
  const Graph& graph = *model.graph;
  const auto& fleet = DeviceRegistry::Fleet();
  Rng rng(seed);
  std::vector<BatchClaim> claims;
  claims.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    BatchClaim claim;
    claim.inputs = model.sample_input(rng);
    claim.proposer_device = &fleet[rng.NextBounded(fleet.size())];
    if (rng.NextDouble() < 0.25) {
      const NodeId site =
          graph.op_nodes()[rng.NextBounded(static_cast<uint64_t>(graph.num_ops() - 1))];
      Rng delta_rng(rng.NextU64());
      claim.perturbations.push_back(
          {site, Tensor::Randn(graph.node(site).shape, delta_rng, 5e-2f)});
    }
    if (rng.NextDouble() < 0.5) {
      claim.verifier_device = &fleet[rng.NextBounded(fleet.size())];
    }
    claims.push_back(std::move(claim));
  }
  return claims;
}

struct CohortResult {
  std::vector<Digest> digests;
  std::vector<char> guilty;
  double seconds = 0.0;
};

CohortResult VerifyCohort(const Model& model, const ModelCommitment& commitment,
                          const ThresholdSet& thresholds,
                          const std::vector<BatchClaim>& claims, size_t batch_size,
                          int threads) {
  Coordinator coordinator;
  BatchVerifierOptions options;
  options.dispute.num_threads = threads;
  options.reuse_buffers = true;
  BatchVerifier verifier(model, commitment, thresholds, coordinator, options);

  CohortResult result;
  Stopwatch watch;
  size_t next = 0;
  while (next < claims.size()) {
    const size_t end = std::min(claims.size(), next + batch_size);
    const std::vector<BatchClaim> chunk(claims.begin() + static_cast<long>(next),
                                        claims.begin() + static_cast<long>(end));
    for (const BatchClaimOutcome& outcome : verifier.VerifyBatch(chunk)) {
      result.digests.push_back(outcome.c0);
      result.guilty.push_back(outcome.proposer_guilty ? 1 : 0);
    }
    next = end;
  }
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace
}  // namespace tao

int main() {
  using namespace tao;
  std::printf("Batch verification throughput (%zu-claim cohort, BERT-mini)\n", kClaims);
  std::printf("batch=1/threads=1 is the sequential one-claim-at-a-time baseline;\n");
  std::printf("digests and verdicts are cross-checked against it for every config.\n\n");

  const Model model = BuildBertMini();
  CalibrateOptions calib_options;
  calib_options.num_samples = 4;
  const ThresholdSet thresholds =
      Calibrate(model, DeviceRegistry::Fleet(), calib_options).MakeThresholds(3.0);
  const ModelCommitment commitment(*model.graph, thresholds);
  const std::vector<BatchClaim> claims = MakeClaims(model, kClaims, 0xbe9cb);

  const CohortResult baseline =
      VerifyCohort(model, commitment, thresholds, claims, /*batch_size=*/1, /*threads=*/1);

  TablePrinter table({"batch_size", "threads", "seconds", "claims_per_s", "speedup"});
  for (const size_t batch_size : {size_t{1}, size_t{4}, size_t{16}, size_t{64}}) {
    for (const int threads : {1, 2, 4, 8}) {
      const CohortResult result =
          VerifyCohort(model, commitment, thresholds, claims, batch_size, threads);
      for (size_t i = 0; i < kClaims; ++i) {
        if (result.digests[i] != baseline.digests[i] ||
            result.guilty[i] != baseline.guilty[i]) {
          std::printf("DETERMINISM VIOLATION at batch=%zu threads=%d claim %zu\n",
                      batch_size, threads, i);
          return 1;
        }
      }
      table.AddRow({std::to_string(batch_size), std::to_string(threads),
                    TablePrinter::Fixed(result.seconds, 3),
                    TablePrinter::Fixed(static_cast<double>(kClaims) / result.seconds, 1),
                    TablePrinter::Fixed(baseline.seconds / result.seconds, 2)});
    }
  }
  table.Print();
  std::printf("\nSpeedup is wall-clock relative to the sequential baseline; on a\n");
  std::printf("single-core host it stays ~1.0 by hardware — the table then certifies\n");
  std::printf("determinism while multi-core hosts (CI) show the scaling.\n");
  return 0;
}
