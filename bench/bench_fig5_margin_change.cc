// Fig. 5: normalized margin change (delta_m / m0) on failed attacks at alpha = 1, as
// boxplot statistics per model x admissible set. Paper shape: empirical thresholds
// concentrate near zero progress; theoretical bounds show heavier tails, most
// pronounced for the LLM.

#include <cstdio>

#include "bench/bench_common.h"

using namespace tao;
using namespace tao::bench;

namespace {

constexpr int kInputs = 3;

void Row(TablePrinter& table, const char* model, const char* set,
         const std::vector<double>& rel) {
  if (rel.empty()) {
    table.AddRow({model, set, "0", "-", "-", "-", "-", "-"});
    return;
  }
  const BoxStats box = ComputeBoxStats(rel);
  table.AddRow({model, set, std::to_string(box.n), TablePrinter::Fixed(box.min, 4),
                TablePrinter::Fixed(box.q1, 4), TablePrinter::Fixed(box.median, 4),
                TablePrinter::Fixed(box.q3, 4), TablePrinter::Fixed(box.max, 4)});
}

}  // namespace

int main() {
  std::printf("=== Fig. 5: normalized margin change on failed attacks (alpha=1) ===\n\n");
  TablePrinter table({"model", "set", "n", "min", "q1", "median", "q3", "max"});

  std::vector<Model> models;
  models.push_back(BuildBertMini());
  models.push_back(BuildQwenMini());
  models.push_back(BuildResNetMini());

  for (const Model& model : models) {
    const Calibration calibration = CalibrateModel(model, /*samples=*/8);
    const ThresholdSet thresholds = calibration.MakeThresholds(3.0);

    AttackConfig empirical;
    empirical.feasible = FeasibleSetKind::kEmpirical;
    empirical.max_iters = 40;
    std::vector<double> empirical_rel;
    RunBucketedAttacks(model, thresholds, empirical, kInputs, 0xf15, &empirical_rel);
    Row(table, model.name.c_str(), "Emp", empirical_rel);

    AttackConfig theoretical;
    theoretical.feasible = FeasibleSetKind::kTheoretical;
    theoretical.theo_mode = BoundMode::kProbabilistic;
    theoretical.max_iters = 40;
    std::vector<double> theoretical_rel;
    RunBucketedAttacks(model, thresholds, theoretical, kInputs, 0xf16, &theoretical_rel);
    Row(table, model.name.c_str(), "Theo(p)", theoretical_rel);
    std::printf("finished %s\n", model.name.c_str());
  }
  std::printf("\n");
  table.Print();
  std::printf("\nShape check vs paper (Fig. 5): empirical-set progress is tightly\n"
              "concentrated near zero; theoretical bounds show heavier upper tails.\n");
  return 0;
}
