// Operator-level microbenchmarks: per-op GFLOP/s under the scalar backend vs the
// runtime-dispatched SIMD backend, on the fleet's vector-eligible profile (RTX6000,
// kStridedVector = the fixed 8-lane reduction tree).
//
// The SIMD backend is only admissible because it is bitwise identical to the scalar
// fixed-tree loops (src/device/simd.h); the last column re-checks that here, on the
// exact tensors being timed — a speedup reported next to "equal" means the fast path
// produced the same commitment-relevant bits, not merely close values. On hosts
// without AVX2 (or with TAO_DISABLE_SIMD set) the SIMD columns repeat the scalar
// backend, and the speedup column reads ~1.0x.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "src/device/device.h"
#include "src/device/simd.h"
#include "src/device/vmath.h"
#include "src/ops/op_kernel.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

using namespace tao;

namespace {

// Times `body` with repeats adapted until the measured window is long enough to
// trust (>= ~40 ms), returning milliseconds per call.
double TimeLoop(const std::function<void()>& body) {
  body();  // warmup
  int reps = 1;
  for (;;) {
    Stopwatch watch;
    for (int i = 0; i < reps; ++i) {
      body();
    }
    const double elapsed = watch.ElapsedMillis();
    if (elapsed >= 40.0 || reps >= (1 << 20)) {
      return elapsed / reps;
    }
    reps *= 2;
  }
}

struct OpCase {
  std::string op;
  std::vector<Shape> shapes;
  Attrs attrs;
  float scale = 1.0f;
};

Tensor RandTensor(const Shape& shape, uint64_t seed, float scale) {
  Rng rng(seed);
  Tensor t(shape);
  auto v = t.mutable_values();
  for (float& x : v) {
    x = scale * static_cast<float>(rng.NextGaussian());
  }
  return t;
}

std::string ShapeString(const std::vector<Shape>& shapes) {
  std::string s;
  for (size_t i = 0; i < shapes.size() && i < 2; ++i) {
    if (i > 0) {
      s += " x ";
    }
    s += shapes[i].ToString();
  }
  return s;
}

bool Bitwise(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.values().data(), b.values().data(),
                     a.values().size() * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAllOps();
  bench::JsonSummary json(argc, argv, "micro_ops");
  LogSimdBackendOnce();
  const bool have_avx2 = SimdBackendSupported(SimdBackend::kAvx2);
  const SimdBackend fast =
      have_avx2 ? SimdBackend::kAvx2 : SimdBackend::kScalar;
  std::printf("=== Operator microbenchmarks: scalar vs %s backend ===\n\n",
              SimdBackendName(fast));
  if (!have_avx2) {
    std::printf("(AVX2 unavailable on this host/build: SIMD columns repeat the "
                "scalar backend)\n\n");
  }

  // The fleet's vector-eligible profile; every reduction below runs the fixed
  // 8-lane tree on both backends.
  const DeviceProfile& device = DeviceRegistry::ByName("RTX6000");

  std::vector<OpCase> cases;
  cases.push_back({"matmul", {Shape{128, 128}, Shape{128, 128}}, {}, 1.0f});
  cases.push_back({"matmul", {Shape{256, 256}, Shape{256, 256}}, {}, 1.0f});
  cases.push_back({"bmm", {Shape{8, 64, 64}, Shape{8, 64, 64}}, {}, 1.0f});
  cases.push_back({"linear", {Shape{256, 512}, Shape{512, 512}, Shape{512}}, {}, 1.0f});
  {
    Attrs a;
    a.Set("axis", static_cast<int64_t>(-1));
    cases.push_back({"softmax", {Shape{256, 1024}}, a, 3.0f});
  }
  {
    Attrs a;
    a.Set("eps", 1e-5);
    cases.push_back({"layer_norm", {Shape{256, 1024}, Shape{1024}, Shape{1024}}, a, 2.0f});
  }
  {
    Attrs a;
    a.Set("eps", 1e-6);
    cases.push_back({"rms_norm", {Shape{256, 1024}, Shape{1024}}, a, 1.0f});
  }
  {
    Attrs a;
    a.Set("axis", static_cast<int64_t>(-1));
    cases.push_back({"sum", {Shape{256, 4096}}, a, 1.0f});
  }
  // Transcendental ops route through src/device/vmath.h: the "scalar" column is
  // the vmath scalar recipe, the "simd" column its AVX2 twin (same arithmetic,
  // eight lanes at a time), so the bitwise column holds by construction.
  cases.push_back({"exp", {Shape{256, 1024}}, {}, 1.0f});
  cases.push_back({"tanh", {Shape{256, 1024}}, {}, 1.0f});
  cases.push_back({"gelu", {Shape{256, 1024}}, {}, 1.0f});
  cases.push_back({"silu", {Shape{256, 1024}}, {}, 1.0f});
  // Cache-resident sizes: at streaming sizes these ops are memory-bound and both
  // backends run at the same bandwidth.
  cases.push_back({"relu", {Shape{1 << 16}}, {}, 1.0f});
  cases.push_back({"add", {Shape{1 << 16}, Shape{1 << 16}}, {}, 1.0f});

  TablePrinter table({"op", "shape", "scalar GFLOP/s", "simd GFLOP/s", "speedup",
                      "bitwise"});
  for (const OpCase& c : cases) {
    const OpKernel& kernel = OpRegistry::Instance().Get(c.op);
    std::vector<Tensor> inputs;
    std::vector<Shape> input_shapes;
    for (size_t i = 0; i < c.shapes.size(); ++i) {
      inputs.push_back(RandTensor(c.shapes[i], 0x5eed + 17 * i, c.scale));
      input_shapes.push_back(c.shapes[i]);
    }
    const OpContext ctx{device, inputs, c.attrs};
    const Shape out_shape = kernel.InferShape(input_shapes, c.attrs);
    const double flops =
        static_cast<double>(kernel.Flops(input_shapes, out_shape, c.attrs));

    Tensor scalar_out, simd_out;
    double scalar_ms = 0.0, simd_ms = 0.0;
    {
      ScopedSimdBackend force(SimdBackend::kScalar);
      scalar_out = kernel.Forward(ctx);
      scalar_ms = TimeLoop([&] { (void)kernel.Forward(ctx); });
    }
    {
      ScopedSimdBackend force(fast);
      simd_out = kernel.Forward(ctx);
      simd_ms = TimeLoop([&] { (void)kernel.Forward(ctx); });
    }
    const double scalar_gfs = flops / (scalar_ms * 1e6);
    const double simd_gfs = flops / (simd_ms * 1e6);
    table.AddRow({c.op, ShapeString(c.shapes), TablePrinter::Fixed(scalar_gfs, 2),
                  TablePrinter::Fixed(simd_gfs, 2),
                  TablePrinter::Fixed(scalar_ms / simd_ms, 2) + "x",
                  Bitwise(scalar_out, simd_out) ? "equal" : "DIFFER"});
  }
  table.Print();

  // Device-primitive reductions: the raw fixed-tree kernels every op above leans on.
  std::printf("\ndevice primitives (n = 16384, RTX6000 fixed 8-lane tree):\n");
  std::vector<float> xs(1 << 14), ys(1 << 14);
  {
    Rng rng(0xacc);
    for (size_t i = 0; i < xs.size(); ++i) {
      xs[i] = static_cast<float>(rng.NextGaussian());
      ys[i] = static_cast<float>(rng.NextGaussian());
    }
  }
  TablePrinter prims({"primitive", "scalar GFLOP/s", "simd GFLOP/s", "speedup",
                      "bitwise"});
  const auto prim_row = [&](const char* name, double flops_per_call,
                            const std::function<float()>& body) {
    float scalar_val = 0.0f, simd_val = 0.0f;
    double scalar_ms = 0.0, simd_ms = 0.0;
    volatile float sink = 0.0f;
    {
      ScopedSimdBackend force(SimdBackend::kScalar);
      scalar_val = body();
      scalar_ms = TimeLoop([&] { sink = body(); });
    }
    {
      ScopedSimdBackend force(fast);
      simd_val = body();
      simd_ms = TimeLoop([&] { sink = body(); });
    }
    (void)sink;
    prims.AddRow({name, TablePrinter::Fixed(flops_per_call / (scalar_ms * 1e6), 2),
                  TablePrinter::Fixed(flops_per_call / (simd_ms * 1e6), 2),
                  TablePrinter::Fixed(scalar_ms / simd_ms, 2) + "x",
                  std::memcmp(&scalar_val, &simd_val, sizeof(float)) == 0
                      ? "equal"
                      : "DIFFER"});
  };
  const double n = static_cast<double>(xs.size());
  prim_row("Accumulate", n, [&] { return device.Accumulate(xs); });
  prim_row("DotStrided (contiguous)", 2 * n,
           [&] { return device.DotStrided(xs.data(), 1, ys.data(), 1,
                                          static_cast<int64_t>(xs.size())); });
  prim_row("DotStrided (stride 8)", 2 * (n / 8), [&] {
    return device.DotStrided(xs.data(), 1, ys.data(), 8,
                             static_cast<int64_t>(xs.size()) / 8);
  });
  prims.Print();

  // --- Transcendental vector math (src/device/vmath.h) -----------------------------
  // Three columns per function: glibc libm (what the ops called before vmath),
  // the vmath scalar recipe, and its AVX2 twin. The two vmath columns are the SAME
  // arithmetic in the same order — the bitwise column re-checks that on the timed
  // buffers. GFLOP/s uses the nominal per-element op count of the vmath recipe.
  std::printf("\ntranscendental vector math (n = 16384, vmath fixed polynomials):\n");
  struct VmathCase {
    const char* name;
    double flops_per_elem;  // nominal: the vmath recipe's arithmetic op count
    std::function<void(const float*, float*, int64_t)> libm;
    void (*vmath)(const float*, float*, int64_t);
  };
  const std::vector<VmathCase> vmath_cases = {
      {"exp", 15.0,
       [](const float* x, float* o, int64_t n) {
         for (int64_t i = 0; i < n; ++i) o[i] = std::exp(x[i]);
       },
       &vmath::ExpVec},
      {"erf", 28.0,
       [](const float* x, float* o, int64_t n) {
         for (int64_t i = 0; i < n; ++i) o[i] = std::erf(x[i]);
       },
       &vmath::ErfVec},
      {"tanh", 26.0,
       [](const float* x, float* o, int64_t n) {
         for (int64_t i = 0; i < n; ++i) o[i] = std::tanh(x[i]);
       },
       &vmath::TanhVec},
      {"sigmoid", 18.0,
       [](const float* x, float* o, int64_t n) {
         for (int64_t i = 0; i < n; ++i) o[i] = 1.0f / (1.0f + std::exp(-x[i]));
       },
       &vmath::SigmoidVec},
      {"gelu", 32.0,
       [](const float* x, float* o, int64_t n) {
         for (int64_t i = 0; i < n; ++i) {
           o[i] = (0.5f * x[i]) * (1.0f + std::erf(x[i] * 0.70710678118654752440f));
         }
       },
       &vmath::GeluVec},
  };
  // Gaussian(0, 2) inputs: the activation range these functions actually see, with
  // occasional excursions into the clamp tails.
  std::vector<float> tx(1 << 14), to_libm(1 << 14), to_scalar(1 << 14), to_simd(1 << 14);
  {
    Rng rng(0x7a9c);
    for (float& v : tx) {
      v = 2.0f * static_cast<float>(rng.NextGaussian());
    }
  }
  bool vmath_bitwise_all = true;
  TablePrinter trans({"function", "libm GFLOP/s", "vmath scalar", "vmath simd",
                      "simd vs libm", "bitwise"});
  const int64_t tn = static_cast<int64_t>(tx.size());
  for (const VmathCase& c : vmath_cases) {
    const double flops = c.flops_per_elem * static_cast<double>(tn);
    const double libm_ms = TimeLoop([&] { c.libm(tx.data(), to_libm.data(), tn); });
    double scalar_ms = 0.0, simd_ms = 0.0;
    {
      ScopedSimdBackend force(SimdBackend::kScalar);
      c.vmath(tx.data(), to_scalar.data(), tn);
      scalar_ms = TimeLoop([&] { c.vmath(tx.data(), to_scalar.data(), tn); });
    }
    {
      ScopedSimdBackend force(fast);
      c.vmath(tx.data(), to_simd.data(), tn);
      simd_ms = TimeLoop([&] { c.vmath(tx.data(), to_simd.data(), tn); });
    }
    const bool bitwise = std::memcmp(to_scalar.data(), to_simd.data(),
                                     to_scalar.size() * sizeof(float)) == 0;
    vmath_bitwise_all = vmath_bitwise_all && bitwise;
    trans.AddRow({c.name, TablePrinter::Fixed(flops / (libm_ms * 1e6), 2),
                  TablePrinter::Fixed(flops / (scalar_ms * 1e6), 2),
                  TablePrinter::Fixed(flops / (simd_ms * 1e6), 2),
                  TablePrinter::Fixed(libm_ms / simd_ms, 2) + "x",
                  bitwise ? "equal" : "DIFFER"});
    json.AddBool(std::string(c.name) + "_bitwise", bitwise);
    json.Add(std::string(c.name) + "_simd_speedup_vs_libm", libm_ms / simd_ms);
  }
  trans.Print();
  json.AddBool("vmath_bitwise_all", vmath_bitwise_all);

  // Op-level: softmax and gelu against a scalar-libm baseline (the recipe the ops
  // used BEFORE vmath, written out here since the tree no longer contains it).
  std::printf("\nop-level vs scalar-libm baseline (256x1024):\n");
  TablePrinter oplvl({"op", "libm ms", "vmath scalar ms", "vmath simd ms",
                      "simd vs libm", "bitwise"});
  const Tensor act_in = RandTensor(Shape{256, 1024}, 0xf00d, 3.0f);
  bool op_bitwise_all = true;
  const auto op_vs_libm = [&](const char* name, const OpKernel& kernel,
                              const Attrs& attrs,
                              const std::function<void()>& libm_body) {
    const std::vector<Tensor> inputs = {act_in};
    const OpContext ctx{device, inputs, attrs};
    const double libm_ms = TimeLoop(libm_body);
    Tensor scalar_out, simd_out;
    double scalar_ms = 0.0, simd_ms = 0.0;
    {
      ScopedSimdBackend force(SimdBackend::kScalar);
      scalar_out = kernel.Forward(ctx);
      scalar_ms = TimeLoop([&] { (void)kernel.Forward(ctx); });
    }
    {
      ScopedSimdBackend force(fast);
      simd_out = kernel.Forward(ctx);
      simd_ms = TimeLoop([&] { (void)kernel.Forward(ctx); });
    }
    const bool bitwise = Bitwise(scalar_out, simd_out);
    op_bitwise_all = op_bitwise_all && bitwise;
    oplvl.AddRow({name, TablePrinter::Fixed(libm_ms, 3),
                  TablePrinter::Fixed(scalar_ms, 3), TablePrinter::Fixed(simd_ms, 3),
                  TablePrinter::Fixed(libm_ms / simd_ms, 2) + "x",
                  bitwise ? "equal" : "DIFFER"});
    json.Add(std::string(name) + "_op_simd_speedup_vs_libm", libm_ms / simd_ms);
  };
  {
    // Softmax the way the op computed it pre-vmath: row max, exp(x - max) via
    // libm, accumulate, divide.
    const int64_t rows = 256, cols = 1024;
    std::vector<float> out(static_cast<size_t>(rows * cols));
    const auto xv = act_in.values();
    Attrs attrs;
    attrs.Set("axis", static_cast<int64_t>(-1));
    op_vs_libm("softmax", OpRegistry::Instance().Get("softmax"), attrs, [&] {
      for (int64_t r = 0; r < rows; ++r) {
        const float* x = xv.data() + r * cols;
        float* o = out.data() + static_cast<size_t>(r * cols);
        float m = x[0];
        for (int64_t i = 1; i < cols; ++i) m = x[i] > m ? x[i] : m;
        float sum = 0.0f;
        for (int64_t i = 0; i < cols; ++i) {
          o[i] = std::exp(x[i] - m);
          sum += o[i];
        }
        const float inv = 1.0f / sum;
        for (int64_t i = 0; i < cols; ++i) o[i] *= inv;
      }
    });
  }
  {
    const int64_t n_elems = 256 * 1024;
    std::vector<float> out(static_cast<size_t>(n_elems));
    const auto xv = act_in.values();
    op_vs_libm("gelu", OpRegistry::Instance().Get("gelu"), Attrs{}, [&] {
      for (int64_t i = 0; i < n_elems; ++i) {
        out[static_cast<size_t>(i)] =
            (0.5f * xv[i]) * (1.0f + std::erf(xv[i] * 0.70710678118654752440f));
      }
    });
  }
  oplvl.Print();
  json.AddBool("op_bitwise_all", op_bitwise_all);

  std::printf("\nDeterminism note: every \"equal\" above is bitwise FP32 equality on\n"
              "the timed tensors. The SIMD backend is not an approximation — it is the\n"
              "same fixed reduction tree (and, for transcendentals, the same fixed\n"
              "polynomial arithmetic) executed eight lanes at a time, so commitments\n"
              "(C0 digests), traces, and verdicts are independent of the backend.\n");
  return json.Write() ? 0 : 1;
}
