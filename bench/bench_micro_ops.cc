// Operator-level microbenchmarks (google-benchmark): forward throughput per device
// profile and the cost of theoretical-bound co-execution, quantifying the "negligible
// overhead / no custom kernels" implementation claims of Sec. 6.

#include <benchmark/benchmark.h>

#include "src/device/device.h"
#include "src/graph/executor.h"
#include "src/models/model_zoo.h"
#include "src/ops/op_kernel.h"
#include "src/util/rng.h"

namespace tao {
namespace {

void BM_DeviceAccumulate(benchmark::State& state) {
  RegisterAllOps();
  const auto& device = DeviceRegistry::Fleet()[static_cast<size_t>(state.range(0))];
  Rng rng(1);
  std::vector<float> xs(1 << 14);
  for (float& x : xs) {
    x = static_cast<float>(rng.NextGaussian());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.Accumulate(xs));
  }
  state.SetLabel(device.name);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xs.size()));
}
BENCHMARK(BM_DeviceAccumulate)->DenseRange(0, 3);

void BM_MatmulForward(benchmark::State& state) {
  RegisterAllOps();
  const int64_t n = state.range(0);
  Rng rng(2);
  const std::vector<Tensor> inputs = {Tensor::Randn(Shape{n, n}, rng),
                                      Tensor::Randn(Shape{n, n}, rng)};
  const OpKernel& kernel = OpRegistry::Instance().Get("matmul");
  const OpContext ctx{DeviceRegistry::ByName("A100"), inputs, {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.Forward(ctx));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_MatmulForward)->Arg(32)->Arg(64)->Arg(128);

void BM_MatmulBound(benchmark::State& state) {
  RegisterAllOps();
  const int64_t n = state.range(0);
  Rng rng(3);
  const std::vector<Tensor> inputs = {Tensor::Randn(Shape{n, n}, rng),
                                      Tensor::Randn(Shape{n, n}, rng)};
  const OpKernel& kernel = OpRegistry::Instance().Get("matmul");
  const OpContext fwd{DeviceRegistry::ByName("A100"), inputs, {}};
  const Tensor out = kernel.Forward(fwd);
  const BoundContext bctx{DeviceRegistry::ByName("A100"), inputs, out, {},
                          BoundMode::kProbabilistic, kDefaultLambda};
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.Bound(bctx));
  }
}
BENCHMARK(BM_MatmulBound)->Arg(32)->Arg(64)->Arg(128);

void BM_SoftmaxForwardVsBound(benchmark::State& state) {
  RegisterAllOps();
  Rng rng(4);
  Attrs attrs;
  attrs.Set("axis", static_cast<int64_t>(-1));
  const std::vector<Tensor> inputs = {Tensor::Randn(Shape{64, 256}, rng)};
  const OpKernel& kernel = OpRegistry::Instance().Get("softmax");
  const OpContext fwd{DeviceRegistry::ByName("H100"), inputs, attrs};
  if (state.range(0) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(kernel.Forward(fwd));
    }
    state.SetLabel("forward");
  } else {
    const Tensor out = kernel.Forward(fwd);
    const BoundContext bctx{DeviceRegistry::ByName("H100"), inputs, out, attrs,
                            BoundMode::kProbabilistic, kDefaultLambda};
    for (auto _ : state) {
      benchmark::DoNotOptimize(kernel.Bound(bctx));
    }
    state.SetLabel("bound");
  }
}
BENCHMARK(BM_SoftmaxForwardVsBound)->Arg(0)->Arg(1);

void BM_ModelForward(benchmark::State& state) {
  static const Model model = BuildBertMini();
  Rng rng(5);
  const std::vector<Tensor> input = model.sample_input(rng);
  const Executor exec(*model.graph, DeviceRegistry::Fleet()[
      static_cast<size_t>(state.range(0))]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.RunOutput(input));
  }
  state.SetLabel(DeviceRegistry::Fleet()[static_cast<size_t>(state.range(0))].name);
}
BENCHMARK(BM_ModelForward)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tao

BENCHMARK_MAIN();
