// Operator-level microbenchmarks: per-op GFLOP/s under the scalar backend vs the
// runtime-dispatched SIMD backend, on the fleet's vector-eligible profile (RTX6000,
// kStridedVector = the fixed 8-lane reduction tree).
//
// The SIMD backend is only admissible because it is bitwise identical to the scalar
// fixed-tree loops (src/device/simd.h); the last column re-checks that here, on the
// exact tensors being timed — a speedup reported next to "equal" means the fast path
// produced the same commitment-relevant bits, not merely close values. On hosts
// without AVX2 (or with TAO_DISABLE_SIMD set) the SIMD columns repeat the scalar
// backend, and the speedup column reads ~1.0x.

#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "src/device/device.h"
#include "src/device/simd.h"
#include "src/ops/op_kernel.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

using namespace tao;

namespace {

// Times `body` with repeats adapted until the measured window is long enough to
// trust (>= ~40 ms), returning milliseconds per call.
double TimeLoop(const std::function<void()>& body) {
  body();  // warmup
  int reps = 1;
  for (;;) {
    Stopwatch watch;
    for (int i = 0; i < reps; ++i) {
      body();
    }
    const double elapsed = watch.ElapsedMillis();
    if (elapsed >= 40.0 || reps >= (1 << 20)) {
      return elapsed / reps;
    }
    reps *= 2;
  }
}

struct OpCase {
  std::string op;
  std::vector<Shape> shapes;
  Attrs attrs;
  float scale = 1.0f;
};

Tensor RandTensor(const Shape& shape, uint64_t seed, float scale) {
  Rng rng(seed);
  Tensor t(shape);
  auto v = t.mutable_values();
  for (float& x : v) {
    x = scale * static_cast<float>(rng.NextGaussian());
  }
  return t;
}

std::string ShapeString(const std::vector<Shape>& shapes) {
  std::string s;
  for (size_t i = 0; i < shapes.size() && i < 2; ++i) {
    if (i > 0) {
      s += " x ";
    }
    s += shapes[i].ToString();
  }
  return s;
}

bool Bitwise(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.values().data(), b.values().data(),
                     a.values().size() * sizeof(float)) == 0;
}

}  // namespace

int main() {
  RegisterAllOps();
  LogSimdBackendOnce();
  const bool have_avx2 = SimdBackendSupported(SimdBackend::kAvx2);
  const SimdBackend fast =
      have_avx2 ? SimdBackend::kAvx2 : SimdBackend::kScalar;
  std::printf("=== Operator microbenchmarks: scalar vs %s backend ===\n\n",
              SimdBackendName(fast));
  if (!have_avx2) {
    std::printf("(AVX2 unavailable on this host/build: SIMD columns repeat the "
                "scalar backend)\n\n");
  }

  // The fleet's vector-eligible profile; every reduction below runs the fixed
  // 8-lane tree on both backends.
  const DeviceProfile& device = DeviceRegistry::ByName("RTX6000");

  std::vector<OpCase> cases;
  cases.push_back({"matmul", {Shape{128, 128}, Shape{128, 128}}, {}, 1.0f});
  cases.push_back({"matmul", {Shape{256, 256}, Shape{256, 256}}, {}, 1.0f});
  cases.push_back({"bmm", {Shape{8, 64, 64}, Shape{8, 64, 64}}, {}, 1.0f});
  cases.push_back({"linear", {Shape{256, 512}, Shape{512, 512}, Shape{512}}, {}, 1.0f});
  {
    Attrs a;
    a.Set("axis", static_cast<int64_t>(-1));
    cases.push_back({"softmax", {Shape{256, 1024}}, a, 3.0f});
  }
  {
    Attrs a;
    a.Set("eps", 1e-5);
    cases.push_back({"layer_norm", {Shape{256, 1024}, Shape{1024}, Shape{1024}}, a, 2.0f});
  }
  {
    Attrs a;
    a.Set("eps", 1e-6);
    cases.push_back({"rms_norm", {Shape{256, 1024}, Shape{1024}}, a, 1.0f});
  }
  {
    Attrs a;
    a.Set("axis", static_cast<int64_t>(-1));
    cases.push_back({"sum", {Shape{256, 4096}}, a, 1.0f});
  }
  // Cache-resident sizes: at streaming sizes these ops are memory-bound and both
  // backends run at the same bandwidth.
  cases.push_back({"relu", {Shape{1 << 16}}, {}, 1.0f});
  cases.push_back({"add", {Shape{1 << 16}, Shape{1 << 16}}, {}, 1.0f});

  TablePrinter table({"op", "shape", "scalar GFLOP/s", "simd GFLOP/s", "speedup",
                      "bitwise"});
  for (const OpCase& c : cases) {
    const OpKernel& kernel = OpRegistry::Instance().Get(c.op);
    std::vector<Tensor> inputs;
    std::vector<Shape> input_shapes;
    for (size_t i = 0; i < c.shapes.size(); ++i) {
      inputs.push_back(RandTensor(c.shapes[i], 0x5eed + 17 * i, c.scale));
      input_shapes.push_back(c.shapes[i]);
    }
    const OpContext ctx{device, inputs, c.attrs};
    const Shape out_shape = kernel.InferShape(input_shapes, c.attrs);
    const double flops =
        static_cast<double>(kernel.Flops(input_shapes, out_shape, c.attrs));

    Tensor scalar_out, simd_out;
    double scalar_ms = 0.0, simd_ms = 0.0;
    {
      ScopedSimdBackend force(SimdBackend::kScalar);
      scalar_out = kernel.Forward(ctx);
      scalar_ms = TimeLoop([&] { (void)kernel.Forward(ctx); });
    }
    {
      ScopedSimdBackend force(fast);
      simd_out = kernel.Forward(ctx);
      simd_ms = TimeLoop([&] { (void)kernel.Forward(ctx); });
    }
    const double scalar_gfs = flops / (scalar_ms * 1e6);
    const double simd_gfs = flops / (simd_ms * 1e6);
    table.AddRow({c.op, ShapeString(c.shapes), TablePrinter::Fixed(scalar_gfs, 2),
                  TablePrinter::Fixed(simd_gfs, 2),
                  TablePrinter::Fixed(scalar_ms / simd_ms, 2) + "x",
                  Bitwise(scalar_out, simd_out) ? "equal" : "DIFFER"});
  }
  table.Print();

  // Device-primitive reductions: the raw fixed-tree kernels every op above leans on.
  std::printf("\ndevice primitives (n = 16384, RTX6000 fixed 8-lane tree):\n");
  std::vector<float> xs(1 << 14), ys(1 << 14);
  {
    Rng rng(0xacc);
    for (size_t i = 0; i < xs.size(); ++i) {
      xs[i] = static_cast<float>(rng.NextGaussian());
      ys[i] = static_cast<float>(rng.NextGaussian());
    }
  }
  TablePrinter prims({"primitive", "scalar GFLOP/s", "simd GFLOP/s", "speedup",
                      "bitwise"});
  const auto prim_row = [&](const char* name, double flops_per_call,
                            const std::function<float()>& body) {
    float scalar_val = 0.0f, simd_val = 0.0f;
    double scalar_ms = 0.0, simd_ms = 0.0;
    volatile float sink = 0.0f;
    {
      ScopedSimdBackend force(SimdBackend::kScalar);
      scalar_val = body();
      scalar_ms = TimeLoop([&] { sink = body(); });
    }
    {
      ScopedSimdBackend force(fast);
      simd_val = body();
      simd_ms = TimeLoop([&] { sink = body(); });
    }
    (void)sink;
    prims.AddRow({name, TablePrinter::Fixed(flops_per_call / (scalar_ms * 1e6), 2),
                  TablePrinter::Fixed(flops_per_call / (simd_ms * 1e6), 2),
                  TablePrinter::Fixed(scalar_ms / simd_ms, 2) + "x",
                  std::memcmp(&scalar_val, &simd_val, sizeof(float)) == 0
                      ? "equal"
                      : "DIFFER"});
  };
  const double n = static_cast<double>(xs.size());
  prim_row("Accumulate", n, [&] { return device.Accumulate(xs); });
  prim_row("DotStrided (contiguous)", 2 * n,
           [&] { return device.DotStrided(xs.data(), 1, ys.data(), 1,
                                          static_cast<int64_t>(xs.size())); });
  prim_row("DotStrided (stride 8)", 2 * (n / 8), [&] {
    return device.DotStrided(xs.data(), 1, ys.data(), 8,
                             static_cast<int64_t>(xs.size()) / 8);
  });
  prims.Print();

  std::printf("\nDeterminism note: every \"equal\" above is bitwise FP32 equality on\n"
              "the timed tensors. The SIMD backend is not an approximation — it is the\n"
              "same fixed reduction tree executed eight lanes at a time, so commitments\n"
              "(C0 digests), traces, and verdicts are independent of the backend.\n");
  return 0;
}
