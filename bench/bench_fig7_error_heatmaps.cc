// Fig. 7: error-magnitude distribution heatmaps — the share of operators whose mean
// (a) empirical cross-device error and (b) theoretical bound falls into each decade
// bin 1e-1 .. 1e-8, for BERT, Qwen, and ResNet minis. The paper's headline: empirical
// errors concentrate 1e-5..1e-6 while theoretical bounds sit 1e-2..1e-3 for
// transformers — a 1e2-1e3x gap.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

using namespace tao;
using namespace tao::bench;

namespace {

constexpr int kBins = 8;  // 1e-1, 1e-2, ..., 1e-8

int BinOf(double value) {
  if (value <= 0.0) {
    return kBins - 1;
  }
  const int decade = static_cast<int>(std::floor(-std::log10(value)));
  return std::clamp(decade - 1, 0, kBins - 1);  // decade 1 -> bin 0 (1e-1)
}

std::vector<double> Histogram(const std::vector<double>& values) {
  std::vector<double> bins(kBins, 0.0);
  for (const double v : values) {
    bins[static_cast<size_t>(BinOf(v))] += 1.0;
  }
  for (double& b : bins) {
    b = 100.0 * b / static_cast<double>(values.size());
  }
  return bins;
}

void AddRow(TablePrinter& table, const std::string& label, const std::vector<double>& bins) {
  std::vector<std::string> row = {label};
  for (const double b : bins) {
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "%.0f%%", b);
    row.push_back(buffer);
  }
  table.AddRow(row);
}

}  // namespace

int main() {
  std::printf("=== Fig. 7: empirical vs theoretical error magnitude heatmaps ===\n\n");

  std::vector<Model> models;
  models.push_back(BuildBertMini());
  models.push_back(BuildQwenMini());
  models.push_back(BuildResNetMini());

  const std::vector<std::string> headers = {"model",  "1e-1", "1e-2", "1e-3", "1e-4",
                                            "1e-5", "1e-6", "1e-7", "<=1e-8"};
  TablePrinter empirical(headers);
  TablePrinter theoretical(headers);
  std::vector<double> gap_ratios;

  for (const Model& model : models) {
    const Calibration calibration = CalibrateModel(model, /*samples=*/8);

    // Per-operator mean empirical error.
    std::vector<double> empirical_means;
    for (const NodeId id : model.graph->op_nodes()) {
      empirical_means.push_back(calibration.nodes.at(id).mean_abs_error);
    }

    // Per-operator mean theoretical bound (probabilistic mode, one traced run).
    const Executor exec(*model.graph, DeviceRegistry::Reference());
    Rng rng(0x717);
    const std::vector<Tensor> input = model.sample_input(rng);
    ExecutorOptions options;
    options.with_bounds = true;
    const ExecutionTrace trace = exec.Run(input, options);
    // Exclude pure data-movement operators (zero theoretical bound, e.g. reshape/
    // slice/embedding) — the paper's heatmaps cover arithmetic operators.
    std::vector<double> empirical_arith;
    std::vector<double> theoretical_arith;
    size_t op_index = 0;
    for (const NodeId id : model.graph->op_nodes()) {
      double sum = 0.0;
      for (const double b : trace.bound(id).values()) {
        sum += b;
      }
      const double mean = sum / static_cast<double>(trace.bound(id).numel());
      if (mean > 0.0) {
        theoretical_arith.push_back(mean);
        empirical_arith.push_back(empirical_means[op_index]);
        if (empirical_means[op_index] > 0.0) {
          gap_ratios.push_back(mean / empirical_means[op_index]);
        }
      }
      ++op_index;
    }

    AddRow(empirical, model.name, Histogram(empirical_arith));
    AddRow(theoretical, model.name, Histogram(theoretical_arith));
  }

  std::printf("(a) Empirical error (share of operators per decade)\n");
  empirical.Print();
  std::printf("\n(b) Theoretical error bound (share of operators per decade)\n");
  theoretical.Print();
  std::printf("\nmedian theoretical/empirical gap across operators: %.0fx\n",
              Percentile(gap_ratios, 50.0));
  std::printf("p90 gap: %.0fx\n", Percentile(gap_ratios, 90.0));
  std::printf("\nShape check vs paper (Fig. 7): empirical mass at 1e-5..1e-6,\n"
              "theoretical mass 1e-2..1e-4 -> a 1e2-1e3x tightness gap.\n");
  return 0;
}
