// Fig. 4: mean empirical cross-device error vs normalized operator position, for
// BERT, Qwen, and ResNet minis. The paper's key observation — profiles stay
// essentially flat with localized spikes; no systematic error accumulation with depth,
// hence little attack headroom — is reproduced here as a binned series plus a
// head-vs-tail accumulation statistic.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

using namespace tao;
using namespace tao::bench;

int main() {
  std::printf("=== Fig. 4: mean empirical error vs normalized operator position ===\n\n");

  std::vector<Model> models;
  models.push_back(BuildBertMini());
  models.push_back(BuildQwenMini());
  models.push_back(BuildResNetMini());

  for (const Model& model : models) {
    const Calibration calibration = CalibrateModel(model, /*samples=*/8);
    // Per-node mean error in canonical topological order.
    std::vector<double> errors;
    for (const NodeId id : model.graph->op_nodes()) {
      errors.push_back(calibration.nodes.at(id).mean_abs_error);
    }
    // 10 positional bins of mean (log-domain display).
    std::printf("%s (%zu operators)\n", model.name.c_str(), errors.size());
    TablePrinter table({"position", "mean error", "log10"});
    const size_t bins = 10;
    for (size_t b = 0; b < bins; ++b) {
      const size_t lo = errors.size() * b / bins;
      const size_t hi = std::max(lo + 1, errors.size() * (b + 1) / bins);
      double sum = 0.0;
      for (size_t i = lo; i < hi; ++i) {
        sum += errors[i];
      }
      const double mean = sum / static_cast<double>(hi - lo);
      char pos[16];
      std::snprintf(pos, sizeof(pos), "%.1f-%.1f", static_cast<double>(b) / bins,
                    static_cast<double>(b + 1) / bins);
      table.AddRow({pos, TablePrinter::Scientific(mean, 2),
                    mean > 0 ? TablePrinter::Fixed(std::log10(mean), 1) : "-inf"});
    }
    table.Print();

    // Accumulation statistic: mean error over the last third vs the first third.
    // (Skip leading exact ops with zero error when normalizing.)
    double head = 0.0;
    double tail = 0.0;
    const size_t third = errors.size() / 3;
    int head_n = 0;
    int tail_n = 0;
    for (size_t i = 0; i < third; ++i) {
      if (errors[i] > 0.0) {
        head += errors[i];
        ++head_n;
      }
    }
    for (size_t i = errors.size() - third; i < errors.size(); ++i) {
      if (errors[i] > 0.0) {
        tail += errors[i];
        ++tail_n;
      }
    }
    if (head_n > 0 && tail_n > 0) {
      std::printf("tail/head mean-error ratio: %.2f (flat profile ~ O(1), no "
                  "systematic accumulation)\n\n",
                  (tail / tail_n) / (head / head_n));
    }
  }
  std::printf("Shape check vs paper (Fig. 4): magnitudes ~1e-6..1e-5, flat with\n"
              "localized spikes; errors do not compound with depth.\n");
  return 0;
}
