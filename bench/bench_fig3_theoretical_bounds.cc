// Fig. 3: deterministic vs probabilistic theoretical error bounds per operator type.
//
// The paper reports mean absolute theoretical error for representative operator types
// in Qwen-8B (mean/linear/matmul) and BERT-large (linear/matmul/layer_norm), with the
// probabilistic gamma~_k(4) bounds markedly tighter than deterministic gamma_k,
// especially for long reductions. This harness co-executes both bound modes over one
// traced forward of each mini model and prints the same series.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"

using namespace tao;

namespace {

struct TypeStats {
  double sum = 0.0;
  int64_t count = 0;
  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

std::map<std::string, TypeStats> MeanBoundPerOpType(const Model& model, BoundMode mode) {
  const Executor exec(*model.graph, DeviceRegistry::Reference());
  Rng rng(0xf193);
  const std::vector<Tensor> input = model.sample_input(rng);
  ExecutorOptions options;
  options.with_bounds = true;
  options.bound_mode = mode;
  const ExecutionTrace trace = exec.Run(input, options);
  std::map<std::string, TypeStats> stats;
  for (const NodeId id : model.graph->op_nodes()) {
    const Node& node = model.graph->node(id);
    TypeStats& s = stats[node.op];
    for (const double b : trace.bound(id).values()) {
      s.sum += b;
      ++s.count;
    }
  }
  return stats;
}

void Report(const Model& model, const std::vector<std::string>& op_types) {
  std::printf("\n%s theoretical error (mean abs bound per element)\n", model.name.c_str());
  const auto det = MeanBoundPerOpType(model, BoundMode::kDeterministic);
  const auto prob = MeanBoundPerOpType(model, BoundMode::kProbabilistic);
  TablePrinter table({"operator type", "probabilistic", "deterministic", "det/prob"});
  for (const std::string& type : op_types) {
    const double d = det.count(type) ? det.at(type).Mean() : 0.0;
    const double p = prob.count(type) ? prob.at(type).Mean() : 0.0;
    table.AddRow({type, TablePrinter::Scientific(p, 2), TablePrinter::Scientific(d, 2),
                  p > 0 ? TablePrinter::Fixed(d / p, 1) : "-"});
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf("=== Fig. 3: deterministic vs probabilistic theoretical bounds ===\n");
  std::printf("(lambda = %.0f, confidence >= %.4f per reduction)\n", kDefaultLambda,
              GammaTildeConfidence());

  Report(BuildQwenMini(), {"mean", "linear", "bmm", "rms_norm", "softmax"});
  Report(BuildBertMini(), {"linear", "bmm", "layer_norm", "softmax"});

  // The underlying gamma factors, to make the k-dependence visible.
  std::printf("\ngamma_k vs gamma~_k(4) as a function of reduction length k:\n");
  TablePrinter gamma({"k", "gamma_k (det)", "gamma~_k(4) (prob)", "ratio"});
  for (const int64_t k : {16, 64, 256, 1024, 4096, 16384}) {
    const double d = Gamma(k);
    const double p = GammaTilde(k);
    gamma.AddRow({std::to_string(k), TablePrinter::Scientific(d, 2),
                  TablePrinter::Scientific(p, 2), TablePrinter::Fixed(d / p, 1)});
  }
  gamma.Print();
  std::printf("\nShape check vs paper: probabilistic bounds are ~sqrt(k)/4 of the\n"
              "deterministic worst case and the gap widens with k (Fig. 3).\n");
  return 0;
}
