// Coordinator shard-scaling: raw state-machine throughput (lifecycle actions/sec)
// across shard count x driver-thread count, measured on the coordinator ALONE — no
// model execution, so the numbers isolate the contention spine the sharding
// removed: with one shard every transition serializes on one mutex; with the
// claims partitioned, threads pinned to distinct shards never touch the same lock.
//
// Every configuration runs the same fixed workload of claim lifecycles (a
// finalize / guilty-dispute / clean-dispute mix, ~14 coordinator actions per
// dispute) and is cross-checked against the single-shard single-thread baseline
// before its throughput is reported: per-claim gas and final states must be
// IDENTICAL claim for claim, total gas must match exactly (integer sum), the
// ledger fold must match to fp-fold tolerance, and every commitment digest must
// round-trip. The sharded layout may only change WHERE state lives, never what it
// says.
//
// On a single-core host actions/sec stays roughly flat — the table then certifies
// the cross-check; multi-core hosts show the lock-contention scaling.

#include <cstdio>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/protocol/coordinator.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

namespace tao {
namespace {

constexpr int64_t kTotalFlows = 16384;
constexpr int64_t kRounds = 3;    // dispute rounds per disputed claim
constexpr int64_t kChildren = 2;  // partition width
constexpr int64_t kProofsPerRound = 5;
// Finalize flows advance their shard clock by exactly their 1-tick window; dispute
// flows get an effectively infinite window/timeout so no interleaving of other
// flows' advances on the same shard can push them past a deadline (total clock
// advancement stays far below 2^60).
constexpr uint64_t kDisputeWindow = uint64_t{1} << 60;
constexpr uint64_t kFinalizeWindow = 1;

enum class FlowKind { kFinalize, kDisputeGuilty, kDisputeClean };

FlowKind KindFor(int64_t flow) {
  switch (flow % 3) {
    case 0:
      return FlowKind::kFinalize;
    case 1:
      return FlowKind::kDisputeGuilty;
    default:
      return FlowKind::kDisputeClean;
  }
}

// Coordinator actions one flow performs (for the actions/sec denominator).
int64_t ActionsFor(FlowKind kind) {
  if (kind == FlowKind::kFinalize) {
    return 3;  // submit, advance, finalize
  }
  // submit, challenge, (partition, merkle, select, advance) x rounds, adjudicate.
  return 3 + 4 * kRounds;
}

// Runs flow `flow`'s lifecycle homed to `shard`; returns the claim id.
ClaimId RunFlow(Coordinator& coordinator, int64_t flow, uint64_t shard) {
  const FlowKind kind = KindFor(flow);
  const Digest c0 = Sha256::Hash("flow-" + std::to_string(flow));
  const ClaimId id = coordinator.SubmitCommitment(
      c0, kind == FlowKind::kFinalize ? kFinalizeWindow : kDisputeWindow,
      /*proposer_bond=*/10.0, shard);
  if (kind == FlowKind::kFinalize) {
    coordinator.AdvanceTimeFor(id, kFinalizeWindow);
    coordinator.TryFinalize(id);
    return id;
  }
  coordinator.OpenChallenge(id, /*challenger_bond=*/2.0);
  const std::vector<Digest> child_hashes(static_cast<size_t>(kChildren), c0);
  for (int64_t round = 0; round < kRounds; ++round) {
    coordinator.RecordPartition(id, kChildren, child_hashes);
    coordinator.RecordMerkleCheck(id, kProofsPerRound);
    coordinator.RecordSelection(id, round % kChildren);
    coordinator.AdvanceTimeFor(id, 1);
  }
  coordinator.RecordLeafAdjudication(id, kind == FlowKind::kDisputeGuilty,
                                     /*challenger_share=*/0.5);
  return id;
}

struct Baseline {
  std::vector<int64_t> claim_gas;       // by flow index
  std::vector<ClaimState> claim_state;  // by flow index
  std::vector<Digest> claim_c0;         // by flow index
  int64_t total_gas = 0;
  Balances balances;
};

struct RunResult {
  double actions_per_second = 0.0;
  bool consistent = true;
};

// Drives kTotalFlows lifecycles with `threads` threads against a `shards`-shard
// coordinator (thread t works flows t, t+T, ... and homes them to shard t % S),
// then cross-checks every claim against the baseline.
RunResult RunConfiguration(size_t shards, int threads, const Baseline* baseline,
                           Baseline* baseline_out) {
  Coordinator coordinator(GasSchedule{}, /*round_timeout=*/kDisputeWindow, shards);
  std::vector<std::vector<ClaimId>> ids(static_cast<size_t>(threads));

  int64_t total_actions = 0;
  for (int64_t flow = 0; flow < kTotalFlows; ++flow) {
    total_actions += ActionsFor(KindFor(flow));
  }

  Stopwatch watch;
  std::vector<std::thread> drivers;
  drivers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    drivers.emplace_back([&, t] {
      std::vector<ClaimId>& mine = ids[static_cast<size_t>(t)];
      mine.reserve(static_cast<size_t>(kTotalFlows / threads + 1));
      const uint64_t shard = static_cast<uint64_t>(t) % shards;
      for (int64_t flow = t; flow < kTotalFlows; flow += threads) {
        mine.push_back(RunFlow(coordinator, flow, shard));
      }
    });
  }
  for (std::thread& driver : drivers) {
    driver.join();
  }
  const double elapsed = watch.ElapsedMillis() / 1e3;

  RunResult result;
  result.actions_per_second = static_cast<double>(total_actions) / elapsed;

  // Collect per-flow records (flow f ran on thread f % T as its (f / T)-th claim).
  std::vector<int64_t> claim_gas(kTotalFlows);
  std::vector<ClaimState> claim_state(kTotalFlows);
  std::vector<Digest> claim_c0(kTotalFlows);
  for (int64_t flow = 0; flow < kTotalFlows; ++flow) {
    const ClaimId id = ids[static_cast<size_t>(flow % threads)]
                          [static_cast<size_t>(flow / threads)];
    const ClaimRecord record = coordinator.claim(id);
    claim_gas[static_cast<size_t>(flow)] = record.gas;
    claim_state[static_cast<size_t>(flow)] = record.state;
    claim_c0[static_cast<size_t>(flow)] = record.c0;
  }
  const int64_t total_gas = coordinator.gas().total();
  const Balances balances = coordinator.balances();

  if (baseline_out != nullptr) {
    baseline_out->claim_gas = claim_gas;
    baseline_out->claim_state = claim_state;
    baseline_out->claim_c0 = claim_c0;
    baseline_out->total_gas = total_gas;
    baseline_out->balances = balances;
  }
  if (baseline != nullptr) {
    for (int64_t flow = 0; flow < kTotalFlows; ++flow) {
      const size_t f = static_cast<size_t>(flow);
      if (claim_gas[f] != baseline->claim_gas[f] ||
          claim_state[f] != baseline->claim_state[f] ||
          !(claim_c0[f] == baseline->claim_c0[f])) {
        result.consistent = false;
      }
    }
    if (total_gas != baseline->total_gas) {
      result.consistent = false;
    }
    // The ledger fold sums per-shard doubles in shard order; allow fp-fold slack.
    if (std::abs(balances.proposer - baseline->balances.proposer) > 1e-6 ||
        std::abs(balances.challenger - baseline->balances.challenger) > 1e-6 ||
        std::abs(balances.treasury - baseline->balances.treasury) > 1e-6) {
      result.consistent = false;
    }
  }
  return result;
}

}  // namespace
}  // namespace tao

int main() {
  using namespace tao;
  std::printf("Coordinator shard scaling (%lld claim lifecycles, no model work)\n",
              static_cast<long long>(kTotalFlows));
  std::printf("Threads pinned to shards (thread t -> shard t %% S); every cell is\n");
  std::printf("cross-checked claim-for-claim against the 1-shard 1-thread baseline.\n\n");

  Baseline baseline;
  RunConfiguration(/*shards=*/1, /*threads=*/1, nullptr, &baseline);

  TablePrinter table({"shards", "threads", "actions_per_s", "vs_1shard", "check"});
  std::vector<double> one_shard_rate;
  for (const size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
    for (const int threads : {1, 2, 4, 8}) {
      const RunResult result = RunConfiguration(shards, threads, &baseline, nullptr);
      if (!result.consistent) {
        std::printf("CROSS-CHECK FAILURE at shards=%zu threads=%d\n", shards, threads);
        return 1;
      }
      if (shards == 1) {
        one_shard_rate.push_back(result.actions_per_second);
      }
      const double speedup =
          result.actions_per_second /
          one_shard_rate[static_cast<size_t>(
              threads == 1 ? 0 : (threads == 2 ? 1 : (threads == 4 ? 2 : 3)))];
      table.AddRow({std::to_string(shards), std::to_string(threads),
                    TablePrinter::Fixed(result.actions_per_second, 0),
                    TablePrinter::Fixed(speedup, 2) + "x", "ok"});
    }
  }
  table.Print();
  std::printf("\nvs_1shard compares each cell against the SAME thread count on one\n");
  std::printf("shard (lock-contention relief only). Single-core hosts stay ~1x by\n");
  std::printf("hardware; the table then certifies the cross-check. Multi-core CI\n");
  std::printf("shows contended configurations pulling ahead as shards grow.\n");
  return 0;
}
