// Shared helpers for the bench harnesses. Each bench binary regenerates one table or
// figure of the paper's evaluation (see DESIGN.md's per-experiment index); these
// helpers provide common calibration, attack-sweep, and formatting plumbing.

#ifndef TAO_BENCH_BENCH_COMMON_H_
#define TAO_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/attack/pgd.h"
#include "src/calib/calibrator.h"
#include "src/graph/executor.h"
#include "src/models/model_zoo.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace tao {
namespace bench {

// Calibration with a bench-friendly sample count. The paper uses m=50 on real GPUs;
// the simulated fleet is perfectly stationary, so smaller m converges to the same
// envelopes (the stability bench quantifies this).
inline Calibration CalibrateModel(const Model& model, int samples = 8,
                                  uint64_t seed = 0xca11b8a7e) {
  CalibrateOptions options;
  options.num_samples = samples;
  options.seed = seed;
  return Calibrate(model, DeviceRegistry::Fleet(), options);
}

// Aggregated outcome of a bucketed attack sweep (one Table 2 cell).
struct BucketCell {
  int attacks = 0;
  int successes = 0;
  std::vector<double> delta_m_failed;
  std::vector<double> delta_rel_failed;

  double Asr() const {
    return attacks == 0 ? 0.0 : static_cast<double>(successes) / attacks;
  }
  double MeanDeltaM() const {
    return delta_m_failed.empty() ? 0.0 : Mean(delta_m_failed);
  }
  double MeanDeltaRel() const {
    return delta_rel_failed.empty() ? 0.0 : Mean(delta_rel_failed);
  }
};

// Runs the PGD attack over `num_inputs` fresh inputs x 5 margin buckets and
// accumulates per-bucket statistics. Also returns every failed-attack delta_rel in
// `all_failed_rel` when non-null (for the Fig. 5 boxplots).
inline std::vector<BucketCell> RunBucketedAttacks(const Model& model,
                                                  const ThresholdSet& thresholds,
                                                  const AttackConfig& config, int num_inputs,
                                                  uint64_t seed,
                                                  std::vector<double>* all_failed_rel = nullptr) {
  std::vector<BucketCell> buckets(5);
  const PgdAttack attack(model, thresholds, config);
  Rng input_rng(seed);
  Rng bucket_rng(seed ^ 0xabcdef);
  const Executor exec(*model.graph, DeviceRegistry::Reference());
  for (int i = 0; i < num_inputs; ++i) {
    const std::vector<Tensor> input = model.sample_input(input_rng);
    const Tensor logits = exec.RunOutput(input);
    const std::vector<int64_t> targets = PgdAttack::SampleBucketTargets(logits, bucket_rng);
    for (size_t bucket = 0; bucket < targets.size(); ++bucket) {
      const AttackOutcome outcome = attack.Attack(input, targets[bucket]);
      BucketCell& cell = buckets[bucket];
      ++cell.attacks;
      if (outcome.success) {
        ++cell.successes;
      } else {
        cell.delta_m_failed.push_back(outcome.delta_m);
        cell.delta_rel_failed.push_back(outcome.delta_rel);
        if (all_failed_rel != nullptr) {
          all_failed_rel->push_back(outcome.delta_rel);
        }
      }
    }
  }
  return buckets;
}

// False-positive rate of the full verification pipeline over honest cross-device runs
// at threshold scale alpha: fraction of inputs whose *output* check (the dispute
// trigger) flags an honest proposer.
inline double HonestFalsePositiveRate(const Model& model, const ThresholdSet& thresholds,
                                      double scale, int num_inputs, uint64_t seed) {
  const ThresholdSet scaled = thresholds.Scaled(scale);
  Rng rng(seed);
  int flagged = 0;
  const Graph& graph = *model.graph;
  const Executor proposer(graph, DeviceRegistry::ByName("H100"));
  const Executor challenger(graph, DeviceRegistry::ByName("RTX4090"));
  for (int i = 0; i < num_inputs; ++i) {
    const std::vector<Tensor> input = model.sample_input(rng);
    const ExecutionTrace tp = proposer.Run(input);
    const ExecutionTrace tc = challenger.Run(input);
    bool any = false;
    for (const NodeId id : graph.op_nodes()) {
      if (scaled.Exceeds(id, tp.value(id), tc.value(id))) {
        any = true;
        break;
      }
    }
    if (any) {
      ++flagged;
    }
  }
  return static_cast<double>(flagged) / num_inputs;
}

inline std::string CellString(const BucketCell& cell) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f  %.3f(%.1f%%)", cell.Asr() * 100.0,
                cell.MeanDeltaM(), cell.MeanDeltaRel() * 100.0);
  return buffer;
}

// Machine-readable bench summary. Benches that wire it accept `--json=<path>` and
// write a flat JSON object of their headline numbers (throughput, percentiles,
// the bitwise-check verdict) next to the human table, so CI can assert on runs
// and dashboards can diff them without scraping stdout. Without the flag every
// call is a no-op.
class JsonSummary {
 public:
  JsonSummary(int argc, char** argv, std::string bench) : bench_(std::move(bench)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(7);
      }
    }
  }

  bool active() const { return !path_.empty(); }

  void Add(const std::string& name, double value) {
    if (!active()) {
      return;
    }
    char buffer[64];
    // Integral values render without exponent; others round-trip.
    if (value == static_cast<double>(static_cast<long long>(value))) {
      std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
    } else {
      std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    }
    entries_.push_back({name, buffer});
  }

  void AddBool(const std::string& name, bool value) {
    if (active()) {
      entries_.push_back({name, value ? "true" : "false"});
    }
  }

  // Writes `{"bench": "...", "metrics": {...}}`; returns false on IO failure.
  bool Write() const {
    if (!active()) {
      return true;
    }
    std::FILE* file = std::fopen(path_.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(file, "{\"bench\": \"%s\", \"metrics\": {", bench_.c_str());
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(file, "%s\"%s\": %s", i == 0 ? "" : ", ",
                   entries_[i].first.c_str(), entries_[i].second.c_str());
    }
    std::fprintf(file, "}}\n");
    std::fclose(file);
    std::printf("\nwrote JSON summary to %s\n", path_.c_str());
    return true;
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace bench
}  // namespace tao

#endif  // TAO_BENCH_BENCH_COMMON_H_
