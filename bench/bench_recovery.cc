// Durability bench: changelog append throughput vs fsync policy, and recovery time
// vs replay-tail length (docs/durability.md).
//
// Workload: the shard-scaling bench's claim-lifecycle mix (finalize /
// guilty-dispute / clean-dispute, ~15 coordinator actions per dispute) driven
// single-threaded against a 4-shard coordinator, so every number isolates the
// durability pipeline — no model execution, no service threads.
//
// Table 1 (append): actions/sec with the changelog off vs each FsyncPolicy,
// including the final FlushDurability barrier, plus the records/bytes/fsyncs the
// writer reports. Every durable run is cross-checked bitwise against the in-memory
// reference before its throughput is printed (the WAL may cost time, never state).
//
// Table 2 (recovery): cold-start reconstruction time as the changelog tail grows,
// with snapshots disabled (recovery replays everything) and enabled (recovery loads
// the newest snapshot and replays only the tail). Each recovered coordinator is
// again cross-checked bitwise against an uninterrupted in-memory run.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/crypto/sha256.h"
#include "src/durability/options.h"
#include "src/protocol/coordinator.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

namespace tao {
namespace {

constexpr size_t kShards = 4;
// Disputes get an effectively infinite window/timeout so clock advances from other
// flows on the same shard never push them past a deadline.
constexpr uint64_t kDisputeWindow = uint64_t{1} << 60;
constexpr uint64_t kFinalizeWindow = 1;
constexpr int64_t kRounds = 3;
constexpr int64_t kChildren = 2;

// Runs one claim lifecycle homed to `shard`; returns the number of coordinator
// actions it issued (= changelog records it appends when durable).
int64_t RunFlow(Coordinator& coordinator, int64_t flow, uint64_t shard) {
  const int kind = static_cast<int>(flow % 3);  // 0 finalize, 1 guilty, 2 clean
  const Digest c0 = Sha256::Hash("recovery-flow-" + std::to_string(flow));
  const ClaimId id = coordinator.SubmitCommitment(
      c0, kind == 0 ? kFinalizeWindow : kDisputeWindow, /*proposer_bond=*/10.0, shard);
  if (kind == 0) {
    coordinator.AdvanceTimeFor(id, kFinalizeWindow);
    coordinator.TryFinalize(id);
    return 3;
  }
  coordinator.OpenChallenge(id, /*challenger_bond=*/2.0);
  const std::vector<Digest> child_hashes(static_cast<size_t>(kChildren), c0);
  for (int64_t round = 0; round < kRounds; ++round) {
    coordinator.RecordPartition(id, kChildren, child_hashes);
    coordinator.RecordMerkleCheck(id, /*proofs=*/5);
    coordinator.RecordSelection(id, round % kChildren);
    coordinator.AdvanceTimeFor(id, 1);
  }
  coordinator.RecordLeafAdjudication(id, /*proposer_guilty=*/kind == 1,
                                     /*challenger_share=*/0.5);
  return 3 + 4 * kRounds;
}

int64_t DriveWorkload(Coordinator& coordinator, int64_t flows) {
  int64_t actions = 0;
  for (int64_t flow = 0; flow < flows; ++flow) {
    actions += RunFlow(coordinator, flow, static_cast<uint64_t>(flow) % kShards);
  }
  return actions;
}

// Bitwise cross-check of every shard (ledger, gas, clock, claim records) — the
// bench-side twin of the test harness's ExpectCoordinatorsBitwiseEqual.
bool BitwiseEqual(const Coordinator& got, const Coordinator& want) {
  auto bits = [](double v) {
    uint64_t u;
    static_assert(sizeof(u) == sizeof(v));
    std::memcpy(&u, &v, sizeof(u));
    return u;
  };
  if (got.num_shards() != want.num_shards()) {
    return false;
  }
  for (size_t shard = 0; shard < got.num_shards(); ++shard) {
    const Balances a = got.shard_balances(shard);
    const Balances b = want.shard_balances(shard);
    if (bits(a.proposer) != bits(b.proposer) || bits(a.challenger) != bits(b.challenger) ||
        bits(a.treasury) != bits(b.treasury) ||
        got.shard_gas(shard) != want.shard_gas(shard) ||
        got.shard_now(shard) != want.shard_now(shard)) {
      return false;
    }
    const std::vector<ClaimId> ids = got.shard_claims(shard);
    if (ids != want.shard_claims(shard)) {
      return false;
    }
    for (const ClaimId id : ids) {
      const ClaimRecord x = got.claim(id);
      const ClaimRecord y = want.claim(id);
      if (x.id != y.id || x.model != y.model || !(x.c0 == y.c0) ||
          x.committed_at != y.committed_at || x.challenge_window != y.challenge_window ||
          x.state != y.state || bits(x.proposer_bond) != bits(y.proposer_bond) ||
          bits(x.challenger_bond) != bits(y.challenger_bond) ||
          x.dispute_round != y.dispute_round || x.round_deadline != y.round_deadline ||
          x.merkle_checks != y.merkle_checks || x.gas != y.gas) {
        return false;
      }
    }
  }
  return true;
}

std::string BenchDir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("tao_bench_recovery_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

}  // namespace
}  // namespace tao

int main(int argc, char** argv) {
  using namespace tao;
  bench::JsonSummary json(argc, argv, "recovery");
  bool all_checks_ok = true;
  constexpr int64_t kAppendFlows = 2048;

  Coordinator reference(GasSchedule{}, kDisputeWindow, kShards);
  const int64_t total_actions = DriveWorkload(reference, kAppendFlows);
  std::printf("Durability bench: %lld lifecycles, %lld coordinator actions, %zu shards\n\n",
              static_cast<long long>(kAppendFlows),
              static_cast<long long>(total_actions), kShards);

  // ---- Table 1: append throughput vs fsync policy -----------------------------------
  TablePrinter append_table(
      {"changelog", "actions_per_s", "records", "mib", "fsyncs", "check"});
  {
    Coordinator memory(GasSchedule{}, kDisputeWindow, kShards);
    Stopwatch watch;
    DriveWorkload(memory, kAppendFlows);
    const double rate = static_cast<double>(total_actions) / watch.ElapsedSeconds();
    const bool check = BitwiseEqual(memory, reference);
    all_checks_ok &= check;
    append_table.AddRow({"off", TablePrinter::Fixed(rate, 0), "0", "0.00", "0",
                         check ? "ok" : "MISMATCH"});
    json.Add("append/off/actions_per_s", rate);
  }
  for (const FsyncPolicy policy :
       {FsyncPolicy::kNever, FsyncPolicy::kGroupCommit, FsyncPolicy::kEveryFlush}) {
    const std::string dir = BenchDir(FsyncPolicyName(policy));
    DurabilityOptions options;
    options.directory = dir;
    options.fsync = policy;
    options.snapshot_interval_records = 4096;
    Coordinator durable(GasSchedule{}, kDisputeWindow, kShards, /*model_id=*/0, options);
    Stopwatch watch;
    DriveWorkload(durable, kAppendFlows);
    durable.FlushDurability();  // every acknowledged action is on disk
    const double rate = static_cast<double>(total_actions) / watch.ElapsedSeconds();
    const DurabilityStats stats = durable.durability_stats();
    const bool check = BitwiseEqual(durable, reference);
    all_checks_ok &= check;
    append_table.AddRow(
        {FsyncPolicyName(policy), TablePrinter::Fixed(rate, 0),
         std::to_string(stats.records_appended),
         TablePrinter::Fixed(static_cast<double>(stats.bytes_appended) / (1 << 20), 2),
         std::to_string(stats.fsyncs),
         check ? "ok" : "MISMATCH"});
    json.Add(std::string("append/") + FsyncPolicyName(policy) + "/actions_per_s", rate);
    json.Add(std::string("append/") + FsyncPolicyName(policy) + "/fsyncs",
             static_cast<double>(stats.fsyncs));
    std::filesystem::remove_all(dir);
  }
  std::printf("Append throughput (single driver thread, barrier included)\n");
  append_table.Print();

  // ---- Table 2: recovery time vs tail length ----------------------------------------
  std::printf("\nRecovery time vs replay tail (fsync=never while writing)\n");
  TablePrinter recovery_table({"flows", "records", "snapshot_every", "replayed",
                               "recover_ms", "check"});
  for (const int64_t flows : {int64_t{256}, int64_t{1024}, int64_t{4096}}) {
    for (const uint64_t snapshot_interval : {uint64_t{0}, uint64_t{512}}) {
      Coordinator uninterrupted(GasSchedule{}, kDisputeWindow, kShards);
      const int64_t actions = DriveWorkload(uninterrupted, flows);

      const std::string dir = BenchDir("tail_" + std::to_string(flows) + "_" +
                                       std::to_string(snapshot_interval));
      DurabilityOptions options;
      options.directory = dir;
      options.fsync = FsyncPolicy::kNever;
      options.snapshot_interval_records = snapshot_interval;
      {
        Coordinator durable(GasSchedule{}, kDisputeWindow, kShards, /*model_id=*/0,
                            options);
        DriveWorkload(durable, flows);
        durable.FlushDurability();
      }
      Stopwatch watch;
      RecoveryStatus status;
      Coordinator recovered(GasSchedule{}, kDisputeWindow, kShards, /*model_id=*/0,
                            options, &status);
      const double recover_ms = watch.ElapsedMillis();
      const bool check = status.ok() && BitwiseEqual(recovered, uninterrupted);
      all_checks_ok &= check;
      recovery_table.AddRow(
          {std::to_string(flows), std::to_string(actions),
           snapshot_interval == 0 ? "off" : std::to_string(snapshot_interval),
           std::to_string(recovered.durability_stats().recovery_replayed),
           TablePrinter::Fixed(recover_ms, 2), check ? "ok" : "MISMATCH"});
      json.Add("recover/flows_" + std::to_string(flows) + "_snap_" +
                   std::to_string(snapshot_interval) + "/ms",
               recover_ms);
      std::filesystem::remove_all(dir);
    }
  }
  recovery_table.Print();
  json.AddBool("bitwise_check", all_checks_ok);
  if (!json.Write()) {
    return 1;
  }
  return all_checks_ok ? 0 : 1;
}
