// Fig. 8: dispute-game microbenchmarks on the BERT mini — varying the partition width
// N in {2, 4, 6, 8, 12, 16}: average dispute rounds, average off-chain dispute time,
// average Merkle proof checks; plus per-round substep time (proposer partition vs
// challenger re-execution/selection) at N = 4, measured across eight different
// perturbed operators spread through the model.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/protocol/dispute.h"
#include "src/util/stopwatch.h"

using namespace tao;
using namespace tao::bench;

int main() {
  std::printf("=== Fig. 8: dispute game vs partition width N (BERT mini) ===\n\n");
  const Model model = BuildBertMini();
  const Graph& graph = *model.graph;
  const Calibration calibration = CalibrateModel(model, /*samples=*/8);
  const ThresholdSet thresholds = calibration.MakeThresholds(3.0);
  const ModelCommitment commitment(graph, thresholds);

  // Eight perturbation sites spread through the canonical order (as in the paper).
  std::vector<NodeId> sites;
  for (int i = 0; i < 8; ++i) {
    sites.push_back(graph.op_nodes()[static_cast<size_t>((i * graph.num_ops()) / 8 +
                                                         graph.num_ops() / 16)]);
  }

  Rng input_rng(0xd15b);
  const std::vector<Tensor> input = model.sample_input(input_rng);

  TablePrinter table({"N", "avg rounds", "avg dispute time (ms)", "avg merkle checks",
                      "avg gas (kgas)", "avg cost ratio"});
  std::vector<std::vector<RoundStats>> n4_round_stats;

  for (const int64_t n : {2, 4, 6, 8, 12, 16}) {
    double total_rounds = 0.0;
    double total_time_ms = 0.0;
    double total_checks = 0.0;
    double total_gas = 0.0;
    double total_ratio = 0.0;
    int games = 0;
    for (const NodeId site : sites) {
      Rng delta_rng(0xde17a + static_cast<uint64_t>(site));
      const Tensor delta = Tensor::Randn(graph.node(site).shape, delta_rng, 5e-2f);
      Coordinator coordinator;
      DisputeOptions options;
      options.partition_n = n;
      DisputeGame game(model, commitment, thresholds, coordinator, options);
      Stopwatch watch;
      const DisputeResult result =
          game.Run(input, DeviceRegistry::ByName("H100"), DeviceRegistry::ByName("RTX4090"),
                   {{site, delta}});
      const double elapsed = watch.ElapsedMillis();
      if (!result.proposer_guilty) {
        continue;  // perturbation hidden by shift-invariance at this site; skip
      }
      total_rounds += static_cast<double>(result.rounds);
      total_time_ms += elapsed;
      total_checks += static_cast<double>(result.total_merkle_checks);
      total_gas += static_cast<double>(result.gas_used) / 1000.0;
      total_ratio += result.cost_ratio;
      ++games;
      if (n == 4) {
        n4_round_stats.push_back(result.round_stats);
      }
    }
    table.AddRow({std::to_string(n), TablePrinter::Fixed(total_rounds / games, 1),
                  TablePrinter::Fixed(total_time_ms / games, 1),
                  TablePrinter::Fixed(total_checks / games, 0),
                  TablePrinter::Fixed(total_gas / games, 1),
                  TablePrinter::Fixed(total_ratio / games, 2)});
    std::printf("N=%lld done (%d/%zu games convicted)\n", static_cast<long long>(n), games,
                sites.size());
  }
  std::printf("\n");
  table.Print();

  // Per-round substep time at N = 4, aggregated across the eight dispute games.
  std::printf("\nper-round substep time at N=4 (across %zu games):\n", n4_round_stats.size());
  TablePrinter substeps({"round", "proposer partition ms (med)", "challenger select ms (med)",
                         "slice size (med)"});
  size_t max_rounds = 0;
  for (const auto& stats : n4_round_stats) {
    max_rounds = std::max(max_rounds, stats.size());
  }
  for (size_t r = 0; r < max_rounds; ++r) {
    std::vector<double> partition_ms;
    std::vector<double> select_ms;
    std::vector<double> sizes;
    for (const auto& stats : n4_round_stats) {
      if (r < stats.size()) {
        partition_ms.push_back(stats[r].proposer_partition_ms);
        select_ms.push_back(stats[r].challenger_selection_ms);
        sizes.push_back(static_cast<double>(stats[r].slice_size));
      }
    }
    substeps.AddRow({std::to_string(r), TablePrinter::Fixed(Median(partition_ms), 2),
                     TablePrinter::Fixed(Median(select_ms), 2),
                     TablePrinter::Fixed(Median(sizes), 0)});
  }
  substeps.Print();
  std::printf("\nShape check vs paper (Fig. 8): rounds fall ~log_N |V| (from ~log2 at\n"
              "N=2 to ~3 at N>=12); dispute time drops sharply then plateaus; Merkle\n"
              "checks shrink with N; both substeps decay with round index as slices\n"
              "shrink. Guideline N in [8,12].\n");

  // --- Speculation-policy tradeoff (the ROADMAP adaptive-speculation item) ----------
  // `speculative_reexecution` is off by default because fanning every round's
  // children out inflates the DCR (wasted work past the offender, worst on the huge
  // early-round slices). The adaptive policy speculates only when partition_n > 2
  // and the round's slice is already small, buying back most of the wall-clock win
  // at a fraction of the DCR cost. Verdicts are identical across policies (checked
  // below) — only cost accounting and latency move.
  std::printf("\n=== speculation policy: DCR vs dispute latency ===\n\n");
  TablePrinter spec_table({"N", "policy", "avg dispute time (ms)", "avg cost ratio",
                           "avg reexec flops (M)"});
  for (const int64_t n : {4, 8}) {
    // One lazy run per site serves as BOTH the policy-0 row and the verdict
    // reference the speculative policies are checked against.
    struct LazyRun {
      NodeId site;
      Tensor delta;
      DisputeResult result;
      double elapsed_ms = 0.0;
    };
    std::vector<LazyRun> lazy_runs;
    for (const NodeId site : sites) {
      Rng delta_rng(0xde17a + static_cast<uint64_t>(site));
      LazyRun run;
      run.site = site;
      run.delta = Tensor::Randn(graph.node(site).shape, delta_rng, 5e-2f);
      Coordinator coordinator;
      DisputeOptions options;
      options.partition_n = n;
      options.num_threads = 4;  // speculation needs the pool to fan out on
      DisputeGame game(model, commitment, thresholds, coordinator, options);
      Stopwatch watch;
      run.result = game.Run(input, DeviceRegistry::ByName("H100"),
                            DeviceRegistry::ByName("RTX4090"), {{site, run.delta}});
      run.elapsed_ms = watch.ElapsedMillis();
      lazy_runs.push_back(std::move(run));
    }

    bool verdicts_consistent = true;
    for (const int policy : {0, 1, 2}) {  // 0 = lazy, 1 = adaptive, 2 = always
      double total_time_ms = 0.0;
      double total_ratio = 0.0;
      double total_flops = 0.0;
      int games = 0;
      for (const LazyRun& lazy : lazy_runs) {
        DisputeResult result;
        double elapsed;
        if (policy == 0) {
          result = lazy.result;
          elapsed = lazy.elapsed_ms;
        } else {
          Coordinator coordinator;
          DisputeOptions options;
          options.partition_n = n;
          options.num_threads = 4;
          options.speculative_reexecution = policy == 2;
          options.adaptive_speculation = policy == 1;
          DisputeGame game(model, commitment, thresholds, coordinator, options);
          Stopwatch watch;
          result = game.Run(input, DeviceRegistry::ByName("H100"),
                            DeviceRegistry::ByName("RTX4090"),
                            {{lazy.site, lazy.delta}});
          elapsed = watch.ElapsedMillis();
          // Cross-policy verdict check: speculation may only move cost accounting
          // and wall-clock; changing a verdict is a correctness bug, not a tradeoff.
          if (result.proposer_guilty != lazy.result.proposer_guilty ||
              result.rounds != lazy.result.rounds ||
              result.leaf_op != lazy.result.leaf_op) {
            verdicts_consistent = false;
          }
        }
        if (!result.proposer_guilty) {
          continue;
        }
        total_time_ms += elapsed;
        total_ratio += result.cost_ratio;
        total_flops += static_cast<double>(result.challenger_flops) / 1e6;
        ++games;
      }
      const char* name = policy == 0 ? "lazy" : (policy == 1 ? "adaptive" : "always");
      spec_table.AddRow({std::to_string(n), name,
                         TablePrinter::Fixed(total_time_ms / games, 1),
                         TablePrinter::Fixed(total_ratio / games, 2),
                         TablePrinter::Fixed(total_flops / games, 1)});
    }
    if (!verdicts_consistent) {
      std::printf("VERDICT DIVERGENCE across speculation policies at N=%lld\n",
                  static_cast<long long>(n));
      return 1;
    }
  }
  spec_table.Print();
  std::printf("\nAdaptive speculates only when partition_n > 2 and the round slice is\n"
              "<= %lld ops: early giant-slice rounds stay lazy (that is where wasted\n"
              "children dominate DCR), late narrow rounds fan out (latency win, DCR\n"
              "noise). Expect: cost ratio lazy <= adaptive << always, with adaptive\n"
              "recovering most of always's wall-clock drop on multi-core hosts.\n",
              static_cast<long long>(DisputeOptions{}.speculative_slice_limit));
  return 0;
}
