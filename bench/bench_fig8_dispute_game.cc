// Fig. 8: dispute-game microbenchmarks on the BERT mini — varying the partition width
// N in {2, 4, 6, 8, 12, 16}: average dispute rounds, average off-chain dispute time,
// average Merkle proof checks; plus per-round substep time (proposer partition vs
// challenger re-execution/selection) at N = 4, measured across eight different
// perturbed operators spread through the model.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/protocol/dispute.h"
#include "src/util/stopwatch.h"

using namespace tao;
using namespace tao::bench;

int main() {
  std::printf("=== Fig. 8: dispute game vs partition width N (BERT mini) ===\n\n");
  const Model model = BuildBertMini();
  const Graph& graph = *model.graph;
  const Calibration calibration = CalibrateModel(model, /*samples=*/8);
  const ThresholdSet thresholds = calibration.MakeThresholds(3.0);
  const ModelCommitment commitment(graph, thresholds);

  // Eight perturbation sites spread through the canonical order (as in the paper).
  std::vector<NodeId> sites;
  for (int i = 0; i < 8; ++i) {
    sites.push_back(graph.op_nodes()[static_cast<size_t>((i * graph.num_ops()) / 8 +
                                                         graph.num_ops() / 16)]);
  }

  Rng input_rng(0xd15b);
  const std::vector<Tensor> input = model.sample_input(input_rng);

  TablePrinter table({"N", "avg rounds", "avg dispute time (ms)", "avg merkle checks",
                      "avg gas (kgas)", "avg cost ratio"});
  std::vector<std::vector<RoundStats>> n4_round_stats;

  for (const int64_t n : {2, 4, 6, 8, 12, 16}) {
    double total_rounds = 0.0;
    double total_time_ms = 0.0;
    double total_checks = 0.0;
    double total_gas = 0.0;
    double total_ratio = 0.0;
    int games = 0;
    for (const NodeId site : sites) {
      Rng delta_rng(0xde17a + static_cast<uint64_t>(site));
      const Tensor delta = Tensor::Randn(graph.node(site).shape, delta_rng, 5e-2f);
      Coordinator coordinator;
      DisputeOptions options;
      options.partition_n = n;
      DisputeGame game(model, commitment, thresholds, coordinator, options);
      Stopwatch watch;
      const DisputeResult result =
          game.Run(input, DeviceRegistry::ByName("H100"), DeviceRegistry::ByName("RTX4090"),
                   {{site, delta}});
      const double elapsed = watch.ElapsedMillis();
      if (!result.proposer_guilty) {
        continue;  // perturbation hidden by shift-invariance at this site; skip
      }
      total_rounds += static_cast<double>(result.rounds);
      total_time_ms += elapsed;
      total_checks += static_cast<double>(result.total_merkle_checks);
      total_gas += static_cast<double>(result.gas_used) / 1000.0;
      total_ratio += result.cost_ratio;
      ++games;
      if (n == 4) {
        n4_round_stats.push_back(result.round_stats);
      }
    }
    table.AddRow({std::to_string(n), TablePrinter::Fixed(total_rounds / games, 1),
                  TablePrinter::Fixed(total_time_ms / games, 1),
                  TablePrinter::Fixed(total_checks / games, 0),
                  TablePrinter::Fixed(total_gas / games, 1),
                  TablePrinter::Fixed(total_ratio / games, 2)});
    std::printf("N=%lld done (%d/%zu games convicted)\n", static_cast<long long>(n), games,
                sites.size());
  }
  std::printf("\n");
  table.Print();

  // Per-round substep time at N = 4, aggregated across the eight dispute games.
  std::printf("\nper-round substep time at N=4 (across %zu games):\n", n4_round_stats.size());
  TablePrinter substeps({"round", "proposer partition ms (med)", "challenger select ms (med)",
                         "slice size (med)"});
  size_t max_rounds = 0;
  for (const auto& stats : n4_round_stats) {
    max_rounds = std::max(max_rounds, stats.size());
  }
  for (size_t r = 0; r < max_rounds; ++r) {
    std::vector<double> partition_ms;
    std::vector<double> select_ms;
    std::vector<double> sizes;
    for (const auto& stats : n4_round_stats) {
      if (r < stats.size()) {
        partition_ms.push_back(stats[r].proposer_partition_ms);
        select_ms.push_back(stats[r].challenger_selection_ms);
        sizes.push_back(static_cast<double>(stats[r].slice_size));
      }
    }
    substeps.AddRow({std::to_string(r), TablePrinter::Fixed(Median(partition_ms), 2),
                     TablePrinter::Fixed(Median(select_ms), 2),
                     TablePrinter::Fixed(Median(sizes), 0)});
  }
  substeps.Print();
  std::printf("\nShape check vs paper (Fig. 8): rounds fall ~log_N |V| (from ~log2 at\n"
              "N=2 to ~3 at N>=12); dispute time drops sharply then plateaus; Merkle\n"
              "checks shrink with N; both substeps decay with round index as slices\n"
              "shrink. Guideline N in [8,12].\n");
  return 0;
}
