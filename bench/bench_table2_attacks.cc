// Table 2: bucketed attack outcomes under threshold scaling.
//
// For ResNet-mini, BERT-mini, and Qwen-mini, runs the PGD/Adam attack of Sec. 4.4
// against (a) empirical thresholds at alpha = 1x/2x/3x and (b) theoretical bounds at
// x1 deterministic, x1 probabilistic, x0.5 probabilistic. Reports, per logit-margin
// bucket: ASR(%) and mean delta_m (delta_rel) on failed runs, plus the honest-run
// false-positive rate per alpha. Paper shape to match: 0% ASR everywhere under
// empirical thresholds even at 3x, near-zero FP, and deterministic theoretical bounds
// admitting markedly more attack progress (largest on the LLM).

#include <cstdio>

#include "bench/bench_common.h"

using namespace tao;
using namespace tao::bench;

namespace {

constexpr int kInputs = 3;  // x 5 buckets = 15 attack targets per cell

void RunModel(const char* label, const Model& model) {
  std::printf("\n--- %s (stand-in for %s) ---\n", label, model.paper_counterpart.c_str());
  const Calibration calibration = CalibrateModel(model, /*samples=*/8);
  const ThresholdSet thresholds = calibration.MakeThresholds(3.0);

  TablePrinter table({"bound check", "scale", "0-20%", "20-40%", "40-60%", "60-80%",
                      "80-100%", "FP(%)"});

  // Empirical thresholds at alpha multipliers 1, 2, 3.
  for (const double scale : {1.0, 2.0, 3.0}) {
    AttackConfig config;
    config.feasible = FeasibleSetKind::kEmpirical;
    config.scale = scale;
    config.max_iters = 40;
    const auto buckets = RunBucketedAttacks(model, thresholds, config, kInputs,
                                            0x7ab1e2 + static_cast<uint64_t>(scale * 10));
    const double fp = HonestFalsePositiveRate(model, thresholds, scale, 20,
                                              0xfa15e + static_cast<uint64_t>(scale));
    std::vector<std::string> row = {"Empirical", "x" + TablePrinter::Fixed(scale, 0)};
    for (const BucketCell& cell : buckets) {
      row.push_back(CellString(cell));
    }
    row.push_back(TablePrinter::Fixed(fp * 100.0, 1));
    table.AddRow(row);
    std::printf("  empirical x%.0f done\n", scale);
  }

  // Theoretical bounds: x1 deterministic, x1 probabilistic, x0.5 probabilistic.
  struct TheoSetting {
    const char* label;
    BoundMode mode;
    double scale;
  };
  const std::vector<TheoSetting> settings = {
      {"x1(d)", BoundMode::kDeterministic, 1.0},
      {"x1(p)", BoundMode::kProbabilistic, 1.0},
      {"x0.5(p)", BoundMode::kProbabilistic, 0.5},
  };
  for (const TheoSetting& setting : settings) {
    AttackConfig config;
    config.feasible = FeasibleSetKind::kTheoretical;
    config.theo_mode = setting.mode;
    config.scale = setting.scale;
    config.max_iters = 40;
    const auto buckets = RunBucketedAttacks(model, thresholds, config, kInputs,
                                            0x7e09 + static_cast<uint64_t>(setting.scale * 100) +
                                                (setting.mode == BoundMode::kDeterministic));
    std::vector<std::string> row = {"Theo", setting.label};
    for (const BucketCell& cell : buckets) {
      row.push_back(CellString(cell));
    }
    row.push_back("-");
    table.AddRow(row);
    std::printf("  theoretical %s done\n", setting.label);
  }
  table.Print();
}

}  // namespace

namespace {

// Long-reduction sensitivity study: at paper scale the LLM's k ~ 4096+ inner products
// make the deterministic gamma_k leaf bound loose enough for a nonzero ASR (2.4% on
// Qwen3-8B in Table 2). The mini transformers have k ~ 48; the wide-MLP model
// restores the long-k regime so the mechanism is visible at tractable cost.
void RunWideReductionStudy() {
  const WideMlpConfig config;
  std::printf("\n--- long-reduction study (wide-mlp, k = %lld) ---\n",
              static_cast<long long>(config.input_dim));
  const Model model = BuildWideMlp(config);
  const Calibration calibration = CalibrateModel(model, /*samples=*/8);
  const ThresholdSet thresholds = calibration.MakeThresholds(3.0);

  TablePrinter table({"bound check", "scale", "ASR(%)", "mean delta_m (delta_rel) on fails"});
  struct Setting {
    const char* kind;
    const char* scale_label;
    FeasibleSetKind feasible;
    BoundMode mode;
    double scale;
  };
  const std::vector<Setting> settings = {
      {"Empirical", "x3", FeasibleSetKind::kEmpirical, BoundMode::kProbabilistic, 3.0},
      {"Theo", "x1(d)", FeasibleSetKind::kTheoretical, BoundMode::kDeterministic, 1.0},
      {"Theo", "x1(p)", FeasibleSetKind::kTheoretical, BoundMode::kProbabilistic, 1.0},
      {"Theo", "x0.5(p)", FeasibleSetKind::kTheoretical, BoundMode::kProbabilistic, 0.5},
  };
  for (const Setting& setting : settings) {
    AttackConfig config;
    config.feasible = setting.feasible;
    config.theo_mode = setting.mode;
    config.scale = setting.scale;
    config.max_iters = 40;
    const auto buckets =
        RunBucketedAttacks(model, thresholds, config, /*num_inputs=*/4, 0x81d);
    BucketCell all;
    for (const BucketCell& cell : buckets) {
      all.attacks += cell.attacks;
      all.successes += cell.successes;
      all.delta_m_failed.insert(all.delta_m_failed.end(), cell.delta_m_failed.begin(),
                                cell.delta_m_failed.end());
      all.delta_rel_failed.insert(all.delta_rel_failed.end(), cell.delta_rel_failed.begin(),
                                  cell.delta_rel_failed.end());
    }
    char cell[64];
    std::snprintf(cell, sizeof(cell), "%.3f (%.1f%%)", all.MeanDeltaM(),
                  all.MeanDeltaRel() * 100.0);
    table.AddRow({setting.kind, setting.scale_label,
                  TablePrinter::Fixed(all.Asr() * 100.0, 1), cell});
    std::printf("  %s %s done\n", setting.kind, setting.scale_label);
  }
  table.Print();
}

}  // namespace

int main() {
  std::printf("=== Table 2: bucketed attack outcomes under threshold scaling ===\n");
  std::printf("cell format: ASR%%  mean_delta_m(delta_rel%%) on failed runs; %d targets/cell\n",
              kInputs * 5);

  RunModel("BERT", BuildBertMini());
  RunModel("ResNet", BuildResNetMini());
  RunModel("Qwen", BuildQwenMini());
  RunWideReductionStudy();

  std::printf("\nShape check vs paper (Table 2): empirical ASR 0%% at every alpha with\n"
              "~0 false positives; in the long-reduction regime the deterministic\n"
              "worst-case bound opens a real attack window (the paper's 2.4%% ASR on\n"
              "Qwen3-8B) while probabilistic bounds shrink it and empirical thresholds\n"
              "close it — motivating committee adjudication at the leaf.\n");
  return 0;
}
