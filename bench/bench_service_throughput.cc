// Verification-service throughput: a closed-loop load generator driving the
// always-on VerificationService across submitters {1, 4, 16} x verify workers
// {1, 2, 8}, reporting claims/sec and p50/p99 enqueue->verdict latency from the
// service's own MetricsRegistry. One fixed 48-claim workload (mixed honest/cheating,
// supervised/unsupervised, BERT-mini) is partitioned across the submitter threads,
// and every configuration's per-claim C0 digests and verdicts are cross-checked
// against a sequential per-claim baseline before its numbers are reported — the
// service may reorder and re-batch work freely, but it must never change an outcome.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/calib/calibrator.h"
#include "src/service/verification_service.h"
#include "src/util/table.h"

namespace tao {
namespace {

constexpr size_t kClaims = 48;

std::vector<BatchClaim> MakeClaims(const Model& model, size_t count, uint64_t seed) {
  const Graph& graph = *model.graph;
  const auto& fleet = DeviceRegistry::Fleet();
  Rng rng(seed);
  std::vector<BatchClaim> claims;
  claims.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    BatchClaim claim;
    claim.inputs = model.sample_input(rng);
    claim.proposer_device = &fleet[rng.NextBounded(fleet.size())];
    if (rng.NextDouble() < 0.25) {
      const NodeId site =
          graph.op_nodes()[rng.NextBounded(static_cast<uint64_t>(graph.num_ops() - 1))];
      Rng delta_rng(rng.NextU64());
      claim.perturbations.push_back(
          {site, Tensor::Randn(graph.node(site).shape, delta_rng, 5e-2f)});
    }
    if (rng.NextDouble() < 0.5) {
      claim.verifier_device = &fleet[rng.NextBounded(fleet.size())];
    }
    claims.push_back(std::move(claim));
  }
  return claims;
}

struct PerClaimBaseline {
  Digest c0{};
  bool guilty = false;
  bool flagged = false;
};

// Per-claim sequential reference: each claim's lifecycle run standalone (its own
// coordinator). C0, the threshold flag, and the verdict are order-independent, so
// this one baseline serves every (submitters x workers) configuration.
std::vector<PerClaimBaseline> ComputeBaselines(const Model& model,
                                               const ModelCommitment& commitment,
                                               const ThresholdSet& thresholds,
                                               const std::vector<BatchClaim>& claims) {
  const Graph& graph = *model.graph;
  std::vector<PerClaimBaseline> baselines;
  baselines.reserve(claims.size());
  for (const BatchClaim& claim : claims) {
    PerClaimBaseline baseline;
    Coordinator coordinator;
    if (claim.supervised()) {
      DisputeGame game(model, commitment, thresholds, coordinator, DisputeOptions{});
      const DisputeResult result = game.Run(claim.inputs, *claim.proposer_device,
                                            *claim.verifier_device, claim.perturbations);
      baseline.c0 = coordinator.claim(result.claim_id).c0;
      baseline.guilty = result.proposer_guilty;
      baseline.flagged = result.challenge_raised;
    } else {
      const Executor exec(graph, *claim.proposer_device);
      const ExecutionTrace trace = exec.RunPerturbed(claim.inputs, claim.perturbations);
      ResultMeta meta;
      meta.device = claim.proposer_device->name;
      meta.challenge_window = DisputeOptions{}.challenge_window;
      baseline.c0 = ComputeResultCommitment(commitment, claim.inputs,
                                            trace.value(graph.output()), meta);
    }
    baselines.push_back(baseline);
  }
  return baselines;
}

struct RunResult {
  MetricsSnapshot metrics;
  bool deterministic = true;
};

RunResult RunConfiguration(const Model& model, const ModelCommitment& commitment,
                           const ThresholdSet& thresholds,
                           const std::vector<BatchClaim>& claims,
                           const std::vector<PerClaimBaseline>& baselines,
                           size_t num_submitters, int num_workers) {
  Coordinator coordinator;
  ServiceOptions options;
  options.num_workers = num_workers;
  options.queue_capacity = 16;  // small enough that submitters feel backpressure
  options.batching.initial_hint = 8;
  options.verifier.dispute.num_threads = 4;
  options.verifier.reuse_buffers = true;
  VerificationService service(model, commitment, thresholds, coordinator, options);

  // Closed-loop submitters: each owns a contiguous slice of the workload and pushes
  // as fast as blocking admission allows.
  std::vector<std::vector<std::shared_ptr<ClaimTicket>>> tickets(num_submitters);
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < num_submitters; ++s) {
    submitters.emplace_back([&, s] {
      const size_t begin = s * kClaims / num_submitters;
      const size_t end = (s + 1) * kClaims / num_submitters;
      for (size_t i = begin; i < end; ++i) {
        tickets[s].push_back(service.Submit(claims[i], s));
      }
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  service.Drain();

  RunResult result;
  result.metrics = service.metrics();
  for (size_t s = 0; s < num_submitters; ++s) {
    const size_t begin = s * kClaims / num_submitters;
    for (size_t i = 0; i < tickets[s].size(); ++i) {
      const BatchClaimOutcome& outcome = tickets[s][i]->Wait();
      const PerClaimBaseline& baseline = baselines[begin + i];
      if (outcome.c0 != baseline.c0 || outcome.proposer_guilty != baseline.guilty ||
          outcome.flagged != baseline.flagged) {
        result.deterministic = false;
      }
    }
  }
  return result;
}

}  // namespace
}  // namespace tao

int main(int argc, char** argv) {
  using namespace tao;
  bench::JsonSummary json(argc, argv, "service_throughput");
  std::printf("Verification-service throughput (%zu-claim workload, BERT-mini)\n", kClaims);
  std::printf("Closed-loop submitters block on the admission queue (capacity 16);\n");
  std::printf("the BatchFormer sizes cohorts adaptively; per-claim digests and\n");
  std::printf("verdicts are cross-checked against the sequential baseline.\n\n");

  const Model model = BuildBertMini();
  CalibrateOptions calib_options;
  calib_options.num_samples = 4;
  const ThresholdSet thresholds =
      Calibrate(model, DeviceRegistry::Fleet(), calib_options).MakeThresholds(3.0);
  const ModelCommitment commitment(*model.graph, thresholds);
  const std::vector<BatchClaim> claims = MakeClaims(model, kClaims, 0x5e6b);
  const std::vector<PerClaimBaseline> baselines =
      ComputeBaselines(model, commitment, thresholds, claims);

  TablePrinter table({"submitters", "workers", "claims_per_s", "p50_ms", "p99_ms",
                      "batches", "peak_queue"});
  for (const size_t submitters : {size_t{1}, size_t{4}, size_t{16}}) {
    for (const int workers : {1, 2, 8}) {
      const RunResult result = RunConfiguration(model, commitment, thresholds, claims,
                                                baselines, submitters, workers);
      if (!result.deterministic) {
        std::printf("DETERMINISM VIOLATION at submitters=%zu workers=%d\n", submitters,
                    workers);
        return 1;
      }
      table.AddRow({std::to_string(submitters), std::to_string(workers),
                    TablePrinter::Fixed(result.metrics.claims_per_second, 1),
                    TablePrinter::Fixed(result.metrics.LatencyPercentileMillis(0.5), 1),
                    TablePrinter::Fixed(result.metrics.LatencyPercentileMillis(0.99), 1),
                    std::to_string(result.metrics.batches_dispatched),
                    std::to_string(result.metrics.peak_queue_depth)});
      const std::string key =
          "s" + std::to_string(submitters) + "_w" + std::to_string(workers);
      json.Add(key + "/claims_per_s", result.metrics.claims_per_second);
      json.Add(key + "/p50_ms", result.metrics.LatencyPercentileMillis(0.5));
      json.Add(key + "/p99_ms", result.metrics.LatencyPercentileMillis(0.99));
    }
  }
  table.Print();
  json.AddBool("bitwise_check", true);  // a violation returned 1 above
  if (!json.Write()) {
    return 1;
  }
  std::printf("\np50/p99 are enqueue->verdict (queueing included), read from the\n");
  std::printf("service's log-bucketed latency histogram (one-bucket resolution).\n");
  std::printf("On a single-core host claims/sec stays ~flat by hardware — the table\n");
  std::printf("then certifies determinism; multi-core hosts show worker scaling.\n");
  return 0;
}
