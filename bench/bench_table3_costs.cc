// Table 3: forward and dispute costs across the four models at N = 2 — forward FLOPs,
// dispute steps, on-chain gas (kgas), DCR (challenger FLOPs to reach and adjudicate
// the leaf) as a range over perturbation sites, and the cost ratio DCR/forward.
// Paper shape: ~11-13 steps, ~2M gas, cost ratio spanning ~[0.4, 1.25] depending on
// where compute mass sits relative to the dispute path.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/protocol/dispute.h"

using namespace tao;
using namespace tao::bench;

int main() {
  std::printf("=== Table 3: forward and dispute costs across models (N=2) ===\n\n");

  TablePrinter table({"Metric", "BERT", "Diffusion", "LLM", "ResNet"});
  std::vector<std::string> forward_row = {"Forward Cost (MFLOPs)"};
  std::vector<std::string> steps_row = {"Dispute Steps"};
  std::vector<std::string> gas_row = {"On-chain Cost (kgas)"};
  std::vector<std::string> dcr_row = {"DCR (MFLOPs)"};
  std::vector<std::string> ratio_row = {"Cost Ratio Range"};

  std::vector<Model> models;
  models.push_back(BuildBertMini());
  models.push_back(BuildDiffusionMini());
  models.push_back(BuildQwenMini());
  models.push_back(BuildResNetMini());

  for (const Model& model : models) {
    const Graph& graph = *model.graph;
    const Calibration calibration = CalibrateModel(model, /*samples=*/6);
    const ThresholdSet thresholds = calibration.MakeThresholds(3.0);
    const ModelCommitment commitment(graph, thresholds);

    Rng input_rng(0x7ab1e3);
    const std::vector<Tensor> input = model.sample_input(input_rng);

    // Perturbation sites at varied depths (dispute cost depends on where compute mass
    // sits along the localization path, not on the disagreement location per se).
    std::vector<NodeId> sites;
    for (int i = 0; i < 6; ++i) {
      sites.push_back(
          graph.op_nodes()[static_cast<size_t>((i * graph.num_ops()) / 6 + 2)]);
    }

    double min_ratio = 1e18;
    double max_ratio = 0.0;
    double min_dcr = 1e18;
    double max_dcr = 0.0;
    double steps = 0.0;
    double gas = 0.0;
    int games = 0;
    for (const NodeId site : sites) {
      Rng delta_rng(0xabc + static_cast<uint64_t>(site));
      const Tensor delta = Tensor::Randn(graph.node(site).shape, delta_rng, 5e-2f);
      Coordinator coordinator;
      DisputeOptions options;
      options.partition_n = 2;
      DisputeGame game(model, commitment, thresholds, coordinator, options);
      const DisputeResult result =
          game.Run(input, DeviceRegistry::ByName("A100"), DeviceRegistry::ByName("RTX6000"),
                   {{site, delta}});
      if (!result.proposer_guilty) {
        continue;
      }
      min_ratio = std::min(min_ratio, result.cost_ratio);
      max_ratio = std::max(max_ratio, result.cost_ratio);
      const double dcr = static_cast<double>(result.challenger_flops) / 1e6;
      min_dcr = std::min(min_dcr, dcr);
      max_dcr = std::max(max_dcr, dcr);
      steps += static_cast<double>(result.rounds) + 1.0;  // + leaf adjudication step
      gas += static_cast<double>(result.gas_used) / 1000.0;
      ++games;
    }
    std::printf("%s: %d/%zu games convicted\n", model.name.c_str(), games, sites.size());

    char buffer[64];
    forward_row.push_back(
        TablePrinter::Fixed(static_cast<double>(graph.TotalFlops()) / 1e6, 2));
    steps_row.push_back(TablePrinter::Fixed(steps / games, 1));
    gas_row.push_back(TablePrinter::Fixed(gas / games, 1));
    std::snprintf(buffer, sizeof(buffer), "[%.2f, %.2f]", min_dcr, max_dcr);
    dcr_row.push_back(buffer);
    std::snprintf(buffer, sizeof(buffer), "[%.2f, %.2f]", min_ratio, max_ratio);
    ratio_row.push_back(buffer);
  }

  table.AddRow(forward_row);
  table.AddRow(steps_row);
  table.AddRow(gas_row);
  table.AddRow(dcr_row);
  table.AddRow(ratio_row);
  std::printf("\n");
  table.Print();
  std::printf("\nShape check vs paper (Table 3): steps ~ log2|V| + 1; gas ~= fixed\n"
              "~1.0 Mgas overhead + ~88.7 kgas/round (~2 Mgas total at paper scale);\n"
              "cost ratio spans roughly [0.4, 1.25] of one forward.\n");
  return 0;
}
