// Multi-model serving-gateway bench: two zoo models served concurrently through one
// ServingGateway under a hot/cold traffic mix (the hot model takes 8x the claims),
// reporting per-model claims/sec and p50/p99 enqueue->verdict latency from the
// gateway's per-model metrics, plus the apportioned memory-budget shares. Before any
// number is reported, every hot-model outcome (C0 digest, flag, verdict, per-claim
// gas, claim id) is cross-checked bitwise against a SINGLE-MODEL baseline — the same
// claims pushed through a plain PR-4 VerificationService — so the table certifies
// that multi-model routing added zero outcome drift. CI smoke-runs this binary.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/calib/calibrator.h"
#include "src/registry/serving_gateway.h"
#include "src/util/table.h"

namespace tao {
namespace {

constexpr size_t kHotClaims = 32;
constexpr size_t kColdClaims = 4;

std::vector<BatchClaim> MakeClaims(const Model& model, size_t count, uint64_t seed) {
  const Graph& graph = *model.graph;
  const auto& fleet = DeviceRegistry::Fleet();
  Rng rng(seed);
  std::vector<BatchClaim> claims;
  claims.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    BatchClaim claim;
    claim.inputs = model.sample_input(rng);
    claim.proposer_device = &fleet[rng.NextBounded(fleet.size())];
    if (rng.NextDouble() < 0.25) {
      const NodeId site =
          graph.op_nodes()[rng.NextBounded(static_cast<uint64_t>(graph.num_ops() - 1))];
      Rng delta_rng(rng.NextU64());
      claim.perturbations.push_back(
          {site, Tensor::Randn(graph.node(site).shape, delta_rng, 5e-2f)});
    }
    if (rng.NextDouble() < 0.5) {
      claim.verifier_device = &fleet[rng.NextBounded(fleet.size())];
    }
    claims.push_back(std::move(claim));
  }
  return claims;
}

struct CommittedModel {
  Model model;
  std::unique_ptr<ThresholdSet> thresholds;
  std::unique_ptr<ModelCommitment> commitment;
};

CommittedModel MakeCommitted(Model model) {
  CommittedModel committed;
  committed.model = std::move(model);
  CalibrateOptions options;
  options.num_samples = 4;
  committed.thresholds = std::make_unique<ThresholdSet>(
      Calibrate(committed.model, DeviceRegistry::Fleet(), options).MakeThresholds(3.0));
  committed.commitment =
      std::make_unique<ModelCommitment>(*committed.model.graph, *committed.thresholds);
  return committed;
}

ServiceOptions MakeServiceOptions() {
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 16;
  options.batching.initial_hint = 8;
  options.verifier.dispute.num_threads = 4;
  options.verifier.reuse_buffers = true;
  return options;
}

// Single-model baseline: the hot model's claims through a plain VerificationService
// (the PR-4 path the gateway must reproduce bitwise when routing is added on top).
std::vector<BatchClaimOutcome> RunSingleModelBaseline(const CommittedModel& committed,
                                                      const std::vector<BatchClaim>& claims) {
  Coordinator coordinator;
  VerificationService service(committed.model, *committed.commitment,
                              *committed.thresholds, coordinator, MakeServiceOptions());
  std::vector<std::shared_ptr<ClaimTicket>> tickets;
  for (const BatchClaim& claim : claims) {
    tickets.push_back(service.Submit(claim));
  }
  service.Drain();
  std::vector<BatchClaimOutcome> outcomes;
  outcomes.reserve(tickets.size());
  for (const auto& ticket : tickets) {
    outcomes.push_back(ticket->Wait());
  }
  return outcomes;
}

}  // namespace
}  // namespace tao

int main(int argc, char** argv) {
  using namespace tao;
  bench::JsonSummary json(argc, argv, "multi_model_gateway");
  std::printf("Multi-model serving gateway (hot/cold mix: %zu vs %zu claims)\n",
              kHotClaims, kColdClaims);
  std::printf("Two models share one runtime pool and one global arena budget;\n");
  std::printf("hot-model outcomes are cross-checked bitwise against a single-model\n");
  std::printf("VerificationService baseline before numbers are reported.\n\n");

  BertConfig bert_config;
  bert_config.layers = 2;
  ResNetConfig resnet_config;
  resnet_config.image_size = 16;
  resnet_config.stem_channels = 4;
  resnet_config.blocks_per_stage = {1, 1};
  const CommittedModel hot = MakeCommitted(BuildBertMini(bert_config));
  const CommittedModel cold = MakeCommitted(BuildResNetMini(resnet_config));

  const std::vector<BatchClaim> hot_claims = MakeClaims(hot.model, kHotClaims, 0x607);
  const std::vector<BatchClaim> cold_claims = MakeClaims(cold.model, kColdClaims, 0xc01d);
  const std::vector<BatchClaimOutcome> baseline = RunSingleModelBaseline(hot, hot_claims);

  ModelRegistry registry;
  GatewayOptions gateway_options;
  gateway_options.rebalance_interval = 8;  // visible budget drift within the run
  ServingGateway gateway(registry, gateway_options);
  const ModelId hot_id = registry.Register(hot.model);
  registry.Commit(hot_id, *hot.commitment, *hot.thresholds);
  const ModelId cold_id = registry.Register(cold.model);
  registry.Commit(cold_id, *cold.commitment, *cold.thresholds);
  gateway.Serve(hot_id, MakeServiceOptions());
  gateway.Serve(cold_id, MakeServiceOptions());

  std::vector<std::shared_ptr<ClaimTicket>> hot_tickets;
  std::vector<std::shared_ptr<ClaimTicket>> cold_tickets;
  std::thread hot_submitter([&] {
    for (const BatchClaim& claim : hot_claims) {
      GatewaySubmitResult result = gateway.Submit(hot_id, claim, /*submitter=*/1);
      if (result.accepted()) {
        hot_tickets.push_back(std::move(result.ticket));
      }
    }
  });
  std::thread cold_submitter([&] {
    for (const BatchClaim& claim : cold_claims) {
      GatewaySubmitResult result = gateway.Submit(cold_id, claim, /*submitter=*/2);
      if (result.accepted()) {
        cold_tickets.push_back(std::move(result.ticket));
      }
    }
  });
  hot_submitter.join();
  cold_submitter.join();
  gateway.DrainAll();

  // Determinism cross-check: routing through the multi-model gateway must not move
  // a single bit of any hot-model outcome relative to the single-model service.
  if (hot_tickets.size() != baseline.size()) {
    std::printf("ADMISSION MISMATCH: %zu accepted vs %zu baseline\n", hot_tickets.size(),
                baseline.size());
    return 1;
  }
  for (size_t i = 0; i < hot_tickets.size(); ++i) {
    const BatchClaimOutcome& got = hot_tickets[i]->Wait();
    const BatchClaimOutcome& want = baseline[i];
    if (got.c0 != want.c0 || got.flagged != want.flagged ||
        got.proposer_guilty != want.proposer_guilty || got.claim_id != want.claim_id ||
        got.gas_used != want.gas_used || got.final_state != want.final_state) {
      std::printf("DETERMINISM VIOLATION at hot claim %zu\n", i);
      return 1;
    }
  }

  const GatewaySnapshot snapshot = gateway.metrics();
  TablePrinter table({"model", "state", "accepted", "claims_per_s", "p50_ms", "p99_ms",
                      "disputes", "budget_mb"});
  for (const GatewayModelMetrics& model : snapshot.models) {
    table.AddRow({model.name, ModelLifecycleName(model.state),
                  std::to_string(model.service.accepted),
                  TablePrinter::Fixed(model.service.claims_per_second, 1),
                  TablePrinter::Fixed(model.service.LatencyPercentileMillis(0.5), 1),
                  TablePrinter::Fixed(model.service.LatencyPercentileMillis(0.99), 1),
                  std::to_string(model.service.disputes_run),
                  std::to_string(model.memory_budget_bytes >> 20)});
    const std::string key = model.id == hot_id ? "hot" : "cold";
    json.Add(key + "/claims_per_s", model.service.claims_per_second);
    json.Add(key + "/p50_ms", model.service.LatencyPercentileMillis(0.5));
    json.Add(key + "/p99_ms", model.service.LatencyPercentileMillis(0.99));
    json.Add(key + "/accepted", static_cast<double>(model.service.accepted));
  }
  table.AddRow({"aggregate", "-", std::to_string(snapshot.aggregate.accepted),
                TablePrinter::Fixed(snapshot.aggregate.claims_per_second, 1),
                TablePrinter::Fixed(snapshot.aggregate.LatencyPercentileMillis(0.5), 1),
                TablePrinter::Fixed(snapshot.aggregate.LatencyPercentileMillis(0.99), 1),
                std::to_string(snapshot.aggregate.disputes_run), "-"});
  table.Print();
  json.Add("aggregate/claims_per_s", snapshot.aggregate.claims_per_second);
  json.Add("aggregate/p99_ms", snapshot.aggregate.LatencyPercentileMillis(0.99));
  json.AddBool("bitwise_check", true);  // a violation returned 1 above
  if (!json.Write()) {
    return 1;
  }

  std::printf("\nhot-model outcomes: bitwise identical to the single-model baseline.\n");
  std::printf("budget_mb is the gateway's live apportionment of the global arena\n");
  std::printf("budget (queue-pressure weighted, floored); an idle model pays ~zero\n");
  std::printf("CPU — its workers block on an empty queue and the shared pool serves\n");
  std::printf("whoever has work.\n");
  return 0;
}
