// Network front-end throughput bench: closed-loop loopback clients against the
// framed RPC gateway (src/net), sweeping connection counts {1, 4, 16} x claim
// payload sizes (WideMlp input_dim {1024, 16384} — ~4KB vs ~64KB Submit frames),
// reporting claims/sec and p50/p99 submit->verdict latency per cell. Before any
// number is reported, every cell's remote outcomes (claim id, C0 digest, flag,
// verdict, per-claim gas) are cross-checked bitwise against an IN-PROCESS gateway
// fed the same accepted order — the wire, the dispatcher, and the retry machinery
// must add zero outcome drift. CI smoke-runs this binary and asserts the
// bitwise_check flag in its --json= output.

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/calib/calibrator.h"
#include "src/net/client_channel.h"
#include "src/registry/serving_gateway.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace tao {
namespace {

constexpr size_t kConnectionSweep[] = {1, 4, 16};

std::vector<BatchClaim> MakeClaims(const Model& model, size_t count, uint64_t seed) {
  const auto& fleet = DeviceRegistry::Fleet();
  Rng rng(seed);
  std::vector<BatchClaim> claims;
  claims.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    BatchClaim claim;
    claim.inputs = model.sample_input(rng);
    claim.proposer_device = &fleet[rng.NextBounded(fleet.size())];
    if (rng.NextDouble() < 0.25) {
      claim.verifier_device = &fleet[rng.NextBounded(fleet.size())];
    }
    claims.push_back(std::move(claim));
  }
  return claims;
}

struct CommittedModel {
  Model model;
  std::unique_ptr<ThresholdSet> thresholds;
  std::unique_ptr<ModelCommitment> commitment;
};

CommittedModel MakeCommitted(Model model) {
  CommittedModel committed;
  committed.model = std::move(model);
  CalibrateOptions options;
  options.num_samples = 3;
  committed.thresholds = std::make_unique<ThresholdSet>(
      Calibrate(committed.model, DeviceRegistry::Fleet(), options).MakeThresholds(3.0));
  committed.commitment =
      std::make_unique<ModelCommitment>(*committed.model.graph, *committed.thresholds);
  return committed;
}

ServiceOptions MakeServiceOptions() {
  ServiceOptions options;
  options.num_workers = 2;
  options.batching.initial_hint = 4;
  options.verifier.reuse_buffers = true;
  return options;
}

struct RemoteOutcome {
  uint64_t ticket = 0;
  size_t claim_index = 0;
  WireVerdict verdict;
};

struct CellResult {
  double elapsed_seconds = 0;
  std::vector<double> latencies_ms;  // per-claim submit->verdict
  std::vector<RemoteOutcome> outcomes;
};

// One sweep cell: `connections` closed-loop clients (each its own connection,
// session, and thread) split `claims` round-robin and run submit -> ack ->
// verdict per claim.
CellResult RunRemoteCell(int port, ModelId model_id,
                         const std::vector<BatchClaim>& claims, size_t connections) {
  CellResult result;
  std::mutex mu;
  std::vector<std::thread> clients;
  const auto start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      RetriableChannel channel("127.0.0.1", port,
                               /*session_id=*/0xBE4C0000 + c + 1);
      std::vector<double> local_latencies;
      std::vector<RemoteOutcome> local_outcomes;
      for (size_t i = c; i < claims.size(); i += connections) {
        const auto claim_start = std::chrono::steady_clock::now();
        uint64_t request_id = 0;
        const WireSubmitAck ack =
            channel.Submit(model_id, /*submitter=*/c, claims[i], &request_id);
        if (ack.status != WireStatus::kAccepted) {
          std::fprintf(stderr, "submit rejected: %s\n", WireStatusName(ack.status));
          std::exit(1);
        }
        WireVerdict verdict;
        if (!channel.WaitVerdict(request_id, verdict)) {
          std::fprintf(stderr, "verdict lost for request %llu\n",
                       static_cast<unsigned long long>(request_id));
          std::exit(1);
        }
        const auto claim_end = std::chrono::steady_clock::now();
        local_latencies.push_back(
            std::chrono::duration<double, std::milli>(claim_end - claim_start).count());
        local_outcomes.push_back({ack.ticket, i, verdict});
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_ms.insert(result.latencies_ms.end(), local_latencies.begin(),
                                 local_latencies.end());
      result.outcomes.insert(result.outcomes.end(), local_outcomes.begin(),
                             local_outcomes.end());
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

// Replays the cell's ACCEPTED order (ticket-sorted) through a plain in-process
// gateway and compares every outcome bitwise. Returns false on any drift.
bool CrossCheckCell(const CommittedModel& committed,
                    const std::vector<BatchClaim>& claims, CellResult& cell) {
  std::sort(cell.outcomes.begin(), cell.outcomes.end(),
            [](const RemoteOutcome& a, const RemoteOutcome& b) {
              return a.ticket < b.ticket;
            });
  for (size_t i = 0; i < cell.outcomes.size(); ++i) {
    if (cell.outcomes[i].ticket != i) {
      std::printf("ACCEPTED ORDER NOT DENSE at ticket %zu\n", i);
      return false;
    }
  }
  ModelRegistry registry;
  ServingGateway gateway(registry);
  const ModelId id = registry.Register(committed.model);
  registry.Commit(id, *committed.commitment, *committed.thresholds);
  gateway.Serve(id, MakeServiceOptions());
  std::vector<std::shared_ptr<ClaimTicket>> tickets;
  for (const RemoteOutcome& outcome : cell.outcomes) {
    GatewaySubmitResult result = gateway.Submit(id, claims[outcome.claim_index]);
    if (!result.accepted()) {
      std::printf("IN-PROCESS REPLAY REJECTED claim %zu\n", outcome.claim_index);
      return false;
    }
    tickets.push_back(std::move(result.ticket));
  }
  gateway.DrainAll();
  for (size_t i = 0; i < tickets.size(); ++i) {
    const BatchClaimOutcome& want = tickets[i]->Wait();
    const WireVerdict& got = cell.outcomes[i].verdict;
    if (got.claim_id != want.claim_id || got.c0 != want.c0 ||
        got.flagged != want.flagged || got.proposer_guilty != want.proposer_guilty ||
        got.final_state != static_cast<uint32_t>(want.final_state) ||
        got.gas_used != want.gas_used) {
      std::printf("DETERMINISM VIOLATION at accepted position %zu\n", i);
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace tao

int main(int argc, char** argv) {
  using namespace tao;
  bench::JsonSummary json(argc, argv, "net_throughput");
  std::printf("RPC gateway loopback throughput (closed-loop clients)\n");
  std::printf("Every cell's remote outcomes are cross-checked bitwise against an\n");
  std::printf("in-process gateway fed the same accepted order before reporting.\n\n");

  TablePrinter table({"input_dim", "payload_kb", "conns", "claims", "claims_per_s",
                      "p50_ms", "p99_ms"});
  const int64_t dims[] = {1024, 16384};
  for (const int64_t dim : dims) {
    WideMlpConfig config;
    config.input_dim = dim;
    config.hidden_dim = 64;
    config.num_classes = 32;
    const CommittedModel committed = MakeCommitted(BuildWideMlp(config));
    const size_t total_claims = dim <= 1024 ? 32 : 16;
    const std::vector<BatchClaim> claims =
        MakeClaims(committed.model, total_claims, 0x7a0 + static_cast<uint64_t>(dim));
    // Representative Submit frame size for the table (all claims share a shape).
    WireSubmit probe;
    probe.model_id = 1;
    probe.claim = WireClaimFromBatchClaim(claims[0]);
    const double payload_kb = static_cast<double>(EncodeSubmit(probe).size()) / 1024.0;

    for (const size_t connections : kConnectionSweep) {
      // Fresh server per cell so claim ids, tickets, and the ledger all start
      // from zero — the in-process replay then mirrors the cell exactly.
      ModelRegistry registry;
      GatewayOptions gateway_options;
      gateway_options.rpc.enabled = true;
      ServingGateway gateway(registry, gateway_options);
      const ModelId id = registry.Register(committed.model);
      registry.Commit(id, *committed.commitment, *committed.thresholds);
      gateway.Serve(id, MakeServiceOptions());

      CellResult cell =
          RunRemoteCell(gateway.rpc()->port(), id, claims, connections);
      gateway.DrainAll();
      if (cell.outcomes.size() != claims.size() ||
          !CrossCheckCell(committed, claims, cell)) {
        return 1;
      }

      const double claims_per_s =
          static_cast<double>(claims.size()) / cell.elapsed_seconds;
      const double p50 = Percentile(cell.latencies_ms, 0.5);
      const double p99 = Percentile(cell.latencies_ms, 0.99);
      table.AddRow({std::to_string(dim), TablePrinter::Fixed(payload_kb, 1),
                    std::to_string(connections), std::to_string(claims.size()),
                    TablePrinter::Fixed(claims_per_s, 1), TablePrinter::Fixed(p50, 2),
                    TablePrinter::Fixed(p99, 2)});
      const std::string key =
          "d" + std::to_string(dim) + "/c" + std::to_string(connections);
      json.Add(key + "/claims_per_s", claims_per_s);
      json.Add(key + "/p50_ms", p50);
      json.Add(key + "/p99_ms", p99);
    }
  }
  table.Print();
  json.AddBool("bitwise_check", true);  // any violation returned 1 above
  if (!json.Write()) {
    return 1;
  }
  std::printf("\nAll cells bitwise-identical to the in-process gateway: the wire\n");
  std::printf("adds latency, never outcome drift.\n");
  return 0;
}
