// Ablation: the probabilistic-bound confidence parameter lambda (Sec. 3.1 uses
// lambda = 4, giving >= 99.93% per-reduction confidence and gamma~_k ~ 4u*sqrt(k)).
//
// Sweeps lambda and measures, against actual cross-device matmul/linear deviations:
// the bound magnitude (tightness), the empirical violation rate (soundness in
// practice), and the stated analytical confidence — the trade-off that justifies the
// paper's default.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

using namespace tao;
using namespace tao::bench;

int main() {
  std::printf("=== Ablation: probabilistic-bound confidence lambda ===\n\n");

  // Cross-device deviations for long-ish reductions (k = 2048 dot products).
  const int64_t m = 32;
  const int64_t k = 2048;
  const int64_t n = 16;
  Rng rng(0x1a3bda);
  const std::vector<Tensor> inputs = {Tensor::Randn(Shape{m, k}, rng),
                                      Tensor::Randn(Shape{k, n}, rng)};
  RegisterAllOps();
  const OpKernel& matmul = OpRegistry::Instance().Get("matmul");

  struct DeviceRun {
    Tensor out;
  };
  std::vector<DeviceRun> runs;
  for (const DeviceProfile& device : DeviceRegistry::Fleet()) {
    runs.push_back({matmul.Forward({device, inputs, {}})});
  }

  TablePrinter table({"lambda", "confidence", "gamma~_k", "vs det gamma_k",
                      "violation rate (pairs x elems)"});
  const double det_gamma = Gamma(k);
  for (const double lambda : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
    // Bound with this lambda on the reference profile.
    const Tensor ref_out = matmul.Forward({DeviceRegistry::Reference(), inputs, {}});
    const BoundContext bctx{DeviceRegistry::Reference(), inputs, ref_out, {},
                            BoundMode::kProbabilistic, lambda};
    const DTensor tau = matmul.Bound(bctx);

    int64_t checked = 0;
    int64_t violations = 0;
    for (size_t a = 0; a < runs.size(); ++a) {
      for (size_t b = a + 1; b < runs.size(); ++b) {
        const auto va = runs[a].out.values();
        const auto vb = runs[b].out.values();
        const auto tv = tau.values();
        for (size_t i = 0; i < va.size(); ++i) {
          ++checked;
          const double diff =
              std::abs(static_cast<double>(va[i]) - static_cast<double>(vb[i]));
          if (diff > 2.0 * tv[i]) {  // both sides carry a tau
            ++violations;
          }
        }
      }
    }
    char rate[64];
    std::snprintf(rate, sizeof(rate), "%lld / %lld", static_cast<long long>(violations),
                  static_cast<long long>(checked));
    table.AddRow({TablePrinter::Fixed(lambda, 0),
                  TablePrinter::Fixed(GammaTildeConfidence(lambda), 6),
                  TablePrinter::Scientific(GammaTilde(k, lambda), 2),
                  TablePrinter::Fixed(det_gamma / GammaTilde(k, lambda), 1) + "x tighter",
                  rate});
  }
  table.Print();
  std::printf("\nlambda = 4 (the paper's default) keeps zero observed violations at\n"
              "~%.0fx tighter than the deterministic worst case for k = %lld; smaller\n"
              "lambda tightens further but erodes the confidence guarantee.\n",
              det_gamma / GammaTilde(k, 4.0), static_cast<long long>(k));
  return 0;
}
