// Table 1: stability metrics of the empirical error percentile profiles at selected
// percentiles (p30, p50, p70) for Qwen, BERT, and ResNet minis — SupNorm, Jackknife,
// TailAdj, RollSD at the 50th and 90th percentile across operators (Appendix B,
// W = 10).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/calib/stability.h"

using namespace tao;
using namespace tao::bench;

namespace {

size_t GridIndexOf(const Calibration& calibration, double percentile) {
  for (size_t g = 0; g < calibration.grid.size(); ++g) {
    if (calibration.grid[g] == percentile) {
      return g;
    }
  }
  return calibration.grid.size() / 2;
}

}  // namespace

int main() {
  std::printf("=== Table 1: stability of empirical error percentile profiles ===\n");
  std::printf("(n = 24 calibration samples, W = 10, diagnostics of Appendix B)\n\n");

  TablePrinter table({"Model", "p", "SupNorm@50", "SupNorm@90", "Jack@50", "Jack@90",
                      "TailAdj@50", "TailAdj@90", "RollSD@50", "RollSD@90"});
  struct Entry {
    const char* label;
    Model model;
  };
  std::vector<Entry> entries;
  entries.push_back({"Qwen", BuildQwenMini()});
  entries.push_back({"BERT", BuildBertMini()});
  entries.push_back({"ResNet", BuildResNetMini()});

  for (const Entry& entry : entries) {
    const Calibration calibration = CalibrateModel(entry.model, /*samples=*/24);
    for (const double p : {30.0, 50.0, 70.0}) {
      const StabilitySummary s =
          SummarizeStability(calibration, GridIndexOf(calibration, p));
      table.AddRow({entry.label, TablePrinter::Fixed(p, 0),
                    TablePrinter::Fixed(s.supnorm_p50, 2), TablePrinter::Fixed(s.supnorm_p90, 2),
                    TablePrinter::Fixed(s.jackknife_p50, 2),
                    TablePrinter::Fixed(s.jackknife_p90, 2),
                    TablePrinter::Fixed(s.tailadj_p50, 2), TablePrinter::Fixed(s.tailadj_p90, 2),
                    TablePrinter::Fixed(s.rollsd_p50, 2), TablePrinter::Fixed(s.rollsd_p90, 2)});
    }
    std::printf("calibrated %s\n", entry.model.name.c_str());
  }
  std::printf("\n");
  table.Print();
  std::printf("\nShape check vs paper (Table 1): central tendencies ~0 with tight\n"
              "90th-percentile bounds — near-stationary operator estimates.\n");
  return 0;
}
