// Executor scaling bench: wall-clock speedup of the parallel runtime vs. thread
// count on the wide-MLP and ResNet zoo graphs, plus the allocation traffic the
// TensorArena removes on the output-only path. Every configuration's output is
// checked bitwise against the sequential baseline — the protocol's determinism
// contract — before its timing is reported.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/graph/executor.h"
#include "src/models/model_zoo.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

namespace tao {
namespace {

constexpr int kRepeats = 3;

double MedianSeconds(const Executor& exec, const std::vector<Tensor>& input,
                     const ExecutorOptions& options) {
  std::vector<double> times;
  for (int i = 0; i < kRepeats; ++i) {
    Stopwatch watch;
    (void)exec.RunOutput(input, options);
    times.push_back(watch.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

bool SameBits(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.values().data(), b.values().data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

bool SameBitsD(const DTensor& a, const DTensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.values().data(), b.values().data(),
                     static_cast<size_t>(a.numel()) * sizeof(double)) == 0;
}

// Trace-retaining bounds run (the calibration / adjudication shape): every node
// value AND every bound tensor is retained, so no output ever dies — the only
// recycling such a run gets is per-kernel workspaces and bound scratch cycling
// through the BoundContext/OpContext arena handle. The allocation columns show the
// traffic that removes; values and bounds are checked bitwise against the no-arena
// run first (the arena moves buffers, never values).
void BenchTraceRetainingBounds(const Model& model) {
  Rng rng(0x7a3e);
  const std::vector<Tensor> input = model.sample_input(rng);
  const Executor exec(*model.graph, DeviceRegistry::ByName("H100"));
  std::printf("== %s: trace-retaining run with bounds (keep_values, with_bounds) ==\n",
              model.name.c_str());

  std::vector<Executor::BatchItem> items(1);
  items[0].inputs = &input;
  items[0].keep_values = true;
  ExecutorOptions reference_options;
  reference_options.with_bounds = true;
  const std::vector<ExecutionTrace> reference = exec.RunBatch(items, reference_options);

  TablePrinter table({"threads", "reuse_buffers", "median_s", "alloc_requests",
                      "pool_hits", "recycled"});
  for (const int threads : {1, 4}) {
    for (const bool reuse : {false, true}) {
      ExecutorOptions options;
      options.with_bounds = true;
      options.num_threads = threads;
      options.reuse_buffers = reuse;
      TensorArena::Stats stats;
      const std::vector<ExecutionTrace> traces = exec.RunBatch(items, options, &stats);
      for (const NodeId id : model.graph->op_nodes()) {
        if (!SameBits(traces[0].value(id), reference[0].value(id)) ||
            !SameBitsD(traces[0].bound(id), reference[0].bound(id))) {
          std::printf("DETERMINISM VIOLATION at threads=%d reuse=%d node=%lld\n",
                      threads, static_cast<int>(reuse), static_cast<long long>(id));
          std::abort();
        }
      }
      std::vector<double> times;
      for (int i = 0; i < kRepeats; ++i) {
        Stopwatch watch;
        (void)exec.RunBatch(items, options);
        times.push_back(watch.ElapsedSeconds());
      }
      std::sort(times.begin(), times.end());
      table.AddRow({std::to_string(threads), reuse ? "yes" : "no",
                    TablePrinter::Fixed(times[times.size() / 2], 4),
                    std::to_string(stats.requests), std::to_string(stats.pool_hits),
                    std::to_string(stats.recycled)});
    }
  }
  table.Print();
  std::printf("\n");
}

void BenchModel(const Model& model) {
  Rng rng(0xbe7c);
  const std::vector<Tensor> input = model.sample_input(rng);
  const Executor exec(*model.graph, DeviceRegistry::ByName("H100"));

  std::printf("== %s (stand-in for %s), %lld ops, %.1f MFLOP/forward ==\n",
              model.name.c_str(), model.paper_counterpart.c_str(),
              static_cast<long long>(model.graph->num_ops()),
              static_cast<double>(model.graph->TotalFlops()) / 1e6);

  const Tensor reference = exec.RunOutput(input);
  ExecutorOptions sequential;
  const double base = MedianSeconds(exec, input, sequential);

  TablePrinter table({"threads", "reuse_buffers", "median_s", "speedup", "alloc_requests",
                      "pool_hits", "fresh_allocs"});
  for (const int threads : {1, 2, 4, 8}) {
    for (const bool reuse : {false, true}) {
      ExecutorOptions options;
      options.num_threads = threads;
      options.reuse_buffers = reuse;
      TensorArena::Stats stats;
      const Tensor out = exec.RunOutput(input, options, &stats);
      if (!SameBits(out, reference)) {
        std::printf("DETERMINISM VIOLATION at threads=%d reuse=%d\n", threads,
                    static_cast<int>(reuse));
        std::abort();
      }
      const double t = MedianSeconds(exec, input, options);
      table.AddRow({std::to_string(threads), reuse ? "yes" : "no",
                    TablePrinter::Fixed(t, 4), TablePrinter::Fixed(base / t, 2),
                    std::to_string(stats.requests), std::to_string(stats.pool_hits),
                    std::to_string(stats.fresh_allocations)});
    }
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace tao

int main() {
  std::printf("Executor scaling: parallel runtime (scheduler + ParallelFor + arena)\n");
  std::printf("Speedup is relative to the sequential (num_threads=1, no-arena) median;\n");
  std::printf("allocation columns cover one run (requests = kernel outputs + per-chunk\n");
  std::printf("workspaces, so they grow with thread count as chunks multiply).\n\n");
  tao::BenchModel(tao::BuildWideMlp());
  tao::BenchModel(tao::BuildResNetMini());
  tao::BenchTraceRetainingBounds(tao::BuildResNetMini());
  return 0;
}
