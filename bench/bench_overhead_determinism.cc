// Sec. 6 "negligible overhead" claims, two measurements on the Qwen mini:
//
// (a) Optimistic-phase runtime overhead: the proposer's extra Phase-1 work on top of
//     a plain forward — canonical output serialization + SHA-256 commitment C0. The
//     paper reports ~0.3% added latency on Qwen3-8B for its instrumented runtime.
//
// (b) Schedule-pinning cost: latency delta between each fleet profile's native
//     reduction schedule and the canonical sequential order. In the paper this is the
//     cuDNN/cuBLAS determinism-flag cost (~0.3%); in this simulator every profile is
//     already run-to-run deterministic, so the delta measures only the arithmetic
//     reordering itself (sign can go either way on scalar CPU loops).

#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "src/protocol/commitment.h"
#include "src/util/stopwatch.h"

using namespace tao;
using namespace tao::bench;

namespace {

constexpr int kRepeats = 30;

double TimeLoop(const std::function<void()>& body) {
  body();  // warmup
  Stopwatch watch;
  for (int i = 0; i < kRepeats; ++i) {
    body();
  }
  return watch.ElapsedMillis() / kRepeats;
}

}  // namespace

int main() {
  std::printf("=== Optimistic-execution overhead (Sec. 6.3) ===\n\n");
  const Model model = BuildQwenMini();
  Rng rng(0x0ead);
  std::vector<std::vector<Tensor>> inputs;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(model.sample_input(rng));
  }
  int cursor = 0;
  auto next_input = [&]() -> const std::vector<Tensor>& {
    return inputs[static_cast<size_t>(cursor++ % 8)];
  };

  // (a) Plain forward vs forward + result commitment (the proposer's Phase-1 duty).
  const Executor exec(*model.graph, DeviceRegistry::ByName("A100"));
  const Calibration calibration = CalibrateModel(model, /*samples=*/4);
  const ThresholdSet thresholds = calibration.MakeThresholds(3.0);
  const ModelCommitment commitment(*model.graph, thresholds);
  ResultMeta meta;
  meta.device = "A100";

  const double plain_ms = TimeLoop([&] { (void)exec.RunOutput(next_input()); });
  const double committed_ms = TimeLoop([&] {
    const std::vector<Tensor>& input = next_input();
    const Tensor y = exec.RunOutput(input);
    volatile auto c0 = ComputeResultCommitment(commitment, input, y, meta);
    (void)c0;
  });
  TablePrinter phase1({"configuration", "latency (ms)", "overhead"});
  phase1.AddRow({"plain forward", TablePrinter::Fixed(plain_ms, 3), "-"});
  phase1.AddRow({"forward + TAO commitment (Phase 1)", TablePrinter::Fixed(committed_ms, 3),
                 TablePrinter::Pct((committed_ms - plain_ms) / plain_ms, 2)});
  phase1.Print();
  std::printf("absolute commitment cost: %.3f ms — input-size-bound, independent of\n"
              "model depth; at the paper's Qwen3-8B scale (~10^5x more forward FLOPs)\n"
              "the relative overhead is <<0.3%%.\n",
              committed_ms - plain_ms);

  // (b) Native schedule vs pinned canonical order, per fleet profile.
  std::printf("\nschedule pinning (native order -> canonical sequential):\n");
  TablePrinter pinning({"device", "native (ms)", "pinned (ms)", "delta"});
  for (const DeviceProfile& device : DeviceRegistry::Fleet()) {
    const Executor native_exec(*model.graph, device);
    DeviceProfile pinned = device;
    pinned.order = AccumulationOrder::kSequential;
    const Executor pinned_exec(*model.graph, pinned);
    const double native_ms = TimeLoop([&] { (void)native_exec.RunOutput(next_input()); });
    const double pinned_ms = TimeLoop([&] { (void)pinned_exec.RunOutput(next_input()); });
    pinning.AddRow({device.name, TablePrinter::Fixed(native_ms, 3),
                    TablePrinter::Fixed(pinned_ms, 3),
                    TablePrinter::Pct((pinned_ms - native_ms) / native_ms, 2)});
  }
  pinning.Print();
  std::printf("\nShape check vs paper: the optimistic-phase additions are a small,\n"
              "model-size-independent constant (the paper measures ~0.3%% on Qwen3-8B;\n"
              "on the mini model the same absolute cost is a larger fraction). Pinned\n"
              "scalar loops here are cheaper than blocked ones — the opposite of real\n"
              "GPUs — but pinning cannot remove cross-vendor heterogeneity either way,\n"
              "which is why TAO verifies up to tolerances instead of determinism.\n");
  return 0;
}
