// Multi-step decoding under TAO (Sec. 7 extension): greedy LLM decoding with a
// deterministic tie-break rule, temporal Merkle commitments per step, cross-device
// token agreement, temporal bisection to a cheated step, and prefix finality.

#include <cstdio>

#include "src/models/model_zoo.h"
#include "src/protocol/multistep.h"
#include "src/util/table.h"

using namespace tao;

int main() {
  std::printf("=== TAO multi-step decoding (Sec. 7 extension) ===\n\n");
  const Model model = BuildQwenMini();
  const Graph& graph = *model.graph;
  const int64_t window = graph.node(graph.input_nodes()[0]).shape.numel();

  Rng rng(0xdec0de);
  std::vector<float> prompt;
  for (int64_t i = 0; i < window; ++i) {
    prompt.push_back(
        static_cast<float>(rng.NextBounded(static_cast<uint64_t>(model.num_classes))));
  }
  const int64_t steps = 8;
  TieBreakConfig tie_break;
  tie_break.rule = TieBreakRule::kLexicographic;

  // 1. Honest decoding on two different devices: tokens agree step-for-step.
  const DecodeResult h100 = Decode(model, prompt, steps, DeviceRegistry::ByName("H100"),
                                   tie_break);
  const DecodeResult rtx = Decode(model, prompt, steps, DeviceRegistry::ByName("RTX4090"),
                                  tie_break);
  std::printf("honest decode, H100 vs RTX4090 (lexicographic tie-break):\n  tokens: ");
  bool all_equal = true;
  for (size_t s = 0; s < h100.steps.size(); ++s) {
    std::printf("%lld%s", static_cast<long long>(h100.steps[s].token),
                s + 1 < h100.steps.size() ? " " : "\n");
    all_equal = all_equal && h100.steps[s].token == rtx.steps[s].token;
  }
  std::printf("  cross-device agreement: %s\n", all_equal ? "EXACT (all steps)" : "DIVERGED");
  std::printf("  (temporal roots are proposer-local: logits differ bitwise across\n"
              "   devices, so hashes differ — tolerance applies to logits, and the\n"
              "   tie-break makes the discrete tokens identical)\n\n");

  // 2. A proposer cheats at step 4: temporal bisection pins it; steps 0-3 stay final.
  const NodeId target = graph.op_nodes()[graph.num_ops() / 2];
  Rng delta_rng(7);
  StepPerturbation cheat;
  cheat.step = 4;
  cheat.perturbation.node = target;
  cheat.perturbation.delta = Tensor::Randn(graph.node(target).shape, delta_rng, 0.5f);
  const DecodeResult cheated = Decode(model, prompt, steps, DeviceRegistry::ByName("H100"),
                                      tie_break, {cheat});
  const TemporalDisputeResult dispute = LocalizeTemporalDivergence(cheated, h100);

  TablePrinter table({"step", "honest token", "proposer token", "state hash match"});
  for (int64_t s = 0; s < steps; ++s) {
    table.AddRow({std::to_string(s),
                  std::to_string(h100.steps[static_cast<size_t>(s)].token),
                  std::to_string(cheated.steps[static_cast<size_t>(s)].token),
                  h100.steps[static_cast<size_t>(s)].state_hash ==
                          cheated.steps[static_cast<size_t>(s)].state_hash
                      ? "yes"
                      : "NO"});
  }
  table.Print();
  std::printf("\nproposer cheated at step %lld (node '%s')\n",
              static_cast<long long>(cheat.step), graph.node(target).label.c_str());
  std::printf("temporal bisection found first offending step: %lld (%lld comparisons)\n",
              static_cast<long long>(dispute.first_offending_step),
              static_cast<long long>(dispute.comparisons));
  std::printf("prefix finality: steps 0..%lld finalize immediately; the operator-level\n"
              "dispute game of Sec. 5 then runs inside step %lld only.\n",
              static_cast<long long>(dispute.finalized_prefix - 1),
              static_cast<long long>(dispute.first_offending_step));
  return 0;
}
