// Inference-marketplace simulation: the full TAO deployment story over many tasks.
// Users submit requests to a task pool; proposers execute on random fleet hardware,
// a configurable fraction cheating; voluntary challengers and randomized audits
// supervise claims; disputes localize and slash. Prints realized detection rates
// against the analytical d = (phi + phi_ch)(1 - eps1) of Sec. 5.5 and the final
// ledger.

#include <cstdio>

#include "src/calib/calibrator.h"
#include "src/protocol/marketplace.h"
#include "src/util/table.h"

using namespace tao;

int main() {
  std::printf("=== TAO inference marketplace simulation ===\n\n");
  const Model model = BuildBertMini();
  CalibrateOptions calib_options;
  calib_options.num_samples = 6;
  const Calibration calibration = Calibrate(model, DeviceRegistry::Fleet(), calib_options);
  const ThresholdSet thresholds = calibration.MakeThresholds(3.0);
  const ModelCommitment commitment(*model.graph, thresholds);

  TablePrinter table({"phi_ch", "phi", "cheat rate", "attempted", "caught", "escaped",
                      "realized d", "analytical d", "honest slashes"});
  for (const double supervision : {0.2, 0.5, 0.8}) {
    MarketplaceConfig config;
    config.num_tasks = 60;
    config.cheat_rate = 0.4;
    config.economics.challenge_prob = supervision * 0.6;
    config.economics.audit_prob = supervision * 0.4;
    config.seed = 0x3a4ce7 + static_cast<uint64_t>(supervision * 100);
    Marketplace market(model, commitment, thresholds, config);
    const MarketplaceStats stats = market.Run();
    table.AddRow({TablePrinter::Fixed(config.economics.challenge_prob, 2),
                  TablePrinter::Fixed(config.economics.audit_prob, 2),
                  TablePrinter::Fixed(config.cheat_rate, 2),
                  std::to_string(stats.cheats_attempted), std::to_string(stats.cheats_caught),
                  std::to_string(stats.cheats_escaped),
                  TablePrinter::Fixed(stats.realized_detection_rate(), 2),
                  TablePrinter::Fixed(DetectionProbability(config.economics), 2),
                  std::to_string(stats.honest_slashes)});
    std::printf("supervision level %.1f simulated (%lld tasks)\n", supervision,
                static_cast<long long>(stats.tasks));
  }
  std::printf("\n");
  table.Print();
  std::printf("\nHonest proposers are never slashed; detection tracks the analytical\n"
              "rate, so the Sec. 5.5 deposit sizing (slash > L) applies as designed.\n");
  return 0;
}
