// Live-observability demo: serves a model through the gateway with the embedded
// HTTP monitoring endpoint enabled, drives a small mixed workload (honest and
// cheating, supervised and unsupervised claims) so every pipeline stage records
// spans, then keeps the endpoint up for scraping:
//
//   ./monitoring_demo --port=18080 --serve-seconds=30
//   curl localhost:18080/metrics     # Prometheus counters (claims, latency, CPU)
//   curl localhost:18080/traces      # per-claim span chains, slowest retained
//   curl localhost:18080/healthz
//
// With --serve-seconds=0 (the default) the demo self-checks the routes in-process
// and exits — that mode doubles as the CI smoke test's fallback. CI runs the
// serving mode and curls the endpoint for real.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/calib/calibrator.h"
#include "src/registry/serving_gateway.h"

using namespace tao;

namespace {

std::vector<BatchClaim> MakeClaims(const Model& model, size_t count, uint64_t seed) {
  const Graph& graph = *model.graph;
  const auto& fleet = DeviceRegistry::Fleet();
  Rng rng(seed);
  std::vector<BatchClaim> claims;
  claims.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    BatchClaim claim;
    claim.inputs = model.sample_input(rng);
    claim.proposer_device = &fleet[rng.NextBounded(fleet.size())];
    if (rng.NextDouble() < 0.3) {
      const NodeId site =
          graph.op_nodes()[rng.NextBounded(static_cast<uint64_t>(graph.num_ops() - 1))];
      Rng delta_rng(rng.NextU64());
      claim.perturbations.push_back(
          {site, Tensor::Randn(graph.node(site).shape, delta_rng, 5e-2f)});
    }
    if (rng.NextDouble() < 0.6) {
      claim.verifier_device = &fleet[rng.NextBounded(fleet.size())];
    }
    claims.push_back(std::move(claim));
  }
  return claims;
}

int FlagValue(int argc, char** argv, const char* name, int fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoi(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int port = FlagValue(argc, argv, "--port", 0);
  const int serve_seconds = FlagValue(argc, argv, "--serve-seconds", 0);

  std::printf("=== TAO live-observability demo ===\n\n");
  BertConfig bert;
  bert.seq_len = 12;
  bert.dim = 32;
  bert.ffn_dim = 64;
  bert.layers = 2;
  const Model model = BuildBertMini(bert);
  CalibrateOptions calib_options;
  calib_options.num_samples = 3;
  const ThresholdSet thresholds =
      Calibrate(model, DeviceRegistry::Fleet(), calib_options).MakeThresholds(3.0);
  const ModelCommitment commitment(*model.graph, thresholds);

  ModelRegistry registry;
  GatewayOptions options;
  options.monitoring.enabled = true;
  options.monitoring.port = port;
  options.monitoring.sampler_period_ms = 50;
  options.monitoring.trace.slow_claim_ms = 0.0;  // retain every chain for the demo
  ServingGateway gateway(registry, options);
  std::printf("monitoring endpoint: http://127.0.0.1:%d\n", gateway.monitoring()->port());
  std::printf("routes: /metrics /snapshot /traces /traces.json /healthz\n\n");
  std::fflush(stdout);

  const ModelId id = registry.Register(model);
  registry.Commit(id, commitment, thresholds);
  ServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.queue_capacity = 8;
  gateway.Serve(id, service_options);

  const std::vector<BatchClaim> claims = MakeClaims(model, 12, 0xd3310);
  std::vector<std::shared_ptr<ClaimTicket>> tickets;
  for (const BatchClaim& claim : claims) {
    GatewaySubmitResult result = gateway.Submit(id, claim);
    if (result.accepted()) {
      tickets.push_back(std::move(result.ticket));
    }
  }
  gateway.Drain(id);
  std::printf("workload done: %zu claims verified and resolved\n", tickets.size());

  MonitoringServer& server = *gateway.monitoring();
  if (serve_seconds > 0) {
    std::printf("serving for %d seconds; scrape away.\n", serve_seconds);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  } else {
    // Self-check mode: exercise the routes in-process and print a digest.
    const std::string metrics = server.HandleForTest("/metrics");
    const std::string traces = server.HandleForTest("/traces");
    std::printf("\n/metrics renders %zu bytes; /traces renders %zu bytes\n",
                metrics.size(), traces.size());
    const bool ok = server.HandleForTest("/healthz") == "ok\n" &&
                    metrics.find("tao_aggregate_claims_completed") != std::string::npos &&
                    traces.find("deliver") != std::string::npos;
    std::printf("self-check: %s\n", ok ? "ok" : "FAILED");
    if (!ok) {
      return 1;
    }
  }
  std::printf("requests served over HTTP: %lld\n",
              static_cast<long long>(server.requests_served()));
  return 0;
}
