// Dispute game walkthrough: a malicious proposer injects a perturbation into an
// intermediate tensor (a service "discrepancy" a user could never see from the API);
// a challenger detects the violation at the output, opens a dispute, and the
// Merkle-anchored N-way partition game localizes the disagreement to the exact
// operator, where leaf adjudication slashes the proposer.

#include <cstdio>

#include "src/calib/calibrator.h"
#include "src/protocol/dispute.h"

using namespace tao;

int main() {
  const Model model = BuildQwenMini();
  std::printf("=== TAO dispute game: catching a cheating proposer ===\n\n");
  std::printf("model: %s (%lld operators)\n", model.name.c_str(),
              static_cast<long long>(model.graph->num_ops()));

  CalibrateOptions calib_options;
  calib_options.num_samples = 8;
  const Calibration calibration = Calibrate(model, DeviceRegistry::Fleet(), calib_options);
  const ThresholdSet thresholds = calibration.MakeThresholds(3.0);
  const ModelCommitment commitment(*model.graph, thresholds);

  // The malicious proposer perturbs the SwiGLU gate of a middle layer — e.g. to steer
  // generations — while hoping to stay under the radar.
  const Graph& graph = *model.graph;
  NodeId target = -1;
  for (const NodeId id : graph.op_nodes()) {
    if (graph.node(id).label == "layer2.mlp.silu") {
      target = id;
      break;
    }
  }
  Rng delta_rng(7);
  const Tensor delta = Tensor::Randn(graph.node(target).shape, delta_rng, 3e-2f);
  std::printf("malicious proposer perturbs node %d (%s) with ||delta||_inf ~ 1e-1\n\n",
              target, graph.node(target).label.c_str());

  Coordinator coordinator;
  DisputeOptions options;
  options.partition_n = 4;
  DisputeGame game(model, commitment, thresholds, coordinator, options);
  Rng rng(99);
  const std::vector<Tensor> input = model.sample_input(rng);
  const DisputeResult result = game.Run(input, DeviceRegistry::ByName("A100"),
                                        DeviceRegistry::ByName("RTX6000"),
                                        {{target, delta}});

  std::printf("challenge raised: %s\n\n", result.challenge_raised ? "YES" : "no");
  std::printf("%-6s %-12s %-9s %-9s %-13s %-10s\n", "round", "slice size", "children",
              "selected", "merkle proofs", "reexec ms");
  for (const RoundStats& round : result.round_stats) {
    std::printf("%-6lld %-12lld %-9lld %-9lld %-13lld %-10.2f\n",
                static_cast<long long>(round.round), static_cast<long long>(round.slice_size),
                static_cast<long long>(round.children),
                static_cast<long long>(round.selected_child),
                static_cast<long long>(round.merkle_proofs),
                round.challenger_selection_ms);
  }
  std::printf("\nlocalized to node %d (%s) after %lld rounds — injected node was %d\n",
              result.leaf_op, graph.node(result.leaf_op).label.c_str(),
              static_cast<long long>(result.rounds), target);
  std::printf("leaf path: %s\n", result.leaf.path == LeafPath::kTheoreticalBound
                                     ? "theoretical IEEE-754 bound check"
                                     : "committee vote vs empirical thresholds");
  std::printf("verdict: proposer %s — state %s\n",
              result.proposer_guilty ? "GUILTY (slashed)" : "acquitted",
              ClaimStateName(result.final_state));
  std::printf("dispute cost: %.2fx of one forward pass (DCR), %.1f kgas on-chain\n",
              result.cost_ratio, static_cast<double>(result.gas_used) / 1000.0);
  return 0;
}
