// Economics explorer: sweeps the supervision knobs of Sec. 5.5 and prints how the
// feasible S_slash region (L, D_p] responds — which audit/challenge intensities make
// honest execution a dominant strategy at a given deposit.

#include <cstdio>

#include "src/protocol/economics.h"
#include "src/util/table.h"

using namespace tao;

int main() {
  std::printf("=== TAO economics explorer (Sec. 5.5) ===\n\n");
  const EconomicParams base;
  std::printf("base parameters: C_p=%.2f C'_p=%.2f R_p=%.2f D_p=%.1f S_slash=%.1f\n",
              base.cost_honest, base.cost_cheap_cheat, base.task_reward,
              base.proposer_deposit, base.slash);
  std::printf("detection d = (phi + phi_ch)(1 - eps1) = %.4f\n\n",
              DetectionProbability(base));

  TablePrinter table({"phi (audit)", "phi_ch", "L1", "L2", "L3", "L", "region",
                      "IC @ S=6"});
  for (const double phi : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    for (const double phi_ch : {0.05, 0.10, 0.20}) {
      EconomicParams params = base;
      params.audit_prob = phi;
      params.challenge_prob = phi_ch;
      const FeasibleRegion region = ComputeFeasibleRegion(params);
      char interval[48];
      if (region.non_empty) {
        std::snprintf(interval, sizeof(interval), "(%.2f, %.1f]", region.lower, region.upper);
      } else {
        std::snprintf(interval, sizeof(interval), "empty");
      }
      table.AddRow({TablePrinter::Fixed(phi, 2), TablePrinter::Fixed(phi_ch, 2),
                    TablePrinter::Fixed(region.l1, 2), TablePrinter::Fixed(region.l2, 2),
                    TablePrinter::Fixed(region.l3, 2), TablePrinter::Fixed(region.lower, 2),
                    interval, IncentiveCompatible(params) ? "yes" : "no"});
    }
  }
  table.Print();

  std::printf("\nutilities at the base point:\n");
  std::printf("  proposer honest      : %+.3f\n", ProposerUtilityHonest(base));
  std::printf("  proposer cheap cheat : %+.3f\n", ProposerUtilityCheapCheat(base));
  std::printf("  proposer targeted    : %+.3f  (C''_p >> R_p per Sec. 4)\n",
              ProposerUtilityTargetedCheat(base));
  std::printf("  challenger vs guilty : %+.3f\n", ChallengerUtilityVsGuilty(base));
  std::printf("  challenger vs clean  : %+.3f  (spam deterred)\n",
              ChallengerUtilityVsClean(base));
  std::printf("  committee (guilty)   : %+.3f\n", CommitteeUtilityRuledGuilty(base));
  std::printf("  committee (clean)    : %+.3f\n", CommitteeUtilityRuledClean(base));
  return 0;
}
