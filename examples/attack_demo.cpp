// Attack demo: a white-box adversarial proposer runs the PGD/Adam attack of Sec. 4.4
// against both admissible sets on the ResNet-mini, showing that the empirical
// thresholds admit essentially no progress toward a label flip while the loose
// deterministic worst-case bounds admit much more.

#include <cstdio>

#include "src/attack/pgd.h"
#include "src/calib/calibrator.h"
#include "src/graph/executor.h"
#include "src/util/table.h"

using namespace tao;

int main() {
  std::printf("=== TAO bound-aware attack demo (Sec. 4) ===\n\n");
  const Model model = BuildResNetMini();
  CalibrateOptions calib_options;
  calib_options.num_samples = 8;
  const Calibration calibration = Calibrate(model, DeviceRegistry::Fleet(), calib_options);
  const ThresholdSet thresholds = calibration.MakeThresholds(3.0);

  Rng rng(12);
  const std::vector<Tensor> input = model.sample_input(rng);
  const Executor exec(*model.graph, DeviceRegistry::Reference());
  const Tensor logits = exec.RunOutput(input);
  Rng bucket_rng(13);
  const std::vector<int64_t> targets = PgdAttack::SampleBucketTargets(logits, bucket_rng);
  const int64_t target = targets[0];  // the easiest (smallest-margin) bucket

  struct Setting {
    const char* label;
    AttackConfig config;
  };
  std::vector<Setting> settings;
  {
    AttackConfig emp;
    emp.feasible = FeasibleSetKind::kEmpirical;
    emp.max_iters = 30;
    settings.push_back({"empirical thresholds (alpha=1)", emp});
    AttackConfig emp3 = emp;
    emp3.scale = 3.0;
    settings.push_back({"empirical thresholds (alpha=3)", emp3});
    AttackConfig theo_p;
    theo_p.feasible = FeasibleSetKind::kTheoretical;
    theo_p.theo_mode = BoundMode::kProbabilistic;
    theo_p.max_iters = 30;
    settings.push_back({"theoretical bounds (probabilistic)", theo_p});
    AttackConfig theo_d = theo_p;
    theo_d.theo_mode = BoundMode::kDeterministic;
    settings.push_back({"theoretical bounds (deterministic)", theo_d});
  }

  TablePrinter table({"admissible set", "flip?", "m0", "m_final", "delta_m (rel)"});
  for (const Setting& setting : settings) {
    const PgdAttack attack(model, thresholds, setting.config);
    const AttackOutcome outcome = attack.Attack(input, target);
    char rel[32];
    std::snprintf(rel, sizeof(rel), "%.4f (%.1f%%)", outcome.delta_m,
                  outcome.delta_rel * 100.0);
    table.AddRow({setting.label, outcome.success ? "YES" : "no",
                  TablePrinter::Fixed(outcome.m0, 4), TablePrinter::Fixed(outcome.m_final, 4),
                  rel});
    std::printf("finished: %s\n", setting.label);
  }
  std::printf("\n");
  table.Print();
  std::printf("\nEmpirical thresholds are 1e2-1e3x tighter than worst-case IEEE-754\n"
              "bounds, so the admissible perturbations barely move the logit margin;\n"
              "loose deterministic bounds leave far more attack headroom (Table 2).\n");
  return 0;
}
