// Quickstart: the TAO happy path end to end.
//
// 1. Build an open model (BERT-mini stand-in) and calibrate per-operator empirical
//    error percentile thresholds across the simulated heterogeneous GPU fleet.
// 2. Commit the model: weight Merkle root r_w, graph root r_g, threshold root r_e.
// 3. A proposer executes a request on its device and posts C0 to the coordinator.
// 4. A challenger re-executes on different hardware; outputs differ in low-order bits
//    (IEEE-754 non-associativity) yet pass the tolerance check, so no dispute is
//    raised and the result finalizes after the challenge window.

#include <cstdio>

#include "src/calib/calibrator.h"
#include "src/graph/executor.h"
#include "src/protocol/dispute.h"

using namespace tao;

int main() {
  std::printf("=== TAO quickstart: tolerance-aware optimistic verification ===\n\n");

  // --- Phase 0: model setup + calibration -------------------------------------------
  const Model model = BuildBertMini();
  std::printf("model: %s (stand-in for %s), %lld operators, %.2f MFLOPs/forward\n",
              model.name.c_str(), model.paper_counterpart.c_str(),
              static_cast<long long>(model.graph->num_ops()),
              static_cast<double>(model.graph->TotalFlops()) / 1e6);

  CalibrateOptions calib_options;
  calib_options.num_samples = 8;
  const Calibration calibration = Calibrate(model, DeviceRegistry::Fleet(), calib_options);
  const ThresholdSet thresholds = calibration.MakeThresholds(/*alpha=*/3.0);
  const ModelCommitment commitment(*model.graph, thresholds);
  std::printf("calibrated %zu operators on %zu devices (alpha = %.1f)\n",
              thresholds.size(), DeviceRegistry::Fleet().size(), thresholds.alpha());
  std::printf("  r_w = %s...\n", DigestToHex(commitment.weight_root()).substr(0, 16).c_str());
  std::printf("  r_g = %s...\n", DigestToHex(commitment.graph_root()).substr(0, 16).c_str());
  std::printf("  r_e = %s...\n\n",
              DigestToHex(commitment.threshold_root()).substr(0, 16).c_str());

  // --- Phase 1: optimistic execution -------------------------------------------------
  Rng rng(2026);
  const std::vector<Tensor> input = model.sample_input(rng);
  const DeviceProfile& proposer_device = DeviceRegistry::ByName("H100");
  const DeviceProfile& challenger_device = DeviceRegistry::ByName("RTX4090");

  const Executor proposer(*model.graph, proposer_device);
  const Executor challenger(*model.graph, challenger_device);
  const Tensor y_proposer = proposer.RunOutput(input);
  const Tensor y_challenger = challenger.RunOutput(input);
  std::printf("proposer (%s) vs challenger (%s): max |dy| = %.3e  <- honest FP drift\n",
              proposer_device.name.c_str(), challenger_device.name.c_str(),
              MaxAbsDiff(y_proposer, y_challenger));

  Coordinator coordinator;
  DisputeGame game(model, commitment, thresholds, coordinator);
  const DisputeResult result = game.Run(input, proposer_device, challenger_device);

  std::printf("challenge raised: %s\n", result.challenge_raised ? "YES" : "no");
  std::printf("final state: %s (gas: %.1f kgas)\n", ClaimStateName(result.final_state),
              static_cast<double>(result.gas_used) / 1000.0);
  std::printf("\nThe outputs differ bitwise across devices, but both lie inside the\n"
              "committed per-operator acceptance regions, so the result finalizes\n"
              "without any dispute — no determinism, no trusted hardware.\n");
  return 0;
}
