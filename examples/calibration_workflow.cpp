// Calibration workflow: what a model owner runs at deployment time (Phase 0).
//
// Calibrates per-operator cross-device error percentile profiles for the ResNet-mini,
// prints representative thresholds, validates stability with the Appendix-B
// diagnostics, and emits the threshold commitment r_e to be registered with the
// coordinator alongside r_w and r_g.

#include <cstdio>

#include "src/calib/calibrator.h"
#include "src/calib/stability.h"
#include "src/protocol/commitment.h"
#include "src/util/table.h"

using namespace tao;

int main() {
  std::printf("=== TAO calibration workflow (Phase 0) ===\n\n");
  const Model model = BuildResNetMini();
  std::printf("model: %s, %lld operators\n", model.name.c_str(),
              static_cast<long long>(model.graph->num_ops()));
  std::printf("fleet:");
  for (const DeviceProfile& device : DeviceRegistry::Fleet()) {
    std::printf(" %s", device.name.c_str());
  }
  std::printf("  (4 devices -> 6 unordered pairs)\n\n");

  CalibrateOptions options;
  options.num_samples = 8;
  const Calibration calibration = Calibrate(model, DeviceRegistry::Fleet(), options);
  const ThresholdSet thresholds = calibration.MakeThresholds(3.0);

  // A glance at thresholds for a few representative operators.
  TablePrinter table({"operator", "type", "tau_abs(p50)", "tau_abs(p99)", "tau_rel(p99)"});
  int shown = 0;
  for (const NodeId id : model.graph->op_nodes()) {
    const Node& node = model.graph->node(id);
    if (node.op != "conv2d" && node.op != "batch_norm" && node.op != "linear") {
      continue;
    }
    if (++shown > 8) {
      break;
    }
    const OpThreshold& tau = thresholds.node(id);
    const size_t p50 = 11;  // grid index of p50
    const size_t p99 = 21;  // grid index of p99
    table.AddRow({node.label, node.op, TablePrinter::Scientific(tau.abs[p50], 2),
                  TablePrinter::Scientific(tau.abs[p99], 2),
                  TablePrinter::Scientific(tau.rel[p99], 2)});
  }
  table.Print();

  std::printf("\nstability diagnostics (Appendix B, W=10):\n");
  TablePrinter stability({"percentile", "SupNorm@50", "SupNorm@90", "Jackknife@90",
                          "TailAdj@90", "RollSD@90"});
  for (const size_t grid_index : {6u, 10u, 14u}) {
    const StabilitySummary s = SummarizeStability(calibration, grid_index);
    stability.AddRow({"p" + std::to_string(static_cast<int>(calibration.grid[grid_index])),
                      TablePrinter::Fixed(s.supnorm_p50, 3), TablePrinter::Fixed(s.supnorm_p90, 3),
                      TablePrinter::Fixed(s.jackknife_p90, 3),
                      TablePrinter::Fixed(s.tailadj_p90, 3),
                      TablePrinter::Fixed(s.rollsd_p90, 3)});
  }
  stability.Print();

  const ModelCommitment commitment(*model.graph, thresholds);
  std::printf("\ncommitments to register with the coordinator:\n");
  std::printf("  r_w = %s\n", DigestToHex(commitment.weight_root()).c_str());
  std::printf("  r_g = %s\n", DigestToHex(commitment.graph_root()).c_str());
  std::printf("  r_e = %s\n", DigestToHex(commitment.threshold_root()).c_str());
  return 0;
}
