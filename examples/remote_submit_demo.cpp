// Remote-submission demo: the framed TCP front-end (src/net, docs/net.md) in
// both roles.
//
//   ./remote_submit_demo --serve --port=18090 --serve-seconds=60
//       serves a WideMlp model through the gateway's RPC front-end (plus the
//       monitoring endpoint on port+1, sharing the same dispatcher thread);
//
//   ./remote_submit_demo --connect=127.0.0.1:18090 --claims=8
//       attaches a RetriableChannel, submits claims, and prints each verdict as
//       the server pushes it back.
//
// With no arguments the demo runs BOTH roles in one process over loopback — a
// self-check that serves, submits, kills the connection mid-run to show the
// retry/dedup path, verifies every verdict arrived exactly once, and exits
// nonzero on any failure. That mode doubles as a CI smoke test.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/calib/calibrator.h"
#include "src/net/client_channel.h"
#include "src/registry/serving_gateway.h"

using namespace tao;

namespace {

std::vector<BatchClaim> MakeClaims(const Model& model, size_t count, uint64_t seed) {
  const auto& fleet = DeviceRegistry::Fleet();
  Rng rng(seed);
  std::vector<BatchClaim> claims;
  claims.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    BatchClaim claim;
    claim.inputs = model.sample_input(rng);
    claim.proposer_device = &fleet[rng.NextBounded(fleet.size())];
    if (rng.NextDouble() < 0.4) {
      claim.verifier_device = &fleet[rng.NextBounded(fleet.size())];
    }
    claims.push_back(std::move(claim));
  }
  return claims;
}

struct ServerState {
  std::unique_ptr<ModelRegistry> registry;
  std::unique_ptr<ServingGateway> gateway;
  ModelId model_id = 0;
};

// Calibrates and serves one WideMlp through the gateway with the RPC front-end
// (and monitoring, when `monitoring_port` >= 0) enabled.
ServerState StartServer(int rpc_port, int monitoring_port) {
  WideMlpConfig config;
  config.input_dim = 512;
  config.hidden_dim = 64;
  config.num_classes = 16;
  Model model = BuildWideMlp(config);
  CalibrateOptions calibrate;
  calibrate.num_samples = 3;
  auto thresholds = std::make_unique<ThresholdSet>(
      Calibrate(model, DeviceRegistry::Fleet(), calibrate).MakeThresholds(3.0));
  auto commitment = std::make_unique<ModelCommitment>(*model.graph, *thresholds);

  ServerState state;
  state.registry = std::make_unique<ModelRegistry>();
  GatewayOptions options;
  options.rpc.enabled = true;
  options.rpc.port = rpc_port;
  if (monitoring_port >= 0) {
    options.monitoring.enabled = true;
    options.monitoring.port = monitoring_port;
  }
  state.gateway = std::make_unique<ServingGateway>(*state.registry, options);
  state.model_id = state.registry->Register(model);
  state.registry->Commit(state.model_id, *commitment, *thresholds);
  ServiceOptions service;
  service.num_workers = 2;
  service.verifier.reuse_buffers = true;
  state.gateway->Serve(state.model_id, service);
  return state;
}

// Submits `count` claims over one RetriableChannel and prints the verdicts. When
// `inject_fault` is set, the connection is killed mid-run so the retry/dedup
// path shows itself. Returns the number of verdicts received.
size_t RunClient(const std::string& host, int port, size_t count, bool inject_fault) {
  RetriableChannel channel(host, port, /*session_id=*/0xDE40 + count);
  if (!channel.Connect()) {
    std::printf("could not reach %s:%d\n", host.c_str(), port);
    return 0;
  }
  std::printf("attached; server dedup window %u, %zu model(s) served\n",
              channel.hello_ack().dedup_window, channel.hello_ack().models.size());
  if (channel.hello_ack().models.empty()) {
    std::printf("nothing serving — start the --serve side first\n");
    return 0;
  }
  const uint64_t model_id = channel.hello_ack().models[0].id;
  // A model of the same config as the server's: sample_input shapes must match.
  WideMlpConfig config;
  config.input_dim = 512;
  config.hidden_dim = 64;
  config.num_classes = 16;
  const Model model = BuildWideMlp(config);
  const std::vector<BatchClaim> claims = MakeClaims(model, count, 0xc0ffee);

  size_t verdicts = 0;
  for (size_t i = 0; i < claims.size(); ++i) {
    uint64_t request_id = 0;
    const WireSubmitAck ack = channel.Submit(model_id, /*submitter=*/1, claims[i],
                                             &request_id);
    if (ack.status != WireStatus::kAccepted) {
      std::printf("claim %zu rejected: %s\n", i, WireStatusName(ack.status));
      continue;
    }
    if (inject_fault && i == claims.size() / 2) {
      std::printf("-- killing the connection (the retry layer reconnects and the\n");
      std::printf("   server's dedup window answers the resubmission) --\n");
      channel.InjectFaultForTest();
    }
    WireVerdict verdict;
    if (!channel.WaitVerdict(request_id, verdict)) {
      std::printf("claim %zu: verdict lost\n", i);
      continue;
    }
    ++verdicts;
    std::printf("claim %zu: ticket=%llu claim_id=%llu state=%u gas=%lld%s\n", i,
                static_cast<unsigned long long>(verdict.ticket),
                static_cast<unsigned long long>(verdict.claim_id),
                verdict.final_state, static_cast<long long>(verdict.gas_used),
                verdict.flagged ? " FLAGGED" : "");
  }
  std::printf("%zu/%zu verdicts; %lld reconnect(s), %lld resubmission(s)\n",
              verdicts, claims.size(), static_cast<long long>(channel.reconnects()),
              static_cast<long long>(channel.resubmissions()));
  return verdicts;
}

int FlagInt(int argc, char** argv, const char* name, int fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoi(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, std::strlen(name)) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (HasFlag(argc, argv, "--serve")) {
    const int port = FlagInt(argc, argv, "--port", 18090);
    const int serve_seconds = FlagInt(argc, argv, "--serve-seconds", 60);
    ServerState server = StartServer(port, port + 1);
    std::printf("RPC front-end on 127.0.0.1:%d (model id %llu); monitoring on %d\n",
                server.gateway->rpc()->port(),
                static_cast<unsigned long long>(server.model_id),
                server.gateway->monitoring()->port());
    std::printf("serving for %d seconds...\n", serve_seconds);
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
    return 0;
  }

  if (HasFlag(argc, argv, "--connect")) {
    std::string target = "127.0.0.1:18090";
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--connect=", 10) == 0) {
        target = argv[i] + 10;
      }
    }
    const size_t colon = target.rfind(':');
    const std::string host = colon == std::string::npos ? target : target.substr(0, colon);
    const int port =
        colon == std::string::npos ? 18090 : std::atoi(target.c_str() + colon + 1);
    const size_t count = static_cast<size_t>(FlagInt(argc, argv, "--claims", 8));
    return RunClient(host, port, count, /*inject_fault=*/false) == count ? 0 : 1;
  }

  // Self-check: both roles over loopback, fault injection included.
  std::printf("self-check: server + client in one process over loopback\n");
  ServerState server = StartServer(/*rpc_port=*/0, /*monitoring_port=*/-1);
  const int port = server.gateway->rpc()->port();
  constexpr size_t kClaims = 6;
  const size_t verdicts = RunClient("127.0.0.1", port, kClaims, /*inject_fault=*/true);
  server.gateway->DrainAll();
  if (verdicts != kClaims) {
    std::printf("SELF-CHECK FAILED: %zu/%zu verdicts\n", verdicts, kClaims);
    return 1;
  }
  std::printf("self-check passed: every claim acked, every verdict delivered\n");
  return 0;
}
