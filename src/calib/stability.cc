#include "src/calib/stability.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/stats.h"

namespace tao {
namespace {

// Median of the sequence with element t removed.
double MedianWithout(std::span<const double> sequence, size_t t) {
  std::vector<double> rest;
  rest.reserve(sequence.size() - 1);
  for (size_t i = 0; i < sequence.size(); ++i) {
    if (i != t) {
      rest.push_back(sequence[i]);
    }
  }
  return Median(rest);
}

}  // namespace

double SupNormDrift(std::span<const double> sequence, const StabilityOptions& options) {
  const size_t n = sequence.size();
  if (n < 2) {
    return 0.0;
  }
  const std::vector<double> running = RunningMedians(sequence);
  const double final_value = running.back();
  const size_t window = std::min(options.window, n - 1);
  double sup = 0.0;
  for (size_t k = n - window; k < n; ++k) {
    // Compare theta~(n) against theta~(k) for k in the last W steps (Eq. 39).
    sup = std::max(sup, SymmetricRelChange(final_value, running[k - 1], options.eps));
  }
  return sup;
}

double JackknifeInfluence(std::span<const double> sequence, const StabilityOptions& options) {
  const size_t n = sequence.size();
  if (n < 2) {
    return 0.0;
  }
  const double theta = Median(sequence);
  double max_influence = 0.0;
  for (size_t t = 0; t < n; ++t) {
    const double loo = MedianWithout(sequence, t);
    max_influence =
        std::max(max_influence, std::abs(loo - theta) / (std::abs(theta) + options.eps));
  }
  return max_influence;
}

double TailAdjustment(std::span<const double> sequence, const StabilityOptions& options) {
  const size_t n = sequence.size();
  if (n < 2) {
    return 0.0;
  }
  const std::vector<double> running = RunningMedians(sequence);
  const double theta = running.back();
  const size_t window = std::min(options.window, n - 1);
  double max_step = 0.0;
  for (size_t k = n - window; k < n; ++k) {
    // |theta~(k+1) - theta~(k)| over the final W steps (Eq. 41); k is 1-based here.
    max_step = std::max(max_step, std::abs(running[k] - running[k - 1]));
  }
  return max_step / (std::abs(theta) + options.eps);
}

double RollingSd(std::span<const double> sequence, const StabilityOptions& options) {
  if (sequence.size() < options.window) {
    return 0.0;
  }
  const std::vector<double> rolled = RollingMedians(sequence, options.window);
  const double theta = Median(sequence);
  return StdDev(rolled) / (std::abs(theta) + options.eps);
}

StabilitySummary SummarizeStability(const Calibration& calibration, size_t grid_index,
                                    const StabilityOptions& options) {
  TAO_CHECK_LT(grid_index, calibration.grid.size());
  std::vector<double> supnorms;
  std::vector<double> jackknives;
  std::vector<double> tailadjs;
  std::vector<double> rollsds;
  for (const auto& [id, nc] : calibration.nodes) {
    std::vector<double> sequence;
    sequence.reserve(nc.abs_profiles.size());
    for (const auto& profile : nc.abs_profiles) {
      sequence.push_back(profile[grid_index]);
    }
    // Degenerate all-zero sequences (bitwise-reproducible operators) are perfectly
    // stable; include them as exact zeros.
    supnorms.push_back(SupNormDrift(sequence, options));
    jackknives.push_back(JackknifeInfluence(sequence, options));
    tailadjs.push_back(TailAdjustment(sequence, options));
    rollsds.push_back(RollingSd(sequence, options));
  }
  StabilitySummary summary;
  summary.supnorm_p50 = Percentile(supnorms, 50.0);
  summary.supnorm_p90 = Percentile(supnorms, 90.0);
  summary.jackknife_p50 = Percentile(jackknives, 50.0);
  summary.jackknife_p90 = Percentile(jackknives, 90.0);
  summary.tailadj_p50 = Percentile(tailadjs, 50.0);
  summary.tailadj_p90 = Percentile(tailadjs, 90.0);
  summary.rollsd_p50 = Percentile(rollsds, 50.0);
  summary.rollsd_p90 = Percentile(rollsds, 90.0);
  return summary;
}

std::vector<double> GlobalDriftPerOperator(const Calibration& calibration,
                                           const StabilityOptions& options) {
  std::vector<double> drifts;
  drifts.reserve(calibration.nodes.size());
  for (const auto& [id, nc] : calibration.nodes) {
    double worst = 0.0;
    for (size_t g = 0; g < calibration.grid.size(); ++g) {
      std::vector<double> sequence;
      sequence.reserve(nc.abs_profiles.size());
      for (const auto& profile : nc.abs_profiles) {
        sequence.push_back(profile[g]);
      }
      worst = std::max(worst, SupNormDrift(sequence, options));
    }
    drifts.push_back(worst);
  }
  return drifts;
}

}  // namespace tao
