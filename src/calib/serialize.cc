#include "src/calib/serialize.h"

#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace tao {
namespace {

void AppendDoubles(std::ostringstream& out, const std::vector<double>& values) {
  for (const double v : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << " " << buf;
  }
}

std::vector<double> ReadDoubles(std::istringstream& in, size_t count) {
  std::vector<double> values(count);
  for (size_t i = 0; i < count; ++i) {
    TAO_CHECK(static_cast<bool>(in >> values[i])) << "truncated threshold data";
  }
  return values;
}

}  // namespace

std::string SerializeThresholds(const ThresholdSet& thresholds,
                                const std::string& fleet_signature) {
  std::ostringstream out;
  if (fleet_signature.empty()) {
    out << "tao-thresholds v1\n";
  } else {
    TAO_CHECK(fleet_signature.find_first_of(" \n") == std::string::npos)
        << "fleet signature must be a single token";
    out << "tao-thresholds v2\n";
    out << "fleet " << fleet_signature << "\n";
  }
  out << "alpha " << thresholds.alpha() << "\n";
  out << "grid";
  AppendDoubles(out, thresholds.grid());
  out << "\n";
  for (const NodeId id : thresholds.NodeIds()) {
    const OpThreshold& tau = thresholds.node(id);
    out << "node " << id << " abs";
    AppendDoubles(out, tau.abs);
    out << " rel";
    AppendDoubles(out, tau.rel);
    out << "\n";
  }
  return out.str();
}

ThresholdSet DeserializeThresholds(const std::string& text,
                                   std::string* fleet_signature) {
  std::istringstream in(text);
  std::string line;
  TAO_CHECK(static_cast<bool>(std::getline(in, line))) << "empty threshold file";
  TAO_CHECK(line == "tao-thresholds v1" || line == "tao-thresholds v2")
      << "tao-thresholds header expected, got: " << line;
  const bool v2 = line == "tao-thresholds v2";
  std::string keyword;

  std::string file_fleet;
  if (v2) {
    TAO_CHECK(static_cast<bool>(std::getline(in, line)));
    std::istringstream fleet_line(line);
    TAO_CHECK(static_cast<bool>(fleet_line >> keyword >> file_fleet) &&
              keyword == "fleet")
        << "v2 threshold file missing fleet line";
  }
  if (fleet_signature != nullptr) {
    *fleet_signature = file_fleet;
  }

  TAO_CHECK(static_cast<bool>(std::getline(in, line)));
  std::istringstream alpha_line(line);
  double alpha = 0.0;
  TAO_CHECK(static_cast<bool>(alpha_line >> keyword >> alpha) && keyword == "alpha");

  TAO_CHECK(static_cast<bool>(std::getline(in, line)));
  std::istringstream grid_line(line);
  TAO_CHECK(static_cast<bool>(grid_line >> keyword) && keyword == "grid");
  std::vector<double> grid;
  double value = 0.0;
  while (grid_line >> value) {
    grid.push_back(value);
  }
  TAO_CHECK(!grid.empty());

  ThresholdSet thresholds(grid, alpha);
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream node_line(line);
    int64_t id = -1;
    TAO_CHECK(static_cast<bool>(node_line >> keyword >> id) && keyword == "node") << line;
    TAO_CHECK(static_cast<bool>(node_line >> keyword) && keyword == "abs");
    OpThreshold tau;
    tau.abs = ReadDoubles(node_line, grid.size());
    TAO_CHECK(static_cast<bool>(node_line >> keyword) && keyword == "rel");
    tau.rel = ReadDoubles(node_line, grid.size());
    thresholds.SetNode(static_cast<NodeId>(id), std::move(tau));
  }
  return thresholds;
}

ThresholdSet LoadThresholdsForFleet(const std::string& text,
                                    const std::string& expected_fleet_signature) {
  TAO_CHECK(!expected_fleet_signature.empty())
      << "LoadThresholdsForFleet requires the live fleet's signature";
  std::string file_fleet;
  ThresholdSet thresholds = DeserializeThresholds(text, &file_fleet);
  TAO_CHECK(!file_fleet.empty())
      << "calibration rejected: v1 threshold file carries no fleet signature; "
         "recalibrate against the live fleet (expected " << expected_fleet_signature
      << ")";
  TAO_CHECK(file_fleet == expected_fleet_signature)
      << "calibration rejected: fleet signature mismatch\n  file:     " << file_fleet
      << "\n  expected: " << expected_fleet_signature
      << "\nthe fleet's arithmetic changed since this calibration was published "
         "(device composition or vmath generation); recalibrate via src/calib";
  return thresholds;
}

}  // namespace tao
