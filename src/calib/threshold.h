// Empirical error percentile thresholds (Sec. 3.2).
//
// Calibration produces, per operator node i, percentile profiles P_abs^(i)(p) and
// P_rel^(i)(p) over the grid P = {0,1,5,10,...,90,95,99,100}, max-enveloped across
// device pairs and inputs (Eq. 5-6), then inflated by the safety factor alpha (Eq. 7).
// A ThresholdSet carries those tau vectors, implements the Eq. 15 dispute-search check
// (max over p of observed percentile / tau), the Eq. 8 cap curve C_i(r) used by the
// attack projection, and a Merkle commitment r_e.

#ifndef TAO_SRC_CALIB_THRESHOLD_H_
#define TAO_SRC_CALIB_THRESHOLD_H_

#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/graph/graph.h"
#include "src/tensor/tensor.h"

namespace tao {

// The paper's percentile grid P.
const std::vector<double>& PercentileGrid();

// Percentile-value vector of |errors| over the grid (Eq. 3-4).
std::vector<double> ComputeProfile(std::span<const double> errors);

struct OpThreshold {
  std::vector<double> abs;  // tau_abs(p) per grid point
  std::vector<double> rel;  // tau_rel(p) per grid point
};

class ThresholdSet {
 public:
  ThresholdSet() = default;
  ThresholdSet(std::vector<double> grid, double alpha) : grid_(std::move(grid)), alpha_(alpha) {}

  void SetNode(NodeId id, OpThreshold threshold);
  bool HasNode(NodeId id) const { return ops_.count(id) > 0; }
  const OpThreshold& node(NodeId id) const;
  const std::vector<double>& grid() const { return grid_; }
  double alpha() const { return alpha_; }
  size_t size() const { return ops_.size(); }
  // Node ids with thresholds, in ascending order (the Merkle leaf order).
  std::vector<NodeId> NodeIds() const;

  // Returns a copy with every tau multiplied by `factor` (the alpha-scaling knob of the
  // Table 2 sensitivity study).
  ThresholdSet Scaled(double factor) const;

  // Eq. 15: p_max = max_p { P_abs(p)/tau_abs(p), P_rel(p)/tau_rel(p) } for the observed
  // proposer-vs-reference discrepancy at node id. > 1 flags the node as offending.
  // Zero taus (operators calibrated as bitwise-reproducible) admit only zero error.
  double MaxRatio(NodeId id, const Tensor& proposed, const Tensor& reference,
                  double eps = 1e-12) const;

  bool Exceeds(NodeId id, const Tensor& proposed, const Tensor& reference) const {
    return MaxRatio(id, proposed, reference) > 1.0;
  }

  // Eq. 8 cap curve: nondecreasing linear interpolation through (0,0),
  // (p_k/100, tau_abs(p_k)), (1, tau_abs(100)); rank r in [0,1].
  double AbsCap(NodeId id, double rank) const;

  // Merkle commitment r_e over per-node canonical threshold encodings, leaf order =
  // ascending node id.
  Digest CommitRoot() const;

  // Canonical string encoding of one node's thresholds (the Merkle leaf preimage).
  std::string CanonicalNode(NodeId id) const;

 private:
  std::vector<double> grid_;
  double alpha_ = 1.0;
  std::map<NodeId, OpThreshold> ops_;
};

}  // namespace tao

#endif  // TAO_SRC_CALIB_THRESHOLD_H_
