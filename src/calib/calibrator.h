// Offline cross-device calibration (Sec. 3.2 / Phase 0).
//
// For a model graph G, a device fleet H, and m sampled inputs, the calibrator runs the
// full traced model on every device, forms element-wise abs/rel errors per operator
// for every unordered device pair (Eq. 1-2), reduces them to percentile profiles over
// the grid P (Eq. 3-4), and max-envelopes across pairs and inputs (Eq. 5-6). The
// per-sample profile sequences are retained for the Appendix-B stability diagnostics,
// and per-node mean errors for the Fig. 4 depth study.

#ifndef TAO_SRC_CALIB_CALIBRATOR_H_
#define TAO_SRC_CALIB_CALIBRATOR_H_

#include <map>
#include <vector>

#include "src/calib/threshold.h"
#include "src/device/device.h"
#include "src/models/model_zoo.h"

namespace tao {

struct NodeCalibration {
  // Per-sample percentile profiles (max over device pairs within each sample);
  // outer index = sample, inner = grid point.
  std::vector<std::vector<double>> abs_profiles;
  std::vector<std::vector<double>> rel_profiles;
  // Max-envelope across samples (Eq. 5-6).
  std::vector<double> abs_envelope;
  std::vector<double> rel_envelope;
  // Mean element-wise absolute error across pairs, samples, elements (Fig. 4).
  double mean_abs_error = 0.0;
};

struct Calibration {
  std::vector<double> grid;
  int num_samples = 0;
  int num_devices = 0;
  // Keyed by operator node id; iteration order is canonical topological order.
  std::map<NodeId, NodeCalibration> nodes;

  // Eq. 7: thresholds tau = alpha * envelope (the paper uses alpha = 3).
  ThresholdSet MakeThresholds(double alpha = 3.0) const;
};

struct CalibrateOptions {
  int num_samples = 8;
  uint64_t seed = 0xca11b8a7e;
  double rel_eps = 1e-12;
};

Calibration Calibrate(const Model& model, const std::vector<DeviceProfile>& devices,
                      const CalibrateOptions& options = {});

}  // namespace tao

#endif  // TAO_SRC_CALIB_CALIBRATOR_H_
