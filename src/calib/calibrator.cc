#include "src/calib/calibrator.h"

#include <algorithm>
#include <cmath>

#include "src/graph/executor.h"
#include "src/util/check.h"

namespace tao {

ThresholdSet Calibration::MakeThresholds(double alpha) const {
  ThresholdSet thresholds(grid, alpha);
  for (const auto& [id, calibration] : nodes) {
    OpThreshold tau;
    tau.abs.reserve(grid.size());
    tau.rel.reserve(grid.size());
    for (const double v : calibration.abs_envelope) {
      tau.abs.push_back(alpha * v);
    }
    for (const double v : calibration.rel_envelope) {
      tau.rel.push_back(alpha * v);
    }
    thresholds.SetNode(id, std::move(tau));
  }
  return thresholds;
}

Calibration Calibrate(const Model& model, const std::vector<DeviceProfile>& devices,
                      const CalibrateOptions& options) {
  TAO_CHECK_GE(devices.size(), 2u) << "calibration needs at least two devices";
  const Graph& graph = *model.graph;
  Calibration calibration;
  calibration.grid = PercentileGrid();
  calibration.num_samples = options.num_samples;
  calibration.num_devices = static_cast<int>(devices.size());
  for (const NodeId id : graph.op_nodes()) {
    NodeCalibration nc;
    nc.abs_envelope.assign(calibration.grid.size(), 0.0);
    nc.rel_envelope.assign(calibration.grid.size(), 0.0);
    calibration.nodes.emplace(id, std::move(nc));
  }

  Rng rng(options.seed);
  double mean_error_weight = 0.0;
  for (int s = 0; s < options.num_samples; ++s) {
    const std::vector<Tensor> input = model.sample_input(rng);
    // One full traced run per device.
    std::vector<ExecutionTrace> traces;
    traces.reserve(devices.size());
    for (const DeviceProfile& device : devices) {
      const Executor exec(graph, device);
      traces.push_back(exec.Run(input));
    }

    for (const NodeId id : graph.op_nodes()) {
      NodeCalibration& nc = calibration.nodes.at(id);
      std::vector<double> sample_abs(calibration.grid.size(), 0.0);
      std::vector<double> sample_rel(calibration.grid.size(), 0.0);
      double mean_acc = 0.0;
      int pair_count = 0;
      for (size_t j = 0; j < devices.size(); ++j) {
        for (size_t k = j + 1; k < devices.size(); ++k) {
          const Tensor& yj = traces[j].value(id);
          const Tensor& yk = traces[k].value(id);
          const std::vector<double> abs_err = AbsErrors(yj, yk);
          const std::vector<double> rel_err = RelErrors(yj, yk, options.rel_eps);
          const std::vector<double> abs_profile = ComputeProfile(abs_err);
          const std::vector<double> rel_profile = ComputeProfile(rel_err);
          for (size_t g = 0; g < calibration.grid.size(); ++g) {
            sample_abs[g] = std::max(sample_abs[g], abs_profile[g]);
            sample_rel[g] = std::max(sample_rel[g], rel_profile[g]);
          }
          double sum = 0.0;
          for (const double e : abs_err) {
            sum += e;
          }
          mean_acc += sum / static_cast<double>(abs_err.size());
          ++pair_count;
        }
      }
      for (size_t g = 0; g < calibration.grid.size(); ++g) {
        nc.abs_envelope[g] = std::max(nc.abs_envelope[g], sample_abs[g]);
        nc.rel_envelope[g] = std::max(nc.rel_envelope[g], sample_rel[g]);
      }
      nc.abs_profiles.push_back(std::move(sample_abs));
      nc.rel_profiles.push_back(std::move(sample_rel));
      nc.mean_abs_error += mean_acc / static_cast<double>(pair_count);
    }
    mean_error_weight += 1.0;
  }
  for (auto& [id, nc] : calibration.nodes) {
    nc.mean_abs_error /= std::max(1.0, mean_error_weight);
  }
  return calibration;
}

}  // namespace tao
