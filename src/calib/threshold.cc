#include "src/calib/threshold.h"
#include <limits>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/crypto/merkle.h"
#include "src/util/check.h"
#include "src/util/stats.h"

namespace tao {

const std::vector<double>& PercentileGrid() {
  static const std::vector<double> kGrid = [] {
    std::vector<double> grid = {0.0, 1.0};
    for (double p = 5.0; p <= 90.0; p += 5.0) {
      grid.push_back(p);
    }
    grid.push_back(95.0);
    grid.push_back(99.0);
    grid.push_back(100.0);
    return grid;
  }();
  return kGrid;
}

std::vector<double> ComputeProfile(std::span<const double> errors) {
  return Percentiles(errors, PercentileGrid());
}

void ThresholdSet::SetNode(NodeId id, OpThreshold threshold) {
  TAO_CHECK_EQ(threshold.abs.size(), grid_.size());
  TAO_CHECK_EQ(threshold.rel.size(), grid_.size());
  ops_[id] = std::move(threshold);
}

const OpThreshold& ThresholdSet::node(NodeId id) const {
  const auto it = ops_.find(id);
  TAO_CHECK(it != ops_.end()) << "no thresholds for node " << id;
  return it->second;
}

std::vector<NodeId> ThresholdSet::NodeIds() const {
  std::vector<NodeId> ids;
  ids.reserve(ops_.size());
  for (const auto& [id, tau] : ops_) {
    ids.push_back(id);
  }
  return ids;
}

ThresholdSet ThresholdSet::Scaled(double factor) const {
  ThresholdSet scaled(grid_, alpha_ * factor);
  for (const auto& [id, threshold] : ops_) {
    OpThreshold t = threshold;
    for (double& v : t.abs) {
      v *= factor;
    }
    for (double& v : t.rel) {
      v *= factor;
    }
    scaled.ops_[id] = std::move(t);
  }
  return scaled;
}

double ThresholdSet::MaxRatio(NodeId id, const Tensor& proposed, const Tensor& reference,
                              double eps) const {
  const OpThreshold& tau = node(id);
  const std::vector<double> abs_profile = ComputeProfile(AbsErrors(proposed, reference));
  const std::vector<double> rel_profile = ComputeProfile(RelErrors(proposed, reference, eps));
  // Zero tau entries at low percentiles only record that the calibration error
  // distribution's lower tail touched zero; they impose no constraint (honest fresh
  // runs can have strictly positive minima). The exception is an operator whose
  // *entire* profile is zero — calibrated as bitwise-reproducible — which must
  // reproduce exactly.
  bool all_zero = true;
  for (size_t k = 0; k < grid_.size(); ++k) {
    if (tau.abs[k] > 0.0 || tau.rel[k] > 0.0) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) {
    return (abs_profile.back() == 0.0) ? 0.0 : std::numeric_limits<double>::infinity();
  }
  // allclose-style combination: a deviation is admissible at a percentile when it fits
  // EITHER the absolute or the relative envelope (near-zero elements make max relative
  // error unstable; large-magnitude elements make absolute error the wrong yardstick).
  // An offending deviation must exceed both caps wherever both exist.
  double max_ratio = 0.0;
  for (size_t k = 0; k < grid_.size(); ++k) {
    const bool has_abs = tau.abs[k] > 0.0;
    const bool has_rel = tau.rel[k] > 0.0;
    double ratio = 0.0;
    if (has_abs && has_rel) {
      ratio = std::min(abs_profile[k] / tau.abs[k], rel_profile[k] / tau.rel[k]);
    } else if (has_abs) {
      ratio = abs_profile[k] / tau.abs[k];
    } else if (has_rel) {
      ratio = rel_profile[k] / tau.rel[k];
    }
    max_ratio = std::max(max_ratio, ratio);
  }
  return max_ratio;
}

double ThresholdSet::AbsCap(NodeId id, double rank) const {
  TAO_CHECK(rank >= 0.0 && rank <= 1.0);
  const OpThreshold& tau = node(id);
  // Knots: (0, 0), (grid[k]/100, tau.abs[k]) ..., (1, tau.abs.back()).
  double prev_rank = 0.0;
  double prev_value = 0.0;
  for (size_t k = 0; k < grid_.size(); ++k) {
    const double knot_rank = grid_[k] / 100.0;
    // Enforce monotonicity of the cap values.
    const double knot_value = std::max(tau.abs[k], prev_value);
    if (rank <= knot_rank) {
      if (knot_rank == prev_rank) {
        return knot_value;
      }
      const double frac = (rank - prev_rank) / (knot_rank - prev_rank);
      return prev_value + frac * (knot_value - prev_value);
    }
    prev_rank = knot_rank;
    prev_value = knot_value;
  }
  return prev_value;
}

std::string ThresholdSet::CanonicalNode(NodeId id) const {
  const OpThreshold& tau = node(id);
  std::ostringstream out;
  out << "node=" << id << ";alpha=" << alpha_ << ";abs=[";
  for (size_t k = 0; k < tau.abs.size(); ++k) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", tau.abs[k]);
    out << (k ? "," : "") << buf;
  }
  out << "];rel=[";
  for (size_t k = 0; k < tau.rel.size(); ++k) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", tau.rel[k]);
    out << (k ? "," : "") << buf;
  }
  out << "]";
  return out.str();
}

Digest ThresholdSet::CommitRoot() const {
  std::vector<Digest> leaves;
  leaves.reserve(ops_.size());
  for (const auto& [id, tau] : ops_) {
    leaves.push_back(Sha256::Hash(CanonicalNode(id)));
  }
  return MerkleTree(std::move(leaves)).root();
}

}  // namespace tao
