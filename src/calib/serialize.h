// Text serialization for threshold sets, so calibrations can be published alongside
// the model commitment (Phase 0), post-verified by third parties, and reloaded by
// challengers/committee members without rerunning calibration.

#ifndef TAO_SRC_CALIB_SERIALIZE_H_
#define TAO_SRC_CALIB_SERIALIZE_H_

#include <string>

#include "src/calib/threshold.h"
#include "src/graph/graph.h"

namespace tao {

// Line-oriented format:
//   tao-thresholds v1
//   alpha <a>
//   grid <p0> <p1> ...
//   node <id> abs <v...> rel <v...>
std::string SerializeThresholds(const ThresholdSet& thresholds);

// Parses the format above; aborts on malformed input.
ThresholdSet DeserializeThresholds(const std::string& text);

}  // namespace tao

#endif  // TAO_SRC_CALIB_SERIALIZE_H_
