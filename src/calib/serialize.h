// Text serialization for threshold sets, so calibrations can be published alongside
// the model commitment (Phase 0), post-verified by third parties, and reloaded by
// challengers/committee members without rerunning calibration.

#ifndef TAO_SRC_CALIB_SERIALIZE_H_
#define TAO_SRC_CALIB_SERIALIZE_H_

#include <string>

#include "src/calib/threshold.h"
#include "src/graph/graph.h"

namespace tao {

// Line-oriented format:
//   tao-thresholds v2
//   fleet <signature>        (v2 only; FleetSignature() of the calibration fleet)
//   alpha <a>
//   grid <p0> <p1> ...
//   node <id> abs <v...> rel <v...>
//
// Thresholds are statements about a *specific* fleet's cross-device error; a file
// replayed against a different fleet silently under- or over-flags. v2 therefore
// embeds the canonical fleet signature (see FleetSignature in src/device/device.h)
// so loaders can detect composition drift and demand recalibration. Pure relabels
// (kStridedVector vs kStrided block=8) share a signature — no recalibration needed.
// Pass an empty signature to emit the legacy v1 header without a fleet line.
std::string SerializeThresholds(const ThresholdSet& thresholds,
                                const std::string& fleet_signature = std::string());

// Parses v1 or v2; aborts on malformed input. If `fleet_signature` is non-null it
// receives the file's fleet line (empty for v1 files).
ThresholdSet DeserializeThresholds(const std::string& text,
                                   std::string* fleet_signature = nullptr);

// Strict load path for deployment: parses `text` and ABORTS (loudly, printing both
// signatures) unless the file is a v2 calibration published against exactly
// `expected_fleet_signature`. This is how stale calibrations fail when the fleet's
// arithmetic moves underneath them — e.g. the vmath polynomial generation bump
// changed every signature, so pre-vmath threshold files must be rejected rather
// than silently under- or over-flagging. v1 files (no fleet line) are always
// rejected here; they predate signature embedding.
ThresholdSet LoadThresholdsForFleet(const std::string& text,
                                    const std::string& expected_fleet_signature);

}  // namespace tao

#endif  // TAO_SRC_CALIB_SERIALIZE_H_
