// Stability diagnostics for empirical error percentile profiles (Appendix B).
//
// For each operator i and percentile p, the per-sample sequence {y_{i,p,t}}_{t=1..n}
// yields four robustness diagnostics on its running-median curve:
//   D1 SupNorm  — short-horizon relative drift over the last W steps (Eq. 39)
//   D2 Jackknife — maximum leave-one-out influence (Eq. 40)
//   D3 TailAdj  — largest tail adjustment of the running median (Eq. 41)
//   D4 RollSD   — rolling-window median variability (Eq. 42)
// All use the symmetric relative change / |theta|+eps normalizations of Eq. 38.

#ifndef TAO_SRC_CALIB_STABILITY_H_
#define TAO_SRC_CALIB_STABILITY_H_

#include <span>
#include <vector>

#include "src/calib/calibrator.h"

namespace tao {

struct StabilityOptions {
  size_t window = 10;   // W
  double eps = 1e-12;
};

// Per-sequence diagnostics.
double SupNormDrift(std::span<const double> sequence, const StabilityOptions& options = {});
double JackknifeInfluence(std::span<const double> sequence, const StabilityOptions& options = {});
double TailAdjustment(std::span<const double> sequence, const StabilityOptions& options = {});
double RollingSd(std::span<const double> sequence, const StabilityOptions& options = {});

// Cross-operator aggregation for one percentile grid index: the Table 1 rows.
struct StabilitySummary {
  double supnorm_p50 = 0.0, supnorm_p90 = 0.0;
  double jackknife_p50 = 0.0, jackknife_p90 = 0.0;
  double tailadj_p50 = 0.0, tailadj_p90 = 0.0;
  double rollsd_p50 = 0.0, rollsd_p90 = 0.0;
};

// Computes diagnostics for every operator's abs-profile sequence at grid index
// `grid_index` and summarizes medians / 90th percentiles across operators.
StabilitySummary SummarizeStability(const Calibration& calibration, size_t grid_index,
                                    const StabilityOptions& options = {});

// Global cross-percentile drift per operator (Eq. 43), summarized across operators.
std::vector<double> GlobalDriftPerOperator(const Calibration& calibration,
                                           const StabilityOptions& options = {});

}  // namespace tao

#endif  // TAO_SRC_CALIB_STABILITY_H_
