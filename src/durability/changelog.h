// Async per-shard changelog writer + changelog file reader (docs/durability.md).
//
// One ChangelogWriter serves every shard of a coordinator: coordinator actions are
// framed on the caller's thread (under the shard lock, so log order == lock order)
// and handed to a single background thread that batches write(2) calls and applies
// the fsync policy. The hot path therefore costs one heap append + cv notify —
// never a syscall. Snapshot jobs ride the same queue BEHIND the records they cover,
// so a committed snapshot on disk never claims coverage the log can't back.
//
// Crash injection: when DurabilityOptions::crash_hook is set, the writer consults
// it at each CrashPoint; a `true` return makes the writer go dead — every
// subsequent append/flush/snapshot is silently dropped, exactly as if the process
// had been killed at that instant. Flush() barriers still release (the harness's
// process is alive and must not hang), they just no longer promise durability.

#ifndef TAO_SRC_DURABILITY_CHANGELOG_H_
#define TAO_SRC_DURABILITY_CHANGELOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/durability/framing.h"
#include "src/durability/options.h"

namespace tao {

// File layout inside DurabilityOptions::directory.
std::string ChangelogPath(const std::string& directory, size_t shard);
std::string SnapshotPath(const std::string& directory, size_t shard);
std::string SnapshotTmpPath(const std::string& directory, size_t shard);

inline constexpr char kChangelogMagic[8] = {'T', 'A', 'O', 'W', 'A', 'L', '0', '1'};
inline constexpr char kSnapshotMagic[8] = {'T', 'A', 'O', 'S', 'N', 'A', 'P', '1'};

// One changelog file, decoded. `records` holds the payload of every intact frame;
// `valid_bytes` is the prefix (header + intact frames) a recovered writer keeps,
// `truncated_bytes` the torn-tail remainder it drops.
struct ChangelogContents {
  FileHeader header;
  std::vector<std::vector<uint8_t>> records;
  uint64_t valid_bytes = 0;
  uint64_t truncated_bytes = 0;
  bool torn_tail = false;
};

// Reads + validates one changelog file. A missing file sets `exists = false` and
// returns kOk (an empty log is a legal fresh state). A torn tail is kOk (recorded
// in `out`); a corrupt record or header is the corresponding typed error.
RecoveryStatus ReadChangelogFile(const std::string& path, const char magic[8],
                                 ChangelogContents& out, bool& exists);

// One snapshot file: a file header (base_record = records covered) + one framed
// payload. Used for both the committed snapshot and — during recovery inspection
// only — a leftover tmp.
RecoveryStatus ReadSnapshotFile(const std::string& path, const char magic[8],
                                FileHeader& header, std::vector<uint8_t>& payload,
                                bool& exists);

class ChangelogWriter {
 public:
  // `model_id` is the owning coordinator's ModelId (plain uint64_t here to keep
  // this header free of protocol includes); it is stamped into every file header.
  ChangelogWriter(DurabilityOptions options, size_t num_shards, uint64_t model_id);
  ~ChangelogWriter();

  // Opens every shard's changelog and starts the writer thread. `valid_bytes[s]`
  // is the intact prefix recovery validated (0 for a fresh shard): the file is
  // truncated there — dropping any torn tail — before appends resume.
  RecoveryStatus Start(const std::vector<uint64_t>& valid_bytes);

  // Queues one record for `shard`. Caller holds the shard lock, which is what
  // serializes the queue order for that shard. Never blocks on I/O.
  void Append(size_t shard, std::span<const uint8_t> payload);

  // Queues an atomic snapshot write (tmp + fsync + rename) for `shard`, covering
  // the shard's first `covered` records. Must be queued after those records.
  void WriteSnapshot(size_t shard, std::vector<uint8_t> payload, uint64_t covered);

  // Barrier: returns once every previously queued item is on disk (fsynced unless
  // the policy is kNever) — or immediately once the writer is dead.
  void Flush();

  DurabilityStats stats() const;
  bool dead() const { return dead_.load(std::memory_order_acquire); }

 private:
  struct Item {
    enum class Kind { kRecord, kSnapshot, kBarrier } kind = Kind::kRecord;
    size_t shard = 0;
    std::vector<uint8_t> bytes;   // framed record / snapshot payload
    uint64_t covered = 0;         // kSnapshot
    uint64_t barrier_id = 0;      // kBarrier
  };

  void Run();
  // Each returns false once the writer goes dead.
  bool WriteBatch(size_t shard, std::vector<Item>& items);
  bool WriteSnapshotFile(const Item& item);
  void MaybeFsync(size_t shard);
  bool Crash(CrashPoint point, size_t shard);

  const DurabilityOptions options_;
  const size_t num_shards_;
  const uint64_t model_id_;

  std::vector<int> fds_;  // one changelog fd per shard; -1 until Start
  std::vector<std::chrono::steady_clock::time_point> last_fsync_;
  std::vector<bool> dirty_;  // bytes written since last fsync

  mutable std::mutex mu_;
  std::condition_variable cv_;        // queue became non-empty / stopping
  std::condition_variable done_cv_;   // barrier completed
  std::deque<Item> queue_;
  uint64_t next_barrier_ = 1;
  uint64_t completed_barrier_ = 0;
  bool stopping_ = false;
  std::thread thread_;

  std::atomic<bool> dead_{false};
  std::atomic<int64_t> records_appended_{0};
  std::atomic<int64_t> bytes_appended_{0};
  std::atomic<int64_t> flushes_{0};
  std::atomic<int64_t> fsyncs_{0};
  std::atomic<int64_t> snapshots_written_{0};
  std::atomic<int64_t> flush_ns_{0};
  std::atomic<int64_t> fsync_ns_{0};
};

}  // namespace tao

#endif  // TAO_SRC_DURABILITY_CHANGELOG_H_
