// Byte-level framing of the write-ahead changelog and snapshot files.
//
// A changelog record is framed as
//
//     u32 length | u32 length_check (= length ^ kLengthCheckXor) | u32 crc32(payload)
//     | payload bytes
//
// all little-endian. The redundant length_check is what lets recovery distinguish a
// TORN tail (a crash mid-append leaves a byte-prefix of the intended frame, so a
// complete 12-byte header is always an intact header) from CORRUPTION (bit rot
// flips header or payload bytes in place): a torn write can shorten a frame but can
// never produce a full header whose length_check disagrees, so any such disagreement
// — like any CRC mismatch on a fully-present payload — is reported as a typed error
// instead of being silently truncated away. See docs/durability.md.

#ifndef TAO_SRC_DURABILITY_FRAMING_H_
#define TAO_SRC_DURABILITY_FRAMING_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/durability/options.h"

namespace tao {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
uint32_t Crc32(std::span<const uint8_t> data);

inline constexpr uint32_t kLengthCheckXor = 0x5A17C0DEu;
inline constexpr size_t kFrameHeaderBytes = 12;
// Sanity ceiling on one record's payload; a frame claiming more is corrupt.
inline constexpr uint32_t kMaxRecordPayloadBytes = 16u << 20;

// Appends one framed record to `out`.
void AppendFrame(std::vector<uint8_t>& out, std::span<const uint8_t> payload);

// Outcome of decoding the frame at `data[offset...]`.
enum class FrameStatus {
  kOk,       // record decoded; offset advanced past it
  kTorn,     // the data ends mid-frame (byte-prefix of a frame): truncate here
  kCorrupt,  // full header/payload present but inconsistent: typed error
  kEnd,      // offset is exactly at the end: clean EOF
};

// Decodes one frame. On kOk, `payload` is set to the record's payload bytes
// (a view into `data`) and `offset` advances past the frame; on any other status
// `offset` is left at the frame start. Never reads out of bounds.
FrameStatus DecodeFrame(std::span<const uint8_t> data, size_t& offset,
                        std::span<const uint8_t>& payload);

// Little-endian primitive appends (the changelog's canonical scalar encoding; the
// tensor-level equivalents live in src/crypto/canonical.h).
void AppendU32Le(std::vector<uint8_t>& out, uint32_t value);
void AppendU64Le(std::vector<uint8_t>& out, uint64_t value);
void AppendI64Le(std::vector<uint8_t>& out, int64_t value);
// Doubles are persisted as their IEEE-754 bit pattern so restore is bitwise.
void AppendF64Le(std::vector<uint8_t>& out, double value);

// Bounds-checked little-endian reader. Every Read* returns false (leaving `value`
// untouched) instead of reading past the end — the decode fuzz tests drive this
// with arbitrary bytes, so out-of-bounds reads must be impossible by construction.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  bool ReadU32(uint32_t& value);
  bool ReadU64(uint64_t& value);
  bool ReadI64(int64_t& value);
  bool ReadF64(double& value);
  bool ReadBytes(std::span<uint8_t> out);

  size_t remaining() const { return data_.size() - offset_; }
  bool exhausted() const { return offset_ == data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t offset_ = 0;
};

// Common header of the per-shard durability files. `kind` distinguishes the
// changelog ("TAOWAL01") from snapshots ("TAOSNAP1"); the shard layout and model id
// are validated at recovery so a file can never be replayed into the wrong state
// machine. `base_record` is the index of the file's first record (changelog) or the
// number of records the snapshot covers.
struct FileHeader {
  uint64_t shard = 0;
  uint64_t num_shards = 0;
  uint64_t model_id = 0;
  uint64_t base_record = 0;
};

inline constexpr size_t kFileHeaderBytes = 8 + 4 + 4 * 8 + 4;  // magic+ver+fields+crc

void AppendFileHeader(std::vector<uint8_t>& out, const char magic[8],
                      const FileHeader& header);

// Validates magic/version/CRC and decodes the fields. Returns kBadHeader on an
// unrecognized or corrupt header, kOk otherwise. A `data` shorter than a full
// header returns kTornHeader via `torn` (the caller decides whether that is a
// fresh/torn file to truncate or an error).
RecoveryCode DecodeFileHeader(std::span<const uint8_t> data, const char magic[8],
                              FileHeader& header, bool& torn);

}  // namespace tao

#endif  // TAO_SRC_DURABILITY_FRAMING_H_
