#include "src/durability/changelog.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

namespace tao {
namespace {

bool WriteFully(int fd, const uint8_t* data, size_t size) {
  while (size > 0) {
    const ssize_t wrote = ::write(fd, data, size);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += wrote;
    size -= static_cast<size_t>(wrote);
  }
  return true;
}

RecoveryStatus IoError(const std::string& what, const std::string& path) {
  return {RecoveryCode::kIoError, what + " " + path + ": " + std::strerror(errno)};
}

// Reads a whole file. Returns kOk with exists=false on ENOENT.
RecoveryStatus ReadWholeFile(const std::string& path, std::vector<uint8_t>& data,
                             bool& exists) {
  exists = false;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return {};
    }
    return IoError("open", path);
  }
  exists = true;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const RecoveryStatus status = IoError("stat", path);
    ::close(fd);
    return status;
  }
  data.resize(static_cast<size_t>(st.st_size));
  size_t offset = 0;
  while (offset < data.size()) {
    const ssize_t got = ::read(fd, data.data() + offset, data.size() - offset);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      const RecoveryStatus status = IoError("read", path);
      ::close(fd);
      return status;
    }
    if (got == 0) {
      data.resize(offset);  // raced a concurrent truncate; keep what we got
      break;
    }
    offset += static_cast<size_t>(got);
  }
  ::close(fd);
  return {};
}

void FsyncDirectoryOf(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kGroupCommit:
      return "group_commit";
    case FsyncPolicy::kEveryFlush:
      return "every_flush";
  }
  return "unknown";
}

const char* CrashPointName(CrashPoint point) {
  switch (point) {
    case CrashPoint::kPreFlush:
      return "pre_flush";
    case CrashPoint::kMidRecord:
      return "mid_record";
    case CrashPoint::kPostSnapshotTmp:
      return "post_snapshot_tmp";
    case CrashPoint::kPreRename:
      return "pre_rename";
  }
  return "unknown";
}

const char* RecoveryCodeName(RecoveryCode code) {
  switch (code) {
    case RecoveryCode::kOk:
      return "ok";
    case RecoveryCode::kBadHeader:
      return "bad_header";
    case RecoveryCode::kShardMismatch:
      return "shard_mismatch";
    case RecoveryCode::kCorruptRecord:
      return "corrupt_record";
    case RecoveryCode::kCorruptSnapshot:
      return "corrupt_snapshot";
    case RecoveryCode::kLogGap:
      return "log_gap";
    case RecoveryCode::kIoError:
      return "io_error";
  }
  return "unknown";
}

std::string ChangelogPath(const std::string& directory, size_t shard) {
  return directory + "/shard-" + std::to_string(shard) + ".log";
}

std::string SnapshotPath(const std::string& directory, size_t shard) {
  return directory + "/shard-" + std::to_string(shard) + ".snap";
}

std::string SnapshotTmpPath(const std::string& directory, size_t shard) {
  return SnapshotPath(directory, shard) + ".tmp";
}

RecoveryStatus ReadChangelogFile(const std::string& path, const char magic[8],
                                 ChangelogContents& out, bool& exists) {
  out = ChangelogContents{};
  std::vector<uint8_t> data;
  if (RecoveryStatus status = ReadWholeFile(path, data, exists); !status.ok()) {
    return status;
  }
  if (!exists) {
    return {};
  }
  bool torn = false;
  const RecoveryCode header_code =
      DecodeFileHeader(std::span<const uint8_t>(data), magic, out.header, torn);
  if (torn) {
    // The creating write itself was cut short: an empty log whose whole content is
    // a torn tail.
    out.torn_tail = true;
    out.truncated_bytes = data.size();
    return {};
  }
  if (header_code != RecoveryCode::kOk) {
    return {header_code, "bad changelog header: " + path};
  }
  size_t offset = kFileHeaderBytes;
  for (;;) {
    std::span<const uint8_t> payload;
    const FrameStatus status = DecodeFrame(std::span<const uint8_t>(data), offset, payload);
    if (status == FrameStatus::kOk) {
      out.records.emplace_back(payload.begin(), payload.end());
      continue;
    }
    if (status == FrameStatus::kEnd) {
      break;
    }
    if (status == FrameStatus::kTorn) {
      out.torn_tail = true;
      out.truncated_bytes = data.size() - offset;
      break;
    }
    return {RecoveryCode::kCorruptRecord,
            "corrupt changelog record " + std::to_string(out.records.size()) + " in " +
                path};
  }
  out.valid_bytes = offset;
  return {};
}

RecoveryStatus ReadSnapshotFile(const std::string& path, const char magic[8],
                                FileHeader& header, std::vector<uint8_t>& payload,
                                bool& exists) {
  std::vector<uint8_t> data;
  if (RecoveryStatus status = ReadWholeFile(path, data, exists); !status.ok()) {
    return status;
  }
  if (!exists) {
    return {};
  }
  bool torn = false;
  const RecoveryCode header_code =
      DecodeFileHeader(std::span<const uint8_t>(data), magic, header, torn);
  if (torn || header_code != RecoveryCode::kOk) {
    return {RecoveryCode::kCorruptSnapshot, "bad snapshot header: " + path};
  }
  size_t offset = kFileHeaderBytes;
  std::span<const uint8_t> body;
  if (DecodeFrame(std::span<const uint8_t>(data), offset, body) != FrameStatus::kOk ||
      offset != data.size()) {
    return {RecoveryCode::kCorruptSnapshot, "corrupt snapshot body: " + path};
  }
  payload.assign(body.begin(), body.end());
  return {};
}

ChangelogWriter::ChangelogWriter(DurabilityOptions options, size_t num_shards,
                                 uint64_t model_id)
    : options_(std::move(options)),
      num_shards_(num_shards),
      model_id_(model_id),
      fds_(num_shards, -1),
      last_fsync_(num_shards),
      dirty_(num_shards, false) {}

ChangelogWriter::~ChangelogWriter() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  for (const int fd : fds_) {
    if (fd >= 0) {
      if (!dead() && options_.fsync != FsyncPolicy::kNever) {
        ::fsync(fd);
      }
      ::close(fd);
    }
  }
}

RecoveryStatus ChangelogWriter::Start(const std::vector<uint64_t>& valid_bytes) {
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    return {RecoveryCode::kIoError,
            "create_directories " + options_.directory + ": " + ec.message()};
  }
  for (size_t s = 0; s < num_shards_; ++s) {
    const std::string path = ChangelogPath(options_.directory, s);
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
      return IoError("open", path);
    }
    const uint64_t keep = valid_bytes[s];
    if (keep < kFileHeaderBytes) {
      // Fresh shard (or a log whose very creation was torn): start over.
      if (::ftruncate(fd, 0) != 0) {
        ::close(fd);
        return IoError("truncate", path);
      }
      std::vector<uint8_t> header_bytes;
      FileHeader header;
      header.shard = s;
      header.num_shards = num_shards_;
      header.model_id = model_id_;
      header.base_record = 0;
      AppendFileHeader(header_bytes, kChangelogMagic, header);
      if (!WriteFully(fd, header_bytes.data(), header_bytes.size())) {
        ::close(fd);
        return IoError("write header", path);
      }
      ::fsync(fd);
    } else {
      // Drop the torn tail (if any) and resume appending after the intact prefix.
      if (::ftruncate(fd, static_cast<off_t>(keep)) != 0 ||
          ::lseek(fd, 0, SEEK_END) < 0) {
        ::close(fd);
        return IoError("truncate", path);
      }
    }
    fds_[s] = fd;
    last_fsync_[s] = std::chrono::steady_clock::now();
  }
  thread_ = std::thread(&ChangelogWriter::Run, this);
  return {};
}

void ChangelogWriter::Append(size_t shard, std::span<const uint8_t> payload) {
  if (dead()) {
    return;
  }
  Item item;
  item.kind = Item::Kind::kRecord;
  item.shard = shard;
  AppendFrame(item.bytes, payload);
  records_appended_.fetch_add(1, std::memory_order_relaxed);
  bytes_appended_.fetch_add(static_cast<int64_t>(item.bytes.size()),
                            std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
}

void ChangelogWriter::WriteSnapshot(size_t shard, std::vector<uint8_t> payload,
                                    uint64_t covered) {
  if (dead()) {
    return;
  }
  Item item;
  item.kind = Item::Kind::kSnapshot;
  item.shard = shard;
  item.bytes = std::move(payload);
  item.covered = covered;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
}

void ChangelogWriter::Flush() {
  if (!thread_.joinable() || dead()) {
    return;
  }
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Item item;
    item.kind = Item::Kind::kBarrier;
    item.barrier_id = id = next_barrier_++;
    queue_.push_back(std::move(item));
  }
  cv_.notify_one();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return completed_barrier_ >= id; });
}

DurabilityStats ChangelogWriter::stats() const {
  DurabilityStats stats;
  stats.records_appended = records_appended_.load(std::memory_order_relaxed);
  stats.bytes_appended = bytes_appended_.load(std::memory_order_relaxed);
  stats.flushes = flushes_.load(std::memory_order_relaxed);
  stats.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  stats.snapshots_written = snapshots_written_.load(std::memory_order_relaxed);
  stats.flush_ns_total = flush_ns_.load(std::memory_order_relaxed);
  stats.fsync_ns_total = fsync_ns_.load(std::memory_order_relaxed);
  return stats;
}

bool ChangelogWriter::Crash(CrashPoint point, size_t shard) {
  if (options_.crash_hook && options_.crash_hook(point, shard)) {
    dead_.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

void ChangelogWriter::MaybeFsync(size_t shard) {
  if (!dirty_[shard]) {
    return;
  }
  switch (options_.fsync) {
    case FsyncPolicy::kNever:
      return;
    case FsyncPolicy::kEveryFlush:
      break;
    case FsyncPolicy::kGroupCommit: {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_fsync_[shard] <
          std::chrono::milliseconds(options_.group_commit_interval_ms)) {
        return;
      }
      break;
    }
  }
  const auto fsync_begin = std::chrono::steady_clock::now();
  ::fsync(fds_[shard]);
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  last_fsync_[shard] = std::chrono::steady_clock::now();
  fsync_ns_.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          last_fsync_[shard] - fsync_begin)
                          .count(),
                      std::memory_order_relaxed);
  dirty_[shard] = false;
}

bool ChangelogWriter::WriteBatch(size_t shard, std::vector<Item>& items) {
  if (Crash(CrashPoint::kPreFlush, shard)) {
    return false;
  }
  std::vector<uint8_t> buffer;
  for (const Item& item : items) {
    if (Crash(CrashPoint::kMidRecord, shard)) {
      // Model a crash mid-append: the preceding complete frames plus a strict
      // byte-prefix of this one reach the file; nothing after does.
      const size_t partial = item.bytes.size() / 2;
      buffer.insert(buffer.end(), item.bytes.begin(),
                    item.bytes.begin() + static_cast<ptrdiff_t>(partial));
      WriteFully(fds_[shard], buffer.data(), buffer.size());
      return false;
    }
    buffer.insert(buffer.end(), item.bytes.begin(), item.bytes.end());
  }
  if (!buffer.empty()) {
    const auto flush_begin = std::chrono::steady_clock::now();
    WriteFully(fds_[shard], buffer.data(), buffer.size());
    flush_ns_.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - flush_begin)
                            .count(),
                        std::memory_order_relaxed);
    flushes_.fetch_add(1, std::memory_order_relaxed);
    dirty_[shard] = true;
    MaybeFsync(shard);
  }
  return true;
}

bool ChangelogWriter::WriteSnapshotFile(const Item& item) {
  const std::string tmp = SnapshotTmpPath(options_.directory, item.shard);
  const std::string final_path = SnapshotPath(options_.directory, item.shard);
  std::vector<uint8_t> bytes;
  FileHeader header;
  header.shard = item.shard;
  header.num_shards = num_shards_;
  header.model_id = model_id_;
  header.base_record = item.covered;
  AppendFileHeader(bytes, kSnapshotMagic, header);
  AppendFrame(bytes, item.bytes);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return true;  // snapshot failure never takes down serving; log stays authoritative
  }
  const bool wrote = WriteFully(fd, bytes.data(), bytes.size());
  if (Crash(CrashPoint::kPostSnapshotTmp, item.shard)) {
    ::close(fd);  // tmp written but never fsynced or renamed: the stale-tmp shape
    return false;
  }
  ::fsync(fd);
  ::close(fd);
  if (!wrote) {
    return true;
  }
  if (Crash(CrashPoint::kPreRename, item.shard)) {
    return false;  // tmp durable but the commit point (rename) never happened
  }
  if (::rename(tmp.c_str(), final_path.c_str()) == 0) {
    FsyncDirectoryOf(final_path);
    snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void ChangelogWriter::Run() {
  std::deque<Item> local;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && stopping_) {
        return;
      }
      std::swap(local, queue_);
    }
    // Process in queue order, batching consecutive records per shard so one
    // write(2) covers a burst. Order within a shard is preserved — that is the
    // durability contract; cross-shard order is immaterial (separate files).
    std::vector<std::vector<Item>> batches(num_shards_);
    std::vector<size_t> batch_order;  // shards with a pending batch, first-seen order
    const auto flush_batches = [&]() {
      for (const size_t shard : batch_order) {
        if (!dead()) {
          WriteBatch(shard, batches[shard]);
        }
        batches[shard].clear();
      }
      batch_order.clear();
    };
    while (!local.empty()) {
      Item item = std::move(local.front());
      local.pop_front();
      switch (item.kind) {
        case Item::Kind::kRecord:
          if (!dead()) {
            if (batches[item.shard].empty()) {
              batch_order.push_back(item.shard);
            }
            batches[item.shard].push_back(std::move(item));
          }
          break;
        case Item::Kind::kSnapshot:
          flush_batches();
          if (!dead()) {
            WriteSnapshotFile(item);
          }
          break;
        case Item::Kind::kBarrier: {
          flush_batches();
          if (!dead() && options_.fsync != FsyncPolicy::kNever) {
            for (size_t s = 0; s < num_shards_; ++s) {
              if (dirty_[s]) {
                const auto fsync_begin = std::chrono::steady_clock::now();
                ::fsync(fds_[s]);
                fsyncs_.fetch_add(1, std::memory_order_relaxed);
                fsync_ns_.fetch_add(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - fsync_begin)
                        .count(),
                    std::memory_order_relaxed);
                dirty_[s] = false;
              }
            }
          }
          std::lock_guard<std::mutex> lock(mu_);
          completed_barrier_ = item.barrier_id;
          done_cv_.notify_all();
          break;
        }
      }
    }
    flush_batches();
  }
}

}  // namespace tao
