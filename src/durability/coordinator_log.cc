#include "src/durability/coordinator_log.h"

#include <filesystem>
#include <string>
#include <utility>

namespace tao {
namespace {

void AppendBool(std::vector<uint8_t>& out, bool value) {
  AppendU32Le(out, value ? 1u : 0u);
}

// Canonical bool: only 0/1 decode (anything else would re-encode differently).
bool ReadBool(ByteReader& reader, bool& value) {
  uint32_t raw = 0;
  if (!reader.ReadU32(raw) || raw > 1) {
    return false;
  }
  value = raw == 1;
  return true;
}

void AppendDigest(std::vector<uint8_t>& out, const Digest& digest) {
  out.insert(out.end(), digest.begin(), digest.end());
}

bool ReadDigest(ByteReader& reader, Digest& digest) {
  return reader.ReadBytes(std::span<uint8_t>(digest.data(), digest.size()));
}

// Encoded size of one ClaimRecord in a snapshot (sanity bound for claim counts).
constexpr size_t kClaimRecordBytes = 8 + 8 + 32 + 8 + 8 + 4 + 8 + 8 + 8 + 8 + 8 + 8;

void AppendClaimRecord(std::vector<uint8_t>& out, const ClaimRecord& claim) {
  AppendU64Le(out, claim.id);
  AppendU64Le(out, claim.model);
  AppendDigest(out, claim.c0);
  AppendU64Le(out, claim.committed_at);
  AppendU64Le(out, claim.challenge_window);
  AppendU32Le(out, static_cast<uint32_t>(claim.state));
  AppendF64Le(out, claim.proposer_bond);
  AppendF64Le(out, claim.challenger_bond);
  AppendI64Le(out, claim.dispute_round);
  AppendU64Le(out, claim.round_deadline);
  AppendI64Le(out, claim.merkle_checks);
  AppendI64Le(out, claim.gas);
}

bool ReadClaimRecord(ByteReader& reader, ClaimRecord& claim) {
  uint32_t state = 0;
  if (!reader.ReadU64(claim.id) || !reader.ReadU64(claim.model) ||
      !ReadDigest(reader, claim.c0) || !reader.ReadU64(claim.committed_at) ||
      !reader.ReadU64(claim.challenge_window) || !reader.ReadU32(state) ||
      !reader.ReadF64(claim.proposer_bond) || !reader.ReadF64(claim.challenger_bond) ||
      !reader.ReadI64(claim.dispute_round) || !reader.ReadU64(claim.round_deadline) ||
      !reader.ReadI64(claim.merkle_checks) || !reader.ReadI64(claim.gas)) {
    return false;
  }
  if (state > static_cast<uint32_t>(ClaimState::kChallengerSlashed)) {
    return false;
  }
  claim.state = static_cast<ClaimState>(state);
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeAction(const CoordinatorAction& action) {
  std::vector<uint8_t> out;
  AppendU32Le(out, static_cast<uint32_t>(action.kind));
  switch (action.kind) {
    case CoordinatorAction::Kind::kSubmit:
      AppendU64Le(out, action.id);
      AppendDigest(out, action.c0);
      AppendU64Le(out, action.challenge_window);
      AppendF64Le(out, action.proposer_bond);
      break;
    case CoordinatorAction::Kind::kTryFinalize:
      AppendU64Le(out, action.id);
      break;
    case CoordinatorAction::Kind::kOpenChallenge:
      AppendU64Le(out, action.id);
      AppendF64Le(out, action.challenger_bond);
      break;
    case CoordinatorAction::Kind::kPartition:
      AppendU64Le(out, action.id);
      AppendI64Le(out, action.children);
      break;
    case CoordinatorAction::Kind::kSelection:
      AppendU64Le(out, action.id);
      AppendI64Le(out, action.selected_child);
      break;
    case CoordinatorAction::Kind::kMerkleCheck:
      AppendU64Le(out, action.id);
      AppendI64Le(out, action.proofs);
      break;
    case CoordinatorAction::Kind::kTimeout:
      AppendU64Le(out, action.id);
      AppendBool(out, action.proposer_timed_out);
      break;
    case CoordinatorAction::Kind::kLeafAdjudication:
      AppendU64Le(out, action.id);
      AppendBool(out, action.proposer_guilty);
      AppendF64Le(out, action.challenger_share);
      break;
    case CoordinatorAction::Kind::kChargeGas:
      AppendU64Le(out, action.id);
      AppendI64Le(out, action.gas);
      break;
    case CoordinatorAction::Kind::kAdvanceClock:
      AppendU64Le(out, action.ticks);
      break;
  }
  return out;
}

bool DecodeAction(std::span<const uint8_t> payload, CoordinatorAction& action) {
  ByteReader reader(payload);
  uint32_t kind = 0;
  if (!reader.ReadU32(kind) || kind < 1 ||
      kind > static_cast<uint32_t>(CoordinatorAction::Kind::kAdvanceClock)) {
    return false;
  }
  action = CoordinatorAction{};
  action.kind = static_cast<CoordinatorAction::Kind>(kind);
  bool ok = false;
  switch (action.kind) {
    case CoordinatorAction::Kind::kSubmit:
      ok = reader.ReadU64(action.id) && ReadDigest(reader, action.c0) &&
           reader.ReadU64(action.challenge_window) &&
           reader.ReadF64(action.proposer_bond);
      break;
    case CoordinatorAction::Kind::kTryFinalize:
      ok = reader.ReadU64(action.id);
      break;
    case CoordinatorAction::Kind::kOpenChallenge:
      ok = reader.ReadU64(action.id) && reader.ReadF64(action.challenger_bond);
      break;
    case CoordinatorAction::Kind::kPartition:
      ok = reader.ReadU64(action.id) && reader.ReadI64(action.children);
      break;
    case CoordinatorAction::Kind::kSelection:
      ok = reader.ReadU64(action.id) && reader.ReadI64(action.selected_child);
      break;
    case CoordinatorAction::Kind::kMerkleCheck:
      ok = reader.ReadU64(action.id) && reader.ReadI64(action.proofs);
      break;
    case CoordinatorAction::Kind::kTimeout:
      ok = reader.ReadU64(action.id) && ReadBool(reader, action.proposer_timed_out);
      break;
    case CoordinatorAction::Kind::kLeafAdjudication:
      ok = reader.ReadU64(action.id) && ReadBool(reader, action.proposer_guilty) &&
           reader.ReadF64(action.challenger_share);
      break;
    case CoordinatorAction::Kind::kChargeGas:
      ok = reader.ReadU64(action.id) && reader.ReadI64(action.gas);
      break;
    case CoordinatorAction::Kind::kAdvanceClock:
      ok = reader.ReadU64(action.ticks);
      break;
  }
  // Exact length: trailing bytes would be silently dropped state.
  return ok && reader.exhausted();
}

std::vector<uint8_t> EncodeShardSnapshot(const ShardSnapshotState& state) {
  std::vector<uint8_t> out;
  AppendU64Le(out, state.now);
  AppendU64Le(out, state.submitted);
  AppendF64Le(out, state.balances.proposer);
  AppendF64Le(out, state.balances.challenger);
  AppendF64Le(out, state.balances.treasury);
  AppendI64Le(out, state.gas);
  AppendU64Le(out, static_cast<uint64_t>(state.claims.size()));
  for (const ClaimRecord& claim : state.claims) {
    AppendClaimRecord(out, claim);
  }
  return out;
}

bool DecodeShardSnapshot(std::span<const uint8_t> payload, ShardSnapshotState& state) {
  ByteReader reader(payload);
  state = ShardSnapshotState{};
  uint64_t claim_count = 0;
  if (!reader.ReadU64(state.now) || !reader.ReadU64(state.submitted) ||
      !reader.ReadF64(state.balances.proposer) ||
      !reader.ReadF64(state.balances.challenger) ||
      !reader.ReadF64(state.balances.treasury) || !reader.ReadI64(state.gas) ||
      !reader.ReadU64(claim_count)) {
    return false;
  }
  // Bound the count by the bytes actually present before allocating.
  if (claim_count > reader.remaining() / kClaimRecordBytes) {
    return false;
  }
  state.claims.resize(static_cast<size_t>(claim_count));
  for (ClaimRecord& claim : state.claims) {
    if (!ReadClaimRecord(reader, claim)) {
      return false;
    }
  }
  return reader.exhausted();
}

RecoveryStatus LoadShardDiskState(const DurabilityOptions& options, size_t shard,
                                  size_t num_shards, uint64_t model_id,
                                  ShardDiskState& out) {
  out = ShardDiskState{};
  // An uncommitted snapshot tmp is garbage from an interrupted snapshot write —
  // never state. Delete it so it can't shadow a future rename.
  std::error_code ec;
  std::filesystem::remove(SnapshotTmpPath(options.directory, shard), ec);

  const auto check_header = [&](const FileHeader& header,
                                const std::string& path) -> RecoveryStatus {
    if (header.shard != shard || header.num_shards != num_shards ||
        header.model_id != model_id) {
      return {RecoveryCode::kShardMismatch,
              path + " was written for shard " + std::to_string(header.shard) + "/" +
                  std::to_string(header.num_shards) + " model " +
                  std::to_string(header.model_id) + ", expected " +
                  std::to_string(shard) + "/" + std::to_string(num_shards) +
                  " model " + std::to_string(model_id)};
    }
    return {};
  };

  const std::string snap_path = SnapshotPath(options.directory, shard);
  FileHeader snap_header;
  std::vector<uint8_t> snap_payload;
  bool snap_exists = false;
  if (RecoveryStatus status = ReadSnapshotFile(snap_path, kSnapshotMagic, snap_header,
                                               snap_payload, snap_exists);
      !status.ok()) {
    return status;
  }
  if (snap_exists) {
    if (RecoveryStatus status = check_header(snap_header, snap_path); !status.ok()) {
      return status;
    }
    if (!DecodeShardSnapshot(std::span<const uint8_t>(snap_payload), out.snapshot)) {
      return {RecoveryCode::kCorruptSnapshot, "undecodable snapshot state: " + snap_path};
    }
    out.has_snapshot = true;
    out.snapshot_covered = snap_header.base_record;
  }

  const std::string log_path = ChangelogPath(options.directory, shard);
  ChangelogContents log;
  if (RecoveryStatus status =
          ReadChangelogFile(log_path, kChangelogMagic, log, out.changelog_exists);
      !status.ok()) {
    return status;
  }
  if (out.changelog_exists && log.valid_bytes >= kFileHeaderBytes) {
    if (RecoveryStatus status = check_header(log.header, log_path); !status.ok()) {
      return status;
    }
  }
  out.log_records = log.records.size();
  out.valid_bytes = log.valid_bytes;
  out.truncated_bytes = log.truncated_bytes;

  if (out.log_records < out.snapshot_covered) {
    return {RecoveryCode::kLogGap,
            log_path + " holds " + std::to_string(out.log_records) +
                " records but the snapshot covers " +
                std::to_string(out.snapshot_covered)};
  }
  out.tail.reserve(out.log_records - out.snapshot_covered);
  for (size_t i = static_cast<size_t>(out.snapshot_covered); i < log.records.size();
       ++i) {
    CoordinatorAction action;
    if (!DecodeAction(std::span<const uint8_t>(log.records[i]), action)) {
      return {RecoveryCode::kCorruptRecord,
              "undecodable action record " + std::to_string(i) + " in " + log_path};
    }
    out.tail.push_back(action);
  }
  // Validate the covered prefix too: corruption anywhere must be loud.
  for (size_t i = 0; i < static_cast<size_t>(out.snapshot_covered); ++i) {
    CoordinatorAction action;
    if (!DecodeAction(std::span<const uint8_t>(log.records[i]), action)) {
      return {RecoveryCode::kCorruptRecord,
              "undecodable action record " + std::to_string(i) + " in " + log_path};
    }
  }
  return {};
}

CoordinatorDurability::CoordinatorDurability(DurabilityOptions options,
                                             size_t num_shards, uint64_t model_id)
    : options_(options),
      writer_(std::move(options), num_shards, model_id),
      records_(num_shards, 0) {}

RecoveryStatus CoordinatorDurability::Start(const std::vector<ShardDiskState>& disk) {
  std::vector<uint64_t> valid_bytes(disk.size(), 0);
  for (size_t s = 0; s < disk.size(); ++s) {
    valid_bytes[s] = disk[s].valid_bytes;
    records_[s] = disk[s].log_records;
  }
  return writer_.Start(valid_bytes);
}

bool CoordinatorDurability::LogAction(size_t shard, const CoordinatorAction& action) {
  writer_.Append(shard, EncodeAction(action));
  ++records_[shard];
  return options_.snapshot_interval_records > 0 &&
         records_[shard] % options_.snapshot_interval_records == 0;
}

void CoordinatorDurability::Snapshot(size_t shard, const ShardSnapshotState& state) {
  writer_.WriteSnapshot(shard, EncodeShardSnapshot(state), records_[shard]);
}

DurabilityStats CoordinatorDurability::stats() const {
  DurabilityStats stats = writer_.stats();
  stats.recovery_replayed = recovery_replayed_;
  return stats;
}

}  // namespace tao
