// Coordinator-action and shard-snapshot codecs + the per-coordinator durability
// facade (docs/durability.md).
//
// The changelog records ACTIONS, not resulting state: per docs/coordinator.md a
// shard's state is a bitwise function of its own mutation subsequence alone, so
// replaying the logged actions through the same public Coordinator methods (with
// logging suppressed) reproduces the uninterrupted run bit for bit — there is no
// second copy of the transition logic to drift. Snapshots are the complement: a
// direct bitwise image of one shard's state (doubles as IEEE-754 bit patterns)
// covering the log's first `base_record` records, so recovery is snapshot + tail.
//
// Both codecs are canonical: every accepted payload re-encodes to identical bytes,
// and every malformed payload is rejected (the decode fuzz test's contract).

#ifndef TAO_SRC_DURABILITY_COORDINATOR_LOG_H_
#define TAO_SRC_DURABILITY_COORDINATOR_LOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/durability/changelog.h"
#include "src/durability/options.h"
#include "src/protocol/coordinator.h"

namespace tao {

// One logged coordinator mutation. Exactly the public mutation API of Coordinator;
// fields not used by a kind stay default and are not encoded.
struct CoordinatorAction {
  enum class Kind : uint32_t {
    kSubmit = 1,        // id (expected), c0, challenge_window, proposer_bond
    kTryFinalize = 2,   // id — logged only when the call transitioned the claim
    kOpenChallenge = 3, // id, challenger_bond
    kPartition = 4,     // id, children (hashes are not coordinator state)
    kSelection = 5,     // id, selected_child
    kMerkleCheck = 6,   // id, proofs
    kTimeout = 7,       // id, proposer_timed_out
    kLeafAdjudication = 8,  // id, proposer_guilty, challenger_share
    kChargeGas = 9,     // id, gas
    kAdvanceClock = 10, // ticks — this shard's clock only
  };

  Kind kind = Kind::kSubmit;
  ClaimId id = 0;
  Digest c0{};
  uint64_t challenge_window = 0;
  double proposer_bond = 0.0;
  double challenger_bond = 0.0;
  int64_t children = 0;
  int64_t selected_child = 0;
  int64_t proofs = 0;
  bool proposer_timed_out = false;
  bool proposer_guilty = false;
  double challenger_share = 0.0;
  int64_t gas = 0;
  uint64_t ticks = 0;
};

std::vector<uint8_t> EncodeAction(const CoordinatorAction& action);
// Strict decode: unknown kind, short/overlong payload, or non-canonical field
// values return false. Never reads out of bounds.
bool DecodeAction(std::span<const uint8_t> payload, CoordinatorAction& action);

// Bitwise image of one Coordinator shard (the snapshot payload).
struct ShardSnapshotState {
  uint64_t now = 0;
  uint64_t submitted = 0;
  Balances balances;
  int64_t gas = 0;
  std::vector<ClaimRecord> claims;  // in id order, as the shard map iterates
};

std::vector<uint8_t> EncodeShardSnapshot(const ShardSnapshotState& state);
bool DecodeShardSnapshot(std::span<const uint8_t> payload, ShardSnapshotState& state);

// Everything recovery learned from one shard's files, handed to the Coordinator
// constructor to rebuild state and to the writer to resume appending.
struct ShardDiskState {
  bool changelog_exists = false;
  bool has_snapshot = false;
  ShardSnapshotState snapshot;
  uint64_t snapshot_covered = 0;          // records the snapshot covers
  std::vector<CoordinatorAction> tail;    // decoded actions after the snapshot
  uint64_t log_records = 0;               // intact records in the changelog
  uint64_t valid_bytes = 0;               // intact changelog prefix (0 = fresh)
  uint64_t truncated_bytes = 0;           // torn-tail bytes recovery drops
};

// Reads + validates one shard's snapshot and changelog: headers must match this
// exact (shard, num_shards, model_id) triple, every record must decode, and the
// changelog must cover at least what the snapshot claims. Deletes a stale snapshot
// tmp (an uncommitted snapshot is garbage, never state). Typed error otherwise.
RecoveryStatus LoadShardDiskState(const DurabilityOptions& options, size_t shard,
                                  size_t num_shards, uint64_t model_id,
                                  ShardDiskState& out);

// Owns the changelog writer and the per-shard record counters for one coordinator.
// LogAction/Snapshot are called under the owning shard's lock — that lock is what
// orders a shard's log; the counters are per-shard slots so shards never contend.
class CoordinatorDurability {
 public:
  CoordinatorDurability(DurabilityOptions options, size_t num_shards,
                        uint64_t model_id);

  // Truncates torn tails, seeds record counters, starts the writer thread.
  RecoveryStatus Start(const std::vector<ShardDiskState>& disk);

  // Appends one action to `shard`'s log. Returns true when the shard is due a
  // snapshot (caller — still holding the shard lock — then calls Snapshot()).
  bool LogAction(size_t shard, const CoordinatorAction& action);
  void Snapshot(size_t shard, const ShardSnapshotState& state);

  void Flush() { writer_.Flush(); }
  DurabilityStats stats() const;
  void set_recovery_replayed(int64_t replayed) { recovery_replayed_ = replayed; }

 private:
  DurabilityOptions options_;
  ChangelogWriter writer_;
  std::vector<uint64_t> records_;  // per shard; guarded by that shard's lock
  int64_t recovery_replayed_ = 0;
};

}  // namespace tao

#endif  // TAO_SRC_DURABILITY_COORDINATOR_LOG_H_
