#include "src/durability/framing.h"

#include <array>
#include <cstring>

namespace tao {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

uint32_t ReadU32At(std::span<const uint8_t> data, size_t offset) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(data[offset + static_cast<size_t>(i)]) << (8 * i);
  }
  return value;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (const uint8_t byte : data) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendU32Le(std::vector<uint8_t>& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void AppendU64Le(std::vector<uint8_t>& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void AppendI64Le(std::vector<uint8_t>& out, int64_t value) {
  AppendU64Le(out, static_cast<uint64_t>(value));
}

void AppendF64Le(std::vector<uint8_t>& out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64Le(out, bits);
}

bool ByteReader::ReadU32(uint32_t& value) {
  if (remaining() < 4) {
    return false;
  }
  value = ReadU32At(data_, offset_);
  offset_ += 4;
  return true;
}

bool ByteReader::ReadU64(uint64_t& value) {
  if (remaining() < 8) {
    return false;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[offset_ + static_cast<size_t>(i)]) << (8 * i);
  }
  value = v;
  offset_ += 8;
  return true;
}

bool ByteReader::ReadI64(int64_t& value) {
  uint64_t bits;
  if (!ReadU64(bits)) {
    return false;
  }
  value = static_cast<int64_t>(bits);
  return true;
}

bool ByteReader::ReadF64(double& value) {
  uint64_t bits;
  if (!ReadU64(bits)) {
    return false;
  }
  std::memcpy(&value, &bits, sizeof(value));
  return true;
}

bool ByteReader::ReadBytes(std::span<uint8_t> out) {
  if (remaining() < out.size()) {
    return false;
  }
  std::memcpy(out.data(), data_.data() + offset_, out.size());
  offset_ += out.size();
  return true;
}

void AppendFrame(std::vector<uint8_t>& out, std::span<const uint8_t> payload) {
  const auto length = static_cast<uint32_t>(payload.size());
  AppendU32Le(out, length);
  AppendU32Le(out, length ^ kLengthCheckXor);
  AppendU32Le(out, Crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

FrameStatus DecodeFrame(std::span<const uint8_t> data, size_t& offset,
                        std::span<const uint8_t>& payload) {
  if (offset == data.size()) {
    return FrameStatus::kEnd;
  }
  if (data.size() - offset < kFrameHeaderBytes) {
    return FrameStatus::kTorn;  // partial header: byte-prefix of an append
  }
  const uint32_t length = ReadU32At(data, offset);
  const uint32_t length_check = ReadU32At(data, offset + 4);
  if ((length ^ kLengthCheckXor) != length_check || length > kMaxRecordPayloadBytes) {
    // A torn append preserves the byte-prefix of the frame, so a complete header
    // with an inconsistent length can only come from in-place corruption.
    return FrameStatus::kCorrupt;
  }
  if (data.size() - offset - kFrameHeaderBytes < length) {
    return FrameStatus::kTorn;  // payload cut short at EOF
  }
  const uint32_t crc = ReadU32At(data, offset + 8);
  const std::span<const uint8_t> body = data.subspan(offset + kFrameHeaderBytes, length);
  if (Crc32(body) != crc) {
    return FrameStatus::kCorrupt;
  }
  payload = body;
  offset += kFrameHeaderBytes + length;
  return FrameStatus::kOk;
}

void AppendFileHeader(std::vector<uint8_t>& out, const char magic[8],
                      const FileHeader& header) {
  const size_t start = out.size();
  out.insert(out.end(), magic, magic + 8);
  AppendU32Le(out, 1);  // version
  AppendU64Le(out, header.shard);
  AppendU64Le(out, header.num_shards);
  AppendU64Le(out, header.model_id);
  AppendU64Le(out, header.base_record);
  const std::span<const uint8_t> covered(out.data() + start + 8,
                                         kFileHeaderBytes - 8 - 4);
  AppendU32Le(out, Crc32(covered));
}

RecoveryCode DecodeFileHeader(std::span<const uint8_t> data, const char magic[8],
                              FileHeader& header, bool& torn) {
  torn = false;
  if (data.size() < kFileHeaderBytes) {
    torn = true;
    return RecoveryCode::kOk;
  }
  if (std::memcmp(data.data(), magic, 8) != 0) {
    return RecoveryCode::kBadHeader;
  }
  const std::span<const uint8_t> covered(data.data() + 8, kFileHeaderBytes - 8 - 4);
  if (Crc32(covered) != ReadU32At(data, kFileHeaderBytes - 4)) {
    return RecoveryCode::kBadHeader;
  }
  ByteReader reader(data.subspan(8));
  uint32_t version = 0;
  reader.ReadU32(version);
  if (version != 1) {
    return RecoveryCode::kBadHeader;
  }
  reader.ReadU64(header.shard);
  reader.ReadU64(header.num_shards);
  reader.ReadU64(header.model_id);
  reader.ReadU64(header.base_record);
  return RecoveryCode::kOk;
}

}  // namespace tao
