// Durability configuration and observability types (see docs/durability.md).
//
// This header is dependency-free on purpose: `src/protocol/coordinator.h` includes
// it to take a DurabilityOptions in its constructor, while the changelog/snapshot
// machinery (`changelog.h`, `coordinator_log.h`) depends on the coordinator's types
// — keeping options/stats here breaks that cycle.

#ifndef TAO_SRC_DURABILITY_OPTIONS_H_
#define TAO_SRC_DURABILITY_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace tao {

// When the changelog writer thread issues fsync(2) for appended records.
enum class FsyncPolicy {
  // Never fsync: the OS page cache decides when bytes reach media. Fastest; a
  // *host* crash can lose acknowledged records (a process crash cannot — the
  // kernel owns written bytes either way).
  kNever,
  // Group commit (default): the writer fsyncs a file at most once per
  // `group_commit_interval_ms`, so one sync amortizes over every record appended
  // in the window — the async_change_log batching idea.
  kGroupCommit,
  // fsync after every writer flush. Strongest; the bench quantifies the cost.
  kEveryFlush,
};

const char* FsyncPolicyName(FsyncPolicy policy);

// Crash-injection points of the test harness (tests/durability_test.cc). Each marks
// a boundary where a real process death would leave a distinct on-disk shape; the
// injected "crash" makes the writer go dead (drop all subsequent writes) exactly
// there, so recovery can be asserted against every shape.
enum class CrashPoint {
  kPreFlush,         // buffered records were never written
  kMidRecord,        // a record's frame was torn mid-write
  kPostSnapshotTmp,  // snapshot tmp file written, not yet fsynced or renamed
  kPreRename,        // snapshot tmp fsynced, rename never happened
};

const char* CrashPointName(CrashPoint point);

// Test hook: return true to simulate a crash at this point (the writer goes dead —
// every later append/flush/snapshot is silently dropped, like a killed process).
// Called on the writer thread. Production leaves it unset.
using CrashHook = std::function<bool(CrashPoint point, size_t shard)>;

struct DurabilityOptions {
  // Root directory of the per-shard changelogs and snapshots. Empty (default) means
  // in-memory only: no files, no writer thread, zero hot-path cost beyond one
  // null-pointer branch per coordinator action.
  std::string directory;
  FsyncPolicy fsync = FsyncPolicy::kGroupCommit;
  // Minimum milliseconds between fsyncs of one file under kGroupCommit.
  int64_t group_commit_interval_ms = 20;
  // Write a shard snapshot every this many records appended to that shard's log
  // (0 = never snapshot; recovery then replays the whole log).
  uint64_t snapshot_interval_records = 4096;
  CrashHook crash_hook;  // tests only
};

// Typed recovery outcome. Anything but kOk means the on-disk state is damaged in a
// way recovery refuses to paper over (the "fail loudly, never silently diverge"
// contract); kTornTail is NOT an error — a torn final record is the expected shape
// of a crash mid-append and is truncated away.
enum class RecoveryCode {
  kOk,
  kBadHeader,        // changelog/snapshot magic or version unrecognized
  kShardMismatch,    // file was written by a different shard layout or model
  kCorruptRecord,    // a fully-present changelog record fails its CRC/length check
  kCorruptSnapshot,  // a renamed (i.e. committed) snapshot fails validation
  kLogGap,           // changelog starts after the newest snapshot's coverage ends
  kIoError,          // open/read/create failed
};

const char* RecoveryCodeName(RecoveryCode code);

struct RecoveryStatus {
  RecoveryCode code = RecoveryCode::kOk;
  std::string message;

  bool ok() const { return code == RecoveryCode::kOk; }
};

// Per-shard recovery accounting (what the durability metrics export and the crash
// harness asserts prefix-consistency against).
struct ShardRecoveryInfo {
  uint64_t snapshot_records = 0;  // records covered by the snapshot that was loaded
  uint64_t replayed_records = 0;  // changelog tail records applied after it
  uint64_t total_records = 0;     // snapshot_records + replayed_records
  uint64_t truncated_bytes = 0;   // torn-tail bytes dropped from the changelog
  bool loaded_snapshot = false;
};

struct RecoveryInfo {
  bool recovered = false;  // false = the directory was fresh (or durability is off)
  std::vector<ShardRecoveryInfo> shards;

  uint64_t total_replayed() const {
    uint64_t total = 0;
    for (const ShardRecoveryInfo& shard : shards) {
      total += shard.replayed_records;
    }
    return total;
  }
};

// Monotonic counters of the durability pipeline, snapshot-readable while serving
// (exported as `durability/...` by the service metrics).
struct DurabilityStats {
  int64_t records_appended = 0;
  int64_t bytes_appended = 0;   // framed bytes handed to the writer
  int64_t flushes = 0;          // writer write() batches
  int64_t fsyncs = 0;
  int64_t snapshots_written = 0;
  int64_t recovery_replayed = 0;  // tail records replayed at construction
  // Writer-thread wall time spent inside write(2) batches / fsync(2) calls, for
  // flush/fsync latency gauges (mean latency = total / count).
  int64_t flush_ns_total = 0;
  int64_t fsync_ns_total = 0;
};

}  // namespace tao

#endif  // TAO_SRC_DURABILITY_OPTIONS_H_
