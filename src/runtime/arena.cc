#include "src/runtime/arena.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace tao {
namespace {

// Process-wide gauges across every arena instance (see GlobalOutstandingBytes).
std::atomic<int64_t> g_outstanding_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};

void GlobalAdd(int64_t bytes) {
  const int64_t now = g_outstanding_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void GlobalSub(int64_t bytes) {
  g_outstanding_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace

int64_t TensorArena::GlobalOutstandingBytes() {
  return std::max<int64_t>(0, g_outstanding_bytes.load(std::memory_order_relaxed));
}

int64_t TensorArena::GlobalPeakBytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}

Tensor TensorArena::Allocate(const Shape& shape) {
  const int64_t numel = shape.numel();
  const int64_t bytes = numel * static_cast<int64_t>(sizeof(float));
  GlobalAdd(bytes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
    stats_.outstanding_bytes += bytes;
    if (stats_.outstanding_bytes > stats_.peak_outstanding_bytes) {
      stats_.peak_outstanding_bytes = stats_.outstanding_bytes;
    }
    const auto it = pool_.find(numel);
    if (it != pool_.end()) {
      ++stats_.pool_hits;
      std::shared_ptr<std::vector<float>> storage = std::move(it->second);
      pool_.erase(it);
      return Tensor::AdoptStorage(shape, std::move(storage));
    }
    ++stats_.fresh_allocations;
  }
  return Tensor(shape);
}

void TensorArena::Recycle(Tensor&& dead) {
  std::shared_ptr<std::vector<float>> storage = std::move(dead).ReleaseStorage();
  if (storage == nullptr || storage.use_count() != 1 || storage->empty()) {
    return;
  }
  GlobalSub(static_cast<int64_t>(storage->size() * sizeof(float)));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.recycled;
  // Clamped: a recycled buffer need not have been served by Allocate (a kernel may
  // publish storage it built itself), so outstanding_bytes is an estimate.
  stats_.outstanding_bytes =
      std::max<int64_t>(0, stats_.outstanding_bytes -
                               static_cast<int64_t>(storage->size() * sizeof(float)));
  pool_.emplace(static_cast<int64_t>(storage->size()), std::move(storage));
}

DTensor TensorArena::AllocateD(const Shape& shape) {
  const int64_t numel = shape.numel();
  const int64_t bytes = numel * static_cast<int64_t>(sizeof(double));
  GlobalAdd(bytes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
    stats_.outstanding_bytes += bytes;
    if (stats_.outstanding_bytes > stats_.peak_outstanding_bytes) {
      stats_.peak_outstanding_bytes = stats_.outstanding_bytes;
    }
    const auto it = dpool_.find(numel);
    if (it != dpool_.end()) {
      ++stats_.pool_hits;
      std::shared_ptr<std::vector<double>> storage = std::move(it->second);
      dpool_.erase(it);
      return DTensor::AdoptStorage(shape, std::move(storage));
    }
    ++stats_.fresh_allocations;
  }
  return DTensor(shape);
}

void TensorArena::Recycle(DTensor&& dead) {
  std::shared_ptr<std::vector<double>> storage = std::move(dead).ReleaseStorage();
  if (storage == nullptr || storage.use_count() != 1 || storage->empty()) {
    return;
  }
  GlobalSub(static_cast<int64_t>(storage->size() * sizeof(double)));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.recycled;
  stats_.outstanding_bytes =
      std::max<int64_t>(0, stats_.outstanding_bytes -
                               static_cast<int64_t>(storage->size() * sizeof(double)));
  dpool_.emplace(static_cast<int64_t>(storage->size()), std::move(storage));
}

TensorArena::Stats TensorArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void TensorArena::Trim() {
  std::lock_guard<std::mutex> lock(mu_);
  pool_.clear();
  dpool_.clear();
}

}  // namespace tao
