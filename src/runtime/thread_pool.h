// Fixed-size reusable worker pool — the single source of threads for the whole
// runtime layer. Both levels of parallelism share it: the Scheduler drains graph
// nodes on it (inter-op) and ParallelFor splits kernel outer loops across it
// (intra-op). Sharing one pool keeps total thread count fixed no matter how the two
// levels nest.
//
// Deadlock-freedom contract: a pool task MAY block, but only on work that some
// actively running thread is already executing — never on a task that is still
// queued. ParallelFor achieves this by having every waiter first drain chunks
// itself (it waits only for chunks in flight on other threads); the Scheduler's
// helpers exit instead of parking, and its caller waits only while nodes are
// executing elsewhere. Every wait chain therefore bottoms out at a thread doing
// pure compute, so no cycle of queued-but-unstarted dependencies can form. New
// runtime primitives must preserve this property: submitting a task and then
// blocking until it STARTS is the one pattern that can deadlock a fixed pool.

#ifndef TAO_SRC_RUNTIME_THREAD_POOL_H_
#define TAO_SRC_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tao {

struct ThreadPoolOptions {
  int num_workers = 0;
  // Pin each worker to one core at construction (see PinWorkers below).
  bool pin_threads = false;
};

class ThreadPool {
 public:
  // Spawns exactly `num_workers` threads (>= 0). Workers live until destruction.
  explicit ThreadPool(int num_workers);
  explicit ThreadPool(const ThreadPoolOptions& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` for execution by some worker. Never blocks.
  void Submit(std::function<void()> fn);

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Tasks queued but not yet claimed by a worker (monitoring gauge).
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  // Pins worker i to core (i % hardware_concurrency), round-robin, so workers stop
  // migrating between cores mid-claim (cache/NUMA placement; a placement change can
  // never change an outcome — the tracing-inertness and durability suites run with
  // pinning on to prove it). Placement only: no-op on single-core hosts, when the
  // TAO_DISABLE_PINNING environment variable is set (non-empty, not "0"), or on
  // non-Linux builds (pthread_setaffinity_np is the only mechanism used). Idempotent;
  // safe to call on a live pool. Returns the number of workers actually pinned.
  int PinWorkers();

  // Core worker i was pinned to, or -1 while unpinned (the worker/<n>/core gauge).
  int worker_core(int i) const;

  // Process-wide shared pool, created on first use. Sized so that even a
  // single-core CI box can genuinely exercise `num_threads = 8` execution paths:
  // max(hardware_concurrency, 8) - 1 workers (the caller thread is the +1).
  // Unpinned until some subsystem configured with pin_workers calls PinWorkers().
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  // Written under mu_ by PinWorkers; read by worker_core.
  std::vector<int> worker_cores_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace tao

#endif  // TAO_SRC_RUNTIME_THREAD_POOL_H_
