// Dependency-counting DAG scheduler (inter-op parallelism).
//
// The caller supplies, for every node index, the list of consumer indices and the
// initial count of unfinished prerequisites; nodes whose count is zero are ready.
// Workers (the calling thread plus up to num_threads-1 pool helpers) pop ready nodes
// from a shared queue, execute them, and decrement their consumers' counts, enqueuing
// each consumer the moment its count hits zero. Run() blocks until every node has
// executed.
//
// Node indices must be given in a topological order: with num_threads <= 1 the
// scheduler degenerates to a plain index-order loop, which is exactly the seed
// executor's sequential semantics (the baseline the determinism tests compare
// against).

#ifndef TAO_SRC_RUNTIME_SCHEDULER_H_
#define TAO_SRC_RUNTIME_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace tao {

class ThreadPool;

class Scheduler {
 public:
  // `pool` may be null (forces sequential). `num_threads` counts the caller, so 2
  // means "caller + one pool helper".
  Scheduler(ThreadPool* pool, int num_threads) : pool_(pool), num_threads_(num_threads) {}

  // Executes fn(i) once for every node i in [0, consumers.size()), respecting the
  // dependency structure. `pending[i]` must equal the number of j with i in
  // consumers[j]. Blocks until all nodes have executed. Both containers are taken by
  // value: callers build them per run and the parallel path moves them into shared
  // state. Pool helpers never park waiting for nodes to become ready — an idle
  // helper exits and is respawned when completions enqueue new ready work — so a
  // scheduler run only occupies pool threads that are actually executing nodes.
  void Run(std::vector<std::vector<int32_t>> consumers, std::vector<int32_t> pending,
           const std::function<void(int32_t)>& fn) const;

 private:
  ThreadPool* pool_;
  int num_threads_;
};

}  // namespace tao

#endif  // TAO_SRC_RUNTIME_SCHEDULER_H_
