#include "src/runtime/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace tao {
namespace {

bool PinningDisabledByEnv() {
  const char* env = std::getenv("TAO_DISABLE_PINNING");
  if (env == nullptr || env[0] == '\0') {
    return false;
  }
  return !(env[0] == '0' && env[1] == '\0');
}

}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(static_cast<size_t>(std::max(num_workers, 0)));
  worker_cores_.assign(static_cast<size_t>(std::max(num_workers, 0)), -1);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::ThreadPool(const ThreadPoolOptions& options) : ThreadPool(options.num_workers) {
  if (options.pin_threads) {
    PinWorkers();
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop requested and queue drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ThreadPool::PinWorkers() {
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores <= 1 || PinningDisabledByEnv()) {
    return 0;  // nothing to place on a 1-core host; env override for ops escape
  }
  int pinned = 0;
#if defined(__linux__)
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < workers_.size(); ++i) {
    const int core = static_cast<int>(i % cores);
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(core, &set);
    if (pthread_setaffinity_np(workers_[i].native_handle(), sizeof(set), &set) == 0) {
      worker_cores_[i] = core;
      ++pinned;
    }
  }
#endif
  return pinned;
}

int ThreadPool::worker_core(int i) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (i < 0 || static_cast<size_t>(i) >= worker_cores_.size()) {
    return -1;
  }
  return worker_cores_[static_cast<size_t>(i)];
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(
      static_cast<int>(std::max(std::thread::hardware_concurrency(), 8u)) - 1);
  return pool;
}

}  // namespace tao
