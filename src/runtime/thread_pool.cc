#include "src/runtime/thread_pool.h"

#include <algorithm>
#include <utility>

namespace tao {

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(static_cast<size_t>(std::max(num_workers, 0)));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop requested and queue drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(
      static_cast<int>(std::max(std::thread::hardware_concurrency(), 8u)) - 1);
  return pool;
}

}  // namespace tao
