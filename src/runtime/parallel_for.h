// Intra-op data parallelism: splits [0, n) into contiguous chunks executed across the
// shared pool. The calling thread participates: it claims chunks from a shared atomic
// cursor exactly like the pool helpers do, so the loop completes even if every pool
// thread is busy — which is what makes nesting a ParallelFor inside a Scheduler node
// task (both on the same pool) deadlock-free.
//
// Bitwise determinism: chunk boundaries only partition loop indices across threads;
// each index writes its own disjoint output range, so results are identical for any
// thread count (the paper's trace-commitment invariant relies on this).

#ifndef TAO_SRC_RUNTIME_PARALLEL_FOR_H_
#define TAO_SRC_RUNTIME_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace tao {

class ThreadPool;

class ParallelFor {
 public:
  // `pool` may be null (everything runs inline on the caller). `max_parallelism` caps
  // how many threads (caller included) work on one loop; <= 1 means sequential.
  ParallelFor(ThreadPool* pool, int max_parallelism)
      : pool_(pool), max_parallelism_(max_parallelism) {}

  // Sequential fallback handle.
  ParallelFor() : ParallelFor(nullptr, 1) {}

  // Invokes fn(begin, end) over disjoint ranges covering [0, n). Blocks until every
  // range completed. `grain` is the minimum chunk width worth shipping to a thread.
  void operator()(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                  int64_t grain = 1) const;

  int max_parallelism() const { return max_parallelism_; }

 private:
  ThreadPool* pool_;
  int max_parallelism_;
};

// Fork-join over exactly two independent closures: runs `a` and `b` concurrently on
// the pool (caller executes one lane itself) and returns when both finished. With a
// null pool, runs them sequentially. The protocol layer uses this for proposer-vs-
// challenger lanes (dispute phase 1, decode pairs).
void ParallelInvoke(ThreadPool* pool, const std::function<void()>& a,
                    const std::function<void()>& b);

}  // namespace tao

#endif  // TAO_SRC_RUNTIME_PARALLEL_FOR_H_
