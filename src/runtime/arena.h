// TensorArena: a recycling allocator for intermediate tensors.
//
// The executor's liveness pass (dependency ref-counts over the canonical topological
// order) hands a node's output buffer back to the arena once its last consumer has
// executed and the value is not retained by the caller; the next allocation of equal
// element count adopts that buffer instead of touching the system allocator. Buffers
// are recycled only when uniquely owned, so any tensor still aliased by a trace, a
// cache, or a commitment keeps its storage untouched.
//
// Bitwise determinism: the arena changes *where* a value lives, never the value —
// kernels fully overwrite the adopted buffer before it is published.
//
// Thread safety: all methods are safe to call concurrently from scheduler workers.

#ifndef TAO_SRC_RUNTIME_ARENA_H_
#define TAO_SRC_RUNTIME_ARENA_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/tensor/tensor.h"

namespace tao {

class TensorArena {
 public:
  struct Stats {
    int64_t requests = 0;           // Allocate() calls
    int64_t pool_hits = 0;          // served by recycling a dead intermediate
    int64_t fresh_allocations = 0;  // served by the system allocator
    int64_t recycled = 0;           // buffers returned to the pool
    // Bytes currently handed out and not yet recycled back. Buffers whose Recycle
    // was a no-op (still aliased by a trace or commitment) stay counted — they are
    // still resident — as do retained outputs that are never offered back.
    int64_t outstanding_bytes = 0;
    // High-water mark of outstanding_bytes: the working-set peak of everything this
    // arena served. The service layer's BatchFormer derives its per-claim memory
    // estimate (and hence the adaptive batch-size cap) from this.
    int64_t peak_outstanding_bytes = 0;
  };

  // Returns a tensor of `shape`, reusing a pooled buffer of equal element count when
  // one exists. Reused buffers are NOT zeroed: callers (op kernels) must fully
  // overwrite every element before publishing, which all src/ops kernels do.
  Tensor Allocate(const Shape& shape);

  // Offers a dead intermediate back to the pool. The storage is kept only when the
  // tensor was its sole owner; otherwise this is a no-op (someone still reads it).
  void Recycle(Tensor&& dead);

  // FP64 twin of Allocate/Recycle, backed by a separate double pool. This is what
  // lets TRACE-RETAINING runs still recycle: values and bound results are all
  // retained there, but the per-chunk bound scratch and per-kernel workspaces the
  // kernels draw through BoundContext/OpContext die at chunk end and cycle through
  // these pools. Same non-zeroed contract; same stats counters (bytes count 8x).
  DTensor AllocateD(const Shape& shape);
  void Recycle(DTensor&& dead);

  Stats stats() const;

  // Process-wide fold of outstanding/peak bytes across EVERY arena instance, for
  // the resource tracker (a monitoring endpoint cannot enumerate arenas). The
  // global peak is a high-water mark of the global outstanding sum.
  static int64_t GlobalOutstandingBytes();
  static int64_t GlobalPeakBytes();

  // Drops every pooled buffer (stats are preserved).
  void Trim();

 private:
  mutable std::mutex mu_;
  // numel -> free storage blocks of exactly that many elements.
  std::unordered_multimap<int64_t, std::shared_ptr<std::vector<float>>> pool_;
  std::unordered_multimap<int64_t, std::shared_ptr<std::vector<double>>> dpool_;
  Stats stats_;
};

}  // namespace tao

#endif  // TAO_SRC_RUNTIME_ARENA_H_
