#include "src/runtime/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "src/runtime/thread_pool.h"

namespace tao {
namespace {

// State shared between the caller and the pool helpers for one loop. Helpers may
// outlive the caller's interest (they run after completion and find no chunk), so the
// state is shared_ptr-owned by every participant.
struct LoopState {
  int64_t n = 0;
  int64_t chunk = 1;
  int64_t num_chunks = 0;
  std::function<void(int64_t, int64_t)> fn;
  std::atomic<int64_t> next{0};
  std::atomic<int64_t> done{0};
  std::mutex mu;
  std::condition_variable cv;

  // Claims and runs chunks until the cursor is exhausted.
  void Drain() {
    for (;;) {
      const int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) {
        return;
      }
      const int64_t begin = c * chunk;
      const int64_t end = std::min(n, begin + chunk);
      fn(begin, end);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ParallelFor::operator()(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                             int64_t grain) const {
  if (n <= 0) {
    return;
  }
  grain = std::max<int64_t>(grain, 1);
  const int64_t max_useful = (n + grain - 1) / grain;
  const int64_t width = std::min<int64_t>(max_parallelism_, max_useful);
  if (pool_ == nullptr || width <= 1) {
    fn(0, n);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->n = n;
  // Over-decompose a little (4 chunks per thread) so a slow chunk doesn't serialize
  // the tail, but never below the grain.
  state->num_chunks = std::min<int64_t>(max_useful, width * 4);
  state->chunk = (n + state->num_chunks - 1) / state->num_chunks;
  state->num_chunks = (n + state->chunk - 1) / state->chunk;
  state->fn = fn;

  for (int64_t i = 0; i < width - 1; ++i) {
    pool_->Submit([state] { state->Drain(); });
  }
  state->Drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->num_chunks;
  });
}

void ParallelInvoke(ThreadPool* pool, const std::function<void()>& a,
                    const std::function<void()>& b) {
  if (pool == nullptr) {
    a();
    b();
    return;
  }
  const ParallelFor both(pool, 2);
  both(2, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      (i == 0 ? a : b)();
    }
  });
}

}  // namespace tao
