#include "src/runtime/scheduler.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "src/runtime/thread_pool.h"
#include "src/util/check.h"

namespace tao {
namespace {

struct DagState {
  std::vector<std::vector<int32_t>> consumers;
  std::vector<std::atomic<int32_t>> pending;
  std::function<void(int32_t)> fn;
  ThreadPool* pool = nullptr;
  int max_helpers = 0;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<int32_t> ready;
  int live_helpers = 0;  // guarded by mu
  std::atomic<int64_t> remaining{0};

  // Executes one node and publishes its completion: consumers whose last
  // prerequisite this was become ready, and helpers are spawned for them.
  void Execute(const std::shared_ptr<DagState>& self, int32_t node) {
    fn(node);
    std::vector<int32_t> unblocked;
    for (const int32_t consumer : consumers[static_cast<size_t>(node)]) {
      if (pending[static_cast<size_t>(consumer)].fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        unblocked.push_back(consumer);
      }
    }
    int spawn = 0;
    {
      std::lock_guard<std::mutex> lock(mu);
      for (const int32_t consumer : unblocked) {
        ready.push_back(consumer);
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        cv.notify_all();  // wake the caller's final wait
      } else if (!unblocked.empty()) {
        cv.notify_all();  // wake the caller if it is idle-waiting for ready work
        spawn = SpawnBudgetLocked();
      }
    }
    SubmitHelpers(self, spawn);
  }

  // How many helpers to add for the current ready backlog; callers must hold mu.
  // The current thread keeps draining, so it covers one ready node itself.
  int SpawnBudgetLocked() {
    const int backlog = static_cast<int>(ready.size()) - 1;
    const int budget =
        std::min(backlog, max_helpers - live_helpers);
    if (budget > 0) {
      live_helpers += budget;
    }
    return std::max(budget, 0);
  }

  void SubmitHelpers(const std::shared_ptr<DagState>& self, int count) {
    for (int i = 0; i < count; ++i) {
      pool->Submit([self] { self->HelperLoop(self); });
    }
  }

  // Pool-side worker: drains ready nodes and EXITS when none are queued (the exit
  // decision shares the lock with the queue, so ready work is never orphaned — any
  // push either finds a live helper that will see it or spawns a fresh one). This
  // keeps idle scheduler runs from parking pool threads.
  void HelperLoop(const std::shared_ptr<DagState>& self) {
    for (;;) {
      int32_t node = -1;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (ready.empty()) {
          --live_helpers;
          return;
        }
        node = ready.front();
        ready.pop_front();
      }
      Execute(self, node);
    }
  }

  // Caller-side worker: may block (it is not a pool thread) until either new work
  // shows up or the DAG completes.
  void CallerLoop(const std::shared_ptr<DagState>& self) {
    for (;;) {
      int32_t node = -1;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] {
          return remaining.load(std::memory_order_acquire) == 0 || !ready.empty();
        });
        if (ready.empty()) {
          return;  // remaining == 0: DAG fully executed
        }
        node = ready.front();
        ready.pop_front();
      }
      Execute(self, node);
    }
  }
};

}  // namespace

void Scheduler::Run(std::vector<std::vector<int32_t>> consumers,
                    std::vector<int32_t> pending,
                    const std::function<void(int32_t)>& fn) const {
  const int64_t n = static_cast<int64_t>(consumers.size());
  TAO_CHECK_EQ(pending.size(), consumers.size());
  if (n == 0) {
    return;
  }
  const int width = static_cast<int>(std::min<int64_t>(std::max(num_threads_, 1), n));
  if (pool_ == nullptr || width <= 1) {
    // Sequential baseline: node indices are topologically ordered by contract.
    for (int32_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  auto state = std::make_shared<DagState>();
  state->consumers = std::move(consumers);
  state->pending = std::vector<std::atomic<int32_t>>(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    state->pending[static_cast<size_t>(i)].store(pending[static_cast<size_t>(i)],
                                                 std::memory_order_relaxed);
    if (pending[static_cast<size_t>(i)] == 0) {
      state->ready.push_back(static_cast<int32_t>(i));
    }
  }
  TAO_CHECK(!state->ready.empty()) << "DAG has no ready node (cycle or bad counts)";
  state->fn = fn;
  state->pool = pool_;
  state->max_helpers = width - 1;
  state->remaining.store(n, std::memory_order_release);

  int spawn = 0;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    spawn = state->SpawnBudgetLocked();
  }
  state->SubmitHelpers(state, spawn);
  // CallerLoop only returns once remaining hits zero (its wait predicate admits an
  // empty ready queue only on completion), so the DAG is fully executed here.
  state->CallerLoop(state);
}

}  // namespace tao
