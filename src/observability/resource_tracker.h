// Per-worker resource tracker (docs/observability.md).
//
// Pipeline threads (verify workers, resolve lanes, samplers) register themselves
// with RAII `ScopedThread` guards; a background sampler thread — the ytsaurus
// resource_tracker shape — periodically reads each registered thread's CPU clock
// (`pthread_getcpuclockid` + `CLOCK_THREAD_CPUTIME_ID` semantics) so the last
// sample is always fresh even if nobody is polling. `Counters()` folds the live
// per-thread readings, process arena bytes (TensorArena's process-wide gauges),
// and registered external gauges (pool/scheduler depths) into `worker/<n>/...`,
// `lane/<n>/...`, and `resource/...` NamedCounters for the monitoring endpoint.
//
// Safety: a thread's clock id is only valid while the thread lives, so the guard's
// destructor takes a final self-sample and marks the slot dead under the tracker
// mutex BEFORE the thread exits; the sampler only reads slots marked alive, under
// the same mutex. Slots are recycled per role (a new "worker" takes over the
// lowest dead "worker" ordinal, accumulating its predecessor's CPU), so ordinals
// like worker/0 stay stable across service restarts in one process.

#ifndef TAO_SRC_OBSERVABILITY_RESOURCE_TRACKER_H_
#define TAO_SRC_OBSERVABILITY_RESOURCE_TRACKER_H_

#include <pthread.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/service/metrics.h"

namespace tao {

class ResourceTracker {
 public:
  // One registered thread's latest reading.
  struct ThreadSample {
    std::string name;        // "<role>/<ordinal>", e.g. "worker/0"
    double cpu_seconds = 0;  // accumulated: finished occupants + live occupant
    bool alive = false;
  };

  // Registers the calling thread under `role` for its lifetime. Construct at the
  // top of the thread body, on the thread's own stack.
  class ScopedThread {
   public:
    explicit ScopedThread(const std::string& role);
    ~ScopedThread();

    ScopedThread(const ScopedThread&) = delete;
    ScopedThread& operator=(const ScopedThread&) = delete;

    const std::string& name() const { return name_; }

   private:
    size_t slot_ = 0;
    std::string name_;
  };

  static ResourceTracker& Get();

  // Refreshes live slots from their thread clocks and returns every slot.
  std::vector<ThreadSample> Sample();

  // Named gauge sampled at Counters() time (queue depths, pool depth, ...).
  // Returns a handle for Unregister; the callback must stay valid until then.
  size_t RegisterGauge(std::string name, std::function<double()> gauge);
  void UnregisterGauge(size_t handle);

  // Background sampler thread; idempotent. The sampler registers itself under
  // the "sampler" role, so it appears in its own output.
  void StartSampler(std::chrono::milliseconds period);
  void StopSampler();
  bool sampler_running() const;

  // worker/<n>/cpu_seconds (+ other roles), resource/... fold, and gauges.
  std::vector<NamedCounter> Counters();

  int64_t samples_taken() const;
  size_t threads_alive() const;
  size_t threads_registered() const;

 private:
  struct Slot {
    std::string role;
    size_t ordinal = 0;
    clockid_t clock{};
    bool alive = false;
    double dead_seconds = 0;  // CPU accumulated by finished occupants
    double live_seconds = 0;  // last sample of the current occupant
  };
  struct Gauge {
    size_t handle = 0;
    std::string name;
    std::function<double()> fn;
  };

  ResourceTracker() = default;
  ~ResourceTracker() = delete;  // leaked singleton; threads may outlive statics

  void SampleLocked();
  void SamplerLoop(std::chrono::milliseconds period);

  size_t Register(const std::string& role, std::string* name);
  void Deregister(size_t slot);

  mutable std::mutex mu_;
  std::condition_variable sampler_cv_;
  std::vector<Slot> slots_;
  std::vector<Gauge> gauges_;
  size_t next_gauge_handle_ = 1;
  int64_t samples_taken_ = 0;
  bool sampler_stop_ = false;
  bool sampler_running_ = false;
  std::thread sampler_;
};

}  // namespace tao

#endif  // TAO_SRC_OBSERVABILITY_RESOURCE_TRACKER_H_
