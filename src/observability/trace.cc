#include "src/observability/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/observability/export.h"

namespace tao {
namespace {

// The calling thread's published claim context(s) (see ScopedTraceContext).
thread_local const TraceContext* tls_contexts = nullptr;
thread_local size_t tls_context_count = 0;

// The calling thread's span ring; registered with the tracer on first record.
thread_local SpanRing* tls_ring = nullptr;

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSubmit:
      return "submit";
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kBatchForm:
      return "batch_form";
    case SpanKind::kPhase1:
      return "phase1";
    case SpanKind::kThresholdCheck:
      return "threshold_check";
    case SpanKind::kResolveWait:
      return "resolve_wait";
    case SpanKind::kResolve:
      return "resolve";
    case SpanKind::kDisputeRound:
      return "dispute_round";
    case SpanKind::kDeliver:
      return "deliver";
  }
  return "unknown";
}

ScopedTraceContext::ScopedTraceContext(const TraceContext* contexts, size_t count)
    : previous_contexts_(tls_contexts), previous_count_(tls_context_count) {
  tls_contexts = contexts;
  tls_context_count = count;
}

ScopedTraceContext::~ScopedTraceContext() {
  tls_contexts = previous_contexts_;
  tls_context_count = previous_count_;
}

const TraceContext* ScopedTraceContext::At(size_t index) {
  return index < tls_context_count ? &tls_contexts[index] : nullptr;
}

const TraceContext* ScopedTraceContext::Current() { return At(0); }

void SpanRing::Push(const SpanRecord& span) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= kCapacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slots_[head % kCapacity] = span;
  head_.store(head + 1, std::memory_order_release);
}

size_t SpanRing::DrainInto(std::vector<SpanRecord>& out) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  const uint64_t head = head_.load(std::memory_order_acquire);
  for (uint64_t i = tail; i < head; ++i) {
    out.push_back(slots_[i % kCapacity]);
  }
  tail_.store(head, std::memory_order_release);
  return static_cast<size_t>(head - tail);
}

std::atomic<bool> Tracer::enabled_{false};

Tracer::Tracer() : origin_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Get() {
  // Leaked on purpose: worker threads may record during static destruction, and
  // the rings must outlive every thread that ever held one.
  static Tracer* instance = new Tracer();
  return *instance;
}

SpanRing* Tracer::RegisterRing() {
  auto ring = std::make_unique<SpanRing>();
  SpanRing* raw = ring.get();
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::move(ring));
  return raw;
}

void Tracer::Record(const SpanRecord& span) {
  if (!enabled()) {
    return;
  }
  Tracer& tracer = Get();
  if (tls_ring == nullptr) {
    tls_ring = tracer.RegisterRing();
  }
  tls_ring->Push(span);
  tracer.recorded_.fetch_add(1, std::memory_order_relaxed);
}

int64_t Tracer::NowNs() { return ToNs(std::chrono::steady_clock::now()); }

int64_t Tracer::ToNs(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(tp - Get().origin_)
      .count();
}

size_t Tracer::Drain(std::vector<SpanRecord>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t drained = 0;
  for (const auto& ring : rings_) {
    drained += ring->DrainInto(out);
  }
  return drained;
}

int64_t Tracer::spans_dropped() const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mu_));
  int64_t dropped = 0;
  for (const auto& ring : rings_) {
    dropped += ring->dropped();
  }
  return dropped;
}

// -------------------------------------------------------------------------------------

bool ClaimTrace::has(SpanKind kind) const {
  for (const SpanRecord& span : spans) {
    if (span.kind == kind) {
      return true;
    }
  }
  return false;
}

TraceCollector::TraceCollector(TraceCollectorOptions options) : options_(options) {}

void TraceCollector::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  scratch_.clear();
  Tracer::Get().Drain(scratch_);
  // Fold everything first, then finalize: spans of one claim may be drained from
  // different rings in any relative order within a poll, and a delivery span must
  // not close a chain whose earlier spans sit later in the same drain batch.
  std::vector<Key> completed;
  for (const SpanRecord& span : scratch_) {
    FoldLocked(span);
    if (span.kind == SpanKind::kDeliver) {
      completed.push_back({span.model, span.sequence});
    }
  }
  for (const Key& key : completed) {
    FinalizeLocked(key);
  }
  // Bound the open store: evict the oldest chain by first-span time. An evicted
  // chain simply never completes (its later spans count as late).
  while (open_.size() > options_.max_open_claims) {
    auto oldest = open_.begin();
    for (auto it = open_.begin(); it != open_.end(); ++it) {
      if (it->second.begin_ns < oldest->second.begin_ns) {
        oldest = it;
      }
    }
    MarkClosedLocked(oldest->first);
    open_.erase(oldest);
  }
}

void TraceCollector::MarkClosedLocked(const Key& key) {
  // Bounded memory of closed chains; old entries age out, which only risks a
  // straggler span from a long-retired chain re-opening as a ghost — an
  // observability smudge, never an outcome.
  static constexpr size_t kClosedMemory = 8192;
  if (closed_.insert(key).second) {
    closed_fifo_.push_back(key);
    while (closed_fifo_.size() > kClosedMemory) {
      closed_.erase(closed_fifo_.front());
      closed_fifo_.pop_front();
    }
  }
}

void TraceCollector::FoldLocked(const SpanRecord& span) {
  const Key key{span.model, span.sequence};
  auto it = open_.find(key);
  if (it == open_.end()) {
    if (closed_.count(key) != 0) {
      ++late_spans_;  // straggler for a finalized/evicted chain: count, drop
      return;
    }
    ClaimTrace fresh;
    fresh.model = span.model;
    fresh.sequence = span.sequence;
    fresh.begin_ns = span.begin_ns;
    fresh.end_ns = span.end_ns;
    it = open_.emplace(key, std::move(fresh)).first;
  }
  ClaimTrace& trace = it->second;
  trace.begin_ns = std::min(trace.begin_ns, span.begin_ns);
  trace.end_ns = std::max(trace.end_ns, span.end_ns);
  if (span.claim_id != 0) {
    trace.claim_id = span.claim_id;
  }
  trace.spans.push_back(span);
  ++spans_folded_;
}

void TraceCollector::FinalizeLocked(Key key) {
  const auto it = open_.find(key);
  if (it == open_.end()) {
    // The chain was evicted (its delivery span was already counted late by the
    // fold) — nothing left to finalize.
    return;
  }
  ClaimTrace trace = std::move(it->second);
  open_.erase(it);
  MarkClosedLocked(key);
  trace.complete = true;
  std::sort(trace.spans.begin(), trace.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns
                                              : a.end_ns < b.end_ns;
            });
  ++claims_completed_;
  if (trace.latency_ms() >= options_.slow_claim_ms) {
    slow_.push_front(std::move(trace));
    while (slow_.size() > options_.max_slow_claims) {
      slow_.pop_back();
    }
  } else {
    recent_.push_front(std::move(trace));
    while (recent_.size() > options_.max_recent_claims) {
      recent_.pop_back();
    }
  }
}

std::vector<ClaimTrace> TraceCollector::Traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ClaimTrace> traces;
  traces.reserve(slow_.size() + recent_.size());
  traces.insert(traces.end(), slow_.begin(), slow_.end());
  traces.insert(traces.end(), recent_.begin(), recent_.end());
  return traces;
}

std::string TraceCollector::ChromeTraceJson() {
  Poll();
  const std::vector<ClaimTrace> traces = Traces();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buffer[256];
  for (const ClaimTrace& trace : traces) {
    for (const SpanRecord& span : trace.spans) {
      if (!first) {
        out.push_back(',');
      }
      first = false;
      // Complete ("X") events; ts/dur in microseconds. pid groups by model,
      // tid by the span's worker (verify stages) or shard (resolve stages).
      const uint32_t tid = span.worker != kNoIndex ? span.worker
                           : span.shard != kNoIndex ? 1000 + span.shard
                                                    : 9999;
      out += "{\"name\":\"";
      AppendJsonEscaped(out, SpanKindName(span.kind));
      std::snprintf(buffer, sizeof(buffer),
                    "\",\"cat\":\"claim\",\"ph\":\"X\","
                    "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%llu,\"tid\":%u,"
                    "\"args\":{\"sequence\":%llu,\"claim_id\":%llu,"
                    "\"detail\":%lld}}",
                    static_cast<double>(span.begin_ns) / 1e3,
                    static_cast<double>(span.end_ns - span.begin_ns) / 1e3,
                    static_cast<unsigned long long>(span.model), tid,
                    static_cast<unsigned long long>(span.sequence),
                    static_cast<unsigned long long>(span.claim_id),
                    static_cast<long long>(span.detail));
      out += buffer;
    }
  }
  out += "]}";
  return out;
}

std::string TraceCollector::TextTable() {
  Poll();
  const std::vector<ClaimTrace> traces = Traces();
  std::string out;
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "# %zu retained claim trace(s); spans_folded=%lld "
                "claims_completed=%lld\n",
                traces.size(), static_cast<long long>(spans_folded()),
                static_cast<long long>(claims_completed()));
  out += buffer;
  for (const ClaimTrace& trace : traces) {
    std::snprintf(buffer, sizeof(buffer),
                  "claim model=%llu sequence=%llu claim_id=%llu latency_ms=%.3f "
                  "spans=%zu%s\n",
                  static_cast<unsigned long long>(trace.model),
                  static_cast<unsigned long long>(trace.sequence),
                  static_cast<unsigned long long>(trace.claim_id),
                  trace.latency_ms(), trace.spans.size(),
                  trace.complete ? "" : " (incomplete)");
    out += buffer;
    for (const SpanRecord& span : trace.spans) {
      std::string name = SpanKindName(span.kind);
      std::snprintf(buffer, sizeof(buffer),
                    "  %-16s begin_ms=%10.3f dur_ms=%9.3f shard=%d worker=%d "
                    "detail=%lld\n",
                    name.c_str(), static_cast<double>(span.begin_ns) / 1e6,
                    static_cast<double>(span.end_ns - span.begin_ns) / 1e6,
                    span.shard == kNoIndex ? -1 : static_cast<int>(span.shard),
                    span.worker == kNoIndex ? -1 : static_cast<int>(span.worker),
                    static_cast<long long>(span.detail));
      out += buffer;
    }
  }
  return out;
}

int64_t TraceCollector::spans_folded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_folded_;
}

int64_t TraceCollector::claims_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return claims_completed_;
}

int64_t TraceCollector::late_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return late_spans_;
}

}  // namespace tao
