// Per-claim span tracing for the serving pipeline (docs/observability.md).
//
// Every claim admitted by a VerificationService leaves a chain of timestamped
// spans across its whole lifecycle — submit/admit, queue wait, batch formation,
// batched phase-1 execution, threshold check, resolve-lane wait, the dispute
// rounds, verdict delivery — tagged with the claim's model id, global submission
// sequence, coordinator claim id (once assigned), shard, and verify-worker index.
//
// The hot path is built to be invisible to the pipeline it observes:
//
//   * recording is OFF by default; the only cost at every span site is one
//     relaxed atomic load (`Tracer::enabled()`);
//   * when ON, a span costs one steady-clock read plus one slot write into the
//     recording thread's OWN bounded ring buffer, published with a release store
//     — no mutex, no allocation, no syscall, ever, on any recording path;
//   * a full ring DROPS the span (counted) instead of blocking or growing.
//
// Spans are observation-only by construction: no instrumented layer branches on
// tracer state except to skip recording, so verdicts, gas, digests, claim ids,
// and ledgers are bitwise identical with tracing on or off (asserted by
// tests/observability_test.cc).
//
// Ring drain protocol (SPSC): the owning thread is the only producer; a drain —
// serialized by the tracer's registry mutex — is the only consumer. The producer
// writes the slot then advances `head` with a release store; the consumer
// acquires `head`, copies slots `tail..head`, then advances `tail` with a release
// store the producer acquires before reusing a slot. Rings are never deallocated
// while the process lives, so a thread's ring outlives the thread.

#ifndef TAO_SRC_OBSERVABILITY_TRACE_H_
#define TAO_SRC_OBSERVABILITY_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace tao {

// Pipeline stage a span measures. Kinds appear at most once per claim, except
// kDisputeRound (one per round) — the chain order below is the claim lifecycle.
enum class SpanKind : uint8_t {
  kSubmit,          // admission: Submit() entry -> sequence assigned
  kQueueWait,       // admission -> popped by a verify worker
  kBatchForm,       // worker: window gate + batch sizing + queue pop
  kPhase1,          // batched phase-1 DAG execution (cohort interval)
  kThresholdCheck,  // output threshold check + lazy re-exec (supervised only)
  kResolveWait,     // handed to the resolve lane -> lane picked it up
  kResolve,         // the lane's coordinator interaction (dispute game included)
  kDisputeRound,    // one dispute-game round (detail = round index)
  kDeliver,         // resolved -> verdict delivered (ordered-mode park included)
};

const char* SpanKindName(SpanKind kind);

inline constexpr uint32_t kNoIndex = 0xffffffffu;

// One recorded span. Timestamps are steady-clock nanoseconds since the process
// tracer's origin (Tracer::NowNs).
struct SpanRecord {
  uint64_t model = 0;     // owning model (0 = standalone coordinator)
  uint64_t sequence = 0;  // service global submission sequence (trace key)
  uint64_t claim_id = 0;  // coordinator claim id; 0 until assigned
  uint32_t shard = kNoIndex;   // resolve lane / coordinator shard
  uint32_t worker = kNoIndex;  // verify-worker index
  SpanKind kind = SpanKind::kSubmit;
  int64_t detail = 0;  // kind-specific: cohort size, flagged, round index
  int64_t begin_ns = 0;
  int64_t end_ns = 0;
};

// Identity of the claim the current thread is working on, published by the
// service layer so layers below it (batch verifier, dispute game) can record
// spans without threading ids through every protocol API.
struct TraceContext {
  uint64_t model = 0;
  uint64_t sequence = 0;
  uint32_t shard = kNoIndex;
  uint32_t worker = kNoIndex;
};

// Scoped thread-local publication of the claim context(s) the current thread is
// driving. A resolve lane publishes exactly one context; a verify worker
// publishes its whole cohort (indexed by claim position) around ExecutePhase1.
// Nested scopes restore the previous publication on destruction.
class ScopedTraceContext {
 public:
  ScopedTraceContext(const TraceContext* contexts, size_t count);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  // Context of cohort position `index` on this thread; null when nothing is
  // published (standalone protocol drivers) or the index is out of range.
  static const TraceContext* At(size_t index);
  // The single-claim context (At(0)).
  static const TraceContext* Current();

 private:
  const TraceContext* previous_contexts_;
  size_t previous_count_;
};

// Lock-free bounded SPSC ring of spans: the owning thread produces, a drain
// (serialized by the Tracer) consumes. Full ring = drop + count.
class SpanRing {
 public:
  static constexpr size_t kCapacity = 4096;  // power of two

  // Producer side (owning thread only).
  void Push(const SpanRecord& span);
  // Consumer side (one drainer at a time). Appends drained spans to `out`.
  size_t DrainInto(std::vector<SpanRecord>& out);

  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  std::array<SpanRecord, kCapacity> slots_;
  std::atomic<uint64_t> head_{0};  // next slot to write (producer-owned)
  std::atomic<uint64_t> tail_{0};  // next slot to read (consumer-owned)
  std::atomic<int64_t> dropped_{0};
};

// Process-wide tracer: the registry of per-thread rings plus the global on/off
// switch. Get() never destructs (threads may record during static teardown).
class Tracer {
 public:
  static Tracer& Get();

  // Cheap hot-path check — every span site guards on this.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  // Records one span into the calling thread's ring (registering the ring on
  // first use). No-op when disabled.
  static void Record(const SpanRecord& span);

  // Steady-clock nanoseconds since the tracer origin.
  static int64_t NowNs();
  static int64_t ToNs(std::chrono::steady_clock::time_point tp);

  // Drains every registered ring (appending to `out`); returns spans drained.
  // Serialized internally; safe from any thread.
  size_t Drain(std::vector<SpanRecord>& out);

  int64_t spans_recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  // Spans dropped on full rings, folded across every ring.
  int64_t spans_dropped() const;

 private:
  Tracer();
  SpanRing* RegisterRing();

  static std::atomic<bool> enabled_;
  const std::chrono::steady_clock::time_point origin_;
  std::atomic<int64_t> recorded_{0};

  std::mutex mu_;  // guards rings_ (registration + drain)
  std::vector<std::unique_ptr<SpanRing>> rings_;
};

// -------------------------------------------------------------------------------------
// TraceCollector: folds drained spans into per-claim chains with a slow-claim
// retention policy, and exports them.

struct TraceCollectorOptions {
  // A completed claim whose submit->deliver latency is at least this keeps its
  // full span chain in the slow store; faster claims ride the small recent ring
  // and age out. 0 retains everything (tests, the demo).
  double slow_claim_ms = 50.0;
  size_t max_slow_claims = 128;    // bounded slow store (oldest evicted)
  size_t max_recent_claims = 32;   // bounded recent-completed ring
  size_t max_open_claims = 1024;   // chains still missing their delivery span
};

// One claim's assembled span chain.
struct ClaimTrace {
  uint64_t model = 0;
  uint64_t sequence = 0;
  uint64_t claim_id = 0;           // 0 if no resolving span arrived
  int64_t begin_ns = 0;            // min span begin
  int64_t end_ns = 0;              // max span end
  bool complete = false;           // delivery span seen
  std::vector<SpanRecord> spans;   // sorted by begin_ns

  double latency_ms() const {
    return static_cast<double>(end_ns - begin_ns) / 1e6;
  }
  bool has(SpanKind kind) const;
};

class TraceCollector {
 public:
  explicit TraceCollector(TraceCollectorOptions options = {});

  // Drains the tracer and folds the new spans into chains. Call at will; the
  // exporters below poll internally.
  void Poll();

  // Retained chains: every slow claim (newest first), then the recent ring.
  std::vector<ClaimTrace> Traces() const;

  // chrome://tracing JSON ("traceEvents" array of complete "X" events; pid =
  // model, tid = shard/worker).
  std::string ChromeTraceJson();
  // Compact per-claim text table (one line per span).
  std::string TextTable();

  int64_t spans_folded() const;
  int64_t claims_completed() const;
  int64_t late_spans() const;  // spans for already-finalized chains (dropped)

 private:
  using Key = std::pair<uint64_t, uint64_t>;  // (model, sequence)

  void FoldLocked(const SpanRecord& span);
  void FinalizeLocked(Key key);
  void MarkClosedLocked(const Key& key);

  const TraceCollectorOptions options_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> scratch_;
  std::map<Key, ClaimTrace> open_;
  // Bounded FIFO memory of finalized/evicted keys, so a straggler span for a
  // closed chain is counted late and dropped instead of re-opening a ghost chain.
  std::set<Key> closed_;
  std::deque<Key> closed_fifo_;
  std::deque<ClaimTrace> slow_;    // newest at front
  std::deque<ClaimTrace> recent_;  // newest at front
  int64_t spans_folded_ = 0;
  int64_t claims_completed_ = 0;
  int64_t late_spans_ = 0;
};

}  // namespace tao

#endif  // TAO_SRC_OBSERVABILITY_TRACE_H_
