#include "src/observability/http_endpoint.h"

#include <cstring>
#include <string_view>
#include <utility>

#include "src/observability/export.h"
#include "src/observability/resource_tracker.h"

namespace tao {
namespace {

constexpr size_t kMaxRequestBytes = 16 * 1024;

std::string BuildResponse(int status, const char* reason, const char* content_type,
                          const std::string& body, bool head) {
  std::string response = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                         "\r\nContent-Type: " + std::string(content_type) +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  if (!head) {
    response += body;
  }
  return response;
}

}  // namespace

// One handler per accepted connection: accumulate the (bodiless GET/HEAD)
// request until the header terminator, answer once, close after the flush. All
// of it runs on the dispatcher loop thread; Dispatch is cheap (string rendering
// over a counters snapshot), so scrapes never stall the RPC traffic sharing the
// loop for longer than one render.
class MonitoringServer::HttpHandler : public ConnectionHandler {
 public:
  explicit HttpHandler(MonitoringServer& server) : server_(server) {}

  void OnReadable(Connection& connection, std::vector<uint8_t>& buffer) override {
    if (answered_) {
      buffer.clear();  // trailing bytes after the request: ignore
      return;
    }
    if (buffer.size() > kMaxRequestBytes) {
      Respond(connection, 400, "Bad Request", "text/plain", "bad request\n", false);
      return;
    }
    const std::string_view request(reinterpret_cast<const char*>(buffer.data()),
                                   buffer.size());
    if (request.find("\r\n\r\n") == std::string_view::npos) {
      return;  // torn: wait for the rest of the header
    }
    const size_t method_end = request.find(' ');
    const size_t target_end = method_end == std::string_view::npos
                                  ? std::string_view::npos
                                  : request.find(' ', method_end + 1);
    if (method_end == std::string_view::npos ||
        target_end == std::string_view::npos) {
      Respond(connection, 400, "Bad Request", "text/plain", "bad request\n", false);
      return;
    }
    const std::string method(request.substr(0, method_end));
    const std::string target(
        request.substr(method_end + 1, target_end - method_end - 1));
    if (method != "GET" && method != "HEAD") {
      Respond(connection, 405, "Method Not Allowed", "text/plain", "GET only\n",
              false);
      return;
    }
    server_.requests_.fetch_add(1);
    const char* content_type =
        (target == "/snapshot" || target == "/traces.json") ? "application/json"
                                                            : "text/plain";
    const std::string body = server_.Dispatch(target);
    if (body.empty() && target != "/") {
      Respond(connection, 404, "Not Found", "text/plain", "not found\n",
              method == "HEAD");
    } else {
      Respond(connection, 200, "OK", content_type, body, method == "HEAD");
    }
  }

 private:
  void Respond(Connection& connection, int status, const char* reason,
               const char* content_type, const std::string& body, bool head) {
    answered_ = true;
    const std::string response =
        BuildResponse(status, reason, content_type, body, head);
    connection.Send(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(response.data()), response.size()));
    connection.CloseAfterFlush();
  }

  MonitoringServer& server_;
  bool answered_ = false;
};

MonitoringServer::MonitoringServer(const MonitoringOptions& options,
                                   CountersFn counters,
                                   std::shared_ptr<Dispatcher> dispatcher)
    : options_(options),
      counters_(std::move(counters)),
      collector_(options.trace),
      owns_tracing_(options.enable_tracing && !Tracer::enabled()) {
  TcpServerOptions server_options;
  server_options.bind_address = options_.bind_address;
  server_options.port = options_.port;
  server_options.backlog = 16;
  server_options.accept_role = "monitoring";
  server_ = std::make_unique<TcpServer>(
      std::move(server_options),
      [this] { return std::make_unique<HttpHandler>(*this); },
      std::move(dispatcher));

  if (owns_tracing_) {
    Tracer::Get().Enable();
  }
  ResourceTracker::Get().StartSampler(
      std::chrono::milliseconds(options_.sampler_period_ms));
}

MonitoringServer::~MonitoringServer() {
  // The TcpServer dtor closes this server's connections and Syncs the
  // dispatcher, so no HttpHandler callback (hence no counters_() call) survives
  // this line.
  server_.reset();
  ResourceTracker::Get().StopSampler();
  if (owns_tracing_) {
    Tracer::Get().Disable();
  }
}

std::string MonitoringServer::Dispatch(const std::string& target) {
  if (target == "/healthz") {
    return "ok\n";
  }
  if (target == "/metrics") {
    std::vector<NamedCounter> counters = counters_ ? counters_() : std::vector<NamedCounter>{};
    std::vector<NamedCounter> resources = ResourceTracker::Get().Counters();
    counters.insert(counters.end(), resources.begin(), resources.end());
    return PrometheusText(counters);
  }
  if (target == "/snapshot") {
    std::vector<NamedCounter> counters = counters_ ? counters_() : std::vector<NamedCounter>{};
    std::vector<NamedCounter> resources = ResourceTracker::Get().Counters();
    counters.insert(counters.end(), resources.begin(), resources.end());
    return CountersJson(counters);
  }
  if (target == "/traces") {
    return collector_.TextTable();
  }
  if (target == "/traces.json") {
    return collector_.ChromeTraceJson();
  }
  if (target == "/" || target.empty()) {
    return "tao monitoring: /healthz /metrics /snapshot /traces /traces.json\n";
  }
  return std::string();
}

}  // namespace tao
