#include "src/observability/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "src/observability/export.h"
#include "src/observability/resource_tracker.h"

namespace tao {
namespace {

constexpr int kPollTimeoutMs = 100;  // shutdown latency bound for both loops

void SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return;  // peer went away; nothing to do for a monitoring scrape
    }
    sent += static_cast<size_t>(n);
  }
}

void WriteResponse(int fd, int status, const char* reason,
                   const char* content_type, const std::string& body) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  SendAll(fd, head.data(), head.size());
  SendAll(fd, body.data(), body.size());
}

}  // namespace

MonitoringServer::MonitoringServer(const MonitoringOptions& options,
                                   CountersFn counters)
    : options_(options),
      counters_(std::move(counters)),
      collector_(options.trace),
      owns_tracing_(options.enable_tracing && !Tracer::enabled()) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("monitoring: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("monitoring: bad bind address " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("monitoring: bind/listen failed on " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  if (owns_tracing_) {
    Tracer::Get().Enable();
  }
  ResourceTracker::Get().StartSampler(
      std::chrono::milliseconds(options_.sampler_period_ms));

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  handler_thread_ = std::thread([this] { HandlerLoop(); });
}

MonitoringServer::~MonitoringServer() {
  stop_.store(true);
  cv_.notify_all();
  accept_thread_.join();
  handler_thread_.join();
  ::close(listen_fd_);
  for (const int fd : pending_) {
    ::close(fd);
  }
  ResourceTracker::Get().StopSampler();
  if (owns_tracing_) {
    Tracer::Get().Disable();
  }
}

void MonitoringServer::AcceptLoop() {
  ResourceTracker::ScopedThread self("monitoring");
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollTimeoutMs);
    if (ready <= 0 || !(pfd.revents & POLLIN)) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back(fd);
    }
    cv_.notify_one();
  }
}

void MonitoringServer::HandlerLoop() {
  ResourceTracker::ScopedThread self("monitoring");
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_.load() || !pending_.empty(); });
      if (pending_.empty()) {
        return;  // stop requested and drained
      }
      fd = pending_.front();
      pending_.pop_front();
    }
    HandleConnection(fd);
  }
}

void MonitoringServer::HandleConnection(int fd) {
  // One request per connection: read until the header terminator (requests here
  // are bodiless GETs), answer, close.
  std::string request;
  char buffer[2048];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 1000) <= 0) {
      break;
    }
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      break;
    }
    request.append(buffer, static_cast<size_t>(n));
  }
  const size_t method_end = request.find(' ');
  const size_t target_end =
      method_end == std::string::npos ? std::string::npos
                                      : request.find(' ', method_end + 1);
  if (method_end == std::string::npos || target_end == std::string::npos) {
    WriteResponse(fd, 400, "Bad Request", "text/plain", "bad request\n");
    ::close(fd);
    return;
  }
  const std::string method = request.substr(0, method_end);
  const std::string target =
      request.substr(method_end + 1, target_end - method_end - 1);
  if (method != "GET" && method != "HEAD") {
    WriteResponse(fd, 405, "Method Not Allowed", "text/plain",
                  "GET only\n");
    ::close(fd);
    return;
  }
  requests_.fetch_add(1);
  const char* content_type =
      (target == "/snapshot" || target == "/traces.json") ? "application/json"
                                                          : "text/plain";
  const std::string body = Dispatch(target);
  if (body.empty() && target != "/") {
    WriteResponse(fd, 404, "Not Found", "text/plain", "not found\n");
  } else {
    WriteResponse(fd, 200, "OK", content_type, method == "HEAD" ? "" : body);
  }
  ::close(fd);
}

std::string MonitoringServer::Dispatch(const std::string& target) {
  if (target == "/healthz") {
    return "ok\n";
  }
  if (target == "/metrics") {
    std::vector<NamedCounter> counters = counters_ ? counters_() : std::vector<NamedCounter>{};
    std::vector<NamedCounter> resources = ResourceTracker::Get().Counters();
    counters.insert(counters.end(), resources.begin(), resources.end());
    return PrometheusText(counters);
  }
  if (target == "/snapshot") {
    std::vector<NamedCounter> counters = counters_ ? counters_() : std::vector<NamedCounter>{};
    std::vector<NamedCounter> resources = ResourceTracker::Get().Counters();
    counters.insert(counters.end(), resources.begin(), resources.end());
    return CountersJson(counters);
  }
  if (target == "/traces") {
    return collector_.TextTable();
  }
  if (target == "/traces.json") {
    return collector_.ChromeTraceJson();
  }
  if (target == "/" || target.empty()) {
    return "tao monitoring: /healthz /metrics /snapshot /traces /traces.json\n";
  }
  return std::string();
}

}  // namespace tao
