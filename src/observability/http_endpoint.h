// Embedded HTTP/1.1 monitoring endpoint (docs/observability.md).
//
// A deliberately minimal server — POSIX sockets, no external deps, no TLS, no
// keep-alive — meant for localhost scrapes and curl, NOT as the claim-submission
// front-end (that is the ROADMAP's separate RPC gateway item). One accept thread
// (poll()-gated so shutdown never hangs in accept) feeds a small handler thread
// over an fd queue; each request is read, answered, and the connection closed.
//
// Routes:
//   /healthz      "ok" while the server runs
//   /metrics      Prometheus text rendered from the wired CountersFn
//   /snapshot     the same counters as a flat JSON object
//   /traces       per-claim span chains, compact text table
//   /traces.json  the same chains as chrome://tracing JSON
//
// Starting the server enables Tracer recording and the ResourceTracker sampler;
// stopping disables tracing again (spans cost nothing while disabled).

#ifndef TAO_SRC_OBSERVABILITY_HTTP_ENDPOINT_H_
#define TAO_SRC_OBSERVABILITY_HTTP_ENDPOINT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/observability/trace.h"
#include "src/service/metrics.h"

namespace tao {

struct MonitoringOptions {
  bool enabled = false;    // off by default: opt-in via gateway/marketplace config
  int port = 0;            // 0 = ephemeral (read the bound port from the server)
  std::string bind_address = "127.0.0.1";
  // Sampling period of the background resource sampler.
  int sampler_period_ms = 100;
  // Slow-claim retention policy for /traces.
  TraceCollectorOptions trace;
  // Also enable span recording (the server works as a pure metrics endpoint with
  // tracing off; /traces is then empty).
  bool enable_tracing = true;
};

class MonitoringServer {
 public:
  using CountersFn = std::function<std::vector<NamedCounter>()>;

  // Binds and starts serving immediately; throws std::runtime_error when the
  // socket cannot be bound. `counters` is called per /metrics//snapshot request
  // from the handler thread and must be safe until the server is destroyed.
  MonitoringServer(const MonitoringOptions& options, CountersFn counters);
  ~MonitoringServer();

  MonitoringServer(const MonitoringServer&) = delete;
  MonitoringServer& operator=(const MonitoringServer&) = delete;

  int port() const { return port_; }
  TraceCollector& collector() { return collector_; }

  int64_t requests_served() const { return requests_.load(); }

  // Route dispatch without a socket (tests; the demo's self-check).
  std::string HandleForTest(const std::string& target) { return Dispatch(target); }

 private:
  void AcceptLoop();
  void HandlerLoop();
  void HandleConnection(int fd);
  std::string Dispatch(const std::string& target);

  const MonitoringOptions options_;
  const CountersFn counters_;
  TraceCollector collector_;
  const bool owns_tracing_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> requests_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_;  // accepted fds awaiting the handler

  std::thread accept_thread_;
  std::thread handler_thread_;
};

}  // namespace tao

#endif  // TAO_SRC_OBSERVABILITY_HTTP_ENDPOINT_H_
