// Embedded HTTP/1.1 monitoring endpoint (docs/observability.md).
//
// A deliberately minimal server — no external deps, no TLS, no keep-alive —
// meant for localhost scrapes and curl, NOT as the claim-submission front-end
// (that is src/net's RpcServer). Since the net subsystem landed, the endpoint is
// a thin ConnectionHandler over the shared TcpServer/Dispatcher: the gateway
// passes its net dispatcher so monitoring scrapes and RPC traffic multiplex onto
// ONE epoll loop thread, and a standalone MonitoringServer owns a dispatcher of
// its own (thread role "monitoring" either way for the accept thread). Each
// request is read, answered, and the connection closed after the flush.
//
// Routes:
//   /healthz      "ok" while the server runs
//   /metrics      Prometheus text rendered from the wired CountersFn
//   /snapshot     the same counters as a flat JSON object
//   /traces       per-claim span chains, compact text table
//   /traces.json  the same chains as chrome://tracing JSON
//
// Starting the server enables Tracer recording and the ResourceTracker sampler;
// stopping disables tracing again (spans cost nothing while disabled).

#ifndef TAO_SRC_OBSERVABILITY_HTTP_ENDPOINT_H_
#define TAO_SRC_OBSERVABILITY_HTTP_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/net/tcp_server.h"
#include "src/observability/trace.h"
#include "src/service/metrics.h"

namespace tao {

struct MonitoringOptions {
  bool enabled = false;    // off by default: opt-in via gateway/marketplace config
  int port = 0;            // 0 = ephemeral (read the bound port from the server)
  std::string bind_address = "127.0.0.1";
  // Sampling period of the background resource sampler.
  int sampler_period_ms = 100;
  // Slow-claim retention policy for /traces.
  TraceCollectorOptions trace;
  // Also enable span recording (the server works as a pure metrics endpoint with
  // tracing off; /traces is then empty).
  bool enable_tracing = true;
};

class MonitoringServer {
 public:
  using CountersFn = std::function<std::vector<NamedCounter>()>;

  // Binds and starts serving immediately; throws std::runtime_error when the
  // socket cannot be bound. `counters` is called per /metrics//snapshot request
  // from the dispatcher loop thread and must be safe until the server is
  // destroyed. A null `dispatcher` makes the server own one (thread role
  // "monitoring"); the gateway passes its shared net dispatcher instead.
  MonitoringServer(const MonitoringOptions& options, CountersFn counters,
                   std::shared_ptr<Dispatcher> dispatcher = nullptr);
  ~MonitoringServer();

  MonitoringServer(const MonitoringServer&) = delete;
  MonitoringServer& operator=(const MonitoringServer&) = delete;

  int port() const { return server_->port(); }
  TraceCollector& collector() { return collector_; }

  int64_t requests_served() const { return requests_.load(); }

  // Route dispatch without a socket (tests; the demo's self-check).
  std::string HandleForTest(const std::string& target) { return Dispatch(target); }

 private:
  class HttpHandler;
  friend class HttpHandler;

  std::string Dispatch(const std::string& target);

  const MonitoringOptions options_;
  const CountersFn counters_;
  TraceCollector collector_;
  const bool owns_tracing_;
  std::atomic<int64_t> requests_{0};

  std::unique_ptr<TcpServer> server_;
};

}  // namespace tao

#endif  // TAO_SRC_OBSERVABILITY_HTTP_ENDPOINT_H_
