#include "src/observability/export.h"

#include <cmath>
#include <cstdio>

namespace tao {
namespace {

bool IsMetricChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

// %.17g keeps doubles round-trippable; integral values render without exponent.
std::string FormatValue(double value) {
  if (!std::isfinite(value)) {
    return value > 0 ? "+Inf" : (value < 0 ? "-Inf" : "NaN");
  }
  char buffer[64];
  if (value == static_cast<double>(static_cast<int64_t>(value))) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(static_cast<int64_t>(value)));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return buffer;
}

}  // namespace

void AppendJsonEscaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
}

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "tao_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    out.push_back(IsMetricChar(c) ? c : '_');
  }
  return out;
}

std::string PrometheusText(const std::vector<NamedCounter>& counters) {
  std::string out;
  for (const NamedCounter& counter : counters) {
    const std::string metric = PrometheusMetricName(counter.name);
    out += "# HELP " + metric + " " + counter.name + "\n";
    out += "# TYPE " + metric + " untyped\n";
    out += metric + " " + FormatValue(counter.value) + "\n";
  }
  return out;
}

std::string CountersJson(const std::vector<NamedCounter>& counters) {
  std::string out = "{";
  bool first = true;
  for (const NamedCounter& counter : counters) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += "\"";
    AppendJsonEscaped(out, counter.name);  // names are slash/alnum; escape anyway
    out += "\":";
    const std::string value = FormatValue(counter.value);
    // JSON has no Inf/NaN literals.
    out += (value == "+Inf" || value == "-Inf" || value == "NaN") ? "null" : value;
  }
  out += "}";
  return out;
}

}  // namespace tao
