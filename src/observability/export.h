// Text renderings of NamedCounters for the monitoring endpoint.
//
// Counter names in this codebase are slash-namespaced ("model/1/claims/accepted");
// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*, so the Prometheus
// rendering sanitizes every name (slashes and other illegal characters become '_',
// a leading digit gets a '_' prefix) under a "tao_" prefix and carries the
// original slash-name on the preceding "# HELP" line, e.g.:
//
//   # HELP tao_model_1_claims_accepted model/1/claims/accepted
//   # TYPE tao_model_1_claims_accepted untyped
//   tao_model_1_claims_accepted 128
//
// so dashboards scrape valid names while greps for the repo's native names still
// match the page. The JSON rendering is a flat {"name": value} object keyed by
// the original names.

#ifndef TAO_SRC_OBSERVABILITY_EXPORT_H_
#define TAO_SRC_OBSERVABILITY_EXPORT_H_

#include <string>
#include <vector>

#include "src/service/metrics.h"

namespace tao {

// Appends `text` to `out` with JSON string escaping: '"' and '\' get a
// backslash prefix. The names this codebase emits (counter names, span kinds)
// never carry control characters, so those are passed through untouched.
// Shared by CountersJson below and TraceCollector::ChromeTraceJson.
void AppendJsonEscaped(std::string& out, const std::string& text);

// "tao_" + name with every character outside [a-zA-Z0-9_] replaced by '_'.
std::string PrometheusMetricName(const std::string& name);

std::string PrometheusText(const std::vector<NamedCounter>& counters);

std::string CountersJson(const std::vector<NamedCounter>& counters);

}  // namespace tao

#endif  // TAO_SRC_OBSERVABILITY_EXPORT_H_
