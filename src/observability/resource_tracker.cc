#include "src/observability/resource_tracker.h"

#include <time.h>

#include <algorithm>

#include "src/runtime/arena.h"

namespace tao {
namespace {

double ReadClockSeconds(clockid_t clock) {
  struct timespec ts {};
  if (clock_gettime(clock, &ts) != 0) {
    return 0.0;
  }
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) / 1e9;
}

}  // namespace

ResourceTracker& ResourceTracker::Get() {
  // Leaked: registered threads may deregister during static destruction.
  static ResourceTracker* instance = new ResourceTracker();
  return *instance;
}

size_t ResourceTracker::Register(const std::string& role, std::string* name) {
  clockid_t clock{};
  const bool have_clock = pthread_getcpuclockid(pthread_self(), &clock) == 0;
  std::lock_guard<std::mutex> lock(mu_);
  // Recycle the lowest dead slot of the same role so ordinals stay stable across
  // service restarts; the predecessor's CPU moves into dead_seconds.
  size_t slot = slots_.size();
  size_t ordinal = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].role == role) {
      if (!slots_[i].alive && slot == slots_.size()) {
        slot = i;
      }
      ++ordinal;
    }
  }
  if (slot == slots_.size()) {
    slots_.emplace_back();
    slots_[slot].role = role;
    slots_[slot].ordinal = ordinal;
  }
  Slot& s = slots_[slot];
  s.clock = have_clock ? clock : clockid_t{};
  s.alive = have_clock;
  s.dead_seconds += s.live_seconds;
  s.live_seconds = have_clock ? ReadClockSeconds(clock) : 0.0;
  // The occupant's baseline is its CPU so far; its contribution is the delta.
  s.dead_seconds -= s.live_seconds;
  *name = s.role + "/" + std::to_string(s.ordinal);
  return slot;
}

void ResourceTracker::Deregister(size_t slot) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slots_[slot];
  if (s.alive) {
    // Final self-sample while the thread (and its clock) still exists.
    s.live_seconds = ReadClockSeconds(s.clock);
    s.alive = false;
  }
}

ResourceTracker::ScopedThread::ScopedThread(const std::string& role) {
  // Registration happens in the body: every member (name_ included) must be
  // constructed before Register writes the assigned name through the pointer.
  slot_ = ResourceTracker::Get().Register(role, &name_);
}

ResourceTracker::ScopedThread::~ScopedThread() {
  ResourceTracker::Get().Deregister(slot_);
}

void ResourceTracker::SampleLocked() {
  for (Slot& s : slots_) {
    if (s.alive) {
      s.live_seconds = ReadClockSeconds(s.clock);
    }
  }
  ++samples_taken_;
}

std::vector<ResourceTracker::ThreadSample> ResourceTracker::Sample() {
  std::lock_guard<std::mutex> lock(mu_);
  SampleLocked();
  std::vector<ThreadSample> samples;
  samples.reserve(slots_.size());
  for (const Slot& s : slots_) {
    samples.push_back({s.role + "/" + std::to_string(s.ordinal),
                       std::max(0.0, s.dead_seconds + s.live_seconds), s.alive});
  }
  return samples;
}

size_t ResourceTracker::RegisterGauge(std::string name, std::function<double()> gauge) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t handle = next_gauge_handle_++;
  gauges_.push_back({handle, std::move(name), std::move(gauge)});
  return handle;
}

void ResourceTracker::UnregisterGauge(size_t handle) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.erase(std::remove_if(gauges_.begin(), gauges_.end(),
                               [&](const Gauge& g) { return g.handle == handle; }),
                gauges_.end());
}

void ResourceTracker::SamplerLoop(std::chrono::milliseconds period) {
  ScopedThread self("sampler");
  std::unique_lock<std::mutex> lock(mu_);
  while (!sampler_stop_) {
    SampleLocked();
    sampler_cv_.wait_for(lock, period, [&] { return sampler_stop_; });
  }
}

void ResourceTracker::StartSampler(std::chrono::milliseconds period) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sampler_running_) {
      return;
    }
    sampler_running_ = true;
    sampler_stop_ = false;
  }
  sampler_ = std::thread([this, period] { SamplerLoop(period); });
}

void ResourceTracker::StopSampler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!sampler_running_) {
      return;
    }
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  sampler_.join();
  std::lock_guard<std::mutex> lock(mu_);
  sampler_running_ = false;
}

bool ResourceTracker::sampler_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampler_running_;
}

int64_t ResourceTracker::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_taken_;
}

size_t ResourceTracker::threads_alive() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t alive = 0;
  for (const Slot& s : slots_) {
    alive += s.alive ? 1 : 0;
  }
  return alive;
}

size_t ResourceTracker::threads_registered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

std::vector<NamedCounter> ResourceTracker::Counters() {
  std::vector<NamedCounter> counters;
  std::vector<Gauge> gauges;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SampleLocked();
    double total = 0.0;
    size_t alive = 0;
    for (const Slot& s : slots_) {
      const double cpu = std::max(0.0, s.dead_seconds + s.live_seconds);
      counters.push_back(
          {s.role + "/" + std::to_string(s.ordinal) + "/cpu_seconds", cpu});
      total += cpu;
      alive += s.alive ? 1 : 0;
    }
    counters.push_back({"resource/cpu_seconds_total", total});
    counters.push_back({"resource/threads_alive", static_cast<double>(alive)});
    counters.push_back(
        {"resource/threads_registered", static_cast<double>(slots_.size())});
    counters.push_back(
        {"resource/sampler_samples", static_cast<double>(samples_taken_)});
    gauges = gauges_;  // evaluate outside mu_: a gauge may take its own locks
  }
  counters.push_back({"resource/arena_outstanding_bytes",
                      static_cast<double>(TensorArena::GlobalOutstandingBytes())});
  counters.push_back({"resource/arena_peak_bytes",
                      static_cast<double>(TensorArena::GlobalPeakBytes())});
  for (const Gauge& gauge : gauges) {
    counters.push_back({gauge.name, gauge.fn()});
  }
  return counters;
}

}  // namespace tao
