#include "src/models/attention.h"

#include <cmath>

#include "src/util/check.h"

namespace tao {

NodeId AppendLinear(Graph& graph, Rng& rng, const std::string& name, NodeId x, int64_t in,
                    int64_t out) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(in));
  const NodeId w = graph.AddParam(name + ".w", Tensor::Randn(Shape{out, in}, rng, scale));
  const NodeId b = graph.AddParam(name + ".b", Tensor::Zeros(Shape{out}));
  return graph.AddOp("linear", name, {x, w, b});
}

NodeId AppendSelfAttention(Graph& graph, Rng& rng, const std::string& prefix, NodeId x,
                           const AttentionOptions& options) {
  const int64_t seq = options.seq;
  const int64_t dim = options.dim;
  const int64_t heads = options.heads;
  TAO_CHECK_EQ(dim % heads, 0);
  const int64_t head_dim = dim / heads;

  const NodeId q = AppendLinear(graph, rng, prefix + ".q_proj", x, dim, dim);
  const NodeId k = AppendLinear(graph, rng, prefix + ".k_proj", x, dim, dim);
  const NodeId v = AppendLinear(graph, rng, prefix + ".v_proj", x, dim, dim);

  auto split_heads = [&](NodeId t, const std::string& name,
                         std::vector<int64_t> perm) -> NodeId {
    Attrs rs;
    rs.Set("shape", std::vector<int64_t>{seq, heads, head_dim});
    const NodeId reshaped = graph.AddOp("reshape", name + ".split", {t}, rs);
    Attrs tp;
    tp.Set("perm", std::move(perm));
    return graph.AddOp("transpose", name + ".perm", {reshaped}, tp);
  };

  // q, v: [heads, seq, head_dim]; k: [heads, head_dim, seq] for the score bmm.
  const NodeId qh = split_heads(q, prefix + ".q", {1, 0, 2});
  const NodeId kh = split_heads(k, prefix + ".k", {1, 2, 0});
  const NodeId vh = split_heads(v, prefix + ".v", {1, 0, 2});

  NodeId scores = graph.AddOp("bmm", prefix + ".scores", {qh, kh});
  const NodeId scale = graph.AddParam(
      prefix + ".scale",
      Tensor::Full(Shape{1}, 1.0f / std::sqrt(static_cast<float>(head_dim))));
  scores = graph.AddOp("mul", prefix + ".scaled", {scores, scale});

  if (options.causal) {
    Tensor mask = Tensor::Zeros(Shape{heads, seq, seq});
    auto mv = mask.mutable_values();
    for (int64_t h = 0; h < heads; ++h) {
      for (int64_t i = 0; i < seq; ++i) {
        for (int64_t j = i + 1; j < seq; ++j) {
          mv[static_cast<size_t>((h * seq + i) * seq + j)] = 1.0f;
        }
      }
    }
    const NodeId mask_node = graph.AddParam(prefix + ".causal_mask", mask);
    Attrs mf;
    mf.Set("value", -1e9);
    scores = graph.AddOp("masked_fill", prefix + ".masked", {scores, mask_node}, mf);
  }

  Attrs sm;
  sm.Set("axis", static_cast<int64_t>(-1));
  const NodeId attn = graph.AddOp("softmax", prefix + ".softmax", {scores}, sm);
  const NodeId context = graph.AddOp("bmm", prefix + ".context", {attn, vh});

  Attrs unperm;
  unperm.Set("perm", std::vector<int64_t>{1, 0, 2});
  const NodeId merged = graph.AddOp("transpose", prefix + ".merge_perm", {context}, unperm);
  Attrs rs;
  rs.Set("shape", std::vector<int64_t>{seq, dim});
  const NodeId flat = graph.AddOp("reshape", prefix + ".merge", {merged}, rs);
  return AppendLinear(graph, rng, prefix + ".o_proj", flat, dim, dim);
}

}  // namespace tao
