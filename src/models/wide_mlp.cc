// Wide-reduction study model: a two-layer MLP classifier whose first inner product
// spans k = 4096 elements. At paper scale (8B-parameter LLMs), reductions of this
// length are what make the deterministic worst-case gamma_k bound loose enough to
// leave a real attack window at the leaf (Table 2's nonzero ASR on Qwen3-8B): the
// admissible per-logit deviation grows ~k*u deterministically but only ~4*sqrt(k)*u
// probabilistically and ~u empirically. The mini transformer stand-ins have k ~ 48,
// so this model restores the long-reduction regime at tractable cost.

#include <cmath>

#include "src/models/attention.h"
#include "src/models/model_zoo.h"

namespace tao {

Model BuildWideMlp(const WideMlpConfig& config) {
  auto graph = std::make_shared<Graph>();
  Rng rng(config.seed);
  Graph& g = *graph;

  const NodeId x = g.AddInput("features", Shape{1, config.input_dim});
  NodeId h = AppendLinear(g, rng, "fc1", x, config.input_dim, config.hidden_dim);
  h = g.AddOp("gelu", "act", {h});
  AppendLinear(g, rng, "head", h, config.hidden_dim, config.num_classes);

  Model model;
  model.name = "wide-mlp";
  model.paper_counterpart = "long-reduction regime of Qwen3-8B";
  model.graph = graph;
  model.num_classes = config.num_classes;
  const int64_t input_dim = config.input_dim;
  model.sample_input = [input_dim](Rng& r) {
    return std::vector<Tensor>{Tensor::Randn(Shape{1, input_dim}, r)};
  };
  return model;
}

}  // namespace tao
