// Shared multi-head self-attention builder used by the BERT-style encoder, the
// Qwen-style decoder, and the diffusion UNet's mid-block attention.

#ifndef TAO_SRC_MODELS_ATTENTION_H_
#define TAO_SRC_MODELS_ATTENTION_H_

#include <string>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace tao {

struct AttentionOptions {
  int64_t seq = 0;
  int64_t dim = 0;
  int64_t heads = 0;
  bool causal = false;
};

// Appends softmax multi-head self-attention over `x` (shape [seq, dim]) to the graph:
// per-head Q/K/V projections, scaled dot-product scores, optional causal masked_fill,
// softmax, value aggregation, and output projection. Returns the [seq, dim] output.
NodeId AppendSelfAttention(Graph& graph, Rng& rng, const std::string& prefix, NodeId x,
                           const AttentionOptions& options);

// Linear layer helper shared by the transformer builders: y = x Wᵀ + b with fan-in
// scaled Gaussian weights.
NodeId AppendLinear(Graph& graph, Rng& rng, const std::string& name, NodeId x, int64_t in,
                    int64_t out);

}  // namespace tao

#endif  // TAO_SRC_MODELS_ATTENTION_H_
