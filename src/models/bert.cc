// BERT-style post-LN transformer encoder (the BERT-large stand-in): token + position
// embeddings, N layers of [self-attention -> residual add -> LayerNorm -> GELU FFN ->
// residual add -> LayerNorm], CLS-token pooling, tanh pooler, and a classifier head
// (the DBpedia topic-classification setup of Sec. 4.5).

#include "src/models/attention.h"
#include <cmath>

#include "src/models/model_zoo.h"
#include "src/util/check.h"

namespace tao {

Model BuildBertMini(const BertConfig& config) {
  auto graph = std::make_shared<Graph>();
  Rng rng(config.seed);
  Graph& g = *graph;
  const int64_t s = config.seq_len;
  const int64_t d = config.dim;

  const NodeId token_ids = g.AddInput("token_ids", Shape{s});
  const NodeId token_table = g.AddParam(
      "embeddings.token", Tensor::Randn(Shape{config.vocab, d}, rng, 0.5f));
  const NodeId tok = g.AddOp("embedding", "embeddings.lookup", {token_table, token_ids});
  const NodeId pos_table =
      g.AddParam("embeddings.position", Tensor::Randn(Shape{s, d}, rng, 0.1f));
  NodeId h = g.AddOp("add", "embeddings.sum", {tok, pos_table});
  {
    const NodeId w = g.AddParam("embeddings.ln.w", Tensor::Full(Shape{d}, 1.0f));
    const NodeId b = g.AddParam("embeddings.ln.b", Tensor::Zeros(Shape{d}));
    Attrs ln;
    ln.Set("eps", 1e-5);
    h = g.AddOp("layer_norm", "embeddings.ln", {h, w, b}, ln);
  }

  for (int64_t layer = 0; layer < config.layers; ++layer) {
    const std::string p = "layer" + std::to_string(layer);
    AttentionOptions attn_opts;
    attn_opts.seq = s;
    attn_opts.dim = d;
    attn_opts.heads = config.heads;
    attn_opts.causal = false;
    const NodeId attn = AppendSelfAttention(g, rng, p + ".attn", h, attn_opts);
    NodeId res = g.AddOp("add", p + ".attn.residual", {h, attn});
    {
      const NodeId w = g.AddParam(p + ".ln1.w", Tensor::Full(Shape{d}, 1.0f));
      const NodeId b = g.AddParam(p + ".ln1.b", Tensor::Zeros(Shape{d}));
      Attrs ln;
      ln.Set("eps", 1e-5);
      res = g.AddOp("layer_norm", p + ".ln1", {res, w, b}, ln);
    }
    NodeId ffn = AppendLinear(g, rng, p + ".ffn.fc1", res, d, config.ffn_dim);
    ffn = g.AddOp("gelu", p + ".ffn.gelu", {ffn});
    ffn = AppendLinear(g, rng, p + ".ffn.fc2", ffn, config.ffn_dim, d);
    NodeId out = g.AddOp("add", p + ".ffn.residual", {res, ffn});
    {
      const NodeId w = g.AddParam(p + ".ln2.w", Tensor::Full(Shape{d}, 1.0f));
      const NodeId b = g.AddParam(p + ".ln2.b", Tensor::Zeros(Shape{d}));
      Attrs ln;
      ln.Set("eps", 1e-5);
      out = g.AddOp("layer_norm", p + ".ln2", {out, w, b}, ln);
    }
    h = out;
  }

  // CLS pooling: first token -> tanh pooler -> classifier.
  Attrs cls;
  cls.Set("axis", static_cast<int64_t>(0));
  cls.Set("start", static_cast<int64_t>(0));
  cls.Set("end", static_cast<int64_t>(1));
  NodeId pooled = g.AddOp("slice", "pooler.cls", {h}, cls);
  pooled = AppendLinear(g, rng, "pooler.dense", pooled, d, d);
  pooled = g.AddOp("tanh", "pooler.tanh", {pooled});
  AppendLinear(g, rng, "classifier", pooled, d, config.num_classes);

  Model model;
  model.name = "bert-mini";
  model.paper_counterpart = "BERT-large";
  model.graph = graph;
  model.num_classes = config.num_classes;
  const int64_t vocab = config.vocab;
  const int64_t seq = s;
  model.sample_input = [vocab, seq](Rng& r) {
    Tensor ids = Tensor::Zeros(Shape{seq});
    auto iv = ids.mutable_values();
    for (int64_t i = 0; i < seq; ++i) {
      iv[static_cast<size_t>(i)] = static_cast<float>(r.NextBounded(static_cast<uint64_t>(vocab)));
    }
    return std::vector<Tensor>{ids};
  };
  return model;
}

}  // namespace tao
