// Qwen-style decoder-only LLM (the Qwen3-8B stand-in): token + learned position
// embeddings, N pre-norm decoder layers of [RMSNorm -> causal self-attention ->
// residual -> RMSNorm -> SwiGLU MLP (silu(gate) * up -> down) -> residual], a final
// RMSNorm, and an LM head producing next-token logits for the last position (the C4
// next-token-prediction setup of Sec. 4.5).

#include "src/models/attention.h"
#include <cmath>

#include "src/models/model_zoo.h"
#include "src/util/check.h"

namespace tao {

Model BuildQwenMini(const QwenConfig& config) {
  auto graph = std::make_shared<Graph>();
  Rng rng(config.seed);
  Graph& g = *graph;
  const int64_t s = config.seq_len;
  const int64_t d = config.dim;

  const NodeId token_ids = g.AddInput("token_ids", Shape{s});
  const NodeId token_table =
      g.AddParam("embed_tokens", Tensor::Randn(Shape{config.vocab, d}, rng, 0.5f));
  const NodeId tok = g.AddOp("embedding", "embed.lookup", {token_table, token_ids});
  const NodeId pos_table = g.AddParam("embed_positions", Tensor::Randn(Shape{s, d}, rng, 0.1f));
  NodeId h = g.AddOp("add", "embed.sum", {tok, pos_table});

  auto rms = [&](const std::string& name, NodeId x) -> NodeId {
    const NodeId w = g.AddParam(name + ".w", Tensor::Full(Shape{d}, 1.0f));
    Attrs attrs;
    attrs.Set("eps", 1e-6);
    return g.AddOp("rms_norm", name, {x, w}, attrs);
  };

  for (int64_t layer = 0; layer < config.layers; ++layer) {
    const std::string p = "layer" + std::to_string(layer);
    // Pre-norm attention block.
    const NodeId normed = rms(p + ".input_norm", h);
    AttentionOptions attn_opts;
    attn_opts.seq = s;
    attn_opts.dim = d;
    attn_opts.heads = config.heads;
    attn_opts.causal = true;
    const NodeId attn = AppendSelfAttention(g, rng, p + ".attn", normed, attn_opts);
    h = g.AddOp("add", p + ".attn.residual", {h, attn});

    // Pre-norm SwiGLU MLP: down( silu(gate(x)) * up(x) ).
    const NodeId normed2 = rms(p + ".post_attn_norm", h);
    const NodeId gate = AppendLinear(g, rng, p + ".mlp.gate", normed2, d, config.ffn_dim);
    const NodeId gate_act = g.AddOp("silu", p + ".mlp.silu", {gate});
    const NodeId up = AppendLinear(g, rng, p + ".mlp.up", normed2, d, config.ffn_dim);
    const NodeId gated = g.AddOp("mul", p + ".mlp.gated", {gate_act, up});
    const NodeId down = AppendLinear(g, rng, p + ".mlp.down", gated, config.ffn_dim, d);
    h = g.AddOp("add", p + ".mlp.residual", {h, down});
  }

  h = rms("final_norm", h);
  // Next-token logits: last sequence position through the LM head.
  Attrs last;
  last.Set("axis", static_cast<int64_t>(0));
  last.Set("start", s - 1);
  last.Set("end", s);
  const NodeId last_tok = g.AddOp("slice", "last_token", {h}, last);
  AppendLinear(g, rng, "lm_head", last_tok, d, config.vocab);

  Model model;
  model.name = "qwen-mini";
  model.paper_counterpart = "Qwen3-8B";
  model.graph = graph;
  model.num_classes = config.vocab;
  const int64_t vocab = config.vocab;
  const int64_t seq = s;
  model.sample_input = [vocab, seq](Rng& r) {
    Tensor ids = Tensor::Zeros(Shape{seq});
    auto iv = ids.mutable_values();
    for (int64_t i = 0; i < seq; ++i) {
      iv[static_cast<size_t>(i)] = static_cast<float>(r.NextBounded(static_cast<uint64_t>(vocab)));
    }
    return std::vector<Tensor>{ids};
  };
  return model;
}

}  // namespace tao
