// Model zoo: structurally faithful scaled-down versions of the paper's four workloads
// (ResNet-152, BERT-large, Qwen3-8B, Stable Diffusion v1-5), built directly on the
// graph IR with seeded random weights.
//
// Scaling note (see DESIGN.md): every experiment in the paper measures properties of
// operator *types* and graph *shape* — per-operator error percentiles, dispute
// localization depth, attack headroom — none of which require billions of parameters.
// The minis keep the exact block structure (bottleneck residuals + BatchNorm for the
// CNN; post-LN softmax attention + GELU FFN for the encoder; RMSNorm + causal
// attention + SwiGLU for the decoder LLM; GroupNorm/SiLU UNet with mid-attention and
// skip concats for diffusion) at widths that run on one CPU core.

#ifndef TAO_SRC_MODELS_MODEL_ZOO_H_
#define TAO_SRC_MODELS_MODEL_ZOO_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace tao {

struct Model {
  std::string name;
  // Paper model this mini stands in for.
  std::string paper_counterpart;
  std::shared_ptr<Graph> graph;
  // Draws a fresh model input (e.g. a synthetic image or token-id sequence).
  std::function<std::vector<Tensor>(Rng&)> sample_input;
  // Number of output classes / vocabulary entries (for attack targets); 0 for
  // non-classifying models (diffusion).
  int64_t num_classes = 0;
};

struct ResNetConfig {
  int64_t image_size = 32;
  int64_t stem_channels = 8;
  std::vector<int64_t> blocks_per_stage = {2, 2, 2};
  int64_t num_classes = 16;
  uint64_t seed = 0xbeef0001;
};

struct BertConfig {
  int64_t vocab = 512;
  int64_t seq_len = 24;
  int64_t dim = 48;
  int64_t heads = 4;
  int64_t ffn_dim = 96;
  int64_t layers = 4;
  int64_t num_classes = 16;
  uint64_t seed = 0xbeef0002;
};

struct QwenConfig {
  int64_t vocab = 512;
  int64_t seq_len = 24;
  int64_t dim = 48;
  int64_t heads = 4;
  int64_t ffn_dim = 128;
  int64_t layers = 4;
  uint64_t seed = 0xbeef0003;
};

struct DiffusionConfig {
  int64_t latent_size = 16;
  int64_t latent_channels = 4;
  int64_t base_channels = 8;
  int64_t groups = 4;
  uint64_t seed = 0xbeef0004;
};

// Long-reduction-regime study model (see wide_mlp.cc): restores the k ~ 4096 inner
// products of paper-scale LLMs at tractable cost, used by the Table 2 sensitivity
// study of deterministic vs probabilistic leaf bounds.
struct WideMlpConfig {
  int64_t input_dim = 16384;
  int64_t hidden_dim = 256;
  int64_t num_classes = 256;
  uint64_t seed = 0xbeef0005;
};

Model BuildResNetMini(const ResNetConfig& config = {});
Model BuildBertMini(const BertConfig& config = {});
Model BuildQwenMini(const QwenConfig& config = {});
Model BuildDiffusionMini(const DiffusionConfig& config = {});
Model BuildWideMlp(const WideMlpConfig& config = {});

// All four models with default configurations, in the paper's evaluation order.
std::vector<Model> BuildAllModels();

// The three classification-capable models used in the attack study (Table 2).
std::vector<Model> BuildAttackModels();

}  // namespace tao

#endif  // TAO_SRC_MODELS_MODEL_ZOO_H_
