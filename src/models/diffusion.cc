// Diffusion UNet (the Stable Diffusion v1-5 stand-in): latent-space UNet with
// GroupNorm/SiLU residual blocks, a strided-conv downsampling path, a mid block with
// spatial self-attention, and a nearest-upsample + skip-concat decoding path emitting
// a predicted-noise tensor of the input latent's shape.

#include <cmath>

#include "src/models/attention.h"
#include "src/models/model_zoo.h"
#include "src/util/check.h"

namespace tao {
namespace {

struct UnetBuilder {
  Graph& g;
  Rng& rng;
  int64_t groups;

  NodeId Conv(const std::string& name, NodeId x, int64_t cin, int64_t cout, int64_t k,
              int64_t stride, int64_t padding) {
    const float scale = 1.0f / std::sqrt(static_cast<float>(cin * k * k));
    const NodeId w = g.AddParam(name + ".w", Tensor::Randn(Shape{cout, cin, k, k}, rng, scale));
    const NodeId b = g.AddParam(name + ".b", Tensor::Zeros(Shape{cout}));
    Attrs attrs;
    attrs.Set("stride", stride);
    attrs.Set("padding", padding);
    return g.AddOp("conv2d", name, {x, w, b}, attrs);
  }

  NodeId Gn(const std::string& name, NodeId x, int64_t channels) {
    const NodeId w = g.AddParam(name + ".w", Tensor::Full(Shape{channels}, 1.0f));
    const NodeId b = g.AddParam(name + ".b", Tensor::Zeros(Shape{channels}));
    Attrs attrs;
    attrs.Set("groups", std::min(groups, channels));
    attrs.Set("eps", 1e-5);
    return g.AddOp("group_norm", name, {x, w, b}, attrs);
  }

  NodeId ResBlock(const std::string& name, NodeId x, int64_t cin, int64_t cout) {
    NodeId h = Gn(name + ".norm1", x, cin);
    h = g.AddOp("silu", name + ".silu1", {h});
    h = Conv(name + ".conv1", h, cin, cout, 3, 1, 1);
    h = Gn(name + ".norm2", h, cout);
    h = g.AddOp("silu", name + ".silu2", {h});
    h = Conv(name + ".conv2", h, cout, cout, 3, 1, 1);
    NodeId shortcut = x;
    if (cin != cout) {
      shortcut = Conv(name + ".skip", x, cin, cout, 1, 1, 0);
    }
    return g.AddOp("add", name + ".residual", {h, shortcut});
  }

  // Spatial self-attention: [1, C, H, W] -> tokens [H*W, C] -> MHA -> back, residual.
  NodeId SpatialAttention(const std::string& name, NodeId x, int64_t channels, int64_t h,
                          int64_t w) {
    NodeId normed = Gn(name + ".norm", x, channels);
    Attrs rs;
    rs.Set("shape", std::vector<int64_t>{channels, h * w});
    const NodeId flat = g.AddOp("reshape", name + ".flatten", {normed}, rs);
    Attrs tp;
    tp.Set("perm", std::vector<int64_t>{1, 0});
    const NodeId tokens = g.AddOp("transpose", name + ".to_tokens", {flat}, tp);
    AttentionOptions opts;
    opts.seq = h * w;
    opts.dim = channels;
    opts.heads = 1;
    opts.causal = false;
    const NodeId attended = AppendSelfAttention(g, rng, name + ".attn", tokens, opts);
    Attrs tp_back;
    tp_back.Set("perm", std::vector<int64_t>{1, 0});
    const NodeId back = g.AddOp("transpose", name + ".from_tokens", {attended}, tp_back);
    Attrs rs_back;
    rs_back.Set("shape", std::vector<int64_t>{1, channels, h, w});
    const NodeId spatial = g.AddOp("reshape", name + ".unflatten", {back}, rs_back);
    return g.AddOp("add", name + ".residual", {x, spatial});
  }
};

}  // namespace

Model BuildDiffusionMini(const DiffusionConfig& config) {
  auto graph = std::make_shared<Graph>();
  Rng rng(config.seed);
  UnetBuilder b{*graph, rng, config.groups};
  const int64_t size = config.latent_size;
  const int64_t c = config.base_channels;

  const NodeId latent =
      graph->AddInput("latent", Shape{1, config.latent_channels, size, size});

  // Encoder.
  NodeId h = b.Conv("in_conv", latent, config.latent_channels, c, 3, 1, 1);
  const NodeId skip_full = b.ResBlock("down0.res", h, c, c);
  NodeId down = b.Conv("down0.downsample", skip_full, c, 2 * c, 3, 2, 1);  // size/2
  const NodeId skip_half = b.ResBlock("down1.res", down, 2 * c, 2 * c);

  // Mid block with attention at the coarsest resolution.
  NodeId mid = b.ResBlock("mid.res1", skip_half, 2 * c, 2 * c);
  mid = b.SpatialAttention("mid", mid, 2 * c, size / 2, size / 2);
  mid = b.ResBlock("mid.res2", mid, 2 * c, 2 * c);

  // Decoder: skip-concat at half resolution, upsample, skip-concat at full resolution.
  Attrs cat;
  cat.Set("axis", static_cast<int64_t>(1));
  NodeId up = graph->AddOp("concat", "up1.skip_cat", {mid, skip_half}, cat);
  up = b.ResBlock("up1.res", up, 4 * c, 2 * c);
  Attrs interp;
  interp.Set("scale", static_cast<int64_t>(2));
  up = graph->AddOp("interpolate", "up1.upsample", {up}, interp);
  up = graph->AddOp("concat", "up0.skip_cat", {up, skip_full}, cat);
  up = b.ResBlock("up0.res", up, 3 * c, c);

  // Output head: predicted noise with the latent's shape.
  NodeId out = b.Gn("out.norm", up, c);
  out = graph->AddOp("silu", "out.silu", {out});
  b.Conv("out.conv", out, c, config.latent_channels, 3, 1, 1);

  Model model;
  model.name = "diffusion-mini";
  model.paper_counterpart = "Stable Diffusion v1-5";
  model.graph = graph;
  model.num_classes = 0;
  const int64_t latent_channels = config.latent_channels;
  model.sample_input = [latent_channels, size](Rng& r) {
    return std::vector<Tensor>{Tensor::Randn(Shape{1, latent_channels, size, size}, r)};
  };
  return model;
}

std::vector<Model> BuildAllModels() {
  return {BuildResNetMini(), BuildBertMini(), BuildQwenMini(), BuildDiffusionMini()};
}

std::vector<Model> BuildAttackModels() {
  return {BuildResNetMini(), BuildBertMini(), BuildQwenMini()};
}

}  // namespace tao
