// ResNet-style bottleneck CNN (the ResNet-152 stand-in): conv stem, three stages of
// pre-activation-free bottleneck blocks (conv1x1-bn-relu, conv3x3-bn-relu, conv1x1-bn,
// residual add, relu) with strided downsampling and projection shortcuts, global
// average pooling, and a linear classifier head.

#include <cmath>

#include "src/models/model_zoo.h"
#include "src/util/check.h"

namespace tao {
namespace {

struct ResNetBuilder {
  Graph& g;
  Rng& rng;
  int block_counter = 0;

  NodeId Conv(const std::string& name, NodeId x, int64_t cin, int64_t cout, int64_t k,
              int64_t stride, int64_t padding) {
    const float scale = 1.0f / std::sqrt(static_cast<float>(cin * k * k));
    const NodeId w = g.AddParam(name + ".w", Tensor::Randn(Shape{cout, cin, k, k}, rng, scale));
    const NodeId b = g.AddParam(name + ".b", Tensor::Zeros(Shape{cout}));
    Attrs attrs;
    attrs.Set("stride", stride);
    attrs.Set("padding", padding);
    return g.AddOp("conv2d", name, {x, w, b}, attrs);
  }

  NodeId Bn(const std::string& name, NodeId x, int64_t channels) {
    const NodeId w = g.AddParam(name + ".w", Tensor::Full(Shape{channels}, 1.0f));
    const NodeId b = g.AddParam(name + ".b", Tensor::Zeros(Shape{channels}));
    const NodeId mean = g.AddParam(name + ".mean", Tensor::Randn(Shape{channels}, rng, 0.1f));
    const NodeId var = g.AddParam(name + ".var", Tensor::Uniform(Shape{channels}, rng, 0.5f, 1.5f));
    Attrs attrs;
    attrs.Set("eps", 1e-5);
    return g.AddOp("batch_norm", name, {x, w, b, mean, var}, attrs);
  }

  // Bottleneck: 1x1 reduce -> 3x3 -> 1x1 expand, residual add, relu.
  NodeId Bottleneck(NodeId x, int64_t cin, int64_t cout, int64_t stride) {
    const std::string p = "block" + std::to_string(block_counter++);
    const int64_t mid = cout / 4;
    NodeId h = Conv(p + ".conv1", x, cin, mid, 1, 1, 0);
    h = Bn(p + ".bn1", h, mid);
    h = g.AddOp("relu", p + ".relu1", {h});
    h = Conv(p + ".conv2", h, mid, mid, 3, stride, 1);
    h = Bn(p + ".bn2", h, mid);
    h = g.AddOp("relu", p + ".relu2", {h});
    h = Conv(p + ".conv3", h, mid, cout, 1, 1, 0);
    h = Bn(p + ".bn3", h, cout);

    NodeId shortcut = x;
    if (cin != cout || stride != 1) {
      shortcut = Conv(p + ".proj", x, cin, cout, 1, stride, 0);
      shortcut = Bn(p + ".proj_bn", shortcut, cout);
    }
    const NodeId sum = g.AddOp("add", p + ".residual", {h, shortcut});
    return g.AddOp("relu", p + ".relu3", {sum});
  }
};

}  // namespace

Model BuildResNetMini(const ResNetConfig& config) {
  auto graph = std::make_shared<Graph>();
  Rng rng(config.seed);
  ResNetBuilder b{*graph, rng};

  const NodeId image =
      graph->AddInput("image", Shape{1, 3, config.image_size, config.image_size});
  NodeId h = b.Conv("stem.conv", image, 3, config.stem_channels, 3, 1, 1);
  h = b.Bn("stem.bn", h, config.stem_channels);
  h = graph->AddOp("relu", "stem.relu", {h});

  int64_t channels = config.stem_channels;
  for (size_t stage = 0; stage < config.blocks_per_stage.size(); ++stage) {
    const int64_t out_channels = config.stem_channels * (1 << (stage + 1));
    for (int64_t block = 0; block < config.blocks_per_stage[stage]; ++block) {
      const int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      h = b.Bottleneck(h, channels, out_channels, stride);
      channels = out_channels;
    }
  }

  Attrs gap;
  gap.Set("out_h", static_cast<int64_t>(1));
  gap.Set("out_w", static_cast<int64_t>(1));
  h = graph->AddOp("adaptive_avg_pool2d", "gap", {h}, gap);
  Attrs fl;
  fl.Set("start_dim", static_cast<int64_t>(1));
  h = graph->AddOp("flatten", "flatten", {h}, fl);
  const float head_scale = 1.0f / std::sqrt(static_cast<float>(channels));
  const NodeId head_w = graph->AddParam(
      "head.w", Tensor::Randn(Shape{config.num_classes, channels}, rng, head_scale));
  const NodeId head_b = graph->AddParam("head.b", Tensor::Zeros(Shape{config.num_classes}));
  graph->AddOp("linear", "head", {h, head_w, head_b});

  Model model;
  model.name = "resnet-mini";
  model.paper_counterpart = "ResNet-152";
  model.graph = graph;
  model.num_classes = config.num_classes;
  const int64_t image_size = config.image_size;
  model.sample_input = [image_size](Rng& r) {
    return std::vector<Tensor>{Tensor::Randn(Shape{1, 3, image_size, image_size}, r)};
  };
  return model;
}

}  // namespace tao
