// Deterministic pseudo-random number generation.
//
// The entire reproduction is seeded: weights, inputs, committee sampling, and attack
// initialization all draw from Rng instances constructed with explicit seeds, so every
// test, example, and bench is bit-reproducible run to run. The generator is
// xoshiro256++ seeded via splitmix64, which is fast, has a 2^256-1 period, and avoids
// std::mt19937's platform-dependent distribution implementations (we implement our own
// uniform/normal transforms for cross-platform determinism).

#ifndef TAO_SRC_UTIL_RNG_H_
#define TAO_SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tao {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform bits.
  uint64_t NextU64();
  // Uniform in [0, bound).
  uint64_t NextBounded(uint64_t bound);
  // Uniform in [0, 1).
  double NextDouble();
  float NextFloat();
  // Uniform in [lo, hi).
  double NextUniform(double lo, double hi);
  // Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  // Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  // Derives an independent child generator; used so that e.g. per-operator attack
  // perturbation seeds do not perturb the main stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace tao

#endif  // TAO_SRC_UTIL_RNG_H_
