// Descriptive statistics used by calibration, the stability diagnostics of Appendix B,
// and the bench harnesses (percentiles, boxplot five-number summaries, running medians).

#ifndef TAO_SRC_UTIL_STATS_H_
#define TAO_SRC_UTIL_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace tao {

// Linear-interpolated percentile of `values` at p in [0, 100], matching numpy's default
// ("linear") method, which is what the paper's calibration pipeline uses. `values` need
// not be sorted; an internal copy is sorted. Empty input is a programming error.
double Percentile(std::span<const double> values, double p);

// Percentiles at many probes with a single sort.
std::vector<double> Percentiles(std::span<const double> values, std::span<const double> ps);

double Mean(std::span<const double> values);
double Median(std::span<const double> values);
// Sample standard deviation (n-1 denominator); returns 0 for n < 2.
double StdDev(std::span<const double> values);
double MinValue(std::span<const double> values);
double MaxValue(std::span<const double> values);

// Five-number summary for boxplots (Fig. 5): min, q1, median, q3, max plus mean.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  size_t n = 0;
};

BoxStats ComputeBoxStats(std::span<const double> values);

// Running median sequence: element k is median of values[0..k] (Appendix B, Eq. 37).
std::vector<double> RunningMedians(std::span<const double> values);

// Median of each length-`window` sliding window ending at k = window-1 .. n-1 (Eq. 42).
std::vector<double> RollingMedians(std::span<const double> values, size_t window);

// Symmetric relative change delta(a, b) = 2|a-b| / (|a|+|b|+eps)  (Appendix B, Eq. 38).
double SymmetricRelChange(double a, double b, double eps = 1e-12);

}  // namespace tao

#endif  // TAO_SRC_UTIL_STATS_H_
