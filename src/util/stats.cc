#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace tao {
namespace {

double PercentileOfSorted(std::span<const double> sorted, double p) {
  TAO_CHECK(!sorted.empty());
  TAO_CHECK(p >= 0.0 && p <= 100.0) << "p=" << p;
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double Percentile(std::span<const double> values, double p) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return PercentileOfSorted(sorted, p);
}

std::vector<double> Percentiles(std::span<const double> values, std::span<const double> ps) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (const double p : ps) {
    out.push_back(PercentileOfSorted(sorted, p));
  }
  return out;
}

double Mean(std::span<const double> values) {
  TAO_CHECK(!values.empty());
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double Median(std::span<const double> values) { return Percentile(values, 50.0); }

double StdDev(std::span<const double> values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mu = Mean(values);
  double acc = 0.0;
  for (const double v : values) {
    acc += (v - mu) * (v - mu);
  }
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double MinValue(std::span<const double> values) {
  TAO_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double MaxValue(std::span<const double> values) {
  TAO_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

BoxStats ComputeBoxStats(std::span<const double> values) {
  BoxStats stats;
  if (values.empty()) {
    return stats;
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  stats.min = sorted.front();
  stats.max = sorted.back();
  stats.q1 = PercentileOfSorted(sorted, 25.0);
  stats.median = PercentileOfSorted(sorted, 50.0);
  stats.q3 = PercentileOfSorted(sorted, 75.0);
  stats.mean = Mean(values);
  stats.n = values.size();
  return stats;
}

std::vector<double> RunningMedians(std::span<const double> values) {
  std::vector<double> medians;
  medians.reserve(values.size());
  std::vector<double> sorted;
  sorted.reserve(values.size());
  for (const double v : values) {
    sorted.insert(std::upper_bound(sorted.begin(), sorted.end(), v), v);
    const size_t n = sorted.size();
    if (n % 2 == 1) {
      medians.push_back(sorted[n / 2]);
    } else {
      medians.push_back(0.5 * (sorted[n / 2 - 1] + sorted[n / 2]));
    }
  }
  return medians;
}

std::vector<double> RollingMedians(std::span<const double> values, size_t window) {
  TAO_CHECK_GT(window, 0u);
  std::vector<double> out;
  if (values.size() < window) {
    return out;
  }
  out.reserve(values.size() - window + 1);
  std::vector<double> buf(window);
  for (size_t end = window; end <= values.size(); ++end) {
    std::copy(values.begin() + (end - window), values.begin() + end, buf.begin());
    std::sort(buf.begin(), buf.end());
    if (window % 2 == 1) {
      out.push_back(buf[window / 2]);
    } else {
      out.push_back(0.5 * (buf[window / 2 - 1] + buf[window / 2]));
    }
  }
  return out;
}

double SymmetricRelChange(double a, double b, double eps) {
  return 2.0 * std::abs(a - b) / (std::abs(a) + std::abs(b) + eps);
}

}  // namespace tao
