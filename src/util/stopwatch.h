// Wall-clock stopwatch for dispute-game substep timing (Fig. 8) and overhead benches.

#ifndef TAO_SRC_UTIL_STOPWATCH_H_
#define TAO_SRC_UTIL_STOPWATCH_H_

#include <chrono>

namespace tao {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tao

#endif  // TAO_SRC_UTIL_STOPWATCH_H_
