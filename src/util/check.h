// Lightweight runtime-check macros used across the TAO library.
//
// TAO_CHECK(cond) aborts with a diagnostic when `cond` is false; it is active in all
// build types because the library's invariants (shape agreement, protocol state
// transitions, Merkle proof integrity) are cheap to test relative to tensor math and
// violations indicate logic errors, not recoverable conditions.

#ifndef TAO_SRC_UTIL_CHECK_H_
#define TAO_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tao {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "TAO_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

namespace internal {

// Stream-capture helper so call sites can write TAO_CHECK(x) << "context " << v;
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

// Consumes the builder in the passing case so the streaming operators are never evaluated.
// Two overloads: the bare macro expansion produces a prvalue builder, while streamed
// expressions (TAO_CHECK(x) << "msg") produce an lvalue reference from operator<<.
struct CheckVoidify {
  void operator&(CheckMessageBuilder&) const {}
  void operator&(CheckMessageBuilder&&) const {}
};

}  // namespace internal
}  // namespace tao

#define TAO_CHECK(cond)                     \
  (cond) ? (void)0                          \
         : ::tao::internal::CheckVoidify{} & \
               ::tao::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define TAO_CHECK_EQ(a, b) TAO_CHECK((a) == (b)) << "lhs=" << (a) << " rhs=" << (b)
#define TAO_CHECK_NE(a, b) TAO_CHECK((a) != (b)) << "lhs=" << (a) << " rhs=" << (b)
#define TAO_CHECK_LT(a, b) TAO_CHECK((a) < (b)) << "lhs=" << (a) << " rhs=" << (b)
#define TAO_CHECK_LE(a, b) TAO_CHECK((a) <= (b)) << "lhs=" << (a) << " rhs=" << (b)
#define TAO_CHECK_GT(a, b) TAO_CHECK((a) > (b)) << "lhs=" << (a) << " rhs=" << (b)
#define TAO_CHECK_GE(a, b) TAO_CHECK((a) >= (b)) << "lhs=" << (a) << " rhs=" << (b)

#endif  // TAO_SRC_UTIL_CHECK_H_
