// Fixed-width ASCII table printer used by the bench harnesses to emit paper-style
// tables (Table 1-3) and figure series (Fig. 3-8) to stdout.

#ifndef TAO_SRC_UTIL_TABLE_H_
#define TAO_SRC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace tao {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Renders with column widths fitted to content, pipe separators, and a header rule.
  std::string Render() const;
  void Print() const;

  // Formatting helpers for numeric cells.
  static std::string Fixed(double v, int precision);
  static std::string Scientific(double v, int precision);
  static std::string Pct(double v, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tao

#endif  // TAO_SRC_UTIL_TABLE_H_
