#include "src/util/table.h"

#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace tao {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TAO_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  TAO_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

std::string TablePrinter::Fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Scientific(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string TablePrinter::Pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

}  // namespace tao
