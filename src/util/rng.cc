#include "src/util/rng.h"

#include <cmath>

#include "src/util/check.h"

namespace tao {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  TAO_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

float Rng::NextFloat() { return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f; }

double Rng::NextUniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from zero so log() is finite.
  double u1 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  for (size_t i = n; i > 1; --i) {
    const size_t j = NextBounded(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace tao
