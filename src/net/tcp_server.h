// TCP acceptor over a Dispatcher (docs/net.md).
//
// One acceptor thread polls the listen socket (poll()-gated so shutdown never
// parks in accept) and hands every accepted fd — made non-blocking, TCP_NODELAY —
// to the dispatcher with a fresh ConnectionHandler from the factory. The
// dispatcher may be OWNED (default: this server spins up its own loop) or SHARED
// (several servers — e.g. the RPC gateway and the monitoring HTTP endpoint —
// multiplex their connections onto one loop thread).
//
// The destructor stops accepting, closes every connection this server accepted,
// and Syncs the dispatcher, so by the time it returns no handler callback created
// by this server can still be running — the owner's state may then be torn down.

#ifndef TAO_SRC_NET_TCP_SERVER_H_
#define TAO_SRC_NET_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "src/net/dispatcher.h"

namespace tao {

struct TcpServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read the bound port from the server
  int backlog = 64;
  // ResourceTracker role of the acceptor thread.
  std::string accept_role = "net_accept";
};

class TcpServer {
 public:
  using HandlerFactory = std::function<std::unique_ptr<ConnectionHandler>()>;

  // Binds and starts accepting immediately; throws std::runtime_error when the
  // socket cannot be bound. A null `dispatcher` makes the server own one (with
  // the accept role as its loop role).
  TcpServer(TcpServerOptions options, HandlerFactory factory,
            std::shared_ptr<Dispatcher> dispatcher = nullptr);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  int port() const { return port_; }
  Dispatcher& dispatcher() { return *dispatcher_; }
  size_t connections_accepted() const { return accepted_.load(); }

 private:
  // Wraps the factory handler so the server can track its own live connections
  // (a shared dispatcher also carries other servers' connections).
  class TrackingHandler;

  void AcceptLoop();
  void Untrack(uint64_t connection_id);

  const TcpServerOptions options_;
  const HandlerFactory factory_;
  std::shared_ptr<Dispatcher> dispatcher_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> accepted_{0};

  std::mutex mu_;
  std::unordered_map<uint64_t, std::weak_ptr<Connection>> live_;

  std::thread accept_thread_;
};

}  // namespace tao

#endif  // TAO_SRC_NET_TCP_SERVER_H_
