#include "src/net/client_channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "src/util/check.h"

namespace tao {
namespace {

constexpr int kReadPollTimeoutMs = 100;

// Blocking send of the whole buffer; false on any error.
bool SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

ClientChannel::ClientChannel(const std::string& host, int port,
                             uint64_t session_id,
                             std::chrono::milliseconds handshake_timeout) {
  TAO_CHECK(session_id != 0) << "session id 0 is reserved";
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return;  // broken_ stays true
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Synchronous handshake: Hello out, HelloAck (and nothing else) back.
  std::vector<uint8_t> hello;
  AppendWireFrame(hello, MessageType::kHello, 0, EncodeHello({session_id}));
  if (!SendAll(fd_, hello.data(), hello.size())) {
    return;
  }
  std::vector<uint8_t> buffer;
  const auto deadline = std::chrono::steady_clock::now() + handshake_timeout;
  while (true) {
    size_t offset = 0;
    WireFrame frame;
    const WireDecodeStatus status = DecodeWireFrame(buffer, offset, frame);
    if (status == WireDecodeStatus::kOk) {
      if (frame.type != MessageType::kHelloAck ||
          !DecodeHelloAck(frame.payload, hello_ack_)) {
        return;
      }
      buffer.erase(buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(offset));
      break;
    }
    if (status != WireDecodeStatus::kTorn) {
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return;
    }
    const int wait_ms = static_cast<int>(std::min<int64_t>(
        kReadPollTimeoutMs,
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count() + 1));
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, wait_ms) < 0) {
      return;
    }
    uint8_t chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      buffer.insert(buffer.end(), chunk, chunk + n);
    } else if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
      return;
    }
  }
  broken_.store(false);
  // Any bytes past the HelloAck (an eager server push) belong to the reader.
  reader_ = std::thread([this, leftover = std::move(buffer)]() mutable {
    ReaderLoop(std::move(leftover));
  });
}

ClientChannel::~ClientChannel() {
  stop_.store(true);
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
  if (reader_.joinable()) {
    reader_.join();
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void ClientChannel::ReaderLoop(std::vector<uint8_t> buffer) {
  bool corrupt = false;
  while (!stop_.load() && !corrupt) {
    // Drain every complete frame currently buffered (the handshake may have left
    // some behind), then block for more bytes.
    size_t offset = 0;
    bool routed = false;
    while (!corrupt) {
      WireFrame frame;
      const WireDecodeStatus status = DecodeWireFrame(buffer, offset, frame);
      if (status == WireDecodeStatus::kTorn) {
        break;
      }
      if (status != WireDecodeStatus::kOk) {
        corrupt = true;
        break;
      }
      std::lock_guard<std::mutex> lock(mu_);
      switch (frame.type) {
        case MessageType::kSubmitAck: {
          WireSubmitAck ack;
          if (DecodeSubmitAck(frame.payload, ack)) {
            acks_[frame.request_id] = ack;
            routed = true;
          } else {
            corrupt = true;
          }
          break;
        }
        case MessageType::kVerdict: {
          WireVerdict verdict;
          if (DecodeVerdict(frame.payload, verdict)) {
            verdicts_[frame.request_id] = verdict;
            routed = true;
          } else {
            corrupt = true;
          }
          break;
        }
        case MessageType::kPong:
          pongs_[frame.request_id] = true;
          routed = true;
          break;
        default:
          corrupt = true;  // the server never sends anything else
          break;
      }
    }
    buffer.erase(buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(offset));
    if (routed) {
      cv_.notify_all();
    }
    if (corrupt) {
      break;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kReadPollTimeoutMs);
    if (ready < 0) {
      break;
    }
    if (ready == 0) {
      continue;
    }
    uint8_t chunk[16 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;  // peer closed or Shutdown() tore the socket down
    }
    buffer.insert(buffer.end(), chunk, chunk + n);
  }
  broken_.store(true);
  cv_.notify_all();
}

bool ClientChannel::SendFrame(MessageType type, uint64_t request_id,
                              std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kWireHeaderBytes + payload.size());
  AppendWireFrame(frame, type, request_id, payload);
  std::lock_guard<std::mutex> lock(send_mu_);
  if (broken_.load()) {
    return false;
  }
  if (!SendAll(fd_, frame.data(), frame.size())) {
    broken_.store(true);
    cv_.notify_all();
    return false;
  }
  return true;
}

bool ClientChannel::SendSubmit(uint64_t request_id,
                               std::span<const uint8_t> payload) {
  return SendFrame(MessageType::kSubmit, request_id, payload);
}

bool ClientChannel::WaitAck(uint64_t request_id, WireSubmitAck& ack,
                            std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout,
               [&] { return broken_.load() || acks_.count(request_id) > 0; });
  const auto it = acks_.find(request_id);
  if (it == acks_.end()) {
    return false;
  }
  ack = it->second;
  acks_.erase(it);
  return true;
}

bool ClientChannel::WaitVerdict(uint64_t request_id, WireVerdict& verdict,
                                std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout,
               [&] { return broken_.load() || verdicts_.count(request_id) > 0; });
  const auto it = verdicts_.find(request_id);
  if (it == verdicts_.end()) {
    return false;
  }
  verdict = it->second;
  verdicts_.erase(it);
  return true;
}

bool ClientChannel::Ping(uint64_t request_id, std::chrono::milliseconds timeout) {
  if (!SendFrame(MessageType::kPing, request_id, {})) {
    return false;
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout,
               [&] { return broken_.load() || pongs_.count(request_id) > 0; });
  return pongs_.erase(request_id) > 0;
}

void ClientChannel::SendGoodbye() {
  SendFrame(MessageType::kGoodbye, 0, {});
}

void ClientChannel::Shutdown() {
  broken_.store(true);
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
  cv_.notify_all();
}

RetriableChannel::RetriableChannel(std::string host, int port,
                                   uint64_t session_id, RetryOptions options)
    : host_(std::move(host)),
      port_(port),
      session_id_(session_id),
      options_(options),
      rng_(options.seed) {}

RetriableChannel::~RetriableChannel() {
  if (channel_ != nullptr && channel_->ok()) {
    channel_->SendGoodbye();
  }
}

void RetriableChannel::Backoff(int attempt) {
  const int64_t base = options_.base_backoff_ms;
  const int64_t capped_shift = std::min<int64_t>(attempt, 16);
  const int64_t backoff =
      std::min<int64_t>(options_.max_backoff_ms, base << capped_shift);
  // Full jitter from the seeded stream: retries desynchronize without wall-clock
  // or hardware entropy (the platform's no-std::random rule).
  const int64_t jitter = static_cast<int64_t>(
      rng_.NextBounded(static_cast<uint64_t>(backoff) + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(backoff + jitter));
}

bool RetriableChannel::EnsureConnected() {
  if (channel_ != nullptr && channel_->ok()) {
    return true;
  }
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0 || channel_ != nullptr) {
      Backoff(attempt);  // no backoff before the very first connect
    }
    channel_ = std::make_unique<ClientChannel>(host_, port_, session_id_);
    if (!channel_->ok()) {
      continue;
    }
    ++reconnects_;
    // Resubmit everything unfinished. The server's dedup window answers already-
    // admitted ids from its cache (replaying the verdict too, if it landed), so
    // this is idempotent by construction.
    for (const auto& [request_id, payload] : pending_) {
      channel_->SendSubmit(request_id, payload);
      ++resubmissions_;
    }
    return true;
  }
  return false;
}

WireSubmitAck RetriableChannel::Submit(uint64_t model_id, uint64_t submitter,
                                       const BatchClaim& claim,
                                       uint64_t* request_id_out) {
  const uint64_t request_id = next_request_id_++;
  if (request_id_out != nullptr) {
    *request_id_out = request_id;
  }
  WireSubmit submit;
  submit.model_id = model_id;
  submit.submitter = submitter;
  submit.claim = WireClaimFromBatchClaim(claim);
  pending_[request_id] = EncodeSubmit(submit);

  WireSubmitAck ack{WireStatus::kMalformed, 0};  // placeholder: "unreachable"
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (!EnsureConnected()) {
      break;
    }
    // A duplicate of the reconnect-resubmission is possible here; the server
    // drops in-flight duplicates and answers completed ones from the cache.
    if (!channel_->SendSubmit(request_id, pending_[request_id])) {
      continue;
    }
    WireSubmitAck got;
    if (!channel_->WaitAck(request_id, got, options_.ack_timeout)) {
      continue;  // broke or timed out: reconnect + resubmit
    }
    if (IsRetriableStatus(got.status)) {
      ack = got;
      Backoff(attempt);
      continue;  // the server erased the reject, same request id re-admits
    }
    if (got.status != WireStatus::kAccepted) {
      pending_.erase(request_id);  // terminal reject: nothing to recover later
    }
    return got;
  }
  pending_.erase(request_id);
  return ack;
}

bool RetriableChannel::WaitVerdict(uint64_t request_id, WireVerdict& verdict) {
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (!EnsureConnected()) {
      return false;
    }
    if (channel_->WaitVerdict(request_id, verdict, options_.verdict_timeout)) {
      pending_.erase(request_id);
      return true;
    }
    if (channel_->ok()) {
      return false;  // a genuine timeout on a live channel: the caller's problem
    }
  }
  return false;
}

const WireHelloAck& RetriableChannel::hello_ack() const {
  TAO_CHECK(channel_ != nullptr) << "never connected";
  return channel_->hello_ack();
}

void RetriableChannel::InjectFaultForTest() {
  if (channel_ != nullptr) {
    channel_->Shutdown();
  }
}

}  // namespace tao
