#include "src/net/rpc_server.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/net/frame.h"
#include "src/observability/resource_tracker.h"
#include "src/registry/serving_gateway.h"
#include "src/util/check.h"

namespace tao {

// One client session: the unit of retry idempotency. A session survives its
// connections — a client that reconnects re-attaches by Hello'ing the same id and
// finds its dedup state (and any verdicts that landed while it was away) intact.
struct RpcServer::Session {
  explicit Session(uint64_t session_id) : id(session_id) {}

  const uint64_t id;

  std::mutex mu;
  // The session's CURRENT connection; acks and verdicts go here. Weak: a dead
  // connection must never be kept alive just because verdicts are pending.
  std::weak_ptr<Connection> connection;

  struct Entry {
    bool acked = false;           // false = the pump has it in flight
    std::vector<uint8_t> ack_frame;
    bool verdict_sent = false;
    std::vector<uint8_t> verdict_frame;
  };
  std::unordered_map<uint64_t, Entry> entries;  // request id -> completed state
  std::deque<uint64_t> completed_order;         // acked ids, oldest first
};

struct RpcServer::Core : std::enable_shared_from_this<Core> {
  Core(ServingGateway& gateway_in, ModelRegistry& registry_in,
       const RpcServerOptions& options_in)
      : gateway(gateway_in), registry(registry_in), options(options_in) {}

  ServingGateway& gateway;
  ModelRegistry& registry;
  const RpcServerOptions options;

  std::mutex sessions_mu;
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions;

  // The pump's bounded arrival queue. FIFO order here IS the accepted-submission
  // order the determinism contract is stated over.
  struct PendingSubmit {
    std::shared_ptr<Session> session;
    uint64_t request_id = 0;
    std::vector<uint8_t> payload;
  };
  std::mutex pump_mu;
  std::condition_variable pump_cv;
  std::deque<PendingSubmit> pump_queue;
  bool pump_stop = false;

  std::atomic<int64_t> frames_received{0};
  std::atomic<int64_t> submits_received{0};
  std::atomic<int64_t> submits_accepted{0};
  std::atomic<int64_t> submits_rejected{0};
  std::atomic<int64_t> submits_malformed{0};
  std::atomic<int64_t> dedup_hits{0};
  std::atomic<int64_t> verdicts_pushed{0};
  std::atomic<int64_t> protocol_errors{0};
  std::atomic<int64_t> queue_overflow_rejects{0};

  // --- loop-thread side -------------------------------------------------------

  // Handles one decoded frame. Returns false on a protocol violation (the
  // connection is then dropped — there is no in-band error channel for a peer
  // that does not speak the protocol).
  bool HandleFrame(std::shared_ptr<Session>& session, Connection& connection,
                   const WireFrame& frame);

  // --- pump-thread side -------------------------------------------------------

  void PumpLoop();
  void ProcessSubmit(const PendingSubmit& item);

  // --- shared helpers ---------------------------------------------------------

  static void SendFrame(Connection& connection, MessageType type,
                        uint64_t request_id, std::span<const uint8_t> payload) {
    std::vector<uint8_t> frame;
    frame.reserve(kWireHeaderBytes + payload.size());
    AppendWireFrame(frame, type, request_id, payload);
    connection.Send(frame);
  }

  // Sends a (non-cached) reject ack to the session's current connection and
  // forgets the request id, so a retry re-attempts admission.
  void RejectSubmit(Session& session, uint64_t request_id, WireStatus status) {
    const std::vector<uint8_t> payload = EncodeSubmitAck({status, 0});
    std::shared_ptr<Connection> connection;
    {
      std::lock_guard<std::mutex> lock(session.mu);
      session.entries.erase(request_id);
      connection = session.connection.lock();
    }
    if (connection != nullptr) {
      SendFrame(*connection, MessageType::kSubmitAck, request_id, payload);
    }
  }

  // Caller holds session.mu. Evicts the oldest completed entries beyond the
  // window; an entry whose verdict has not been pushed yet is never evicted (the
  // client may still be waiting for it).
  void EvictLocked(Session& session) {
    while (session.completed_order.size() > options.dedup_window) {
      const uint64_t oldest = session.completed_order.front();
      const auto it = session.entries.find(oldest);
      if (it != session.entries.end() && !it->second.verdict_sent) {
        break;
      }
      session.entries.erase(oldest);
      session.completed_order.pop_front();
    }
  }
};

// Per-connection protocol state machine, driven by the dispatcher loop thread.
class RpcServer::Handler : public ConnectionHandler {
 public:
  explicit Handler(std::shared_ptr<Core> core) : core_(std::move(core)) {}

  void OnReadable(Connection& connection, std::vector<uint8_t>& buffer) override {
    size_t offset = 0;
    while (!connection.closed()) {
      WireFrame frame;
      const WireDecodeStatus status = DecodeWireFrame(buffer, offset, frame);
      if (status == WireDecodeStatus::kTorn) {
        break;  // incomplete frame: keep the tail, wait for more bytes
      }
      if (status != WireDecodeStatus::kOk) {
        // Corrupt stream — there is no resync point past a bad header.
        core_->protocol_errors.fetch_add(1);
        connection.Close();
        break;
      }
      core_->frames_received.fetch_add(1);
      if (!core_->HandleFrame(session_, connection, frame)) {
        core_->protocol_errors.fetch_add(1);
        connection.Close();
        break;
      }
    }
    buffer.erase(buffer.begin(),
                 buffer.begin() + static_cast<std::ptrdiff_t>(offset));
  }

 private:
  std::shared_ptr<Core> core_;
  std::shared_ptr<Session> session_;  // attached by Hello
};

bool RpcServer::Core::HandleFrame(std::shared_ptr<Session>& session,
                                  Connection& connection,
                                  const WireFrame& frame) {
  switch (frame.type) {
    case MessageType::kHello: {
      WireHello hello;
      if (!DecodeHello(frame.payload, hello)) {
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(sessions_mu);
        auto& slot = sessions[hello.session_id];
        if (slot == nullptr) {
          slot = std::make_shared<Session>(hello.session_id);
        }
        session = slot;
      }
      {
        std::lock_guard<std::mutex> lock(session->mu);
        session->connection = connection.shared_from_this();
      }
      WireHelloAck ack;
      ack.dedup_window = static_cast<uint32_t>(options.dedup_window);
      for (const ModelId id : registry.ids()) {
        if (registry.state(id) == ModelLifecycle::kServing) {
          ack.models.push_back({id, registry.model(id).name});
        }
      }
      SendFrame(connection, MessageType::kHelloAck, frame.request_id,
                EncodeHelloAck(ack));
      return true;
    }
    case MessageType::kSubmit: {
      if (session == nullptr) {
        return false;  // Submit before Hello
      }
      submits_received.fetch_add(1);
      {
        std::lock_guard<std::mutex> lock(session->mu);
        const auto it = session->entries.find(frame.request_id);
        if (it != session->entries.end()) {
          if (!it->second.acked) {
            return true;  // already in flight on the pump: drop the duplicate
          }
          // Idempotent retry: replay the cached ack (and the verdict, if it
          // already landed) instead of re-admitting the claim.
          dedup_hits.fetch_add(1);
          connection.Send(it->second.ack_frame);
          if (it->second.verdict_sent) {
            connection.Send(it->second.verdict_frame);
          }
          return true;
        }
        session->entries.emplace(frame.request_id, Session::Entry{});
      }
      {
        std::lock_guard<std::mutex> lock(pump_mu);
        if (!pump_stop && pump_queue.size() < options.submit_queue_capacity) {
          pump_queue.push_back(
              {session, frame.request_id,
               std::vector<uint8_t>(frame.payload.begin(), frame.payload.end())});
          pump_cv.notify_one();
          return true;
        }
      }
      // Pump backlog full: shed at the wire exactly like a gateway overload.
      queue_overflow_rejects.fetch_add(1);
      submits_rejected.fetch_add(1);
      RejectSubmit(*session, frame.request_id, WireStatus::kOverloaded);
      return true;
    }
    case MessageType::kPing:
      SendFrame(connection, MessageType::kPong, frame.request_id, {});
      return true;
    case MessageType::kGoodbye:
      connection.CloseAfterFlush();
      return true;
    case MessageType::kHelloAck:
    case MessageType::kSubmitAck:
    case MessageType::kVerdict:
    case MessageType::kPong:
      return false;  // server-to-client messages; a client sending them is broken
  }
  return false;
}

void RpcServer::Core::PumpLoop() {
  ResourceTracker::ScopedThread tracked("net_submit");
  while (true) {
    PendingSubmit item;
    {
      std::unique_lock<std::mutex> lock(pump_mu);
      pump_cv.wait(lock, [&] { return pump_stop || !pump_queue.empty(); });
      if (pump_stop) {
        // Unprocessed submissions are dropped UNACKED: the client never saw an
        // admission, so its retry path (or timeout) owns them — dropping here
        // can never duplicate or lose an accepted claim.
        return;
      }
      item = std::move(pump_queue.front());
      pump_queue.pop_front();
    }
    ProcessSubmit(item);
  }
}

void RpcServer::Core::ProcessSubmit(const PendingSubmit& item) {
  WireSubmit submit;
  if (!DecodeSubmit(item.payload, submit)) {
    submits_malformed.fetch_add(1);
    RejectSubmit(*item.session, item.request_id, WireStatus::kMalformed);
    return;
  }
  BatchClaim claim;
  if (!BatchClaimFromWireClaim(submit.claim, claim)) {
    submits_rejected.fetch_add(1);
    RejectSubmit(*item.session, item.request_id, WireStatus::kUnknownDevice);
    return;
  }
  GatewaySubmitResult result =
      gateway.Submit(submit.model_id, std::move(claim), submit.submitter);
  if (!result.accepted()) {
    submits_rejected.fetch_add(1);
    RejectSubmit(*item.session, item.request_id, ToWireStatus(result.status));
    return;
  }
  submits_accepted.fetch_add(1);
  // The wire ticket is the service's global sequence number — the client sorts
  // accepted claims by it to replay the reference order.
  const uint64_t wire_ticket = result.ticket->sequence();
  std::vector<uint8_t> ack_frame;
  AppendWireFrame(ack_frame, MessageType::kSubmitAck, item.request_id,
                  EncodeSubmitAck({WireStatus::kAccepted, wire_ticket}));
  std::shared_ptr<Connection> connection;
  {
    std::lock_guard<std::mutex> lock(item.session->mu);
    Session::Entry& entry = item.session->entries[item.request_id];
    entry.acked = true;
    entry.ack_frame = ack_frame;
    item.session->completed_order.push_back(item.request_id);
    EvictLocked(*item.session);
    connection = item.session->connection.lock();
  }
  if (connection != nullptr) {
    connection->Send(ack_frame);
  }
  // Verdict push. Runs on the delivering resolve lane (or inline right here if
  // the verdict already landed); encode + cache + non-blocking Send only. The
  // callback holds the Core and Session shared_ptrs, so it stays safe even after
  // the RpcServer itself is gone.
  std::shared_ptr<Session> session = item.session;
  const uint64_t request_id = item.request_id;
  std::shared_ptr<Core> self = shared_from_this();
  result.ticket->OnDelivered([self, session, request_id,
                              wire_ticket](const BatchClaimOutcome& outcome) {
    WireVerdict verdict;
    verdict.ticket = wire_ticket;
    verdict.claim_id = outcome.claim_id;
    verdict.model_id = outcome.model;
    verdict.c0 = outcome.c0;
    verdict.final_state = static_cast<uint32_t>(outcome.final_state);
    verdict.supervised = outcome.supervised;
    verdict.flagged = outcome.flagged;
    verdict.proposer_guilty = outcome.proposer_guilty;
    verdict.gas_used = outcome.gas_used;
    std::vector<uint8_t> verdict_frame;
    AppendWireFrame(verdict_frame, MessageType::kVerdict, request_id,
                    EncodeVerdict(verdict));
    std::shared_ptr<Connection> push_connection;
    {
      std::lock_guard<std::mutex> lock(session->mu);
      const auto it = session->entries.find(request_id);
      if (it != session->entries.end()) {
        it->second.verdict_sent = true;
        it->second.verdict_frame = verdict_frame;
      }
      push_connection = session->connection.lock();
    }
    if (push_connection != nullptr) {
      push_connection->Send(verdict_frame);
    }
    self->verdicts_pushed.fetch_add(1);
  });
}

RpcServer::RpcServer(ServingGateway& gateway, ModelRegistry& registry,
                     const RpcServerOptions& options,
                     std::shared_ptr<Dispatcher> dispatcher)
    : core_(std::make_shared<Core>(gateway, registry, options)) {
  TcpServerOptions server_options;
  server_options.bind_address = options.bind_address;
  server_options.port = options.port;
  server_options.accept_role = "net_accept";
  if (dispatcher == nullptr) {
    DispatcherOptions dispatcher_options;
    dispatcher_options.thread_role = "net_poll";
    dispatcher_options.max_outbound_bytes = options.max_outbound_bytes;
    dispatcher = std::make_shared<Dispatcher>(dispatcher_options);
  }
  std::shared_ptr<Core> core = core_;
  server_ = std::make_unique<TcpServer>(
      server_options, [core] { return std::make_unique<Handler>(core); },
      std::move(dispatcher));
  pump_ = std::thread([core] { core->PumpLoop(); });
}

RpcServer::~RpcServer() {
  // Pump first: it calls into the gateway, which must not be mid-teardown.
  {
    std::lock_guard<std::mutex> lock(core_->pump_mu);
    core_->pump_stop = true;
  }
  core_->pump_cv.notify_all();
  pump_.join();
  // Then the acceptor + connections (Sync'd), leaving only verdict callbacks,
  // which hold the Core alive on their own and no-op on dead connections.
  server_.reset();
}

std::vector<NamedCounter> RpcServer::Counters() const {
  size_t queue_depth = 0;
  {
    std::lock_guard<std::mutex> lock(core_->pump_mu);
    queue_depth = core_->pump_queue.size();
  }
  size_t num_sessions = 0;
  {
    std::lock_guard<std::mutex> lock(core_->sessions_mu);
    num_sessions = core_->sessions.size();
  }
  std::vector<NamedCounter> counters = {
      {"net/rpc/sessions", static_cast<double>(num_sessions)},
      {"net/rpc/frames_received", static_cast<double>(core_->frames_received.load())},
      {"net/rpc/submits_received", static_cast<double>(core_->submits_received.load())},
      {"net/rpc/submits_accepted", static_cast<double>(core_->submits_accepted.load())},
      {"net/rpc/submits_rejected", static_cast<double>(core_->submits_rejected.load())},
      {"net/rpc/submits_malformed", static_cast<double>(core_->submits_malformed.load())},
      {"net/rpc/dedup_hits", static_cast<double>(core_->dedup_hits.load())},
      {"net/rpc/verdicts_pushed", static_cast<double>(core_->verdicts_pushed.load())},
      {"net/rpc/protocol_errors", static_cast<double>(core_->protocol_errors.load())},
      {"net/rpc/queue_overflow_rejects",
       static_cast<double>(core_->queue_overflow_rejects.load())},
      {"net/rpc/submit_queue_depth", static_cast<double>(queue_depth)},
  };
  std::vector<NamedCounter> dispatcher_counters = server_->dispatcher().Counters();
  counters.insert(counters.end(), dispatcher_counters.begin(),
                  dispatcher_counters.end());
  return counters;
}

}  // namespace tao
