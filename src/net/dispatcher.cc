#include "src/net/dispatcher.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <future>
#include <stdexcept>
#include <utility>

#include "src/observability/resource_tracker.h"
#include "src/util/check.h"

namespace tao {
namespace {

constexpr int kEpollTimeoutMs = 100;  // shutdown latency bound
constexpr int kMaxEvents = 64;

}  // namespace

Connection::Connection(Dispatcher& dispatcher, int fd, uint64_t id,
                       std::unique_ptr<ConnectionHandler> handler)
    : dispatcher_(dispatcher), fd_(fd), id_(id), handler_(std::move(handler)) {}

Connection::~Connection() {
  // Normally the dispatcher closed the fd in CloseConnection; this catches a
  // connection whose adopt op never ran (dispatcher torn down first).
  if (!closed_.load()) {
    ::close(fd_);
  }
}

bool Connection::Send(std::span<const uint8_t> data) {
  bool request_attention = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_.load() || overflowed_ || close_after_flush_) {
      return false;
    }
    outbound_.insert(outbound_.end(), data.begin(), data.end());
    if (outbound_.size() - outbound_offset_ > dispatcher_.options_.max_outbound_bytes) {
      // Slow reader: the peer stopped draining while pushes kept coming. Cap the
      // buffer by dropping the CONNECTION (the client's retry path re-attaches
      // and recovers its acks/verdicts from the dedup cache) — never by blocking
      // the sender, which is a resolve lane.
      overflowed_ = true;
    }
    request_attention = !attention_requested_;
    attention_requested_ = true;
  }
  if (request_attention) {
    auto self = shared_from_this();
    dispatcher_.Post([self] { self->dispatcher_.FlushOrClose(self); });
  }
  std::lock_guard<std::mutex> lock(mu_);
  return !overflowed_;
}

void Connection::CloseAfterFlush() {
  bool request_attention = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_.load()) {
      return;
    }
    close_after_flush_ = true;
    request_attention = !attention_requested_;
    attention_requested_ = true;
  }
  if (request_attention) {
    auto self = shared_from_this();
    dispatcher_.Post([self] { self->dispatcher_.FlushOrClose(self); });
  }
}

void Connection::Close() {
  if (closed_.load()) {
    return;
  }
  auto self = shared_from_this();
  dispatcher_.Post([self] { self->dispatcher_.CloseConnection(self); });
}

Dispatcher::Dispatcher(DispatcherOptions options) : options_(std::move(options)) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error("dispatcher: epoll_create1 failed");
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error("dispatcher: eventfd failed");
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  TAO_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) == 0);
  loop_thread_ = std::thread([this] { Loop(); });
}

Dispatcher::~Dispatcher() {
  stop_.store(true);
  Wake();
  loop_thread_.join();
  // Backstop for connections whose owner did not Close+Sync first: tear them down
  // on this thread (their handlers must still be alive, which holds because
  // owners destroy their server object — and with it this dispatcher reference —
  // before the handler's referents).
  for (auto& [fd, connection] : connections_) {
    connection->closed_.store(true);
    ::close(fd);
    connection->handler_->OnClosed(*connection);
  }
  connections_.clear();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

std::shared_ptr<Connection> Dispatcher::Adopt(
    int fd, std::unique_ptr<ConnectionHandler> handler) {
  std::shared_ptr<Connection> connection(
      new Connection(*this, fd, next_id_.fetch_add(1), std::move(handler)));
  Post([this, fd, connection] {
    epoll_event event{};
    event.events = EPOLLIN | EPOLLRDHUP;
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      connection->closed_.store(true);
      ::close(fd);
      connection->handler_->OnClosed(*connection);
      return;
    }
    connections_.emplace(fd, connection);
    num_connections_.fetch_add(1);
    connections_opened_.fetch_add(1);
  });
  return connection;
}

void Dispatcher::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(ops_mu_);
    ops_.push_back(std::move(fn));
  }
  Wake();
}

void Dispatcher::Sync(std::function<void()> fn) {
  std::promise<void> done;
  std::future<void> future = done.get_future();
  Post([&done, &fn] {
    if (fn) {
      fn();
    }
    done.set_value();
  });
  future.get();
}

size_t Dispatcher::num_connections() const { return num_connections_.load(); }

std::vector<NamedCounter> Dispatcher::Counters(const std::string& prefix) const {
  return {
      {prefix + "/connections_open", static_cast<double>(num_connections_.load())},
      {prefix + "/connections_opened", static_cast<double>(connections_opened_.load())},
      {prefix + "/connections_closed", static_cast<double>(connections_closed_.load())},
      {prefix + "/backpressure_disconnects",
       static_cast<double>(backpressure_disconnects_.load())},
      {prefix + "/bytes_read", static_cast<double>(bytes_read_.load())},
      {prefix + "/bytes_written", static_cast<double>(bytes_written_.load())},
  };
}

void Dispatcher::Wake() {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Dispatcher::Loop() {
  ResourceTracker::ScopedThread tracked(options_.thread_role);
  epoll_event events[kMaxEvents];
  while (!stop_.load()) {
    const int count = ::epoll_wait(epoll_fd_, events, kMaxEvents, kEpollTimeoutMs);
    for (int i = 0; i < count; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] const ssize_t n =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) {
        continue;  // closed earlier in this batch
      }
      const std::shared_ptr<Connection> connection = it->second;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(connection);
        continue;
      }
      if (events[i].events & (EPOLLIN | EPOLLRDHUP)) {
        ReadFrom(connection);
      }
      if (!connection->closed_.load() && (events[i].events & EPOLLOUT)) {
        FlushOrClose(connection);
      }
    }
    RunOps();
  }
  RunOps();  // ops enqueued between the last pass and stop (e.g. a final Sync)
}

void Dispatcher::RunOps() {
  std::deque<std::function<void()>> ops;
  {
    std::lock_guard<std::mutex> lock(ops_mu_);
    ops.swap(ops_);
  }
  for (std::function<void()>& op : ops) {
    op();
  }
}

void Dispatcher::ReadFrom(const std::shared_ptr<Connection>& connection) {
  bool got_bytes = false;
  bool peer_gone = false;
  uint8_t buffer[16 * 1024];
  while (true) {
    const ssize_t n = ::recv(connection->fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      connection->inbound_.insert(connection->inbound_.end(), buffer, buffer + n);
      bytes_read_.fetch_add(n);
      got_bytes = true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    peer_gone = true;  // orderly close (0) or hard error
    break;
  }
  if (got_bytes) {
    connection->handler_->OnReadable(*connection, connection->inbound_);
  }
  if (peer_gone && !connection->closed_.load()) {
    CloseConnection(connection);
  }
}

bool Dispatcher::FlushLocked(Connection& connection) {
  // Caller holds connection.mu_. Loop thread only (epoll_out_armed_ is unlocked).
  while (connection.outbound_offset_ < connection.outbound_.size()) {
    const ssize_t n = ::send(
        connection.fd_, connection.outbound_.data() + connection.outbound_offset_,
        connection.outbound_.size() - connection.outbound_offset_,
        MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      connection.outbound_offset_ += static_cast<size_t>(n);
      bytes_written_.fetch_add(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    return false;  // peer went away mid-write
  }
  const bool drained = connection.outbound_offset_ == connection.outbound_.size();
  if (drained) {
    connection.outbound_.clear();
    connection.outbound_offset_ = 0;
  }
  if (connection.overflowed_) {
    return false;
  }
  if (drained && connection.close_after_flush_) {
    return false;
  }
  if (drained == connection.epoll_out_armed_) {
    // Arm EPOLLOUT while bytes wait on a full socket; disarm once drained.
    epoll_event event{};
    event.events = EPOLLIN | EPOLLRDHUP | (drained ? 0u : EPOLLOUT);
    event.data.fd = connection.fd_;
    TAO_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection.fd_, &event) == 0);
    connection.epoll_out_armed_ = !drained;
  }
  return true;
}

void Dispatcher::FlushOrClose(const std::shared_ptr<Connection>& connection) {
  if (connection->closed_.load() ||
      connections_.find(connection->fd_) == connections_.end()) {
    return;
  }
  bool alive;
  bool overflowed;
  {
    std::lock_guard<std::mutex> lock(connection->mu_);
    connection->attention_requested_ = false;
    alive = FlushLocked(*connection);
    overflowed = connection->overflowed_;
  }
  if (!alive) {
    if (overflowed) {
      backpressure_disconnects_.fetch_add(1);
    }
    CloseConnection(connection);
  }
}

void Dispatcher::CloseConnection(const std::shared_ptr<Connection>& connection) {
  if (connections_.erase(connection->fd_) == 0) {
    return;  // already closed
  }
  connection->closed_.store(true);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, connection->fd_, nullptr);
  ::close(connection->fd_);
  num_connections_.fetch_sub(1);
  connections_closed_.fetch_add(1);
  connection->handler_->OnClosed(*connection);
}

}  // namespace tao
