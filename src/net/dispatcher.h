// Epoll event loop + connection abstraction of the net layer (docs/net.md).
//
// One Dispatcher runs ONE loop thread that owns every socket it was handed via
// Adopt(): it reads inbound bytes into a per-connection buffer and hands them to
// the connection's ConnectionHandler, and it flushes the per-connection outbound
// buffer when the socket drains. The design splits responsibilities so no protocol
// work ever blocks a verification thread and no verification thread ever touches a
// socket directly:
//
//   * OnReadable/OnClosed run exclusively on the loop thread — handlers parse
//     frames and enqueue work, they never execute claims;
//   * Connection::Send is callable from ANY thread (resolve lanes push verdicts):
//     it appends to the outbound buffer under the connection's own mutex and wakes
//     the loop via an eventfd — it NEVER blocks on the socket;
//   * slow-reader policy: the outbound buffer is bounded. A peer that stops
//     reading while the server keeps pushing hits the bound and is DISCONNECTED
//     (counted as a backpressure_disconnect) — one stalled client costs one
//     connection, never a resolve lane's progress.
//
// The loop thread registers with the ResourceTracker under options.thread_role, so
// its CPU shows up per-role in /metrics alongside workers and lanes.

#ifndef TAO_SRC_NET_DISPATCHER_H_
#define TAO_SRC_NET_DISPATCHER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/service/metrics.h"

namespace tao {

class Connection;
class Dispatcher;

// Protocol callbacks. Both run on the dispatcher's loop thread only.
class ConnectionHandler {
 public:
  virtual ~ConnectionHandler() = default;

  // More bytes arrived. `buffer` is the connection's cumulative inbound buffer;
  // the handler consumes complete frames by erasing the prefix it processed and
  // leaves any torn tail in place for the next call.
  virtual void OnReadable(Connection& connection, std::vector<uint8_t>& buffer) = 0;

  // The connection left the dispatcher (peer close, error, overflow, or an
  // explicit Close). Called exactly once; the Connection is dead afterwards.
  virtual void OnClosed(Connection& connection) {}
};

struct DispatcherOptions {
  // ResourceTracker role of the loop thread ("<role>/<n>/cpu_seconds" in /metrics).
  std::string thread_role = "net_poll";
  // Slow-reader bound: a connection whose un-flushed outbound bytes exceed this is
  // disconnected instead of growing without bound.
  size_t max_outbound_bytes = 8u << 20;
};

// One adopted socket. Created by Dispatcher::Adopt; destroyed after OnClosed.
// Thread contract: Send/CloseAfterFlush/Close/closed() are any-thread; everything
// else is loop-thread-only.
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  ~Connection();

  // Queues `data` for transmission and wakes the loop. Returns false (dropping
  // the bytes) when the connection is already closed or this write overflowed the
  // outbound bound — the connection is then being torn down anyway. Never blocks.
  bool Send(std::span<const uint8_t> data);

  // Closes once the outbound buffer has fully drained (orderly Goodbye / HTTP
  // response). Further Sends are dropped.
  void CloseAfterFlush();

  // Closes at the loop's next pass, flushed or not.
  void Close();

  bool closed() const { return closed_.load(); }
  uint64_t id() const { return id_; }

 private:
  friend class Dispatcher;

  Connection(Dispatcher& dispatcher, int fd, uint64_t id,
             std::unique_ptr<ConnectionHandler> handler);

  Dispatcher& dispatcher_;
  const int fd_;
  const uint64_t id_;
  std::unique_ptr<ConnectionHandler> handler_;

  // Loop-thread-only state.
  std::vector<uint8_t> inbound_;
  bool epoll_out_armed_ = false;

  // Cross-thread state (guarded by mu_). `outbound_` is drained from the front by
  // the loop's flush; `outbound_offset_` avoids erasing the prefix per partial
  // send.
  std::mutex mu_;
  std::vector<uint8_t> outbound_;
  size_t outbound_offset_ = 0;
  bool close_after_flush_ = false;
  bool overflowed_ = false;
  bool attention_requested_ = false;  // a FlushOrClose op is already queued

  std::atomic<bool> closed_{false};
};

class Dispatcher {
 public:
  explicit Dispatcher(DispatcherOptions options = {});
  // Joins the loop and closes any connection still adopted (their OnClosed runs
  // on the destroying thread). Servers normally Close + Sync their connections
  // first, so this is a backstop.
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  // Takes ownership of connected, non-blocking `fd` and starts dispatching it to
  // `handler`. Callable from any thread (the acceptor). Returns the connection.
  std::shared_ptr<Connection> Adopt(int fd,
                                    std::unique_ptr<ConnectionHandler> handler);

  // Enqueues `fn` to run on the loop thread (FIFO with every other op) and wakes
  // the loop. Any thread.
  void Post(std::function<void()> fn);

  // Runs `fn` on the loop thread and returns after it ran — a barrier proving
  // every callback enqueued before it has completed. Deadlocks if called FROM the
  // loop thread; handlers never need it.
  void Sync(std::function<void()> fn = nullptr);

  size_t num_connections() const;

  // net/... counters: connections opened/closed, bytes, backpressure disconnects.
  std::vector<NamedCounter> Counters(const std::string& prefix = "net") const;

 private:
  friend class Connection;

  void Loop();
  void Wake();
  // Loop-thread helpers.
  void ReadFrom(const std::shared_ptr<Connection>& connection);
  // Flushes what the socket accepts; arms EPOLLOUT when bytes remain. Returns
  // false when the connection must die (write error / overflow / flushed close).
  bool FlushLocked(Connection& connection);
  void FlushOrClose(const std::shared_ptr<Connection>& connection);
  void CloseConnection(const std::shared_ptr<Connection>& connection);
  void RunOps();

  const DispatcherOptions options_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: cross-thread Send/ops wake the epoll_wait
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> next_id_{1};

  // Loop-thread-only connection table (fd -> connection).
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  std::atomic<size_t> num_connections_{0};

  // Cross-thread op queue, drained FIFO by the loop after each epoll pass.
  std::mutex ops_mu_;
  std::deque<std::function<void()>> ops_;

  std::atomic<int64_t> connections_opened_{0};
  std::atomic<int64_t> connections_closed_{0};
  std::atomic<int64_t> backpressure_disconnects_{0};
  std::atomic<int64_t> bytes_read_{0};
  std::atomic<int64_t> bytes_written_{0};

  std::thread loop_thread_;
};

}  // namespace tao

#endif  // TAO_SRC_NET_DISPATCHER_H_
