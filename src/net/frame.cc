#include "src/net/frame.h"

#include <bit>
#include <cstring>

#include "src/crypto/canonical.h"
#include "src/device/device.h"
#include "src/durability/framing.h"
#include "src/protocol/batch_verifier.h"
#include "src/protocol/coordinator.h"
#include "src/registry/serving_gateway.h"
#include "src/util/check.h"

namespace tao {
namespace {

// ClaimState's cardinality; a wire final_state at or above this is malformed.
// (Exhaustive-by-count like ToWireStatus below: a new ClaimState bumps this or the
// static_assert in DecodeVerdict's caller-facing contract goes stale loudly.)
constexpr uint32_t kNumClaimStates = 5;
static_assert(static_cast<uint32_t>(ClaimState::kChallengerSlashed) + 1 ==
                  kNumClaimStates,
              "ClaimState grew: update kNumClaimStates and the verdict codec");

bool ReadString(ByteReader& reader, std::string& out) {
  uint32_t length = 0;
  if (!reader.ReadU32(length) || length > kMaxWireStringBytes ||
      length > reader.remaining()) {
    return false;
  }
  out.resize(length);
  return reader.ReadBytes({reinterpret_cast<uint8_t*>(out.data()), length});
}

void AppendString(std::vector<uint8_t>& out, const std::string& value) {
  TAO_CHECK_LE(value.size(), kMaxWireStringBytes) << "wire string too long";
  AppendU32Le(out, static_cast<uint32_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

// Tensor codec: CanonicalBytes' exact layout (dtype tag, rank, dims, f32 element
// bits — src/crypto/canonical.cc) so a tensor's wire bytes ARE its canonical bytes,
// plus the decode-side bounds that make the codec total on hostile input.
void AppendTensor(std::vector<uint8_t>& out, const Tensor& tensor) {
  const std::vector<uint8_t> canonical = CanonicalBytes(tensor);
  out.insert(out.end(), canonical.begin(), canonical.end());
}

bool ReadTensor(ByteReader& reader, Tensor& out) {
  uint32_t dtype = 0;
  uint32_t rank = 0;
  if (!reader.ReadU32(dtype) || dtype != 0 || !reader.ReadU32(rank) ||
      rank > kMaxWireTensorRank) {
    return false;
  }
  std::vector<int64_t> dims(rank);
  uint64_t numel = 1;
  for (uint32_t i = 0; i < rank; ++i) {
    uint64_t dim = 0;
    if (!reader.ReadU64(dim) || dim > kMaxWireTensorElems) {
      return false;
    }
    numel *= dim;  // both factors <= 2^24, so no overflow before the check
    if (numel > kMaxWireTensorElems) {
      return false;
    }
    dims[i] = static_cast<int64_t>(dim);
  }
  // Element storage is validated against the REMAINING bytes before allocating.
  if (numel * 4 > reader.remaining()) {
    return false;
  }
  std::vector<float> values(numel);
  for (uint64_t i = 0; i < numel; ++i) {
    uint32_t bits = 0;
    if (!reader.ReadU32(bits)) {
      return false;
    }
    // Bit-pattern copy, not a float conversion: NaN payloads and signed zeros
    // survive the round trip, which the canonical re-encode property requires.
    std::memcpy(&values[i], &bits, sizeof(bits));
  }
  out = Tensor(Shape(std::move(dims)), std::move(values));
  return true;
}

void AppendClaim(std::vector<uint8_t>& out, const WireClaim& claim) {
  TAO_CHECK_LE(claim.inputs.size(), kMaxWireClaimInputs);
  TAO_CHECK_LE(claim.perturbations.size(), kMaxWireClaimPerturbations);
  AppendU32Le(out, static_cast<uint32_t>(claim.inputs.size()));
  for (const Tensor& input : claim.inputs) {
    AppendTensor(out, input);
  }
  AppendU32Le(out, static_cast<uint32_t>(claim.perturbations.size()));
  for (const WirePerturbation& perturbation : claim.perturbations) {
    AppendI64Le(out, perturbation.node);
    AppendTensor(out, perturbation.delta);
  }
  AppendString(out, claim.proposer_device);
  AppendString(out, claim.verifier_device);
}

bool ReadClaim(ByteReader& reader, WireClaim& out) {
  uint32_t num_inputs = 0;
  if (!reader.ReadU32(num_inputs) || num_inputs > kMaxWireClaimInputs) {
    return false;
  }
  out.inputs.resize(num_inputs);
  for (uint32_t i = 0; i < num_inputs; ++i) {
    if (!ReadTensor(reader, out.inputs[i])) {
      return false;
    }
  }
  uint32_t num_perturbations = 0;
  if (!reader.ReadU32(num_perturbations) ||
      num_perturbations > kMaxWireClaimPerturbations) {
    return false;
  }
  out.perturbations.resize(num_perturbations);
  for (uint32_t i = 0; i < num_perturbations; ++i) {
    if (!reader.ReadI64(out.perturbations[i].node) ||
        !ReadTensor(reader, out.perturbations[i].delta)) {
      return false;
    }
  }
  return ReadString(reader, out.proposer_device) &&
         ReadString(reader, out.verifier_device);
}

}  // namespace

const char* WireDecodeStatusName(WireDecodeStatus status) {
  switch (status) {
    case WireDecodeStatus::kOk:
      return "ok";
    case WireDecodeStatus::kTorn:
      return "torn";
    case WireDecodeStatus::kBadMagic:
      return "bad_magic";
    case WireDecodeStatus::kBadVersion:
      return "bad_version";
    case WireDecodeStatus::kBadType:
      return "bad_type";
    case WireDecodeStatus::kBadLength:
      return "bad_length";
    case WireDecodeStatus::kBadCrc:
      return "bad_crc";
  }
  return "unknown";
}

void AppendWireFrame(std::vector<uint8_t>& out, MessageType type,
                     uint64_t request_id, std::span<const uint8_t> payload) {
  TAO_CHECK_LE(payload.size(), static_cast<size_t>(kMaxWirePayloadBytes))
      << "wire payload over the frame ceiling";
  AppendU32Le(out, kWireMagic);
  AppendU32Le(out, kWireVersion);
  AppendU32Le(out, static_cast<uint32_t>(type));
  AppendU64Le(out, request_id);
  const uint32_t length = static_cast<uint32_t>(payload.size());
  AppendU32Le(out, length);
  AppendU32Le(out, length ^ kWireLengthXor);
  AppendU32Le(out, Crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

WireDecodeStatus DecodeWireFrame(std::span<const uint8_t> data, size_t& offset,
                                 WireFrame& frame) {
  TAO_CHECK_LE(offset, data.size());
  const std::span<const uint8_t> tail = data.subspan(offset);
  if (tail.size() < kWireHeaderBytes) {
    return WireDecodeStatus::kTorn;  // a complete header is always intact: wait
  }
  ByteReader reader(tail.first(kWireHeaderBytes));
  uint32_t magic = 0, version = 0, type = 0, length = 0, length_check = 0, crc = 0;
  uint64_t request_id = 0;
  TAO_CHECK(reader.ReadU32(magic) && reader.ReadU32(version) &&
            reader.ReadU32(type) && reader.ReadU64(request_id) &&
            reader.ReadU32(length) && reader.ReadU32(length_check) &&
            reader.ReadU32(crc));
  if (magic != kWireMagic) {
    return WireDecodeStatus::kBadMagic;
  }
  if (version != kWireVersion) {
    return WireDecodeStatus::kBadVersion;
  }
  if (type < static_cast<uint32_t>(MessageType::kHello) ||
      type > static_cast<uint32_t>(MessageType::kGoodbye)) {
    return WireDecodeStatus::kBadType;
  }
  // Full header present, so a length/length_check disagreement can only be
  // corruption — a torn stream shortens the frame, it never rewrites the header.
  if ((length ^ kWireLengthXor) != length_check || length > kMaxWirePayloadBytes) {
    return WireDecodeStatus::kBadLength;
  }
  if (tail.size() < kWireHeaderBytes + length) {
    return WireDecodeStatus::kTorn;  // payload still in flight
  }
  const std::span<const uint8_t> payload = tail.subspan(kWireHeaderBytes, length);
  if (Crc32(payload) != crc) {
    return WireDecodeStatus::kBadCrc;
  }
  frame.type = static_cast<MessageType>(type);
  frame.request_id = request_id;
  frame.payload = payload;
  offset += kWireHeaderBytes + length;
  return WireDecodeStatus::kOk;
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kAccepted:
      return "accepted";
    case WireStatus::kUnknownModel:
      return "unknown_model";
    case WireStatus::kNotCommitted:
      return "not_committed";
    case WireStatus::kNotServing:
      return "not_serving";
    case WireStatus::kDraining:
      return "draining";
    case WireStatus::kRetired:
      return "retired";
    case WireStatus::kOverloaded:
      return "overloaded";
    case WireStatus::kMalformed:
      return "malformed";
    case WireStatus::kUnknownDevice:
      return "unknown_device";
    case WireStatus::kCount:
      break;
  }
  return "invalid";
}

bool IsRetriableStatus(WireStatus status) {
  return status == WireStatus::kOverloaded || status == WireStatus::kDraining;
}

WireStatus ToWireStatus(GatewayStatus status) {
  // Compile-time round-trip guarantee: a new GatewayStatus value moves
  // kStatusCount, fails this static_assert, and the exhaustive switch below (no
  // default) draws a -Wswitch warning — the wire mapping can never silently lag
  // the gateway enum.
  static_assert(static_cast<int>(GatewayStatus::kStatusCount) == 7,
                "GatewayStatus changed: extend WireStatus and this mapping");
  switch (status) {
    case GatewayStatus::kAccepted:
      return WireStatus::kAccepted;
    case GatewayStatus::kUnknownModel:
      return WireStatus::kUnknownModel;
    case GatewayStatus::kNotCommitted:
      return WireStatus::kNotCommitted;
    case GatewayStatus::kNotServing:
      return WireStatus::kNotServing;
    case GatewayStatus::kDraining:
      return WireStatus::kDraining;
    case GatewayStatus::kRetired:
      return WireStatus::kRetired;
    case GatewayStatus::kOverloaded:
      return WireStatus::kOverloaded;
    case GatewayStatus::kStatusCount:
      break;
  }
  TAO_CHECK(false) << "invalid GatewayStatus " << static_cast<int>(status);
  return WireStatus::kMalformed;
}

std::vector<uint8_t> EncodeHello(const WireHello& hello) {
  std::vector<uint8_t> out;
  AppendU64Le(out, hello.session_id);
  return out;
}

bool DecodeHello(std::span<const uint8_t> payload, WireHello& out) {
  ByteReader reader(payload);
  return reader.ReadU64(out.session_id) && out.session_id != 0 &&
         reader.exhausted();
}

std::vector<uint8_t> EncodeHelloAck(const WireHelloAck& ack) {
  TAO_CHECK_LE(ack.models.size(), kMaxWireModelEntries);
  std::vector<uint8_t> out;
  AppendU32Le(out, ack.dedup_window);
  AppendU32Le(out, static_cast<uint32_t>(ack.models.size()));
  for (const WireModelEntry& model : ack.models) {
    AppendU64Le(out, model.id);
    AppendString(out, model.name);
  }
  return out;
}

bool DecodeHelloAck(std::span<const uint8_t> payload, WireHelloAck& out) {
  ByteReader reader(payload);
  uint32_t count = 0;
  if (!reader.ReadU32(out.dedup_window) || !reader.ReadU32(count) ||
      count > kMaxWireModelEntries) {
    return false;
  }
  out.models.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!reader.ReadU64(out.models[i].id) ||
        !ReadString(reader, out.models[i].name)) {
      return false;
    }
  }
  return reader.exhausted();
}

std::vector<uint8_t> EncodeSubmit(const WireSubmit& submit) {
  std::vector<uint8_t> out;
  AppendU64Le(out, submit.model_id);
  AppendU64Le(out, submit.submitter);
  AppendClaim(out, submit.claim);
  return out;
}

bool DecodeSubmit(std::span<const uint8_t> payload, WireSubmit& out) {
  ByteReader reader(payload);
  return reader.ReadU64(out.model_id) && reader.ReadU64(out.submitter) &&
         ReadClaim(reader, out.claim) && reader.exhausted();
}

std::vector<uint8_t> EncodeSubmitAck(const WireSubmitAck& ack) {
  TAO_CHECK(ack.status == WireStatus::kAccepted || ack.ticket == 0)
      << "reject acks carry no ticket";
  std::vector<uint8_t> out;
  AppendU32Le(out, static_cast<uint32_t>(ack.status));
  AppendU64Le(out, ack.ticket);
  return out;
}

bool DecodeSubmitAck(std::span<const uint8_t> payload, WireSubmitAck& out) {
  ByteReader reader(payload);
  uint32_t status = 0;
  if (!reader.ReadU32(status) ||
      status >= static_cast<uint32_t>(WireStatus::kCount) ||
      !reader.ReadU64(out.ticket) || !reader.exhausted()) {
    return false;
  }
  out.status = static_cast<WireStatus>(status);
  // Canonical: a reject with a ticket has no encoder, so it has no decoder either.
  return out.status == WireStatus::kAccepted || out.ticket == 0;
}

std::vector<uint8_t> EncodeVerdict(const WireVerdict& verdict) {
  TAO_CHECK_LT(verdict.final_state, kNumClaimStates);
  std::vector<uint8_t> out;
  AppendU64Le(out, verdict.ticket);
  AppendU64Le(out, verdict.claim_id);
  AppendU64Le(out, verdict.model_id);
  out.insert(out.end(), verdict.c0.begin(), verdict.c0.end());
  AppendU32Le(out, verdict.final_state);
  const uint32_t flags = (verdict.supervised ? 1u : 0u) |
                         (verdict.flagged ? 2u : 0u) |
                         (verdict.proposer_guilty ? 4u : 0u);
  AppendU32Le(out, flags);
  AppendI64Le(out, verdict.gas_used);
  return out;
}

bool DecodeVerdict(std::span<const uint8_t> payload, WireVerdict& out) {
  ByteReader reader(payload);
  uint32_t flags = 0;
  if (!reader.ReadU64(out.ticket) || !reader.ReadU64(out.claim_id) ||
      !reader.ReadU64(out.model_id) ||
      !reader.ReadBytes({out.c0.data(), out.c0.size()}) ||
      !reader.ReadU32(out.final_state) || out.final_state >= kNumClaimStates ||
      !reader.ReadU32(flags) || flags > 7 ||  // undefined flag bits must be zero
      !reader.ReadI64(out.gas_used) || !reader.exhausted()) {
    return false;
  }
  out.supervised = (flags & 1u) != 0;
  out.flagged = (flags & 2u) != 0;
  out.proposer_guilty = (flags & 4u) != 0;
  return true;
}

WireClaim WireClaimFromBatchClaim(const BatchClaim& claim) {
  WireClaim wire;
  wire.inputs = claim.inputs;
  wire.perturbations.reserve(claim.perturbations.size());
  for (const Executor::Perturbation& perturbation : claim.perturbations) {
    wire.perturbations.push_back(
        {static_cast<int64_t>(perturbation.node), perturbation.delta});
  }
  if (claim.proposer_device != nullptr) {
    wire.proposer_device = claim.proposer_device->name;
  }
  if (claim.verifier_device != nullptr) {
    wire.verifier_device = claim.verifier_device->name;
  }
  return wire;
}

bool BatchClaimFromWireClaim(const WireClaim& wire, BatchClaim& out) {
  // Fleet scan instead of DeviceRegistry::ByName: ByName aborts on an unknown
  // name, and a remote peer's typo must be a typed reject, not a server crash.
  const auto resolve = [](const std::string& name) -> const DeviceProfile* {
    for (const DeviceProfile& device : DeviceRegistry::Fleet()) {
      if (device.name == name) {
        return &device;
      }
    }
    return nullptr;
  };
  out.inputs = wire.inputs;
  out.perturbations.clear();
  out.perturbations.reserve(wire.perturbations.size());
  for (const WirePerturbation& perturbation : wire.perturbations) {
    Executor::Perturbation converted;
    converted.node = static_cast<NodeId>(perturbation.node);
    converted.delta = perturbation.delta;
    out.perturbations.push_back(std::move(converted));
  }
  out.proposer_device = nullptr;
  out.verifier_device = nullptr;
  if (!wire.proposer_device.empty()) {
    out.proposer_device = resolve(wire.proposer_device);
    if (out.proposer_device == nullptr) {
      return false;
    }
  }
  if (!wire.verifier_device.empty()) {
    out.verifier_device = resolve(wire.verifier_device);
    if (out.verifier_device == nullptr) {
      return false;
    }
  }
  return true;
}

}  // namespace tao
