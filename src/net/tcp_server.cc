#include "src/net/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/observability/resource_tracker.h"

namespace tao {
namespace {

constexpr int kAcceptPollTimeoutMs = 100;

}  // namespace

// Forwards to the factory handler; the extra OnClosed hook keeps the server's
// live-connection table exact without the protocol handler knowing about it.
class TcpServer::TrackingHandler : public ConnectionHandler {
 public:
  TrackingHandler(TcpServer& server, std::unique_ptr<ConnectionHandler> inner)
      : server_(server), inner_(std::move(inner)) {}

  void OnReadable(Connection& connection, std::vector<uint8_t>& buffer) override {
    inner_->OnReadable(connection, buffer);
  }

  void OnClosed(Connection& connection) override {
    inner_->OnClosed(connection);
    server_.Untrack(connection.id());
  }

 private:
  TcpServer& server_;
  std::unique_ptr<ConnectionHandler> inner_;
};

TcpServer::TcpServer(TcpServerOptions options, HandlerFactory factory,
                     std::shared_ptr<Dispatcher> dispatcher)
    : options_(std::move(options)),
      factory_(std::move(factory)),
      dispatcher_(std::move(dispatcher)) {
  if (dispatcher_ == nullptr) {
    DispatcherOptions dispatcher_options;
    dispatcher_options.thread_role = options_.accept_role;
    dispatcher_ = std::make_shared<Dispatcher>(dispatcher_options);
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("tcp_server: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("tcp_server: bad bind address " +
                             options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("tcp_server: bind/listen failed on " +
                             options_.bind_address + ":" +
                             std::to_string(options_.port));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

TcpServer::~TcpServer() {
  stop_.store(true);
  accept_thread_.join();
  ::close(listen_fd_);
  // Close every connection this server accepted, then barrier the loop: after
  // Sync returns, no handler callback of ours is running or queued.
  std::vector<std::shared_ptr<Connection>> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, weak] : live_) {
      if (std::shared_ptr<Connection> connection = weak.lock()) {
        live.push_back(std::move(connection));
      }
    }
  }
  for (const std::shared_ptr<Connection>& connection : live) {
    connection->Close();
  }
  dispatcher_->Sync();
}

void TcpServer::AcceptLoop() {
  ResourceTracker::ScopedThread tracked(options_.accept_role);
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollTimeoutMs);
    if (ready <= 0 || !(pfd.revents & POLLIN)) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::shared_ptr<Connection> connection = dispatcher_->Adopt(
        fd, std::make_unique<TrackingHandler>(*this, factory_()));
    accepted_.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu_);
    live_.emplace(connection->id(), connection);
  }
}

void TcpServer::Untrack(uint64_t connection_id) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(connection_id);
}

}  // namespace tao
