// Client side of the wire protocol (docs/net.md).
//
// ClientChannel is the raw blocking channel: one TCP connection, a synchronous
// Hello handshake in the constructor, then a reader thread that routes inbound
// SubmitAcks / Verdicts / Pongs into per-request slots a caller Wait*()s on.
// A decode error, peer close, or Shutdown() marks the channel broken (ok() ==
// false) — every Wait unblocks with failure and the caller decides what to do.
//
// RetriableChannel is what submitters actually use: it owns reconnection with
// bounded exponential backoff + seeded jitter, and resubmission of every
// submission that has not completed yet, keyed by request id. Safety rests on the
// server's per-session dedup window: a resubmitted request id is answered from
// the cache, never re-admitted, so the claim stream the model sees — and with it
// every verdict, gas charge, C0 digest, claim id, and ledger entry — is
// unchanged by any crash/retry pattern the client goes through. One
// RetriableChannel is single-threaded by design (one submitter identity); run
// many instances for concurrent load.

#ifndef TAO_SRC_NET_CLIENT_CHANNEL_H_
#define TAO_SRC_NET_CLIENT_CHANNEL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/frame.h"
#include "src/util/rng.h"

namespace tao {

class ClientChannel {
 public:
  // Connects and performs the Hello handshake synchronously; ok() tells whether
  // it worked (no exceptions — the retry layer treats failure as data).
  ClientChannel(const std::string& host, int port, uint64_t session_id,
                std::chrono::milliseconds handshake_timeout =
                    std::chrono::milliseconds(5000));
  ~ClientChannel();

  ClientChannel(const ClientChannel&) = delete;
  ClientChannel& operator=(const ClientChannel&) = delete;

  bool ok() const { return !broken_.load(); }
  const WireHelloAck& hello_ack() const { return hello_ack_; }

  // Sends one Submit frame (payload = EncodeSubmit bytes). False on IO failure.
  bool SendSubmit(uint64_t request_id, std::span<const uint8_t> payload);

  // Blocks until the ack/verdict for `request_id` arrived, the timeout expired,
  // or the channel broke. The slot is consumed on success.
  bool WaitAck(uint64_t request_id, WireSubmitAck& ack,
               std::chrono::milliseconds timeout);
  bool WaitVerdict(uint64_t request_id, WireVerdict& verdict,
                   std::chrono::milliseconds timeout);

  // Round-trip liveness probe.
  bool Ping(uint64_t request_id, std::chrono::milliseconds timeout);

  // Orderly close: the server flushes pending pushes, then disconnects.
  void SendGoodbye();

  // Hard-kills the socket mid-whatever (fault injection for the retry tests).
  void Shutdown();

 private:
  void ReaderLoop(std::vector<uint8_t> buffer);
  bool SendFrame(MessageType type, uint64_t request_id,
                 std::span<const uint8_t> payload);

  int fd_ = -1;
  std::atomic<bool> broken_{true};  // cleared after a successful handshake
  std::atomic<bool> stop_{false};
  WireHelloAck hello_ack_;

  std::mutex send_mu_;  // serializes writes (Submit vs Ping vs Goodbye)

  std::mutex mu_;  // guards the routing tables below
  std::condition_variable cv_;
  std::unordered_map<uint64_t, WireSubmitAck> acks_;
  std::unordered_map<uint64_t, WireVerdict> verdicts_;
  std::unordered_map<uint64_t, bool> pongs_;

  std::thread reader_;
};

struct RetryOptions {
  // Reconnect attempts per operation before giving up (each with backoff).
  int max_attempts = 10;
  int base_backoff_ms = 5;
  int max_backoff_ms = 500;
  // Seed of the jitter stream — like everything else in the platform, retry
  // timing is deterministic given the seed (no std::random, no wall clock).
  uint64_t seed = 0x7a0c0de5ULL;
  std::chrono::milliseconds ack_timeout{10000};
  std::chrono::milliseconds verdict_timeout{120000};
};

class RetriableChannel {
 public:
  RetriableChannel(std::string host, int port, uint64_t session_id,
                   RetryOptions options = {});
  ~RetriableChannel();

  RetriableChannel(const RetriableChannel&) = delete;
  RetriableChannel& operator=(const RetriableChannel&) = delete;

  // Submits one claim and blocks until it is ACKED (reconnecting and
  // resubmitting as needed; retriable rejects — kOverloaded/kDraining — back off
  // and retry up to max_attempts). Returns the final ack; `request_id_out`
  // receives the id to WaitVerdict on. A kMalformed result with attempts
  // exhausted means the server stayed unreachable.
  WireSubmitAck Submit(uint64_t model_id, uint64_t submitter,
                       const BatchClaim& claim, uint64_t* request_id_out = nullptr);

  // Blocks until the verdict for an accepted submission arrives (reconnecting as
  // needed; the server replays cached verdicts on re-attach). False only when
  // attempts are exhausted.
  bool WaitVerdict(uint64_t request_id, WireVerdict& verdict);

  // The most recent HelloAck (served models, dedup window). Requires at least
  // one successful connection.
  const WireHelloAck& hello_ack() const;

  // Connection is otherwise lazy (the first Submit dials); Connect() forces the
  // handshake now — e.g. to read hello_ack() before deciding what to submit.
  // False when attempts are exhausted.
  bool Connect() { return EnsureConnected(); }

  bool connected() const { return channel_ != nullptr && channel_->ok(); }

  // Kills the current connection as if the network dropped it; the next
  // operation reconnects and resubmits. Fault injection for tests/benches.
  void InjectFaultForTest();

  int64_t reconnects() const { return reconnects_; }
  int64_t resubmissions() const { return resubmissions_; }

 private:
  // Connects (with backoff) if not connected; resubmits every pending
  // submission. False when attempts are exhausted.
  bool EnsureConnected();
  void Backoff(int attempt);

  const std::string host_;
  const int port_;
  const uint64_t session_id_;
  const RetryOptions options_;
  Rng rng_;

  std::unique_ptr<ClientChannel> channel_;
  // Submissions sent but not completed (acked-terminal or verdict-received):
  // request id -> encoded Submit payload, resubmitted verbatim on reconnect.
  std::unordered_map<uint64_t, std::vector<uint8_t>> pending_;
  uint64_t next_request_id_ = 1;
  int64_t reconnects_ = 0;
  int64_t resubmissions_ = 0;
};

}  // namespace tao

#endif  // TAO_SRC_NET_CLIENT_CHANNEL_H_
