// Framed RPC front-end over the ServingGateway (docs/net.md).
//
// The RpcServer turns remote Submit frames into ServingGateway::Submit calls and
// pushes each claim's Verdict back on the session's connection when the service
// delivers it. Threading:
//
//   * the dispatcher loop thread parses frames and answers everything cheap
//     (Hello, Ping, dedup-cache hits) inline — it NEVER runs a gateway Submit;
//   * one submit-pump thread ("net_submit") drains a bounded queue of decoded
//     Submits in arrival order and calls the gateway. The pump is what defines
//     the platform's accepted order for remote traffic: whatever interleaving the
//     connections produce, each model's outcomes are a bitwise function of the
//     ACCEPTED subsequence the pump created (see the determinism argument in
//     docs/net.md). A full pump queue is answered kOverloaded — backpressure on
//     the wire, exactly like the gateway's own admission shed;
//   * verdict pushes run on the service's resolve lanes via
//     ClaimTicket::OnDelivered — encode + enqueue-to-connection only, never a
//     blocking send (a slow reader is disconnected by the dispatcher's outbound
//     bound, not waited on).
//
// Sessions & idempotent retries: a client attaches a session (its Hello's nonzero
// session id). Per session the server keeps a bounded dedup window of completed
// request ids -> cached SubmitAck (and Verdict, once pushed). A client that
// resubmits after a reconnect gets the CACHED ack — the claim is admitted at most
// once, so retries can never duplicate a claim or perturb the ledger. Rejected
// submissions are NOT cached: a kOverloaded retry re-attempts admission with the
// same request id.

#ifndef TAO_SRC_NET_RPC_SERVER_H_
#define TAO_SRC_NET_RPC_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/tcp_server.h"

namespace tao {

class ModelRegistry;
class ServingGateway;

struct RpcServerOptions {
  bool enabled = false;  // off by default: opt-in via GatewayOptions::rpc
  int port = 0;          // 0 = ephemeral
  std::string bind_address = "127.0.0.1";
  // Completed submissions remembered per session for idempotent retries. A
  // resubmission older than the window re-admits (a second claim) — clients must
  // bound their in-flight submissions below this.
  size_t dedup_window = 1024;
  // Dispatcher slow-reader bound (per connection).
  size_t max_outbound_bytes = 8u << 20;
  // Decoded Submits waiting for the pump; overflow is answered kOverloaded.
  size_t submit_queue_capacity = 4096;
};

class RpcServer {
 public:
  // `gateway` and `registry` outlive the server. A null `dispatcher` makes the
  // server own one; the gateway passes its shared net dispatcher so RPC and
  // monitoring traffic multiplex onto a single loop thread.
  RpcServer(ServingGateway& gateway, ModelRegistry& registry,
            const RpcServerOptions& options,
            std::shared_ptr<Dispatcher> dispatcher = nullptr);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  int port() const { return server_->port(); }

  // net/rpc/... counters (sessions, submits, dedup hits, verdicts, protocol
  // errors). The dispatcher's byte/connection counters are separate
  // (Dispatcher::Counters).
  std::vector<NamedCounter> Counters() const;

  Dispatcher& dispatcher() { return server_->dispatcher(); }

 private:
  class Handler;
  struct Session;
  struct Core;

  // Core holds everything handlers and verdict callbacks touch, behind a
  // shared_ptr: a verdict callback captured by a long-lived ClaimTicket can
  // outlive the RpcServer (teardown drains, but defensively the callback must
  // never dangle). Sends to closed connections are no-ops.
  std::shared_ptr<Core> core_;
  std::unique_ptr<TcpServer> server_;
  std::thread pump_;
};

}  // namespace tao

#endif  // TAO_SRC_NET_RPC_SERVER_H_
