// Wire protocol of the RPC gateway (docs/net.md).
//
// Every message on a tao connection is one frame:
//
//     u32 magic "TAON" | u32 version | u32 type | u64 request_id
//     | u32 payload_len | u32 payload_len ^ kWireLengthXor | u32 crc32(payload)
//     | payload bytes
//
// all little-endian. The framing discipline is the durability changelog's
// (src/durability/framing.h), lifted onto a socket: the redundant length check is
// what distinguishes a TORN stream (more bytes still in flight — wait) from
// CORRUPTION (a full header is present but inconsistent — a typed error, never a
// silent resync), and the CRC covers the payload so bit rot anywhere surfaces as
// kBadCrc instead of a garbage decode. Unlike the changelog, a frame also carries a
// protocol version (old clients get kBadVersion, not undefined behaviour) and a
// request id that correlates a Submit with its SubmitAck and eventual Verdict push.
//
// Payload codecs are CANONICAL in the sense of src/crypto/canonical.h: decoding is
// total (arbitrary bytes never crash or read out of bounds — the decode fuzz test
// drives this), and every ACCEPTED payload re-encodes byte-identical, so two
// distinct byte strings can never decode to the same value ("accept-but-differ is
// impossible"). Anything else is a typed malformed-payload reject.
//
// Message vocabulary:
//   Hello / HelloAck   session attach: client names its session id, server answers
//                      with its dedup window and the currently served model list
//   Submit / SubmitAck one claim submission; the ack carries the admission ticket
//                      (the service's global sequence number) or a typed reject
//                      mirroring every GatewayStatus code — kOverloaded IS the
//                      backpressure signal on the wire
//   Verdict            server push when the claim's lifecycle completes
//   Ping / Pong        liveness probe (empty payloads)
//   Goodbye            orderly close (server flushes, then disconnects)

#ifndef TAO_SRC_NET_FRAME_H_
#define TAO_SRC_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/tensor/tensor.h"

namespace tao {

struct BatchClaim;       // src/protocol/batch_verifier.h
enum class GatewayStatus;  // src/registry/serving_gateway.h

inline constexpr uint32_t kWireMagic = 0x4E4F4154u;  // "TAON" once little-endian
inline constexpr uint32_t kWireVersion = 1;
// Distinct from the changelog's kLengthCheckXor so a WAL file replayed at a socket
// (or vice versa) dies on kBadMagic/kBadLength instead of half-parsing.
inline constexpr uint32_t kWireLengthXor = 0xC0DE5A17u;
inline constexpr size_t kWireHeaderBytes = 4 * 6 + 8;  // 32
// Ceiling on one frame's payload; a header claiming more is corrupt, which also
// bounds the memory a malicious peer can make the decoder reserve.
inline constexpr uint32_t kMaxWirePayloadBytes = 16u << 20;

// Decode-side resource bounds (checked BEFORE any allocation sized from the wire).
inline constexpr uint32_t kMaxWireStringBytes = 256;
inline constexpr uint32_t kMaxWireTensorRank = 16;
inline constexpr uint64_t kMaxWireTensorElems = 1ull << 24;
inline constexpr uint32_t kMaxWireClaimInputs = 64;
inline constexpr uint32_t kMaxWireClaimPerturbations = 256;
inline constexpr uint32_t kMaxWireModelEntries = 4096;

enum class MessageType : uint32_t {
  kHello = 1,
  kHelloAck = 2,
  kSubmit = 3,
  kSubmitAck = 4,
  kVerdict = 5,
  kPing = 6,
  kPong = 7,
  kGoodbye = 8,
};

// Outcome of decoding the frame at `data[offset...]`. kTorn means "incomplete —
// keep the bytes and wait for more"; every other non-kOk status means the stream
// is unrecoverable and the connection must drop (there is no resync point).
enum class WireDecodeStatus {
  kOk,
  kTorn,
  kBadMagic,
  kBadVersion,
  kBadType,
  kBadLength,  // length check mismatch or payload over the ceiling
  kBadCrc,
};

const char* WireDecodeStatusName(WireDecodeStatus status);

struct WireFrame {
  MessageType type = MessageType::kPing;
  uint64_t request_id = 0;
  std::span<const uint8_t> payload;  // view into the decoded buffer
};

// Appends one framed message to `out`. Payload must fit kMaxWirePayloadBytes.
void AppendWireFrame(std::vector<uint8_t>& out, MessageType type,
                     uint64_t request_id, std::span<const uint8_t> payload);

// Decodes one frame. On kOk, `frame.payload` views into `data` and `offset`
// advances past the frame; on any other status `offset` is untouched. Never reads
// out of bounds.
WireDecodeStatus DecodeWireFrame(std::span<const uint8_t> data, size_t& offset,
                                 WireFrame& frame);

// Admission status on the wire. The first seven values mirror GatewayStatus
// one-to-one (ToWireStatus is a static_assert-guarded exhaustive switch, so adding
// a GatewayStatus without a wire mapping fails at compile time); the tail values
// are wire-layer rejects that never reach the gateway.
enum class WireStatus : uint32_t {
  kAccepted = 0,
  kUnknownModel = 1,
  kNotCommitted = 2,
  kNotServing = 3,
  kDraining = 4,
  kRetired = 5,
  kOverloaded = 6,    // the gateway's backpressure signal, surfaced to the client
  kMalformed = 7,     // Submit payload failed the canonical decode
  kUnknownDevice = 8, // claim names a device outside DeviceRegistry::Fleet()
  kCount,
};

const char* WireStatusName(WireStatus status);

// Statuses a client should back off and resubmit on (the condition is transient:
// load sheds recover, drains may be followed by a re-serve). Everything else is
// terminal for that submission.
bool IsRetriableStatus(WireStatus status);

WireStatus ToWireStatus(GatewayStatus status);

// --- payloads ---------------------------------------------------------------------

struct WireHello {
  uint64_t session_id = 0;  // client-chosen, nonzero; names the dedup session
};

struct WireModelEntry {
  uint64_t id = 0;
  std::string name;
};

struct WireHelloAck {
  uint32_t dedup_window = 0;            // server's per-session idempotency depth
  std::vector<WireModelEntry> models;   // models in kServing at attach time
};

struct WirePerturbation {
  int64_t node = -1;
  Tensor delta;
};

// A BatchClaim with device POINTERS replaced by fleet device NAMES (empty verifier
// name = unsupervised). The tensor codec is CanonicalBytes' layout — dtype tag,
// rank, dims, f32 element bits — with wire-side resource bounds.
struct WireClaim {
  std::vector<Tensor> inputs;
  std::vector<WirePerturbation> perturbations;
  std::string proposer_device;
  std::string verifier_device;
};

struct WireSubmit {
  uint64_t model_id = 0;
  uint64_t submitter = 0;
  WireClaim claim;
};

struct WireSubmitAck {
  WireStatus status = WireStatus::kMalformed;
  uint64_t ticket = 0;  // service sequence number; meaningful (and nonzero-or-first)
                        // only when status == kAccepted, 0 otherwise
};

struct WireVerdict {
  uint64_t ticket = 0;    // echoes the SubmitAck ticket
  uint64_t claim_id = 0;
  uint64_t model_id = 0;
  Digest c0{};
  uint32_t final_state = 0;  // ClaimState, validated < the enum's cardinality
  bool supervised = false;
  bool flagged = false;
  bool proposer_guilty = false;
  int64_t gas_used = 0;
};

// Canonical payload codecs. Every Decode* returns false (leaving `out`
// unspecified) on any deviation — short buffer, trailing bytes, bound overflow,
// non-canonical flag bits — and every accepted payload re-encodes byte-identical.
std::vector<uint8_t> EncodeHello(const WireHello& hello);
bool DecodeHello(std::span<const uint8_t> payload, WireHello& out);

std::vector<uint8_t> EncodeHelloAck(const WireHelloAck& ack);
bool DecodeHelloAck(std::span<const uint8_t> payload, WireHelloAck& out);

std::vector<uint8_t> EncodeSubmit(const WireSubmit& submit);
bool DecodeSubmit(std::span<const uint8_t> payload, WireSubmit& out);

std::vector<uint8_t> EncodeSubmitAck(const WireSubmitAck& ack);
bool DecodeSubmitAck(std::span<const uint8_t> payload, WireSubmitAck& out);

std::vector<uint8_t> EncodeVerdict(const WireVerdict& verdict);
bool DecodeVerdict(std::span<const uint8_t> payload, WireVerdict& out);

// --- BatchClaim bridging ----------------------------------------------------------

// Names the claim's devices for the wire. Devices must be null or fleet members.
WireClaim WireClaimFromBatchClaim(const BatchClaim& claim);

// Resolves device names against DeviceRegistry::Fleet(). Returns false when a
// nonempty name is not in the fleet (the kUnknownDevice reject); never aborts.
bool BatchClaimFromWireClaim(const WireClaim& wire, BatchClaim& out);

}  // namespace tao

#endif  // TAO_SRC_NET_FRAME_H_
