// Dense linear algebra: matmul (2-D), bmm (batched 3-D), linear (x·Wᵀ + b).
//
// Inner products route through DeviceProfile::DotStrided so that accumulation order
// and FMA policy — the real nondeterminism surface of GPU GEMM kernels — vary across
// the fleet. Bounds use the classic inner-product result
//   |fl(xᵀy) − xᵀy| ≤ γ_k · Σ|x_i||y_i|
// with γ_k or γ̃_k(λ) per BoundContext::mode; linear adds one bias-add rounding.

#include <algorithm>
#include <cmath>

#include "src/device/simd.h"
#include "src/ops/op_kernel.h"
#include "src/util/check.h"

namespace tao {
namespace {

// Output-column panel width for the packed fast path: 64 columns of packed-Bᵀ rows
// (64·k floats) stay resident in L2 while every row of the chunk sweeps them.
constexpr int64_t kColumnPanel = 64;

// Cache-blocked matmul fast path for vector-eligible profiles: packs Bᵀ into arena
// scratch so every inner product runs over two contiguous operands (the layout real
// GEMM kernels stage into their tiles), then walks column panels outer / rows inner
// for L2 reuse. Each output element is still exactly DotStrided(a_row, 1, b_col, n, k)
// under the fixed 8-lane tree — packing changes memory order, never summation order —
// so results are bitwise identical to the unpacked path.
void PackedMatmulPanel(const OpContext& ctx, const float* av, const float* btv,
                       float* ov, int64_t row_begin, int64_t row_end, int64_t n,
                       int64_t k) {
  for (int64_t j0 = 0; j0 < n; j0 += kColumnPanel) {
    const int64_t j1 = std::min(n, j0 + kColumnPanel);
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = av + i * k;
      for (int64_t j = j0; j < j1; ++j) {
        ov[static_cast<size_t>(i * n + j)] = simd::DotStrided8(arow, 1, btv + j * k, 1, k);
      }
    }
  }
}

class MatmulKernel : public OpKernel {
 public:
  std::string name() const override { return "matmul"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 2u);
    const Shape& a = input_shapes[0];
    const Shape& b = input_shapes[1];
    TAO_CHECK_EQ(a.rank(), 2);
    TAO_CHECK_EQ(b.rank(), 2);
    TAO_CHECK_EQ(a.dim(1), b.dim(0));
    return Shape{a.dim(0), b.dim(1)};
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& a = ctx.inputs[0];
    const Tensor& b = ctx.inputs[1];
    const int64_t m = a.shape().dim(0);
    const int64_t k = a.shape().dim(1);
    const int64_t n = b.shape().dim(1);
    Tensor out = ctx.AllocateOutput(Shape{m, n});
    const float* av = a.values().data();
    const float* bv = b.values().data();
    auto ov = out.mutable_values();
    // Packed fast path once the pack cost (n·k) amortizes over enough rows; small-m
    // products keep the direct loop, whose strided dots the device already vectorizes.
    if (ctx.device.vector_eligible() && m >= 4) {
      Tensor bt = ctx.AllocateScratch(Shape{n, k});
      float* btv = bt.mutable_values().data();
      ctx.For(n, [&](int64_t col_begin, int64_t col_end) {
        for (int64_t j = col_begin; j < col_end; ++j) {
          for (int64_t p = 0; p < k; ++p) {
            btv[static_cast<size_t>(j * k + p)] = bv[static_cast<size_t>(p * n + j)];
          }
        }
      });
      ctx.For(m, [&](int64_t row_begin, int64_t row_end) {
        PackedMatmulPanel(ctx, av, btv, ov.data(), row_begin, row_end, n, k);
      });
      ctx.Recycle(std::move(bt));
      return out;
    }
    // Rows write disjoint output ranges, so splitting the outer loop is bitwise safe.
    ctx.For(m, [&](int64_t row_begin, int64_t row_end) {
      for (int64_t i = row_begin; i < row_end; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          ov[static_cast<size_t>(i * n + j)] =
              ctx.device.DotStrided(av + i * k, 1, bv + j, n, k);
        }
      }
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    const Tensor& a = ctx.inputs[0];
    const Tensor& b = ctx.inputs[1];
    const int64_t m = a.shape().dim(0);
    const int64_t k = a.shape().dim(1);
    const int64_t n = b.shape().dim(1);
    const double gamma = AccumulationGamma(k, ctx.mode, ctx.lambda);
    DTensor bound(ctx.output.shape());
    const float* av = a.values().data();
    const float* bv = b.values().data();
    auto out = bound.mutable_values();
    ctx.For(m, [&](int64_t row_begin, int64_t row_end) {
      for (int64_t i = row_begin; i < row_end; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          double abs_dot = 0.0;
          for (int64_t p = 0; p < k; ++p) {
            abs_dot += std::abs(static_cast<double>(av[i * k + p])) *
                       std::abs(static_cast<double>(bv[p * n + j]));
          }
          out[static_cast<size_t>(i * n + j)] = gamma * abs_dot;
        }
      }
    });
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& a = ctx.inputs[0];
    const Tensor& b = ctx.inputs[1];
    const int64_t m = a.shape().dim(0);
    const int64_t k = a.shape().dim(1);
    const int64_t n = b.shape().dim(1);
    Tensor ga(a.shape());
    Tensor gb(b.shape());
    const auto av = a.values();
    const auto bv = b.values();
    const auto gv = ctx.grad_output.values();
    auto gav = ga.mutable_values();
    auto gbv = gb.mutable_values();
    // gA = g · Bᵀ
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        double acc = 0.0;
        for (int64_t j = 0; j < n; ++j) {
          acc += static_cast<double>(gv[static_cast<size_t>(i * n + j)]) *
                 static_cast<double>(bv[static_cast<size_t>(p * n + j)]);
        }
        gav[static_cast<size_t>(i * k + p)] = static_cast<float>(acc);
      }
    }
    // gB = Aᵀ · g
    for (int64_t p = 0; p < k; ++p) {
      for (int64_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (int64_t i = 0; i < m; ++i) {
          acc += static_cast<double>(av[static_cast<size_t>(i * k + p)]) *
                 static_cast<double>(gv[static_cast<size_t>(i * n + j)]);
        }
        gbv[static_cast<size_t>(p * n + j)] = static_cast<float>(acc);
      }
    }
    return {ga, gb};
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    return 2 * output_shape.numel() * input_shapes[0].dim(1);
  }
};

class BmmKernel : public OpKernel {
 public:
  std::string name() const override { return "bmm"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 2u);
    const Shape& a = input_shapes[0];
    const Shape& b = input_shapes[1];
    TAO_CHECK_EQ(a.rank(), 3);
    TAO_CHECK_EQ(b.rank(), 3);
    TAO_CHECK_EQ(a.dim(0), b.dim(0));
    TAO_CHECK_EQ(a.dim(2), b.dim(1));
    return Shape{a.dim(0), a.dim(1), b.dim(2)};
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& a = ctx.inputs[0];
    const Tensor& b = ctx.inputs[1];
    const int64_t batch = a.shape().dim(0);
    const int64_t m = a.shape().dim(1);
    const int64_t k = a.shape().dim(2);
    const int64_t n = b.shape().dim(2);
    Tensor out = ctx.AllocateOutput(Shape{batch, m, n});
    const float* av = a.values().data();
    const float* bv = b.values().data();
    auto ov = out.mutable_values();
    // Packed fast path: transpose every batch's B into one scratch block (same total
    // footprint as B itself), then run the flattened (batch, row) loop over contiguous
    // panels. Per-batch packing inside the row loop would repack k·n floats once per
    // row chunk; packing up front keeps both loops perfectly parallel.
    if (ctx.device.vector_eligible() && batch * m >= 4) {
      Tensor btall = ctx.AllocateScratch(Shape{batch, n, k});
      float* btv = btall.mutable_values().data();
      ctx.For(batch * n, [&](int64_t begin, int64_t end) {
        for (int64_t c = begin; c < end; ++c) {
          const int64_t t = c / n;
          const int64_t j = c % n;
          const float* src = bv + t * k * n;
          float* dst = btv + (t * n + j) * k;
          for (int64_t p = 0; p < k; ++p) {
            dst[p] = src[p * n + j];
          }
        }
      });
      ctx.For(batch * m, [&](int64_t begin, int64_t end) {
        for (int64_t r = begin; r < end; ++r) {
          const int64_t t = r / m;
          const int64_t i = r % m;
          const float* arow = av + (t * m + i) * k;
          const float* btbase = btv + t * n * k;
          float* orow = ov.data() + (t * m + i) * n;
          for (int64_t j = 0; j < n; ++j) {
            orow[j] = simd::DotStrided8(arow, 1, btbase + j * k, 1, k);
          }
        }
      });
      ctx.Recycle(std::move(btall));
      return out;
    }
    // Split over flattened (batch, row) pairs so small-batch bmm still parallelizes.
    ctx.For(batch * m, [&](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        const int64_t t = r / m;
        const int64_t i = r % m;
        const float* at = av + t * m * k;
        const float* bt = bv + t * k * n;
        for (int64_t j = 0; j < n; ++j) {
          ov[static_cast<size_t>((t * m + i) * n + j)] =
              ctx.device.DotStrided(at + i * k, 1, bt + j, n, k);
        }
      }
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    const Tensor& a = ctx.inputs[0];
    const Tensor& b = ctx.inputs[1];
    const int64_t batch = a.shape().dim(0);
    const int64_t m = a.shape().dim(1);
    const int64_t k = a.shape().dim(2);
    const int64_t n = b.shape().dim(2);
    const double gamma = AccumulationGamma(k, ctx.mode, ctx.lambda);
    DTensor bound(ctx.output.shape());
    const float* av = a.values().data();
    const float* bv = b.values().data();
    auto out = bound.mutable_values();
    ctx.For(batch * m, [&](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        const int64_t t = r / m;
        const int64_t i = r % m;
        const float* at = av + t * m * k;
        const float* bt = bv + t * k * n;
        for (int64_t j = 0; j < n; ++j) {
          double abs_dot = 0.0;
          for (int64_t p = 0; p < k; ++p) {
            abs_dot += std::abs(static_cast<double>(at[i * k + p])) *
                       std::abs(static_cast<double>(bt[p * n + j]));
          }
          out[static_cast<size_t>((t * m + i) * n + j)] = gamma * abs_dot;
        }
      }
    });
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& a = ctx.inputs[0];
    const Tensor& b = ctx.inputs[1];
    const int64_t batch = a.shape().dim(0);
    const int64_t m = a.shape().dim(1);
    const int64_t k = a.shape().dim(2);
    const int64_t n = b.shape().dim(2);
    Tensor ga(a.shape());
    Tensor gb(b.shape());
    const auto av = a.values();
    const auto bv = b.values();
    const auto gv = ctx.grad_output.values();
    auto gav = ga.mutable_values();
    auto gbv = gb.mutable_values();
    for (int64_t t = 0; t < batch; ++t) {
      const int64_t ab = t * m * k;
      const int64_t bb = t * k * n;
      const int64_t gbase = t * m * n;
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t p = 0; p < k; ++p) {
          double acc = 0.0;
          for (int64_t j = 0; j < n; ++j) {
            acc += static_cast<double>(gv[static_cast<size_t>(gbase + i * n + j)]) *
                   static_cast<double>(bv[static_cast<size_t>(bb + p * n + j)]);
          }
          gav[static_cast<size_t>(ab + i * k + p)] = static_cast<float>(acc);
        }
      }
      for (int64_t p = 0; p < k; ++p) {
        for (int64_t j = 0; j < n; ++j) {
          double acc = 0.0;
          for (int64_t i = 0; i < m; ++i) {
            acc += static_cast<double>(av[static_cast<size_t>(ab + i * k + p)]) *
                   static_cast<double>(gv[static_cast<size_t>(gbase + i * n + j)]);
          }
          gbv[static_cast<size_t>(bb + p * n + j)] = static_cast<float>(acc);
        }
      }
    }
    return {ga, gb};
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    return 2 * output_shape.numel() * input_shapes[0].dim(2);
  }
};

// linear(x, W, b): y[..., o] = <x[..., :], W[o, :]> + b[o]; x may have any batch rank.
class LinearKernel : public OpKernel {
 public:
  std::string name() const override { return "linear"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 3u);
    const Shape& x = input_shapes[0];
    const Shape& w = input_shapes[1];
    TAO_CHECK_EQ(w.rank(), 2);
    TAO_CHECK_EQ(x.dim(-1), w.dim(1));
    TAO_CHECK_EQ(input_shapes[2].numel(), w.dim(0));
    std::vector<int64_t> dims = x.dims();
    dims.back() = w.dim(0);
    return Shape(dims);
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const Tensor& w = ctx.inputs[1];
    const Tensor& b = ctx.inputs[2];
    const int64_t in = w.shape().dim(1);
    const int64_t out_features = w.shape().dim(0);
    const int64_t rows = x.numel() / in;
    Shape out_shape = InferShape({x.shape(), w.shape(), b.shape()}, ctx.attrs);
    Tensor out = ctx.AllocateOutput(std::move(out_shape));
    const float* xv = x.values().data();
    const float* wv = w.values().data();
    const auto bv = b.values();
    auto ov = out.mutable_values();
    ctx.For(rows, [&](int64_t row_begin, int64_t row_end) {
      for (int64_t r = row_begin; r < row_end; ++r) {
        for (int64_t o = 0; o < out_features; ++o) {
          const float dot = ctx.device.DotStrided(xv + r * in, 1, wv + o * in, 1, in);
          ov[static_cast<size_t>(r * out_features + o)] = dot + bv[static_cast<size_t>(o)];
        }
      }
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const Tensor& w = ctx.inputs[1];
    const int64_t in = w.shape().dim(1);
    const int64_t out_features = w.shape().dim(0);
    const int64_t rows = x.numel() / in;
    const double gamma = AccumulationGamma(in, ctx.mode, ctx.lambda);
    DTensor bound(ctx.output.shape());
    const float* xv = x.values().data();
    const float* wv = w.values().data();
    const auto yv = ctx.output.values();
    auto out = bound.mutable_values();
    ctx.For(rows, [&](int64_t row_begin, int64_t row_end) {
      for (int64_t r = row_begin; r < row_end; ++r) {
        for (int64_t o = 0; o < out_features; ++o) {
          double abs_dot = 0.0;
          for (int64_t p = 0; p < in; ++p) {
            abs_dot += std::abs(static_cast<double>(xv[r * in + p])) *
                       std::abs(static_cast<double>(wv[o * in + p]));
          }
          const size_t k = static_cast<size_t>(r * out_features + o);
          // Dot-product error plus one rounding of the bias add.
          out[k] = gamma * abs_dot + kUnitRoundoff * std::abs(static_cast<double>(yv[k]));
        }
      }
    });
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const Tensor& w = ctx.inputs[1];
    const int64_t in = w.shape().dim(1);
    const int64_t out_features = w.shape().dim(0);
    const int64_t rows = x.numel() / in;
    Tensor gx(x.shape());
    Tensor gw(w.shape());
    Tensor gb(ctx.inputs[2].shape());
    const auto xv = x.values();
    const auto wv = w.values();
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    auto gwv = gw.mutable_values();
    auto gbv = gb.mutable_values();
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t p = 0; p < in; ++p) {
        double acc = 0.0;
        for (int64_t o = 0; o < out_features; ++o) {
          acc += static_cast<double>(gv[static_cast<size_t>(r * out_features + o)]) *
                 static_cast<double>(wv[static_cast<size_t>(o * in + p)]);
        }
        gxv[static_cast<size_t>(r * in + p)] = static_cast<float>(acc);
      }
      for (int64_t o = 0; o < out_features; ++o) {
        const float g = gv[static_cast<size_t>(r * out_features + o)];
        gbv[static_cast<size_t>(o)] += g;
        for (int64_t p = 0; p < in; ++p) {
          gwv[static_cast<size_t>(o * in + p)] += g * xv[static_cast<size_t>(r * in + p)];
        }
      }
    }
    return {gx, gw, gb};
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    return 2 * output_shape.numel() * input_shapes[1].dim(1) + output_shape.numel();
  }
};

}  // namespace

void RegisterMatmulOps(OpRegistry& registry) {
  registry.Register(std::make_unique<MatmulKernel>());
  registry.Register(std::make_unique<BmmKernel>());
  registry.Register(std::make_unique<LinearKernel>());
}

}  // namespace tao
