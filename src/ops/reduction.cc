// Axis reductions: sum, mean (gamma-bounded), reduce_max / reduce_min (exact
// selections). Attr "axis" selects the reduced axis; "keepdim" (0/1) keeps it as 1.

#include <cmath>
#include <limits>

#include "src/ops/op_kernel.h"
#include "src/util/check.h"

namespace tao {
namespace {

struct ReduceView {
  int64_t outer = 1;
  int64_t n = 1;
  int64_t inner = 1;
  Shape out_shape;

  static ReduceView Make(const Shape& shape, const Attrs& attrs) {
    ReduceView view;
    const int64_t axis = shape.NormalizeAxis(attrs.GetInt("axis", -1));
    view.n = shape.dim(axis);
    for (int64_t i = 0; i < axis; ++i) {
      view.outer *= shape.dim(i);
    }
    for (int64_t i = axis + 1; i < shape.rank(); ++i) {
      view.inner *= shape.dim(i);
    }
    std::vector<int64_t> dims;
    for (int64_t i = 0; i < shape.rank(); ++i) {
      if (i == axis) {
        if (attrs.GetInt("keepdim", 0) != 0) {
          dims.push_back(1);
        }
      } else {
        dims.push_back(shape.dim(i));
      }
    }
    view.out_shape = Shape(dims);
    return view;
  }

  int64_t InOffset(int64_t o, int64_t i, int64_t in) const { return (o * n + i) * inner + in; }
  int64_t OutOffset(int64_t o, int64_t in) const { return o * inner + in; }
};

class ReduceKernelBase : public OpKernel {
 public:
  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 1u);
    return ReduceView::Make(input_shapes[0], attrs).out_shape;
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    return input_shapes[0].numel();
  }
};

class SumKernel : public ReduceKernelBase {
 public:
  std::string name() const override { return "sum"; }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const ReduceView view = ReduceView::Make(x.shape(), ctx.attrs);
    Tensor out = ctx.AllocateOutput(view.out_shape);
    const auto xv = x.values();
    auto ov = out.mutable_values();
    if (view.inner == 1) {
      // Last-axis reduction: slices are contiguous, so Accumulate reads the input in
      // place (and its SIMD path engages on vector-eligible profiles).
      ctx.For(view.outer, [&](int64_t begin, int64_t end) {
        for (int64_t o = begin; o < end; ++o) {
          ov[static_cast<size_t>(o)] = ctx.device.Accumulate(
              xv.subspan(static_cast<size_t>(o * view.n), static_cast<size_t>(view.n)));
        }
      });
      return out;
    }
    ctx.For(view.outer * view.inner, [&](int64_t begin, int64_t end) {
      Tensor gather = ctx.AllocateScratch(Shape{view.n});
      const std::span<float> buf = gather.mutable_values();
      for (int64_t r = begin; r < end; ++r) {
        const int64_t o = r / view.inner;
        const int64_t in = r % view.inner;
        for (int64_t i = 0; i < view.n; ++i) {
          buf[static_cast<size_t>(i)] = xv[static_cast<size_t>(view.InOffset(o, i, in))];
        }
        ov[static_cast<size_t>(view.OutOffset(o, in))] = ctx.device.Accumulate(buf);
      }
      ctx.Recycle(std::move(gather));
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const ReduceView view = ReduceView::Make(x.shape(), ctx.attrs);
    const double gamma = AccumulationGamma(view.n - 1, ctx.mode, ctx.lambda);
    DTensor bound(ctx.output.shape());
    const auto xv = x.values();
    auto bv = bound.mutable_values();
    for (int64_t o = 0; o < view.outer; ++o) {
      for (int64_t in = 0; in < view.inner; ++in) {
        double abs_sum = 0.0;
        for (int64_t i = 0; i < view.n; ++i) {
          abs_sum += std::abs(static_cast<double>(xv[static_cast<size_t>(
              view.InOffset(o, i, in))]));
        }
        bv[static_cast<size_t>(view.OutOffset(o, in))] = gamma * abs_sum;
      }
    }
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const ReduceView view = ReduceView::Make(ctx.inputs[0].shape(), ctx.attrs);
    Tensor gx(ctx.inputs[0].shape());
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    for (int64_t o = 0; o < view.outer; ++o) {
      for (int64_t in = 0; in < view.inner; ++in) {
        const float g = gv[static_cast<size_t>(view.OutOffset(o, in))];
        for (int64_t i = 0; i < view.n; ++i) {
          gxv[static_cast<size_t>(view.InOffset(o, i, in))] = g;
        }
      }
    }
    return {gx};
  }
};

class MeanKernel : public ReduceKernelBase {
 public:
  std::string name() const override { return "mean"; }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const ReduceView view = ReduceView::Make(x.shape(), ctx.attrs);
    Tensor out = ctx.AllocateOutput(view.out_shape);
    const auto xv = x.values();
    auto ov = out.mutable_values();
    const float n = static_cast<float>(view.n);
    if (view.inner == 1) {
      ctx.For(view.outer, [&](int64_t begin, int64_t end) {
        for (int64_t o = begin; o < end; ++o) {
          ov[static_cast<size_t>(o)] =
              ctx.device.Accumulate(xv.subspan(static_cast<size_t>(o * view.n),
                                               static_cast<size_t>(view.n))) /
              n;
        }
      });
      return out;
    }
    ctx.For(view.outer * view.inner, [&](int64_t begin, int64_t end) {
      Tensor gather = ctx.AllocateScratch(Shape{view.n});
      const std::span<float> buf = gather.mutable_values();
      for (int64_t r = begin; r < end; ++r) {
        const int64_t o = r / view.inner;
        const int64_t in = r % view.inner;
        for (int64_t i = 0; i < view.n; ++i) {
          buf[static_cast<size_t>(i)] = xv[static_cast<size_t>(view.InOffset(o, i, in))];
        }
        ov[static_cast<size_t>(view.OutOffset(o, in))] = ctx.device.Accumulate(buf) / n;
      }
      ctx.Recycle(std::move(gather));
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const ReduceView view = ReduceView::Make(x.shape(), ctx.attrs);
    const double gamma = AccumulationGamma(view.n - 1, ctx.mode, ctx.lambda);
    DTensor bound(ctx.output.shape());
    const auto xv = x.values();
    const auto yv = ctx.output.values();
    auto bv = bound.mutable_values();
    for (int64_t o = 0; o < view.outer; ++o) {
      for (int64_t in = 0; in < view.inner; ++in) {
        double abs_sum = 0.0;
        for (int64_t i = 0; i < view.n; ++i) {
          abs_sum += std::abs(static_cast<double>(xv[static_cast<size_t>(
              view.InOffset(o, i, in))]));
        }
        const size_t k = static_cast<size_t>(view.OutOffset(o, in));
        bv[k] = gamma * abs_sum / static_cast<double>(view.n) +
                kUnitRoundoff * std::abs(static_cast<double>(yv[k]));
      }
    }
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const ReduceView view = ReduceView::Make(ctx.inputs[0].shape(), ctx.attrs);
    Tensor gx(ctx.inputs[0].shape());
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    const float inv_n = 1.0f / static_cast<float>(view.n);
    for (int64_t o = 0; o < view.outer; ++o) {
      for (int64_t in = 0; in < view.inner; ++in) {
        const float g = gv[static_cast<size_t>(view.OutOffset(o, in))] * inv_n;
        for (int64_t i = 0; i < view.n; ++i) {
          gxv[static_cast<size_t>(view.InOffset(o, i, in))] = g;
        }
      }
    }
    return {gx};
  }
};

template <bool kIsMax>
class ExtremumKernel : public ReduceKernelBase {
 public:
  std::string name() const override { return kIsMax ? "reduce_max" : "reduce_min"; }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const ReduceView view = ReduceView::Make(x.shape(), ctx.attrs);
    Tensor out(view.out_shape);
    const auto xv = x.values();
    auto ov = out.mutable_values();
    for (int64_t o = 0; o < view.outer; ++o) {
      for (int64_t in = 0; in < view.inner; ++in) {
        float best = kIsMax ? -std::numeric_limits<float>::infinity()
                            : std::numeric_limits<float>::infinity();
        for (int64_t i = 0; i < view.n; ++i) {
          const float v = xv[static_cast<size_t>(view.InOffset(o, i, in))];
          best = kIsMax ? std::max(best, v) : std::min(best, v);
        }
        ov[static_cast<size_t>(view.OutOffset(o, in))] = best;
      }
    }
    return out;
  }

  // Selections are exact: zero bound (default).

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const ReduceView view = ReduceView::Make(x.shape(), ctx.attrs);
    Tensor gx(x.shape());
    const auto xv = x.values();
    const auto ov = ctx.output.values();
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    for (int64_t o = 0; o < view.outer; ++o) {
      for (int64_t in = 0; in < view.inner; ++in) {
        const float target = ov[static_cast<size_t>(view.OutOffset(o, in))];
        for (int64_t i = 0; i < view.n; ++i) {
          const size_t k = static_cast<size_t>(view.InOffset(o, i, in));
          if (xv[k] == target) {
            gxv[k] = gv[static_cast<size_t>(view.OutOffset(o, in))];
            break;  // route the gradient to the first extremum, PyTorch-style
          }
        }
      }
    }
    return {gx};
  }
};

}  // namespace

void RegisterReductionOps(OpRegistry& registry) {
  registry.Register(std::make_unique<SumKernel>());
  registry.Register(std::make_unique<MeanKernel>());
  registry.Register(std::make_unique<ExtremumKernel<true>>());
  registry.Register(std::make_unique<ExtremumKernel<false>>());
}

}  // namespace tao
