// Structural / data-movement operators: reshape, flatten, transpose, concat, slice,
// embedding, masked_fill, dropout (inference = identity), identity.
//
// None of these perform floating-point arithmetic, so all inherit the zero bound
// (Sec. 3.1: "pure data movement contributes no FP error"). masked_fill writes an exact
// constant. Embedding is a gather from the committed weight table.

#include <cmath>

#include "src/ops/op_kernel.h"
#include "src/util/check.h"

namespace tao {
namespace {

class ReshapeKernel : public OpKernel {
 public:
  std::string name() const override { return "reshape"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 1u);
    const Shape out(attrs.GetInts("shape"));
    TAO_CHECK_EQ(out.numel(), input_shapes[0].numel());
    return out;
  }

  Tensor Forward(const OpContext& ctx) const override {
    return ctx.inputs[0].Clone().WithShape(Shape(ctx.attrs.GetInts("shape")));
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    return {ctx.grad_output.Clone().WithShape(ctx.inputs[0].shape())};
  }
};

class FlattenKernel : public OpKernel {
 public:
  std::string name() const override { return "flatten"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 1u);
    const Shape& x = input_shapes[0];
    const int64_t start = attrs.GetInt("start_dim", 1);
    std::vector<int64_t> dims;
    int64_t tail = 1;
    for (int64_t i = 0; i < x.rank(); ++i) {
      if (i < start) {
        dims.push_back(x.dim(i));
      } else {
        tail *= x.dim(i);
      }
    }
    dims.push_back(tail);
    return Shape(dims);
  }

  Tensor Forward(const OpContext& ctx) const override {
    return ctx.inputs[0].Clone().WithShape(
        InferShape({ctx.inputs[0].shape()}, ctx.attrs));
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    return {ctx.grad_output.Clone().WithShape(ctx.inputs[0].shape())};
  }
};

class TransposeKernel : public OpKernel {
 public:
  std::string name() const override { return "transpose"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 1u);
    const Shape& x = input_shapes[0];
    const std::vector<int64_t> perm = attrs.GetInts("perm");
    TAO_CHECK_EQ(static_cast<int64_t>(perm.size()), x.rank());
    std::vector<int64_t> dims(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      dims[i] = x.dim(perm[i]);
    }
    return Shape(dims);
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const std::vector<int64_t> perm = ctx.attrs.GetInts("perm");
    const Shape out_shape = InferShape({x.shape()}, ctx.attrs);
    Tensor out(out_shape);
    const auto in_strides = x.shape().Strides();
    const auto xv = x.values();
    auto ov = out.mutable_values();
    for (int64_t o = 0; o < out.numel(); ++o) {
      const std::vector<int64_t> out_idx = out_shape.Delinearize(o);
      int64_t in_off = 0;
      for (size_t a = 0; a < perm.size(); ++a) {
        in_off += out_idx[a] * in_strides[static_cast<size_t>(perm[a])];
      }
      ov[static_cast<size_t>(o)] = xv[static_cast<size_t>(in_off)];
    }
    return out;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    // Transpose by the inverse permutation.
    const std::vector<int64_t> perm = ctx.attrs.GetInts("perm");
    std::vector<int64_t> inverse(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      inverse[static_cast<size_t>(perm[i])] = static_cast<int64_t>(i);
    }
    Attrs inv_attrs;
    inv_attrs.Set("perm", inverse);
    const OpContext fwd{DeviceRegistry::Reference(), {ctx.grad_output}, inv_attrs};
    return {Forward(fwd)};
  }
};

class ConcatKernel : public OpKernel {
 public:
  std::string name() const override { return "concat"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_GE(input_shapes.size(), 1u);
    const int64_t axis = input_shapes[0].NormalizeAxis(attrs.GetInt("axis", 0));
    std::vector<int64_t> dims = input_shapes[0].dims();
    for (size_t i = 1; i < input_shapes.size(); ++i) {
      TAO_CHECK_EQ(input_shapes[i].rank(), input_shapes[0].rank());
      for (int64_t a = 0; a < input_shapes[0].rank(); ++a) {
        if (a != axis) {
          TAO_CHECK_EQ(input_shapes[i].dim(a), input_shapes[0].dim(a));
        }
      }
      dims[static_cast<size_t>(axis)] += input_shapes[i].dim(axis);
    }
    return Shape(dims);
  }

  Tensor Forward(const OpContext& ctx) const override {
    std::vector<Shape> shapes;
    shapes.reserve(ctx.inputs.size());
    for (const Tensor& t : ctx.inputs) {
      shapes.push_back(t.shape());
    }
    const Shape out_shape = InferShape(shapes, ctx.attrs);
    const int64_t axis = out_shape.NormalizeAxis(ctx.attrs.GetInt("axis", 0));
    int64_t outer = 1;
    for (int64_t a = 0; a < axis; ++a) {
      outer *= out_shape.dim(a);
    }
    int64_t inner = 1;
    for (int64_t a = axis + 1; a < out_shape.rank(); ++a) {
      inner *= out_shape.dim(a);
    }
    Tensor out(out_shape);
    auto ov = out.mutable_values();
    const int64_t out_axis_dim = out_shape.dim(axis);
    int64_t axis_offset = 0;
    for (const Tensor& t : ctx.inputs) {
      const int64_t t_axis = t.shape().dim(axis);
      const auto tv = t.values();
      for (int64_t o = 0; o < outer; ++o) {
        for (int64_t a = 0; a < t_axis; ++a) {
          const int64_t src = (o * t_axis + a) * inner;
          const int64_t dst = (o * out_axis_dim + axis_offset + a) * inner;
          for (int64_t i = 0; i < inner; ++i) {
            ov[static_cast<size_t>(dst + i)] = tv[static_cast<size_t>(src + i)];
          }
        }
      }
      axis_offset += t_axis;
    }
    return out;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Shape& out_shape = ctx.grad_output.shape();
    const int64_t axis = out_shape.NormalizeAxis(ctx.attrs.GetInt("axis", 0));
    int64_t outer = 1;
    for (int64_t a = 0; a < axis; ++a) {
      outer *= out_shape.dim(a);
    }
    int64_t inner = 1;
    for (int64_t a = axis + 1; a < out_shape.rank(); ++a) {
      inner *= out_shape.dim(a);
    }
    const auto gv = ctx.grad_output.values();
    const int64_t out_axis_dim = out_shape.dim(axis);
    std::vector<Tensor> grads;
    int64_t axis_offset = 0;
    for (const Tensor& t : ctx.inputs) {
      const int64_t t_axis = t.shape().dim(axis);
      Tensor g(t.shape());
      auto gvv = g.mutable_values();
      for (int64_t o = 0; o < outer; ++o) {
        for (int64_t a = 0; a < t_axis; ++a) {
          const int64_t dst = (o * t_axis + a) * inner;
          const int64_t src = (o * out_axis_dim + axis_offset + a) * inner;
          for (int64_t i = 0; i < inner; ++i) {
            gvv[static_cast<size_t>(dst + i)] = gv[static_cast<size_t>(src + i)];
          }
        }
      }
      axis_offset += t_axis;
      grads.push_back(std::move(g));
    }
    return grads;
  }
};

class SliceKernel : public OpKernel {
 public:
  std::string name() const override { return "slice"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 1u);
    const Shape& x = input_shapes[0];
    const int64_t axis = x.NormalizeAxis(attrs.GetInt("axis", 0));
    const int64_t start = attrs.GetInt("start");
    const int64_t end = attrs.GetInt("end");
    TAO_CHECK(start >= 0 && end <= x.dim(axis) && start < end)
        << "slice [" << start << "," << end << ") invalid for " << x.ToString();
    std::vector<int64_t> dims = x.dims();
    dims[static_cast<size_t>(axis)] = end - start;
    return Shape(dims);
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const int64_t axis = x.shape().NormalizeAxis(ctx.attrs.GetInt("axis", 0));
    const int64_t start = ctx.attrs.GetInt("start");
    const Shape out_shape = InferShape({x.shape()}, ctx.attrs);
    int64_t outer = 1;
    for (int64_t a = 0; a < axis; ++a) {
      outer *= x.shape().dim(a);
    }
    int64_t inner = 1;
    for (int64_t a = axis + 1; a < x.shape().rank(); ++a) {
      inner *= x.shape().dim(a);
    }
    const int64_t in_axis = x.shape().dim(axis);
    const int64_t out_axis = out_shape.dim(axis);
    Tensor out(out_shape);
    const auto xv = x.values();
    auto ov = out.mutable_values();
    for (int64_t o = 0; o < outer; ++o) {
      for (int64_t a = 0; a < out_axis; ++a) {
        const int64_t src = (o * in_axis + start + a) * inner;
        const int64_t dst = (o * out_axis + a) * inner;
        for (int64_t i = 0; i < inner; ++i) {
          ov[static_cast<size_t>(dst + i)] = xv[static_cast<size_t>(src + i)];
        }
      }
    }
    return out;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const int64_t axis = x.shape().NormalizeAxis(ctx.attrs.GetInt("axis", 0));
    const int64_t start = ctx.attrs.GetInt("start");
    int64_t outer = 1;
    for (int64_t a = 0; a < axis; ++a) {
      outer *= x.shape().dim(a);
    }
    int64_t inner = 1;
    for (int64_t a = axis + 1; a < x.shape().rank(); ++a) {
      inner *= x.shape().dim(a);
    }
    const int64_t in_axis = x.shape().dim(axis);
    const int64_t out_axis = ctx.grad_output.shape().dim(axis);
    Tensor gx(x.shape());
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    for (int64_t o = 0; o < outer; ++o) {
      for (int64_t a = 0; a < out_axis; ++a) {
        const int64_t dst = (o * in_axis + start + a) * inner;
        const int64_t src = (o * out_axis + a) * inner;
        for (int64_t i = 0; i < inner; ++i) {
          gxv[static_cast<size_t>(dst + i)] = gv[static_cast<size_t>(src + i)];
        }
      }
    }
    return {gx};
  }
};

// embedding(table, indices): table is [V, D]; indices carry integral values in a float
// tensor (the graph IR is single-dtype); output shape is indices.shape + [D].
class EmbeddingKernel : public OpKernel {
 public:
  std::string name() const override { return "embedding"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 2u);
    TAO_CHECK_EQ(input_shapes[0].rank(), 2);
    std::vector<int64_t> dims = input_shapes[1].dims();
    dims.push_back(input_shapes[0].dim(1));
    return Shape(dims);
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& table = ctx.inputs[0];
    const Tensor& indices = ctx.inputs[1];
    const int64_t vocab = table.shape().dim(0);
    const int64_t dim = table.shape().dim(1);
    Tensor out(InferShape({table.shape(), indices.shape()}, ctx.attrs));
    const auto tv = table.values();
    const auto iv = indices.values();
    auto ov = out.mutable_values();
    for (int64_t i = 0; i < indices.numel(); ++i) {
      const int64_t id = static_cast<int64_t>(iv[static_cast<size_t>(i)]);
      TAO_CHECK(id >= 0 && id < vocab) << "embedding index " << id << " out of range";
      for (int64_t d = 0; d < dim; ++d) {
        ov[static_cast<size_t>(i * dim + d)] = tv[static_cast<size_t>(id * dim + d)];
      }
    }
    return out;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& table = ctx.inputs[0];
    const Tensor& indices = ctx.inputs[1];
    const int64_t dim = table.shape().dim(1);
    Tensor gt(table.shape());
    Tensor gi(indices.shape());  // indices are discrete: zero gradient
    const auto iv = indices.values();
    const auto gv = ctx.grad_output.values();
    auto gtv = gt.mutable_values();
    for (int64_t i = 0; i < indices.numel(); ++i) {
      const int64_t id = static_cast<int64_t>(iv[static_cast<size_t>(i)]);
      for (int64_t d = 0; d < dim; ++d) {
        gtv[static_cast<size_t>(id * dim + d)] += gv[static_cast<size_t>(i * dim + d)];
      }
    }
    return {gt, gi};
  }
};

// masked_fill(x, mask): out = mask > 0.5 ? value : x  (attr "value").
class MaskedFillKernel : public OpKernel {
 public:
  std::string name() const override { return "masked_fill"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 2u);
    TAO_CHECK(input_shapes[0] == input_shapes[1]);
    return input_shapes[0];
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const Tensor& mask = ctx.inputs[1];
    const float value = static_cast<float>(ctx.attrs.GetDouble("value", 0.0));
    Tensor out(x.shape());
    const auto xv = x.values();
    const auto mv = mask.values();
    auto ov = out.mutable_values();
    for (size_t i = 0; i < ov.size(); ++i) {
      ov[i] = mv[i] > 0.5f ? value : xv[i];
    }
    return out;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& mask = ctx.inputs[1];
    Tensor gx(ctx.inputs[0].shape());
    Tensor gm(mask.shape());  // discrete mask: zero gradient
    const auto mv = mask.values();
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    for (size_t i = 0; i < gxv.size(); ++i) {
      gxv[i] = mv[i] > 0.5f ? 0.0f : gv[i];
    }
    return {gx, gm};
  }
};

class IdentityLikeKernel : public OpKernel {
 public:
  explicit IdentityLikeKernel(std::string name) : name_(std::move(name)) {}

  std::string name() const override { return name_; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 1u);
    return input_shapes[0];
  }

  Tensor Forward(const OpContext& ctx) const override { return ctx.inputs[0].Clone(); }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    return {ctx.grad_output.Clone()};
  }

 private:
  std::string name_;
};

}  // namespace

void RegisterStructuralOps(OpRegistry& registry) {
  registry.Register(std::make_unique<ReshapeKernel>());
  registry.Register(std::make_unique<FlattenKernel>());
  registry.Register(std::make_unique<TransposeKernel>());
  registry.Register(std::make_unique<ConcatKernel>());
  registry.Register(std::make_unique<SliceKernel>());
  registry.Register(std::make_unique<EmbeddingKernel>());
  registry.Register(std::make_unique<MaskedFillKernel>());
  // Inference-mode dropout is the identity map.
  registry.Register(std::make_unique<IdentityLikeKernel>("dropout"));
  registry.Register(std::make_unique<IdentityLikeKernel>("identity"));
}

}  // namespace tao
