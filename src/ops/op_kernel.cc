#include "src/ops/op_kernel.h"

#include <mutex>

#include "src/runtime/arena.h"
#include "src/runtime/parallel_for.h"
#include "src/util/check.h"

namespace tao {
namespace {

// Shared dispatch for OpContext::For / BoundContext::For so the inline-fallback
// semantics cannot diverge between Forward and Bound.
void RunChunked(const ParallelFor* parallel, int64_t n,
                const std::function<void(int64_t, int64_t)>& fn, int64_t grain) {
  if (parallel != nullptr) {
    (*parallel)(n, fn, grain);
  } else {
    fn(0, n);
  }
}

}  // namespace

void OpContext::For(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                    int64_t grain) const {
  RunChunked(parallel, n, fn, grain);
}

Tensor OpContext::AllocateOutput(Shape shape) const {
  return arena != nullptr ? arena->Allocate(shape) : Tensor(std::move(shape));
}

Tensor OpContext::AllocateScratch(Shape shape) const {
  return arena != nullptr ? arena->Allocate(shape) : Tensor(std::move(shape));
}

void OpContext::Recycle(Tensor&& scratch) const {
  if (arena != nullptr) {
    arena->Recycle(std::move(scratch));
  }
}

void BoundContext::For(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                       int64_t grain) const {
  RunChunked(parallel, n, fn, grain);
}

DTensor BoundContext::AllocateScratch(Shape shape) const {
  return arena != nullptr ? arena->AllocateD(shape) : DTensor(std::move(shape));
}

void BoundContext::Recycle(DTensor&& scratch) const {
  if (arena != nullptr) {
    arena->Recycle(std::move(scratch));
  }
}

DTensor OpKernel::Bound(const BoundContext& ctx) const {
  // Pure data movement contributes no floating-point error.
  return DTensor::Zeros(ctx.output.shape());
}

std::vector<Tensor> OpKernel::Vjp(const VjpContext& ctx) const {
  TAO_CHECK(false) << "operator '" << name() << "' does not implement Vjp";
  return {};
}

int64_t OpKernel::Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                        const Attrs& attrs) const {
  return 0;
}

OpRegistry& OpRegistry::Instance() {
  static OpRegistry* registry = new OpRegistry();
  return *registry;
}

void OpRegistry::Register(std::unique_ptr<OpKernel> kernel) {
  const std::string name = kernel->name();
  TAO_CHECK(kernels_.find(name) == kernels_.end()) << "duplicate kernel " << name;
  kernels_[name] = std::move(kernel);
}

const OpKernel& OpRegistry::Get(const std::string& name) const {
  const auto it = kernels_.find(name);
  TAO_CHECK(it != kernels_.end()) << "unknown operator '" << name << "'";
  return *it->second;
}

bool OpRegistry::Contains(const std::string& name) const { return kernels_.count(name) > 0; }

std::vector<std::string> OpRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(kernels_.size());
  for (const auto& [name, kernel] : kernels_) {
    names.push_back(name);
  }
  return names;
}

void RegisterAllOps() {
  static std::once_flag once;
  std::call_once(once, [] {
    OpRegistry& registry = OpRegistry::Instance();
    RegisterElementwiseOps(registry);
    RegisterActivationOps(registry);
    RegisterSoftmaxOps(registry);
    RegisterNormalizationOps(registry);
    RegisterMatmulOps(registry);
    RegisterConvOps(registry);
    RegisterPoolingOps(registry);
    RegisterReductionOps(registry);
    RegisterStructuralOps(registry);
  });
}

}  // namespace tao
