// Normalization operators: layer_norm, rms_norm, batch_norm (inference), group_norm.
//
// Inputs follow PyTorch conventions:
//   layer_norm(x, weight, bias)                — normalizes the last axis, attr "eps"
//   rms_norm(x, weight)                        — RMS over the last axis, attr "eps"
//   batch_norm(x, weight, bias, mean, var)     — per-channel (axis 1) affine, attr "eps"
//   group_norm(x, weight, bias)                — attrs "groups", "eps"; x is [N,C,*]
//
// Bound templates decompose each operator into primitive steps (reduction for the
// statistics, rsqrt, scale/shift) and combine propagated first-order sensitivities
// with fresh rounding per Sec. 3.1. Reduction steps use gamma_k / gamma~_k(lambda)
// according to BoundContext::mode.

#include <cmath>

#include "src/device/simd.h"
#include "src/ops/op_kernel.h"
#include "src/util/check.h"

namespace tao {
namespace {

// Shared per-group normalization bound: given the group's raw values, returns the
// element-wise error of t_i = (x_i - mu) * rsqrt(var + eps) (before affine), along with
// propagated stats. n is the group size.
struct NormGroupBound {
  double eps_mu = 0.0;
  double eps_r = 0.0;   // error of the rsqrt factor
  double r = 0.0;       // the rsqrt factor itself
  double mu = 0.0;
};

// `group` is the group's contiguous value range (rows and [image, group] blocks are
// both contiguous in memory, so no index gather is needed).
NormGroupBound ComputeGroupStatsBound(std::span<const float> group, double eps_attr,
                                      double gamma, const DeviceProfile& device) {
  const int64_t n = static_cast<int64_t>(group.size());
  const double u = kUnitRoundoff;
  double sum = 0.0;
  double abs_sum = 0.0;
  for (const float x : group) {
    sum += x;
    abs_sum += std::abs(static_cast<double>(x));
  }
  const double mu = sum / static_cast<double>(n);
  // mean: reduction error then one division rounding.
  const double eps_mu = gamma * abs_sum / static_cast<double>(n) + u * std::abs(mu);

  double var = 0.0;
  double sum_sq = 0.0;
  double sum_eps_sq = 0.0;
  for (const float x : group) {
    const double d = static_cast<double>(x) - mu;
    const double eps_d = eps_mu + u * std::abs(d);
    const double sq = d * d;
    const double eps_sq = 2.0 * std::abs(d) * eps_d + u * sq;
    var += sq;
    sum_sq += sq;
    sum_eps_sq += eps_sq;
  }
  var /= static_cast<double>(n);
  const double eps_var =
      (gamma * sum_sq + (gamma + 1.0) * sum_eps_sq) / static_cast<double>(n) + u * var;
  const double a = var + eps_attr;
  const double eps_a = eps_var + u * a;
  const double r = 1.0 / std::sqrt(a);
  const double eps_r = 0.5 * std::pow(a, -1.5) * eps_a + UlpError(r, device.RsqrtUlp());

  NormGroupBound out;
  out.eps_mu = eps_mu;
  out.eps_r = eps_r;
  out.r = r;
  out.mu = mu;
  return out;
}

// ----------------------------------- layer_norm -----------------------------------

class LayerNormKernel : public OpKernel {
 public:
  std::string name() const override { return "layer_norm"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 3u);
    const int64_t d = input_shapes[0].dim(-1);
    TAO_CHECK_EQ(input_shapes[1].numel(), d);
    TAO_CHECK_EQ(input_shapes[2].numel(), d);
    return input_shapes[0];
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const Tensor& weight = ctx.inputs[1];
    const Tensor& bias = ctx.inputs[2];
    const double eps = ctx.attrs.GetDouble("eps", 1e-5);
    const int64_t d = x.shape().dim(-1);
    const int64_t rows = x.numel() / d;
    Tensor out = ctx.AllocateOutput(x.shape());
    const auto xv = x.values();
    const auto wv = weight.values();
    const auto bv = bias.values();
    auto ov = out.mutable_values();
    // Rows are independent and contiguous, so statistics reduce over the input in
    // place; only the squares need scratch, drawn per chunk from the arena.
    ctx.For(rows, [&](int64_t row_begin, int64_t row_end) {
      Tensor sq_scratch = ctx.AllocateScratch(Shape{d});
      float* sq = sq_scratch.mutable_values().data();
      for (int64_t r = row_begin; r < row_end; ++r) {
        const size_t base = static_cast<size_t>(r * d);
        const float* row = xv.data() + base;
        const float mean =
            ctx.device.Accumulate(std::span<const float>(row, static_cast<size_t>(d))) /
            static_cast<float>(d);
        simd::CenterSquare(row, mean, sq, d);
        const float var =
            ctx.device.Accumulate(std::span<const float>(sq, static_cast<size_t>(d))) /
            static_cast<float>(d);
        const float inv = ctx.device.Rsqrt(var + static_cast<float>(eps));
        simd::NormAffine(row, mean, inv, wv.data(), bv.data(), ov.data() + base, d);
      }
      ctx.Recycle(std::move(sq_scratch));
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const Tensor& weight = ctx.inputs[1];
    const double eps = ctx.attrs.GetDouble("eps", 1e-5);
    const int64_t d = x.shape().dim(-1);
    const int64_t rows = x.numel() / d;
    const double u = kUnitRoundoff;
    const double gamma = AccumulationGamma(d - 1, ctx.mode, ctx.lambda);
    DTensor bound(ctx.output.shape());
    const auto xv = x.values();
    const auto wv = weight.values();
    const auto yv = ctx.output.values();
    auto bnd = bound.mutable_values();
    ctx.For(rows, [&](int64_t row_begin, int64_t row_end) {
      for (int64_t r = row_begin; r < row_end; ++r) {
        const size_t base = static_cast<size_t>(r * d);
        const NormGroupBound g = ComputeGroupStatsBound(
            xv.subspan(base, static_cast<size_t>(d)), eps, gamma, ctx.device);
        for (int64_t i = 0; i < d; ++i) {
          const size_t k = base + static_cast<size_t>(i);
          const double di = static_cast<double>(xv[k]) - g.mu;
          const double eps_d = g.eps_mu + u * std::abs(di);
          const double t = di * g.r;
          const double eps_t = std::abs(di) * g.eps_r + g.r * eps_d + u * std::abs(t);
          const double w = std::abs(static_cast<double>(wv[static_cast<size_t>(i)]));
          // y = t*w + b: propagate through the scale, round the product, round the add.
          bnd[k] = w * eps_t + u * std::abs(t) * w + u * std::abs(static_cast<double>(yv[k]));
        }
      }
    });
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const Tensor& weight = ctx.inputs[1];
    const double eps = ctx.attrs.GetDouble("eps", 1e-5);
    const int64_t d = x.shape().dim(-1);
    const int64_t rows = x.numel() / d;
    Tensor gx(x.shape());
    Tensor gw(weight.shape());
    Tensor gb(ctx.inputs[2].shape());
    const auto xv = x.values();
    const auto wv = weight.values();
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    auto gwv = gw.mutable_values();
    auto gbv = gb.mutable_values();
    for (int64_t r = 0; r < rows; ++r) {
      const size_t base = static_cast<size_t>(r * d);
      double mean = 0.0;
      for (int64_t i = 0; i < d; ++i) {
        mean += xv[base + static_cast<size_t>(i)];
      }
      mean /= static_cast<double>(d);
      double var = 0.0;
      for (int64_t i = 0; i < d; ++i) {
        const double c = xv[base + static_cast<size_t>(i)] - mean;
        var += c * c;
      }
      var /= static_cast<double>(d);
      const double inv = 1.0 / std::sqrt(var + eps);
      // h = w*g; grad_x = inv*(h - mean(h) - xhat*mean(h*xhat)).
      double mean_h = 0.0;
      double mean_hx = 0.0;
      for (int64_t i = 0; i < d; ++i) {
        const size_t k = base + static_cast<size_t>(i);
        const double xhat = (xv[k] - mean) * inv;
        const double h = static_cast<double>(wv[static_cast<size_t>(i)]) * gv[k];
        mean_h += h;
        mean_hx += h * xhat;
      }
      mean_h /= static_cast<double>(d);
      mean_hx /= static_cast<double>(d);
      for (int64_t i = 0; i < d; ++i) {
        const size_t k = base + static_cast<size_t>(i);
        const double xhat = (xv[k] - mean) * inv;
        const double h = static_cast<double>(wv[static_cast<size_t>(i)]) * gv[k];
        gxv[k] = static_cast<float>(inv * (h - mean_h - xhat * mean_hx));
        gwv[static_cast<size_t>(i)] += static_cast<float>(gv[k] * xhat);
        gbv[static_cast<size_t>(i)] += gv[k];
      }
    }
    return {gx, gw, gb};
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    return output_shape.numel() * 8;
  }
};

// ------------------------------------ rms_norm -------------------------------------

class RmsNormKernel : public OpKernel {
 public:
  std::string name() const override { return "rms_norm"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 2u);
    TAO_CHECK_EQ(input_shapes[1].numel(), input_shapes[0].dim(-1));
    return input_shapes[0];
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const Tensor& weight = ctx.inputs[1];
    const double eps = ctx.attrs.GetDouble("eps", 1e-6);
    const int64_t d = x.shape().dim(-1);
    const int64_t rows = x.numel() / d;
    Tensor out = ctx.AllocateOutput(x.shape());
    const auto xv = x.values();
    const auto wv = weight.values();
    auto ov = out.mutable_values();
    ctx.For(rows, [&](int64_t row_begin, int64_t row_end) {
      Tensor sq_scratch = ctx.AllocateScratch(Shape{d});
      float* sq = sq_scratch.mutable_values().data();
      for (int64_t r = row_begin; r < row_end; ++r) {
        const size_t base = static_cast<size_t>(r * d);
        const float* row = xv.data() + base;
        simd::Square(row, sq, d);
        const float ms =
            ctx.device.Accumulate(std::span<const float>(sq, static_cast<size_t>(d))) /
            static_cast<float>(d);
        const float inv = ctx.device.Rsqrt(ms + static_cast<float>(eps));
        simd::ScaleWeight(row, inv, wv.data(), ov.data() + base, d);
      }
      ctx.Recycle(std::move(sq_scratch));
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const Tensor& weight = ctx.inputs[1];
    const double eps = ctx.attrs.GetDouble("eps", 1e-6);
    const int64_t d = x.shape().dim(-1);
    const int64_t rows = x.numel() / d;
    const double u = kUnitRoundoff;
    const double gamma = AccumulationGamma(d - 1, ctx.mode, ctx.lambda);
    DTensor bound(ctx.output.shape());
    const auto xv = x.values();
    const auto wv = weight.values();
    const auto yv = ctx.output.values();
    auto bnd = bound.mutable_values();
    ctx.For(rows, [&](int64_t row_begin, int64_t row_end) {
      for (int64_t r = row_begin; r < row_end; ++r) {
        const size_t base = static_cast<size_t>(r * d);
        double sum_sq = 0.0;
        double sum_eps_sq = 0.0;
        for (int64_t i = 0; i < d; ++i) {
          const double v = xv[base + static_cast<size_t>(i)];
          const double sq = v * v;
          sum_sq += sq;
          sum_eps_sq += u * sq;  // one rounding per square
        }
        const double ms = sum_sq / static_cast<double>(d);
        const double eps_ms =
            (gamma * sum_sq + (gamma + 1.0) * sum_eps_sq) / static_cast<double>(d) + u * ms;
        const double a = ms + eps;
        const double eps_a = eps_ms + u * a;
        const double inv = 1.0 / std::sqrt(a);
        const double eps_inv =
            0.5 * std::pow(a, -1.5) * eps_a + UlpError(inv, ctx.device.RsqrtUlp());
        for (int64_t i = 0; i < d; ++i) {
          const size_t k = base + static_cast<size_t>(i);
          const double xi = std::abs(static_cast<double>(xv[k]));
          const double t = xi * inv;
          const double eps_t = xi * eps_inv + u * t;
          const double w = std::abs(static_cast<double>(wv[static_cast<size_t>(i)]));
          bnd[k] = w * eps_t + u * std::abs(static_cast<double>(yv[k]));
        }
      }
    });
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const Tensor& weight = ctx.inputs[1];
    const double eps = ctx.attrs.GetDouble("eps", 1e-6);
    const int64_t d = x.shape().dim(-1);
    const int64_t rows = x.numel() / d;
    Tensor gx(x.shape());
    Tensor gw(weight.shape());
    const auto xv = x.values();
    const auto wv = weight.values();
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    auto gwv = gw.mutable_values();
    for (int64_t r = 0; r < rows; ++r) {
      const size_t base = static_cast<size_t>(r * d);
      double sum_sq = 0.0;
      for (int64_t i = 0; i < d; ++i) {
        const double v = xv[base + static_cast<size_t>(i)];
        sum_sq += v * v;
      }
      const double ms = sum_sq / static_cast<double>(d);
      const double inv = 1.0 / std::sqrt(ms + eps);
      double dot = 0.0;  // sum_i g_i w_i x_i
      for (int64_t i = 0; i < d; ++i) {
        const size_t k = base + static_cast<size_t>(i);
        dot += static_cast<double>(gv[k]) * wv[static_cast<size_t>(i)] * xv[k];
      }
      const double scale = inv * inv * inv / static_cast<double>(d);
      for (int64_t i = 0; i < d; ++i) {
        const size_t k = base + static_cast<size_t>(i);
        gxv[k] = static_cast<float>(inv * gv[k] * wv[static_cast<size_t>(i)] -
                                    scale * dot * xv[k]);
        gwv[static_cast<size_t>(i)] += static_cast<float>(gv[k] * xv[k] * inv);
      }
    }
    return {gx, gw};
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    return output_shape.numel() * 5;
  }
};

// ----------------------------------- batch_norm ------------------------------------

class BatchNormKernel : public OpKernel {
 public:
  std::string name() const override { return "batch_norm"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 5u);
    const int64_t c = input_shapes[0].dim(1);
    for (size_t i = 1; i < 5; ++i) {
      TAO_CHECK_EQ(input_shapes[i].numel(), c);
    }
    return input_shapes[0];
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const auto wv = ctx.inputs[1].values();
    const auto bv = ctx.inputs[2].values();
    const auto mv = ctx.inputs[3].values();
    const auto vv = ctx.inputs[4].values();
    const double eps = ctx.attrs.GetDouble("eps", 1e-5);
    const int64_t c = x.shape().dim(1);
    const int64_t spatial = x.numel() / (x.shape().dim(0) * c);
    Tensor out = ctx.AllocateOutput(x.shape());
    const auto xv = x.values();
    auto ov = out.mutable_values();
    const int64_t batch = x.shape().dim(0);
    ctx.For(batch * c, [&](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        const int64_t ch = r % c;
        const size_t ci = static_cast<size_t>(ch);
        const float inv = ctx.device.Rsqrt(vv[ci] + static_cast<float>(eps));
        const float scale = wv[ci] * inv;
        const size_t base = static_cast<size_t>(r * spatial);
        simd::AffineScalar(xv.data() + base, mv[ci], scale, bv[ci], ov.data() + base,
                           spatial);
      }
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    // Per-channel constants (mean/var/weight) are committed inputs; the per-element
    // chain is d = x - m (1 rounding), t = d*scale where scale = w*rsqrt(v+eps)
    // (rsqrt ULP + 2 roundings), y = t + b (1 rounding).
    const Tensor& x = ctx.inputs[0];
    const auto wv = ctx.inputs[1].values();
    const auto vv = ctx.inputs[4].values();
    const auto mv = ctx.inputs[3].values();
    const double eps = ctx.attrs.GetDouble("eps", 1e-5);
    const double u = kUnitRoundoff;
    const int64_t c = x.shape().dim(1);
    const int64_t spatial = x.numel() / (x.shape().dim(0) * c);
    DTensor bound(ctx.output.shape());
    const auto xv = x.values();
    const auto yv = ctx.output.values();
    auto bnd = bound.mutable_values();
    const int64_t batch = x.shape().dim(0);
    ctx.For(batch * c, [&](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        const int64_t ch = r % c;
        const size_t ci = static_cast<size_t>(ch);
        const double a = static_cast<double>(vv[ci]) + eps;
        const double inv = 1.0 / std::sqrt(a);
        const double eps_inv = u * a * 0.5 * std::pow(a, -1.5) +
                               UlpError(inv, ctx.device.RsqrtUlp());
        const double w = std::abs(static_cast<double>(wv[ci]));
        const double scale = w * inv;
        const double eps_scale = w * eps_inv + u * scale;
        const size_t base = static_cast<size_t>(r * spatial);
        for (int64_t s = 0; s < spatial; ++s) {
          const size_t k = base + static_cast<size_t>(s);
          const double d = std::abs(static_cast<double>(xv[k]) - static_cast<double>(mv[ci]));
          const double eps_d = u * d;
          const double t = d * scale;
          const double eps_t = d * eps_scale + scale * eps_d + u * t;
          bnd[k] = eps_t + u * std::abs(static_cast<double>(yv[k]));
        }
      }
    });
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    // Inference-mode batch norm is an affine map per channel: grad_x = g * w * inv.
    const Tensor& x = ctx.inputs[0];
    const auto wv = ctx.inputs[1].values();
    const auto vv = ctx.inputs[4].values();
    const double eps = ctx.attrs.GetDouble("eps", 1e-5);
    const int64_t c = x.shape().dim(1);
    const int64_t spatial = x.numel() / (x.shape().dim(0) * c);
    Tensor gx(x.shape());
    Tensor gw(ctx.inputs[1].shape());
    Tensor gb(ctx.inputs[2].shape());
    Tensor gm(ctx.inputs[3].shape());
    Tensor gv_rm(ctx.inputs[4].shape());
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    for (int64_t n = 0; n < x.shape().dim(0); ++n) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const size_t ci = static_cast<size_t>(ch);
        const float inv = 1.0f / std::sqrt(vv[ci] + static_cast<float>(eps));
        const float scale = wv[ci] * inv;
        const size_t base = static_cast<size_t>((n * c + ch) * spatial);
        for (int64_t s = 0; s < spatial; ++s) {
          gxv[base + static_cast<size_t>(s)] = gv[base + static_cast<size_t>(s)] * scale;
        }
      }
    }
    return {gx, gw, gb, gm, gv_rm};
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    return output_shape.numel() * 4;
  }
};

// ----------------------------------- group_norm ------------------------------------

class GroupNormKernel : public OpKernel {
 public:
  std::string name() const override { return "group_norm"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 3u);
    const int64_t c = input_shapes[0].dim(1);
    TAO_CHECK_EQ(input_shapes[1].numel(), c);
    TAO_CHECK_EQ(input_shapes[2].numel(), c);
    TAO_CHECK_EQ(c % attrs.GetInt("groups"), 0);
    return input_shapes[0];
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const auto wv = ctx.inputs[1].values();
    const auto bv = ctx.inputs[2].values();
    const int64_t groups = ctx.attrs.GetInt("groups");
    const double eps = ctx.attrs.GetDouble("eps", 1e-5);
    const int64_t batch = x.shape().dim(0);
    const int64_t c = x.shape().dim(1);
    const int64_t spatial = x.numel() / (batch * c);
    const int64_t per_group = c / groups;
    const int64_t group_elems = per_group * spatial;
    Tensor out = ctx.AllocateOutput(x.shape());
    const auto xv = x.values();
    auto ov = out.mutable_values();
    // Split over flattened (image, group) pairs. A group's values are contiguous, so
    // stats reduce over the input directly; squares use per-chunk arena scratch, and
    // the affine epilogue runs per channel (w and b are constant across a channel's
    // spatial extent).
    ctx.For(batch * groups, [&](int64_t begin, int64_t end) {
      Tensor sq_scratch = ctx.AllocateScratch(Shape{group_elems});
      float* sq = sq_scratch.mutable_values().data();
      for (int64_t r = begin; r < end; ++r) {
        const int64_t g = r % groups;
        const size_t base = static_cast<size_t>(r * per_group * spatial);
        const float* group = xv.data() + base;
        const float mean =
            ctx.device.Accumulate(
                std::span<const float>(group, static_cast<size_t>(group_elems))) /
            static_cast<float>(group_elems);
        simd::CenterSquare(group, mean, sq, group_elems);
        const float var =
            ctx.device.Accumulate(
                std::span<const float>(sq, static_cast<size_t>(group_elems))) /
            static_cast<float>(group_elems);
        const float inv = ctx.device.Rsqrt(var + static_cast<float>(eps));
        for (int64_t cl = 0; cl < per_group; ++cl) {
          const size_t ch = static_cast<size_t>(g * per_group + cl);
          simd::NormAffineScalar(group + cl * spatial, mean, inv, wv[ch], bv[ch],
                                 ov.data() + base + cl * spatial, spatial);
        }
      }
      ctx.Recycle(std::move(sq_scratch));
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const auto wv = ctx.inputs[1].values();
    const int64_t groups = ctx.attrs.GetInt("groups");
    const double eps = ctx.attrs.GetDouble("eps", 1e-5);
    const int64_t batch = x.shape().dim(0);
    const int64_t c = x.shape().dim(1);
    const int64_t spatial = x.numel() / (batch * c);
    const int64_t per_group = c / groups;
    const int64_t group_elems = per_group * spatial;
    const double u = kUnitRoundoff;
    const double gamma = AccumulationGamma(group_elems - 1, ctx.mode, ctx.lambda);
    DTensor bound(ctx.output.shape());
    const auto xv = x.values();
    const auto yv = ctx.output.values();
    auto bnd = bound.mutable_values();
    ctx.For(batch * groups, [&](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        const int64_t g = r % groups;
        const size_t base = static_cast<size_t>(r * per_group * spatial);
        const NormGroupBound st = ComputeGroupStatsBound(
            xv.subspan(base, static_cast<size_t>(group_elems)), eps, gamma, ctx.device);
        for (int64_t i = 0; i < group_elems; ++i) {
          const int64_t ch = g * per_group + i / spatial;
          const size_t k = base + static_cast<size_t>(i);
          const double di = static_cast<double>(xv[k]) - st.mu;
          const double eps_d = st.eps_mu + u * std::abs(di);
          const double t = di * st.r;
          const double eps_t = std::abs(di) * st.eps_r + st.r * eps_d + u * std::abs(t);
          const double w = std::abs(static_cast<double>(wv[static_cast<size_t>(ch)]));
          bnd[k] = w * eps_t + u * std::abs(t) * w + u * std::abs(static_cast<double>(yv[k]));
        }
      }
    });
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const auto wv = ctx.inputs[1].values();
    const int64_t groups = ctx.attrs.GetInt("groups");
    const double eps = ctx.attrs.GetDouble("eps", 1e-5);
    const int64_t batch = x.shape().dim(0);
    const int64_t c = x.shape().dim(1);
    const int64_t spatial = x.numel() / (batch * c);
    const int64_t per_group = c / groups;
    const int64_t group_elems = per_group * spatial;
    Tensor gx(x.shape());
    Tensor gw(ctx.inputs[1].shape());
    Tensor gb(ctx.inputs[2].shape());
    const auto xv = x.values();
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    auto gwv = gw.mutable_values();
    auto gbv = gb.mutable_values();
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t g = 0; g < groups; ++g) {
        const size_t base = static_cast<size_t>(((n * groups + g) * per_group) * spatial);
        double mean = 0.0;
        for (int64_t i = 0; i < group_elems; ++i) {
          mean += xv[base + static_cast<size_t>(i)];
        }
        mean /= static_cast<double>(group_elems);
        double var = 0.0;
        for (int64_t i = 0; i < group_elems; ++i) {
          const double d = xv[base + static_cast<size_t>(i)] - mean;
          var += d * d;
        }
        var /= static_cast<double>(group_elems);
        const double inv = 1.0 / std::sqrt(var + eps);
        double mean_h = 0.0;
        double mean_hx = 0.0;
        for (int64_t i = 0; i < group_elems; ++i) {
          const int64_t ch = g * per_group + i / spatial;
          const size_t k = base + static_cast<size_t>(i);
          const double xhat = (xv[k] - mean) * inv;
          const double h = static_cast<double>(wv[static_cast<size_t>(ch)]) * gv[k];
          mean_h += h;
          mean_hx += h * xhat;
        }
        mean_h /= static_cast<double>(group_elems);
        mean_hx /= static_cast<double>(group_elems);
        for (int64_t i = 0; i < group_elems; ++i) {
          const int64_t ch = g * per_group + i / spatial;
          const size_t k = base + static_cast<size_t>(i);
          const double xhat = (xv[k] - mean) * inv;
          const double h = static_cast<double>(wv[static_cast<size_t>(ch)]) * gv[k];
          gxv[k] = static_cast<float>(inv * (h - mean_h - xhat * mean_hx));
          gwv[static_cast<size_t>(ch)] += static_cast<float>(gv[k] * xhat);
          gbv[static_cast<size_t>(ch)] += gv[k];
        }
      }
    }
    return {gx, gw, gb};
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    return output_shape.numel() * 8;
  }
};

}  // namespace

void RegisterNormalizationOps(OpRegistry& registry) {
  registry.Register(std::make_unique<LayerNormKernel>());
  registry.Register(std::make_unique<RmsNormKernel>());
  registry.Register(std::make_unique<BatchNormKernel>());
  registry.Register(std::make_unique<GroupNormKernel>());
}

}  // namespace tao
