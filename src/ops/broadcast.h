// NumPy-style broadcasting utilities for binary elementwise operators and their VJPs.

#ifndef TAO_SRC_OPS_BROADCAST_H_
#define TAO_SRC_OPS_BROADCAST_H_

#include <vector>

#include "src/tensor/shape.h"
#include "src/tensor/tensor.h"

namespace tao {

// The broadcast result shape of two operand shapes; aborts on incompatibility.
Shape BroadcastShape(const Shape& a, const Shape& b);

// Maps linear offsets in a broadcast output back to linear offsets in one operand.
// Precomputes effective strides (0 along broadcast axes) for O(rank) lookup.
class BroadcastIndexer {
 public:
  BroadcastIndexer(const Shape& output_shape, const Shape& input_shape);

  int64_t MapOffset(int64_t output_offset) const;

 private:
  std::vector<int64_t> output_dims_;
  std::vector<int64_t> output_strides_;
  // Stride of the input along each output axis; 0 where the input is broadcast.
  std::vector<int64_t> input_strides_;
};

// Sums `grad` (shaped like the broadcast output) down to `target` shape — the adjoint
// of broadcasting, needed by binary-op VJPs.
Tensor ReduceGradToShape(const Tensor& grad, const Shape& target);

}  // namespace tao

#endif  // TAO_SRC_OPS_BROADCAST_H_
