// Softmax along a configurable axis, including the paper's worked bound template
// (Sec. 3.1 "Minimal example: softmax"):
//   m = max(x), z = x - m, e = exp(z), S = sum_j e_j, y_i = e_i / S
//   eps_z  <= u(|x| + |m|)
//   eps_e  <= |e| eps_z + 2u|e|
//   eps_S  <= gamma~_{n-1} * sum|e_j| + (gamma~_{n-1} + 1) * sum eps_{e_j}
//   eps_y  <= eps_e/|S| + |e| eps_S / S^2 + u|y|

#include <cmath>

#include "src/device/simd.h"
#include "src/device/vmath.h"
#include "src/ops/op_kernel.h"
#include "src/util/check.h"

namespace tao {
namespace {

// Iterates rows of the softmax axis. The axis is moved logically: we iterate outer ×
// inner with stride access, supporting any axis without materializing a transpose.
struct AxisView {
  int64_t outer = 1;
  int64_t n = 1;      // extent of the softmax axis
  int64_t inner = 1;  // stride between consecutive elements along the axis

  static AxisView Make(const Shape& shape, int64_t axis) {
    AxisView view;
    const int64_t a = shape.NormalizeAxis(axis);
    view.n = shape.dim(a);
    for (int64_t i = 0; i < a; ++i) {
      view.outer *= shape.dim(i);
    }
    for (int64_t i = a + 1; i < shape.rank(); ++i) {
      view.inner *= shape.dim(i);
    }
    return view;
  }

  int64_t Offset(int64_t outer_idx, int64_t axis_idx, int64_t inner_idx) const {
    return (outer_idx * n + axis_idx) * inner + inner_idx;
  }
};

class SoftmaxKernel : public OpKernel {
 public:
  std::string name() const override { return "softmax"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 1u);
    return input_shapes[0];
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const AxisView view = AxisView::Make(x.shape(), ctx.attrs.GetInt("axis", -1));
    Tensor out = ctx.AllocateOutput(x.shape());
    const auto xv = x.values();
    auto ov = out.mutable_values();
    // Split over flattened (outer, inner) rows; each chunk keeps its own exp
    // scratch, drawn from the arena so chunks recycle each other's rows.
    if (view.inner == 1) {
      // Contiguous rows (the last-axis case every model in the zoo hits): vectorized
      // max / subtract / exp / divide, fully vector now that exp is a pinned vmath
      // polynomial (device.Exp routes to the identical scalar body, so the in-place
      // ExpVec over the scratch row commits the same bits 8 lanes at a time). The
      // subtract and divide are exact per-element operations, and a vector max can
      // differ from the scalar fold only in the sign of a zero, which exp() erases
      // (exp(±0) == 1.0f) before anything is committed.
      ctx.For(view.outer, [&](int64_t begin, int64_t end) {
        Tensor exp_scratch = ctx.AllocateScratch(Shape{view.n});
        const std::span<float> exps = exp_scratch.mutable_values();
        for (int64_t o = begin; o < end; ++o) {
          const float* row = xv.data() + o * view.n;
          const float max_val = simd::RowMax(row, view.n);
          simd::SubScalar(row, max_val, exps.data(), view.n);
          vmath::ExpVec(exps.data(), exps.data(), view.n);
          const float denom = ctx.device.Accumulate(exps);
          simd::DivScalar(exps.data(), denom, ov.data() + o * view.n, view.n);
        }
        ctx.Recycle(std::move(exp_scratch));
      });
      return out;
    }
    ctx.For(view.outer * view.inner, [&](int64_t begin, int64_t end) {
      Tensor exp_scratch = ctx.AllocateScratch(Shape{view.n});
      const std::span<float> exps = exp_scratch.mutable_values();
      for (int64_t r = begin; r < end; ++r) {
        const int64_t o = r / view.inner;
        const int64_t in = r % view.inner;
        float max_val = -std::numeric_limits<float>::infinity();
        for (int64_t i = 0; i < view.n; ++i) {
          max_val = std::max(max_val, xv[static_cast<size_t>(view.Offset(o, i, in))]);
        }
        for (int64_t i = 0; i < view.n; ++i) {
          exps[static_cast<size_t>(i)] =
              ctx.device.Exp(xv[static_cast<size_t>(view.Offset(o, i, in))] - max_val);
        }
        const float denom = ctx.device.Accumulate(exps);
        for (int64_t i = 0; i < view.n; ++i) {
          ov[static_cast<size_t>(view.Offset(o, i, in))] = exps[static_cast<size_t>(i)] / denom;
        }
      }
      ctx.Recycle(std::move(exp_scratch));
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const AxisView view = AxisView::Make(x.shape(), ctx.attrs.GetInt("axis", -1));
    const double u = kUnitRoundoff;
    const double exp_ulp = ctx.device.ExpUlp();
    const double gamma = AccumulationGamma(view.n - 1, ctx.mode, ctx.lambda);
    DTensor bound(ctx.output.shape());
    const auto xv = x.values();
    const auto yv = ctx.output.values();
    auto bv = bound.mutable_values();
    ctx.For(view.outer * view.inner, [&](int64_t begin, int64_t end) {
      // Per-chunk |e| / eps rows from the arena's FP64 pool (trace-retaining runs
      // recycle nothing else; see BoundContext::AllocateScratch).
      DTensor e_scratch = ctx.AllocateScratch(Shape{view.n});
      DTensor eps_scratch = ctx.AllocateScratch(Shape{view.n});
      const std::span<double> e = e_scratch.mutable_values();
      const std::span<double> eps_e = eps_scratch.mutable_values();
      for (int64_t r = begin; r < end; ++r) {
        const int64_t o = r / view.inner;
        const int64_t in = r % view.inner;
        double m = -std::numeric_limits<double>::infinity();
        for (int64_t i = 0; i < view.n; ++i) {
          m = std::max(m, static_cast<double>(xv[static_cast<size_t>(view.Offset(o, i, in))]));
        }
        double sum_e = 0.0;
        double sum_eps_e = 0.0;
        for (int64_t i = 0; i < view.n; ++i) {
          const double xi = xv[static_cast<size_t>(view.Offset(o, i, in))];
          const double z = xi - m;
          const double ei = std::exp(z);
          const double eps_z = u * (std::abs(xi) + std::abs(m));
          // |e| eps_z propagated + intrinsic ULP error (the paper's 2u|e| with 2-ulp exp).
          const double eps = ei * eps_z + UlpError(ei, exp_ulp);
          e[static_cast<size_t>(i)] = ei;
          eps_e[static_cast<size_t>(i)] = eps;
          sum_e += ei;
          sum_eps_e += eps;
        }
        const double eps_s = gamma * sum_e + (gamma + 1.0) * sum_eps_e;
        for (int64_t i = 0; i < view.n; ++i) {
          const size_t k = static_cast<size_t>(view.Offset(o, i, in));
          const double yi = yv[k];
          bv[k] = eps_e[static_cast<size_t>(i)] / sum_e +
                  e[static_cast<size_t>(i)] * eps_s / (sum_e * sum_e) + u * std::abs(yi);
        }
      }
      ctx.Recycle(std::move(eps_scratch));
      ctx.Recycle(std::move(e_scratch));
    });
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    // g_x = y ⊙ (g - <g, y>) per row.
    const AxisView view = AxisView::Make(ctx.inputs[0].shape(), ctx.attrs.GetInt("axis", -1));
    Tensor grad(ctx.inputs[0].shape());
    const auto yv = ctx.output.values();
    const auto gv = ctx.grad_output.values();
    auto out = grad.mutable_values();
    for (int64_t o = 0; o < view.outer; ++o) {
      for (int64_t in = 0; in < view.inner; ++in) {
        double dot = 0.0;
        for (int64_t i = 0; i < view.n; ++i) {
          const size_t k = static_cast<size_t>(view.Offset(o, i, in));
          dot += static_cast<double>(gv[k]) * static_cast<double>(yv[k]);
        }
        for (int64_t i = 0; i < view.n; ++i) {
          const size_t k = static_cast<size_t>(view.Offset(o, i, in));
          out[k] = yv[k] * (gv[k] - static_cast<float>(dot));
        }
      }
    }
    return {grad};
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    return output_shape.numel() * 4;
  }
};

}  // namespace

void RegisterSoftmaxOps(OpRegistry& registry) {
  registry.Register(std::make_unique<SoftmaxKernel>());
}

}  // namespace tao
