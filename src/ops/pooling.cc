// Spatial pooling and resampling over NCHW tensors: max_pool2d, avg_pool2d,
// adaptive_avg_pool2d, interpolate (nearest-neighbour upsampling).
//
// Max pooling and nearest interpolation are exact selections/copies (zero bound);
// average pools are reductions bounded with gamma_k over each window plus the final
// division rounding.

#include <cmath>
#include <limits>

#include "src/ops/op_kernel.h"
#include "src/util/check.h"

namespace tao {
namespace {

struct PoolDims {
  int64_t batch, c, h, w;
  int64_t kernel, stride;
  int64_t oh, ow;

  static PoolDims Make(const Shape& x, const Attrs& attrs) {
    PoolDims d;
    TAO_CHECK_EQ(x.rank(), 4);
    d.batch = x.dim(0);
    d.c = x.dim(1);
    d.h = x.dim(2);
    d.w = x.dim(3);
    d.kernel = attrs.GetInt("kernel");
    d.stride = attrs.GetInt("stride", d.kernel);
    d.oh = (d.h - d.kernel) / d.stride + 1;
    d.ow = (d.w - d.kernel) / d.stride + 1;
    return d;
  }
};

class MaxPool2dKernel : public OpKernel {
 public:
  std::string name() const override { return "max_pool2d"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 1u);
    const PoolDims d = PoolDims::Make(input_shapes[0], attrs);
    return Shape{d.batch, d.c, d.oh, d.ow};
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const PoolDims d = PoolDims::Make(x.shape(), ctx.attrs);
    Tensor out(Shape{d.batch, d.c, d.oh, d.ow});
    const auto xv = x.values();
    auto ov = out.mutable_values();
    for (int64_t n = 0; n < d.batch; ++n) {
      for (int64_t c = 0; c < d.c; ++c) {
        const int64_t plane = (n * d.c + c) * d.h * d.w;
        for (int64_t oy = 0; oy < d.oh; ++oy) {
          for (int64_t ox = 0; ox < d.ow; ++ox) {
            float best = -std::numeric_limits<float>::infinity();
            for (int64_t ky = 0; ky < d.kernel; ++ky) {
              for (int64_t kx = 0; kx < d.kernel; ++kx) {
                const int64_t iy = oy * d.stride + ky;
                const int64_t ix = ox * d.stride + kx;
                best = std::max(best, xv[static_cast<size_t>(plane + iy * d.w + ix)]);
              }
            }
            ov[static_cast<size_t>(((n * d.c + c) * d.oh + oy) * d.ow + ox)] = best;
          }
        }
      }
    }
    return out;
  }

  // Selection is exact: zero bound (default).

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const PoolDims d = PoolDims::Make(x.shape(), ctx.attrs);
    Tensor gx(x.shape());
    const auto xv = x.values();
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    for (int64_t n = 0; n < d.batch; ++n) {
      for (int64_t c = 0; c < d.c; ++c) {
        const int64_t plane = (n * d.c + c) * d.h * d.w;
        for (int64_t oy = 0; oy < d.oh; ++oy) {
          for (int64_t ox = 0; ox < d.ow; ++ox) {
            float best = -std::numeric_limits<float>::infinity();
            int64_t best_idx = -1;
            for (int64_t ky = 0; ky < d.kernel; ++ky) {
              for (int64_t kx = 0; kx < d.kernel; ++kx) {
                const int64_t iy = oy * d.stride + ky;
                const int64_t ix = ox * d.stride + kx;
                const int64_t idx = plane + iy * d.w + ix;
                if (xv[static_cast<size_t>(idx)] > best) {
                  best = xv[static_cast<size_t>(idx)];
                  best_idx = idx;
                }
              }
            }
            gxv[static_cast<size_t>(best_idx)] +=
                gv[static_cast<size_t>(((n * d.c + c) * d.oh + oy) * d.ow + ox)];
          }
        }
      }
    }
    return {gx};
  }
};

class AvgPool2dKernel : public OpKernel {
 public:
  std::string name() const override { return "avg_pool2d"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 1u);
    const PoolDims d = PoolDims::Make(input_shapes[0], attrs);
    return Shape{d.batch, d.c, d.oh, d.ow};
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const PoolDims d = PoolDims::Make(x.shape(), ctx.attrs);
    const float count = static_cast<float>(d.kernel * d.kernel);
    Tensor out = ctx.AllocateOutput(Shape{d.batch, d.c, d.oh, d.ow});
    const auto xv = x.values();
    auto ov = out.mutable_values();
    // Planes are independent; each chunk draws its window gather from the arena.
    ctx.For(d.batch * d.c, [&](int64_t begin, int64_t end) {
      Tensor window_scratch = ctx.AllocateScratch(Shape{d.kernel * d.kernel});
      const std::span<float> window = window_scratch.mutable_values();
      for (int64_t r = begin; r < end; ++r) {
        const int64_t plane = r * d.h * d.w;
        for (int64_t oy = 0; oy < d.oh; ++oy) {
          for (int64_t ox = 0; ox < d.ow; ++ox) {
            size_t p = 0;
            for (int64_t ky = 0; ky < d.kernel; ++ky) {
              for (int64_t kx = 0; kx < d.kernel; ++kx) {
                const int64_t iy = oy * d.stride + ky;
                const int64_t ix = ox * d.stride + kx;
                window[p++] = xv[static_cast<size_t>(plane + iy * d.w + ix)];
              }
            }
            ov[static_cast<size_t>((r * d.oh + oy) * d.ow + ox)] =
                ctx.device.Accumulate(window) / count;
          }
        }
      }
      ctx.Recycle(std::move(window_scratch));
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const PoolDims d = PoolDims::Make(x.shape(), ctx.attrs);
    const int64_t k = d.kernel * d.kernel;
    const double gamma = AccumulationGamma(k - 1, ctx.mode, ctx.lambda);
    DTensor bound(ctx.output.shape());
    const auto xv = x.values();
    const auto yv = ctx.output.values();
    auto bnd = bound.mutable_values();
    for (int64_t n = 0; n < d.batch; ++n) {
      for (int64_t c = 0; c < d.c; ++c) {
        const int64_t plane = (n * d.c + c) * d.h * d.w;
        for (int64_t oy = 0; oy < d.oh; ++oy) {
          for (int64_t ox = 0; ox < d.ow; ++ox) {
            double abs_sum = 0.0;
            for (int64_t ky = 0; ky < d.kernel; ++ky) {
              for (int64_t kx = 0; kx < d.kernel; ++kx) {
                const int64_t iy = oy * d.stride + ky;
                const int64_t ix = ox * d.stride + kx;
                abs_sum += std::abs(static_cast<double>(xv[static_cast<size_t>(
                    plane + iy * d.w + ix)]));
              }
            }
            const size_t o = static_cast<size_t>(((n * d.c + c) * d.oh + oy) * d.ow + ox);
            bnd[o] = gamma * abs_sum / static_cast<double>(k) +
                     kUnitRoundoff * std::abs(static_cast<double>(yv[o]));
          }
        }
      }
    }
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const PoolDims d = PoolDims::Make(x.shape(), ctx.attrs);
    const float inv_count = 1.0f / static_cast<float>(d.kernel * d.kernel);
    Tensor gx(x.shape());
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    for (int64_t n = 0; n < d.batch; ++n) {
      for (int64_t c = 0; c < d.c; ++c) {
        const int64_t plane = (n * d.c + c) * d.h * d.w;
        for (int64_t oy = 0; oy < d.oh; ++oy) {
          for (int64_t ox = 0; ox < d.ow; ++ox) {
            const float g =
                gv[static_cast<size_t>(((n * d.c + c) * d.oh + oy) * d.ow + ox)] * inv_count;
            for (int64_t ky = 0; ky < d.kernel; ++ky) {
              for (int64_t kx = 0; kx < d.kernel; ++kx) {
                const int64_t iy = oy * d.stride + ky;
                const int64_t ix = ox * d.stride + kx;
                gxv[static_cast<size_t>(plane + iy * d.w + ix)] += g;
              }
            }
          }
        }
      }
    }
    return {gx};
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    const int64_t k = attrs.GetInt("kernel");
    return output_shape.numel() * k * k;
  }
};

// PyTorch-style adaptive average pooling: window i spans [floor(i·H/oh), ceil((i+1)·H/oh)).
class AdaptiveAvgPool2dKernel : public OpKernel {
 public:
  std::string name() const override { return "adaptive_avg_pool2d"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 1u);
    const Shape& x = input_shapes[0];
    TAO_CHECK_EQ(x.rank(), 4);
    return Shape{x.dim(0), x.dim(1), attrs.GetInt("out_h"), attrs.GetInt("out_w")};
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const int64_t batch = x.shape().dim(0);
    const int64_t c = x.shape().dim(1);
    const int64_t h = x.shape().dim(2);
    const int64_t w = x.shape().dim(3);
    const int64_t oh = ctx.attrs.GetInt("out_h");
    const int64_t ow = ctx.attrs.GetInt("out_w");
    Tensor out = ctx.AllocateOutput(Shape{batch, c, oh, ow});
    const auto xv = x.values();
    auto ov = out.mutable_values();
    // Largest window any output cell can span: ceil(h/oh)+1 by ceil(w/ow)+1.
    const int64_t max_win = ((h + oh - 1) / oh + 1) * ((w + ow - 1) / ow + 1);
    ctx.For(batch * c, [&](int64_t begin, int64_t end) {
      Tensor window_scratch = ctx.AllocateScratch(Shape{max_win});
      const std::span<float> window = window_scratch.mutable_values();
      for (int64_t r = begin; r < end; ++r) {
        const int64_t plane = r * h * w;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t y0 = oy * h / oh;
          const int64_t y1 = ((oy + 1) * h + oh - 1) / oh;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t x0 = ox * w / ow;
            const int64_t x1 = ((ox + 1) * w + ow - 1) / ow;
            size_t p = 0;
            for (int64_t iy = y0; iy < y1; ++iy) {
              for (int64_t ix = x0; ix < x1; ++ix) {
                window[p++] = xv[static_cast<size_t>(plane + iy * w + ix)];
              }
            }
            ov[static_cast<size_t>((r * oh + oy) * ow + ox)] =
                ctx.device.Accumulate(window.subspan(0, p)) / static_cast<float>(p);
          }
        }
      }
      ctx.Recycle(std::move(window_scratch));
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const int64_t batch = x.shape().dim(0);
    const int64_t c = x.shape().dim(1);
    const int64_t h = x.shape().dim(2);
    const int64_t w = x.shape().dim(3);
    const int64_t oh = ctx.attrs.GetInt("out_h");
    const int64_t ow = ctx.attrs.GetInt("out_w");
    DTensor bound(ctx.output.shape());
    const auto xv = x.values();
    const auto yv = ctx.output.values();
    auto bnd = bound.mutable_values();
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const int64_t plane = (n * c + ch) * h * w;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t y0 = oy * h / oh;
          const int64_t y1 = ((oy + 1) * h + oh - 1) / oh;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t x0 = ox * w / ow;
            const int64_t x1 = ((ox + 1) * w + ow - 1) / ow;
            double abs_sum = 0.0;
            int64_t count = 0;
            for (int64_t iy = y0; iy < y1; ++iy) {
              for (int64_t ix = x0; ix < x1; ++ix) {
                abs_sum += std::abs(static_cast<double>(xv[static_cast<size_t>(
                    plane + iy * w + ix)]));
                ++count;
              }
            }
            const double gamma = AccumulationGamma(count - 1, ctx.mode, ctx.lambda);
            const size_t o = static_cast<size_t>(((n * c + ch) * oh + oy) * ow + ox);
            bnd[o] = gamma * abs_sum / static_cast<double>(count) +
                     kUnitRoundoff * std::abs(static_cast<double>(yv[o]));
          }
        }
      }
    }
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const int64_t batch = x.shape().dim(0);
    const int64_t c = x.shape().dim(1);
    const int64_t h = x.shape().dim(2);
    const int64_t w = x.shape().dim(3);
    const int64_t oh = ctx.attrs.GetInt("out_h");
    const int64_t ow = ctx.attrs.GetInt("out_w");
    Tensor gx(x.shape());
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const int64_t plane = (n * c + ch) * h * w;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t y0 = oy * h / oh;
          const int64_t y1 = ((oy + 1) * h + oh - 1) / oh;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t x0 = ox * w / ow;
            const int64_t x1 = ((ox + 1) * w + ow - 1) / ow;
            const int64_t count = (y1 - y0) * (x1 - x0);
            const float g = gv[static_cast<size_t>(((n * c + ch) * oh + oy) * ow + ox)] /
                            static_cast<float>(count);
            for (int64_t iy = y0; iy < y1; ++iy) {
              for (int64_t ix = x0; ix < x1; ++ix) {
                gxv[static_cast<size_t>(plane + iy * w + ix)] += g;
              }
            }
          }
        }
      }
    }
    return {gx};
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    return input_shapes[0].numel();
  }
};

// Nearest-neighbour upsampling by an integer "scale" attr — a pure copy (zero bound).
class InterpolateKernel : public OpKernel {
 public:
  std::string name() const override { return "interpolate"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 1u);
    const Shape& x = input_shapes[0];
    TAO_CHECK_EQ(x.rank(), 4);
    const int64_t scale = attrs.GetInt("scale");
    return Shape{x.dim(0), x.dim(1), x.dim(2) * scale, x.dim(3) * scale};
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const int64_t scale = ctx.attrs.GetInt("scale");
    const int64_t batch = x.shape().dim(0);
    const int64_t c = x.shape().dim(1);
    const int64_t h = x.shape().dim(2);
    const int64_t w = x.shape().dim(3);
    Tensor out(Shape{batch, c, h * scale, w * scale});
    const auto xv = x.values();
    auto ov = out.mutable_values();
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t ch = 0; ch < c; ++ch) {
        for (int64_t oy = 0; oy < h * scale; ++oy) {
          for (int64_t ox = 0; ox < w * scale; ++ox) {
            ov[static_cast<size_t>(((n * c + ch) * h * scale + oy) * w * scale + ox)] =
                xv[static_cast<size_t>(((n * c + ch) * h + oy / scale) * w + ox / scale)];
          }
        }
      }
    }
    return out;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const int64_t scale = ctx.attrs.GetInt("scale");
    const int64_t batch = x.shape().dim(0);
    const int64_t c = x.shape().dim(1);
    const int64_t h = x.shape().dim(2);
    const int64_t w = x.shape().dim(3);
    Tensor gx(x.shape());
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t ch = 0; ch < c; ++ch) {
        for (int64_t oy = 0; oy < h * scale; ++oy) {
          for (int64_t ox = 0; ox < w * scale; ++ox) {
            gxv[static_cast<size_t>(((n * c + ch) * h + oy / scale) * w + ox / scale)] +=
                gv[static_cast<size_t>(((n * c + ch) * h * scale + oy) * w * scale + ox)];
          }
        }
      }
    }
    return {gx};
  }
};

}  // namespace

void RegisterPoolingOps(OpRegistry& registry) {
  registry.Register(std::make_unique<MaxPool2dKernel>());
  registry.Register(std::make_unique<AvgPool2dKernel>());
  registry.Register(std::make_unique<AdaptiveAvgPool2dKernel>());
  registry.Register(std::make_unique<InterpolateKernel>());
}

}  // namespace tao
