#include "src/ops/attrs.h"

#include <sstream>

#include "src/util/check.h"

namespace tao {

Attrs& Attrs::Set(const std::string& key, int64_t value) {
  values_[key] = value;
  return *this;
}

Attrs& Attrs::Set(const std::string& key, double value) {
  values_[key] = value;
  return *this;
}

Attrs& Attrs::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
  return *this;
}

Attrs& Attrs::Set(const std::string& key, std::vector<int64_t> value) {
  values_[key] = std::move(value);
  return *this;
}

bool Attrs::Has(const std::string& key) const { return values_.count(key) > 0; }

int64_t Attrs::GetInt(const std::string& key) const {
  const auto it = values_.find(key);
  TAO_CHECK(it != values_.end()) << "missing int attr " << key;
  return std::get<int64_t>(it->second);
}

int64_t Attrs::GetInt(const std::string& key, int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::get<int64_t>(it->second);
}

double Attrs::GetDouble(const std::string& key) const {
  const auto it = values_.find(key);
  TAO_CHECK(it != values_.end()) << "missing double attr " << key;
  return std::get<double>(it->second);
}

double Attrs::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::get<double>(it->second);
}

std::string Attrs::GetString(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::get<std::string>(it->second);
}

std::vector<int64_t> Attrs::GetInts(const std::string& key) const {
  const auto it = values_.find(key);
  TAO_CHECK(it != values_.end()) << "missing ints attr " << key;
  return std::get<std::vector<int64_t>>(it->second);
}

std::vector<int64_t> Attrs::GetInts(const std::string& key,
                                    std::vector<int64_t> fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::move(fallback) : std::get<std::vector<int64_t>>(it->second);
}

std::string Attrs::Canonical() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << key << "=";
    if (std::holds_alternative<int64_t>(value)) {
      out << std::get<int64_t>(value);
    } else if (std::holds_alternative<double>(value)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", std::get<double>(value));
      out << buf;
    } else if (std::holds_alternative<std::string>(value)) {
      out << std::get<std::string>(value);
    } else {
      out << "[";
      const auto& vec = std::get<std::vector<int64_t>>(value);
      for (size_t i = 0; i < vec.size(); ++i) {
        if (i > 0) {
          out << " ";
        }
        out << vec[i];
      }
      out << "]";
    }
  }
  return out.str();
}

}  // namespace tao
