// Typed operator attributes (the kwargs of a graph node) with canonical serialization
// for operator-signature hashing (sigma(n) in Sec. 5.2).

#ifndef TAO_SRC_OPS_ATTRS_H_
#define TAO_SRC_OPS_ATTRS_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace tao {

class Attrs {
 public:
  using Value = std::variant<int64_t, double, std::string, std::vector<int64_t>>;

  Attrs() = default;

  Attrs& Set(const std::string& key, int64_t value);
  Attrs& Set(const std::string& key, double value);
  Attrs& Set(const std::string& key, const std::string& value);
  Attrs& Set(const std::string& key, std::vector<int64_t> value);

  bool Has(const std::string& key) const;

  int64_t GetInt(const std::string& key) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key) const;
  double GetDouble(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key, const std::string& fallback = "") const;
  std::vector<int64_t> GetInts(const std::string& key) const;
  std::vector<int64_t> GetInts(const std::string& key, std::vector<int64_t> fallback) const;

  // Canonical "k=v,k=v" encoding with keys in sorted order; feeds signature hashing, so
  // any attribute change breaks the graph commitment.
  std::string Canonical() const;

  bool operator==(const Attrs& other) const { return values_ == other.values_; }

 private:
  std::map<std::string, Value> values_;
};

}  // namespace tao

#endif  // TAO_SRC_OPS_ATTRS_H_
