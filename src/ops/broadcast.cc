#include "src/ops/broadcast.h"

#include "src/util/check.h"

namespace tao {

Shape BroadcastShape(const Shape& a, const Shape& b) {
  const int64_t rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> dims(static_cast<size_t>(rank), 1);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t da = (i < a.rank()) ? a.dim(a.rank() - 1 - i) : 1;
    const int64_t db = (i < b.rank()) ? b.dim(b.rank() - 1 - i) : 1;
    TAO_CHECK(da == db || da == 1 || db == 1)
        << "cannot broadcast " << a.ToString() << " with " << b.ToString();
    dims[static_cast<size_t>(rank - 1 - i)] = std::max(da, db);
  }
  return Shape(dims);
}

BroadcastIndexer::BroadcastIndexer(const Shape& output_shape, const Shape& input_shape) {
  output_dims_ = output_shape.dims();
  output_strides_ = output_shape.Strides();
  const std::vector<int64_t> in_strides = input_shape.Strides();
  const int64_t out_rank = output_shape.rank();
  const int64_t in_rank = input_shape.rank();
  input_strides_.assign(static_cast<size_t>(out_rank), 0);
  for (int64_t axis = 0; axis < out_rank; ++axis) {
    const int64_t in_axis = axis - (out_rank - in_rank);
    if (in_axis < 0) {
      continue;  // input has no such axis: broadcast
    }
    const int64_t in_dim = input_shape.dim(in_axis);
    const int64_t out_dim = output_shape.dim(axis);
    if (in_dim == out_dim) {
      input_strides_[static_cast<size_t>(axis)] = in_strides[static_cast<size_t>(in_axis)];
    } else {
      TAO_CHECK_EQ(in_dim, 1) << "broadcast mismatch";
    }
  }
}

int64_t BroadcastIndexer::MapOffset(int64_t output_offset) const {
  int64_t input_offset = 0;
  for (size_t axis = 0; axis < output_dims_.size(); ++axis) {
    const int64_t coord = output_offset / output_strides_[axis];
    output_offset -= coord * output_strides_[axis];
    input_offset += coord * input_strides_[axis];
  }
  return input_offset;
}

Tensor ReduceGradToShape(const Tensor& grad, const Shape& target) {
  if (grad.shape() == target) {
    return grad;
  }
  Tensor reduced = Tensor::Zeros(target);
  const BroadcastIndexer indexer(grad.shape(), target);
  const auto gv = grad.values();
  auto rv = reduced.mutable_values();
  for (int64_t i = 0; i < grad.numel(); ++i) {
    rv[static_cast<size_t>(indexer.MapOffset(i))] += gv[static_cast<size_t>(i)];
  }
  return reduced;
}

}  // namespace tao
