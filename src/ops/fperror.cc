#include "src/ops/fperror.h"

#include <cmath>

#include "src/util/check.h"

namespace tao {

double Gamma(int64_t k) {
  if (k <= 0) {
    return 0.0;
  }
  const double ku = static_cast<double>(k) * kUnitRoundoff;
  TAO_CHECK_LT(ku, 1.0) << "gamma_k undefined for k*u >= 1";
  return ku / (1.0 - ku);
}

double GammaTilde(int64_t k, double lambda) {
  if (k <= 0) {
    return 0.0;
  }
  const double u = kUnitRoundoff;
  const double exponent =
      lambda * std::sqrt(static_cast<double>(k)) * u + static_cast<double>(k) * u * u / (1.0 - u);
  return std::exp(exponent) - 1.0;
}

double AccumulationGamma(int64_t k, BoundMode mode, double lambda) {
  return mode == BoundMode::kDeterministic ? Gamma(k) : GammaTilde(k, lambda);
}

double GammaTildeConfidence(double lambda) {
  const double u = kUnitRoundoff;
  return 1.0 - 2.0 * std::exp(-lambda * lambda * (1.0 - u) * (1.0 - u) / 2.0);
}

double UlpError(double value, double n_ulp) {
  return n_ulp * 2.0 * kUnitRoundoff * std::abs(value);
}

}  // namespace tao
