// conv2d(x, w, b) over NCHW inputs with attrs "stride" and "padding" (symmetric).
// Each output element is an inner product of length k = C_in·kh·kw routed through the
// device profile; the bound is the inner-product gamma_k envelope plus one bias-add
// rounding, exactly as for linear.

#include <cmath>

#include "src/ops/op_kernel.h"
#include "src/util/check.h"

namespace tao {
namespace {

struct ConvDims {
  int64_t batch, cin, h, w;
  int64_t cout, kh, kw;
  int64_t stride, padding;
  int64_t oh, ow;
  int64_t patch;  // cin * kh * kw

  static ConvDims Make(const Shape& x, const Shape& weight, const Attrs& attrs) {
    ConvDims d;
    TAO_CHECK_EQ(x.rank(), 4);
    TAO_CHECK_EQ(weight.rank(), 4);
    d.batch = x.dim(0);
    d.cin = x.dim(1);
    d.h = x.dim(2);
    d.w = x.dim(3);
    d.cout = weight.dim(0);
    TAO_CHECK_EQ(weight.dim(1), d.cin);
    d.kh = weight.dim(2);
    d.kw = weight.dim(3);
    d.stride = attrs.GetInt("stride", 1);
    d.padding = attrs.GetInt("padding", 0);
    d.oh = (d.h + 2 * d.padding - d.kh) / d.stride + 1;
    d.ow = (d.w + 2 * d.padding - d.kw) / d.stride + 1;
    d.patch = d.cin * d.kh * d.kw;
    return d;
  }
};

class Conv2dKernel : public OpKernel {
 public:
  std::string name() const override { return "conv2d"; }

  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 3u);
    const ConvDims d = ConvDims::Make(input_shapes[0], input_shapes[1], attrs);
    TAO_CHECK_EQ(input_shapes[2].numel(), d.cout);
    return Shape{d.batch, d.cout, d.oh, d.ow};
  }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const Tensor& weight = ctx.inputs[1];
    const Tensor& bias = ctx.inputs[2];
    const ConvDims d = ConvDims::Make(x.shape(), weight.shape(), ctx.attrs);
    Tensor out = ctx.AllocateOutput(Shape{d.batch, d.cout, d.oh, d.ow});
    const float* xv = x.values().data();
    const float* wv = weight.values().data();
    const auto bv = bias.values();
    auto ov = out.mutable_values();
    // Split over flattened (image, output row) pairs; each chunk gathers receptive
    // fields into its own scratch buffer, drawn from (and returned to) the arena so
    // chunks recycle each other's gather buffers instead of re-allocating.
    ctx.For(d.batch * d.oh, [&](int64_t begin, int64_t end) {
      Tensor patch_scratch = ctx.AllocateScratch(Shape{d.patch});
      float* patch = patch_scratch.mutable_values().data();
      for (int64_t r = begin; r < end; ++r) {
        const int64_t n = r / d.oh;
        const int64_t oy = r % d.oh;
        for (int64_t ox = 0; ox < d.ow; ++ox) {
          // Gather the receptive field (zero padding) once per spatial position.
          size_t p = 0;
          for (int64_t c = 0; c < d.cin; ++c) {
            for (int64_t ky = 0; ky < d.kh; ++ky) {
              const int64_t iy = oy * d.stride + ky - d.padding;
              for (int64_t kx = 0; kx < d.kw; ++kx) {
                const int64_t ix = ox * d.stride + kx - d.padding;
                patch[p++] = (iy >= 0 && iy < d.h && ix >= 0 && ix < d.w)
                                 ? xv[((n * d.cin + c) * d.h + iy) * d.w + ix]
                                 : 0.0f;
              }
            }
          }
          for (int64_t co = 0; co < d.cout; ++co) {
            const float dot = ctx.device.DotStrided(patch, 1, wv + co * d.patch, 1,
                                                    d.patch);
            ov[static_cast<size_t>(((n * d.cout + co) * d.oh + oy) * d.ow + ox)] =
                dot + bv[static_cast<size_t>(co)];
          }
        }
      }
      ctx.Recycle(std::move(patch_scratch));
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const Tensor& weight = ctx.inputs[1];
    const ConvDims d = ConvDims::Make(x.shape(), weight.shape(), ctx.attrs);
    const double gamma = AccumulationGamma(d.patch, ctx.mode, ctx.lambda);
    DTensor bound(ctx.output.shape());
    const float* xv = x.values().data();
    const float* wv = weight.values().data();
    const auto yv = ctx.output.values();
    auto bnd = bound.mutable_values();
    ctx.For(d.batch * d.oh, [&](int64_t begin, int64_t end) {
      // Abs-gather scratch from the arena's FP64 pool: bound runs retain every
      // value/bound tensor, so this per-chunk recycling is the only reuse they get.
      DTensor patch_scratch = ctx.AllocateScratch(Shape{d.patch});
      double* patch = patch_scratch.mutable_values().data();
      for (int64_t r = begin; r < end; ++r) {
        const int64_t n = r / d.oh;
        const int64_t oy = r % d.oh;
        for (int64_t ox = 0; ox < d.ow; ++ox) {
          size_t p = 0;
          for (int64_t c = 0; c < d.cin; ++c) {
            for (int64_t ky = 0; ky < d.kh; ++ky) {
              const int64_t iy = oy * d.stride + ky - d.padding;
              for (int64_t kx = 0; kx < d.kw; ++kx) {
                const int64_t ix = ox * d.stride + kx - d.padding;
                patch[p++] = (iy >= 0 && iy < d.h && ix >= 0 && ix < d.w)
                                 ? std::abs(static_cast<double>(
                                       xv[((n * d.cin + c) * d.h + iy) * d.w + ix]))
                                 : 0.0;
              }
            }
          }
          for (int64_t co = 0; co < d.cout; ++co) {
            double abs_dot = 0.0;
            for (int64_t q = 0; q < d.patch; ++q) {
              abs_dot += patch[static_cast<size_t>(q)] *
                         std::abs(static_cast<double>(wv[co * d.patch + q]));
            }
            const size_t k =
                static_cast<size_t>(((n * d.cout + co) * d.oh + oy) * d.ow + ox);
            bnd[k] = gamma * abs_dot + kUnitRoundoff * std::abs(static_cast<double>(yv[k]));
          }
        }
      }
      ctx.Recycle(std::move(patch_scratch));
    });
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    const Tensor& weight = ctx.inputs[1];
    const ConvDims d = ConvDims::Make(x.shape(), weight.shape(), ctx.attrs);
    Tensor gx(x.shape());
    Tensor gw(weight.shape());
    Tensor gb(ctx.inputs[2].shape());
    const auto xv = x.values();
    const auto wv = weight.values();
    const auto gv = ctx.grad_output.values();
    auto gxv = gx.mutable_values();
    auto gwv = gw.mutable_values();
    auto gbv = gb.mutable_values();
    for (int64_t n = 0; n < d.batch; ++n) {
      for (int64_t co = 0; co < d.cout; ++co) {
        for (int64_t oy = 0; oy < d.oh; ++oy) {
          for (int64_t ox = 0; ox < d.ow; ++ox) {
            const float g =
                gv[static_cast<size_t>(((n * d.cout + co) * d.oh + oy) * d.ow + ox)];
            gbv[static_cast<size_t>(co)] += g;
            for (int64_t c = 0; c < d.cin; ++c) {
              for (int64_t ky = 0; ky < d.kh; ++ky) {
                const int64_t iy = oy * d.stride + ky - d.padding;
                if (iy < 0 || iy >= d.h) {
                  continue;
                }
                for (int64_t kx = 0; kx < d.kw; ++kx) {
                  const int64_t ix = ox * d.stride + kx - d.padding;
                  if (ix < 0 || ix >= d.w) {
                    continue;
                  }
                  const size_t xi = static_cast<size_t>(((n * d.cin + c) * d.h + iy) * d.w + ix);
                  const size_t wi =
                      static_cast<size_t>(((co * d.cin + c) * d.kh + ky) * d.kw + kx);
                  gxv[xi] += g * wv[wi];
                  gwv[wi] += g * xv[xi];
                }
              }
            }
          }
        }
      }
    }
    return {gx, gw, gb};
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    const Shape& w = input_shapes[1];
    return 2 * output_shape.numel() * w.dim(1) * w.dim(2) * w.dim(3);
  }
};

}  // namespace

void RegisterConvOps(OpRegistry& registry) {
  registry.Register(std::make_unique<Conv2dKernel>());
}

}  // namespace tao
