// IEEE-754 rounding-error model helpers (paper Sec. 3.1 and Appendix A).
//
// All bound arithmetic is FP64. The standard model is fl(x∘y) = (x∘y)(1+δ), |δ| ≤ u
// with u = 2^-24 for FP32 round-to-nearest-even. For length-k accumulations we provide
// the deterministic worst case γ_k = ku/(1-ku) (Higham 2002) and the probabilistic
// bound γ̃_k(λ) = exp(λ√k·u + ku²/(1-u)) - 1 (Higham & Mary 2019), which holds with
// probability ≥ 1 - 2exp(-λ²(1-u)²/2); at the paper's λ=4 that is ≥ 99.93% and
// γ̃_k(4) ≈ 4u√k.

#ifndef TAO_SRC_OPS_FPERROR_H_
#define TAO_SRC_OPS_FPERROR_H_

#include <cstdint>

namespace tao {

// FP32 unit roundoff (machine epsilon / 2).
inline constexpr double kUnitRoundoff = 0x1.0p-24;

// The paper's probabilistic-confidence parameter.
inline constexpr double kDefaultLambda = 4.0;

// Which accumulation-error model a bound computation uses.
enum class BoundMode {
  kDeterministic,  // gamma_k: sound worst case over every association order
  kProbabilistic,  // gamma_tilde_k(lambda): high-probability bound, markedly tighter
};

// Deterministic gamma_k = k*u / (1 - k*u); requires k*u < 1 (always true for the tensor
// sizes in this repo: k < 2^24). Returns 0 for k <= 0.
double Gamma(int64_t k);

// Probabilistic gamma_tilde_k(lambda) = exp(lambda*sqrt(k)*u + k*u^2/(1-u)) - 1.
// Returns 0 for k <= 0.
double GammaTilde(int64_t k, double lambda = kDefaultLambda);

// Dispatches on the mode.
double AccumulationGamma(int64_t k, BoundMode mode, double lambda = kDefaultLambda);

// Probability that the probabilistic bound holds: 1 - 2*exp(-lambda^2 (1-u)^2 / 2).
double GammaTildeConfidence(double lambda = kDefaultLambda);

// Upper bound on n_ulp units-in-the-last-place of |value| expressed as an absolute
// error: ulp(x) <= 2u|x| for normalized x, so the bound is n_ulp * 2u * |value|.
double UlpError(double value, double n_ulp);

}  // namespace tao

#endif  // TAO_SRC_OPS_FPERROR_H_
