// Operator kernel interface: each primitive tensor operator (a node kind in the traced
// graph) implements
//   * Forward      — FP32 execution routed through a DeviceProfile (the nondeterminism
//                    surface), mirroring unmodified vendor kernels;
//   * Bound        — the operator-local theoretical IEEE-754 error template of Sec. 3.1
//                    (FP64, per output element), in deterministic or probabilistic mode;
//   * Vjp          — vector-Jacobian product for the gradient-based attacks of Sec. 4;
//   * Flops        — FLOP accounting for DCR / cost-ratio metrics (Table 3).
//
// Bounds are *not* propagated across operators (the paper turns composition into
// localization); a template accounts only for error propagated within its own
// sub-steps plus fresh rounding.

#ifndef TAO_SRC_OPS_OP_KERNEL_H_
#define TAO_SRC_OPS_OP_KERNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/device/device.h"
#include "src/ops/attrs.h"
#include "src/ops/fperror.h"
#include "src/tensor/tensor.h"

namespace tao {

class ParallelFor;   // src/runtime/parallel_for.h
class TensorArena;   // src/runtime/arena.h

struct OpContext {
  const DeviceProfile& device;
  const std::vector<Tensor>& inputs;
  const Attrs& attrs;
  // Intra-op parallelism handle threaded through by the runtime executor; null means
  // run sequentially. Kernels may only split loops whose iterations write disjoint
  // output ranges, so results stay bitwise identical for any thread count.
  const ParallelFor* parallel = nullptr;
  // Output allocator; null means fresh heap allocation. Arena-served buffers are not
  // zeroed: a kernel using AllocateOutput must write every output element.
  TensorArena* arena = nullptr;

  // Runs fn(begin, end) over disjoint chunks of [0, n) — on the runtime pool when a
  // handle is present, inline otherwise.
  void For(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
           int64_t grain = 1) const;

  // Allocates the kernel's output tensor, recycling a dead intermediate if possible.
  Tensor AllocateOutput(Shape shape) const;

  // Per-kernel workspace allocation (e.g. a conv receptive-field gather buffer or a
  // softmax exp row). Same allocator as AllocateOutput; the point of the distinct
  // name is the contract: a workspace is RETURNED via Recycle when the chunk is
  // done, so it cycles through the arena even in trace-retaining runs where no
  // output ever dies. Not zeroed; overwrite before reading.
  Tensor AllocateScratch(Shape shape) const;
  // Offers a finished workspace back for reuse (no-op without an arena).
  void Recycle(Tensor&& scratch) const;
};

struct BoundContext {
  const DeviceProfile& device;
  const std::vector<Tensor>& inputs;
  const Tensor& output;
  const Attrs& attrs;
  BoundMode mode = BoundMode::kProbabilistic;
  double lambda = kDefaultLambda;
  // Same contract as OpContext::parallel (bounds are per-element FP64 arithmetic, so
  // outer-loop splitting is always bitwise safe).
  const ParallelFor* parallel = nullptr;
  // FP64 scratch allocator for bound templates; null means fresh heap allocation.
  // Bound runs RETAIN every value and bound tensor (full traces), so this handle is
  // the only recycling such a run gets: per-chunk scratch (|e|, eps rows, abs-patch
  // gathers) drawn here and Recycled at chunk end cycles through the arena's double
  // pool instead of hammering the system allocator once per chunk.
  TensorArena* arena = nullptr;

  void For(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
           int64_t grain = 1) const;

  // Allocates an FP64 tensor (bound scratch; also usable for the bound result).
  // Arena-served buffers are not zeroed: overwrite every element before reading.
  DTensor AllocateScratch(Shape shape) const;
  // Offers finished scratch back for reuse (no-op without an arena).
  void Recycle(DTensor&& scratch) const;
};

struct VjpContext {
  const std::vector<Tensor>& inputs;
  const Tensor& output;
  const Tensor& grad_output;
  const Attrs& attrs;
};

class OpKernel {
 public:
  virtual ~OpKernel() = default;

  virtual std::string name() const = 0;

  // Output shape given input shapes; used for tracing and validation.
  virtual Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const = 0;

  virtual Tensor Forward(const OpContext& ctx) const = 0;

  // Same-shape-as-output element-wise theoretical error bound tau_theo (FP64). The
  // default is the zero bound, correct for pure data movement.
  virtual DTensor Bound(const BoundContext& ctx) const;

  // Gradients with respect to each input (same order/shapes as inputs). The default
  // aborts; only operators reachable by the attack graphs need differentiability.
  virtual std::vector<Tensor> Vjp(const VjpContext& ctx) const;

  // Floating-point operation count of Forward; data movement counts 0.
  virtual int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                        const Attrs& attrs) const;
};

// Global kernel registry; kernels are registered once at startup (RegisterAllOps) and
// looked up by graph executors by op name.
class OpRegistry {
 public:
  static OpRegistry& Instance();

  void Register(std::unique_ptr<OpKernel> kernel);
  const OpKernel& Get(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  OpRegistry() = default;
  std::map<std::string, std::unique_ptr<OpKernel>> kernels_;
};

// Registers every kernel in src/ops; idempotent.
void RegisterAllOps();

// Registration entry points implemented by the per-family translation units.
void RegisterElementwiseOps(OpRegistry& registry);
void RegisterActivationOps(OpRegistry& registry);
void RegisterSoftmaxOps(OpRegistry& registry);
void RegisterNormalizationOps(OpRegistry& registry);
void RegisterMatmulOps(OpRegistry& registry);
void RegisterConvOps(OpRegistry& registry);
void RegisterPoolingOps(OpRegistry& registry);
void RegisterReductionOps(OpRegistry& registry);
void RegisterStructuralOps(OpRegistry& registry);

}  // namespace tao

#endif  // TAO_SRC_OPS_OP_KERNEL_H_
