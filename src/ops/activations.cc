// Activation operators: ReLU (exact), GELU (erf form), SiLU (x·sigmoid(x)).
//
// GELU and SiLU bounds follow the Sec. 3.1 template style: lower the operator to its
// primitive sub-steps, propagate the intra-operator error with first-order sensitivity
// envelopes, and add fresh rounding/intrinsic-ULP terms per step.

#include <cmath>

#include "src/device/simd.h"
#include "src/device/vmath.h"
#include "src/ops/op_kernel.h"
#include "src/util/check.h"

namespace tao {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;
constexpr double kTwoOverSqrtPi = 1.12837916709551257390;

class ActivationKernel : public OpKernel {
 public:
  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 1u);
    return input_shapes[0];
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    // Count a handful of primitive ops per element (activation-dependent constant).
    return output_shape.numel() * PerElementFlops();
  }

 protected:
  virtual int64_t PerElementFlops() const { return 1; }
};

class ReluKernel : public ActivationKernel {
 public:
  std::string name() const override { return "relu"; }

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    Tensor out = ctx.AllocateOutput(x.shape());
    const auto xv = x.values();
    auto ov = out.mutable_values();
    ctx.For(out.numel(), [&](int64_t begin, int64_t end) {
      simd::Relu(xv.data() + begin, ov.data() + begin, end - begin);
    });
    return out;
  }

  // max(x, 0) is exact: zero bound (base-class default).

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const auto xv = ctx.inputs[0].values();
    const auto gv = ctx.grad_output.values();
    Tensor grad(ctx.inputs[0].shape());
    auto out = grad.mutable_values();
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = xv[i] > 0.0f ? gv[i] : 0.0f;
    }
    return {grad};
  }
};

class GeluKernel : public ActivationKernel {
 public:
  std::string name() const override { return "gelu"; }

  Tensor Forward(const OpContext& ctx) const override {
    // vmath::GeluVec performs exactly the scalar recipe (t = x/sqrt(2);
    // y = (0.5*x)*(1 + erf(t)) with the pinned-polynomial erf every device
    // routes through), so the vector path commits identical bits 8 lanes at a time.
    const Tensor& x = ctx.inputs[0];
    Tensor out = ctx.AllocateOutput(x.shape());
    const auto xv = x.values();
    auto ov = out.mutable_values();
    ctx.For(out.numel(), [&](int64_t begin, int64_t end) {
      vmath::GeluVec(xv.data() + begin, ov.data() + begin, end - begin);
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    // Sub-steps: t = x/sqrt(2); e = erf(t); s = 1 + e; y = 0.5 * x * s.
    // eps_t <= u|t|;  eps_e <= |erf'(t)|eps_t + ulp_err(e);  eps_s <= eps_e + u|s|;
    // eps_y <= 0.5|x| eps_s + u|y|  (multiplication by 0.5 is exact).
    const double u = kUnitRoundoff;
    const double erf_ulp = ctx.device.ErfUlp();
    DTensor bound(ctx.output.shape());
    const auto xv = ctx.inputs[0].values();
    const auto yv = ctx.output.values();
    auto bv = bound.mutable_values();
    for (size_t i = 0; i < bv.size(); ++i) {
      const double x = xv[i];
      const double t = x * kInvSqrt2;
      const double e = std::erf(t);
      const double s = 1.0 + e;
      const double eps_t = u * std::abs(t);
      const double erf_deriv = kTwoOverSqrtPi * std::exp(-t * t);
      const double eps_e = erf_deriv * eps_t + UlpError(e, erf_ulp);
      const double eps_s = eps_e + u * std::abs(s);
      bv[i] = 0.5 * std::abs(x) * eps_s + u * std::abs(static_cast<double>(yv[i]));
    }
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    // d/dx gelu = Phi(x) + x * phi(x) with Phi the standard normal CDF, phi the PDF.
    const auto xv = ctx.inputs[0].values();
    const auto gv = ctx.grad_output.values();
    Tensor grad(ctx.inputs[0].shape());
    auto out = grad.mutable_values();
    for (size_t i = 0; i < out.size(); ++i) {
      const double x = xv[i];
      const double cdf = 0.5 * (1.0 + std::erf(x * kInvSqrt2));
      const double pdf = std::exp(-0.5 * x * x) / std::sqrt(2.0 * 3.14159265358979323846);
      out[i] = gv[i] * static_cast<float>(cdf + x * pdf);
    }
    return {grad};
  }

 protected:
  int64_t PerElementFlops() const override { return 5; }
};

class SiluKernel : public ActivationKernel {
 public:
  std::string name() const override { return "silu"; }

  Tensor Forward(const OpContext& ctx) const override {
    // vmath::SiluVec is the scalar recipe (y = x * (1/(1 + exp(-x))) with the pinned
    // exp) in 8-wide form; bits are identical by construction.
    const Tensor& x = ctx.inputs[0];
    Tensor out = ctx.AllocateOutput(x.shape());
    const auto xv = x.values();
    auto ov = out.mutable_values();
    ctx.For(out.numel(), [&](int64_t begin, int64_t end) {
      vmath::SiluVec(xv.data() + begin, ov.data() + begin, end - begin);
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    // Sub-steps: e = exp(-x); d = 1 + e; s = 1/d; y = x * s.
    // eps_e <= ulp_err(e); eps_d <= eps_e + u|d|; eps_s <= eps_d/|d|^2 + u|s|;
    // eps_y <= |x| eps_s + u|y|.
    const double u = kUnitRoundoff;
    const double exp_ulp = ctx.device.ExpUlp();
    DTensor bound(ctx.output.shape());
    const auto xv = ctx.inputs[0].values();
    const auto yv = ctx.output.values();
    auto bv = bound.mutable_values();
    for (size_t i = 0; i < bv.size(); ++i) {
      const double x = xv[i];
      const double e = std::exp(-x);
      const double d = 1.0 + e;
      const double s = 1.0 / d;
      const double eps_e = UlpError(e, exp_ulp);
      const double eps_d = eps_e + u * d;
      const double eps_s = eps_d / (d * d) + u * s;
      bv[i] = std::abs(x) * eps_s + u * std::abs(static_cast<double>(yv[i]));
    }
    return bound;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    // d/dx x*sigma(x) = sigma(x) + x*sigma(x)(1 - sigma(x)).
    const auto xv = ctx.inputs[0].values();
    const auto gv = ctx.grad_output.values();
    Tensor grad(ctx.inputs[0].shape());
    auto out = grad.mutable_values();
    for (size_t i = 0; i < out.size(); ++i) {
      const double x = xv[i];
      const double sigmoid = 1.0 / (1.0 + std::exp(-x));
      out[i] = gv[i] * static_cast<float>(sigmoid + x * sigmoid * (1.0 - sigmoid));
    }
    return {grad};
  }

 protected:
  int64_t PerElementFlops() const override { return 4; }
};

}  // namespace

void RegisterActivationOps(OpRegistry& registry) {
  registry.Register(std::make_unique<ReluKernel>());
  registry.Register(std::make_unique<GeluKernel>());
  registry.Register(std::make_unique<SiluKernel>());
}

}  // namespace tao
