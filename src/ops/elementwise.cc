// Elementwise binary (Add, Sub, Mul, Div) and unary (Neg, Exp, Log, Sqrt, Rsqrt, Tanh,
// Sin, Cos, Pow) operators.
//
// Forward paths route transcendental intrinsics through the DeviceProfile so different
// devices produce last-ulp-different results. Bound templates follow Sec. 3.1: basic
// arithmetic contributes one fresh rounding u·|out|; library intrinsics contribute
// their vendor-stated maximum-ULP error. Neg is exact (sign-bit flip).

#include <cmath>
#include <functional>

#include "src/device/simd.h"
#include "src/device/vmath.h"
#include "src/ops/broadcast.h"
#include "src/ops/op_kernel.h"
#include "src/util/check.h"

namespace tao {
namespace {

// ------------------------------- binary operators ---------------------------------

class BinaryKernel : public OpKernel {
 public:
  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 2u);
    return BroadcastShape(input_shapes[0], input_shapes[1]);
  }

  Tensor Forward(const OpContext& ctx) const override {
    TAO_CHECK_EQ(ctx.inputs.size(), 2u);
    const Tensor& a = ctx.inputs[0];
    const Tensor& b = ctx.inputs[1];
    const Shape out_shape = BroadcastShape(a.shape(), b.shape());
    Tensor out = ctx.AllocateOutput(out_shape);
    const auto av = a.values();
    const auto bv = b.values();
    auto ov = out.mutable_values();
    // No broadcasting: both indexers are identities, so chunks apply straight through
    // ApplyVec (vectorized for the four arithmetic kernels, a plain loop otherwise).
    if (a.shape() == out_shape && b.shape() == out_shape) {
      ctx.For(out.numel(), [&](int64_t begin, int64_t end) {
        ApplyVec(av.data() + begin, bv.data() + begin, ov.data() + begin, end - begin);
      });
      return out;
    }
    const BroadcastIndexer ia(out_shape, a.shape());
    const BroadcastIndexer ib(out_shape, b.shape());
    for (int64_t i = 0; i < out.numel(); ++i) {
      ov[static_cast<size_t>(i)] =
          Apply(av[static_cast<size_t>(ia.MapOffset(i))], bv[static_cast<size_t>(ib.MapOffset(i))]);
    }
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    // One rounding of the exact result: |fl(x∘y) - (x∘y)| <= u * |fl(x∘y)|.
    DTensor bound(ctx.output.shape());
    const auto ov = ctx.output.values();
    auto bv = bound.mutable_values();
    for (size_t i = 0; i < bv.size(); ++i) {
      bv[i] = kUnitRoundoff * std::abs(static_cast<double>(ov[i]));
    }
    return bound;
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    return output_shape.numel();
  }

 protected:
  virtual float Apply(float a, float b) const = 0;

  // Contiguous same-shape batch of Apply; arithmetic kernels override with the SIMD
  // helpers (bitwise-identical: one IEEE rounding per element either way).
  virtual void ApplyVec(const float* a, const float* b, float* out, int64_t n) const {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = Apply(a[i], b[i]);
    }
  }
};

class AddKernel : public BinaryKernel {
 public:
  std::string name() const override { return "add"; }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    return {ReduceGradToShape(ctx.grad_output, ctx.inputs[0].shape()),
            ReduceGradToShape(ctx.grad_output, ctx.inputs[1].shape())};
  }

 protected:
  float Apply(float a, float b) const override { return a + b; }
  void ApplyVec(const float* a, const float* b, float* out, int64_t n) const override {
    simd::AddVec(a, b, out, n);
  }
};

class SubKernel : public BinaryKernel {
 public:
  std::string name() const override { return "sub"; }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    Tensor neg_grad = ctx.grad_output.Clone();
    for (float& g : neg_grad.mutable_values()) {
      g = -g;
    }
    return {ReduceGradToShape(ctx.grad_output, ctx.inputs[0].shape()),
            ReduceGradToShape(neg_grad, ctx.inputs[1].shape())};
  }

 protected:
  float Apply(float a, float b) const override { return a - b; }
  void ApplyVec(const float* a, const float* b, float* out, int64_t n) const override {
    simd::SubVec(a, b, out, n);
  }
};

class MulKernel : public BinaryKernel {
 public:
  std::string name() const override { return "mul"; }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& a = ctx.inputs[0];
    const Tensor& b = ctx.inputs[1];
    const Shape& out_shape = ctx.grad_output.shape();
    Tensor ga(out_shape);
    Tensor gb(out_shape);
    const BroadcastIndexer ia(out_shape, a.shape());
    const BroadcastIndexer ib(out_shape, b.shape());
    const auto av = a.values();
    const auto bv = b.values();
    const auto gv = ctx.grad_output.values();
    auto gav = ga.mutable_values();
    auto gbv = gb.mutable_values();
    for (int64_t i = 0; i < ctx.grad_output.numel(); ++i) {
      const size_t k = static_cast<size_t>(i);
      gav[k] = gv[k] * bv[static_cast<size_t>(ib.MapOffset(i))];
      gbv[k] = gv[k] * av[static_cast<size_t>(ia.MapOffset(i))];
    }
    return {ReduceGradToShape(ga, a.shape()), ReduceGradToShape(gb, b.shape())};
  }

 protected:
  float Apply(float a, float b) const override { return a * b; }
  void ApplyVec(const float* a, const float* b, float* out, int64_t n) const override {
    simd::MulVec(a, b, out, n);
  }
};

class DivKernel : public BinaryKernel {
 public:
  std::string name() const override { return "div"; }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const Tensor& a = ctx.inputs[0];
    const Tensor& b = ctx.inputs[1];
    const Shape& out_shape = ctx.grad_output.shape();
    Tensor ga(out_shape);
    Tensor gb(out_shape);
    const BroadcastIndexer ia(out_shape, a.shape());
    const BroadcastIndexer ib(out_shape, b.shape());
    const auto av = a.values();
    const auto bv = b.values();
    const auto gv = ctx.grad_output.values();
    auto gav = ga.mutable_values();
    auto gbv = gb.mutable_values();
    for (int64_t i = 0; i < ctx.grad_output.numel(); ++i) {
      const size_t k = static_cast<size_t>(i);
      const float bi = bv[static_cast<size_t>(ib.MapOffset(i))];
      const float ai = av[static_cast<size_t>(ia.MapOffset(i))];
      gav[k] = gv[k] / bi;
      gbv[k] = -gv[k] * ai / (bi * bi);
    }
    return {ReduceGradToShape(ga, a.shape()), ReduceGradToShape(gb, b.shape())};
  }

 protected:
  float Apply(float a, float b) const override { return a / b; }
  void ApplyVec(const float* a, const float* b, float* out, int64_t n) const override {
    simd::DivVec(a, b, out, n);
  }
};

// ------------------------------- unary operators ----------------------------------

class UnaryKernel : public OpKernel {
 public:
  Shape InferShape(const std::vector<Shape>& input_shapes, const Attrs& attrs) const override {
    TAO_CHECK_EQ(input_shapes.size(), 1u);
    return input_shapes[0];
  }

  Tensor Forward(const OpContext& ctx) const override {
    TAO_CHECK_EQ(ctx.inputs.size(), 1u);
    const Tensor& x = ctx.inputs[0];
    Tensor out(x.shape());
    const auto xv = x.values();
    auto ov = out.mutable_values();
    for (size_t i = 0; i < ov.size(); ++i) {
      ov[i] = Apply(ctx.device, xv[i], ctx.attrs);
    }
    return out;
  }

  int64_t Flops(const std::vector<Shape>& input_shapes, const Shape& output_shape,
                const Attrs& attrs) const override {
    return output_shape.numel();
  }

 protected:
  virtual float Apply(const DeviceProfile& device, float x, const Attrs& attrs) const = 0;
};

// Intrinsic bound: n_ulp units in the last place of the output.
DTensor UlpBound(const Tensor& output, double n_ulp) {
  DTensor bound(output.shape());
  const auto ov = output.values();
  auto bv = bound.mutable_values();
  for (size_t i = 0; i < bv.size(); ++i) {
    bv[i] = UlpError(static_cast<double>(ov[i]), n_ulp);
  }
  return bound;
}

Tensor ElementwiseGrad(const VjpContext& ctx, const std::function<float(size_t)>& dfdx) {
  Tensor grad(ctx.inputs[0].shape());
  const auto gv = ctx.grad_output.values();
  auto out = grad.mutable_values();
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = gv[i] * dfdx(i);
  }
  return grad;
}

class NegKernel : public UnaryKernel {
 public:
  std::string name() const override { return "neg"; }

  // Sign-bit flip is exact: zero bound (the base-class default).

  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    Tensor out = ctx.AllocateOutput(x.shape());
    const auto xv = x.values();
    auto ov = out.mutable_values();
    ctx.For(out.numel(), [&](int64_t begin, int64_t end) {
      simd::Neg(xv.data() + begin, ov.data() + begin, end - begin);
    });
    return out;
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    return {ElementwiseGrad(ctx, [](size_t) { return -1.0f; })};
  }

 protected:
  float Apply(const DeviceProfile&, float x, const Attrs&) const override { return -x; }
};

class ExpKernel : public UnaryKernel {
 public:
  std::string name() const override { return "exp"; }

  // Vectorized override: device.Exp is the pinned vmath polynomial on every profile,
  // so the 8-wide ExpVec commits the same bits as the per-element Apply fallback.
  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    Tensor out = ctx.AllocateOutput(x.shape());
    const auto xv = x.values();
    auto ov = out.mutable_values();
    ctx.For(out.numel(), [&](int64_t begin, int64_t end) {
      vmath::ExpVec(xv.data() + begin, ov.data() + begin, end - begin);
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    return UlpBound(ctx.output, ctx.device.ExpUlp());
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const auto ov = ctx.output.values();
    return {ElementwiseGrad(ctx, [&](size_t i) { return ov[i]; })};
  }

 protected:
  float Apply(const DeviceProfile& device, float x, const Attrs&) const override {
    return device.Exp(x);
  }
};

class LogKernel : public UnaryKernel {
 public:
  std::string name() const override { return "log"; }

  DTensor Bound(const BoundContext& ctx) const override {
    return UlpBound(ctx.output, ctx.device.LogUlp());
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const auto xv = ctx.inputs[0].values();
    return {ElementwiseGrad(ctx, [&](size_t i) { return 1.0f / xv[i]; })};
  }

 protected:
  float Apply(const DeviceProfile& device, float x, const Attrs&) const override {
    return device.Log(x);
  }
};

class SqrtKernel : public UnaryKernel {
 public:
  std::string name() const override { return "sqrt"; }

  DTensor Bound(const BoundContext& ctx) const override {
    return UlpBound(ctx.output, ctx.device.SqrtUlp());
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const auto ov = ctx.output.values();
    return {ElementwiseGrad(ctx, [&](size_t i) { return 0.5f / ov[i]; })};
  }

 protected:
  float Apply(const DeviceProfile& device, float x, const Attrs&) const override {
    return device.Sqrt(x);
  }
};

class RsqrtKernel : public UnaryKernel {
 public:
  std::string name() const override { return "rsqrt"; }

  DTensor Bound(const BoundContext& ctx) const override {
    return UlpBound(ctx.output, ctx.device.RsqrtUlp());
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const auto xv = ctx.inputs[0].values();
    const auto ov = ctx.output.values();
    return {ElementwiseGrad(ctx, [&](size_t i) { return -0.5f * ov[i] / xv[i]; })};
  }

 protected:
  float Apply(const DeviceProfile& device, float x, const Attrs&) const override {
    return device.Rsqrt(x);
  }
};

class TanhKernel : public UnaryKernel {
 public:
  std::string name() const override { return "tanh"; }

  // Vectorized override, same argument as ExpKernel::Forward.
  Tensor Forward(const OpContext& ctx) const override {
    const Tensor& x = ctx.inputs[0];
    Tensor out = ctx.AllocateOutput(x.shape());
    const auto xv = x.values();
    auto ov = out.mutable_values();
    ctx.For(out.numel(), [&](int64_t begin, int64_t end) {
      vmath::TanhVec(xv.data() + begin, ov.data() + begin, end - begin);
    });
    return out;
  }

  DTensor Bound(const BoundContext& ctx) const override {
    return UlpBound(ctx.output, ctx.device.TanhUlp());
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const auto ov = ctx.output.values();
    return {ElementwiseGrad(ctx, [&](size_t i) { return 1.0f - ov[i] * ov[i]; })};
  }

 protected:
  float Apply(const DeviceProfile& device, float x, const Attrs&) const override {
    return device.Tanh(x);
  }
};

class SinKernel : public UnaryKernel {
 public:
  std::string name() const override { return "sin"; }

  DTensor Bound(const BoundContext& ctx) const override {
    return UlpBound(ctx.output, ctx.device.SinCosUlp());
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const auto xv = ctx.inputs[0].values();
    return {ElementwiseGrad(ctx, [&](size_t i) { return std::cos(xv[i]); })};
  }

 protected:
  float Apply(const DeviceProfile& device, float x, const Attrs&) const override {
    return device.Sin(x);
  }
};

class CosKernel : public UnaryKernel {
 public:
  std::string name() const override { return "cos"; }

  DTensor Bound(const BoundContext& ctx) const override {
    return UlpBound(ctx.output, ctx.device.SinCosUlp());
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const auto xv = ctx.inputs[0].values();
    return {ElementwiseGrad(ctx, [&](size_t i) { return -std::sin(xv[i]); })};
  }

 protected:
  float Apply(const DeviceProfile& device, float x, const Attrs&) const override {
    return device.Cos(x);
  }
};

// pow with a compile-time scalar exponent attribute ("exponent").
class PowKernel : public UnaryKernel {
 public:
  std::string name() const override { return "pow"; }

  DTensor Bound(const BoundContext& ctx) const override {
    return UlpBound(ctx.output, ctx.device.PowUlp());
  }

  std::vector<Tensor> Vjp(const VjpContext& ctx) const override {
    const double p = ctx.attrs.GetDouble("exponent");
    const auto xv = ctx.inputs[0].values();
    return {ElementwiseGrad(ctx, [&](size_t i) {
      return static_cast<float>(p * std::pow(static_cast<double>(xv[i]), p - 1.0));
    })};
  }

 protected:
  float Apply(const DeviceProfile& device, float x, const Attrs& attrs) const override {
    return device.Pow(x, static_cast<float>(attrs.GetDouble("exponent")));
  }
};

}  // namespace

void RegisterElementwiseOps(OpRegistry& registry) {
  registry.Register(std::make_unique<AddKernel>());
  registry.Register(std::make_unique<SubKernel>());
  registry.Register(std::make_unique<MulKernel>());
  registry.Register(std::make_unique<DivKernel>());
  registry.Register(std::make_unique<NegKernel>());
  registry.Register(std::make_unique<ExpKernel>());
  registry.Register(std::make_unique<LogKernel>());
  registry.Register(std::make_unique<SqrtKernel>());
  registry.Register(std::make_unique<RsqrtKernel>());
  registry.Register(std::make_unique<TanhKernel>());
  registry.Register(std::make_unique<SinKernel>());
  registry.Register(std::make_unique<CosKernel>());
  registry.Register(std::make_unique<PowKernel>());
}

}  // namespace tao
