// BatchFormer: adaptive cohort sizing for the verification service.
//
// The PR-2 marketplace sized every batch from one config knob (`verify_batch_size`).
// That knob is wrong in both directions under open-ended traffic: too small and the
// scheduler DAG cannot fill the machine when the queue is deep; too large and a
// burst of supervised claims blows the working set. The BatchFormer replaces it with
// a policy driven by two live signals:
//
//   * queue depth — a deep queue asks for wide cohorts (throughput), a shallow one
//     for narrow cohorts (latency: don't hold the first claim hostage waiting to
//     fill a bus);
//   * a memory budget — the per-claim working-set estimate is learned online from
//     TensorArena high-water marks (Stats::peak_outstanding_bytes) observed on past
//     cohorts, and the next cohort is capped so that it plus the claims already in
//     flight stay inside `memory_budget_bytes`.
//
// The config knob survives only as `initial_hint`: the cap used before the first
// arena observation exists. Sizing never affects outcomes — per-claim results are
// batch-composition-independent (see docs/batching.md), so this policy is free to be
// as adaptive as it likes.

#ifndef TAO_SRC_SERVICE_BATCH_FORMER_H_
#define TAO_SRC_SERVICE_BATCH_FORMER_H_

#include <cstdint>
#include <mutex>

namespace tao {

struct BatchFormerOptions {
  // Cohort-size cap until the first memory observation arrives (the demoted
  // `verify_batch_size`). <= 0 disables the pre-observation cap.
  int64_t initial_hint = 16;
  int64_t min_batch = 1;
  int64_t max_batch = 64;
  // Target ceiling for the batch-execution working set (this cohort plus claims
  // already in flight), enforced through the learned per-claim estimate. Only the
  // INITIAL budget: the serving gateway (src/registry/) re-apportions one global
  // budget across hot models at runtime via set_memory_budget().
  int64_t memory_budget_bytes = 256ll << 20;
};

class BatchFormer {
 public:
  explicit BatchFormer(BatchFormerOptions options);

  // Size for the next cohort given the current queue depth and the number of claims
  // already popped but not yet resolved. Always in [min_batch, max_batch].
  int64_t NextBatchSize(int64_t queue_depth, int64_t in_flight_claims) const;

  // Feeds back one executed cohort's arena high-water mark. `peak_bytes <= 0` (no
  // arena ran, e.g. reuse_buffers off) leaves the estimate untouched.
  void ObserveBatch(int64_t batch_size, int64_t peak_bytes);

  // Smoothed per-claim working-set estimate; 0 until the first observation.
  int64_t per_claim_bytes_estimate() const;

  // Live memory-budget knob (gateway apportionment). Sizing is outcome-free (see
  // docs/batching.md), so the budget may move at any time without a determinism
  // cost; the next NextBatchSize call sees the new ceiling.
  void set_memory_budget(int64_t bytes);
  int64_t memory_budget() const;

 private:
  const BatchFormerOptions options_;
  mutable std::mutex mu_;
  double per_claim_bytes_ = 0.0;
  int64_t memory_budget_bytes_;  // guarded by mu_
};

}  // namespace tao

#endif  // TAO_SRC_SERVICE_BATCH_FORMER_H_
