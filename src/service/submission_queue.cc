#include "src/service/submission_queue.h"

#include <utility>

#include "src/util/check.h"

namespace tao {

const BatchClaimOutcome& ClaimTicket::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_; });
  return outcome_;
}

bool ClaimTicket::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void ClaimTicket::OnDelivered(std::function<void(const BatchClaimOutcome&)> callback) {
  std::unique_lock<std::mutex> lock(mu_);
  if (done_) {
    // Already delivered: run inline. outcome_ is immutable once done_ is set (it
    // is written exactly once, under mu_), so reading it unlocked here is safe —
    // this thread observed done_ under the lock.
    lock.unlock();
    callback(outcome_);
    return;
  }
  TAO_CHECK(!on_delivered_) << "ticket already has a delivery callback";
  on_delivered_ = std::move(callback);
}

void ClaimTicket::Deliver(BatchClaimOutcome outcome) {
  std::function<void(const BatchClaimOutcome&)> callback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TAO_CHECK(!done_) << "ticket delivered twice";
    outcome_ = std::move(outcome);
    done_ = true;
    callback = std::move(on_delivered_);
  }
  cv_.notify_all();
  // Outside the lock: the callback may take its own locks (the RPC session's),
  // and Wait()ers are already released above.
  if (callback) {
    callback(outcome_);
  }
}

SubmissionQueue::SubmissionQueue(size_t capacity, AdmissionPolicy policy,
                                 size_t per_submitter_cap)
    : capacity_(capacity), policy_(policy), per_submitter_cap_(per_submitter_cap) {
  TAO_CHECK(capacity_ > 0) << "queue capacity must be positive";
}

bool SubmissionQueue::HasRoomLocked(uint64_t submitter) const {
  if (items_.size() >= capacity_) {
    return false;
  }
  if (per_submitter_cap_ > 0) {
    const auto it = per_submitter_depth_.find(submitter);
    if (it != per_submitter_depth_.end() && it->second >= per_submitter_cap_) {
      return false;
    }
  }
  return true;
}

SubmitStatus SubmissionQueue::Push(SubmissionRecord record) {
  std::unique_lock<std::mutex> lock(mu_);
  if (policy_ == AdmissionPolicy::kBlock) {
    not_full_.wait(lock, [&] { return closed_ || HasRoomLocked(record.submitter); });
  }
  if (closed_) {
    return SubmitStatus::kRejectedClosed;
  }
  if (!HasRoomLocked(record.submitter)) {
    return SubmitStatus::kRejectedFull;
  }
  record.sequence = next_sequence_++;
  if (record.ticket != nullptr) {
    // Stamped under the queue lock: the pop (same lock) happens-before resolution
    // and delivery, so a client reading sequence() after Wait() races with nothing.
    record.ticket->sequence_ = record.sequence;
  }
  ++per_submitter_depth_[record.submitter];
  items_.push_back(std::move(record));
  if (items_.size() > peak_depth_) {
    peak_depth_ = items_.size();
  }
  lock.unlock();
  not_empty_.notify_one();
  return SubmitStatus::kAccepted;
}

std::vector<SubmissionRecord> SubmissionQueue::PopUpTo(size_t max_items) {
  std::vector<SubmissionRecord> popped;
  if (max_items == 0) {
    return popped;
  }
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
  const size_t count = std::min(max_items, items_.size());
  popped.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    SubmissionRecord record = std::move(items_.front());
    items_.pop_front();
    const auto it = per_submitter_depth_.find(record.submitter);
    TAO_CHECK(it != per_submitter_depth_.end() && it->second > 0);
    if (--it->second == 0) {
      per_submitter_depth_.erase(it);
    }
    popped.push_back(std::move(record));
  }
  lock.unlock();
  if (count > 0) {
    not_full_.notify_all();
  }
  return popped;
}

void SubmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

size_t SubmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

size_t SubmissionQueue::peak_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_depth_;
}

uint64_t SubmissionQueue::accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_sequence_;
}

bool SubmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace tao
