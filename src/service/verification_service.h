// VerificationService: the always-on, in-process front-end that turns the PR-2
// batch machinery into a served system. Any number of client threads submit claims;
// the service owns admission, adaptive batching, dispatch, dispute escalation, and
// verdict delivery.
//
// Pipeline (see docs/service.md for the full architecture and determinism argument):
//
//   clients ──Submit──▶ SubmissionQueue ──PopUpTo──▶ verify workers ──▶ reorder
//             (bounded,    (FIFO, global     (N threads; BatchFormer     buffer
//              fairness)    sequence)         sizes each cohort;           │
//                                             BatchVerifier phase 1)       ▼
//                                                       resolve/dispute lane ──▶ tickets
//                                                       (1 thread; coordinator
//                                                        actions + dispute games
//                                                        in submission order)
//
//   * Verify workers run only coordinator-free work: the batched phase-1 DAG, the
//     threshold checks, and the lazy full re-execution of flagged claims. Any
//     number of workers can execute cohorts concurrently.
//   * The resolve/dispute lane is ONE dedicated thread that performs every
//     coordinator interaction in global submission order — flagged claims escalate
//     to their full dispute game here, so a slow game never occupies a verify
//     worker and phase-1 throughput is unaffected. In-order resolution is what
//     makes verdicts, per-claim gas, C0 digests, claim ids, and the ledger bitwise
//     identical to the sequential PR-1 path for a fixed submission order, for ANY
//     worker count and ANY batch sizing.
//   * The reorder window (`max_unresolved`) bounds executed-but-unresolved claims,
//     so a dispute burst backpressures the workers (and, through the bounded queue,
//     the clients) instead of accumulating unbounded phase-1 results.

#ifndef TAO_SRC_SERVICE_VERIFICATION_SERVICE_H_
#define TAO_SRC_SERVICE_VERIFICATION_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/service/batch_former.h"
#include "src/service/metrics.h"
#include "src/service/submission_queue.h"

namespace tao {

struct ServiceOptions {
  // Verify workers (dedicated threads running batched phase 1). The heavy kernels
  // additionally split across the shared runtime pool per
  // `verifier.dispute.num_threads`, so 1 worker already uses every core; more
  // workers overlap cohort setup/teardown and lazy re-executions.
  int num_workers = 1;
  size_t queue_capacity = 256;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  // Bounds one submitter's resident queue share (0 = off). See SubmissionQueue.
  size_t per_submitter_cap = 0;
  // Cap on claims popped from the queue whose verdicts have not been delivered yet
  // (the reorder window between workers and the resolve lane). 0 = 4x max_batch.
  size_t max_unresolved = 0;
  BatchFormerOptions batching;
  BatchVerifierOptions verifier;
};

class VerificationService {
 public:
  // The service starts its threads immediately and serves until Drain()/destruction.
  // `coordinator` outlives the service; verdicts settle against it.
  VerificationService(const Model& model, const ModelCommitment& commitment,
                      const ThresholdSet& thresholds, Coordinator& coordinator,
                      ServiceOptions options = {});
  ~VerificationService();

  VerificationService(const VerificationService&) = delete;
  VerificationService& operator=(const VerificationService&) = delete;

  // Submits one claim. Returns the ticket to wait on, or null when the submission
  // was rejected (queue full under kReject, or the service is draining).
  // `submitter` identifies the client for per-submitter fairness.
  std::shared_ptr<ClaimTicket> Submit(BatchClaim claim, uint64_t submitter = 0);

  // Graceful drain: closes admission, then blocks until every accepted claim has
  // its verdict delivered. Idempotent; the destructor calls it.
  void Drain();

  // Live metrics; callable from any thread while the service runs.
  MetricsSnapshot metrics() const;

 private:
  struct PendingResolution {
    SubmissionRecord record;
    ClaimPhase1 phase1;
  };

  void WorkerLoop();
  void ResolveLoop();

  const ServiceOptions options_;
  const size_t max_unresolved_;
  BatchVerifier verifier_;
  SubmissionQueue queue_;
  BatchFormer former_;
  MetricsRegistry metrics_;

  // Guards the reorder buffer and the pipeline gauges below.
  mutable std::mutex mu_;
  std::condition_variable resolve_cv_;  // resolve lane waits for next_resolve_seq_
  std::condition_variable window_cv_;   // workers wait for reorder-window room
  std::condition_variable drained_cv_;  // Drain() waits for full delivery
  std::map<uint64_t, PendingResolution> ready_;
  uint64_t next_resolve_seq_ = 0;
  size_t unresolved_ = 0;  // popped from the queue, verdict not yet delivered
  bool draining_ = false;

  std::vector<std::thread> workers_;
  std::thread resolver_;
};

}  // namespace tao

#endif  // TAO_SRC_SERVICE_VERIFICATION_SERVICE_H_
