// VerificationService: the always-on, in-process front-end that turns the PR-2
// batch machinery into a served system. Any number of client threads submit claims;
// the service owns admission, adaptive batching, dispatch, dispute escalation, and
// verdict delivery.
//
// Pipeline (see docs/service.md and docs/coordinator.md for the full architecture
// and determinism argument):
//
//   clients ──Submit──▶ SubmissionQueue ──PopUpTo──▶ verify workers ──▶ per-shard
//             (bounded,    (FIFO, global     (N threads; BatchFormer    reorder
//              fairness,    sequence)         sizes each cohort;        buffers
//              SLO gate)                      BatchVerifier phase 1)      │
//                                                    resolve lane 0 ──▶ delivery
//                                                    resolve lane 1 ──▶ (ordered or
//                                                    ...     lane S-1 ──▶ unordered)
//
//   * Verify workers run only coordinator-free work: the batched phase-1 DAG, the
//     threshold checks, and the lazy full re-execution of flagged claims. Any
//     number of workers can execute cohorts concurrently.
//   * There is ONE resolve/dispute lane per coordinator shard (the service derives
//     the lane count from Coordinator::num_shards()). A submission with global
//     sequence s belongs to lane s % S; lane k performs every coordinator
//     interaction for its claims — flagged claims escalate to their full dispute
//     game on the lane thread — in ITS claims' submission order, against
//     coordinator shard k. Shards are fully isolated (own lock, clock, gas,
//     ledger), so lanes never contend and a slow dispute on one lane never stalls
//     another lane's resolutions. Per-shard in-order resolution is what makes each
//     shard's verdicts, per-claim gas, C0 digests, claim ids, and ledger a bitwise
//     function of that shard's submission subsequence alone, for ANY worker count
//     and ANY batch sizing. With one shard this is exactly the historical global
//     guarantee: bitwise identity with the sequential PR-1 path.
//   * Verdict delivery: by default tickets are released in GLOBAL submission order
//     (head-of-line: a long dispute on any lane delays later claims' delivery, but
//     not their resolution). `unordered_delivery` opts out: each verdict is
//     delivered the moment its lane resolves it. Coordinator state is untouched by
//     delivery order, so the per-shard determinism invariant holds either way.
//   * The reorder window (`max_unresolved`) bounds executed-but-undelivered claims,
//     so a dispute burst backpressures the workers (and, through the bounded queue,
//     the clients) instead of accumulating unbounded phase-1 results.
//   * Admission can additionally shed on a latency target (`latency_slo_ms`): when
//     the recent-window p99 enqueue→verdict latency exceeds the SLO while work is
//     in flight, Submit() rejects even though the queue has room — queueing more
//     work a client will consider timed out only wastes verification capacity.

#ifndef TAO_SRC_SERVICE_VERIFICATION_SERVICE_H_
#define TAO_SRC_SERVICE_VERIFICATION_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/service/batch_former.h"
#include "src/service/metrics.h"
#include "src/service/submission_queue.h"

namespace tao {

struct ServiceOptions {
  // Verify workers (dedicated threads running batched phase 1). The heavy kernels
  // additionally split across the shared runtime pool per
  // `verifier.dispute.num_threads`, so 1 worker already uses every core; more
  // workers overlap cohort setup/teardown and lazy re-executions.
  int num_workers = 1;
  // Pin the shared runtime pool's workers to cores at service startup (round-robin
  // over hardware_concurrency; TAO_DISABLE_PINNING overrides; no-op on 1-core
  // hosts). Placement only — outcomes are bitwise identical either way.
  bool pin_workers = false;
  size_t queue_capacity = 256;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  // Bounds one submitter's resident queue share (0 = off). See SubmissionQueue.
  size_t per_submitter_cap = 0;
  // Cap on claims popped from the queue whose verdicts have not been delivered yet
  // (the window between workers and the resolve lanes). 0 = 4x max_batch.
  size_t max_unresolved = 0;
  // Deliver each verdict as soon as its lane resolves it, instead of holding
  // delivery to global submission order. Per-shard outcomes, gas, ledgers, and
  // claim ids are identical either way; only the order tickets unblock changes.
  bool unordered_delivery = false;
  // Latency-target admission (0 = off): shed (reject) submissions while the p99
  // enqueue→verdict latency over the recent-verdict window (kSloLatencyWindow)
  // exceeds this many milliseconds AND work is in flight. Applies before the
  // queue-capacity policy and to both admission policies. The busy requirement is
  // what keeps the gate from latching after a burst: an idle service always
  // admits, and the fresh verdicts re-age the window.
  double latency_slo_ms = 0.0;
  // The SLO gate stays open until this many verdicts have been delivered (a p99
  // over a handful of samples is noise, and a cold service must be allowed to warm).
  int64_t slo_min_observations = 32;
  BatchFormerOptions batching;
  BatchVerifierOptions verifier;
};

class VerificationService {
 public:
  // The service starts its threads immediately and serves until Drain()/destruction.
  // `coordinator` outlives the service; verdicts settle against it. The service runs
  // one resolve lane per coordinator shard.
  VerificationService(const Model& model, const ModelCommitment& commitment,
                      const ThresholdSet& thresholds, Coordinator& coordinator,
                      ServiceOptions options = {});
  ~VerificationService();

  VerificationService(const VerificationService&) = delete;
  VerificationService& operator=(const VerificationService&) = delete;

  // Submits one claim. Returns the ticket to wait on, or null when the submission
  // was rejected (queue full under kReject, p99 over the latency SLO, or the
  // service is draining). `submitter` identifies the client for fairness.
  std::shared_ptr<ClaimTicket> Submit(BatchClaim claim, uint64_t submitter = 0);

  // Graceful drain: closes admission, then blocks until every accepted claim has
  // its verdict delivered. Idempotent; the destructor calls it.
  void Drain();

  // Live metrics; callable from any thread while the service runs.
  MetricsSnapshot metrics() const;

  size_t num_lanes() const { return lanes_.size(); }

  // Current admission-queue depth (the gateway's hotness signal; cheap).
  size_t queue_depth() const { return queue_.depth(); }

  // Re-points the BatchFormer's memory ceiling (the serving gateway apportions one
  // global budget across hot models). Batch sizing never affects outcomes, so this
  // is safe at any time while the service runs.
  void SetMemoryBudget(int64_t bytes) { former_.set_memory_budget(bytes); }
  int64_t memory_budget() const { return former_.memory_budget(); }

 private:
  struct PendingResolution {
    SubmissionRecord record;
    ClaimPhase1 phase1;
    int64_t handoff_ns = 0;  // tracing: when the worker parked it for the lane
  };

  // A resolved claim parked until global submission order lets it deliver
  // (ordered-delivery mode only). Carries the enqueue stamp, not a latency:
  // head-of-line park time is client-visible latency and is metered at delivery.
  struct PendingDelivery {
    std::shared_ptr<ClaimTicket> ticket;
    BatchClaimOutcome outcome;
    std::chrono::steady_clock::time_point enqueue_time{};
    int64_t parked_ns = 0;  // tracing: when the lane finished resolving it
  };

  // One resolve lane: the per-shard slice of the reorder buffer plus its thread's
  // wake-up signal. Lane k owns the claims whose global sequence ≡ k (mod lanes).
  struct LaneState {
    std::condition_variable cv;     // lane thread waits for its next sequence
    std::map<uint64_t, PendingResolution> ready;  // keyed by global sequence
    uint64_t resolved = 0;          // claims this lane has resolved so far
  };

  void WorkerLoop(size_t worker);
  void LaneLoop(size_t lane);
  // Delivers every consecutively-deliverable verdict. Caller holds mu_; returns the
  // number delivered so the caller can notify the window/drain waiters.
  size_t FlushOrderedDeliveriesLocked();

  const ServiceOptions options_;
  const size_t max_unresolved_;
  // The model's coordinator (also held by verifier_): metrics() samples its
  // durability counters so the per-model snapshot carries the changelog gauges.
  Coordinator& coordinator_;
  BatchVerifier verifier_;
  SubmissionQueue queue_;
  BatchFormer former_;
  MetricsRegistry metrics_;

  // Guards the lane buffers, the delivery buffer, and the pipeline gauges below.
  // The bookkeeping under it is a few map operations — resolution and execution
  // always happen outside it.
  mutable std::mutex mu_;
  std::condition_variable window_cv_;   // workers wait for reorder-window room
  std::condition_variable drained_cv_;  // Drain() waits for full delivery
  std::vector<std::unique_ptr<LaneState>> lanes_;
  std::map<uint64_t, PendingDelivery> deliverable_;  // ordered mode only
  uint64_t next_deliver_seq_ = 0;  // ordered mode: next global sequence to release
  uint64_t delivered_ = 0;         // verdicts delivered (any mode)
  size_t unresolved_ = 0;  // popped from the queue, verdict not yet delivered
  bool draining_ = false;

  std::vector<std::thread> workers_;
  std::vector<std::thread> lane_threads_;
};

}  // namespace tao

#endif  // TAO_SRC_SERVICE_VERIFICATION_SERVICE_H_
