#include "src/service/metrics.h"

#include <algorithm>
#include <bit>

#include "src/device/simd.h"

namespace tao {
namespace {

size_t BatchSizeBucket(int64_t size) {
  if (size <= 1) {
    return 0;
  }
  const auto width = static_cast<size_t>(std::bit_width(static_cast<uint64_t>(size - 1)));
  return std::min(width, kBatchSizeBuckets - 1);
}

size_t LatencyBucket(double latency_seconds) {
  const double us = latency_seconds * 1e6;
  if (us < 1.0) {
    return 0;
  }
  const auto width =
      static_cast<size_t>(std::bit_width(static_cast<uint64_t>(us)));
  return std::min(width - 1, kLatencyBuckets - 1);
}

// Percentile read over one histogram image (shared by the snapshot accessor and the
// registry's live read).
double PercentileMillisOf(const std::array<int64_t, kLatencyBuckets>& hist, double p) {
  int64_t total = 0;
  for (const int64_t count : hist) {
    total += count;
  }
  if (total == 0) {
    return 0.0;
  }
  const double clamped = std::clamp(p, 0.0, 1.0);
  // Rank of the percentile sample, 1-based: ceil(p * total), at least 1.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(clamped * static_cast<double>(total) + 0.999999));
  int64_t cumulative = 0;
  for (size_t b = 0; b < kLatencyBuckets; ++b) {
    cumulative += hist[b];
    if (cumulative >= rank) {
      // Bucket b spans [2^b, 2^(b+1)) us; report the upper bound in ms.
      return static_cast<double>(int64_t{1} << (b + 1)) / 1e3;
    }
  }
  return static_cast<double>(int64_t{1} << kLatencyBuckets) / 1e3;
}

}  // namespace

double MetricsSnapshot::LatencyPercentileMillis(double p) const {
  return PercentileMillisOf(latency_hist_us, p);
}

MetricsRegistry::MetricsRegistry() : origin_(std::chrono::steady_clock::now()) {}

double MetricsRegistry::RecentLatencyPercentileMillis(double p) const {
  const uint64_t valid = std::min<uint64_t>(recent_count_.load(), kSloLatencyWindow);
  std::array<int64_t, kLatencyBuckets> hist{};
  for (uint64_t i = 0; i < valid; ++i) {
    const int32_t bucket = recent_latency_bucket_[i].load();
    hist[static_cast<size_t>(bucket)] += 1;
  }
  return PercentileMillisOf(hist, p);
}

void MetricsRegistry::RecordSloShed() { shed_slo_.fetch_add(1); }

void MetricsRegistry::RecordSubmission(bool accepted) {
  submitted_.fetch_add(1);
  if (accepted) {
    // Accepted is bumped BEFORE the claim can possibly complete (the caller holds
    // the submission until after this returns), and Snapshot reads completed before
    // accepted — together that keeps completed <= accepted in every snapshot.
    accepted_.fetch_add(1);
    const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - origin_)
                               .count();
    int64_t expected = 0;
    first_accept_ns_.compare_exchange_strong(expected, std::max<int64_t>(1, now_ns));
  } else {
    rejected_.fetch_add(1);
  }
}

void MetricsRegistry::RecordDispatch(int64_t batch_size) {
  batches_dispatched_.fetch_add(1);
  claims_dispatched_.fetch_add(batch_size);
  batch_size_hist_[BatchSizeBucket(batch_size)].fetch_add(1);
}

void MetricsRegistry::RecordVerdict(double latency_seconds, bool dispute_ran) {
  const size_t bucket = LatencyBucket(latency_seconds);
  latency_hist_us_[bucket].fetch_add(1);
  recent_latency_bucket_[recent_count_.fetch_add(1) % kSloLatencyWindow].store(
      static_cast<int32_t>(bucket));
  if (dispute_ran) {
    disputes_run_.fetch_add(1);
  }
  const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - origin_)
                             .count();
  last_verdict_ns_.store(now_ns);
  completed_.fetch_add(1);
}

std::vector<NamedCounter> NamedCounters(const MetricsSnapshot& snapshot,
                                        const std::string& scope) {
  const std::string prefix = scope.empty() ? std::string() : scope + "/";
  std::vector<NamedCounter> counters;
  counters.reserve(16);
  const auto add = [&](const char* name, double value) {
    counters.push_back({prefix + name, value});
  };
  add("claims/submitted", static_cast<double>(snapshot.submitted));
  add("claims/accepted", static_cast<double>(snapshot.accepted));
  add("claims/rejected", static_cast<double>(snapshot.rejected));
  add("claims/shed_slo", static_cast<double>(snapshot.shed_slo));
  add("claims/completed", static_cast<double>(snapshot.completed));
  add("claims/in_flight", static_cast<double>(snapshot.claims_in_flight));
  add("claims/per_second", snapshot.claims_per_second);
  add("disputes/run", static_cast<double>(snapshot.disputes_run));
  add("queue/depth", static_cast<double>(snapshot.queue_depth));
  add("queue/peak_depth", static_cast<double>(snapshot.peak_queue_depth));
  add("batches/dispatched", static_cast<double>(snapshot.batches_dispatched));
  add("latency/p50_ms", snapshot.LatencyPercentileMillis(0.50));
  add("latency/p99_ms", snapshot.LatencyPercentileMillis(0.99));
  add("durability/records_appended",
      static_cast<double>(snapshot.durability_records_appended));
  add("durability/bytes_appended",
      static_cast<double>(snapshot.durability_bytes_appended));
  add("durability/flushes", static_cast<double>(snapshot.durability_flushes));
  add("durability/fsyncs", static_cast<double>(snapshot.durability_fsyncs));
  add("durability/snapshots", static_cast<double>(snapshot.durability_snapshots));
  add("durability/recovery_replayed",
      static_cast<double>(snapshot.durability_recovery_replayed));
  add("durability/flush_seconds_total",
      static_cast<double>(snapshot.durability_flush_ns) / 1e9);
  add("durability/fsync_seconds_total",
      static_cast<double>(snapshot.durability_fsync_ns) / 1e9);
  add("durability/flush_ms_mean",
      snapshot.durability_flushes > 0
          ? static_cast<double>(snapshot.durability_flush_ns) / 1e6 /
                static_cast<double>(snapshot.durability_flushes)
          : 0.0);
  add("durability/fsync_ms_mean",
      snapshot.durability_fsyncs > 0
          ? static_cast<double>(snapshot.durability_fsync_ns) / 1e6 /
                static_cast<double>(snapshot.durability_fsyncs)
          : 0.0);
  // Cumulative latency histogram (Prometheus-style "le" buckets; bounds in
  // microseconds). Dashboards that want percentiles beyond p50/p99 re-derive them
  // from these instead of the unexported raw buckets. Trailing empty buckets are
  // folded into the final +count counter to keep the page compact.
  int64_t cumulative = 0;
  int64_t total = 0;
  size_t last_nonzero = 0;
  for (size_t b = 0; b < kLatencyBuckets; ++b) {
    total += snapshot.latency_hist_us[b];
    if (snapshot.latency_hist_us[b] > 0) {
      last_nonzero = b;
    }
  }
  for (size_t b = 0; b <= last_nonzero; ++b) {
    cumulative += snapshot.latency_hist_us[b];
    add(("latency/hist_us/le_" + std::to_string(int64_t{1} << (b + 1))).c_str(),
        static_cast<double>(cumulative));
  }
  add("latency/hist_us/count", static_cast<double>(total));
  add("elapsed_seconds", snapshot.elapsed_seconds);
  // Live dispatch gauge, not a snapshot field: the backend is a process-wide
  // property decided once at startup, and dashboards need it next to the claim
  // counters to attribute a host's throughput to the kernel path that produced it.
  add("backend/simd_avx2",
      ActiveSimdBackend() == SimdBackend::kAvx2 ? 1.0 : 0.0);
  return counters;
}

MetricsSnapshot AggregateSnapshots(const std::vector<MetricsSnapshot>& snapshots) {
  MetricsSnapshot total;
  for (const MetricsSnapshot& snapshot : snapshots) {
    total.submitted += snapshot.submitted;
    total.accepted += snapshot.accepted;
    total.rejected += snapshot.rejected;
    total.shed_slo += snapshot.shed_slo;
    total.queue_depth += snapshot.queue_depth;
    // Peaks are max-gauges, not additive counters: summing per-service peaks that
    // occurred at disjoint times would report a high-water mark that never existed.
    total.peak_queue_depth = std::max(total.peak_queue_depth, snapshot.peak_queue_depth);
    total.batches_dispatched += snapshot.batches_dispatched;
    total.claims_in_flight += snapshot.claims_in_flight;
    total.completed += snapshot.completed;
    total.disputes_run += snapshot.disputes_run;
    total.durability_records_appended += snapshot.durability_records_appended;
    total.durability_bytes_appended += snapshot.durability_bytes_appended;
    total.durability_flushes += snapshot.durability_flushes;
    total.durability_fsyncs += snapshot.durability_fsyncs;
    total.durability_snapshots += snapshot.durability_snapshots;
    total.durability_recovery_replayed += snapshot.durability_recovery_replayed;
    total.durability_flush_ns += snapshot.durability_flush_ns;
    total.durability_fsync_ns += snapshot.durability_fsync_ns;
    total.elapsed_seconds = std::max(total.elapsed_seconds, snapshot.elapsed_seconds);
    for (size_t b = 0; b < kBatchSizeBuckets; ++b) {
      total.batch_size_hist[b] += snapshot.batch_size_hist[b];
    }
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      total.latency_hist_us[b] += snapshot.latency_hist_us[b];
    }
  }
  if (total.elapsed_seconds > 0.0) {
    total.claims_per_second =
        static_cast<double>(total.completed) / total.elapsed_seconds;
  }
  return total;
}

MetricsSnapshot MetricsRegistry::Snapshot(int64_t queue_depth,
                                          int64_t peak_queue_depth) const {
  MetricsSnapshot snapshot;
  // Counter pairs are read in the reverse of their write order (completed before
  // accepted; accepted/rejected before submitted — see RecordSubmission), so every
  // snapshot satisfies completed <= accepted and accepted + rejected <= submitted.
  snapshot.completed = completed_.load();
  snapshot.disputes_run = disputes_run_.load();
  snapshot.accepted = accepted_.load();
  snapshot.shed_slo = shed_slo_.load();
  snapshot.rejected = rejected_.load();
  snapshot.submitted = submitted_.load();
  snapshot.batches_dispatched = batches_dispatched_.load();
  snapshot.claims_in_flight = claims_dispatched_.load() - snapshot.completed;
  snapshot.queue_depth = queue_depth;
  snapshot.peak_queue_depth = peak_queue_depth;
  for (size_t b = 0; b < kBatchSizeBuckets; ++b) {
    snapshot.batch_size_hist[b] = batch_size_hist_[b].load();
  }
  for (size_t b = 0; b < kLatencyBuckets; ++b) {
    snapshot.latency_hist_us[b] = latency_hist_us_[b].load();
  }

  const int64_t first_ns = first_accept_ns_.load();
  if (first_ns > 0) {
    int64_t end_ns = last_verdict_ns_.load();
    if (snapshot.completed == 0 || end_ns <= first_ns) {
      end_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - origin_)
                   .count();
    }
    snapshot.elapsed_seconds =
        static_cast<double>(std::max<int64_t>(1, end_ns - first_ns)) / 1e9;
    snapshot.claims_per_second =
        static_cast<double>(snapshot.completed) / snapshot.elapsed_seconds;
  }
  return snapshot;
}

}  // namespace tao
