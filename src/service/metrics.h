// MetricsRegistry: lock-cheap live counters for the verification service.
//
// Everything on the hot path is a std::atomic increment — no mutex is ever taken by
// submitters, workers, or the resolve lanes — so metering does not serialize the
// pipeline it is measuring. Distributions (batch sizes, enqueue→verdict latency)
// are power-of-two-bucket histograms of atomics; percentiles are read off the
// cumulative histogram at snapshot time, accurate to one bucket (a factor of two in
// the tail), which is the resolution operators actually act on.
//
// Snapshot() is safe to call at any time from any thread while the service runs.
// Each field is individually coherent (atomic reads in a total order), and ordering
// between the accepted/completed pair is arranged so `completed <= accepted` holds
// in every snapshot; cross-field exactness beyond that is not promised while the
// pipeline is moving.

#ifndef TAO_SRC_SERVICE_METRICS_H_
#define TAO_SRC_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace tao {

// Batch-size buckets: bucket b counts cohorts of size in (2^(b-1), 2^b]; bucket 0 is
// size 1. 17 buckets cover sizes up to 65536.
inline constexpr size_t kBatchSizeBuckets = 17;
// Latency buckets: bucket b counts verdicts whose enqueue→verdict latency is in
// [2^b, 2^(b+1)) microseconds. 40 buckets cover ~6 days.
inline constexpr size_t kLatencyBuckets = 40;
// Sliding window (in verdicts) the SLO admission gate reads its percentile over.
// The cumulative histogram never decays, so a long-past burst would otherwise tax
// admission forever; the ring keeps the gate's view recent.
inline constexpr size_t kSloLatencyWindow = 256;

struct MetricsSnapshot {
  // Admission.
  int64_t submitted = 0;  // Submit() calls (accepted + rejected)
  int64_t accepted = 0;
  int64_t rejected = 0;
  int64_t shed_slo = 0;  // subset of rejected: shed by the p99-latency SLO gate
  int64_t queue_depth = 0;       // resident submissions right now
  int64_t peak_queue_depth = 0;  // high-water mark of queue_depth
  // Pipeline.
  int64_t batches_dispatched = 0;
  int64_t claims_in_flight = 0;  // popped from the queue, verdict not yet delivered
  int64_t completed = 0;         // verdicts delivered
  int64_t disputes_run = 0;      // completed claims whose threshold check flagged them
  // Rates.
  double elapsed_seconds = 0.0;   // first accepted submission -> last verdict (or now)
  double claims_per_second = 0.0; // completed / elapsed_seconds
  // Durability (the model's coordinator changelog; all zero when in-memory —
  // src/durability/options.h). Sampled from Coordinator::durability_stats at
  // snapshot time, like the queue gauges.
  int64_t durability_records_appended = 0;
  int64_t durability_bytes_appended = 0;
  int64_t durability_flushes = 0;
  int64_t durability_fsyncs = 0;
  int64_t durability_snapshots = 0;
  int64_t durability_recovery_replayed = 0;
  // Writer wall time inside write(2) / fsync(2) (nanoseconds): mean flush/fsync
  // latency = total / count, which is what the resource view exports.
  int64_t durability_flush_ns = 0;
  int64_t durability_fsync_ns = 0;

  std::array<int64_t, kBatchSizeBuckets> batch_size_hist{};
  std::array<int64_t, kLatencyBuckets> latency_hist_us{};

  // Latency percentile (p in [0, 1]) in milliseconds, read off the histogram's
  // cumulative counts; returns the selected bucket's upper bound. 0 when no verdict
  // has been delivered yet.
  double LatencyPercentileMillis(double p) const;
};

// One exported metric: a namespaced counter name and its value.
struct NamedCounter {
  std::string name;
  double value = 0.0;
};

// Flattens a snapshot into namespaced counters. Counter names used to be implicit
// and global ("claims/accepted" meant THE service); with the model registry many
// services export concurrently, so every name is now prefixed with its scope —
// "model/<id>/claims/accepted" for a per-model snapshot, "aggregate/claims/accepted"
// for the gateway fold — and per-model exports can never collide with each other or
// shadow the aggregate a dashboard reader already consumes.
std::vector<NamedCounter> NamedCounters(const MetricsSnapshot& snapshot,
                                        const std::string& scope);

// Cross-service fold for the gateway's aggregate view: counters and histograms add,
// max-gauges (peak queue depth) take the max, and the rate window spans the union
// (elapsed = max, claims/sec recomputed over it).
MetricsSnapshot AggregateSnapshots(const std::vector<MetricsSnapshot>& snapshots);

class MetricsRegistry {
 public:
  MetricsRegistry();

  // -- hot-path recording (all atomic, no locks) --------------------------------------
  void RecordSubmission(bool accepted);
  void RecordSloShed();  // a RecordSubmission(false) that the latency SLO caused
  void RecordDispatch(int64_t batch_size);  // one cohort left the queue
  void RecordVerdict(double latency_seconds, bool dispute_ran);

  // -- live reads for admission policy (atomic loads, no snapshot allocation) ----------
  int64_t completed_count() const { return completed_.load(); }
  int64_t accepted_count() const { return accepted_.load(); }
  // Latency percentile over the most recent kSloLatencyWindow verdicts (all
  // verdicts, until that many exist) — what the SLO admission gate polls per
  // submission. Same one-bucket resolution as the snapshot's percentile.
  double RecentLatencyPercentileMillis(double p) const;

  // Queue gauges are sampled by the service at snapshot time (the queue already
  // tracks them under its own lock); the registry owns everything else.
  MetricsSnapshot Snapshot(int64_t queue_depth, int64_t peak_queue_depth) const;

 private:
  const std::chrono::steady_clock::time_point origin_;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> shed_slo_{0};
  std::atomic<int64_t> batches_dispatched_{0};
  std::atomic<int64_t> claims_dispatched_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> disputes_run_{0};
  // Nanoseconds-since-origin stamps for the rate window; 0 = unset.
  std::atomic<int64_t> first_accept_ns_{0};
  std::atomic<int64_t> last_verdict_ns_{0};
  std::array<std::atomic<int64_t>, kBatchSizeBuckets> batch_size_hist_{};
  std::array<std::atomic<int64_t>, kLatencyBuckets> latency_hist_us_{};
  // Ring of the last kSloLatencyWindow verdicts' latency buckets (valid entries:
  // min(recent_count_, window)). Entry reads racing a concurrent overwrite see
  // either the old or the new verdict's bucket — both are real samples, which is
  // all a one-bucket-resolution gate needs.
  std::array<std::atomic<int32_t>, kSloLatencyWindow> recent_latency_bucket_{};
  std::atomic<uint64_t> recent_count_{0};
};

}  // namespace tao

#endif  // TAO_SRC_SERVICE_METRICS_H_
