#include "src/service/verification_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/util/check.h"

namespace tao {
namespace {

size_t ResolveWindow(const ServiceOptions& options) {
  if (options.max_unresolved > 0) {
    return options.max_unresolved;
  }
  return static_cast<size_t>(4 * std::max<int64_t>(1, options.batching.max_batch));
}

}  // namespace

VerificationService::VerificationService(const Model& model,
                                         const ModelCommitment& commitment,
                                         const ThresholdSet& thresholds,
                                         Coordinator& coordinator, ServiceOptions options)
    : options_(std::move(options)),
      max_unresolved_(ResolveWindow(options_)),
      verifier_(model, commitment, thresholds, coordinator, options_.verifier),
      queue_(options_.queue_capacity, options_.admission, options_.per_submitter_cap),
      former_(options_.batching) {
  TAO_CHECK(options_.num_workers >= 1) << "service needs at least one verify worker";
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  resolver_ = std::thread([this] { ResolveLoop(); });
}

VerificationService::~VerificationService() {
  Drain();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  resolver_.join();
}

std::shared_ptr<ClaimTicket> VerificationService::Submit(BatchClaim claim,
                                                         uint64_t submitter) {
  auto ticket = std::make_shared<ClaimTicket>();
  SubmissionRecord record;
  record.claim = std::move(claim);
  record.submitter = submitter;
  record.enqueue_time = std::chrono::steady_clock::now();
  record.ticket = ticket;
  const SubmitStatus status = queue_.Push(std::move(record));
  metrics_.RecordSubmission(status == SubmitStatus::kAccepted);
  if (status != SubmitStatus::kAccepted) {
    return nullptr;
  }
  return ticket;
}

void VerificationService::WorkerLoop() {
  for (;;) {
    // Reorder-window gate: don't pull new work while too many executed claims wait
    // for in-order resolution (a dispute burst would otherwise pile up phase-1
    // results without bound). Room is RESERVED against unresolved_ before popping,
    // so the window bound holds even with several workers racing through the gate.
    // Draining bypasses the gate so shutdown cannot wedge (room 1 keeps progress).
    size_t take;
    {
      std::unique_lock<std::mutex> lock(mu_);
      window_cv_.wait(lock, [&] { return draining_ || unresolved_ < max_unresolved_; });
      const size_t room =
          unresolved_ < max_unresolved_ ? max_unresolved_ - unresolved_ : 1;
      const int64_t batch_size =
          former_.NextBatchSize(static_cast<int64_t>(queue_.depth()),
                                static_cast<int64_t>(unresolved_));
      take = std::min(static_cast<size_t>(batch_size), room);
      unresolved_ += take;
    }
    std::vector<SubmissionRecord> cohort = queue_.PopUpTo(take);
    if (cohort.size() < take) {
      // The queue had less than the reservation (or is closed): release the rest.
      std::lock_guard<std::mutex> lock(mu_);
      unresolved_ -= take - cohort.size();
      window_cv_.notify_all();
    }
    if (cohort.empty()) {
      return;  // queue closed and fully drained
    }
    metrics_.RecordDispatch(static_cast<int64_t>(cohort.size()));

    // Tensors share storage, so building the claim view of the cohort is cheap.
    std::vector<BatchClaim> claims;
    claims.reserve(cohort.size());
    for (const SubmissionRecord& record : cohort) {
      claims.push_back(record.claim);
    }
    TensorArena::Stats arena_stats;
    std::vector<ClaimPhase1> phase1 = verifier_.ExecutePhase1(claims, &arena_stats);
    former_.ObserveBatch(static_cast<int64_t>(cohort.size()),
                         arena_stats.peak_outstanding_bytes);

    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < cohort.size(); ++i) {
        const uint64_t sequence = cohort[i].sequence;
        ready_.emplace(sequence, PendingResolution{std::move(cohort[i]),
                                                   std::move(phase1[i])});
      }
    }
    resolve_cv_.notify_one();
  }
}

void VerificationService::ResolveLoop() {
  for (;;) {
    PendingResolution item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      resolve_cv_.wait(lock, [&] {
        return ready_.count(next_resolve_seq_) > 0 ||
               (queue_.closed() && next_resolve_seq_ == queue_.accepted());
      });
      const auto it = ready_.find(next_resolve_seq_);
      if (it == ready_.end()) {
        return;  // drained: every accepted claim has been resolved
      }
      item = std::move(it->second);
      ready_.erase(it);
    }

    // All coordinator interaction happens here, claim by claim in submission
    // order. Flagged claims run their full dispute game on this thread — the
    // "dispute lane" — while the verify workers keep executing later cohorts.
    BatchClaimOutcome outcome = verifier_.ResolveClaim(item.record.claim, item.phase1);
    const double latency_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      item.record.enqueue_time)
            .count();
    metrics_.RecordVerdict(latency_seconds, outcome.flagged);
    TAO_CHECK(item.record.ticket != nullptr);
    item.record.ticket->Deliver(std::move(outcome));

    {
      std::lock_guard<std::mutex> lock(mu_);
      ++next_resolve_seq_;
      TAO_CHECK(unresolved_ > 0);
      --unresolved_;
    }
    window_cv_.notify_all();
    resolve_cv_.notify_all();
    drained_cv_.notify_all();
  }
}

void VerificationService::Drain() {
  queue_.Close();  // wakes blocked submitters (kRejectedClosed) and idle workers
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  window_cv_.notify_all();
  resolve_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [&] { return next_resolve_seq_ == queue_.accepted(); });
}

MetricsSnapshot VerificationService::metrics() const {
  return metrics_.Snapshot(static_cast<int64_t>(queue_.depth()),
                           static_cast<int64_t>(queue_.peak_depth()));
}

}  // namespace tao
