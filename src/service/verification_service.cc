#include "src/service/verification_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/device/simd.h"
#include "src/observability/resource_tracker.h"
#include "src/runtime/thread_pool.h"
#include "src/observability/trace.h"
#include "src/util/check.h"

namespace tao {
namespace {

size_t ResolveWindow(const ServiceOptions& options) {
  if (options.max_unresolved > 0) {
    return options.max_unresolved;
  }
  return static_cast<size_t>(4 * std::max<int64_t>(1, options.batching.max_batch));
}

}  // namespace

VerificationService::VerificationService(const Model& model,
                                         const ModelCommitment& commitment,
                                         const ThresholdSet& thresholds,
                                         Coordinator& coordinator, ServiceOptions options)
    : options_(std::move(options)),
      max_unresolved_(ResolveWindow(options_)),
      coordinator_(coordinator),
      verifier_(model, commitment, thresholds, coordinator, options_.verifier),
      queue_(options_.queue_capacity, options_.admission, options_.per_submitter_cap),
      former_(options_.batching) {
  TAO_CHECK(options_.num_workers >= 1) << "service needs at least one verify worker";
  // Record which kernel backend serves this host's commitments (once per process).
  LogSimdBackendOnce();
  // Optional worker->core placement for the shared kernel pool (idempotent; purely
  // a locality knob — every outcome is a bitwise function of the accepted
  // subsequence regardless of where workers run).
  if (options_.pin_workers) {
    ThreadPool::Shared().PinWorkers();
  }
  // One resolve lane per coordinator shard: lane k is the only thread that ever
  // touches shard k, which is what makes each shard's history single-writer.
  const size_t num_lanes = coordinator.num_shards();
  lanes_.reserve(num_lanes);
  for (size_t lane = 0; lane < num_lanes; ++lane) {
    lanes_.push_back(std::make_unique<LaneState>());
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
  lane_threads_.reserve(num_lanes);
  for (size_t lane = 0; lane < num_lanes; ++lane) {
    lane_threads_.emplace_back([this, lane] { LaneLoop(lane); });
  }
}

VerificationService::~VerificationService() {
  Drain();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  for (std::thread& lane : lane_threads_) {
    lane.join();
  }
}

std::shared_ptr<ClaimTicket> VerificationService::Submit(BatchClaim claim,
                                                         uint64_t submitter) {
  // Latency-target admission: once enough verdicts exist to trust the tail, shed
  // while the p99 over the recent-verdict window is over the SLO. Shedding ahead
  // of the queue turns an overloaded service into fast rejections instead of a
  // queue full of claims whose verdicts will arrive after every client gave up.
  // The busy guard (accepted > completed: work somewhere between admission and
  // delivery) is what makes the gate self-releasing: an idle service cannot be
  // over its SLO, so a past burst can never latch admission shut — the first
  // post-burst submission is admitted and its fresh verdict re-ages the window.
  if (options_.latency_slo_ms > 0.0) {
    const int64_t completed = metrics_.completed_count();
    if (completed >= options_.slo_min_observations &&
        metrics_.accepted_count() > completed &&
        metrics_.RecentLatencyPercentileMillis(0.99) > options_.latency_slo_ms) {
      metrics_.RecordSubmission(false);
      metrics_.RecordSloShed();
      return nullptr;
    }
  }
  const int64_t submit_begin = Tracer::enabled() ? Tracer::NowNs() : 0;
  auto ticket = std::make_shared<ClaimTicket>();
  SubmissionRecord record;
  record.claim = std::move(claim);
  record.submitter = submitter;
  record.enqueue_time = std::chrono::steady_clock::now();
  record.ticket = ticket;
  const SubmitStatus status = queue_.Push(std::move(record));
  metrics_.RecordSubmission(status == SubmitStatus::kAccepted);
  if (status != SubmitStatus::kAccepted) {
    return nullptr;
  }
  if (Tracer::enabled()) {
    SpanRecord span;
    span.model = coordinator_.model_id();
    span.sequence = ticket->sequence();
    span.kind = SpanKind::kSubmit;
    span.begin_ns = submit_begin;
    span.end_ns = Tracer::NowNs();
    Tracer::Record(span);
  }
  return ticket;
}

void VerificationService::WorkerLoop(size_t worker) {
  ResourceTracker::ScopedThread tracked("worker");
  const size_t num_lanes = lanes_.size();
  std::vector<char> lane_touched(num_lanes, 0);
  for (;;) {
    const int64_t form_begin = Tracer::enabled() ? Tracer::NowNs() : 0;
    // Reorder-window gate: don't pull new work while too many executed claims wait
    // for resolution/delivery (a dispute burst would otherwise pile up phase-1
    // results without bound). Room is RESERVED against unresolved_ before popping,
    // so the window bound holds even with several workers racing through the gate.
    // Draining bypasses the gate so shutdown cannot wedge (room 1 keeps progress).
    size_t take;
    {
      std::unique_lock<std::mutex> lock(mu_);
      window_cv_.wait(lock, [&] { return draining_ || unresolved_ < max_unresolved_; });
      const size_t room =
          unresolved_ < max_unresolved_ ? max_unresolved_ - unresolved_ : 1;
      const int64_t batch_size =
          former_.NextBatchSize(static_cast<int64_t>(queue_.depth()),
                                static_cast<int64_t>(unresolved_));
      take = std::min(static_cast<size_t>(batch_size), room);
      unresolved_ += take;
    }
    std::vector<SubmissionRecord> cohort = queue_.PopUpTo(take);
    if (cohort.size() < take) {
      // The queue had less than the reservation (or is closed): release the rest.
      std::lock_guard<std::mutex> lock(mu_);
      unresolved_ -= take - cohort.size();
      window_cv_.notify_all();
    }
    if (cohort.empty()) {
      return;  // queue closed and fully drained
    }
    metrics_.RecordDispatch(static_cast<int64_t>(cohort.size()));

    // Tracing: per-claim queue-wait and batch-formation spans, plus the cohort's
    // contexts published around phase 1 so the batch verifier can tag its
    // threshold-check spans without any API change. Observation only.
    const bool tracing = Tracer::enabled();
    std::vector<TraceContext> contexts;
    if (tracing) {
      const int64_t now_ns = Tracer::NowNs();
      contexts.reserve(cohort.size());
      for (const SubmissionRecord& record : cohort) {
        SpanRecord span;
        span.model = coordinator_.model_id();
        span.sequence = record.sequence;
        span.shard = static_cast<uint32_t>(record.sequence % num_lanes);
        span.worker = static_cast<uint32_t>(worker);
        span.kind = SpanKind::kQueueWait;
        span.begin_ns = Tracer::ToNs(record.enqueue_time);
        span.end_ns = now_ns;
        Tracer::Record(span);
        span.kind = SpanKind::kBatchForm;
        span.detail = static_cast<int64_t>(cohort.size());
        span.begin_ns = form_begin;
        Tracer::Record(span);
        contexts.push_back({span.model, span.sequence, span.shard, span.worker});
      }
    }

    // Tensors share storage, so building the claim view of the cohort is cheap.
    std::vector<BatchClaim> claims;
    claims.reserve(cohort.size());
    for (const SubmissionRecord& record : cohort) {
      claims.push_back(record.claim);
    }
    TensorArena::Stats arena_stats;
    const int64_t phase1_begin = tracing ? Tracer::NowNs() : 0;
    std::vector<ClaimPhase1> phase1;
    {
      ScopedTraceContext scope(contexts.data(), contexts.size());
      phase1 = verifier_.ExecutePhase1(claims, &arena_stats);
    }
    if (tracing) {
      const int64_t now_ns = Tracer::NowNs();
      for (const TraceContext& context : contexts) {
        SpanRecord span;
        span.model = context.model;
        span.sequence = context.sequence;
        span.shard = context.shard;
        span.worker = context.worker;
        span.kind = SpanKind::kPhase1;
        span.detail = static_cast<int64_t>(cohort.size());
        span.begin_ns = phase1_begin;
        span.end_ns = now_ns;
        Tracer::Record(span);
      }
    }
    former_.ObserveBatch(static_cast<int64_t>(cohort.size()),
                         arena_stats.peak_outstanding_bytes);

    // Hand each claim to the lane owning its sequence (lane = sequence mod lanes).
    const int64_t handoff_ns = tracing ? Tracer::NowNs() : 0;
    std::fill(lane_touched.begin(), lane_touched.end(), 0);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < cohort.size(); ++i) {
        const uint64_t sequence = cohort[i].sequence;
        const size_t lane = static_cast<size_t>(sequence % num_lanes);
        lanes_[lane]->ready.emplace(
            sequence, PendingResolution{std::move(cohort[i]), std::move(phase1[i]),
                                        handoff_ns});
        lane_touched[lane] = 1;
      }
    }
    for (size_t lane = 0; lane < num_lanes; ++lane) {
      if (lane_touched[lane]) {
        lanes_[lane]->cv.notify_one();
      }
    }
  }
}

size_t VerificationService::FlushOrderedDeliveriesLocked() {
  size_t released = 0;
  for (auto it = deliverable_.find(next_deliver_seq_); it != deliverable_.end();
       it = deliverable_.find(next_deliver_seq_)) {
    PendingDelivery& delivery = it->second;
    // Latency is stamped HERE, not at resolution: a verdict parked behind an
    // earlier claim's long dispute is latency the client observes, and the SLO
    // gate must see it. Recording before Deliver keeps completed-count and the
    // histogram ahead of any client that Wait()ed on this ticket. Delivering
    // under mu_ is what makes the release order exactly global submission order.
    const double latency_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      delivery.enqueue_time)
            .count();
    metrics_.RecordVerdict(latency_seconds, delivery.outcome.flagged);
    TAO_CHECK(delivery.ticket != nullptr);
    if (Tracer::enabled()) {
      SpanRecord span;
      span.model = coordinator_.model_id();
      span.sequence = next_deliver_seq_;
      span.claim_id = delivery.outcome.claim_id;
      span.shard = static_cast<uint32_t>(next_deliver_seq_ % lanes_.size());
      span.kind = SpanKind::kDeliver;
      span.begin_ns = delivery.parked_ns > 0 ? delivery.parked_ns : Tracer::NowNs();
      span.end_ns = Tracer::NowNs();
      Tracer::Record(span);
    }
    delivery.ticket->Deliver(std::move(delivery.outcome));
    deliverable_.erase(it);
    ++next_deliver_seq_;
    ++delivered_;
    TAO_CHECK(unresolved_ > 0);
    --unresolved_;
    ++released;
  }
  return released;
}

void VerificationService::LaneLoop(size_t lane) {
  ResourceTracker::ScopedThread tracked("lane");
  LaneState& state = *lanes_[lane];
  const uint64_t num_lanes = static_cast<uint64_t>(lanes_.size());
  for (;;) {
    PendingResolution item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Lane k resolves global sequences k, k+L, k+2L, ... in order; the next one
      // is a pure function of how many it already resolved.
      const auto next_sequence = [&] { return lane + num_lanes * state.resolved; };
      state.cv.wait(lock, [&] {
        return state.ready.count(next_sequence()) > 0 ||
               (queue_.closed() && next_sequence() >= queue_.accepted());
      });
      const auto it = state.ready.find(next_sequence());
      if (it == state.ready.end()) {
        return;  // drained: every claim homed to this lane has been resolved
      }
      item = std::move(it->second);
      state.ready.erase(it);
    }

    // Tracing: the wait between the worker's handoff and this pickup, then the
    // resolve itself, with the claim context published so the dispute game can
    // record its per-round spans. Observation only.
    const bool tracing = Tracer::enabled();
    const int64_t resolve_begin = tracing ? Tracer::NowNs() : 0;
    TraceContext context{coordinator_.model_id(), item.record.sequence,
                         static_cast<uint32_t>(lane), kNoIndex};
    if (tracing && item.handoff_ns > 0) {
      SpanRecord span;
      span.model = context.model;
      span.sequence = context.sequence;
      span.shard = context.shard;
      span.kind = SpanKind::kResolveWait;
      span.begin_ns = item.handoff_ns;
      span.end_ns = resolve_begin;
      Tracer::Record(span);
    }

    // All coordinator interaction for this claim happens here, on shard `lane`,
    // claim by claim in the lane's submission order. Flagged claims run their full
    // dispute game on this thread while the verify workers keep executing later
    // cohorts and OTHER lanes keep resolving their own shards' claims.
    BatchClaimOutcome outcome;
    {
      ScopedTraceContext scope(&context, 1);
      outcome = verifier_.ResolveClaim(item.record.claim, item.phase1, lane);
    }
    TAO_CHECK(item.record.ticket != nullptr);
    const int64_t resolve_end = tracing ? Tracer::NowNs() : 0;
    if (tracing) {
      SpanRecord span;
      span.model = context.model;
      span.sequence = context.sequence;
      span.claim_id = outcome.claim_id;
      span.shard = context.shard;
      span.kind = SpanKind::kResolve;
      span.detail = outcome.flagged ? 1 : 0;
      span.begin_ns = resolve_begin;
      span.end_ns = resolve_end;
      Tracer::Record(span);
    }

    if (options_.unordered_delivery) {
      // Deliver the moment the lane is done; only the shard's own order is
      // promised. The ticket unblocks before head-of-line disputes elsewhere.
      const double latency_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        item.record.enqueue_time)
              .count();
      metrics_.RecordVerdict(latency_seconds, outcome.flagged);
      if (tracing) {
        SpanRecord span;
        span.model = context.model;
        span.sequence = context.sequence;
        span.claim_id = outcome.claim_id;
        span.shard = context.shard;
        span.kind = SpanKind::kDeliver;
        span.begin_ns = resolve_end;
        span.end_ns = Tracer::NowNs();
        Tracer::Record(span);
      }
      item.record.ticket->Deliver(std::move(outcome));
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++state.resolved;
        ++delivered_;
        TAO_CHECK(unresolved_ > 0);
        --unresolved_;
      }
      window_cv_.notify_all();
      drained_cv_.notify_all();
      continue;
    }

    // Ordered delivery: park the verdict until every earlier sequence delivered,
    // then release as many consecutive verdicts as are ready.
    size_t released;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++state.resolved;
      deliverable_.emplace(item.record.sequence,
                           PendingDelivery{std::move(item.record.ticket),
                                           std::move(outcome),
                                           item.record.enqueue_time, resolve_end});
      released = FlushOrderedDeliveriesLocked();
    }
    if (released > 0) {
      window_cv_.notify_all();
      drained_cv_.notify_all();
    }
  }
}

void VerificationService::Drain() {
  queue_.Close();  // wakes blocked submitters (kRejectedClosed) and idle workers
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  window_cv_.notify_all();
  for (const auto& lane : lanes_) {
    lane->cv.notify_all();
  }
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [&] { return delivered_ == queue_.accepted(); });
}

MetricsSnapshot VerificationService::metrics() const {
  MetricsSnapshot snapshot = metrics_.Snapshot(
      static_cast<int64_t>(queue_.depth()), static_cast<int64_t>(queue_.peak_depth()));
  // Durability gauges are the coordinator's, sampled here like the queue gauges so
  // one snapshot carries the whole per-model serving picture. All zero in-memory.
  const DurabilityStats durability = coordinator_.durability_stats();
  snapshot.durability_records_appended = durability.records_appended;
  snapshot.durability_bytes_appended = durability.bytes_appended;
  snapshot.durability_flushes = durability.flushes;
  snapshot.durability_fsyncs = durability.fsyncs;
  snapshot.durability_snapshots = durability.snapshots_written;
  snapshot.durability_recovery_replayed = durability.recovery_replayed;
  snapshot.durability_flush_ns = durability.flush_ns_total;
  snapshot.durability_fsync_ns = durability.fsync_ns_total;
  return snapshot;
}

}  // namespace tao
