// SubmissionQueue: the admission edge of the verification service — a bounded MPMC
// queue of claim submissions with backpressure and per-submitter fairness.
//
// Admission control is the service's first line of defense under heavy open-ended
// traffic: a bounded queue turns overload into either blocking (closed-loop clients
// absorb the latency) or rejection (open-loop clients get an immediate signal)
// instead of unbounded memory growth, and the optional per-submitter cap keeps one
// flooding client from starving everyone else's share of the queue (EYWA-style
// fairness at the admission edge rather than the dispatch edge).
//
// Ordering contract: Push assigns each accepted submission a global sequence number
// under the queue lock, and PopUpTo drains strictly in sequence order. That accepted
// order IS the service's "submission order" — sequence s belongs to resolve lane
// s % S, each lane replays its subsequence in order against its coordinator shard,
// and the per-shard bitwise-determinism invariant is stated over these subsequences
// (see docs/service.md and docs/coordinator.md).

#ifndef TAO_SRC_SERVICE_SUBMISSION_QUEUE_H_
#define TAO_SRC_SERVICE_SUBMISSION_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/protocol/batch_verifier.h"

namespace tao {

// What an admission attempt came back with.
enum class SubmitStatus {
  kAccepted,
  kRejectedFull,    // kReject policy and the queue (or the submitter's share) is full
  kRejectedClosed,  // the service is draining; no new work is admitted
};

// What to do with a submission that arrives while the queue is full.
enum class AdmissionPolicy {
  kBlock,   // wait for capacity (closed-loop backpressure)
  kReject,  // fail fast with kRejectedFull (open-loop shedding)
};

// The client's handle for one accepted claim: blocks until the service delivers the
// verdict. Delivery happens exactly once, on one of the service's resolve lanes.
class ClaimTicket {
 public:
  // Blocks until the claim's lifecycle completed (possibly through a full dispute
  // game) and returns the outcome.
  const BatchClaimOutcome& Wait() const;
  bool done() const;
  // Global submission sequence number (assigned at admission). Valid once Wait()
  // returned; the determinism tests replay claims in this order.
  uint64_t sequence() const { return sequence_; }

  // Push-style delivery for callers that must not park a thread per ticket (the
  // RPC gateway pushes verdicts for thousands of in-flight claims). The callback
  // runs exactly once — on the delivering resolve lane, or inline right here when
  // the verdict already landed — and MUST be non-blocking: it executes on the
  // lane that every later claim of that shard is waiting behind. At most one
  // callback per ticket.
  void OnDelivered(std::function<void(const BatchClaimOutcome&)> callback);

 private:
  friend class SubmissionQueue;
  friend class VerificationService;

  void Deliver(BatchClaimOutcome outcome);

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool done_ = false;
  uint64_t sequence_ = 0;
  BatchClaimOutcome outcome_;
  std::function<void(const BatchClaimOutcome&)> on_delivered_;
};

// One accepted submission in flight through the service.
struct SubmissionRecord {
  BatchClaim claim;
  uint64_t submitter = 0;
  uint64_t sequence = 0;  // assigned by Push under the queue lock
  std::chrono::steady_clock::time_point enqueue_time{};
  std::shared_ptr<ClaimTicket> ticket;  // may be null (queue unit tests)
};

class SubmissionQueue {
 public:
  // `capacity` bounds resident submissions. `per_submitter_cap` (0 = off) bounds any
  // single submitter's resident share; a submitter at its cap blocks/rejects even
  // while the queue has room for others.
  SubmissionQueue(size_t capacity, AdmissionPolicy policy, size_t per_submitter_cap = 0);

  // Admits `record`, assigning its sequence number (and stamping the ticket, when
  // present). kBlock waits for room; kReject returns kRejectedFull. After Close(),
  // always returns kRejectedClosed (blocked pushers wake with it).
  SubmitStatus Push(SubmissionRecord record);

  // Pops up to `max_items` submissions in sequence order. Blocks while the queue is
  // empty and open; returns an empty vector only when the queue is closed and fully
  // drained (the consumer's shutdown signal).
  std::vector<SubmissionRecord> PopUpTo(size_t max_items);

  // Stops admitting. Idempotent; wakes every blocked pusher and popper.
  void Close();

  size_t depth() const;
  size_t peak_depth() const;
  uint64_t accepted() const;  // total submissions ever admitted
  bool closed() const;
  size_t capacity() const { return capacity_; }

 private:
  bool HasRoomLocked(uint64_t submitter) const;

  const size_t capacity_;
  const AdmissionPolicy policy_;
  const size_t per_submitter_cap_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<SubmissionRecord> items_;
  std::unordered_map<uint64_t, size_t> per_submitter_depth_;
  uint64_t next_sequence_ = 0;
  size_t peak_depth_ = 0;
  bool closed_ = false;
};

}  // namespace tao

#endif  // TAO_SRC_SERVICE_SUBMISSION_QUEUE_H_
