#include "src/service/batch_former.h"

#include <algorithm>

#include "src/util/check.h"

namespace tao {
namespace {

// EWMA weight for new per-claim observations: heavy enough to track a workload
// shift (e.g. the supervised-claim mix changing) within a few cohorts, light enough
// that one outlier batch does not whipsaw the cap.
constexpr double kObservationWeight = 0.3;

}  // namespace

BatchFormer::BatchFormer(BatchFormerOptions options)
    : options_(options), memory_budget_bytes_(options.memory_budget_bytes) {
  TAO_CHECK(options_.min_batch >= 1);
  TAO_CHECK(options_.max_batch >= options_.min_batch);
  TAO_CHECK(options_.memory_budget_bytes > 0);
}

int64_t BatchFormer::NextBatchSize(int64_t queue_depth, int64_t in_flight_claims) const {
  // Throughput target: drain what is queued, one cohort per idle worker's pop.
  int64_t size = std::max(queue_depth, options_.min_batch);

  double per_claim;
  int64_t budget;
  {
    std::lock_guard<std::mutex> lock(mu_);
    per_claim = per_claim_bytes_;
    budget = memory_budget_bytes_;
  }
  if (per_claim <= 0.0) {
    // No memory signal yet: fall back to the configured hint.
    if (options_.initial_hint > 0) {
      size = std::min(size, options_.initial_hint);
    }
  } else {
    // Memory cap: this cohort plus everything already in flight must fit the
    // budget. In-flight claims retain at most their phase-1 working set, so pricing
    // them at the same per-claim estimate is conservative.
    const double budget_left =
        static_cast<double>(budget) -
        static_cast<double>(std::max<int64_t>(0, in_flight_claims)) * per_claim;
    const int64_t memory_cap =
        std::max(options_.min_batch, static_cast<int64_t>(budget_left / per_claim));
    size = std::min(size, memory_cap);
  }
  return std::clamp(size, options_.min_batch, options_.max_batch);
}

void BatchFormer::ObserveBatch(int64_t batch_size, int64_t peak_bytes) {
  if (batch_size <= 0 || peak_bytes <= 0) {
    return;
  }
  const double observed =
      static_cast<double>(peak_bytes) / static_cast<double>(batch_size);
  std::lock_guard<std::mutex> lock(mu_);
  per_claim_bytes_ = per_claim_bytes_ <= 0.0
                         ? observed
                         : (1.0 - kObservationWeight) * per_claim_bytes_ +
                               kObservationWeight * observed;
}

int64_t BatchFormer::per_claim_bytes_estimate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(per_claim_bytes_);
}

void BatchFormer::set_memory_budget(int64_t bytes) {
  TAO_CHECK(bytes > 0);
  std::lock_guard<std::mutex> lock(mu_);
  memory_budget_bytes_ = bytes;
}

int64_t BatchFormer::memory_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_budget_bytes_;
}

}  // namespace tao
