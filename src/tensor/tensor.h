// Dense row-major tensors.
//
// `Tensor` (FP32) carries all forward values — matching the paper's runtime, which runs
// unmodified FP32 kernels — while `DTensor` (FP64) carries error-bound arithmetic
// (Sec. 6.1: "FP32 forwards and FP64 for bound arithmetic"). Storage is shared on copy
// (cheap to pass through graphs and traces); `Clone()` makes a deep copy. All operators
// in src/ops produce freshly allocated contiguous outputs.

#ifndef TAO_SRC_TENSOR_TENSOR_H_
#define TAO_SRC_TENSOR_TENSOR_H_

#include <memory>
#include <span>
#include <vector>

#include "src/tensor/shape.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace tao {

template <typename T>
class BasicTensor {
 public:
  BasicTensor() : BasicTensor(Shape{}) {}

  explicit BasicTensor(Shape shape)
      : shape_(std::move(shape)),
        storage_(std::make_shared<std::vector<T>>(static_cast<size_t>(shape_.numel()), T{})) {}

  BasicTensor(Shape shape, std::vector<T> values)
      : shape_(std::move(shape)), storage_(std::make_shared<std::vector<T>>(std::move(values))) {
    TAO_CHECK_EQ(static_cast<int64_t>(storage_->size()), shape_.numel());
  }

  static BasicTensor Zeros(Shape shape) { return BasicTensor(std::move(shape)); }

  static BasicTensor Full(Shape shape, T value) {
    BasicTensor t(std::move(shape));
    t.Fill(value);
    return t;
  }

  static BasicTensor Randn(Shape shape, Rng& rng, T stddev = T{1}, T mean = T{0}) {
    BasicTensor t(std::move(shape));
    for (T& v : t.mutable_values()) {
      v = mean + stddev * static_cast<T>(rng.NextGaussian());
    }
    return t;
  }

  static BasicTensor Uniform(Shape shape, Rng& rng, T lo, T hi) {
    BasicTensor t(std::move(shape));
    for (T& v : t.mutable_values()) {
      v = static_cast<T>(rng.NextUniform(static_cast<double>(lo), static_cast<double>(hi)));
    }
    return t;
  }

  static BasicTensor Arange(int64_t n) {
    BasicTensor t(Shape{n});
    for (int64_t i = 0; i < n; ++i) {
      t.mutable_values()[static_cast<size_t>(i)] = static_cast<T>(i);
    }
    return t;
  }

  const Shape& shape() const { return shape_; }
  int64_t numel() const { return shape_.numel(); }

  std::span<const T> values() const { return {storage_->data(), storage_->size()}; }
  // Mutating a shared tensor mutates every alias; tensor producers should allocate fresh
  // outputs and only mutate before publishing.
  std::span<T> mutable_values() { return {storage_->data(), storage_->size()}; }

  T at(std::span<const int64_t> index) const {
    return (*storage_)[static_cast<size_t>(
        shape_.Linearize(std::vector<int64_t>(index.begin(), index.end())))];
  }

  T operator[](int64_t linear) const {
    TAO_CHECK(linear >= 0 && linear < numel());
    return (*storage_)[static_cast<size_t>(linear)];
  }

  void Fill(T value) {
    for (T& v : mutable_values()) {
      v = value;
    }
  }

  BasicTensor Clone() const {
    return BasicTensor(shape_, std::vector<T>(storage_->begin(), storage_->end()));
  }

  // Returns a same-storage tensor with a different shape (numel must match).
  BasicTensor WithShape(Shape shape) const {
    TAO_CHECK_EQ(shape.numel(), shape_.numel());
    BasicTensor t;
    t.shape_ = std::move(shape);
    t.storage_ = storage_;
    return t;
  }

  template <typename U>
  BasicTensor<U> Cast() const {
    std::vector<U> out(storage_->size());
    for (size_t i = 0; i < storage_->size(); ++i) {
      out[i] = static_cast<U>((*storage_)[i]);
    }
    return BasicTensor<U>(shape_, std::move(out));
  }

  bool SameStorageAs(const BasicTensor& other) const { return storage_ == other.storage_; }

  // --- Runtime-arena hooks (src/runtime/arena.h) ------------------------------------
  // Wraps an existing storage block, resizing it to `shape`'s element count. Contents
  // are unspecified; the adopter must overwrite every element before publishing.
  static BasicTensor AdoptStorage(Shape shape, std::shared_ptr<std::vector<T>> storage) {
    TAO_CHECK(storage != nullptr);
    storage->resize(static_cast<size_t>(shape.numel()));
    BasicTensor t;
    t.shape_ = std::move(shape);
    t.storage_ = std::move(storage);
    return t;
  }

  // Moves the storage block out, leaving this tensor empty. Callers use the returned
  // pointer's uniqueness to decide whether the buffer is safe to recycle.
  std::shared_ptr<std::vector<T>> ReleaseStorage() && { return std::move(storage_); }

 private:
  Shape shape_;
  std::shared_ptr<std::vector<T>> storage_;

  template <typename U>
  friend class BasicTensor;
};

using Tensor = BasicTensor<float>;
using DTensor = BasicTensor<double>;
using ITensor = BasicTensor<int64_t>;

// Element-wise maximum absolute difference between two same-shape tensors (in double).
double MaxAbsDiff(const Tensor& a, const Tensor& b);

// Flattened element-wise absolute and relative error vectors (Eq. 1-2); `eps` guards
// division by zero in the relative error.
std::vector<double> AbsErrors(const Tensor& a, const Tensor& b);
std::vector<double> RelErrors(const Tensor& a, const Tensor& b, double eps = 1e-12);

}  // namespace tao

#endif  // TAO_SRC_TENSOR_TENSOR_H_
