#include "src/tensor/shape.h"

#include <sstream>

#include "src/util/check.h"

namespace tao {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims) {
  for (const int64_t d : dims_) {
    TAO_CHECK_GE(d, 0) << "negative dimension in shape " << ToString();
  }
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (const int64_t d : dims_) {
    TAO_CHECK_GE(d, 0) << "negative dimension in shape " << ToString();
  }
}

int64_t Shape::dim(int64_t axis) const {
  const int64_t a = NormalizeAxis(axis);
  return dims_[static_cast<size_t>(a)];
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (const int64_t d : dims_) {
    n *= d;
  }
  return n;
}

std::vector<int64_t> Shape::Strides() const {
  std::vector<int64_t> strides(dims_.size(), 1);
  for (int64_t i = rank() - 2; i >= 0; --i) {
    strides[static_cast<size_t>(i)] =
        strides[static_cast<size_t>(i + 1)] * dims_[static_cast<size_t>(i + 1)];
  }
  return strides;
}

int64_t Shape::Linearize(const std::vector<int64_t>& index) const {
  TAO_CHECK_EQ(static_cast<int64_t>(index.size()), rank());
  const std::vector<int64_t> strides = Strides();
  int64_t offset = 0;
  for (size_t i = 0; i < index.size(); ++i) {
    TAO_CHECK_GE(index[i], 0);
    TAO_CHECK_LT(index[i], dims_[i]);
    offset += index[i] * strides[i];
  }
  return offset;
}

std::vector<int64_t> Shape::Delinearize(int64_t offset) const {
  TAO_CHECK_GE(offset, 0);
  TAO_CHECK_LT(offset, numel());
  std::vector<int64_t> index(dims_.size(), 0);
  const std::vector<int64_t> strides = Strides();
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i] > 0) {
      index[i] = offset / strides[i];
      offset -= index[i] * strides[i];
    }
  }
  return index;
}

int64_t Shape::NormalizeAxis(int64_t axis) const {
  const int64_t r = rank();
  if (axis < 0) {
    axis += r;
  }
  TAO_CHECK(axis >= 0 && axis < r) << "axis " << axis << " out of range for " << ToString();
  return axis;
}

std::string Shape::ToString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace tao
