// Tensor shape: dimension list plus helpers for element counts, row-major strides,
// index linearization, and shape algebra used by the operator library.

#ifndef TAO_SRC_TENSOR_SHAPE_H_
#define TAO_SRC_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace tao {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims);
  explicit Shape(std::vector<int64_t> dims);

  int64_t rank() const { return static_cast<int64_t>(dims_.size()); }
  int64_t dim(int64_t axis) const;
  const std::vector<int64_t>& dims() const { return dims_; }
  // Total element count (1 for rank-0 scalars).
  int64_t numel() const;
  bool empty() const { return numel() == 0; }

  // Row-major (C-contiguous) strides in elements.
  std::vector<int64_t> Strides() const;

  // Linear offset of a multi-dimensional index.
  int64_t Linearize(const std::vector<int64_t>& index) const;
  // Inverse of Linearize.
  std::vector<int64_t> Delinearize(int64_t offset) const;

  // Normalizes a possibly-negative axis (-1 = last) and bounds-checks it.
  int64_t NormalizeAxis(int64_t axis) const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return dims_ != other.dims_; }

  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace tao

#endif  // TAO_SRC_TENSOR_SHAPE_H_
