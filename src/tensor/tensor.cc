#include "src/tensor/tensor.h"

#include <cmath>

namespace tao {

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  TAO_CHECK(a.shape() == b.shape())
      << "shape mismatch " << a.shape().ToString() << " vs " << b.shape().ToString();
  double max_diff = 0.0;
  const auto av = a.values();
  const auto bv = b.values();
  for (size_t i = 0; i < av.size(); ++i) {
    const double d = std::abs(static_cast<double>(av[i]) - static_cast<double>(bv[i]));
    if (d > max_diff) {
      max_diff = d;
    }
  }
  return max_diff;
}

std::vector<double> AbsErrors(const Tensor& a, const Tensor& b) {
  TAO_CHECK(a.shape() == b.shape());
  const auto av = a.values();
  const auto bv = b.values();
  std::vector<double> errors(av.size());
  for (size_t i = 0; i < av.size(); ++i) {
    errors[i] = std::abs(static_cast<double>(av[i]) - static_cast<double>(bv[i]));
  }
  return errors;
}

std::vector<double> RelErrors(const Tensor& a, const Tensor& b, double eps) {
  TAO_CHECK(a.shape() == b.shape());
  const auto av = a.values();
  const auto bv = b.values();
  std::vector<double> errors(av.size());
  for (size_t i = 0; i < av.size(); ++i) {
    const double diff = std::abs(static_cast<double>(av[i]) - static_cast<double>(bv[i]));
    errors[i] = diff / (std::abs(static_cast<double>(av[i])) + eps);
  }
  return errors;
}

}  // namespace tao
