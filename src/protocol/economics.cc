#include "src/protocol/economics.h"

#include <algorithm>
#include <limits>

namespace tao {

double DetectionProbability(const EconomicParams& p) {
  return (p.audit_prob + p.challenge_prob) * (1.0 - p.false_negative);
}

double ProposerUtilityHonest(const EconomicParams& p) {
  return p.task_reward - p.cost_honest - p.false_positive * p.slash;
}

double ProposerUtilityCheapCheat(const EconomicParams& p) {
  return p.task_reward - p.cost_cheap_cheat - DetectionProbability(p) * p.slash;
}

double ProposerUtilityTargetedCheat(const EconomicParams& p) {
  return p.task_reward - p.cost_targeted;
}

double ChallengerUtilityVsGuilty(const EconomicParams& p) {
  return (1.0 - p.false_negative) * p.challenger_share * p.slash - p.challenger_cost;
}

double ChallengerUtilityVsClean(const EconomicParams& p) {
  return -p.challenger_cost - (1.0 - p.false_positive) * p.challenger_deposit;
}

double CommitteeUtilityRuledGuilty(const EconomicParams& p) {
  return p.committee_share * p.slash / static_cast<double>(p.committee_size) -
         p.committee_cost;
}

double CommitteeUtilityRuledClean(const EconomicParams& p) {
  return p.committee_fee - p.committee_cost;
}

FeasibleRegion ComputeFeasibleRegion(const EconomicParams& p) {
  FeasibleRegion region;
  const double d = DetectionProbability(p);
  region.detection_exceeds_fp = d > p.false_positive;
  if (region.detection_exceeds_fp) {
    region.l1 = (p.cost_honest - p.cost_cheap_cheat) / (d - p.false_positive);
  } else {
    region.l1 = std::numeric_limits<double>::infinity();
  }
  region.l2 = p.challenger_cost / (p.challenger_share * (1.0 - p.false_negative));
  region.l3 = static_cast<double>(p.committee_size) * p.committee_cost / p.committee_share;
  region.lower = std::max({region.l1, region.l2, region.l3});
  region.upper = p.proposer_deposit;
  region.non_empty = region.lower < region.upper;
  return region;
}

bool IncentiveCompatible(const EconomicParams& p) {
  const FeasibleRegion region = ComputeFeasibleRegion(p);
  if (!region.non_empty) {
    return false;
  }
  if (p.slash <= region.lower || p.slash > region.upper) {
    return false;
  }
  // Individual rationality for the honest proposer.
  if (ProposerUtilityHonest(p) < 0.0) {
    return false;
  }
  // Honesty dominates cheap cheating; targeted cheating unprofitable.
  if (ProposerUtilityHonest(p) <= ProposerUtilityCheapCheat(p)) {
    return false;
  }
  if (ProposerUtilityTargetedCheat(p) > 0.0) {
    return false;
  }
  // Challenge economics: profitable versus fraud, unprofitable spam.
  if (ChallengerUtilityVsGuilty(p) <= 0.0 || ChallengerUtilityVsClean(p) > 0.0) {
    return false;
  }
  // Committee sustainability under both rulings.
  if (CommitteeUtilityRuledGuilty(p) <= 0.0 || CommitteeUtilityRuledClean(p) <= 0.0) {
    return false;
  }
  return true;
}

}  // namespace tao
