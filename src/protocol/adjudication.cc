#include "src/protocol/adjudication.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace tao {

LeafVerdict AdjudicateLeaf(const Graph& graph, NodeId op_node,
                           const std::vector<Tensor>& agreed_inputs,
                           const Tensor& proposer_output, const ThresholdSet& thresholds,
                           const AdjudicationOptions& options) {
  const Node& node = graph.node(op_node);
  TAO_CHECK(node.kind == NodeKind::kOp);
  const OpKernel& kernel = OpRegistry::Instance().Get(node.op);

  // Canonical reference execution under the deterministic reference profile.
  const DeviceProfile& reference = DeviceRegistry::Reference();
  const OpContext fwd{reference, agreed_inputs, node.attrs};
  const Tensor y_ref = kernel.Forward(fwd);
  TAO_CHECK(y_ref.shape() == proposer_output.shape());

  const BoundContext bctx{reference,  agreed_inputs,     y_ref,
                          node.attrs, options.bound_mode, options.lambda};
  const DTensor tau = kernel.Bound(bctx);

  LeafVerdict verdict;
  const auto yp = proposer_output.values();
  const auto yr = y_ref.values();
  const auto tv = tau.values();
  bool exceeds_theoretical = false;
  for (size_t i = 0; i < yp.size(); ++i) {
    const double diff = std::abs(static_cast<double>(yp[i]) - static_cast<double>(yr[i]));
    if (tv[i] > 0.0) {
      verdict.max_theo_ratio = std::max(verdict.max_theo_ratio, diff / tv[i]);
      if (diff > tv[i]) {
        exceeds_theoretical = true;
      }
    } else if (diff > 0.0) {
      // Zero theoretical bound (exact operator) admits no deviation at all.
      verdict.max_theo_ratio = std::numeric_limits<double>::infinity();
      exceeds_theoretical = true;
    }
  }

  if (exceeds_theoretical) {
    // Path (i): the proposer cannot produce a valid bound-satisfaction proof.
    verdict.path = LeafPath::kTheoreticalBound;
    verdict.proposer_guilty = true;
    return verdict;
  }

  // Path (ii): committee vote against the empirical thresholds. Each member
  // re-executes (v*, a) on an independently sampled fleet device and votes on whether
  // the proposer's output stays within the committed percentile thresholds.
  verdict.path = LeafPath::kCommitteeVote;
  verdict.committee_size = options.committee_size;
  Rng rng(options.committee_seed);
  const auto& fleet = DeviceRegistry::Fleet();
  for (int member = 0; member < options.committee_size; ++member) {
    const DeviceProfile& device = fleet[rng.NextBounded(fleet.size())];
    const OpContext member_ctx{device, agreed_inputs, node.attrs};
    const Tensor y_member = kernel.Forward(member_ctx);
    if (thresholds.Exceeds(op_node, proposer_output, y_member)) {
      ++verdict.guilty_votes;
    }
  }
  verdict.proposer_guilty = 2 * verdict.guilty_votes > options.committee_size;
  return verdict;
}

}  // namespace tao
