// The end-to-end TAO protocol driver: optimistic execution (Phase 1), Merkle-anchored
// threshold-guided dispute localization (Phase 2), and single-operator adjudication
// (Phase 3), orchestrated against the Coordinator.
//
// The driver embodies both parties:
//   * the proposer executes the model on its device — optionally injecting the
//     adversarial perturbations of Sec. 4 — commits C0, and answers dispute rounds by
//     posting canonical partitions with interface commitments and Merkle proofs;
//   * the challenger re-executes, triggers a dispute when the output violates the
//     committed empirical thresholds, verifies the per-round proofs, re-executes
//     children from agreed boundaries, and selects the first offending child (Eq. 15)
//     until a single operator remains.
// It also gathers every statistic the paper's evaluation reports: rounds, Merkle proof
// checks, per-round substep wall-clock, challenger FLOPs (DCR), cost ratio, and gas.

#ifndef TAO_SRC_PROTOCOL_DISPUTE_H_
#define TAO_SRC_PROTOCOL_DISPUTE_H_

#include <map>
#include <optional>
#include <vector>

#include "src/graph/executor.h"
#include "src/graph/subgraph.h"
#include "src/models/model_zoo.h"
#include "src/protocol/adjudication.h"
#include "src/protocol/commitment.h"
#include "src/protocol/coordinator.h"

namespace tao {

struct DisputeOptions {
  int64_t partition_n = 2;         // N-way partition width
  uint64_t challenge_window = 100; // logical ticks
  double proposer_bond = 10.0;
  double challenger_bond = 2.0;
  double challenger_share = 0.5;
  AdjudicationOptions adjudication;
  // Runtime policy (src/runtime/): with num_threads > 1 the phase-1 proposer and
  // challenger executions run concurrently on the shared pool, per-round Merkle proof
  // verification fans out, and every (re-)execution splits its kernels' outer loops.
  // Traces, verdicts, rounds, flops, and gas are identical for any value — the
  // protocol compares exact values and the runtime is bitwise deterministic.
  int num_threads = 1;
  // Re-execute all of a round's children concurrently instead of lazily stopping at
  // the first offender. Boundaries are proposer-posted values, so they are known
  // up-front and verdicts are unchanged; the DCR accounting then honestly includes
  // the speculative work past the offender (cost_ratio can rise; wall-clock drops).
  bool speculative_reexecution = false;
  // Adaptive speculation (the ROADMAP follow-on to the always-on knob above, which
  // stays off by default because it inflates DCR): speculate only on rounds where
  // the expected DCR overhead is small — the partition is wide (partition_n > 2, so
  // lazy selection would serialize many children) AND the round's slice is already
  // small (at most speculative_slice_limit ops, so even fully wasted children cost
  // little). Early rounds re-execute near-full-model slices lazily (DCR-cheap: the
  // offender is usually found after ~n/2 children of a HUGE slice, and speculating
  // there can nearly double challenger FLOPs); late narrow rounds fan out
  // (latency-cheap: the residual slices are tiny). Verdicts are unchanged either
  // way; only DCR accounting and wall-clock move. Ignored when
  // speculative_reexecution is already true.
  bool adaptive_speculation = false;
  // Slice-size ceiling (in ops) below which adaptive speculation engages.
  int64_t speculative_slice_limit = 64;
  // Learn the adaptive-speculation ceiling online instead of trusting the static
  // default: every speculated round observes its waste fraction — prefetched
  // children PAST the selected offender over all prefetched children (0 when no
  // offender was found, since every child then had to be checked anyway) — and
  // folds it into an EWMA w. Later rounds use an effective ceiling of
  // speculative_slice_limit * 2 * (1 - w), clamped to [1, 4 * limit]: low observed
  // waste widens the window (fan out on bigger slices), high waste shrinks it.
  // Verdicts, rounds, and selections never move — the estimate only changes WHICH
  // rounds fan out, i.e. DCR accounting and wall-clock, exactly like the static
  // knob. Off by default; meaningful only with adaptive_speculation.
  bool adaptive_slice_learning = false;
  // EWMA smoothing weight for the waste observations above (0 < rate <= 1; the
  // first observation seeds the estimate directly).
  double slice_learning_rate = 0.25;
  // Advance the coordinator's logical clock by one tick per dispute round. The
  // BatchVerifier's concurrent-dispute mode turns this off so games sharing the
  // coordinator SHARD cannot push each other past round deadlines; the clock is
  // protocol bookkeeping only, so verdicts, rounds, and gas are unchanged. (Games on
  // distinct shards are already clock-isolated: every time advance the game performs
  // is per-claim, so it only moves the owning shard's clock.)
  bool advance_clock_per_round = true;
  // Coordinator shard the claim is homed to at submission (taken mod num_shards; all
  // later actions route by the assigned id). The service's per-shard resolve lanes
  // pass their lane index; standalone drivers leave it 0.
  uint64_t coordinator_shard = 0;
};

struct RoundStats {
  int64_t round = 0;
  int64_t slice_size = 0;
  int64_t children = 0;
  int64_t selected_child = -1;
  int64_t merkle_proofs = 0;
  int64_t children_reexecuted = 0;
  int64_t reexec_flops = 0;
  double proposer_partition_ms = 0.0;
  double challenger_selection_ms = 0.0;
};

struct DisputeResult {
  ClaimId claim_id = 0;
  bool challenge_raised = false;
  bool proposer_guilty = false;
  ClaimState final_state = ClaimState::kCommitted;
  NodeId leaf_op = -1;
  LeafVerdict leaf;
  int64_t rounds = 0;
  int64_t total_merkle_checks = 0;
  // DCR: challenger FLOPs spent inside the dispute game (child re-executions + leaf).
  int64_t challenger_flops = 0;
  double cost_ratio = 0.0;  // DCR / one model forward
  int64_t gas_used = 0;     // gas attributable to this claim's lifecycle
  // Adaptive slice learning (DisputeOptions::adaptive_slice_learning): the waste
  // EWMA after the game's last observation, and the effective ceiling it implies
  // for a hypothetical next round. Zeros when learning is off or never observed.
  double speculative_waste_ewma = 0.0;
  int64_t learned_slice_limit = 0;
  std::vector<RoundStats> round_stats;
};

class DisputeGame {
 public:
  DisputeGame(const Model& model, const ModelCommitment& commitment,
              const ThresholdSet& thresholds, Coordinator& coordinator,
              DisputeOptions options = {});

  // Runs the full lifecycle for one request. `perturbations` is the malicious
  // proposer's injection set (empty = honest). The proposer runs on
  // `proposer_device`, the challenger on `challenger_device`.
  DisputeResult Run(const std::vector<Tensor>& inputs, const DeviceProfile& proposer_device,
                    const DeviceProfile& challenger_device,
                    const std::vector<Executor::Perturbation>& perturbations = {});

  // Everything after phase 1: commitment submission, the output threshold check, and
  // — when the check flags the claim — the full dispute pipeline. `proposer_trace`
  // and `challenger_output` are the phase-1 execution results, computed either by
  // Run() above or externally (the BatchVerifier lowers K claims' phase-1 runs into
  // one scheduler DAG and feeds each result here); `c0` is the proposer's result
  // commitment over that trace's output. Outcomes are identical to Run() because the
  // runtime is bitwise deterministic, so where phase 1 executed cannot matter.
  // `precomputed_flagged`, when set, is the caller's already-evaluated output
  // threshold verdict (the check is deterministic, so passing it skips a duplicate
  // evaluation); when unset, the check runs here. With `precomputed_flagged ==
  // false` the happy path reads nothing from `proposer_trace`, so callers may pass
  // an empty trace — the BatchVerifier drops unflagged lane traces on this basis.
  DisputeResult RunFromPhase1(const std::vector<Tensor>& inputs,
                              const DeviceProfile& challenger_device,
                              const ExecutionTrace& proposer_trace,
                              const Tensor& challenger_output, const Digest& c0,
                              std::optional<bool> precomputed_flagged = std::nullopt);

 private:
  const Model& model_;
  const ModelCommitment& commitment_;
  const ThresholdSet& thresholds_;
  Coordinator& coordinator_;
  DisputeOptions options_;
};

}  // namespace tao

#endif  // TAO_SRC_PROTOCOL_DISPUTE_H_
