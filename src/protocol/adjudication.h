// Phase 3: single-operator adjudication (Sec. 5.4).
//
// At the leaf both parties agree on the operator v* and its inputs a. The routing
// policy compares the proposer's claimed output against a canonical reference
// re-execution: if any element exceeds the theoretical cap tau_theo the cheap, sound
// theoretical-bound path decides (path i); otherwise a small committee re-executes the
// operator on independently sampled devices and votes against the calibrated empirical
// thresholds (path ii), which is costlier but far tighter.

#ifndef TAO_SRC_PROTOCOL_ADJUDICATION_H_
#define TAO_SRC_PROTOCOL_ADJUDICATION_H_

#include <vector>

#include "src/calib/threshold.h"
#include "src/device/device.h"
#include "src/graph/graph.h"
#include "src/ops/fperror.h"

namespace tao {

enum class LeafPath {
  kTheoreticalBound,
  kCommitteeVote,
};

struct LeafVerdict {
  bool proposer_guilty = false;
  LeafPath path = LeafPath::kTheoreticalBound;
  // Element-wise max of |y_P - y_ref| / tau_theo observed by the routing check.
  double max_theo_ratio = 0.0;
  // Committee tally (guilty votes / total) when path ii ran.
  int guilty_votes = 0;
  int committee_size = 0;
};

struct AdjudicationOptions {
  BoundMode bound_mode = BoundMode::kProbabilistic;
  double lambda = kDefaultLambda;
  int committee_size = 5;
  uint64_t committee_seed = 0xc0117ee;
};

// Adjudicates operator `op_node` of `graph` given the agreed inputs and the proposer's
// claimed output.
LeafVerdict AdjudicateLeaf(const Graph& graph, NodeId op_node,
                           const std::vector<Tensor>& agreed_inputs,
                           const Tensor& proposer_output, const ThresholdSet& thresholds,
                           const AdjudicationOptions& options = {});

}  // namespace tao

#endif  // TAO_SRC_PROTOCOL_ADJUDICATION_H_
