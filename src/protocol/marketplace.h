// Inference-marketplace simulation (the Fig. 2 task pool with the Sec. 5.5 dual
// supervision channels).
//
// Users submit tasks; proposers execute on randomly drawn fleet hardware and commit
// results, occasionally cheating (cheap cheating c1: an injected perturbation standing
// in for a model swap / quantization downgrade). Each claim is supervised by at most
// one channel: a voluntary challenge with probability phi_ch, else a randomized audit
// with probability phi (mutually exclusive per the paper). Detected fraud runs the
// full dispute game and slashes; missed fraud finalizes. The simulation tracks
// realized detection rates, balances, and gas, so the analytical incentive model
// (economics.h) can be validated against protocol-level outcomes.

#ifndef TAO_SRC_PROTOCOL_MARKETPLACE_H_
#define TAO_SRC_PROTOCOL_MARKETPLACE_H_

#include "src/protocol/dispute.h"
#include "src/protocol/economics.h"
#include "src/registry/model_registry.h"
#include "src/registry/serving_gateway.h"

namespace tao {

struct MarketplaceConfig {
  EconomicParams economics;
  int64_t num_tasks = 60;
  // Probability a proposer cheats on a task (the strategic knob the incentive design
  // is meant to drive to zero; simulated exogenously here to measure detection).
  double cheat_rate = 0.25;
  float cheat_magnitude = 5e-2f;
  DisputeOptions dispute;
  uint64_t seed = 0x3a4ce7;
  // Run() drives the VerificationService (src/service/): tasks are drawn in order
  // on the same RNG stream as the historical per-task loop (execution draws
  // nothing, so statistics are bitwise identical) and submitted through the
  // service's bounded queue; the BatchFormer sizes each execution cohort from live
  // queue depth and its arena-derived memory budget, and the resolve lanes settle
  // claims against the coordinator in task order per shard (one shard by default)
  // — so stats, gas, the ledger, and claim ids match the sequential path for any
  // worker count or batch sizing.
  // `verify_batch_size` is only the BatchFormer's initial hint (the cohort cap
  // until its first memory observation); it no longer pins chunk boundaries.
  int64_t verify_batch_size = 16;
  // Recycle dead intermediates of output-only lanes during batched execution.
  bool reuse_buffers = true;
  // Verify workers and admission-queue capacity for the embedded service. The
  // queue bound (plus the service's reorder window) is also Run()'s
  // resident-tensor bound: a full queue blocks further draws until workers drain
  // it, instead of materializing every task's input up front.
  int service_workers = 1;
  size_t queue_capacity = 64;
  // Coordinator shards = service resolve lanes. 1 (the default) reproduces the
  // sequential path bitwise; >1 resolves claims on per-shard lanes concurrently
  // (stats and per-claim outcomes are unchanged — they are order-independent — but
  // the ledger fold's floating-point summation order differs across shard counts).
  size_t coordinator_shards = 1;
  // Deliver verdicts as lanes complete instead of in global submission order.
  // Run() waits for all tickets either way, so stats are unaffected.
  bool unordered_delivery = false;
  // Coordinator durability root (see ModelCommitConfig::durability): non-empty
  // makes the embedded model's coordinator write-ahead-log every action under
  // `<directory>/model-<id>` and recover it on the next construction. Default off:
  // the simulation stays bitwise the in-memory path.
  DurabilityOptions durability;
  // Embedded HTTP monitoring endpoint for the simulation's gateway (off by
  // default). Enabling it turns span tracing on for the run; instrumentation is
  // outcome-inert, so stats/gas/ledger/claim ids stay bitwise identical either way
  // (held by the observability test's tracing sweep).
  MonitoringOptions monitoring;
  // Pin the shared runtime pool's workers to cores (round-robin; TAO_DISABLE_PINNING
  // overrides; no-op on 1-core hosts). Pure placement — stats, gas, ledgers, and
  // claim ids stay bitwise identical either way.
  bool pin_workers = false;
};

struct MarketplaceStats {
  int64_t tasks = 0;
  int64_t finalized_clean = 0;
  int64_t cheats_attempted = 0;
  int64_t cheats_caught = 0;
  int64_t cheats_escaped = 0;        // finalized despite cheating (no supervision drawn
                                     // or deviation inside tolerance)
  int64_t voluntary_challenges = 0;
  int64_t audits = 0;
  int64_t spurious_disputes = 0;     // disputes opened against honest proposers
  int64_t honest_slashes = 0;        // must stay 0 (soundness for the honest)
  int64_t total_gas = 0;

  // Fraction of ATTEMPTED cheats that were caught. The denominator is every cheat
  // attempt — supervised or not — matching the analytical d = (phi + phi_ch)(1 - eps1)
  // of Eq. 16, which also conditions only on a cheat being attempted (supervision and
  // the eps1 tolerance residue are what the rate is measuring). It is NOT the
  // caught-given-supervised conditional, which would divide by the supervised-cheat
  // count alone and track 1 - eps1 instead.
  double realized_detection_rate() const {
    return cheats_attempted == 0
               ? 0.0
               : static_cast<double>(cheats_caught) / cheats_attempted;
  }
};

// Marketplace is now a THIN single-model client of the registry + gateway stack
// (src/registry/): the constructor registers and commits the model into a private
// ModelRegistry, Run() serves it through a ServingGateway and drives the same
// draw-and-submit loop as before, tagged with the model's id. With exactly one
// registered model the gateway adds only a routing-table lookup, so stats, gas,
// digests, claim ids, and the ledger stay bitwise identical to the pre-registry
// path (the marketplace seed-sweep test holds this).
class Marketplace {
 public:
  Marketplace(const Model& model, const ModelCommitment& commitment,
              const ThresholdSet& thresholds, MarketplaceConfig config);

  MarketplaceStats Run();

  // Balances after Run(), from the model's coordinator ledger in the registry
  // (Coordinator::balances copies under its locks).
  Balances balances() const { return registry_.coordinator(model_id_).balances(); }

 private:
  MarketplaceConfig config_;
  ModelRegistry registry_;
  ServingGateway gateway_;
  ModelId model_id_ = 0;
};

}  // namespace tao

#endif  // TAO_SRC_PROTOCOL_MARKETPLACE_H_
