// Coordinator gas model.
//
// The paper's prototype instantiates the coordinator as Ethereum smart contracts on the
// Holesky testnet and reports on-chain dispute cost in kgas (Table 3: ~2M gas per
// dispute at N=2, growing ~88.7 kgas per additional round). We reproduce that cost
// accounting with a per-action gas schedule calibrated to EVM storage/calldata/hashing
// costs so that the Table 3 totals and their scaling in rounds and partition width are
// regenerated. TAO itself does not depend on any blockchain assumption (Sec. 1); the
// schedule is simply the cost model of the coordination layer.

#ifndef TAO_SRC_PROTOCOL_GAS_H_
#define TAO_SRC_PROTOCOL_GAS_H_

#include <atomic>
#include <cstdint>

namespace tao {

// Per-action gas schedule (units: gas).
struct GasSchedule {
  // Proposer posts C0 (tx base + commitment sstore + metadata calldata).
  int64_t commit = 180000;
  // Challenger opens a dispute (bond escrow + state init).
  int64_t open_challenge = 150000;
  // Proposer posts one round's partition: per-round base plus one interface-hash
  // commitment per child.
  int64_t partition_base = 48700;
  int64_t per_child = 10000;
  // Challenger posts the selected offending child index.
  int64_t selection = 20000;
  // Merkle inclusion proofs are verified off-chain by the parties; only their
  // interface-hash commitments land on-chain (covered by per_child). The count is
  // still metered for the Fig. 8 statistics; charge 0 gas by default.
  int64_t merkle_check = 0;
  // Single-operator adjudication (theoretical-bound proof verification or tallying the
  // committee votes).
  int64_t leaf_adjudication = 350000;
  // Final settlement: slash / reward / bond release.
  int64_t settlement = 328700;

  int64_t PartitionCost(int64_t children) const { return partition_base + per_child * children; }
  int64_t RoundCost(int64_t children) const { return PartitionCost(children) + selection; }
};

// Fold-on-read gas snapshot: what Coordinator::gas() returns now that metering is
// sharded. The total is summed across the per-shard accumulators at the moment of
// the call; the value is immutable thereafter (charge against the coordinator's
// per-claim APIs, not against a snapshot).
class GasTotals {
 public:
  explicit GasTotals(int64_t total = 0) : total_(total) {}
  int64_t total() const { return total_; }
  double total_kgas() const { return static_cast<double>(total_) / 1000.0; }

 private:
  int64_t total_;
};

// A simple gas meter standalone harnesses charge actions against. The counter is
// atomic so concurrent protocol flows sharing one meter account correctly without
// external locking. (The Coordinator itself no longer exposes one: its metering is
// per-shard, folded on read into a GasTotals.)
class GasMeter {
 public:
  void Charge(int64_t gas) { total_.fetch_add(gas, std::memory_order_relaxed); }
  int64_t total() const { return total_.load(std::memory_order_relaxed); }
  double total_kgas() const { return static_cast<double>(total()) / 1000.0; }
  void Reset() { total_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> total_{0};
};

}  // namespace tao

#endif  // TAO_SRC_PROTOCOL_GAS_H_
