#include "src/protocol/batch_verifier.h"

#include <utility>

#include "src/observability/trace.h"
#include "src/runtime/parallel_for.h"
#include "src/runtime/thread_pool.h"
#include "src/util/check.h"

namespace tao {

BatchVerifier::BatchVerifier(const Model& model, const ModelCommitment& commitment,
                             const ThresholdSet& thresholds, Coordinator& coordinator,
                             BatchVerifierOptions options)
    : model_(model),
      commitment_(commitment),
      thresholds_(thresholds),
      coordinator_(coordinator),
      options_(std::move(options)) {}

std::vector<ClaimPhase1> BatchVerifier::ExecutePhase1(const std::vector<BatchClaim>& claims,
                                                      TensorArena::Stats* arena_stats) {
  const size_t num_claims = claims.size();
  std::vector<ClaimPhase1> phase1(num_claims);
  if (num_claims == 0) {
    return phase1;
  }
  const Graph& graph = *model_.graph;
  const NodeId output = graph.output();

  // ---- Batched phase 1: one scheduler DAG for the whole cohort ----------------------
  // Every lane is output-only — proposer lanes included — so the batch's working set
  // stays flat in the number of supervised claims; flagged claims re-acquire their
  // full trace lazily below. The commitment check for each claim runs as its
  // proposer lane's epilogue node, interleaved with other lanes' compute.
  std::vector<Executor::BatchItem> items;
  items.reserve(2 * num_claims);
  constexpr size_t kNoLane = static_cast<size_t>(-1);
  std::vector<size_t> proposer_lane(num_claims, kNoLane);
  std::vector<size_t> challenger_lane(num_claims, kNoLane);
  for (size_t i = 0; i < num_claims; ++i) {
    const BatchClaim& claim = claims[i];
    TAO_CHECK(claim.proposer_device != nullptr) << "claim " << i << " has no proposer device";

    Executor::BatchItem proposer;
    proposer.inputs = &claim.inputs;
    proposer.perturbations = claim.perturbations.empty() ? nullptr : &claim.perturbations;
    proposer.device = claim.proposer_device;
    proposer.on_complete = [this, i, output, &claims, &phase1](size_t,
                                                               const ExecutionTrace& trace) {
      ResultMeta meta;
      meta.device = claims[i].proposer_device->name;
      meta.challenge_window = options_.dispute.challenge_window;
      phase1[i].c0 = ComputeResultCommitment(commitment_, claims[i].inputs,
                                             trace.value(output), meta);
    };
    proposer_lane[i] = items.size();
    items.push_back(std::move(proposer));

    if (claim.supervised()) {
      Executor::BatchItem challenger;
      challenger.inputs = &claim.inputs;
      challenger.device = claim.verifier_device;
      challenger_lane[i] = items.size();
      items.push_back(std::move(challenger));
    }
  }

  ExecutorOptions exec_options;
  exec_options.num_threads = options_.dispute.num_threads;
  exec_options.reuse_buffers = options_.reuse_buffers;
  const Executor executor(graph, *claims[0].proposer_device);  // per-lane device overrides
  std::vector<ExecutionTrace> traces = executor.RunBatch(items, exec_options, arena_stats);

  // ---- Threshold checks + lazy full re-execution of flagged claims ------------------
  // Unflagged claims keep nothing beyond c0 and the challenger output: their
  // resolution never reads the proposer trace (the threshold verdict is passed
  // precomputed), so the lane traces die here instead of riding the reorder buffer.
  for (size_t i = 0; i < num_claims; ++i) {
    ClaimPhase1& result = phase1[i];
    if (!claims[i].supervised()) {
      continue;
    }
    // Tracing: the service worker published the cohort's contexts (indexed by
    // claim position) around this call; null when driven standalone.
    const bool tracing = Tracer::enabled();
    const int64_t check_begin = tracing ? Tracer::NowNs() : 0;
    result.supervised = true;
    result.challenger_output = traces[challenger_lane[i]].value(output);
    result.flagged = thresholds_.Exceeds(output, traces[proposer_lane[i]].value(output),
                                         result.challenger_output);
    if (result.flagged) {
      // A dispute will post partition interface values from interior nodes, so this
      // claim — and only this claim — pays for a full-trace re-execution. Bitwise
      // identical to the output-only lane (same inputs, perturbations, device), so
      // C0 and every downstream verdict are unchanged.
      ExecutorOptions reexec_options;
      reexec_options.num_threads = options_.dispute.num_threads;
      const Executor proposer_exec(graph, *claims[i].proposer_device);
      result.proposer_trace =
          proposer_exec.RunPerturbed(claims[i].inputs, claims[i].perturbations,
                                     reexec_options);
    }
    if (tracing) {
      if (const TraceContext* context = ScopedTraceContext::At(i)) {
        SpanRecord span;
        span.model = context->model;
        span.sequence = context->sequence;
        span.shard = context->shard;
        span.worker = context->worker;
        span.kind = SpanKind::kThresholdCheck;
        span.detail = result.flagged ? 1 : 0;
        span.begin_ns = check_begin;
        span.end_ns = Tracer::NowNs();
        Tracer::Record(span);
      }
    }
  }
  return phase1;
}

BatchClaimOutcome BatchVerifier::ResolveClaim(const BatchClaim& claim,
                                              const ClaimPhase1& phase1, uint64_t shard) {
  DisputeOptions dispute_options = options_.dispute;
  dispute_options.coordinator_shard = shard;
  return ResolveClaimWithOptions(claim, phase1, dispute_options);
}

BatchClaimOutcome BatchVerifier::ResolveClaimWithOptions(
    const BatchClaim& claim, const ClaimPhase1& phase1,
    const DisputeOptions& dispute_options) {
  BatchClaimOutcome outcome;
  outcome.model = coordinator_.model_id();
  outcome.c0 = phase1.c0;
  if (!claim.supervised()) {
    // Nobody watches this claim: the proposer commits and the window elapses (on the
    // owning shard's clock only — flows on other shards are untouched).
    const ClaimId id = coordinator_.SubmitCommitment(
        phase1.c0, dispute_options.challenge_window, dispute_options.proposer_bond,
        dispute_options.coordinator_shard);
    coordinator_.AdvanceTimeFor(id, dispute_options.challenge_window);
    TAO_CHECK(coordinator_.TryFinalize(id) == ClaimState::kFinalized);
    outcome.claim_id = id;
    outcome.final_state = ClaimState::kFinalized;
    outcome.gas_used = coordinator_.claim_gas(id);
    return outcome;
  }
  DisputeGame game(model_, commitment_, thresholds_, coordinator_, dispute_options);
  outcome.dispute =
      game.RunFromPhase1(claim.inputs, *claim.verifier_device, phase1.proposer_trace,
                         phase1.challenger_output, phase1.c0, phase1.flagged);
  outcome.claim_id = outcome.dispute.claim_id;
  outcome.supervised = true;
  outcome.flagged = outcome.dispute.challenge_raised;
  outcome.proposer_guilty = outcome.dispute.proposer_guilty;
  outcome.final_state = outcome.dispute.final_state;
  outcome.gas_used = outcome.dispute.gas_used;
  return outcome;
}

std::vector<BatchClaimOutcome> BatchVerifier::VerifyBatch(
    const std::vector<BatchClaim>& claims, TensorArena::Stats* arena_stats) {
  const size_t num_claims = claims.size();
  std::vector<BatchClaimOutcome> outcomes(num_claims);
  if (num_claims == 0) {
    return outcomes;
  }
  const std::vector<ClaimPhase1> phase1 = ExecutePhase1(claims, arena_stats);

  if (!options_.concurrent_disputes) {
    // Claim-ordered resolution: the exact per-claim action sequence of the
    // historical one-claim-at-a-time path, so gas, ledger, claim ids, and stats are
    // bitwise identical to it.
    for (size_t i = 0; i < num_claims; ++i) {
      outcomes[i] = ResolveClaim(claims[i], phase1[i]);
    }
    return outcomes;
  }

  // Concurrent mode: resolve unflagged claims first in claim order (their happy
  // paths advance the shared clock), then fan the flagged claims' dispute games out
  // across the pool with the per-round clock advance disabled — games sharing the
  // coordinator must not push each other past round deadlines or challenge windows.
  std::vector<size_t> flagged;
  for (size_t i = 0; i < num_claims; ++i) {
    if (phase1[i].supervised && phase1[i].flagged) {
      flagged.push_back(i);
    } else {
      outcomes[i] = ResolveClaim(claims[i], phase1[i]);
    }
  }
  if (!flagged.empty()) {
    DisputeOptions frozen_clock = options_.dispute;
    frozen_clock.advance_clock_per_round = false;
    ThreadPool* pool =
        options_.dispute.num_threads > 1 ? &ThreadPool::Shared() : nullptr;
    const ParallelFor fan_out(pool, options_.dispute.num_threads);
    fan_out(static_cast<int64_t>(flagged.size()), [&](int64_t begin, int64_t end) {
      for (int64_t j = begin; j < end; ++j) {
        const size_t i = flagged[static_cast<size_t>(j)];
        outcomes[i] = ResolveClaimWithOptions(claims[i], phase1[i], frozen_clock);
      }
    });
  }
  return outcomes;
}

}  // namespace tao
