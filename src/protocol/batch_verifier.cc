#include "src/protocol/batch_verifier.h"

#include <optional>
#include <utility>

#include "src/runtime/parallel_for.h"
#include "src/runtime/thread_pool.h"
#include "src/util/check.h"

namespace tao {

BatchVerifier::BatchVerifier(const Model& model, const ModelCommitment& commitment,
                             const ThresholdSet& thresholds, Coordinator& coordinator,
                             BatchVerifierOptions options)
    : model_(model),
      commitment_(commitment),
      thresholds_(thresholds),
      coordinator_(coordinator),
      options_(std::move(options)) {}

std::vector<BatchClaimOutcome> BatchVerifier::VerifyBatch(
    const std::vector<BatchClaim>& claims, TensorArena::Stats* arena_stats) {
  const size_t num_claims = claims.size();
  std::vector<BatchClaimOutcome> outcomes(num_claims);
  if (num_claims == 0) {
    return outcomes;
  }
  const Graph& graph = *model_.graph;
  const NodeId output = graph.output();

  // ---- Batched phase 1: one scheduler DAG for the whole cohort ----------------------
  // Proposer lanes keep their full trace only when supervised (a dispute may need to
  // post partitions from any node's value); challenger lanes are output-only. The
  // commitment check for each claim runs as its proposer lane's epilogue node,
  // interleaved with other lanes' compute.
  std::vector<Executor::BatchItem> items;
  items.reserve(2 * num_claims);
  constexpr size_t kNoLane = static_cast<size_t>(-1);
  std::vector<size_t> proposer_lane(num_claims, kNoLane);
  std::vector<size_t> challenger_lane(num_claims, kNoLane);
  std::vector<Digest> c0(num_claims);
  for (size_t i = 0; i < num_claims; ++i) {
    const BatchClaim& claim = claims[i];
    TAO_CHECK(claim.proposer_device != nullptr) << "claim " << i << " has no proposer device";

    Executor::BatchItem proposer;
    proposer.inputs = &claim.inputs;
    proposer.perturbations = claim.perturbations.empty() ? nullptr : &claim.perturbations;
    proposer.device = claim.proposer_device;
    proposer.keep_values = claim.supervised();
    proposer.on_complete = [this, i, output, &claims, &c0](size_t,
                                                           const ExecutionTrace& trace) {
      ResultMeta meta;
      meta.device = claims[i].proposer_device->name;
      meta.challenge_window = options_.dispute.challenge_window;
      c0[i] = ComputeResultCommitment(commitment_, claims[i].inputs, trace.value(output),
                                      meta);
    };
    proposer_lane[i] = items.size();
    items.push_back(std::move(proposer));

    if (claim.supervised()) {
      Executor::BatchItem challenger;
      challenger.inputs = &claim.inputs;
      challenger.device = claim.verifier_device;
      challenger_lane[i] = items.size();
      items.push_back(std::move(challenger));
    }
  }

  ExecutorOptions exec_options;
  exec_options.num_threads = options_.dispute.num_threads;
  exec_options.reuse_buffers = options_.reuse_buffers;
  const Executor executor(graph, *claims[0].proposer_device);  // per-lane device overrides
  const std::vector<ExecutionTrace> traces =
      executor.RunBatch(items, exec_options, arena_stats);

  // ---- Claim resolution against the coordinator -------------------------------------
  const auto resolve_unsupervised = [&](size_t i) {
    // Nobody watches this claim: the proposer commits and the window elapses.
    BatchClaimOutcome& outcome = outcomes[i];
    const ClaimId id = coordinator_.SubmitCommitment(
        c0[i], options_.dispute.challenge_window, options_.dispute.proposer_bond);
    coordinator_.AdvanceTime(options_.dispute.challenge_window);
    TAO_CHECK(coordinator_.TryFinalize(id) == ClaimState::kFinalized);
    outcome.claim_id = id;
    outcome.c0 = c0[i];
    outcome.final_state = ClaimState::kFinalized;
    outcome.gas_used = coordinator_.claim_gas(id);
  };
  const auto resolve_supervised = [&](size_t i, const DisputeOptions& dispute_options,
                                      std::optional<bool> precomputed_flagged) {
    BatchClaimOutcome& outcome = outcomes[i];
    DisputeGame game(model_, commitment_, thresholds_, coordinator_, dispute_options);
    outcome.dispute = game.RunFromPhase1(
        claims[i].inputs, *claims[i].verifier_device, traces[proposer_lane[i]],
        traces[challenger_lane[i]].value(output), c0[i], precomputed_flagged);
    outcome.claim_id = outcome.dispute.claim_id;
    outcome.c0 = c0[i];
    outcome.supervised = true;
    outcome.flagged = outcome.dispute.challenge_raised;
    outcome.proposer_guilty = outcome.dispute.proposer_guilty;
    outcome.final_state = outcome.dispute.final_state;
    outcome.gas_used = outcome.dispute.gas_used;
  };

  if (!options_.concurrent_disputes) {
    // Claim-ordered resolution: the exact per-claim action sequence of the
    // historical one-claim-at-a-time path, so gas, ledger, claim ids, and stats are
    // bitwise identical to it.
    for (size_t i = 0; i < num_claims; ++i) {
      if (claims[i].supervised()) {
        resolve_supervised(i, options_.dispute, std::nullopt);
      } else {
        resolve_unsupervised(i);
      }
    }
    return outcomes;
  }

  // Concurrent mode: resolve unflagged claims first in claim order (their happy
  // paths advance the shared clock), then fan the flagged claims' dispute games out
  // across the pool with the per-round clock advance disabled — games sharing the
  // coordinator must not push each other past round deadlines or challenge windows.
  std::vector<size_t> flagged;
  for (size_t i = 0; i < num_claims; ++i) {
    if (!claims[i].supervised()) {
      resolve_unsupervised(i);
      continue;
    }
    const bool exceeds =
        thresholds_.Exceeds(output, traces[proposer_lane[i]].value(output),
                            traces[challenger_lane[i]].value(output));
    if (exceeds) {
      flagged.push_back(i);
    } else {
      // Happy path, no dispute; the threshold verdict is already known.
      resolve_supervised(i, options_.dispute, false);
    }
  }
  if (!flagged.empty()) {
    DisputeOptions frozen_clock = options_.dispute;
    frozen_clock.advance_clock_per_round = false;
    ThreadPool* pool =
        options_.dispute.num_threads > 1 ? &ThreadPool::Shared() : nullptr;
    const ParallelFor fan_out(pool, options_.dispute.num_threads);
    fan_out(static_cast<int64_t>(flagged.size()), [&](int64_t begin, int64_t end) {
      for (int64_t j = begin; j < end; ++j) {
        resolve_supervised(flagged[static_cast<size_t>(j)], frozen_clock, true);
      }
    });
  }
  return outcomes;
}

}  // namespace tao
