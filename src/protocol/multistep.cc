#include "src/protocol/multistep.h"

#include <algorithm>
#include <cmath>

#include "src/crypto/canonical.h"
#include "src/runtime/parallel_for.h"
#include "src/runtime/thread_pool.h"
#include "src/util/check.h"

namespace tao {
namespace {

Digest HashStep(const Tensor& logits, int64_t token) {
  Sha256 ctx;
  const Digest logits_hash = HashTensor(logits);
  ctx.Update(std::span<const uint8_t>(logits_hash.data(), logits_hash.size()));
  std::vector<uint8_t> token_bytes;
  AppendU64(token_bytes, static_cast<uint64_t>(token));
  ctx.Update(std::span<const uint8_t>(token_bytes.data(), token_bytes.size()));
  return ctx.Finalize();
}

}  // namespace

int64_t SelectToken(const Tensor& logits, const TieBreakConfig& config) {
  const int64_t n = logits.numel();
  TAO_CHECK_GT(n, 0);
  double max_logit = logits[0];
  int64_t argmax = 0;
  for (int64_t i = 1; i < n; ++i) {
    if (logits[i] > max_logit) {
      max_logit = logits[i];
      argmax = i;
    }
  }
  if (config.rule == TieBreakRule::kArgmax) {
    return argmax;
  }
  // Candidates within the committed margin of the maximum. Honest cross-device logits
  // differ by far less than `margin`, so every honest device derives the same
  // candidate set and thus the same deterministic winner.
  std::vector<int64_t> candidates;
  for (int64_t i = 0; i < n; ++i) {
    if (static_cast<double>(logits[i]) >= max_logit - config.margin) {
      candidates.push_back(i);
    }
  }
  if (config.rule == TieBreakRule::kLexicographic) {
    return *std::min_element(candidates.begin(), candidates.end());
  }
  // kHashSeeded: a verifiable pseudo-random pick derived from committed public data
  // (the seed) and the candidate set itself — not from floating-point values.
  Sha256 ctx;
  std::vector<uint8_t> bytes;
  AppendU64(bytes, config.seed);
  AppendU64(bytes, static_cast<uint64_t>(candidates.size()));
  for (const int64_t c : candidates) {
    AppendU64(bytes, static_cast<uint64_t>(c));
  }
  ctx.Update(std::span<const uint8_t>(bytes.data(), bytes.size()));
  const Digest digest = ctx.Finalize();
  uint64_t pick = 0;
  for (int i = 0; i < 8; ++i) {
    pick = (pick << 8) | digest[static_cast<size_t>(i)];
  }
  return candidates[pick % candidates.size()];
}

DecodeResult Decode(const Model& model, const std::vector<float>& prompt, int64_t num_steps,
                    const DeviceProfile& device, const TieBreakConfig& tie_break,
                    const std::vector<StepPerturbation>& perturbations,
                    const ExecutorOptions& exec_options) {
  const Graph& graph = *model.graph;
  TAO_CHECK_EQ(graph.input_nodes().size(), 1u);
  const int64_t window = graph.node(graph.input_nodes()[0]).shape.numel();
  TAO_CHECK_GE(static_cast<int64_t>(prompt.size()), window)
      << "prompt must fill the model's context window";

  std::vector<float> context(prompt.end() - window, prompt.end());
  const Executor exec(graph, device);
  DecodeResult result;
  std::vector<Digest> leaves;
  for (int64_t step = 0; step < num_steps; ++step) {
    Tensor ids(Shape{window}, std::vector<float>(context.begin(), context.end()));
    std::vector<Executor::Perturbation> step_perturbations;
    for (const StepPerturbation& p : perturbations) {
      if (p.step == step) {
        step_perturbations.push_back(p.perturbation);
      }
    }
    const ExecutionTrace trace = exec.RunPerturbed({ids}, step_perturbations, exec_options);
    DecodeStep decoded;
    decoded.logits = trace.value(graph.output());
    decoded.token = SelectToken(decoded.logits, tie_break);
    decoded.state_hash = HashStep(decoded.logits, decoded.token);
    leaves.push_back(decoded.state_hash);
    // Slide the window: drop the oldest token, append the new one.
    context.erase(context.begin());
    context.push_back(static_cast<float>(decoded.token));
    result.steps.push_back(std::move(decoded));
  }
  result.temporal_root = MerkleTree(std::move(leaves)).root();
  return result;
}

DecodePair DecodeBothParties(const Model& model, const std::vector<float>& prompt,
                             int64_t num_steps, const DeviceProfile& proposer_device,
                             const DeviceProfile& challenger_device,
                             const TieBreakConfig& tie_break,
                             const std::vector<StepPerturbation>& perturbations,
                             const ExecutorOptions& exec_options) {
  DecodePair pair;
  // One party per lane; each lane's per-step executions may additionally split
  // kernels across the same pool (the ParallelFor help-loop makes nesting safe).
  ThreadPool* pool = exec_options.num_threads > 1 ? &ThreadPool::Shared() : nullptr;
  ParallelInvoke(
      pool,
      [&] {
        pair.proposer = Decode(model, prompt, num_steps, proposer_device, tie_break,
                               perturbations, exec_options);
      },
      [&] {
        pair.challenger = Decode(model, prompt, num_steps, challenger_device, tie_break,
                                 {}, exec_options);
      });
  return pair;
}

TemporalDisputeResult LocalizeTemporalDivergence(const DecodeResult& proposer,
                                                 const DecodeResult& challenger) {
  TAO_CHECK_EQ(proposer.steps.size(), challenger.steps.size());
  TemporalDisputeResult result;
  const int64_t n = static_cast<int64_t>(proposer.steps.size());
  if (proposer.temporal_root == challenger.temporal_root) {
    result.finalized_prefix = n;
    return result;
  }
  // Binary search for the earliest diverging step: the prefix property (each step's
  // state depends only on prior tokens) makes "first index where state hashes differ"
  // well-defined and monotone.
  auto differs_at_or_before = [&](int64_t step) {
    for (int64_t s = 0; s <= step; ++s) {
      if (proposer.steps[static_cast<size_t>(s)].state_hash !=
          challenger.steps[static_cast<size_t>(s)].state_hash) {
        return true;
      }
    }
    return false;
  };
  int64_t lo = 0;
  int64_t hi = n - 1;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    ++result.comparisons;
    if (differs_at_or_before(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.divergence_found = true;
  result.first_offending_step = lo;
  // Prefix finality: everything strictly before the first offending step is final.
  result.finalized_prefix = lo;
  return result;
}

}  // namespace tao
