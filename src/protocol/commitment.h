// Model and result commitments (Sec. 2.2 Phase 0-1, Sec. 5.2).
//
// Phase 0: the model owner merkleizes weight tensors (root r_w, leaves sorted by
// parameter name), operator signatures (root r_g), and calibrated thresholds (root
// r_e). Phase 1: for each request the proposer posts
//   C0 = H(r_w || r_g || H(x) || H(y) || meta)
// where meta encodes device type, kernel versions, dtypes, and the challenge window.

#ifndef TAO_SRC_PROTOCOL_COMMITMENT_H_
#define TAO_SRC_PROTOCOL_COMMITMENT_H_

#include <map>
#include <string>
#include <vector>

#include "src/calib/threshold.h"
#include "src/crypto/merkle.h"
#include "src/graph/graph.h"

namespace tao {

class ModelCommitment {
 public:
  // Builds the weight and graph Merkle trees; thresholds provide r_e.
  ModelCommitment(const Graph& graph, const ThresholdSet& thresholds);

  const Digest& weight_root() const { return weight_tree_.root(); }     // r_w
  const Digest& graph_root() const { return graph_tree_.root(); }       // r_g
  const Digest& threshold_root() const { return threshold_root_; }      // r_e

  // Leaf index of a parameter node in the weight tree / of any node in the graph tree.
  size_t WeightLeafIndex(NodeId id) const;
  size_t GraphLeafIndex(NodeId id) const;

  MerkleProof ProveWeight(NodeId id) const;
  MerkleProof ProveSignature(NodeId id) const;

  bool VerifyWeight(const Graph& graph, NodeId id, const MerkleProof& proof) const;
  bool VerifySignature(const Graph& graph, NodeId id, const MerkleProof& proof) const;

 private:
  // Note: the index maps are populated by the tree builders during member
  // initialization, so they must be declared (and thus constructed) first.
  std::map<NodeId, size_t> weight_leaf_index_;
  std::map<NodeId, size_t> graph_leaf_index_;
  MerkleTree weight_tree_;
  MerkleTree graph_tree_;
  Digest threshold_root_;
};

struct ResultMeta {
  std::string device;
  std::string kernel_version = "tao-0.1";
  std::string dtype = "fp32";
  uint64_t challenge_window = 100;  // logical ticks

  std::string Canonical() const;
};

// C0 = H(r_w || r_g || H(x) || H(y) || meta).
Digest ComputeResultCommitment(const ModelCommitment& commitment,
                               const std::vector<Tensor>& inputs, const Tensor& output,
                               const ResultMeta& meta);

// Interface commitment h_D for a list of boundary tensors (Sec. 5.2).
Digest ComputeInterfaceHash(const std::vector<Tensor>& tensors);

}  // namespace tao

#endif  // TAO_SRC_PROTOCOL_COMMITMENT_H_
