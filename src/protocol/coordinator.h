// Coordinator: the authenticated coordination service of Sec. 2.1 — records
// commitments, enforces challenge windows and per-round timeouts over a logical clock,
// escrows bonds, meters gas per action, and executes slashing/rewards on adjudication.
// The paper's prototype deploys this as Ethereum contracts; the in-process state
// machine implements the same transitions and cost accounting (see gas.h).

#ifndef TAO_SRC_PROTOCOL_COORDINATOR_H_
#define TAO_SRC_PROTOCOL_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/protocol/gas.h"
#include "src/util/check.h"

namespace tao {

using ClaimId = uint64_t;

enum class ClaimState {
  kCommitted,          // C0 posted; challenge window open
  kFinalized,          // window elapsed unchallenged; payment released
  kDisputed,           // interactive localization in progress
  kProposerSlashed,    // fraud proven; proposer bond slashed, challenger rewarded
  kChallengerSlashed,  // dispute failed; challenger bond slashed
};

const char* ClaimStateName(ClaimState state);

struct ClaimRecord {
  ClaimId id = 0;
  Digest c0{};
  uint64_t committed_at = 0;
  uint64_t challenge_window = 0;
  ClaimState state = ClaimState::kCommitted;
  double proposer_bond = 0.0;
  double challenger_bond = 0.0;
  // Dispute bookkeeping.
  int64_t dispute_round = 0;
  uint64_t round_deadline = 0;
  int64_t merkle_checks = 0;
  // Gas charged by this claim's lifecycle actions. The global GasMeter is the sum of
  // these across claims; the per-claim ledger is what lets concurrently-running
  // flows attribute cost without bracketing the shared meter.
  int64_t gas = 0;
};

// Per-party balance ledger (bond escrow, rewards, slashes).
struct Balances {
  double proposer = 0.0;
  double challenger = 0.0;
  double treasury = 0.0;  // burned remainder of slashes
};

// The Coordinator is safe to share across concurrently-running protocol flows (the
// runtime layer executes independent claims in parallel): every state transition
// locks an internal mutex, the gas meter is atomic, and claim() references stay
// valid because std::map nodes are stable under insertion. Concurrent flows must
// still operate on DISTINCT claims — two parties racing transitions on one claim is
// a protocol violation, not a data race the lock should hide.

class Coordinator {
 public:
  explicit Coordinator(GasSchedule schedule = {}, uint64_t round_timeout = 10)
      : schedule_(schedule), round_timeout_(round_timeout) {}

  // --- logical clock ----------------------------------------------------------------
  uint64_t now() const {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }
  void AdvanceTime(uint64_t ticks) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += ticks;
  }

  // --- phase 1: optimistic execution --------------------------------------------------
  ClaimId SubmitCommitment(const Digest& c0, uint64_t challenge_window, double proposer_bond);
  // Finalizes iff the window elapsed with no challenge. Returns the new state.
  ClaimState TryFinalize(ClaimId id);

  // --- phase 2: dispute ----------------------------------------------------------------
  void OpenChallenge(ClaimId id, double challenger_bond);
  // Proposer posts one round's partition (children interface commitments); challenger
  // then posts the selected offending child. Both refresh the round deadline.
  void RecordPartition(ClaimId id, int64_t children, const std::vector<Digest>& child_hashes);
  void RecordSelection(ClaimId id, int64_t selected_child);
  // Meters an off-chain-verified Merkle inclusion proof batch.
  void RecordMerkleCheck(ClaimId id, int64_t proofs);
  // A party missed its deadline and forfeits (true = proposer timed out).
  void RecordTimeout(ClaimId id, bool proposer_timed_out);

  // --- phase 3: adjudication ------------------------------------------------------------
  void RecordLeafAdjudication(ClaimId id, bool proposer_guilty, double challenger_share);

 private:
  // Adjudication body; callers must hold mu_.
  void RecordLeafAdjudicationLocked(ClaimId id, bool proposer_guilty, double challenger_share);

 public:

  const ClaimRecord& claim(ClaimId id) const;
  // Gas charged against one claim so far (snapshot under the lock).
  int64_t claim_gas(ClaimId id) const;
  // Snapshot of the ledger (copied under the lock).
  Balances balances() const {
    std::lock_guard<std::mutex> lock(mu_);
    return balances_;
  }
  const GasMeter& gas() const { return gas_; }
  GasMeter& mutable_gas() { return gas_; }
  const GasSchedule& schedule() const { return schedule_; }

 private:
  // Callers must hold mu_.
  ClaimRecord& MutableClaim(ClaimId id);

  GasSchedule schedule_;
  uint64_t round_timeout_;
  mutable std::mutex mu_;
  uint64_t now_ = 0;
  ClaimId next_id_ = 1;
  std::map<ClaimId, ClaimRecord> claims_;
  Balances balances_;
  GasMeter gas_;
};

}  // namespace tao

#endif  // TAO_SRC_PROTOCOL_COORDINATOR_H_
