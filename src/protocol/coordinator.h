// Coordinator: the authenticated coordination service of Sec. 2.1 — records
// commitments, enforces challenge windows and per-round timeouts over a logical clock,
// escrows bonds, meters gas per action, and executes slashing/rewards on adjudication.
// The paper's prototype deploys this as Ethereum contracts; the in-process state
// machine implements the same transitions and cost accounting (see gas.h).
//
// The state machine is SHARDED (see docs/coordinator.md): claims are partitioned by
// ClaimId across `num_shards` independent shards, each with its own mutex, claim map,
// logical clock, gas accumulator, and balance ledger. Claim lifecycles on different
// shards never contend on a lock and never perturb each other's clocks, which is what
// lets thousands of concurrent dispute flows stop serializing on one mutex. Global
// reads (`balances()`, `gas()`) fold the per-shard accumulators on demand. With
// `num_shards == 1` (the default) the coordinator is bitwise identical to the
// historical single-lock state machine: one shard, one clock, ids 1, 2, 3, ...

#ifndef TAO_SRC_PROTOCOL_COORDINATOR_H_
#define TAO_SRC_PROTOCOL_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/durability/options.h"
#include "src/protocol/gas.h"
#include "src/util/check.h"

namespace tao {

// Durability machinery (src/durability/coordinator_log.h); forward-declared so the
// protocol header stays free of the changelog/writer includes.
struct CoordinatorAction;
class CoordinatorDurability;
struct ShardSnapshotState;

using ClaimId = uint64_t;
// Identity of a committed model in the ModelRegistry (src/registry/). 0 is the
// legacy "unscoped" id used by standalone drivers that predate the registry.
using ModelId = uint64_t;

enum class ClaimState {
  kCommitted,          // C0 posted; challenge window open
  kFinalized,          // window elapsed unchallenged; payment released
  kDisputed,           // interactive localization in progress
  kProposerSlashed,    // fraud proven; proposer bond slashed, challenger rewarded
  kChallengerSlashed,  // dispute failed; challenger bond slashed
};

const char* ClaimStateName(ClaimState state);

struct ClaimRecord {
  ClaimId id = 0;
  // Model this claim was submitted against (the owning coordinator's model id).
  // Ledger entries and gas are per-model-scoped through it: a registry deployment
  // runs one coordinator per model, so every record it holds carries that model's
  // id and cross-model readers (dashboards folding several coordinators) can
  // attribute rows without a side table. 0 for pre-registry standalone drivers.
  ModelId model = 0;
  Digest c0{};
  uint64_t committed_at = 0;
  uint64_t challenge_window = 0;
  ClaimState state = ClaimState::kCommitted;
  double proposer_bond = 0.0;
  double challenger_bond = 0.0;
  // Dispute bookkeeping.
  int64_t dispute_round = 0;
  uint64_t round_deadline = 0;
  int64_t merkle_checks = 0;
  // Gas charged by this claim's lifecycle actions. Each shard's gas accumulator is
  // the sum of these over its claims; the per-claim ledger is what lets
  // concurrently-running flows attribute cost without bracketing a shared meter.
  int64_t gas = 0;
};

// Per-party balance ledger (bond escrow, rewards, slashes).
struct Balances {
  double proposer = 0.0;
  double challenger = 0.0;
  double treasury = 0.0;  // burned remainder of slashes
};

// The Coordinator is safe to share across concurrently-running protocol flows (the
// runtime and service layers execute independent claims in parallel): every state
// transition locks the owning shard's mutex. Concurrent flows must still operate on
// DISTINCT claims — two parties racing transitions on one claim is a protocol
// violation, not a data race the lock should hide.
//
// Claim-id layout: shard s issues ids 1+s, 1+s+S, 1+s+2S, ... (S = num_shards), so
// shard_of(id) = (id - 1) % S and — crucially for the service's per-shard
// determinism — the i-th claim homed to a shard always gets the same id no matter
// how submissions to OTHER shards interleave. With S = 1 this degenerates to the
// historical dense sequence 1, 2, 3, ...

class Coordinator {
 public:
  // `model_id` scopes every claim this coordinator records (stamped into each
  // ClaimRecord at submission); registry deployments pass the owning model's id,
  // standalone drivers keep the default 0. It does not perturb ids, gas, clocks,
  // or the ledger, so a model_id-0 coordinator is bitwise the historical one.
  //
  // `durability` with a non-empty directory makes every state transition append to
  // a per-shard write-ahead changelog (with periodic snapshots) and RECOVERS any
  // state already on disk there — replaying it through these same transition
  // methods, so the recovered coordinator is bitwise the uninterrupted one (see
  // docs/durability.md). The empty-directory default is in-memory only: no files,
  // no writer thread, one null-pointer branch per action.
  //
  // Recovery failures are typed (RecoveryStatus): with `recovery_status` null they
  // abort loudly; otherwise the status is written there and on error the
  // coordinator is left durability-off with partial state — check ok() and discard
  // it on failure.
  explicit Coordinator(GasSchedule schedule = {}, uint64_t round_timeout = 10,
                       size_t num_shards = 1, ModelId model_id = 0,
                       DurabilityOptions durability = {},
                       RecoveryStatus* recovery_status = nullptr);
  ~Coordinator();  // out-of-line: CoordinatorDurability is incomplete here

  size_t num_shards() const { return shards_.size(); }
  ModelId model_id() const { return model_id_; }
  // Owning shard of a claim (ids start at 1).
  size_t shard_of(ClaimId id) const {
    TAO_CHECK_GE(id, 1u);
    return static_cast<size_t>((id - 1) % shards_.size());
  }

  // --- logical clock ----------------------------------------------------------------
  // Each shard keeps its own clock: windows and deadlines of a claim are enforced
  // against the clock of the shard that owns it.
  uint64_t now() const { return shard_now(0); }
  uint64_t shard_now(size_t shard) const;
  // Advances EVERY shard's clock (the global view sequential drivers and tests use).
  void AdvanceTime(uint64_t ticks);
  // Advances only the clock of the shard owning `id`. Per-claim flows use this so
  // that time on one shard never pushes claims on another shard past their
  // deadlines; with one shard it is exactly AdvanceTime.
  void AdvanceTimeFor(ClaimId id, uint64_t ticks);

  // --- phase 1: optimistic execution --------------------------------------------------
  // `shard` homes the new claim (taken mod num_shards; callers running per-shard
  // resolve lanes pass their lane index, everyone else can ignore it).
  ClaimId SubmitCommitment(const Digest& c0, uint64_t challenge_window,
                           double proposer_bond, uint64_t shard = 0);
  // Finalizes iff the window elapsed with no challenge. Returns the new state.
  ClaimState TryFinalize(ClaimId id);

  // --- phase 2: dispute ----------------------------------------------------------------
  void OpenChallenge(ClaimId id, double challenger_bond);
  // Proposer posts one round's partition (children interface commitments); challenger
  // then posts the selected offending child. Both refresh the round deadline.
  void RecordPartition(ClaimId id, int64_t children, const std::vector<Digest>& child_hashes);
  void RecordSelection(ClaimId id, int64_t selected_child);
  // Meters an off-chain-verified Merkle inclusion proof batch.
  void RecordMerkleCheck(ClaimId id, int64_t proofs);
  // A party missed its deadline and forfeits (true = proposer timed out).
  void RecordTimeout(ClaimId id, bool proposer_timed_out);

  // --- phase 3: adjudication ------------------------------------------------------------
  void RecordLeafAdjudication(ClaimId id, bool proposer_guilty, double challenger_share);

  // Charges `gas` against one claim AND its shard's meter — the metered per-claim
  // path for costs arising outside the built-in transitions (the old
  // `mutable_gas()` escape hatch bypassed claim attribution and is gone).
  void ChargeClaimGas(ClaimId id, int64_t gas);

  // --- snapshots ------------------------------------------------------------------------
  // Value snapshot of one claim, copied under its shard's lock. (Reference-returning
  // accessors are gone: a reference into a shard's map is a dangling bug the moment
  // another thread touches the shard.)
  ClaimRecord claim(ClaimId id) const;
  // Gas charged against one claim so far (snapshot under the shard lock).
  int64_t claim_gas(ClaimId id) const;
  // Global ledger: fold of the per-shard ledgers in shard order. Each shard's
  // contribution is read under its lock; the cross-shard fold is not a linearizable
  // cut while flows are running (it is exact at quiescence, and always exact for
  // num_shards == 1).
  Balances balances() const;
  // One shard's ledger (copied under its lock).
  Balances shard_balances(size_t shard) const;
  // Global gas: fold of the per-shard accumulators (same caveat as balances()).
  GasTotals gas() const;
  int64_t shard_gas(size_t shard) const;
  // Ids of the claims homed to one shard, in submission order.
  std::vector<ClaimId> shard_claims(size_t shard) const;
  const GasSchedule& schedule() const { return schedule_; }

  // --- durability -------------------------------------------------------------------
  bool durable() const { return durability_ != nullptr; }
  // Zero when in-memory; recovery_replayed counts tail records applied at startup.
  DurabilityStats durability_stats() const;
  // What recovery found at construction (recovered=false for a fresh directory).
  const RecoveryInfo& recovery_info() const { return recovery_info_; }
  // Barrier: every action logged so far is on disk (fsynced unless policy kNever).
  void FlushDurability();

 private:
  // One independent slice of the state machine. `gas` is a plain counter because it
  // is only ever touched under `mu` (the old global meter had to be atomic).
  struct Shard {
    mutable std::mutex mu;
    uint64_t now = 0;
    uint64_t submitted = 0;  // claims homed here; drives id assignment
    std::map<ClaimId, ClaimRecord> claims;
    Balances balances;
    int64_t gas = 0;
  };

  Shard& shard_for(ClaimId id) { return *shards_[shard_of(id)]; }
  const Shard& shard_for(ClaimId id) const { return *shards_[shard_of(id)]; }
  // Callers must hold shard.mu.
  ClaimRecord& MutableClaim(Shard& shard, ClaimId id) const;
  void RecordLeafAdjudicationLocked(Shard& shard, ClaimId id, bool proposer_guilty,
                                    double challenger_share);

  // --- durability plumbing (coordinator.cc; all defined via coordinator_log.h) ----
  // Appends one action to shard `index`'s changelog and snapshots the shard when
  // due. Caller holds shard.mu — the lock is what orders the log. No-op (one
  // branch) when in-memory or replaying.
  void LogMutation(size_t index, Shard& shard, const CoordinatorAction& action);
  ShardSnapshotState SnapshotShardLocked(const Shard& shard) const;
  void RestoreShard(size_t index, const ShardSnapshotState& state);
  // Re-applies one recovered action through the public transition methods
  // (replaying_ suppresses re-logging). Typed error on any divergence.
  RecoveryStatus ApplyLoggedAction(size_t index, const CoordinatorAction& action);
  RecoveryStatus InitDurability(DurabilityOptions options);

  GasSchedule schedule_;
  uint64_t round_timeout_;
  ModelId model_id_;
  // unique_ptr: Shard holds a mutex and must stay pinned in memory.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<CoordinatorDurability> durability_;
  // True only inside the single-threaded recovery replay in the constructor.
  bool replaying_ = false;
  RecoveryInfo recovery_info_;
};

}  // namespace tao

#endif  // TAO_SRC_PROTOCOL_COORDINATOR_H_
