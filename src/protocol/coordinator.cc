#include "src/protocol/coordinator.h"

namespace tao {

const char* ClaimStateName(ClaimState state) {
  switch (state) {
    case ClaimState::kCommitted:
      return "committed";
    case ClaimState::kFinalized:
      return "finalized";
    case ClaimState::kDisputed:
      return "disputed";
    case ClaimState::kProposerSlashed:
      return "proposer_slashed";
    case ClaimState::kChallengerSlashed:
      return "challenger_slashed";
  }
  return "unknown";
}

Coordinator::Coordinator(GasSchedule schedule, uint64_t round_timeout, size_t num_shards,
                         ModelId model_id)
    : schedule_(schedule), round_timeout_(round_timeout), model_id_(model_id) {
  TAO_CHECK_GE(num_shards, 1u) << "coordinator needs at least one shard";
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

uint64_t Coordinator::shard_now(size_t shard) const {
  TAO_CHECK_LT(shard, shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->now;
}

void Coordinator::AdvanceTime(uint64_t ticks) {
  // One shard at a time (never two locks held), in shard order.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->now += ticks;
  }
}

void Coordinator::AdvanceTimeFor(ClaimId id, uint64_t ticks) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.now += ticks;
}

ClaimId Coordinator::SubmitCommitment(const Digest& c0, uint64_t challenge_window,
                                      double proposer_bond, uint64_t shard_hint) {
  const size_t index = static_cast<size_t>(shard_hint % shards_.size());
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mu);
  TAO_CHECK_GT(proposer_bond, 0.0);
  ClaimRecord record;
  // Shard-local id assignment: the i-th claim homed here is 1 + index + i*S, so a
  // shard's id sequence is a function of ITS submission order alone (per-shard
  // determinism), and S=1 reproduces the historical dense 1, 2, 3, ...
  record.id = 1 + static_cast<ClaimId>(index) +
              static_cast<ClaimId>(shard.submitted) * shards_.size();
  ++shard.submitted;
  record.model = model_id_;
  record.c0 = c0;
  record.committed_at = shard.now;
  record.challenge_window = challenge_window;
  record.proposer_bond = proposer_bond;
  shard.balances.proposer -= proposer_bond;  // escrowed
  record.gas += schedule_.commit;
  shard.claims[record.id] = record;
  shard.gas += schedule_.commit;
  return record.id;
}

ClaimState Coordinator::TryFinalize(ClaimId id) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  if (claim.state == ClaimState::kCommitted &&
      shard.now >= claim.committed_at + claim.challenge_window) {
    claim.state = ClaimState::kFinalized;
    shard.balances.proposer += claim.proposer_bond;  // bond released with payment
  }
  return claim.state;
}

void Coordinator::OpenChallenge(ClaimId id, double challenger_bond) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  TAO_CHECK(claim.state == ClaimState::kCommitted)
      << "cannot challenge claim in state " << ClaimStateName(claim.state);
  TAO_CHECK(shard.now < claim.committed_at + claim.challenge_window)
      << "challenge window closed";
  TAO_CHECK_GT(challenger_bond, 0.0);
  claim.state = ClaimState::kDisputed;
  claim.challenger_bond = challenger_bond;
  claim.dispute_round = 0;
  claim.round_deadline = shard.now + round_timeout_;
  shard.balances.challenger -= challenger_bond;  // escrowed
  claim.gas += schedule_.open_challenge;
  shard.gas += schedule_.open_challenge;
}

void Coordinator::RecordPartition(ClaimId id, int64_t children,
                                  const std::vector<Digest>& child_hashes) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  TAO_CHECK(claim.state == ClaimState::kDisputed);
  TAO_CHECK(shard.now <= claim.round_deadline) << "proposer partition past deadline";
  TAO_CHECK_EQ(static_cast<int64_t>(child_hashes.size()), children);
  claim.round_deadline = shard.now + round_timeout_;
  claim.gas += schedule_.PartitionCost(children);
  shard.gas += schedule_.PartitionCost(children);
}

void Coordinator::RecordSelection(ClaimId id, int64_t selected_child) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  TAO_CHECK(claim.state == ClaimState::kDisputed);
  TAO_CHECK(shard.now <= claim.round_deadline) << "challenger selection past deadline";
  TAO_CHECK_GE(selected_child, 0);
  claim.dispute_round += 1;
  claim.round_deadline = shard.now + round_timeout_;
  claim.gas += schedule_.selection;
  shard.gas += schedule_.selection;
}

void Coordinator::RecordMerkleCheck(ClaimId id, int64_t proofs) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  claim.merkle_checks += proofs;
  claim.gas += schedule_.merkle_check * proofs;
  shard.gas += schedule_.merkle_check * proofs;
}

void Coordinator::RecordTimeout(ClaimId id, bool proposer_timed_out) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  TAO_CHECK(claim.state == ClaimState::kDisputed);
  TAO_CHECK(shard.now > claim.round_deadline) << "no deadline has passed";
  RecordLeafAdjudicationLocked(shard, id, proposer_timed_out, 0.5);
}

void Coordinator::RecordLeafAdjudication(ClaimId id, bool proposer_guilty,
                                         double challenger_share) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  RecordLeafAdjudicationLocked(shard, id, proposer_guilty, challenger_share);
}

void Coordinator::RecordLeafAdjudicationLocked(Shard& shard, ClaimId id,
                                               bool proposer_guilty,
                                               double challenger_share) {
  ClaimRecord& claim = MutableClaim(shard, id);
  TAO_CHECK(claim.state == ClaimState::kDisputed);
  claim.gas += schedule_.leaf_adjudication + schedule_.settlement;
  shard.gas += schedule_.leaf_adjudication;
  if (proposer_guilty) {
    claim.state = ClaimState::kProposerSlashed;
    // Proposer bond slashed: a share to the challenger, remainder burned; challenger
    // bond returned.
    const double reward = challenger_share * claim.proposer_bond;
    shard.balances.challenger += claim.challenger_bond + reward;
    shard.balances.treasury += claim.proposer_bond - reward;
  } else {
    claim.state = ClaimState::kChallengerSlashed;
    shard.balances.proposer += claim.proposer_bond + claim.challenger_bond;
  }
  shard.gas += schedule_.settlement;
}

void Coordinator::ChargeClaimGas(ClaimId id, int64_t gas) {
  TAO_CHECK_GE(gas, 0);
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  claim.gas += gas;
  shard.gas += gas;
}

int64_t Coordinator::claim_gas(ClaimId id) const {
  const Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.claims.find(id);
  TAO_CHECK(it != shard.claims.end()) << "unknown claim " << id;
  return it->second.gas;
}

ClaimRecord Coordinator::claim(ClaimId id) const {
  const Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.claims.find(id);
  TAO_CHECK(it != shard.claims.end()) << "unknown claim " << id;
  return it->second;
}

Balances Coordinator::balances() const {
  Balances total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.proposer += shard->balances.proposer;
    total.challenger += shard->balances.challenger;
    total.treasury += shard->balances.treasury;
  }
  return total;
}

Balances Coordinator::shard_balances(size_t shard) const {
  TAO_CHECK_LT(shard, shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->balances;
}

GasTotals Coordinator::gas() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->gas;
  }
  return GasTotals(total);
}

int64_t Coordinator::shard_gas(size_t shard) const {
  TAO_CHECK_LT(shard, shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->gas;
}

std::vector<ClaimId> Coordinator::shard_claims(size_t shard) const {
  TAO_CHECK_LT(shard, shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  std::vector<ClaimId> ids;
  ids.reserve(shards_[shard]->claims.size());
  // std::map iterates in id order == this shard's submission order (ids ascend by S).
  for (const auto& [id, record] : shards_[shard]->claims) {
    ids.push_back(id);
  }
  return ids;
}

ClaimRecord& Coordinator::MutableClaim(Shard& shard, ClaimId id) const {
  const auto it = shard.claims.find(id);
  TAO_CHECK(it != shard.claims.end()) << "unknown claim " << id;
  return it->second;
}

}  // namespace tao
