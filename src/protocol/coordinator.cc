#include "src/protocol/coordinator.h"

namespace tao {

const char* ClaimStateName(ClaimState state) {
  switch (state) {
    case ClaimState::kCommitted:
      return "committed";
    case ClaimState::kFinalized:
      return "finalized";
    case ClaimState::kDisputed:
      return "disputed";
    case ClaimState::kProposerSlashed:
      return "proposer_slashed";
    case ClaimState::kChallengerSlashed:
      return "challenger_slashed";
  }
  return "unknown";
}

ClaimId Coordinator::SubmitCommitment(const Digest& c0, uint64_t challenge_window,
                                      double proposer_bond) {
  std::lock_guard<std::mutex> lock(mu_);
  TAO_CHECK_GT(proposer_bond, 0.0);
  ClaimRecord record;
  record.id = next_id_++;
  record.c0 = c0;
  record.committed_at = now_;
  record.challenge_window = challenge_window;
  record.proposer_bond = proposer_bond;
  balances_.proposer -= proposer_bond;  // escrowed
  record.gas += schedule_.commit;
  claims_[record.id] = record;
  gas_.Charge(schedule_.commit);
  return record.id;
}

ClaimState Coordinator::TryFinalize(ClaimId id) {
  std::lock_guard<std::mutex> lock(mu_);
  ClaimRecord& claim = MutableClaim(id);
  if (claim.state == ClaimState::kCommitted &&
      now_ >= claim.committed_at + claim.challenge_window) {
    claim.state = ClaimState::kFinalized;
    balances_.proposer += claim.proposer_bond;  // bond released with payment
  }
  return claim.state;
}

void Coordinator::OpenChallenge(ClaimId id, double challenger_bond) {
  std::lock_guard<std::mutex> lock(mu_);
  ClaimRecord& claim = MutableClaim(id);
  TAO_CHECK(claim.state == ClaimState::kCommitted)
      << "cannot challenge claim in state " << ClaimStateName(claim.state);
  TAO_CHECK(now_ < claim.committed_at + claim.challenge_window) << "challenge window closed";
  TAO_CHECK_GT(challenger_bond, 0.0);
  claim.state = ClaimState::kDisputed;
  claim.challenger_bond = challenger_bond;
  claim.dispute_round = 0;
  claim.round_deadline = now_ + round_timeout_;
  balances_.challenger -= challenger_bond;  // escrowed
  claim.gas += schedule_.open_challenge;
  gas_.Charge(schedule_.open_challenge);
}

void Coordinator::RecordPartition(ClaimId id, int64_t children,
                                  const std::vector<Digest>& child_hashes) {
  std::lock_guard<std::mutex> lock(mu_);
  ClaimRecord& claim = MutableClaim(id);
  TAO_CHECK(claim.state == ClaimState::kDisputed);
  TAO_CHECK(now_ <= claim.round_deadline) << "proposer partition past deadline";
  TAO_CHECK_EQ(static_cast<int64_t>(child_hashes.size()), children);
  claim.round_deadline = now_ + round_timeout_;
  claim.gas += schedule_.PartitionCost(children);
  gas_.Charge(schedule_.PartitionCost(children));
}

void Coordinator::RecordSelection(ClaimId id, int64_t selected_child) {
  std::lock_guard<std::mutex> lock(mu_);
  ClaimRecord& claim = MutableClaim(id);
  TAO_CHECK(claim.state == ClaimState::kDisputed);
  TAO_CHECK(now_ <= claim.round_deadline) << "challenger selection past deadline";
  TAO_CHECK_GE(selected_child, 0);
  claim.dispute_round += 1;
  claim.round_deadline = now_ + round_timeout_;
  claim.gas += schedule_.selection;
  gas_.Charge(schedule_.selection);
}

void Coordinator::RecordMerkleCheck(ClaimId id, int64_t proofs) {
  std::lock_guard<std::mutex> lock(mu_);
  ClaimRecord& claim = MutableClaim(id);
  claim.merkle_checks += proofs;
  claim.gas += schedule_.merkle_check * proofs;
  gas_.Charge(schedule_.merkle_check * proofs);
}

void Coordinator::RecordTimeout(ClaimId id, bool proposer_timed_out) {
  std::lock_guard<std::mutex> lock(mu_);
  ClaimRecord& claim = MutableClaim(id);
  TAO_CHECK(claim.state == ClaimState::kDisputed);
  TAO_CHECK(now_ > claim.round_deadline) << "no deadline has passed";
  RecordLeafAdjudicationLocked(id, proposer_timed_out, 0.5);
}

void Coordinator::RecordLeafAdjudication(ClaimId id, bool proposer_guilty,
                                         double challenger_share) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordLeafAdjudicationLocked(id, proposer_guilty, challenger_share);
}

void Coordinator::RecordLeafAdjudicationLocked(ClaimId id, bool proposer_guilty,
                                               double challenger_share) {
  ClaimRecord& claim = MutableClaim(id);
  TAO_CHECK(claim.state == ClaimState::kDisputed);
  claim.gas += schedule_.leaf_adjudication + schedule_.settlement;
  gas_.Charge(schedule_.leaf_adjudication);
  if (proposer_guilty) {
    claim.state = ClaimState::kProposerSlashed;
    // Proposer bond slashed: a share to the challenger, remainder burned; challenger
    // bond returned.
    const double reward = challenger_share * claim.proposer_bond;
    balances_.challenger += claim.challenger_bond + reward;
    balances_.treasury += claim.proposer_bond - reward;
  } else {
    claim.state = ClaimState::kChallengerSlashed;
    balances_.proposer += claim.proposer_bond + claim.challenger_bond;
  }
  gas_.Charge(schedule_.settlement);
}

int64_t Coordinator::claim_gas(ClaimId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = claims_.find(id);
  TAO_CHECK(it != claims_.end()) << "unknown claim " << id;
  return it->second.gas;
}

const ClaimRecord& Coordinator::claim(ClaimId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = claims_.find(id);
  TAO_CHECK(it != claims_.end()) << "unknown claim " << id;
  return it->second;
}

ClaimRecord& Coordinator::MutableClaim(ClaimId id) {
  const auto it = claims_.find(id);
  TAO_CHECK(it != claims_.end()) << "unknown claim " << id;
  return it->second;
}

}  // namespace tao
