#include "src/protocol/coordinator.h"

#include <utility>

#include "src/durability/coordinator_log.h"

namespace tao {

const char* ClaimStateName(ClaimState state) {
  switch (state) {
    case ClaimState::kCommitted:
      return "committed";
    case ClaimState::kFinalized:
      return "finalized";
    case ClaimState::kDisputed:
      return "disputed";
    case ClaimState::kProposerSlashed:
      return "proposer_slashed";
    case ClaimState::kChallengerSlashed:
      return "challenger_slashed";
  }
  return "unknown";
}

Coordinator::Coordinator(GasSchedule schedule, uint64_t round_timeout, size_t num_shards,
                         ModelId model_id, DurabilityOptions durability,
                         RecoveryStatus* recovery_status)
    : schedule_(schedule), round_timeout_(round_timeout), model_id_(model_id) {
  TAO_CHECK_GE(num_shards, 1u) << "coordinator needs at least one shard";
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  RecoveryStatus status;
  if (!durability.directory.empty()) {
    status = InitDurability(std::move(durability));
  }
  if (!status.ok()) {
    durability_.reset();
    TAO_CHECK(recovery_status != nullptr)
        << "coordinator recovery failed [" << RecoveryCodeName(status.code)
        << "]: " << status.message;
  }
  if (recovery_status != nullptr) {
    *recovery_status = status;
  }
}

Coordinator::~Coordinator() = default;

RecoveryStatus Coordinator::InitDurability(DurabilityOptions options) {
  auto durability = std::make_unique<CoordinatorDurability>(
      options, shards_.size(), static_cast<uint64_t>(model_id_));
  std::vector<ShardDiskState> disk(shards_.size());
  recovery_info_ = RecoveryInfo{};
  recovery_info_.shards.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    RecoveryStatus status = LoadShardDiskState(options, s, shards_.size(),
                                               static_cast<uint64_t>(model_id_), disk[s]);
    if (!status.ok()) {
      return status;
    }
    recovery_info_.recovered =
        recovery_info_.recovered || disk[s].changelog_exists || disk[s].has_snapshot;
  }
  // Rebuild state single-threaded, BEFORE the writer exists: snapshot image first,
  // then the logged tail through the very transition methods that produced it.
  replaying_ = true;
  int64_t replayed_total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const ShardDiskState& state = disk[s];
    if (state.has_snapshot) {
      RestoreShard(s, state.snapshot);
    }
    for (const CoordinatorAction& action : state.tail) {
      RecoveryStatus status = ApplyLoggedAction(s, action);
      if (!status.ok()) {
        replaying_ = false;
        return status;
      }
    }
    ShardRecoveryInfo& info = recovery_info_.shards[s];
    info.snapshot_records = state.snapshot_covered;
    info.replayed_records = state.tail.size();
    info.total_records = state.log_records;
    info.truncated_bytes = state.truncated_bytes;
    info.loaded_snapshot = state.has_snapshot;
    replayed_total += static_cast<int64_t>(state.tail.size());
  }
  replaying_ = false;
  durability->set_recovery_replayed(replayed_total);
  RecoveryStatus status = durability->Start(disk);
  if (!status.ok()) {
    return status;
  }
  durability_ = std::move(durability);
  return {};
}

void Coordinator::LogMutation(size_t index, Shard& shard,
                              const CoordinatorAction& action) {
  if (durability_ == nullptr || replaying_) {
    return;
  }
  if (durability_->LogAction(index, action)) {
    durability_->Snapshot(index, SnapshotShardLocked(shard));
  }
}

ShardSnapshotState Coordinator::SnapshotShardLocked(const Shard& shard) const {
  ShardSnapshotState state;
  state.now = shard.now;
  state.submitted = shard.submitted;
  state.balances = shard.balances;
  state.gas = shard.gas;
  state.claims.reserve(shard.claims.size());
  for (const auto& [id, record] : shard.claims) {
    state.claims.push_back(record);
  }
  return state;
}

void Coordinator::RestoreShard(size_t index, const ShardSnapshotState& state) {
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.now = state.now;
  shard.submitted = state.submitted;
  shard.balances = state.balances;
  shard.gas = state.gas;
  shard.claims.clear();
  for (const ClaimRecord& claim : state.claims) {
    shard.claims[claim.id] = claim;
  }
}

RecoveryStatus Coordinator::ApplyLoggedAction(size_t index,
                                              const CoordinatorAction& action) {
  // A CRC-valid record with protocol-impossible contents still aborts loudly via
  // the transition methods' own TAO_CHECKs — replay never invents a lenient path.
  switch (action.kind) {
    case CoordinatorAction::Kind::kSubmit: {
      const ClaimId id = SubmitCommitment(action.c0, action.challenge_window,
                                          action.proposer_bond, index);
      if (id != action.id) {
        return {RecoveryCode::kCorruptRecord,
                "replayed submission got id " + std::to_string(id) + ", log recorded " +
                    std::to_string(action.id)};
      }
      return {};
    }
    case CoordinatorAction::Kind::kTryFinalize:
      // Logged only when the call transitioned; the replayed clock must agree.
      if (TryFinalize(action.id) != ClaimState::kFinalized) {
        return {RecoveryCode::kCorruptRecord,
                "replayed finalize of claim " + std::to_string(action.id) +
                    " did not finalize"};
      }
      return {};
    case CoordinatorAction::Kind::kOpenChallenge:
      OpenChallenge(action.id, action.challenger_bond);
      return {};
    case CoordinatorAction::Kind::kPartition: {
      // Hashes are checked off-chain and are not coordinator state; replay feeds
      // placeholder digests of the logged arity.
      constexpr int64_t kMaxChildren = 1 << 20;
      if (action.children < 0 || action.children > kMaxChildren) {
        return {RecoveryCode::kCorruptRecord,
                "replayed partition arity " + std::to_string(action.children) +
                    " out of range"};
      }
      RecordPartition(action.id, action.children,
                      std::vector<Digest>(static_cast<size_t>(action.children)));
      return {};
    }
    case CoordinatorAction::Kind::kSelection:
      RecordSelection(action.id, action.selected_child);
      return {};
    case CoordinatorAction::Kind::kMerkleCheck:
      RecordMerkleCheck(action.id, action.proofs);
      return {};
    case CoordinatorAction::Kind::kTimeout:
      RecordTimeout(action.id, action.proposer_timed_out);
      return {};
    case CoordinatorAction::Kind::kLeafAdjudication:
      RecordLeafAdjudication(action.id, action.proposer_guilty,
                             action.challenger_share);
      return {};
    case CoordinatorAction::Kind::kChargeGas:
      ChargeClaimGas(action.id, action.gas);
      return {};
    case CoordinatorAction::Kind::kAdvanceClock: {
      Shard& shard = *shards_[index];
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.now += action.ticks;
      return {};
    }
  }
  return {RecoveryCode::kCorruptRecord, "unknown action kind"};
}

DurabilityStats Coordinator::durability_stats() const {
  return durability_ ? durability_->stats() : DurabilityStats{};
}

void Coordinator::FlushDurability() {
  if (durability_) {
    durability_->Flush();
  }
}

uint64_t Coordinator::shard_now(size_t shard) const {
  TAO_CHECK_LT(shard, shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->now;
}

void Coordinator::AdvanceTime(uint64_t ticks) {
  // One shard at a time (never two locks held), in shard order. Each shard's log
  // gets its own kAdvanceClock record: per-shard logs are self-contained.
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.now += ticks;
    CoordinatorAction action;
    action.kind = CoordinatorAction::Kind::kAdvanceClock;
    action.ticks = ticks;
    LogMutation(s, shard, action);
  }
}

void Coordinator::AdvanceTimeFor(ClaimId id, uint64_t ticks) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.now += ticks;
  CoordinatorAction action;
  action.kind = CoordinatorAction::Kind::kAdvanceClock;
  action.ticks = ticks;
  LogMutation(shard_of(id), shard, action);
}

ClaimId Coordinator::SubmitCommitment(const Digest& c0, uint64_t challenge_window,
                                      double proposer_bond, uint64_t shard_hint) {
  const size_t index = static_cast<size_t>(shard_hint % shards_.size());
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mu);
  TAO_CHECK_GT(proposer_bond, 0.0);
  ClaimRecord record;
  // Shard-local id assignment: the i-th claim homed here is 1 + index + i*S, so a
  // shard's id sequence is a function of ITS submission order alone (per-shard
  // determinism), and S=1 reproduces the historical dense 1, 2, 3, ...
  record.id = 1 + static_cast<ClaimId>(index) +
              static_cast<ClaimId>(shard.submitted) * shards_.size();
  ++shard.submitted;
  record.model = model_id_;
  record.c0 = c0;
  record.committed_at = shard.now;
  record.challenge_window = challenge_window;
  record.proposer_bond = proposer_bond;
  shard.balances.proposer -= proposer_bond;  // escrowed
  record.gas += schedule_.commit;
  shard.claims[record.id] = record;
  shard.gas += schedule_.commit;
  CoordinatorAction action;
  action.kind = CoordinatorAction::Kind::kSubmit;
  action.id = record.id;  // replay asserts the regenerated id matches
  action.c0 = c0;
  action.challenge_window = challenge_window;
  action.proposer_bond = proposer_bond;
  LogMutation(index, shard, action);
  return record.id;
}

ClaimState Coordinator::TryFinalize(ClaimId id) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  if (claim.state == ClaimState::kCommitted &&
      shard.now >= claim.committed_at + claim.challenge_window) {
    claim.state = ClaimState::kFinalized;
    shard.balances.proposer += claim.proposer_bond;  // bond released with payment
    // Logged only on the transition: a no-op probe is not a state mutation.
    CoordinatorAction action;
    action.kind = CoordinatorAction::Kind::kTryFinalize;
    action.id = id;
    LogMutation(shard_of(id), shard, action);
  }
  return claim.state;
}

void Coordinator::OpenChallenge(ClaimId id, double challenger_bond) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  TAO_CHECK(claim.state == ClaimState::kCommitted)
      << "cannot challenge claim in state " << ClaimStateName(claim.state);
  TAO_CHECK(shard.now < claim.committed_at + claim.challenge_window)
      << "challenge window closed";
  TAO_CHECK_GT(challenger_bond, 0.0);
  claim.state = ClaimState::kDisputed;
  claim.challenger_bond = challenger_bond;
  claim.dispute_round = 0;
  claim.round_deadline = shard.now + round_timeout_;
  shard.balances.challenger -= challenger_bond;  // escrowed
  claim.gas += schedule_.open_challenge;
  shard.gas += schedule_.open_challenge;
  CoordinatorAction action;
  action.kind = CoordinatorAction::Kind::kOpenChallenge;
  action.id = id;
  action.challenger_bond = challenger_bond;
  LogMutation(shard_of(id), shard, action);
}

void Coordinator::RecordPartition(ClaimId id, int64_t children,
                                  const std::vector<Digest>& child_hashes) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  TAO_CHECK(claim.state == ClaimState::kDisputed);
  TAO_CHECK(shard.now <= claim.round_deadline) << "proposer partition past deadline";
  TAO_CHECK_EQ(static_cast<int64_t>(child_hashes.size()), children);
  claim.round_deadline = shard.now + round_timeout_;
  claim.gas += schedule_.PartitionCost(children);
  shard.gas += schedule_.PartitionCost(children);
  // Child hashes are dispute-transcript material checked off-chain, not coordinator
  // state — only the arity (which drives gas) is logged.
  CoordinatorAction action;
  action.kind = CoordinatorAction::Kind::kPartition;
  action.id = id;
  action.children = children;
  LogMutation(shard_of(id), shard, action);
}

void Coordinator::RecordSelection(ClaimId id, int64_t selected_child) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  TAO_CHECK(claim.state == ClaimState::kDisputed);
  TAO_CHECK(shard.now <= claim.round_deadline) << "challenger selection past deadline";
  TAO_CHECK_GE(selected_child, 0);
  claim.dispute_round += 1;
  claim.round_deadline = shard.now + round_timeout_;
  claim.gas += schedule_.selection;
  shard.gas += schedule_.selection;
  CoordinatorAction action;
  action.kind = CoordinatorAction::Kind::kSelection;
  action.id = id;
  action.selected_child = selected_child;
  LogMutation(shard_of(id), shard, action);
}

void Coordinator::RecordMerkleCheck(ClaimId id, int64_t proofs) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  claim.merkle_checks += proofs;
  claim.gas += schedule_.merkle_check * proofs;
  shard.gas += schedule_.merkle_check * proofs;
  CoordinatorAction action;
  action.kind = CoordinatorAction::Kind::kMerkleCheck;
  action.id = id;
  action.proofs = proofs;
  LogMutation(shard_of(id), shard, action);
}

void Coordinator::RecordTimeout(ClaimId id, bool proposer_timed_out) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  TAO_CHECK(claim.state == ClaimState::kDisputed);
  TAO_CHECK(shard.now > claim.round_deadline) << "no deadline has passed";
  RecordLeafAdjudicationLocked(shard, id, proposer_timed_out, 0.5);
  // One record per public call: the settlement RecordTimeout performs internally is
  // deterministic from the timeout itself, so it is not logged twice.
  CoordinatorAction action;
  action.kind = CoordinatorAction::Kind::kTimeout;
  action.id = id;
  action.proposer_timed_out = proposer_timed_out;
  LogMutation(shard_of(id), shard, action);
}

void Coordinator::RecordLeafAdjudication(ClaimId id, bool proposer_guilty,
                                         double challenger_share) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  RecordLeafAdjudicationLocked(shard, id, proposer_guilty, challenger_share);
  CoordinatorAction action;
  action.kind = CoordinatorAction::Kind::kLeafAdjudication;
  action.id = id;
  action.proposer_guilty = proposer_guilty;
  action.challenger_share = challenger_share;
  LogMutation(shard_of(id), shard, action);
}

void Coordinator::RecordLeafAdjudicationLocked(Shard& shard, ClaimId id,
                                               bool proposer_guilty,
                                               double challenger_share) {
  ClaimRecord& claim = MutableClaim(shard, id);
  TAO_CHECK(claim.state == ClaimState::kDisputed);
  claim.gas += schedule_.leaf_adjudication + schedule_.settlement;
  shard.gas += schedule_.leaf_adjudication;
  if (proposer_guilty) {
    claim.state = ClaimState::kProposerSlashed;
    // Proposer bond slashed: a share to the challenger, remainder burned; challenger
    // bond returned.
    const double reward = challenger_share * claim.proposer_bond;
    shard.balances.challenger += claim.challenger_bond + reward;
    shard.balances.treasury += claim.proposer_bond - reward;
  } else {
    claim.state = ClaimState::kChallengerSlashed;
    shard.balances.proposer += claim.proposer_bond + claim.challenger_bond;
  }
  shard.gas += schedule_.settlement;
}

void Coordinator::ChargeClaimGas(ClaimId id, int64_t gas) {
  TAO_CHECK_GE(gas, 0);
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  ClaimRecord& claim = MutableClaim(shard, id);
  claim.gas += gas;
  shard.gas += gas;
  CoordinatorAction action;
  action.kind = CoordinatorAction::Kind::kChargeGas;
  action.id = id;
  action.gas = gas;
  LogMutation(shard_of(id), shard, action);
}

int64_t Coordinator::claim_gas(ClaimId id) const {
  const Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.claims.find(id);
  TAO_CHECK(it != shard.claims.end()) << "unknown claim " << id;
  return it->second.gas;
}

ClaimRecord Coordinator::claim(ClaimId id) const {
  const Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.claims.find(id);
  TAO_CHECK(it != shard.claims.end()) << "unknown claim " << id;
  return it->second;
}

Balances Coordinator::balances() const {
  Balances total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.proposer += shard->balances.proposer;
    total.challenger += shard->balances.challenger;
    total.treasury += shard->balances.treasury;
  }
  return total;
}

Balances Coordinator::shard_balances(size_t shard) const {
  TAO_CHECK_LT(shard, shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->balances;
}

GasTotals Coordinator::gas() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->gas;
  }
  return GasTotals(total);
}

int64_t Coordinator::shard_gas(size_t shard) const {
  TAO_CHECK_LT(shard, shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->gas;
}

std::vector<ClaimId> Coordinator::shard_claims(size_t shard) const {
  TAO_CHECK_LT(shard, shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  std::vector<ClaimId> ids;
  ids.reserve(shards_[shard]->claims.size());
  // std::map iterates in id order == this shard's submission order (ids ascend by S).
  for (const auto& [id, record] : shards_[shard]->claims) {
    ids.push_back(id);
  }
  return ids;
}

ClaimRecord& Coordinator::MutableClaim(Shard& shard, ClaimId id) const {
  const auto it = shard.claims.find(id);
  TAO_CHECK(it != shard.claims.end()) << "unknown claim " << id;
  return it->second;
}

}  // namespace tao
