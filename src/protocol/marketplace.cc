#include "src/protocol/marketplace.h"

#include "src/util/check.h"

namespace tao {

Marketplace::Marketplace(const Model& model, const ModelCommitment& commitment,
                         const ThresholdSet& thresholds, MarketplaceConfig config)
    : model_(model),
      commitment_(commitment),
      thresholds_(thresholds),
      config_(std::move(config)) {}

MarketplaceStats Marketplace::Run() {
  MarketplaceStats stats;
  Rng rng(config_.seed);
  const Graph& graph = *model_.graph;
  const auto& fleet = DeviceRegistry::Fleet();

  for (int64_t task = 0; task < config_.num_tasks; ++task) {
    ++stats.tasks;
    const std::vector<Tensor> input = model_.sample_input(rng);
    const DeviceProfile& proposer_device = fleet[rng.NextBounded(fleet.size())];

    // Proposer strategy draw.
    const bool cheats = rng.NextDouble() < config_.cheat_rate;
    std::vector<Executor::Perturbation> perturbations;
    if (cheats) {
      ++stats.cheats_attempted;
      const NodeId site =
          graph.op_nodes()[rng.NextBounded(static_cast<uint64_t>(graph.num_ops() - 1))];
      Rng delta_rng(rng.NextU64());
      perturbations.push_back(
          {site, Tensor::Randn(graph.node(site).shape, delta_rng, config_.cheat_magnitude)});
    }

    // Supervision draw: voluntary challenge XOR randomized audit XOR none.
    const double draw = rng.NextDouble();
    const bool challenged = draw < config_.economics.challenge_prob;
    const bool audited =
        !challenged &&
        draw < config_.economics.challenge_prob + config_.economics.audit_prob;

    if (!challenged && !audited) {
      // Nobody watches this claim: it finalizes either way.
      DisputeGame game(model_, commitment_, thresholds_, coordinator_, config_.dispute);
      // No challenger verification: emulate by running the happy path directly —
      // proposer commits and the window elapses.
      const Executor proposer_exec(graph, proposer_device);
      const ExecutionTrace trace = proposer_exec.RunPerturbed(input, perturbations);
      ResultMeta meta;
      meta.device = proposer_device.name;
      meta.challenge_window = config_.dispute.challenge_window;
      const Digest c0 = ComputeResultCommitment(commitment_, input,
                                                trace.value(graph.output()), meta);
      const ClaimId claim = coordinator_.SubmitCommitment(c0, meta.challenge_window,
                                                          config_.dispute.proposer_bond);
      coordinator_.AdvanceTime(meta.challenge_window);
      TAO_CHECK(coordinator_.TryFinalize(claim) == ClaimState::kFinalized);
      if (cheats) {
        ++stats.cheats_escaped;
      } else {
        ++stats.finalized_clean;
      }
      continue;
    }

    // Supervised claim: a verifier (voluntary challenger or sampled auditor)
    // re-executes on its own hardware and runs the dispute pipeline when flagged.
    if (challenged) {
      ++stats.voluntary_challenges;
    } else {
      ++stats.audits;
    }
    const DeviceProfile& verifier_device = fleet[rng.NextBounded(fleet.size())];
    DisputeGame game(model_, commitment_, thresholds_, coordinator_, config_.dispute);
    const DisputeResult result =
        game.Run(input, proposer_device, verifier_device, perturbations);
    stats.total_gas += result.gas_used;

    if (!result.challenge_raised) {
      if (cheats) {
        ++stats.cheats_escaped;  // deviation hid inside the tolerance (the eps1 case)
      } else {
        ++stats.finalized_clean;
      }
      continue;
    }
    if (!cheats) {
      ++stats.spurious_disputes;
      if (result.final_state == ClaimState::kProposerSlashed) {
        ++stats.honest_slashes;
      }
      continue;
    }
    if (result.proposer_guilty) {
      ++stats.cheats_caught;
    } else {
      ++stats.cheats_escaped;
    }
  }
  return stats;
}

}  // namespace tao
