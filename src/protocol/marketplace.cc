#include "src/protocol/marketplace.h"

#include <algorithm>

#include "src/protocol/batch_verifier.h"
#include "src/util/check.h"

namespace tao {
namespace {

// One task's resolved draws: the claim to execute plus the strategy/supervision
// outcomes the statistics are tallied from.
struct DrawnTask {
  BatchClaim claim;
  bool cheats = false;
  bool challenged = false;
  bool audited = false;

  bool supervised() const { return challenged || audited; }
};

}  // namespace

Marketplace::Marketplace(const Model& model, const ModelCommitment& commitment,
                         const ThresholdSet& thresholds, MarketplaceConfig config)
    : model_(model),
      commitment_(commitment),
      thresholds_(thresholds),
      config_(std::move(config)) {}

MarketplaceStats Marketplace::Run() {
  MarketplaceStats stats;
  Rng rng(config_.seed);
  const Graph& graph = *model_.graph;
  const auto& fleet = DeviceRegistry::Fleet();

  BatchVerifierOptions verifier_options;
  verifier_options.dispute = config_.dispute;
  verifier_options.reuse_buffers = config_.reuse_buffers;
  BatchVerifier verifier(model_, commitment_, thresholds_, coordinator_, verifier_options);

  // Two-phase pipeline, one verify_batch_size chunk at a time: resolve the chunk's
  // draws, then execute the drawn claims as one batch. Execution consumes nothing
  // from the stats Rng stream, so the draw sequence across chunks is EXACTLY the
  // historical per-task loop's — input, proposer device, strategy, perturbation
  // site/seed, supervision channel, verifier device, task by task — and every
  // statistic is bitwise identical to interleaving draws with execution. Chunked
  // drawing also bounds resident tensors to one batch rather than the whole run.
  const int64_t batch_size = std::max<int64_t>(1, config_.verify_batch_size);
  for (int64_t base = 0; base < config_.num_tasks; base += batch_size) {
    const int64_t chunk = std::min(config_.num_tasks - base, batch_size);

    // ---- Phase 1: resolve the chunk's draws -----------------------------------------
    std::vector<DrawnTask> cohort;
    cohort.reserve(static_cast<size_t>(chunk));
    for (int64_t task = 0; task < chunk; ++task) {
      DrawnTask drawn;
      drawn.claim.inputs = model_.sample_input(rng);
      drawn.claim.proposer_device = &fleet[rng.NextBounded(fleet.size())];

      // Proposer strategy draw.
      drawn.cheats = rng.NextDouble() < config_.cheat_rate;
      if (drawn.cheats) {
        const NodeId site =
            graph.op_nodes()[rng.NextBounded(static_cast<uint64_t>(graph.num_ops() - 1))];
        Rng delta_rng(rng.NextU64());
        drawn.claim.perturbations.push_back(
            {site,
             Tensor::Randn(graph.node(site).shape, delta_rng, config_.cheat_magnitude)});
      }

      // Supervision draw: voluntary challenge XOR randomized audit XOR none.
      const double draw = rng.NextDouble();
      drawn.challenged = draw < config_.economics.challenge_prob;
      drawn.audited =
          !drawn.challenged &&
          draw < config_.economics.challenge_prob + config_.economics.audit_prob;
      if (drawn.supervised()) {
        // A verifier (voluntary challenger or sampled auditor) re-executes on its own
        // hardware and runs the dispute pipeline when flagged.
        drawn.claim.verifier_device = &fleet[rng.NextBounded(fleet.size())];
      }
      cohort.push_back(std::move(drawn));
    }

    // ---- Phase 2: batched execution of the drawn chunk ------------------------------
    std::vector<BatchClaim> batch;
    batch.reserve(cohort.size());
    for (const DrawnTask& drawn : cohort) {
      batch.push_back(drawn.claim);  // tensors share storage
    }
    const std::vector<BatchClaimOutcome> outcomes = verifier.VerifyBatch(batch);

    for (size_t i = 0; i < cohort.size(); ++i) {
      const DrawnTask& drawn = cohort[i];
      const BatchClaimOutcome& outcome = outcomes[i];
      ++stats.tasks;
      if (drawn.cheats) {
        ++stats.cheats_attempted;
      }

      if (!drawn.supervised()) {
        // Nobody watched this claim: it finalized either way.
        if (drawn.cheats) {
          ++stats.cheats_escaped;
        } else {
          ++stats.finalized_clean;
        }
        continue;
      }

      if (drawn.challenged) {
        ++stats.voluntary_challenges;
      } else {
        ++stats.audits;
      }
      stats.total_gas += outcome.gas_used;

      if (!outcome.flagged) {
        if (drawn.cheats) {
          ++stats.cheats_escaped;  // deviation hid inside the tolerance (the eps1 case)
        } else {
          ++stats.finalized_clean;
        }
        continue;
      }
      if (!drawn.cheats) {
        ++stats.spurious_disputes;
        if (outcome.final_state == ClaimState::kProposerSlashed) {
          ++stats.honest_slashes;
        }
        continue;
      }
      if (outcome.proposer_guilty) {
        ++stats.cheats_caught;
      } else {
        ++stats.cheats_escaped;
      }
    }
  }
  return stats;
}

}  // namespace tao
