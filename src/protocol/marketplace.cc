#include "src/protocol/marketplace.h"

#include <memory>
#include <utility>

#include "src/service/verification_service.h"
#include "src/util/check.h"

namespace tao {
namespace {

// One task's strategy/supervision draws — what the statistics are tallied from once
// the service delivers the claim's verdict.
struct DrawnTask {
  bool cheats = false;
  bool challenged = false;
  bool audited = false;

  bool supervised() const { return challenged || audited; }
};

}  // namespace

Marketplace::Marketplace(const Model& model, const ModelCommitment& commitment,
                         const ThresholdSet& thresholds, MarketplaceConfig config)
    : config_(std::move(config)),
      gateway_(registry_, GatewayOptions{.monitoring = config_.monitoring,
                                         .pin_workers = config_.pin_workers}) {
  // Single-model registry: register + commit up front (the gateway serves in
  // Run()). The coordinator configuration matches the pre-registry member
  // (GasSchedule{}, round_timeout 10, config shards), so the ledger and claim-id
  // machinery are unchanged.
  model_id_ = registry_.Register(model);
  ModelCommitConfig commit_config;
  commit_config.coordinator_shards = config_.coordinator_shards;
  commit_config.durability = config_.durability;
  registry_.Commit(model_id_, commitment, thresholds, commit_config);
}

MarketplaceStats Marketplace::Run() {
  MarketplaceStats stats;
  Rng rng(config_.seed);
  const Model& model = registry_.model(model_id_);
  const Graph& graph = *model.graph;
  const auto& fleet = DeviceRegistry::Fleet();

  ServiceOptions service_options;
  service_options.num_workers = config_.service_workers;
  service_options.pin_workers = config_.pin_workers;
  service_options.queue_capacity = config_.queue_capacity;
  service_options.admission = AdmissionPolicy::kBlock;
  service_options.batching.initial_hint = config_.verify_batch_size;
  service_options.unordered_delivery = config_.unordered_delivery;
  service_options.verifier.dispute = config_.dispute;
  service_options.verifier.reuse_buffers = config_.reuse_buffers;
  // Serve() accepts kCommitted (first Run) and kRetired (repeated Run — the
  // historical contract: each Run gets a fresh service over the persistent
  // coordinator, so ids and the ledger continue where the last Run stopped).
  gateway_.Serve(model_id_, service_options);

  // Draw-and-submit loop. The draw sequence is EXACTLY the historical per-task
  // loop's — input, proposer device, strategy, perturbation site/seed, supervision
  // channel, verifier device, task by task — because execution consumes nothing
  // from this Rng stream. Submission order equals task order (one submitter, a
  // FIFO queue), and the service's resolve lanes settle claims against the
  // coordinator in submission order per shard (with the default single shard,
  // globally), so every statistic, the ledger, and claim ids are bitwise identical
  // to the sequential path no matter how the BatchFormer groups execution or how
  // many workers run. Blocking admission bounds resident tensors to the queue +
  // reorder window rather than the whole run.
  std::vector<DrawnTask> drawn_tasks;
  std::vector<std::shared_ptr<ClaimTicket>> tickets;
  drawn_tasks.reserve(static_cast<size_t>(config_.num_tasks));
  tickets.reserve(static_cast<size_t>(config_.num_tasks));
  for (int64_t task = 0; task < config_.num_tasks; ++task) {
    DrawnTask drawn;
    BatchClaim claim;
    claim.inputs = model.sample_input(rng);
    claim.proposer_device = &fleet[rng.NextBounded(fleet.size())];

    // Proposer strategy draw.
    drawn.cheats = rng.NextDouble() < config_.cheat_rate;
    if (drawn.cheats) {
      const NodeId site =
          graph.op_nodes()[rng.NextBounded(static_cast<uint64_t>(graph.num_ops() - 1))];
      Rng delta_rng(rng.NextU64());
      claim.perturbations.push_back(
          {site, Tensor::Randn(graph.node(site).shape, delta_rng, config_.cheat_magnitude)});
    }

    // Supervision draw: voluntary challenge XOR randomized audit XOR none.
    const double draw = rng.NextDouble();
    drawn.challenged = draw < config_.economics.challenge_prob;
    drawn.audited =
        !drawn.challenged &&
        draw < config_.economics.challenge_prob + config_.economics.audit_prob;
    if (drawn.supervised()) {
      // A verifier (voluntary challenger or sampled auditor) re-executes on its own
      // hardware and runs the dispute pipeline when flagged.
      claim.verifier_device = &fleet[rng.NextBounded(fleet.size())];
    }

    GatewaySubmitResult submitted = gateway_.Submit(model_id_, std::move(claim));
    TAO_CHECK(submitted.accepted())
        << "blocking admission cannot reject (got " << GatewayStatusName(submitted.status)
        << ")";
    drawn_tasks.push_back(drawn);
    tickets.push_back(std::move(submitted.ticket));
  }

  // Drain delivers every verdict, then Retire tears the service down — its worker
  // and lane threads join HERE, not at Marketplace destruction, matching the
  // pre-registry profile where the service was a Run()-local.
  gateway_.Drain(model_id_);
  gateway_.Retire(model_id_);

  for (size_t i = 0; i < drawn_tasks.size(); ++i) {
    const DrawnTask& drawn = drawn_tasks[i];
    const BatchClaimOutcome& outcome = tickets[i]->Wait();
    ++stats.tasks;
    if (drawn.cheats) {
      ++stats.cheats_attempted;
    }

    if (!drawn.supervised()) {
      // Nobody watched this claim: it finalized either way.
      if (drawn.cheats) {
        ++stats.cheats_escaped;
      } else {
        ++stats.finalized_clean;
      }
      continue;
    }

    if (drawn.challenged) {
      ++stats.voluntary_challenges;
    } else {
      ++stats.audits;
    }
    stats.total_gas += outcome.gas_used;

    if (!outcome.flagged) {
      if (drawn.cheats) {
        ++stats.cheats_escaped;  // deviation hid inside the tolerance (the eps1 case)
      } else {
        ++stats.finalized_clean;
      }
      continue;
    }
    if (!drawn.cheats) {
      ++stats.spurious_disputes;
      if (outcome.final_state == ClaimState::kProposerSlashed) {
        ++stats.honest_slashes;
      }
      continue;
    }
    if (outcome.proposer_guilty) {
      ++stats.cheats_caught;
    } else {
      ++stats.cheats_escaped;
    }
  }
  return stats;
}

}  // namespace tao
