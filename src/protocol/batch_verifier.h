// Batched multi-claim verification (the ROADMAP "batched multi-proposal
// verification" item; SYSFLOW-style amortization of shared state across
// concurrently scheduled work).
//
// A verifier supervising K independent claims against ONE committed model used to
// re-walk the model once per claim, leaving the runtime pool idle between claims.
// BatchVerifier instead lowers the whole cohort's phase-1 work into a single
// Scheduler DAG (Executor::RunBatch): K proposer executions plus one challenger
// re-execution per supervised claim, all sharing the model weights and one
// TensorArena, each proposer lane terminated by a commitment-check epilogue node
// that computes C0 while other lanes are still executing. Node tasks from different
// claims interleave in the pool, so the batch fills the machine even when any single
// graph has too little width to.
//
// Every lane — proposer lanes included, supervised or not — is output-only, so the
// batch's peak memory no longer scales with supervised-claims-per-batch. The output
// threshold check runs right after the batched phase 1; only for the claims it FLAGS
// is the proposer's full trace lazily re-executed (bitwise identical to the lane
// execution, per the runtime determinism contract), because only a dispute needs to
// post partition interface values from interior nodes.
//
// The claim lifecycle is split into two independently callable halves so the service
// layer (src/service/) can pipeline them:
//   * ExecutePhase1: the batched DAG + threshold checks + lazy re-execution. Touches
//     no coordinator state, so cohorts from different workers can execute
//     concurrently.
//   * ResolveClaim: one claim's coordinator interaction (submission, window,
//     dispute game). Callers choose the resolution order; resolving claims in
//     submission order replays the historical sequential path bitwise.
// VerifyBatch composes the two. By default resolution runs in claim order, one claim
// at a time — exactly the historical sequential path (DisputeGame::Run per
// supervised claim, submit/finalize per unsupervised claim), so verdicts, per-claim
// gas, digests, claim ids, stats, and the ledger are bitwise identical to it. With
// `concurrent_disputes`, flagged claims instead fan their dispute games out across
// the pool: verdicts, digests, and per-claim gas are unchanged (the runtime is
// bitwise deterministic and gas is metered per claim), while ledger *ordering* —
// not its conservation — may differ.

#ifndef TAO_SRC_PROTOCOL_BATCH_VERIFIER_H_
#define TAO_SRC_PROTOCOL_BATCH_VERIFIER_H_

#include <vector>

#include "src/protocol/dispute.h"

namespace tao {

// One claim of a batch: a request input, the proposer's (possibly perturbed)
// execution, and an optional supervising verifier. All claims of a batch share the
// model, commitment, and thresholds held by the BatchVerifier.
struct BatchClaim {
  std::vector<Tensor> inputs;
  // The malicious proposer's injection set (empty = honest execution).
  std::vector<Executor::Perturbation> perturbations;
  const DeviceProfile* proposer_device = nullptr;
  // Device of the supervising verifier (voluntary challenger or sampled auditor);
  // null means nobody watches this claim and it finalizes after the window.
  const DeviceProfile* verifier_device = nullptr;

  bool supervised() const { return verifier_device != nullptr; }
};

// Protocol outcome of one claim.
struct BatchClaimOutcome {
  ClaimId claim_id = 0;
  // Model the claim settled against (the coordinator's model id; 0 standalone).
  ModelId model = 0;
  Digest c0{};
  bool supervised = false;
  // The verifier's output threshold check flagged the claim (a dispute was run).
  bool flagged = false;
  bool proposer_guilty = false;
  ClaimState final_state = ClaimState::kCommitted;
  int64_t gas_used = 0;  // per-claim gas (Coordinator::claim_gas)
  // Full dispute statistics; populated for supervised claims (mirrors what
  // DisputeGame::Run would have returned for this claim).
  DisputeResult dispute;
};

// Everything phase 1 produced for one claim: the result commitment, the threshold
// verdict, and the execution results ResolveClaim later feeds to the dispute
// pipeline. Holding one of these retains the claim's inputs/outputs — and, for
// flagged claims only, the full proposer trace.
struct ClaimPhase1 {
  Digest c0{};
  bool supervised = false;
  // The output threshold check's verdict (meaningful only when supervised). The
  // check is deterministic, so it is evaluated once here and passed through.
  bool flagged = false;
  // The lazily re-executed FULL proposer trace, populated ONLY for flagged claims —
  // the dispute game posts partition interface values from interior nodes. Unflagged
  // claims resolve from c0/challenger_output alone, so their lane traces are dropped
  // rather than parked in the service's reorder buffer.
  ExecutionTrace proposer_trace;
  // The supervising verifier's re-executed output (unset when unsupervised).
  Tensor challenger_output;
};

struct BatchVerifierOptions {
  // Dispute policy for flagged claims. `dispute.num_threads` also sets the width of
  // the batched phase-1 DAG, and `dispute.challenge_window` / `proposer_bond` govern
  // unsupervised submissions.
  DisputeOptions dispute;
  // Recycle dead intermediates of output-only lanes through one shared TensorArena.
  bool reuse_buffers = false;
  // Fan flagged claims' dispute games out across the pool instead of resolving them
  // in claim order. Per-claim outcomes are identical; ledger ordering is not.
  bool concurrent_disputes = false;
};

class BatchVerifier {
 public:
  BatchVerifier(const Model& model, const ModelCommitment& commitment,
                const ThresholdSet& thresholds, Coordinator& coordinator,
                BatchVerifierOptions options = {});

  // Runs the full lifecycle of every claim. Outcomes are indexed like `claims`.
  // `arena_stats`, when non-null, receives the batched phase's shared-arena counters.
  std::vector<BatchClaimOutcome> VerifyBatch(const std::vector<BatchClaim>& claims,
                                             TensorArena::Stats* arena_stats = nullptr);

  // The cohort's batched phase 1 only: one scheduler DAG for every lane, per-claim
  // C0 epilogues, output threshold checks, and the lazy full re-execution of flagged
  // claims' proposer traces. Touches no coordinator state — safe to call from
  // concurrent service workers sharing this verifier.
  std::vector<ClaimPhase1> ExecutePhase1(const std::vector<BatchClaim>& claims,
                                         TensorArena::Stats* arena_stats = nullptr);

  // One claim's coordinator interaction, fed by its phase-1 results: the
  // commit-and-finalize path for unsupervised claims, DisputeGame::RunFromPhase1 for
  // supervised ones. `shard` homes the claim on the (sharded) coordinator — the
  // service's per-shard resolve lanes pass their lane index so each lane's claims
  // live in their own shard. Calls for distinct claims may come from any thread; the
  // bitwise-sequential-ledger guarantee holds per shard when each shard's claims
  // resolve one at a time in that shard's submission order (with one shard that is
  // exactly the historical global guarantee).
  BatchClaimOutcome ResolveClaim(const BatchClaim& claim, const ClaimPhase1& phase1,
                                 uint64_t shard = 0);

 private:
  BatchClaimOutcome ResolveClaimWithOptions(const BatchClaim& claim,
                                            const ClaimPhase1& phase1,
                                            const DisputeOptions& dispute_options);

  const Model& model_;
  const ModelCommitment& commitment_;
  const ThresholdSet& thresholds_;
  Coordinator& coordinator_;
  BatchVerifierOptions options_;
};

}  // namespace tao

#endif  // TAO_SRC_PROTOCOL_BATCH_VERIFIER_H_
