// Batched multi-claim verification (the ROADMAP "batched multi-proposal
// verification" item; SYSFLOW-style amortization of shared state across
// concurrently scheduled work).
//
// A verifier supervising K independent claims against ONE committed model used to
// re-walk the model once per claim, leaving the runtime pool idle between claims.
// BatchVerifier instead lowers the whole cohort's phase-1 work into a single
// Scheduler DAG (Executor::RunBatch): K proposer executions — output-only unless the
// claim is supervised and may need partition posting — plus one challenger
// re-execution per supervised claim, all sharing the model weights and one
// TensorArena, each proposer lane terminated by a commitment-check epilogue node
// that computes C0 while other lanes are still executing. Node tasks from different
// claims interleave in the pool, so the batch fills the machine even when any single
// graph has too little width to.
//
// After the batched phase 1, claims are resolved against the thread-safe
// Coordinator. By default resolution runs in claim order, one claim at a time —
// exactly the historical sequential path (DisputeGame::Run per supervised claim,
// submit/finalize per unsupervised claim), so verdicts, per-claim gas, digests,
// claim ids, stats, and the ledger are bitwise identical to it. With
// `concurrent_disputes`, flagged claims instead fan their dispute games out across
// the pool: verdicts, digests, and per-claim gas are unchanged (the runtime is
// bitwise deterministic and gas is metered per claim), while ledger *ordering* —
// not its conservation — may differ.

#ifndef TAO_SRC_PROTOCOL_BATCH_VERIFIER_H_
#define TAO_SRC_PROTOCOL_BATCH_VERIFIER_H_

#include <vector>

#include "src/protocol/dispute.h"

namespace tao {

// One claim of a batch: a request input, the proposer's (possibly perturbed)
// execution, and an optional supervising verifier. All claims of a batch share the
// model, commitment, and thresholds held by the BatchVerifier.
struct BatchClaim {
  std::vector<Tensor> inputs;
  // The malicious proposer's injection set (empty = honest execution).
  std::vector<Executor::Perturbation> perturbations;
  const DeviceProfile* proposer_device = nullptr;
  // Device of the supervising verifier (voluntary challenger or sampled auditor);
  // null means nobody watches this claim and it finalizes after the window.
  const DeviceProfile* verifier_device = nullptr;

  bool supervised() const { return verifier_device != nullptr; }
};

// Protocol outcome of one claim.
struct BatchClaimOutcome {
  ClaimId claim_id = 0;
  Digest c0{};
  bool supervised = false;
  // The verifier's output threshold check flagged the claim (a dispute was run).
  bool flagged = false;
  bool proposer_guilty = false;
  ClaimState final_state = ClaimState::kCommitted;
  int64_t gas_used = 0;  // per-claim gas (Coordinator::claim_gas)
  // Full dispute statistics; populated for supervised claims (mirrors what
  // DisputeGame::Run would have returned for this claim).
  DisputeResult dispute;
};

struct BatchVerifierOptions {
  // Dispute policy for flagged claims. `dispute.num_threads` also sets the width of
  // the batched phase-1 DAG, and `dispute.challenge_window` / `proposer_bond` govern
  // unsupervised submissions.
  DisputeOptions dispute;
  // Recycle dead intermediates of output-only lanes through one shared TensorArena.
  bool reuse_buffers = false;
  // Fan flagged claims' dispute games out across the pool instead of resolving them
  // in claim order. Per-claim outcomes are identical; ledger ordering is not.
  bool concurrent_disputes = false;
};

class BatchVerifier {
 public:
  BatchVerifier(const Model& model, const ModelCommitment& commitment,
                const ThresholdSet& thresholds, Coordinator& coordinator,
                BatchVerifierOptions options = {});

  // Runs the full lifecycle of every claim. Outcomes are indexed like `claims`.
  // `arena_stats`, when non-null, receives the batched phase's shared-arena counters.
  std::vector<BatchClaimOutcome> VerifyBatch(const std::vector<BatchClaim>& claims,
                                             TensorArena::Stats* arena_stats = nullptr);

 private:
  const Model& model_;
  const ModelCommitment& commitment_;
  const ThresholdSet& thresholds_;
  Coordinator& coordinator_;
  BatchVerifierOptions options_;
};

}  // namespace tao

#endif  // TAO_SRC_PROTOCOL_BATCH_VERIFIER_H_
