// Multi-step workloads and discrete decisions (the Sec. 7 extension).
//
// TAO layers time over the dispute game for autoregressive decoding: the proposer
// commits a temporal Merkle tree over per-step states (logits + sampled token); a
// dispute first bisects ACROSS TIME to the earliest offending step — giving *prefix
// finality*: earlier steps finalize even while later ones remain contested — and then
// runs the operator-level game WITHIN that step.
//
// Because small logit deviations can flip an argmax, converting numerical drift into
// discrete divergence, decoding uses a deterministic pre-committed TIE-BREAK rule:
// among candidates whose logits are within a committed margin of the maximum, pick
// either the lexicographically smallest token id or a verifiable hash-seeded choice —
// so honest executions on different hardware converge to the same token sequence.

#ifndef TAO_SRC_PROTOCOL_MULTISTEP_H_
#define TAO_SRC_PROTOCOL_MULTISTEP_H_

#include <vector>

#include "src/calib/threshold.h"
#include "src/crypto/merkle.h"
#include "src/graph/executor.h"
#include "src/models/model_zoo.h"

namespace tao {

enum class TieBreakRule {
  kArgmax,         // plain argmax — NOT robust across hardware near ties
  kLexicographic,  // smallest token id within the committed margin of the max
  kHashSeeded,     // verifiable choice seeded from committed public data
};

struct TieBreakConfig {
  TieBreakRule rule = TieBreakRule::kLexicographic;
  // Committed margin: candidates with logit >= max - margin are near-ties.
  double margin = 1e-4;
  uint64_t seed = 0x7e1e;  // for kHashSeeded: derived from committed data
};

// Deterministic token selection under the tie-break rule.
int64_t SelectToken(const Tensor& logits, const TieBreakConfig& config);

struct DecodeStep {
  Tensor logits;
  int64_t token = 0;
  Digest state_hash{};  // H(canon(logits) || token): the temporal Merkle leaf
};

struct DecodeResult {
  std::vector<DecodeStep> steps;
  Digest temporal_root{};  // root of the per-step state tree
};

// Greedy sliding-window decoding of `num_steps` tokens with the Qwen-style LLM (the
// model input is a fixed-length token window; each step appends the selected token and
// drops the oldest). Perturbations (step index, node, delta) model a proposer that
// cheats at specific steps.
struct StepPerturbation {
  int64_t step = -1;
  Executor::Perturbation perturbation;
};

DecodeResult Decode(const Model& model, const std::vector<float>& prompt, int64_t num_steps,
                    const DeviceProfile& device, const TieBreakConfig& tie_break,
                    const std::vector<StepPerturbation>& perturbations = {},
                    const ExecutorOptions& exec_options = {});

// Proposer and challenger decodes are independent streams (each is sequential in
// time, but the two parties never exchange state until the temporal dispute), so the
// runtime layer runs them concurrently on the shared pool when
// exec_options.num_threads > 1. Results are bitwise identical to two sequential
// Decode calls. `perturbations` apply to the proposer only (the cheating party).
struct DecodePair {
  DecodeResult proposer;
  DecodeResult challenger;
};

DecodePair DecodeBothParties(const Model& model, const std::vector<float>& prompt,
                             int64_t num_steps, const DeviceProfile& proposer_device,
                             const DeviceProfile& challenger_device,
                             const TieBreakConfig& tie_break,
                             const std::vector<StepPerturbation>& perturbations = {},
                             const ExecutorOptions& exec_options = {});

// Temporal dispute: bisects over steps to the earliest one whose committed state
// diverges from the challenger's re-derivation, with prefix finality.
struct TemporalDisputeResult {
  bool divergence_found = false;
  int64_t first_offending_step = -1;
  // Steps strictly before this index are final regardless of the dispute outcome.
  int64_t finalized_prefix = 0;
  int64_t comparisons = 0;  // temporal-bisection state comparisons
};

TemporalDisputeResult LocalizeTemporalDivergence(const DecodeResult& proposer,
                                                 const DecodeResult& challenger);

}  // namespace tao

#endif  // TAO_SRC_PROTOCOL_MULTISTEP_H_
