#include "src/protocol/commitment.h"

#include <algorithm>

#include "src/crypto/canonical.h"
#include "src/util/check.h"

namespace tao {
namespace {

// Weight leaves are ordered by lexicographically sorted parameter label (the paper
// sorts state_dict keys); graph leaves by node id (canonical topological order).
std::vector<std::pair<std::string, NodeId>> SortedParams(const Graph& graph) {
  std::vector<std::pair<std::string, NodeId>> params;
  for (const NodeId id : graph.param_nodes()) {
    params.emplace_back(graph.node(id).label, id);
  }
  std::sort(params.begin(), params.end());
  return params;
}

MerkleTree BuildWeightTree(const Graph& graph, std::map<NodeId, size_t>& index) {
  std::vector<Digest> leaves;
  for (const auto& [label, id] : SortedParams(graph)) {
    index[id] = leaves.size();
    leaves.push_back(HashTensor(graph.node(id).value));
  }
  return MerkleTree(std::move(leaves));
}

MerkleTree BuildGraphTree(const Graph& graph, std::map<NodeId, size_t>& index) {
  std::vector<Digest> leaves;
  for (const Node& node : graph.nodes()) {
    index[node.id] = leaves.size();
    leaves.push_back(HashSignature(graph.NodeSignature(node.id)));
  }
  return MerkleTree(std::move(leaves));
}

}  // namespace

ModelCommitment::ModelCommitment(const Graph& graph, const ThresholdSet& thresholds)
    : weight_tree_(BuildWeightTree(graph, weight_leaf_index_)),
      graph_tree_(BuildGraphTree(graph, graph_leaf_index_)),
      threshold_root_(thresholds.CommitRoot()) {}

size_t ModelCommitment::WeightLeafIndex(NodeId id) const {
  const auto it = weight_leaf_index_.find(id);
  TAO_CHECK(it != weight_leaf_index_.end()) << "node " << id << " is not a parameter";
  return it->second;
}

size_t ModelCommitment::GraphLeafIndex(NodeId id) const {
  const auto it = graph_leaf_index_.find(id);
  TAO_CHECK(it != graph_leaf_index_.end()) << "unknown node " << id;
  return it->second;
}

MerkleProof ModelCommitment::ProveWeight(NodeId id) const {
  return weight_tree_.ProveInclusion(WeightLeafIndex(id));
}

MerkleProof ModelCommitment::ProveSignature(NodeId id) const {
  return graph_tree_.ProveInclusion(GraphLeafIndex(id));
}

bool ModelCommitment::VerifyWeight(const Graph& graph, NodeId id,
                                   const MerkleProof& proof) const {
  return MerkleTree::VerifyInclusion(weight_tree_.root(), HashTensor(graph.node(id).value),
                                     proof);
}

bool ModelCommitment::VerifySignature(const Graph& graph, NodeId id,
                                      const MerkleProof& proof) const {
  return MerkleTree::VerifyInclusion(graph_tree_.root(),
                                     HashSignature(graph.NodeSignature(id)), proof);
}

std::string ResultMeta::Canonical() const {
  return "device=" + device + ";kernel=" + kernel_version + ";dtype=" + dtype +
         ";window=" + std::to_string(challenge_window);
}

Digest ComputeResultCommitment(const ModelCommitment& commitment,
                               const std::vector<Tensor>& inputs, const Tensor& output,
                               const ResultMeta& meta) {
  Sha256 ctx;
  const Digest rw = commitment.weight_root();
  const Digest rg = commitment.graph_root();
  ctx.Update(std::span<const uint8_t>(rw.data(), rw.size()));
  ctx.Update(std::span<const uint8_t>(rg.data(), rg.size()));
  const Digest hx = HashTensorList(inputs);
  ctx.Update(std::span<const uint8_t>(hx.data(), hx.size()));
  const Digest hy = HashTensor(output);
  ctx.Update(std::span<const uint8_t>(hy.data(), hy.size()));
  ctx.Update(meta.Canonical());
  return ctx.Finalize();
}

Digest ComputeInterfaceHash(const std::vector<Tensor>& tensors) {
  return HashTensorList(tensors);
}

}  // namespace tao
