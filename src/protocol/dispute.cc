#include "src/protocol/dispute.h"

#include <utility>

#include "src/observability/trace.h"
#include "src/runtime/parallel_for.h"
#include "src/runtime/thread_pool.h"
#include "src/util/check.h"
#include "src/util/stopwatch.h"

namespace tao {
namespace {

// What the proposer publishes for one partition child: indices, interface hashes and
// tensors (tensors travel off-chain; hashes are committed on-chain), plus Merkle
// inclusion proofs for every referenced weight leaf and operator signature.
struct ChildRecord {
  Slice slice;
  Frontier frontier;
  std::vector<Tensor> live_in_values;
  std::vector<Tensor> live_out_values;
  Digest h_in{};
  Digest h_out{};
  std::vector<MerkleProof> weight_proofs;
  std::vector<MerkleProof> signature_proofs;
  std::vector<NodeId> weight_proof_nodes;
  std::vector<NodeId> signature_proof_nodes;
};

}  // namespace

DisputeGame::DisputeGame(const Model& model, const ModelCommitment& commitment,
                         const ThresholdSet& thresholds, Coordinator& coordinator,
                         DisputeOptions options)
    : model_(model),
      commitment_(commitment),
      thresholds_(thresholds),
      coordinator_(coordinator),
      options_(std::move(options)) {}

DisputeResult DisputeGame::Run(const std::vector<Tensor>& inputs,
                               const DeviceProfile& proposer_device,
                               const DeviceProfile& challenger_device,
                               const std::vector<Executor::Perturbation>& perturbations) {
  const Graph& graph = *model_.graph;

  ExecutorOptions exec_options;
  exec_options.num_threads = options_.num_threads;
  ThreadPool* pool = options_.num_threads > 1 ? &ThreadPool::Shared() : nullptr;

  // ---- Phase 1: proposer executes and commits; challenger re-executes ---------------
  // The two executions are independent (different devices, same inputs), so with a
  // parallel runtime they run concurrently; traces are bitwise identical to the
  // sequential schedule, so the commitment and every downstream verdict are unchanged.
  const Executor proposer_exec(graph, proposer_device);
  const Executor challenger_exec(graph, challenger_device);
  ExecutionTrace proposer_trace;
  ExecutionTrace challenger_trace;
  ParallelInvoke(
      pool,
      [&] { proposer_trace = proposer_exec.RunPerturbed(inputs, perturbations, exec_options); },
      [&] { challenger_trace = challenger_exec.Run(inputs, exec_options); });
  ResultMeta meta;
  meta.device = proposer_device.name;
  meta.challenge_window = options_.challenge_window;
  const Digest c0 = ComputeResultCommitment(commitment_, inputs,
                                            proposer_trace.value(graph.output()), meta);
  return RunFromPhase1(inputs, challenger_device, proposer_trace,
                       challenger_trace.value(graph.output()), c0);
}

DisputeResult DisputeGame::RunFromPhase1(const std::vector<Tensor>& inputs,
                                         const DeviceProfile& challenger_device,
                                         const ExecutionTrace& proposer_trace,
                                         const Tensor& challenger_output,
                                         const Digest& c0,
                                         std::optional<bool> precomputed_flagged) {
  const Graph& graph = *model_.graph;
  DisputeResult result;
  ThreadPool* pool = options_.num_threads > 1 ? &ThreadPool::Shared() : nullptr;

  const ClaimId claim =
      coordinator_.SubmitCommitment(c0, options_.challenge_window, options_.proposer_bond,
                                    options_.coordinator_shard);
  result.claim_id = claim;

  const NodeId output = graph.output();
  const bool flagged =
      precomputed_flagged.has_value()
          ? *precomputed_flagged
          : thresholds_.Exceeds(output, proposer_trace.value(output), challenger_output);
  if (!flagged) {
    // Happy path: result finalizes after the window. Per-claim advance: only this
    // claim's shard clock moves, so concurrent flows on other shards are untouched.
    coordinator_.AdvanceTimeFor(claim, options_.challenge_window);
    result.final_state = coordinator_.TryFinalize(claim);
    result.challenge_raised = false;
    result.gas_used = coordinator_.claim_gas(claim);
    return result;
  }

  // ---- Phase 2: dispute localization -------------------------------------------------
  result.challenge_raised = true;
  coordinator_.OpenChallenge(claim, options_.challenger_bond);

  // Values both parties agree on; seeded with the request inputs, extended each round
  // with the live-outs of accepted (earlier) children and the live-ins of the selected
  // child.
  std::map<NodeId, Tensor> agreed;
  for (size_t i = 0; i < inputs.size(); ++i) {
    agreed.emplace(graph.input_nodes()[i], inputs[i]);
  }

  Slice slice{0, graph.num_ops()};
  bool no_offender_found = false;
  // Tracing: one span per dispute round (detail = round index), tagged with the
  // claim context the resolve lane published (absent for standalone drivers).
  const auto record_round_span = [&](int64_t round_index, int64_t begin_ns) {
    if (!Tracer::enabled()) {
      return;
    }
    SpanRecord span;
    if (const TraceContext* context = ScopedTraceContext::Current()) {
      span.model = context->model;
      span.sequence = context->sequence;
      span.shard = context->shard;
    }
    span.claim_id = claim;
    span.kind = SpanKind::kDisputeRound;
    span.detail = round_index;
    span.begin_ns = begin_ns;
    span.end_ns = Tracer::NowNs();
    Tracer::Record(span);
  };
  // DCR optimization (what makes the Table 3 cost ratio land in ~[0.4, 1.25] rather
  // than ~[1, 2]): when the challenger re-executes a slice from an agreed boundary,
  // it keeps those values. At the next round, the FIRST child of the selected slice
  // has an unchanged boundary, so its comparison is free; only children past the
  // first accepted one (whose boundaries switch to the proposer's posted live-outs)
  // need fresh re-execution.
  std::map<NodeId, Tensor> challenger_cache;
  bool first_child_cached = false;
  // Online ceiling learning (adaptive_slice_learning): per-game EWMA of observed
  // speculative waste; the effective ceiling tracks it from the first speculated
  // round on (until then it equals the static limit).
  double waste_ewma = 0.0;
  bool waste_seeded = false;
  int64_t effective_slice_limit = options_.speculative_slice_limit;
  while (slice.size() > 1) {
    RoundStats round;
    round.round = result.rounds;
    round.slice_size = slice.size();
    const int64_t round_begin_ns = Tracer::enabled() ? Tracer::NowNs() : 0;

    // -- Proposer: canonical partition + commitments + proofs ------------------------
    Stopwatch partition_watch;
    const std::vector<Slice> children = PartitionSlice(slice, options_.partition_n);
    std::vector<ChildRecord> records;
    records.reserve(children.size());
    std::vector<Digest> child_hashes;
    for (const Slice& child : children) {
      ChildRecord record;
      record.slice = child;
      record.frontier = ComputeFrontier(graph, child);
      for (const NodeId in : record.frontier.live_in) {
        record.live_in_values.push_back(proposer_trace.value(in));
      }
      for (const NodeId out : record.frontier.live_out) {
        record.live_out_values.push_back(proposer_trace.value(out));
      }
      record.h_in = ComputeInterfaceHash(record.live_in_values);
      record.h_out = ComputeInterfaceHash(record.live_out_values);
      for (const NodeId param : record.frontier.params) {
        record.weight_proofs.push_back(commitment_.ProveWeight(param));
        record.weight_proof_nodes.push_back(param);
      }
      const std::vector<NodeId>& ops = graph.op_nodes();
      for (int64_t i = child.begin; i < child.end; ++i) {
        record.signature_proofs.push_back(
            commitment_.ProveSignature(ops[static_cast<size_t>(i)]));
        record.signature_proof_nodes.push_back(ops[static_cast<size_t>(i)]);
      }
      child_hashes.push_back(HashPair(record.h_in, record.h_out));
      records.push_back(std::move(record));
    }
    round.proposer_partition_ms = partition_watch.ElapsedMillis();
    round.children = static_cast<int64_t>(records.size());
    coordinator_.RecordPartition(claim, round.children, child_hashes);

    // -- Challenger: verify proofs, re-execute children in order, select offender ----
    // Merkle inclusion checks are independent read-only hash verifications: fan them
    // out per child. The metered count is the (deterministic) proof total.
    Stopwatch selection_watch;
    const ParallelFor verify_parallel(pool, options_.num_threads);
    verify_parallel(static_cast<int64_t>(records.size()), [&](int64_t begin, int64_t end) {
      for (int64_t j = begin; j < end; ++j) {
        const ChildRecord& record = records[static_cast<size_t>(j)];
        for (size_t i = 0; i < record.weight_proofs.size(); ++i) {
          TAO_CHECK(commitment_.VerifyWeight(graph, record.weight_proof_nodes[i],
                                             record.weight_proofs[i]))
              << "weight proof failed";
        }
        for (size_t i = 0; i < record.signature_proofs.size(); ++i) {
          TAO_CHECK(commitment_.VerifySignature(graph, record.signature_proof_nodes[i],
                                                record.signature_proofs[i]))
              << "signature proof failed";
        }
      }
    });
    int64_t proofs_checked = 0;
    for (const ChildRecord& record : records) {
      proofs_checked += static_cast<int64_t>(record.weight_proofs.size()) +
                        static_cast<int64_t>(record.signature_proofs.size());
    }
    round.merkle_proofs = proofs_checked;
    result.total_merkle_checks += proofs_checked;
    coordinator_.RecordMerkleCheck(claim, proofs_checked);

    // Boundary for a child: agreed values extended by earlier children's accepted
    // live-outs. Every extension is a proposer-posted value, so the boundary is
    // derivable before any child re-executes — which is what lets the speculative
    // mode fan all fresh children out at once with unchanged verdicts.
    const auto child_boundary = [&](const ChildRecord& record) {
      std::map<NodeId, Tensor> boundary;
      for (size_t i = 0; i < record.frontier.live_in.size(); ++i) {
        const NodeId in = record.frontier.live_in[i];
        const auto it = agreed.find(in);
        if (it != agreed.end()) {
          boundary.emplace(in, it->second);
        } else {
          // Live-in produced inside this dispute's already-accepted region but not
          // yet copied into `agreed`: take the proposer's posted value (implicit
          // agreement, Sec. 2.2).
          boundary.emplace(in, record.live_in_values[i]);
        }
      }
      return boundary;
    };
    const auto cache_covers = [&](const Slice& s) {
      const std::vector<NodeId>& ops = graph.op_nodes();
      for (int64_t i = s.begin; i < s.end; ++i) {
        if (challenger_cache.count(ops[static_cast<size_t>(i)]) == 0) {
          return false;
        }
      }
      return true;
    };

    // -- Speculative mode: re-execute every fresh child of the round concurrently ----
    // Policy: always-on (`speculative_reexecution`), or adaptive — only when the
    // partition is wide AND this round's slice is small enough that wasted
    // speculative children are cheap (see the DisputeOptions comment; the fig. 8
    // bench reports the DCR/latency tradeoff of the three policies).
    const int64_t slice_limit_this_round = options_.adaptive_slice_learning
                                               ? effective_slice_limit
                                               : options_.speculative_slice_limit;
    const bool speculate_this_round =
        options_.speculative_reexecution ||
        (options_.adaptive_speculation && options_.partition_n > 2 &&
         slice.size() <= slice_limit_this_round);
    std::vector<std::map<NodeId, Tensor>> prefetched(records.size());
    std::vector<char> has_prefetch(records.size(), 0);
    if (speculate_this_round && pool != nullptr && records.size() > 1) {
      std::vector<std::map<NodeId, Tensor>> boundaries(records.size());
      for (size_t j = 0; j < records.size(); ++j) {
        if (j == 0 && first_child_cached && cache_covers(records[0].slice)) {
          continue;  // served from the challenger's cache below
        }
        has_prefetch[j] = 1;
        boundaries[j] = child_boundary(records[j]);
      }
      const ParallelFor children_parallel(pool, options_.num_threads);
      children_parallel(static_cast<int64_t>(records.size()),
                        [&](int64_t begin, int64_t end) {
                          for (int64_t j = begin; j < end; ++j) {
                            if (has_prefetch[static_cast<size_t>(j)]) {
                              prefetched[static_cast<size_t>(j)] = ExecuteSlice(
                                  graph, challenger_device,
                                  records[static_cast<size_t>(j)].slice,
                                  boundaries[static_cast<size_t>(j)],
                                  options_.num_threads);
                            }
                          }
                        });
      for (size_t j = 0; j < records.size(); ++j) {
        if (has_prefetch[j]) {
          // Honest DCR accounting: speculative work past the offender still counts.
          round.children_reexecuted += 1;
          round.reexec_flops += SliceFlops(graph, records[j].slice);
        }
      }
    }

    int64_t selected = -1;
    bool selected_child_cached = false;
    for (size_t j = 0; j < records.size(); ++j) {
      const ChildRecord& record = records[j];
      // The first child's boundary is unchanged from the parent re-execution, so its
      // values are already in the cache; later children must be re-executed from the
      // proposer's (freshly agreed) boundary values.
      const bool reuse = (j == 0) && first_child_cached;
      std::map<NodeId, Tensor> reexec;
      if (reuse && cache_covers(record.slice)) {
        const std::vector<NodeId>& ops = graph.op_nodes();
        for (int64_t i = record.slice.begin; i < record.slice.end; ++i) {
          const NodeId id = ops[static_cast<size_t>(i)];
          reexec.emplace(id, challenger_cache.at(id));
        }
      } else if (has_prefetch[j]) {
        reexec = std::move(prefetched[j]);
      }
      if (reexec.empty()) {
        reexec = ExecuteSlice(graph, challenger_device, record.slice,
                              child_boundary(record), options_.num_threads);
        round.children_reexecuted += 1;
        round.reexec_flops += SliceFlops(graph, record.slice);
      }

      bool offending = false;
      for (size_t o = 0; o < record.frontier.live_out.size(); ++o) {
        const NodeId out = record.frontier.live_out[o];
        if (thresholds_.Exceeds(out, record.live_out_values[o], reexec.at(out))) {
          offending = true;
          break;
        }
      }
      if (offending) {
        selected = static_cast<int64_t>(j);
        selected_child_cached = true;
        challenger_cache = std::move(reexec);
        // Inputs to the selected child become agreed (implicitly, by selecting it).
        for (size_t i = 0; i < record.frontier.live_in.size(); ++i) {
          agreed.emplace(record.frontier.live_in[i], record.live_in_values[i]);
        }
        break;
      }
      // Child accepted: its live-outs (the proposer's values) become agreed.
      for (size_t o = 0; o < record.frontier.live_out.size(); ++o) {
        agreed.emplace(record.frontier.live_out[o], record.live_out_values[o]);
      }
    }
    first_child_cached = selected_child_cached;
    round.challenger_selection_ms = selection_watch.ElapsedMillis();
    result.challenger_flops += round.reexec_flops;

    // Waste observation for the learned ceiling: of the children this round
    // actually prefetched, how many sat past the offender (a lazy challenger
    // would never have touched them)? With no offender every child was needed
    // regardless of policy, so the round's waste is 0.
    if (options_.adaptive_slice_learning && speculate_this_round) {
      int64_t prefetched_children = 0;
      int64_t wasted_children = 0;
      for (size_t j = 0; j < has_prefetch.size(); ++j) {
        if (!has_prefetch[j]) {
          continue;
        }
        ++prefetched_children;
        if (selected >= 0 && static_cast<int64_t>(j) > selected) {
          ++wasted_children;
        }
      }
      if (prefetched_children > 0) {
        const double waste =
            static_cast<double>(wasted_children) / static_cast<double>(prefetched_children);
        const double rate = options_.slice_learning_rate;
        waste_ewma = waste_seeded ? (1.0 - rate) * waste_ewma + rate * waste : waste;
        waste_seeded = true;
        const int64_t base = options_.speculative_slice_limit;
        const double scaled = static_cast<double>(base) * 2.0 * (1.0 - waste_ewma);
        int64_t next = static_cast<int64_t>(scaled);
        if (next < 1) next = 1;
        if (next > 4 * base) next = 4 * base;
        effective_slice_limit = next;
      }
    }

    if (selected < 0) {
      // No child exceeded its thresholds: the challenge does not hold up.
      no_offender_found = true;
      record_round_span(round.round, round_begin_ns);
      result.round_stats.push_back(round);
      break;
    }
    round.selected_child = selected;
    coordinator_.RecordSelection(claim, selected);
    if (options_.advance_clock_per_round) {
      coordinator_.AdvanceTimeFor(claim, 1);
    }
    slice = children[static_cast<size_t>(selected)];
    result.rounds += 1;
    record_round_span(round.round, round_begin_ns);
    result.round_stats.push_back(round);
  }
  if (options_.adaptive_slice_learning && waste_seeded) {
    result.speculative_waste_ewma = waste_ewma;
    result.learned_slice_limit = effective_slice_limit;
  }

  if (no_offender_found) {
    coordinator_.RecordLeafAdjudication(claim, /*proposer_guilty=*/false,
                                        options_.challenger_share);
    result.proposer_guilty = false;
    result.final_state = coordinator_.claim(claim).state;
    result.gas_used = coordinator_.claim_gas(claim);
    result.cost_ratio = static_cast<double>(result.challenger_flops) /
                        static_cast<double>(graph.TotalFlops());
    return result;
  }

  // ---- Phase 3: single-operator adjudication -----------------------------------------
  const NodeId leaf = graph.op_nodes()[static_cast<size_t>(slice.begin)];
  result.leaf_op = leaf;
  const Node& leaf_node = graph.node(leaf);
  std::vector<Tensor> leaf_inputs;
  leaf_inputs.reserve(leaf_node.inputs.size());
  for (const NodeId in : leaf_node.inputs) {
    const Node& producer = graph.node(in);
    if (producer.kind == NodeKind::kParam) {
      leaf_inputs.push_back(producer.value);
      continue;
    }
    const auto it = agreed.find(in);
    TAO_CHECK(it != agreed.end()) << "leaf input " << producer.label << " not agreed";
    leaf_inputs.push_back(it->second);
  }
  result.leaf =
      AdjudicateLeaf(graph, leaf, leaf_inputs, proposer_trace.value(leaf), thresholds_,
                     options_.adjudication);
  result.challenger_flops += graph.NodeFlops(leaf);
  result.proposer_guilty = result.leaf.proposer_guilty;
  coordinator_.RecordLeafAdjudication(claim, result.proposer_guilty,
                                      options_.challenger_share);
  result.final_state = coordinator_.claim(claim).state;
  result.gas_used = coordinator_.claim_gas(claim);
  result.cost_ratio = static_cast<double>(result.challenger_flops) /
                      static_cast<double>(graph.TotalFlops());
  return result;
}

}  // namespace tao
