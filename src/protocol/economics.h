// Economic soundness and incentives (Sec. 5.5).
//
// Models the fee-and-deposit mechanism: proposers and challengers stake deposits D_p,
// D_ch; the losing side of a dispute is slashed S_slash; committee members are paid per
// audit. Two mutually exclusive detection channels supervise each claim — voluntary
// challenges (probability phi_ch) and randomized audits (probability phi) — giving
// detection probability d = (phi + phi_ch)(1 - eps1) (Eq. 16). The feasibility bounds
// L1/L2/L3 (Eq. 20, 23, and the committee-sustainability bound) define the non-empty
// S_slash region (L, D_p].

#ifndef TAO_SRC_PROTOCOL_ECONOMICS_H_
#define TAO_SRC_PROTOCOL_ECONOMICS_H_

namespace tao {

struct EconomicParams {
  // Proposer costs: honest execution, cheap cheating (e.g. smaller model), targeted
  // cheating (adversarial perturbation search).
  double cost_honest = 1.0;        // C_p
  double cost_cheap_cheat = 0.2;   // C'_p
  double cost_targeted = 50.0;     // C''_p (empirically >> R_p, Sec. 4)
  double task_reward = 1.5;        // R_p

  // Detection channels and error rates.
  double audit_prob = 0.05;        // phi
  double challenge_prob = 0.10;    // phi_ch
  double false_negative = 0.01;    // eps1 (fraud missed within tolerance)
  double false_positive = 0.0;     // eps2 (honest run wrongly slashed; 0 per Table 2)

  // Challenger economics.
  double challenger_cost = 1.2;    // C_ch (re-execution + leaf verification)
  double challenger_share = 0.5;   // alpha_ch of S_slash
  double challenger_deposit = 2.0; // D_ch

  // Committee economics.
  double committee_cost = 0.05;    // C_a per member
  int committee_size = 5;          // n
  double committee_share = 0.3;    // alpha_cm of S_slash (alpha_cm + alpha_ch <= 1)
  double committee_fee = 0.10;     // F_i paid when the claim is ruled clean

  // Stakes.
  double proposer_deposit = 10.0;  // D_p
  double slash = 6.0;              // S_slash (must lie in (L, D_p])
};

// Eq. 16: d(phi, phi_ch, eps1) = (phi + phi_ch)(1 - eps1).
double DetectionProbability(const EconomicParams& params);

// Proposer expected payoffs (Eq. 17-19).
double ProposerUtilityHonest(const EconomicParams& params);
double ProposerUtilityCheapCheat(const EconomicParams& params);
double ProposerUtilityTargetedCheat(const EconomicParams& params);

// Challenger expected payoffs (Eq. 21-22).
double ChallengerUtilityVsGuilty(const EconomicParams& params);
double ChallengerUtilityVsClean(const EconomicParams& params);

// Committee member ex-post payoffs (Eq. 24-25).
double CommitteeUtilityRuledGuilty(const EconomicParams& params);
double CommitteeUtilityRuledClean(const EconomicParams& params);

// The feasible S_slash region (Sec. 5.5 "Nonempty feasible region").
struct FeasibleRegion {
  double l1 = 0.0;     // deter cheap cheating (Eq. 20)
  double l2 = 0.0;     // honest challenges profitable (Eq. 23)
  double l3 = 0.0;     // committee sustainability (n*C_a / alpha_cm)
  double lower = 0.0;  // L = max(L1, L2, L3)
  double upper = 0.0;  // D_p
  bool non_empty = false;
  bool detection_exceeds_fp = false;  // d > eps2 precondition
};

FeasibleRegion ComputeFeasibleRegion(const EconomicParams& params);

// True when the configured S_slash satisfies every incentive constraint: honesty
// dominates cheap cheating, spam challenges are unprofitable, honest challenges and
// committee participation are profitable, and S_slash is within (L, D_p].
bool IncentiveCompatible(const EconomicParams& params);

}  // namespace tao

#endif  // TAO_SRC_PROTOCOL_ECONOMICS_H_
