// Vectorized kernel backend with runtime dispatch.
//
// The paper's constraint is that commitments hash exact FP32 values, so a fast kernel
// is only admissible if it is *bitwise-reproducible* across runs and across hosts
// (a scalar machine re-executing a claim must reproduce the proposer's vector output
// bit for bit). The backend achieves this by construction: every vector reduction
// implements one FIXED reduction tree — eight strided lane accumulators followed by a
// fixed sequential lane combine — which is exactly the arithmetic of
// `AccumulationOrder::kStrided` with `block = 8` (aliased as `kStridedVector` in the
// profile table). One AVX2 ymm register holds the eight lanes, so the vector loop and
// the scalar loop perform the *same additions in the same order*; they can only differ
// in speed. Profiles whose order a vector unit cannot reproduce exactly (kSequential,
// kPairwiseTree, kBlocked, kStrided with block != 8) always take the scalar path.
//
// Dispatch is decided once at startup from CPUID (plus the TAO_DISABLE_SIMD
// environment escape hatch) and reported through LogSimdBackendOnce() and the
// service-metrics counter `backend/simd_avx2`, so deployed hosts record which backend
// served their commitments. The elementwise helpers at the bottom are exact (one IEEE
// rounding per element, no ordering freedom), so they are safe for EVERY profile and
// backend, not just vector-eligible ones.

#ifndef TAO_SRC_DEVICE_SIMD_H_
#define TAO_SRC_DEVICE_SIMD_H_

#include <cstdint>
#include <optional>

namespace tao {

enum class SimdBackend {
  kScalar,  // portable fixed-tree loops; the always-correct fallback
  kAvx2,    // AVX2 (8 x FP32 lanes); bitwise identical to kScalar by construction
};

// True when this build + this CPU can execute the backend at all.
bool SimdBackendSupported(SimdBackend backend);

// The backend every vector-eligible primitive routes through. Resolution order:
// test/bench override (ForceSimdBackend) > TAO_DISABLE_SIMD env > CPUID detection.
// The detected value is cached after the first call.
SimdBackend ActiveSimdBackend();

const char* SimdBackendName(SimdBackend backend);

// Overrides the dispatch decision (tests and the scalar-vs-SIMD bench columns).
// Forcing an unsupported backend aborts; pass std::nullopt to restore detection.
void ForceSimdBackend(std::optional<SimdBackend> backend);

// RAII override for tests: forces `backend` for the scope, restores the previous
// override on destruction.
class ScopedSimdBackend {
 public:
  explicit ScopedSimdBackend(SimdBackend backend);
  ~ScopedSimdBackend();
  ScopedSimdBackend(const ScopedSimdBackend&) = delete;
  ScopedSimdBackend& operator=(const ScopedSimdBackend&) = delete;

 private:
  std::optional<SimdBackend> previous_;
};

// Writes one "kernel backend: <name>" line to stderr the first time it is called
// (the service layer calls it at startup so deployed hosts log the live backend).
void LogSimdBackendOnce();

namespace simd {

// --- Fixed-tree reductions (vector-eligible profiles only) --------------------------
//
// Both functions implement kStrided(block=8) exactly: n <= 8 falls back to the strict
// sequential sum (matching the scalar profile's small-n rule), larger n accumulate
// into eight lanes (lane j folds elements j, j+8, j+16, ... in index order) and the
// lanes combine left to right. Results are bitwise identical between the scalar and
// AVX2 implementations for every input, including remainder tails (n % 8 != 0),
// unaligned bases, and negative/denormal data.

// Sum of x[0..n) under the fixed 8-lane tree.
float SumStrided8(const float* x, int64_t n);

// Inner product sum_i a[i*stride_a] * b[i*stride_b] under the fixed 8-lane tree.
// Each product is rounded once before entering the tree (this also matches the
// staged-FMA profiles: fl(a*b + 0) == fl(a*b) as a summand — the sign of an exact
// zero product cannot propagate through lane accumulators that start at +0).
float DotStrided8(const float* a, int64_t stride_a, const float* b, int64_t stride_b,
                  int64_t n);

// --- Exact elementwise helpers (safe for every profile and backend) -----------------
//
// One IEEE-754 rounding per listed operation, evaluated in the documented order, so
// scalar and vector execution agree bitwise element by element. NaN handling matches
// the scalar idioms they replace (see Relu / RowMax).

void AddVec(const float* a, const float* b, float* out, int64_t n);   // a[i] + b[i]
void SubVec(const float* a, const float* b, float* out, int64_t n);   // a[i] - b[i]
void MulVec(const float* a, const float* b, float* out, int64_t n);   // a[i] * b[i]
void DivVec(const float* a, const float* b, float* out, int64_t n);   // a[i] / b[i]

// out[i] = x[i] > 0 ? x[i] : 0 (NaN maps to 0, -0 maps to +0 — the scalar idiom).
void Relu(const float* x, float* out, int64_t n);

// out[i] = -x[i] (exact sign-bit flip, NaN payloads included)
void Neg(const float* x, float* out, int64_t n);

// out[i] = x[i] - s
void SubScalar(const float* x, float s, float* out, int64_t n);
// out[i] = x[i] / s
void DivScalar(const float* x, float s, float* out, int64_t n);
// out[i] = x[i] * x[i]
void Square(const float* x, float* out, int64_t n);
// t = x[i] - mean; out[i] = t * t
void CenterSquare(const float* x, float mean, float* out, int64_t n);
// out[i] = ((x[i] - mean) * inv) * w[i] + b[i]   (layer_norm epilogue)
void NormAffine(const float* x, float mean, float inv, const float* w, const float* b,
                float* out, int64_t n);
// out[i] = ((x[i] - mean) * inv) * w + b         (group_norm per-channel epilogue)
void NormAffineScalar(const float* x, float mean, float inv, float w, float b,
                      float* out, int64_t n);
// out[i] = (x[i] - sub) * scale + bias           (batch_norm epilogue)
void AffineScalar(const float* x, float sub, float scale, float bias, float* out,
                  int64_t n);
// out[i] = (x[i] * inv) * w[i]                   (rms_norm epilogue)
void ScaleWeight(const float* x, float inv, const float* w, float* out, int64_t n);

// Running-maximum fold max(...max(max(-inf, x[0]), x[1])..., x[n-1]) with the scalar
// NaN rule (NaN operands are skipped). The vector fold may return the other zero sign
// when the maximum is a signed-zero tie; callers (softmax) are insensitive to it
// because fl(x - (+0)) and fl(x - (-0)) feed exp() identically for every committed
// output.
float RowMax(const float* x, int64_t n);

}  // namespace simd
}  // namespace tao

#endif  // TAO_SRC_DEVICE_SIMD_H_
