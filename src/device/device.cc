#include "src/device/device.h"

#include <cmath>

#include "src/device/simd.h"
#include "src/device/vmath.h"
#include "src/util/check.h"

namespace tao {
namespace {

float SumSequential(std::span<const float> xs) {
  float acc = 0.0f;
  for (const float x : xs) {
    acc += x;
  }
  return acc;
}

float SumReversed(std::span<const float> xs) {
  float acc = 0.0f;
  for (size_t i = xs.size(); i > 0; --i) {
    acc += xs[i - 1];
  }
  return acc;
}

float SumPairwise(std::span<const float> xs) {
  if (xs.empty()) {
    return 0.0f;
  }
  if (xs.size() == 1) {
    return xs[0];
  }
  const size_t half = xs.size() / 2;
  return SumPairwise(xs.subspan(0, half)) + SumPairwise(xs.subspan(half));
}

float SumBlocked(std::span<const float> xs, int64_t block) {
  TAO_CHECK_GT(block, 0);
  float acc = 0.0f;
  size_t i = 0;
  while (i < xs.size()) {
    const size_t len = std::min(static_cast<size_t>(block), xs.size() - i);
    float partial = 0.0f;
    for (size_t j = 0; j < len; ++j) {
      partial += xs[i + j];
    }
    acc += partial;
    i += len;
  }
  return acc;
}

float SumStrided(std::span<const float> xs, int64_t lanes) {
  TAO_CHECK_GT(lanes, 0);
  const size_t s = static_cast<size_t>(lanes);
  if (xs.size() <= s) {
    return SumSequential(xs);
  }
  std::vector<float> acc(s, 0.0f);
  for (size_t i = 0; i < xs.size(); ++i) {
    acc[i % s] += xs[i];
  }
  float total = 0.0f;
  for (const float a : acc) {
    total += a;
  }
  return total;
}

}  // namespace

float DeviceProfile::Accumulate(std::span<const float> xs) const {
  // Vector-eligible profiles (the fixed 8-lane tree) route through the SIMD backend;
  // simd::SumStrided8 is bitwise identical to SumStrided(xs, 8) on every input, so
  // this is a pure speed dispatch, never a numerics dispatch.
  if (vector_eligible()) {
    return simd::SumStrided8(xs.data(), static_cast<int64_t>(xs.size()));
  }
  switch (order) {
    case AccumulationOrder::kSequential:
      return SumSequential(xs);
    case AccumulationOrder::kReversed:
      return SumReversed(xs);
    case AccumulationOrder::kPairwiseTree:
      return SumPairwise(xs);
    case AccumulationOrder::kBlocked:
      return SumBlocked(xs, block);
    case AccumulationOrder::kStrided:
      return SumStrided(xs, block);
    case AccumulationOrder::kStridedVector:
      return SumStrided(xs, 8);  // unreachable: vector_eligible() handled above
  }
  TAO_CHECK(false) << "unreachable";
  return 0.0f;
}

float DeviceProfile::Dot(std::span<const float> a, std::span<const float> b) const {
  TAO_CHECK_EQ(a.size(), b.size());
  return DotStrided(a.data(), 1, b.data(), 1, static_cast<int64_t>(a.size()));
}

float DeviceProfile::DotStrided(const float* a, int64_t stride_a, const float* b,
                                int64_t stride_b, int64_t n) const {
  // Sequential-family orders fold the product into the accumulator directly (possibly
  // with FMA contraction); tree/blocked/strided orders materialize rounded products
  // first, matching how tiled GPU kernels stage operands through registers.
  // The fixed 8-lane tree stages one rounding per product whether the profile fuses or
  // not (fl(a*b + 0) == fl(a*b) as a summand: a lane accumulator starting at +0 can
  // never become -0, so the sign of an exact-zero product is absorbed identically), so
  // vector-eligible profiles share one SIMD-dispatched kernel for both FMA policies.
  if (vector_eligible()) {
    return simd::DotStrided8(a, stride_a, b, stride_b, n);
  }
  auto product = [&](int64_t i) -> float { return a[i * stride_a] * b[i * stride_b]; };
  switch (order) {
    case AccumulationOrder::kSequential: {
      float acc = 0.0f;
      if (fma) {
        for (int64_t i = 0; i < n; ++i) {
          acc = std::fmaf(a[i * stride_a], b[i * stride_b], acc);
        }
      } else {
        for (int64_t i = 0; i < n; ++i) {
          acc += product(i);
        }
      }
      return acc;
    }
    case AccumulationOrder::kReversed: {
      float acc = 0.0f;
      if (fma) {
        for (int64_t i = n; i > 0; --i) {
          acc = std::fmaf(a[(i - 1) * stride_a], b[(i - 1) * stride_b], acc);
        }
      } else {
        for (int64_t i = n; i > 0; --i) {
          acc += product(i - 1);
        }
      }
      return acc;
    }
    case AccumulationOrder::kPairwiseTree:
    case AccumulationOrder::kBlocked:
    case AccumulationOrder::kStrided:
    case AccumulationOrder::kStridedVector: {
      std::vector<float> prods(static_cast<size_t>(n));
      if (fma) {
        // Contracted product staging: round-to-nearest of the exact product is what
        // FMA-based tiles feed the tree; emulate with fmaf against zero.
        for (int64_t i = 0; i < n; ++i) {
          prods[static_cast<size_t>(i)] = std::fmaf(a[i * stride_a], b[i * stride_b], 0.0f);
        }
      } else {
        for (int64_t i = 0; i < n; ++i) {
          prods[static_cast<size_t>(i)] = product(i);
        }
      }
      return Accumulate(prods);
    }
  }
  TAO_CHECK(false) << "unreachable";
  return 0.0f;
}

// Intrinsics. exp/tanh/erf route through the pinned vmath polynomials for EVERY
// profile and flavour: those three back the vectorized hot loops (softmax, gelu,
// tanh/silu activations), and vmath's scalar and AVX2 bodies are bitwise identical by
// construction, so all simulated devices now agree bit for bit on them — reductions
// remain the sole cross-device nondeterminism source for transcendental-bearing ops.
// The remaining intrinsics keep the two libm flavours (float-native vs
// compute-in-double-then-round), modelling the last-ulp divergence the CUDA math
// library is permitted across architectures.
float DeviceProfile::Exp(float x) const { return vmath::Exp(x); }

float DeviceProfile::Log(float x) const {
  return intrinsics == IntrinsicFlavor::kFloatNative
             ? std::log(x)
             : static_cast<float>(std::log(static_cast<double>(x)));
}

float DeviceProfile::Sin(float x) const {
  return intrinsics == IntrinsicFlavor::kFloatNative
             ? std::sin(x)
             : static_cast<float>(std::sin(static_cast<double>(x)));
}

float DeviceProfile::Cos(float x) const {
  return intrinsics == IntrinsicFlavor::kFloatNative
             ? std::cos(x)
             : static_cast<float>(std::cos(static_cast<double>(x)));
}

float DeviceProfile::Tanh(float x) const { return vmath::Tanh(x); }

float DeviceProfile::Sqrt(float x) const {
  // sqrt is correctly rounded in IEEE-754 on both paths.
  return std::sqrt(x);
}

float DeviceProfile::Rsqrt(float x) const {
  return intrinsics == IntrinsicFlavor::kFloatNative
             ? 1.0f / std::sqrt(x)
             : static_cast<float>(1.0 / std::sqrt(static_cast<double>(x)));
}

float DeviceProfile::Pow(float x, float y) const {
  return intrinsics == IntrinsicFlavor::kFloatNative
             ? std::pow(x, y)
             : static_cast<float>(std::pow(static_cast<double>(x), static_cast<double>(y)));
}

float DeviceProfile::Erf(float x) const { return vmath::Erf(x); }

// ULP table for intrinsic terms in theoretical bounds, mirroring the CUDA C
// Programming Guide's math accuracy table the paper uses. exp/tanh/erf now state the
// vmath polynomials' conservative maxima versus the infinitely precise result
// (empirically <= 2/3/5 ulp; stated as 4/4/8 so bounds stay sound with margin — all
// devices agree BITWISE on these three, so the cross-device deviation they bound is
// zero and the wider radius costs nothing in dispute power). The rest keep the CUDA
// table values (log 1 ulp, sin/cos 2 ulp, sqrt correctly rounded, rsqrt 2 ulp,
// pow 2 ulp); bounds must hold for every admissible device, so templates query the
// profile's stated maxima.
double DeviceProfile::ExpUlp() const { return 4.0; }
double DeviceProfile::LogUlp() const { return 1.0; }
double DeviceProfile::TanhUlp() const { return 4.0; }
double DeviceProfile::SinCosUlp() const { return 2.0; }
double DeviceProfile::SqrtUlp() const { return 0.5; }
double DeviceProfile::RsqrtUlp() const { return 2.0; }
double DeviceProfile::PowUlp() const { return 2.0; }
double DeviceProfile::ErfUlp() const { return 8.0; }

const DeviceProfile& DeviceRegistry::Reference() {
  static const DeviceProfile kReference{
      .name = "reference",
      .order = AccumulationOrder::kSequential,
      .block = 0,
      .fma = false,
      .intrinsics = IntrinsicFlavor::kFloatNative,
  };
  return kReference;
}

const std::vector<DeviceProfile>& DeviceRegistry::Fleet() {
  static const std::vector<DeviceProfile> kFleet = {
      DeviceProfile{.name = "H100",
                    .order = AccumulationOrder::kPairwiseTree,
                    .block = 0,
                    .fma = true,
                    .intrinsics = IntrinsicFlavor::kDoubleRounded},
      DeviceProfile{.name = "A100",
                    .order = AccumulationOrder::kBlocked,
                    .block = 128,
                    .fma = true,
                    .intrinsics = IntrinsicFlavor::kFloatNative},
      DeviceProfile{.name = "RTX4090",
                    .order = AccumulationOrder::kBlocked,
                    .block = 32,
                    .fma = false,
                    .intrinsics = IntrinsicFlavor::kFloatNative},
      // Relabelled from kStrided(block=8) to kStridedVector: the two orders are
      // bitwise-identical aliases, so existing calibrations stay valid, and the
      // explicit name documents that this is the fleet's vector-eligible profile.
      DeviceProfile{.name = "RTX6000",
                    .order = AccumulationOrder::kStridedVector,
                    .block = 8,
                    .fma = true,
                    .intrinsics = IntrinsicFlavor::kFloatNative},
  };
  return kFleet;
}

std::string FleetSignature(std::span<const DeviceProfile> fleet) {
  // The vmath version token leads the signature: the pinned transcendental
  // polynomials are part of every device's arithmetic, so a coefficient change is a
  // fleet change — calibrations published against a different vmath generation must
  // be rejected by the v2 loader exactly like a device-composition change.
  std::string sig = vmath::kVmathVersion;
  for (const DeviceProfile& d : fleet) {
    AccumulationOrder order = d.order;
    int64_t block = d.block;
    // kStridedVector is a bitwise alias of kStrided(block=8); encode both the same
    // way so a pure relabel does not read as a fleet change.
    if (order == AccumulationOrder::kStridedVector) {
      order = AccumulationOrder::kStrided;
      block = 8;
    }
    // Block only participates in the arithmetic for blocked/strided orders.
    if (order != AccumulationOrder::kBlocked && order != AccumulationOrder::kStrided) {
      block = 0;
    }
    static const char* kOrderTokens[] = {"seq", "rev", "tree", "blocked", "strided",
                                         "stridedvec"};
    if (!sig.empty()) {
      sig += ';';
    }
    sig += d.name;
    sig += ':';
    sig += kOrderTokens[static_cast<int>(order)];
    sig += ':';
    sig += std::to_string(block);
    sig += d.fma ? ":fma1:" : ":fma0:";
    sig += d.intrinsics == IntrinsicFlavor::kDoubleRounded ? "dbl" : "fn";
  }
  return sig;
}

const DeviceProfile& DeviceRegistry::ByName(const std::string& name) {
  if (name == "reference") {
    return Reference();
  }
  for (const DeviceProfile& d : Fleet()) {
    if (d.name == name) {
      return d;
    }
  }
  TAO_CHECK(false) << "unknown device " << name;
  return Reference();
}

}  // namespace tao
