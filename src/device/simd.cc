#include "src/device/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/check.h"

// The AVX2 paths are compiled behind a target attribute so the translation unit builds
// on any host; they are only *called* after __builtin_cpu_supports("avx2") says the
// instructions exist. Non-x86 builds (and non-GNU compilers) compile the scalar
// implementations only and ActiveSimdBackend() reports kScalar.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TAO_SIMD_X86 1
#include <immintrin.h>
#else
#define TAO_SIMD_X86 0
#endif

#if TAO_SIMD_X86
#define TAO_TARGET_AVX2 __attribute__((target("avx2")))
#endif

namespace tao {
namespace {

// -1 = no override; otherwise the int value of the forced SimdBackend.
std::atomic<int> g_forced_backend{-1};

bool CpuHasAvx2() {
#if TAO_SIMD_X86
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool SimdDisabledByEnv() {
  const char* env = std::getenv("TAO_DISABLE_SIMD");
  if (env == nullptr || env[0] == '\0') {
    return false;
  }
  return !(env[0] == '0' && env[1] == '\0');
}

SimdBackend DetectBackend() {
  if (SimdDisabledByEnv()) {
    return SimdBackend::kScalar;
  }
  return CpuHasAvx2() ? SimdBackend::kAvx2 : SimdBackend::kScalar;
}

}  // namespace

bool SimdBackendSupported(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return true;
    case SimdBackend::kAvx2:
      return CpuHasAvx2();
  }
  return false;
}

SimdBackend ActiveSimdBackend() {
  const int forced = g_forced_backend.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return static_cast<SimdBackend>(forced);
  }
  static const SimdBackend detected = DetectBackend();
  return detected;
}

const char* SimdBackendName(SimdBackend backend) {
  switch (backend) {
    case SimdBackend::kScalar:
      return "scalar";
    case SimdBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void ForceSimdBackend(std::optional<SimdBackend> backend) {
  if (!backend.has_value()) {
    g_forced_backend.store(-1, std::memory_order_relaxed);
    return;
  }
  TAO_CHECK(SimdBackendSupported(*backend))
      << "cannot force unsupported backend " << SimdBackendName(*backend);
  g_forced_backend.store(static_cast<int>(*backend), std::memory_order_relaxed);
}

ScopedSimdBackend::ScopedSimdBackend(SimdBackend backend) {
  const int forced = g_forced_backend.load(std::memory_order_relaxed);
  if (forced >= 0) {
    previous_ = static_cast<SimdBackend>(forced);
  }
  ForceSimdBackend(backend);
}

ScopedSimdBackend::~ScopedSimdBackend() { ForceSimdBackend(previous_); }

void LogSimdBackendOnce() {
  static const bool logged = [] {
    const SimdBackend b = ActiveSimdBackend();
    std::fprintf(stderr, "tao: kernel backend: %s%s\n", SimdBackendName(b),
                 SimdDisabledByEnv() ? " (TAO_DISABLE_SIMD)" : "");
    return true;
  }();
  (void)logged;
}

namespace simd {
namespace {

// ---- Fixed-tree reduction implementations ------------------------------------------
//
// The scalar and AVX2 bodies below are intentionally the same algorithm written twice:
// eight lane accumulators (one ymm register), a full-block loop, scalar tail additions
// into the extracted lanes, then a left-to-right lane combine. Tails are handled with
// scalar adds after extracting the lanes rather than with a masked vector add: adding
// a masked +0.0 to a lane holding -0.0 would flip it to +0.0 and break bitwise
// equality with the scalar profile.

float SumStrided8Scalar(const float* x, int64_t n) {
  float lanes[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  for (int64_t i = 0; i < n; ++i) {
    lanes[i & 7] += x[i];
  }
  float total = 0.0f;
  for (int j = 0; j < 8; ++j) {
    total += lanes[j];
  }
  return total;
}

float DotStrided8Scalar(const float* a, int64_t stride_a, const float* b,
                        int64_t stride_b, int64_t n) {
  float lanes[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  for (int64_t i = 0; i < n; ++i) {
    lanes[i & 7] += a[i * stride_a] * b[i * stride_b];
  }
  float total = 0.0f;
  for (int j = 0; j < 8; ++j) {
    total += lanes[j];
  }
  return total;
}

#if TAO_SIMD_X86

TAO_TARGET_AVX2 float CombineLanesAvx2(__m256 acc, const float* x, int64_t vec_n,
                                       int64_t n) {
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (int64_t i = vec_n; i < n; ++i) {
    lanes[i & 7] += x[i];
  }
  float total = 0.0f;
  for (int j = 0; j < 8; ++j) {
    total += lanes[j];
  }
  return total;
}

TAO_TARGET_AVX2 float SumStrided8Avx2(const float* x, int64_t n) {
  __m256 acc = _mm256_setzero_ps();
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(x + i));
  }
  return CombineLanesAvx2(acc, x, vec_n, n);
}

TAO_TARGET_AVX2 float DotContiguousAvx2(const float* a, const float* b, int64_t n) {
  __m256 acc = _mm256_setzero_ps();
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    // vmulps + vaddps, never an FMA into the accumulator: each product takes its own
    // rounding before entering the lane sum, exactly as the staged scalar products do.
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (int64_t i = vec_n; i < n; ++i) {
    lanes[i & 7] += a[i] * b[i];
  }
  float total = 0.0f;
  for (int j = 0; j < 8; ++j) {
    total += lanes[j];
  }
  return total;
}

TAO_TARGET_AVX2 float DotGatherAvx2(const float* a, int64_t stride_a, const float* b,
                                    int64_t stride_b, int64_t n) {
  const int sa = static_cast<int>(stride_a);
  const int sb = static_cast<int>(stride_b);
  const __m256i idx_a = _mm256_setr_epi32(0, sa, 2 * sa, 3 * sa, 4 * sa, 5 * sa, 6 * sa, 7 * sa);
  const __m256i idx_b = _mm256_setr_epi32(0, sb, 2 * sb, 3 * sb, 4 * sb, 5 * sb, 6 * sb, 7 * sb);
  __m256 acc = _mm256_setzero_ps();
  const int64_t vec_n = n & ~int64_t{7};
  const float* pa = a;
  const float* pb = b;
  for (int64_t i = 0; i < vec_n; i += 8) {
    const __m256 va = _mm256_i32gather_ps(pa, idx_a, 4);
    const __m256 vb = _mm256_i32gather_ps(pb, idx_b, 4);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
    pa += 8 * stride_a;
    pb += 8 * stride_b;
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (int64_t i = vec_n; i < n; ++i) {
    lanes[i & 7] += a[i * stride_a] * b[i * stride_b];
  }
  float total = 0.0f;
  for (int j = 0; j < 8; ++j) {
    total += lanes[j];
  }
  return total;
}

// Gather indices are 32-bit element offsets; keep a wide safety margin.
constexpr int64_t kMaxGatherStride = int64_t{1} << 27;

#endif  // TAO_SIMD_X86

}  // namespace

float SumStrided8(const float* x, int64_t n) {
  if (n <= 8) {
    // The kStrided profile sums short inputs strictly sequentially.
    float acc = 0.0f;
    for (int64_t i = 0; i < n; ++i) {
      acc += x[i];
    }
    return acc;
  }
#if TAO_SIMD_X86
  if (ActiveSimdBackend() == SimdBackend::kAvx2) {
    return SumStrided8Avx2(x, n);
  }
#endif
  return SumStrided8Scalar(x, n);
}

float DotStrided8(const float* a, int64_t stride_a, const float* b, int64_t stride_b,
                  int64_t n) {
  if (n <= 8) {
    float acc = 0.0f;
    for (int64_t i = 0; i < n; ++i) {
      acc += a[i * stride_a] * b[i * stride_b];
    }
    return acc;
  }
#if TAO_SIMD_X86
  if (ActiveSimdBackend() == SimdBackend::kAvx2) {
    if (stride_a == 1 && stride_b == 1) {
      return DotContiguousAvx2(a, b, n);
    }
    if (stride_a > 0 && stride_b > 0 && stride_a <= kMaxGatherStride &&
        stride_b <= kMaxGatherStride) {
      return DotGatherAvx2(a, stride_a, b, stride_b, n);
    }
  }
#endif
  return DotStrided8Scalar(a, stride_a, b, stride_b, n);
}

// ---- Exact elementwise helpers -----------------------------------------------------
//
// Each helper performs exactly the listed IEEE operations per element, so the scalar
// and AVX2 bodies agree bitwise and the dispatch choice is unobservable in outputs.

#if TAO_SIMD_X86

namespace {

TAO_TARGET_AVX2 void AddVecAvx2(const float* a, const float* b, float* out, int64_t n) {
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    out[i] = a[i] + b[i];
  }
}

TAO_TARGET_AVX2 void SubVecAvx2(const float* a, const float* b, float* out, int64_t n) {
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    out[i] = a[i] - b[i];
  }
}

TAO_TARGET_AVX2 void MulVecAvx2(const float* a, const float* b, float* out, int64_t n) {
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    out[i] = a[i] * b[i];
  }
}

TAO_TARGET_AVX2 void DivVecAvx2(const float* a, const float* b, float* out, int64_t n) {
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_div_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    out[i] = a[i] / b[i];
  }
}

TAO_TARGET_AVX2 void ReluAvx2(const float* x, float* out, int64_t n) {
  // max_ps(x, 0) returns the second operand (0) for NaN and for -0 vs +0 ties, which
  // is exactly the scalar `x > 0 ? x : 0` result.
  const __m256 zero = _mm256_setzero_ps();
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    out[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }
}

TAO_TARGET_AVX2 void NegAvx2(const float* x, float* out, int64_t n) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_xor_ps(_mm256_loadu_ps(x + i), sign));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    out[i] = -x[i];
  }
}

TAO_TARGET_AVX2 void SubScalarAvx2(const float* x, float s, float* out, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_sub_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    out[i] = x[i] - s;
  }
}

TAO_TARGET_AVX2 void DivScalarAvx2(const float* x, float s, float* out, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_div_ps(_mm256_loadu_ps(x + i), vs));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    out[i] = x[i] / s;
  }
}

TAO_TARGET_AVX2 void SquareAvx2(const float* x, float* out, int64_t n) {
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    _mm256_storeu_ps(out + i, _mm256_mul_ps(v, v));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    out[i] = x[i] * x[i];
  }
}

TAO_TARGET_AVX2 void CenterSquareAvx2(const float* x, float mean, float* out, int64_t n) {
  const __m256 vm = _mm256_set1_ps(mean);
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    const __m256 t = _mm256_sub_ps(_mm256_loadu_ps(x + i), vm);
    _mm256_storeu_ps(out + i, _mm256_mul_ps(t, t));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    const float t = x[i] - mean;
    out[i] = t * t;
  }
}

TAO_TARGET_AVX2 void NormAffineAvx2(const float* x, float mean, float inv,
                                    const float* w, const float* b, float* out,
                                    int64_t n) {
  const __m256 vm = _mm256_set1_ps(mean);
  const __m256 vi = _mm256_set1_ps(inv);
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    const __m256 norm = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vm), vi);
    const __m256 scaled = _mm256_mul_ps(norm, _mm256_loadu_ps(w + i));
    _mm256_storeu_ps(out + i, _mm256_add_ps(scaled, _mm256_loadu_ps(b + i)));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    out[i] = ((x[i] - mean) * inv) * w[i] + b[i];
  }
}

TAO_TARGET_AVX2 void NormAffineScalarAvx2(const float* x, float mean, float inv, float w,
                                          float b, float* out, int64_t n) {
  const __m256 vm = _mm256_set1_ps(mean);
  const __m256 vi = _mm256_set1_ps(inv);
  const __m256 vw = _mm256_set1_ps(w);
  const __m256 vb = _mm256_set1_ps(b);
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    const __m256 norm = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vm), vi);
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_mul_ps(norm, vw), vb));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    out[i] = ((x[i] - mean) * inv) * w + b;
  }
}

TAO_TARGET_AVX2 void AffineScalarAvx2(const float* x, float sub, float scale, float bias,
                                      float* out, int64_t n) {
  const __m256 vsub = _mm256_set1_ps(sub);
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vbias = _mm256_set1_ps(bias);
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    const __m256 t = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vsub), vscale);
    _mm256_storeu_ps(out + i, _mm256_add_ps(t, vbias));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    out[i] = (x[i] - sub) * scale + bias;
  }
}

TAO_TARGET_AVX2 void ScaleWeightAvx2(const float* x, float inv, const float* w,
                                     float* out, int64_t n) {
  const __m256 vi = _mm256_set1_ps(inv);
  const int64_t vec_n = n & ~int64_t{7};
  for (int64_t i = 0; i < vec_n; i += 8) {
    const __m256 t = _mm256_mul_ps(_mm256_loadu_ps(x + i), vi);
    _mm256_storeu_ps(out + i, _mm256_mul_ps(t, _mm256_loadu_ps(w + i)));
  }
  for (int64_t i = vec_n; i < n; ++i) {
    out[i] = (x[i] * inv) * w[i];
  }
}

TAO_TARGET_AVX2 float RowMaxAvx2(const float* x, int64_t n) {
  const int64_t vec_n = n & ~int64_t{7};
  __m256 acc = _mm256_set1_ps(-INFINITY);
  for (int64_t i = 0; i < vec_n; i += 8) {
    // Operand order matters: max_ps returns the second operand when the first is NaN,
    // so putting x first skips NaNs exactly like the scalar std::max fold.
    acc = _mm256_max_ps(_mm256_loadu_ps(x + i), acc);
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float m = -INFINITY;
  for (int j = 0; j < 8; ++j) {
    m = std::max(m, lanes[j]);
  }
  for (int64_t i = vec_n; i < n; ++i) {
    m = std::max(m, x[i]);
  }
  return m;
}

}  // namespace

#define TAO_SIMD_DISPATCH(avx2_call, scalar_body)            \
  do {                                                       \
    if (ActiveSimdBackend() == SimdBackend::kAvx2) {         \
      avx2_call;                                             \
      return;                                                \
    }                                                        \
    scalar_body;                                             \
  } while (0)

#else  // !TAO_SIMD_X86

#define TAO_SIMD_DISPATCH(avx2_call, scalar_body) \
  do {                                            \
    scalar_body;                                  \
  } while (0)

#endif  // TAO_SIMD_X86

void AddVec(const float* a, const float* b, float* out, int64_t n) {
  TAO_SIMD_DISPATCH(AddVecAvx2(a, b, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = a[i] + b[i];
    }
  });
}

void SubVec(const float* a, const float* b, float* out, int64_t n) {
  TAO_SIMD_DISPATCH(SubVecAvx2(a, b, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = a[i] - b[i];
    }
  });
}

void MulVec(const float* a, const float* b, float* out, int64_t n) {
  TAO_SIMD_DISPATCH(MulVecAvx2(a, b, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = a[i] * b[i];
    }
  });
}

void DivVec(const float* a, const float* b, float* out, int64_t n) {
  TAO_SIMD_DISPATCH(DivVecAvx2(a, b, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = a[i] / b[i];
    }
  });
}

void Relu(const float* x, float* out, int64_t n) {
  TAO_SIMD_DISPATCH(ReluAvx2(x, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = x[i] > 0.0f ? x[i] : 0.0f;
    }
  });
}

void Neg(const float* x, float* out, int64_t n) {
  TAO_SIMD_DISPATCH(NegAvx2(x, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = -x[i];
    }
  });
}

void SubScalar(const float* x, float s, float* out, int64_t n) {
  TAO_SIMD_DISPATCH(SubScalarAvx2(x, s, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = x[i] - s;
    }
  });
}

void DivScalar(const float* x, float s, float* out, int64_t n) {
  TAO_SIMD_DISPATCH(DivScalarAvx2(x, s, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = x[i] / s;
    }
  });
}

void Square(const float* x, float* out, int64_t n) {
  TAO_SIMD_DISPATCH(SquareAvx2(x, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = x[i] * x[i];
    }
  });
}

void CenterSquare(const float* x, float mean, float* out, int64_t n) {
  TAO_SIMD_DISPATCH(CenterSquareAvx2(x, mean, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      const float t = x[i] - mean;
      out[i] = t * t;
    }
  });
}

void NormAffine(const float* x, float mean, float inv, const float* w, const float* b,
                float* out, int64_t n) {
  TAO_SIMD_DISPATCH(NormAffineAvx2(x, mean, inv, w, b, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = ((x[i] - mean) * inv) * w[i] + b[i];
    }
  });
}

void NormAffineScalar(const float* x, float mean, float inv, float w, float b,
                      float* out, int64_t n) {
  TAO_SIMD_DISPATCH(NormAffineScalarAvx2(x, mean, inv, w, b, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = ((x[i] - mean) * inv) * w + b;
    }
  });
}

void AffineScalar(const float* x, float sub, float scale, float bias, float* out,
                  int64_t n) {
  TAO_SIMD_DISPATCH(AffineScalarAvx2(x, sub, scale, bias, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = (x[i] - sub) * scale + bias;
    }
  });
}

void ScaleWeight(const float* x, float inv, const float* w, float* out, int64_t n) {
  TAO_SIMD_DISPATCH(ScaleWeightAvx2(x, inv, w, out, n), {
    for (int64_t i = 0; i < n; ++i) {
      out[i] = (x[i] * inv) * w[i];
    }
  });
}

float RowMax(const float* x, int64_t n) {
#if TAO_SIMD_X86
  if (ActiveSimdBackend() == SimdBackend::kAvx2) {
    return RowMaxAvx2(x, n);
  }
#endif
  float m = -INFINITY;
  for (int64_t i = 0; i < n; ++i) {
    m = std::max(m, x[i]);
  }
  return m;
}

#undef TAO_SIMD_DISPATCH

}  // namespace simd
}  // namespace tao
