#include "src/device/vmath.h"

#include <bit>
#include <cmath>
#include <cstdint>

#include "src/device/simd.h"

// Same build gating as src/device/simd.cc: the AVX2 bodies compile behind a target
// attribute so this TU builds on any host, and are only called after
// ActiveSimdBackend() says the instructions exist.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TAO_VMATH_X86 1
#include <immintrin.h>
#else
#define TAO_VMATH_X86 0
#endif

#if TAO_VMATH_X86
#define TAO_TARGET_AVX2 __attribute__((target("avx2")))
#endif

namespace tao {
namespace vmath {
namespace {

// ---- Pinned coefficients -----------------------------------------------------------
// These constants ARE the arithmetic: change any of them and every transcendental
// commitment moves, which is why kVmathVersion participates in FleetSignature.

// exp: base-2 range reduction exp(x) = 2^n * exp(f), |f| <= ln2/2, with the classic
// Cody-Waite split of ln2 (C1 exactly representable, C2 the residual) and the
// cephes/expf degree-5 polynomial for expm1 on the reduced interval.
constexpr float kExpHi = 88.722839f;     // exp(x) overflows float above this
constexpr float kExpLo = -87.3365448f;   // ~ -126*ln2: keeps 2^n scaling normal
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kExpC1 = 0.693359375f;
constexpr float kExpC2 = -2.12194440e-4f;
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

// tanh: cephes/tanhf odd polynomial in x^2 below 0.625, exp identity
// tanh(a) = 1 - 2/(exp(2a)+1) above, saturation to 1 at 9 (the identity value at 9
// is already within one ulp of 1, so the clamp is monotone).
constexpr float kTanhP0 = -5.70498872745e-3f;
constexpr float kTanhP1 = 2.06390887954e-2f;
constexpr float kTanhP2 = -5.37397155531e-2f;
constexpr float kTanhP3 = 1.33314422036e-1f;
constexpr float kTanhP4 = -3.33332819422e-1f;
constexpr float kTanhSmall = 0.625f;
constexpr float kTanhClamp = 9.0f;

// erf: cephes/ndtrf odd series erf(a) = a * T(a^2) below 1, Abramowitz-Stegun 7.1.26
// rational-exponential form above, saturation to 1 at 4 (where the A&S value rounds
// to 1.0f exactly, so the clamp is seamless).
constexpr float kErfT0 = 7.853861353153693e-5f;
constexpr float kErfT1 = -8.010193625184903e-4f;
constexpr float kErfT2 = 5.188327685732524e-3f;
constexpr float kErfT3 = -2.685381193529856e-2f;
constexpr float kErfT4 = 1.128358514861418e-1f;
constexpr float kErfT5 = -3.761262582423300e-1f;
constexpr float kErfT6 = 1.128379165726710f;
constexpr float kErfP = 0.3275911f;
constexpr float kErfA1 = 0.254829592f;
constexpr float kErfA2 = -0.284496736f;
constexpr float kErfA3 = 1.421413741f;
constexpr float kErfA4 = -1.453152027f;
constexpr float kErfA5 = 1.061405429f;
constexpr float kErfSmall = 1.0f;
constexpr float kErfClamp = 4.0f;

constexpr float kInvSqrt2 = 0.70710678118654752440f;
constexpr uint32_t kQNaNBits = 0x7FC00000u;
constexpr uint32_t kInfBits = 0x7F800000u;
constexpr uint32_t kSignMask = 0x80000000u;
constexpr uint32_t kAbsMask = 0x7FFFFFFFu;

inline float FromBits(uint32_t b) { return std::bit_cast<float>(b); }
inline uint32_t Bits(float x) { return std::bit_cast<uint32_t>(x); }

// 2^n for n in [-126, 128] as two exact power-of-two multiplies (one bit-built scale
// cannot represent 2^128 and would go denormal for n < -126 near the low clamp;
// splitting n keeps every scale factor a normal power of two, so both multiplies are
// exact and the only rounding is the final result's, identically in both bodies).
inline float ScalePow2(float t, int32_t n) {
  const int32_t half = n >> 1;
  const int32_t rest = n - half;
  const float s1 = FromBits(static_cast<uint32_t>(half + 127) << 23);
  const float s2 = FromBits(static_cast<uint32_t>(rest + 127) << 23);
  return (t * s1) * s2;
}

// ---- Scalar reference bodies -------------------------------------------------------
// Every select below is written to mirror one AVX2 instruction exactly:
// (a > b ? a : b) is _mm256_max_ps(a, b) including the NaN-returns-second-operand
// rule, and each trailing conditional is one _mm256_blendv_ps on an ordered compare
// (NaN compares false). Arithmetic is plain mul/add/sub/div in the written order;
// the build sets -ffp-contract=off so nothing fuses into FMA on either body.

inline float ExpScalar(float x) {
  float xc = (x > kExpLo) ? x : kExpLo;
  xc = (xc < kExpHi) ? xc : kExpHi;
  const float nf = std::floor(xc * kLog2e + 0.5f);
  const float f = (xc - nf * kExpC1) - nf * kExpC2;
  const float z = f * f;
  float p = kExpP0;
  p = p * f + kExpP1;
  p = p * f + kExpP2;
  p = p * f + kExpP3;
  p = p * f + kExpP4;
  p = p * f + kExpP5;
  const float t = (p * z + f) + 1.0f;
  float r = ScalePow2(t, static_cast<int32_t>(nf));
  r = (x < kExpLo) ? 0.0f : r;
  r = (x > kExpHi) ? FromBits(kInfBits) : r;
  r = (x != x) ? FromBits(kQNaNBits) : r;
  return r;
}

inline float TanhScalar(float x) {
  const float a = FromBits(Bits(x) & kAbsMask);
  const float z = a * a;
  float p = kTanhP0;
  p = p * z + kTanhP1;
  p = p * z + kTanhP2;
  p = p * z + kTanhP3;
  p = p * z + kTanhP4;
  const float small = (p * z) * a + a;
  const float e = ExpScalar(a + a);
  const float large = 1.0f - 2.0f / (e + 1.0f);
  float r = (a < kTanhSmall) ? small : large;
  r = (a >= kTanhClamp) ? 1.0f : r;
  r = FromBits(Bits(r) | (Bits(x) & kSignMask));
  r = (x != x) ? FromBits(kQNaNBits) : r;
  return r;
}

inline float ErfScalar(float x) {
  const float a = FromBits(Bits(x) & kAbsMask);
  const float z = a * a;
  float q = kErfT0;
  q = q * z + kErfT1;
  q = q * z + kErfT2;
  q = q * z + kErfT3;
  q = q * z + kErfT4;
  q = q * z + kErfT5;
  q = q * z + kErfT6;
  const float small = a * q;
  const float t = 1.0f / (kErfP * a + 1.0f);
  float p = kErfA5;
  p = p * t + kErfA4;
  p = p * t + kErfA3;
  p = p * t + kErfA2;
  p = p * t + kErfA1;
  p = p * t;
  const float e = ExpScalar(-z);
  const float mid = 1.0f - p * e;
  float r = (a < kErfSmall) ? small : mid;
  r = (a >= kErfClamp) ? 1.0f : r;
  r = FromBits(Bits(r) | (Bits(x) & kSignMask));
  r = (x != x) ? FromBits(kQNaNBits) : r;
  return r;
}

inline float SigmoidScalar(float x) {
  const float e = ExpScalar(FromBits(Bits(x) ^ kSignMask));
  return 1.0f / (1.0f + e);
}

inline float GeluScalar(float x) {
  const float e = ErfScalar(x * kInvSqrt2);
  return (0.5f * x) * (1.0f + e);
}

inline float SiluScalar(float x) { return x * SigmoidScalar(x); }

// ---- AVX2 twin bodies --------------------------------------------------------------
// Instruction-for-statement transliterations of the scalar bodies above. No FMA, no
// rcp/rsqrt approximations, no reassociation: mul/add/sub/div/max/min/floor/blend
// only, all of which round identically to their scalar counterparts lane by lane.

#if TAO_VMATH_X86

TAO_TARGET_AVX2 inline __m256 ExpCoreAvx2(__m256 x) {
  const __m256 lo = _mm256_set1_ps(kExpLo);
  const __m256 hi = _mm256_set1_ps(kExpHi);
  __m256 xc = _mm256_max_ps(x, lo);
  xc = _mm256_min_ps(xc, hi);
  const __m256 nf = _mm256_floor_ps(
      _mm256_add_ps(_mm256_mul_ps(xc, _mm256_set1_ps(kLog2e)), _mm256_set1_ps(0.5f)));
  __m256 f = _mm256_sub_ps(xc, _mm256_mul_ps(nf, _mm256_set1_ps(kExpC1)));
  f = _mm256_sub_ps(f, _mm256_mul_ps(nf, _mm256_set1_ps(kExpC2)));
  const __m256 z = _mm256_mul_ps(f, f);
  __m256 p = _mm256_set1_ps(kExpP0);
  p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(kExpP1));
  p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(kExpP2));
  p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(kExpP3));
  p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(kExpP4));
  p = _mm256_add_ps(_mm256_mul_ps(p, f), _mm256_set1_ps(kExpP5));
  const __m256 t = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(p, z), f),
                                 _mm256_set1_ps(1.0f));
  const __m256i n = _mm256_cvttps_epi32(nf);
  const __m256i half = _mm256_srai_epi32(n, 1);
  const __m256i rest = _mm256_sub_epi32(n, half);
  const __m256i bias = _mm256_set1_epi32(127);
  const __m256 s1 =
      _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_add_epi32(half, bias), 23));
  const __m256 s2 =
      _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_add_epi32(rest, bias), 23));
  __m256 r = _mm256_mul_ps(_mm256_mul_ps(t, s1), s2);
  r = _mm256_blendv_ps(r, _mm256_setzero_ps(), _mm256_cmp_ps(x, lo, _CMP_LT_OQ));
  r = _mm256_blendv_ps(r, _mm256_set1_ps(FromBits(kInfBits)),
                       _mm256_cmp_ps(x, hi, _CMP_GT_OQ));
  r = _mm256_blendv_ps(r, _mm256_set1_ps(FromBits(kQNaNBits)),
                       _mm256_cmp_ps(x, x, _CMP_UNORD_Q));
  return r;
}

TAO_TARGET_AVX2 inline __m256 TanhCoreAvx2(__m256 x) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(static_cast<int32_t>(kAbsMask)));
  const __m256 sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(static_cast<int32_t>(kSignMask)));
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 a = _mm256_and_ps(x, abs_mask);
  const __m256 z = _mm256_mul_ps(a, a);
  __m256 p = _mm256_set1_ps(kTanhP0);
  p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(kTanhP1));
  p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(kTanhP2));
  p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(kTanhP3));
  p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(kTanhP4));
  const __m256 small = _mm256_add_ps(_mm256_mul_ps(_mm256_mul_ps(p, z), a), a);
  const __m256 e = ExpCoreAvx2(_mm256_add_ps(a, a));
  const __m256 large =
      _mm256_sub_ps(one, _mm256_div_ps(_mm256_set1_ps(2.0f), _mm256_add_ps(e, one)));
  __m256 r = _mm256_blendv_ps(
      large, small, _mm256_cmp_ps(a, _mm256_set1_ps(kTanhSmall), _CMP_LT_OQ));
  r = _mm256_blendv_ps(r, one,
                       _mm256_cmp_ps(a, _mm256_set1_ps(kTanhClamp), _CMP_GE_OQ));
  r = _mm256_or_ps(r, _mm256_and_ps(x, sign_mask));
  r = _mm256_blendv_ps(r, _mm256_set1_ps(FromBits(kQNaNBits)),
                       _mm256_cmp_ps(x, x, _CMP_UNORD_Q));
  return r;
}

TAO_TARGET_AVX2 inline __m256 ErfCoreAvx2(__m256 x) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(static_cast<int32_t>(kAbsMask)));
  const __m256 sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(static_cast<int32_t>(kSignMask)));
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 a = _mm256_and_ps(x, abs_mask);
  const __m256 z = _mm256_mul_ps(a, a);
  __m256 q = _mm256_set1_ps(kErfT0);
  q = _mm256_add_ps(_mm256_mul_ps(q, z), _mm256_set1_ps(kErfT1));
  q = _mm256_add_ps(_mm256_mul_ps(q, z), _mm256_set1_ps(kErfT2));
  q = _mm256_add_ps(_mm256_mul_ps(q, z), _mm256_set1_ps(kErfT3));
  q = _mm256_add_ps(_mm256_mul_ps(q, z), _mm256_set1_ps(kErfT4));
  q = _mm256_add_ps(_mm256_mul_ps(q, z), _mm256_set1_ps(kErfT5));
  q = _mm256_add_ps(_mm256_mul_ps(q, z), _mm256_set1_ps(kErfT6));
  const __m256 small = _mm256_mul_ps(a, q);
  const __m256 t = _mm256_div_ps(
      one, _mm256_add_ps(_mm256_mul_ps(_mm256_set1_ps(kErfP), a), one));
  __m256 p = _mm256_set1_ps(kErfA5);
  p = _mm256_add_ps(_mm256_mul_ps(p, t), _mm256_set1_ps(kErfA4));
  p = _mm256_add_ps(_mm256_mul_ps(p, t), _mm256_set1_ps(kErfA3));
  p = _mm256_add_ps(_mm256_mul_ps(p, t), _mm256_set1_ps(kErfA2));
  p = _mm256_add_ps(_mm256_mul_ps(p, t), _mm256_set1_ps(kErfA1));
  p = _mm256_mul_ps(p, t);
  const __m256 e = ExpCoreAvx2(_mm256_xor_ps(z, sign_mask));
  const __m256 mid = _mm256_sub_ps(one, _mm256_mul_ps(p, e));
  __m256 r = _mm256_blendv_ps(
      mid, small, _mm256_cmp_ps(a, _mm256_set1_ps(kErfSmall), _CMP_LT_OQ));
  r = _mm256_blendv_ps(r, one,
                       _mm256_cmp_ps(a, _mm256_set1_ps(kErfClamp), _CMP_GE_OQ));
  r = _mm256_or_ps(r, _mm256_and_ps(x, sign_mask));
  r = _mm256_blendv_ps(r, _mm256_set1_ps(FromBits(kQNaNBits)),
                       _mm256_cmp_ps(x, x, _CMP_UNORD_Q));
  return r;
}

TAO_TARGET_AVX2 inline __m256 SigmoidCoreAvx2(__m256 x) {
  const __m256 sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(static_cast<int32_t>(kSignMask)));
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = ExpCoreAvx2(_mm256_xor_ps(x, sign_mask));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

TAO_TARGET_AVX2 inline __m256 GeluCoreAvx2(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = ErfCoreAvx2(_mm256_mul_ps(x, _mm256_set1_ps(kInvSqrt2)));
  return _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(0.5f), x), _mm256_add_ps(one, e));
}

TAO_TARGET_AVX2 inline __m256 SiluCoreAvx2(__m256 x) {
  return _mm256_mul_ps(x, SigmoidCoreAvx2(x));
}

#endif  // TAO_VMATH_X86

}  // namespace

float Exp(float x) { return ExpScalar(x); }
float Tanh(float x) { return TanhScalar(x); }
float Erf(float x) { return ErfScalar(x); }
float Sigmoid(float x) { return SigmoidScalar(x); }
float Gelu(float x) { return GeluScalar(x); }
float Silu(float x) { return SiluScalar(x); }

// Array drivers: 8 lanes per AVX2 iteration, scalar-reference tail (bitwise identical
// by construction, so results never depend on n % 8), scalar loop otherwise. Loads
// and stores are unaligned; in-place (out == x) is safe because each iteration reads
// its elements before writing them.
#if TAO_VMATH_X86
#define TAO_VMATH_DEFINE_VEC(Name, CoreAvx2, Scalar)                        \
  namespace {                                                               \
  TAO_TARGET_AVX2 void Name##Avx2(const float* x, float* out, int64_t n) {  \
    int64_t i = 0;                                                          \
    for (; i + 8 <= n; i += 8) {                                            \
      _mm256_storeu_ps(out + i, CoreAvx2(_mm256_loadu_ps(x + i)));          \
    }                                                                       \
    for (; i < n; ++i) {                                                    \
      out[i] = Scalar(x[i]);                                                \
    }                                                                       \
  }                                                                         \
  } /* namespace */                                                         \
  void Name(const float* x, float* out, int64_t n) {                        \
    if (ActiveSimdBackend() == SimdBackend::kAvx2) {                        \
      Name##Avx2(x, out, n);                                                \
      return;                                                               \
    }                                                                       \
    for (int64_t i = 0; i < n; ++i) {                                       \
      out[i] = Scalar(x[i]);                                                \
    }                                                                       \
  }
#else
#define TAO_VMATH_DEFINE_VEC(Name, CoreAvx2, Scalar)                        \
  void Name(const float* x, float* out, int64_t n) {                        \
    for (int64_t i = 0; i < n; ++i) {                                       \
      out[i] = Scalar(x[i]);                                                \
    }                                                                       \
  }
#endif

TAO_VMATH_DEFINE_VEC(ExpVec, ExpCoreAvx2, ExpScalar)
TAO_VMATH_DEFINE_VEC(TanhVec, TanhCoreAvx2, TanhScalar)
TAO_VMATH_DEFINE_VEC(ErfVec, ErfCoreAvx2, ErfScalar)
TAO_VMATH_DEFINE_VEC(SigmoidVec, SigmoidCoreAvx2, SigmoidScalar)
TAO_VMATH_DEFINE_VEC(GeluVec, GeluCoreAvx2, GeluScalar)
TAO_VMATH_DEFINE_VEC(SiluVec, SiluCoreAvx2, SiluScalar)

#undef TAO_VMATH_DEFINE_VEC

}  // namespace vmath
}  // namespace tao
