// Simulated heterogeneous accelerators.
//
// The TAO paper runs on four NVIDIA GPUs whose vendor kernels legitimately reorder
// floating-point reductions and fuse multiply-adds; that reordering is the *only*
// property of the hardware the protocol interacts with (Sec. 1: "cross-platform
// nondeterminism is intrinsic"). We reproduce it faithfully in software: a
// `DeviceProfile` fixes an accumulation order (sequential, reversed, pairwise tree,
// blocked, strided/interleaved — all orderings that real warp/tile schedules induce),
// an FMA contraction policy, and an intrinsic evaluation flavour. Running the same
// FP32 operator under two profiles yields bitwise-different results whose deviation is
// exactly IEEE-754 non-associativity, the same mechanism as real GPUs, with the same
// ~u·sqrt(k) relative magnitudes.
//
// Every reduction in the operator library (src/ops) routes through this interface, so
// a model executed on DeviceRegistry::Fleet() exhibits per-operator cross-device error
// distributions that the calibration pipeline (src/calib) measures, exactly as the
// paper's offline calibration does across its GPU fleet.

#ifndef TAO_SRC_DEVICE_DEVICE_H_
#define TAO_SRC_DEVICE_DEVICE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tao {

// How a device's kernels order the partial sums of a reduction.
enum class AccumulationOrder {
  kSequential,    // strict left-to-right; the canonical reference order
  kReversed,      // right-to-left
  kPairwiseTree,  // recursive pairwise halving (tree reduction)
  kBlocked,       // per-block sequential partials, then sequential across partials
  kStrided,       // S interleaved accumulators (warp-lane style), then combine
  // Eight interleaved accumulators with a fixed sequential lane combine — numerically
  // IDENTICAL to kStrided with block=8 in every bit, but named separately because this
  // is the one order a 8-lane FP32 vector unit reproduces natively: profiles carrying
  // it are eligible for the SIMD backend (src/device/simd.h) with bitwise-equal
  // results guaranteed by construction.
  kStridedVector,
};

// How a device evaluates transcendental intrinsics (CUDA math functions are allowed
// vendor-specific ULP error; we model two table entries: a float-native path and a
// compute-in-double-then-round path, which differ in the last ulp). Exp/Tanh/Erf are
// exempt: they route through the pinned vmath polynomials (src/device/vmath.h) on
// every profile so the vectorized hot loops stay bitwise reproducible; the flavour
// still differentiates Log/Sin/Cos/Rsqrt/Pow.
enum class IntrinsicFlavor {
  kFloatNative,
  kDoubleRounded,
};

struct DeviceProfile {
  std::string name;
  AccumulationOrder order = AccumulationOrder::kSequential;
  // Block size for kBlocked, accumulator count for kStrided; ignored otherwise.
  int64_t block = 128;
  // Whether multiply-accumulate steps contract to fused multiply-add (one rounding).
  bool fma = false;
  IntrinsicFlavor intrinsics = IntrinsicFlavor::kFloatNative;

  // True when this profile's reduction order is exactly the fixed 8-lane tree a vector
  // unit executes natively (kStridedVector, or kStrided with block == 8). Only such
  // profiles may take the SIMD reduction path; all others must stay scalar because a
  // vector unit cannot reproduce their association order bit for bit.
  bool vector_eligible() const {
    return order == AccumulationOrder::kStridedVector ||
           (order == AccumulationOrder::kStrided && block == 8);
  }

  // --- Reductions -----------------------------------------------------------------
  // Sum of `xs` in this device's order. This is the sole source of cross-device
  // nondeterminism for reductions.
  float Accumulate(std::span<const float> xs) const;
  // Inner product <a, b> in this device's order and FMA policy.
  float Dot(std::span<const float> a, std::span<const float> b) const;
  // Strided inner product for matmul inner loops: a[i*stride_a], b[i*stride_b].
  float DotStrided(const float* a, int64_t stride_a, const float* b, int64_t stride_b,
                   int64_t n) const;

  // --- Intrinsics -----------------------------------------------------------------
  float Exp(float x) const;
  float Log(float x) const;
  float Sin(float x) const;
  float Cos(float x) const;
  float Tanh(float x) const;
  float Sqrt(float x) const;
  float Rsqrt(float x) const;
  float Pow(float x, float y) const;
  float Erf(float x) const;

  // Maximum ULP error of each intrinsic under this profile, mirroring the CUDA math
  // table the paper cites for theoretical-bound construction.
  double ExpUlp() const;
  double LogUlp() const;
  double TanhUlp() const;
  double SinCosUlp() const;
  double SqrtUlp() const;
  double RsqrtUlp() const;
  double PowUlp() const;
  double ErfUlp() const;
};

// Canonical single-token signature of a fleet's *arithmetic*: a leading vmath
// version token (the pinned transcendental polynomials every profile shares — see
// src/device/vmath.h) followed by one entry per device (name, accumulation order,
// block, FMA policy, intrinsic flavour). Thresholds are calibrated against a
// specific fleet, so serialized threshold files embed this signature and the loader
// can detect that the arithmetic changed underneath a published calibration (which
// requires recalibrating) — whether by fleet composition or by a vmath generation
// bump. Pure relabels that do not change any bit of arithmetic hash identically:
// kStridedVector encodes as kStrided(block=8) — they are the same reduction tree —
// so renaming a profile to mark it vector-eligible does not invalidate existing
// calibrations.
std::string FleetSignature(std::span<const DeviceProfile> fleet);

// The calibration fleet (stand-ins for RTX 4090, RTX 6000, A100, H100) plus the
// canonical reference profile used for deterministic re-execution.
class DeviceRegistry {
 public:
  // Canonical order: strict sequential, no FMA, float-native intrinsics. Challenger
  // re-execution and leaf adjudication use this profile.
  static const DeviceProfile& Reference();
  // The four-device heterogeneous fleet used for calibration and proposer execution.
  static const std::vector<DeviceProfile>& Fleet();
  // Lookup by name (includes "reference"); aborts on unknown name.
  static const DeviceProfile& ByName(const std::string& name);
};

}  // namespace tao

#endif  // TAO_SRC_DEVICE_DEVICE_H_
