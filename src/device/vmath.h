// Bitwise-reproducible vector transcendental math.
//
// The protocol's commitments hash exact FP32 bytes, so the transcendental kernels
// (softmax's exp, gelu's erf, tanh activations) could not be vectorized against libm:
// libm gives no cross-ISA bit guarantee, and a vector expf that differs from scalar
// expf in one lane of one element changes a commitment. This header fixes the
// arithmetic instead of trusting the library: every function is ONE pinned polynomial
// evaluation — fixed coefficients, fixed Horner order, fixed range reduction with
// exact power-of-two scaling — implemented twice, as portable scalar code and as an
// AVX2 body that performs the *same IEEE-754 operations in the same order* eight
// lanes at a time. Scalar and vector paths are therefore bitwise identical by
// construction, on every input, including the tails documented below.
//
// Accuracy versus the infinitely precise result (all empirically swept in
// device_test):
//   Exp   <= 2 ulp   (cephes-style expf polynomial, base-2 range reduction)
//   Tanh  <= 3 ulp   (odd polynomial below 0.625, exp-based identity above)
//   Erf   <= 5 ulp   (odd series below 1, Abramowitz-Stegun 7.1.26 above)
// DeviceProfile's ULP table states 4/4/8 to keep theoretical bounds conservative.
//
// Documented tail behaviour (each clamp is monotone: the clamped value never moves
// against the function's direction at the boundary):
//   Exp:  inputs above 88.722839 return +inf; inputs below -87.336545 return +0.0f
//         (the true value there is denormal; flushing avoids depending on FTZ/DAZ
//         host configuration for the *input-dependent* part of the range while still
//         producing denormals near the low clamp, where they are exact products of
//         normal values). NaN returns the canonical quiet NaN 0x7FC00000.
//   Tanh: |x| >= 9 returns copysign(1, x) (the formula value at 9 is already within
//         one ulp of 1); tanh(+-0) = +-0; NaN returns the canonical quiet NaN.
//   Erf:  |x| >= 4 returns copysign(1, x) (the mid-range formula at 4 rounds to 1.0f
//         exactly, so the clamp is seamless); erf(+-0) = +-0; NaN canonical.
// The seams between polynomial pieces (tanh at 0.625, erf at 1.0) agree to a few ulp
// but are not exactly monotone across the seam; clamp boundaries are.
//
// Dispatch mirrors src/device/simd.h: ActiveSimdBackend() (test override >
// TAO_DISABLE_SIMD > CPUID) picks the AVX2 body when available, and because the two
// bodies are bit-identical this is a speed decision, never a numerics decision —
// unlike the reductions in simd.h these elementwise functions have no ordering
// freedom, so they are safe for EVERY DeviceProfile, not just vector_eligible() ones.

#ifndef TAO_SRC_DEVICE_VMATH_H_
#define TAO_SRC_DEVICE_VMATH_H_

#include <cstdint>

namespace tao {
namespace vmath {

// Version token folded into FleetSignature: the pinned polynomials ARE part of the
// fleet's arithmetic, so changing any coefficient must read as a fleet change and
// invalidate published calibrations (serialize v2 rejects mismatched signatures).
inline constexpr const char* kVmathVersion = "vmath1";

// --- Scalar reference bodies --------------------------------------------------------
// These are the canonical definitions; the AVX2 arrays below reproduce them bit for
// bit. DeviceProfile routes its Exp/Tanh/Erf intrinsics here for every profile, so
// all simulated devices now agree bitwise on transcendentals (reductions remain the
// sole source of cross-device nondeterminism for these ops).
float Exp(float x);
float Tanh(float x);
float Erf(float x);
float Sigmoid(float x);  // 1 / (1 + Exp(-x))
float Gelu(float x);     // (0.5*x) * (1 + Erf(x * (1/sqrt(2))))
float Silu(float x);     // x * Sigmoid(x)

// --- Array forms --------------------------------------------------------------------
// out[i] = f(x[i]) for i in [0, n). In-place safe (out may equal x). The AVX2 body
// processes 8 lanes per iteration and finishes the tail with the scalar reference,
// which is bitwise identical, so results never depend on n % 8 or on dispatch.
void ExpVec(const float* x, float* out, int64_t n);
void TanhVec(const float* x, float* out, int64_t n);
void ErfVec(const float* x, float* out, int64_t n);
void SigmoidVec(const float* x, float* out, int64_t n);
void GeluVec(const float* x, float* out, int64_t n);
void SiluVec(const float* x, float* out, int64_t n);

}  // namespace vmath
}  // namespace tao

#endif  // TAO_SRC_DEVICE_VMATH_H_
