// Merkle trees over leaf digests with logarithmic inclusion proofs.
//
// TAO commits to weight tensors (root r_w), graph operator signatures (root r_g), and
// calibrated thresholds (root r_e) as Merkle trees (Sec. 5.2); dispute rounds carry
// inclusion proofs for every leaf a subgraph references, which the coordinator verifies
// and meters (Fig. 8 counts these checks).

#ifndef TAO_SRC_CRYPTO_MERKLE_H_
#define TAO_SRC_CRYPTO_MERKLE_H_

#include <cstddef>
#include <vector>

#include "src/crypto/sha256.h"

namespace tao {

// One sibling digest along the leaf-to-root path.
struct MerkleProofStep {
  Digest sibling;
  // True when the sibling is the right child (i.e. the running hash is the left input).
  bool sibling_on_right = false;
};

struct MerkleProof {
  size_t leaf_index = 0;
  std::vector<MerkleProofStep> path;
};

class MerkleTree {
 public:
  // Builds a tree over the given leaf digests. Odd nodes at a level are promoted by
  // duplicating the last digest (Bitcoin-style padding). Empty input is permitted and
  // yields the hash of the empty string as root.
  explicit MerkleTree(std::vector<Digest> leaves);

  const Digest& root() const { return root_; }
  size_t leaf_count() const { return leaf_count_; }

  MerkleProof ProveInclusion(size_t leaf_index) const;

  // Verifies that `leaf` at `proof.leaf_index` is included under `root`.
  static bool VerifyInclusion(const Digest& root, const Digest& leaf, const MerkleProof& proof);

 private:
  size_t leaf_count_ = 0;
  // levels_[0] = leaves, levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
  Digest root_;
};

}  // namespace tao

#endif  // TAO_SRC_CRYPTO_MERKLE_H_
