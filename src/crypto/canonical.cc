#include "src/crypto/canonical.h"

#include <cstring>

namespace tao {

void AppendU32(std::vector<uint8_t>& buffer, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buffer.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void AppendU64(std::vector<uint8_t>& buffer, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buffer.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void AppendF32(std::vector<uint8_t>& buffer, float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU32(buffer, bits);
}

std::vector<uint8_t> CanonicalBytes(const Tensor& tensor) {
  std::vector<uint8_t> bytes;
  bytes.reserve(16 + tensor.shape().dims().size() * 8 + static_cast<size_t>(tensor.numel()) * 4);
  // dtype tag: 0 = f32.
  AppendU32(bytes, 0);
  AppendU32(bytes, static_cast<uint32_t>(tensor.shape().rank()));
  for (const int64_t d : tensor.shape().dims()) {
    AppendU64(bytes, static_cast<uint64_t>(d));
  }
  for (const float v : tensor.values()) {
    AppendF32(bytes, v);
  }
  return bytes;
}

Digest HashTensor(const Tensor& tensor) {
  const std::vector<uint8_t> bytes = CanonicalBytes(tensor);
  return Sha256::Hash(std::span<const uint8_t>(bytes.data(), bytes.size()));
}

Digest HashTensorList(const std::vector<Tensor>& tensors) {
  Sha256 ctx;
  for (const Tensor& t : tensors) {
    const Digest d = HashTensor(t);
    ctx.Update(std::span<const uint8_t>(d.data(), d.size()));
  }
  return ctx.Finalize();
}

Digest HashSignature(const std::string& signature) { return Sha256::Hash(signature); }

}  // namespace tao
