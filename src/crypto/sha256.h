// SHA-256 (FIPS 180-4), implemented from scratch.
//
// The TAO protocol hashes weight tensors, operator signatures, tensor interfaces, and
// commitment tuples with SHA-256 (Sec. 2.2, Sec. 5.2). A streaming context is exposed
// so large tensors can be hashed without copying.

#ifndef TAO_SRC_CRYPTO_SHA256_H_
#define TAO_SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace tao {

using Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void Update(std::span<const uint8_t> data);
  void Update(const std::string& data);
  // Finalizes and returns the digest. The context must not be reused afterwards.
  Digest Finalize();

  static Digest Hash(std::span<const uint8_t> data);
  static Digest Hash(const std::string& data);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  uint64_t bit_length_ = 0;
  size_t buffer_size_ = 0;
  bool finalized_ = false;
};

// Lowercase hex encoding of a digest.
std::string DigestToHex(const Digest& digest);

// Concatenate-and-hash of two digests; the Merkle internal-node combiner.
Digest HashPair(const Digest& left, const Digest& right);

}  // namespace tao

#endif  // TAO_SRC_CRYPTO_SHA256_H_
