#include "src/crypto/merkle.h"

#include "src/util/check.h"

namespace tao {

MerkleTree::MerkleTree(std::vector<Digest> leaves) : leaf_count_(leaves.size()) {
  if (leaves.empty()) {
    root_ = Sha256::Hash(std::string());
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const std::vector<Digest>& below = levels_.back();
    std::vector<Digest> level;
    level.reserve((below.size() + 1) / 2);
    for (size_t i = 0; i < below.size(); i += 2) {
      const Digest& left = below[i];
      const Digest& right = (i + 1 < below.size()) ? below[i + 1] : below[i];
      level.push_back(HashPair(left, right));
    }
    levels_.push_back(std::move(level));
  }
  root_ = levels_.back()[0];
}

MerkleProof MerkleTree::ProveInclusion(size_t leaf_index) const {
  TAO_CHECK_LT(leaf_index, leaf_count_);
  MerkleProof proof;
  proof.leaf_index = leaf_index;
  size_t index = leaf_index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::vector<Digest>& nodes = levels_[level];
    const size_t sibling_index = (index % 2 == 0) ? index + 1 : index - 1;
    MerkleProofStep step;
    // Odd tail: the node is paired with itself.
    step.sibling = (sibling_index < nodes.size()) ? nodes[sibling_index] : nodes[index];
    step.sibling_on_right = (index % 2 == 0);
    proof.path.push_back(step);
    index /= 2;
  }
  return proof;
}

bool MerkleTree::VerifyInclusion(const Digest& root, const Digest& leaf,
                                 const MerkleProof& proof) {
  Digest running = leaf;
  for (const MerkleProofStep& step : proof.path) {
    running = step.sibling_on_right ? HashPair(running, step.sibling)
                                    : HashPair(step.sibling, running);
  }
  return running == root;
}

}  // namespace tao
