// Canonical serialization ("canon(·)" in the paper) and hashing of tensors and
// operator signatures. Canonical bytes encode dtype tag, rank, dims, and raw
// little-endian element bytes so that two bitwise-identical tensors hash equal and any
// value/shape/dtype change breaks the digest (Sec. 5.2).

#ifndef TAO_SRC_CRYPTO_CANONICAL_H_
#define TAO_SRC_CRYPTO_CANONICAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/tensor/tensor.h"

namespace tao {

// Canonical byte encoding of a tensor.
std::vector<uint8_t> CanonicalBytes(const Tensor& tensor);

Digest HashTensor(const Tensor& tensor);

// Hash of an ordered list of tensors: H(H(t0) || H(t1) || ...). Used for the interface
// commitments h_In / h_Out of a subgraph.
Digest HashTensorList(const std::vector<Tensor>& tensors);

// Hash a canonical operator signature string sigma(n).
Digest HashSignature(const std::string& signature);

// Appends primitive values to a byte buffer in little-endian order.
void AppendU32(std::vector<uint8_t>& buffer, uint32_t value);
void AppendU64(std::vector<uint8_t>& buffer, uint64_t value);
void AppendF32(std::vector<uint8_t>& buffer, float value);

}  // namespace tao

#endif  // TAO_SRC_CRYPTO_CANONICAL_H_
