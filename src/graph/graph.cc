#include "src/graph/graph.h"

#include <sstream>

#include "src/util/check.h"

namespace tao {

NodeId Graph::AddInput(const std::string& label, Shape shape) {
  Node node;
  node.id = static_cast<NodeId>(nodes_.size());
  node.kind = NodeKind::kInput;
  node.op = "input";
  node.label = label;
  node.shape = std::move(shape);
  input_nodes_.push_back(node.id);
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

NodeId Graph::AddParam(const std::string& label, Tensor value) {
  Node node;
  node.id = static_cast<NodeId>(nodes_.size());
  node.kind = NodeKind::kParam;
  node.op = "param";
  node.label = label;
  node.shape = value.shape();
  node.value = std::move(value);
  param_nodes_.push_back(node.id);
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

NodeId Graph::AddOp(const std::string& op, const std::string& label, std::vector<NodeId> inputs,
                    Attrs attrs) {
  const OpKernel& kernel = OpRegistry::Instance().Get(op);
  std::vector<Shape> input_shapes;
  input_shapes.reserve(inputs.size());
  for (const NodeId in : inputs) {
    TAO_CHECK(in >= 0 && in < static_cast<NodeId>(nodes_.size()))
        << "bad input node id " << in << " for op " << label;
    input_shapes.push_back(nodes_[static_cast<size_t>(in)].shape);
  }
  Node node;
  node.id = static_cast<NodeId>(nodes_.size());
  node.kind = NodeKind::kOp;
  node.op = op;
  node.label = label;
  node.inputs = std::move(inputs);
  node.shape = kernel.InferShape(input_shapes, attrs);
  node.attrs = std::move(attrs);
  op_nodes_.push_back(node.id);
  nodes_.push_back(std::move(node));
  // By default the newest op is the graph output; SetOutput can override.
  output_ = nodes_.back().id;
  return nodes_.back().id;
}

void Graph::SetOutput(NodeId id) {
  TAO_CHECK(id >= 0 && id < static_cast<NodeId>(nodes_.size()));
  TAO_CHECK(nodes_[static_cast<size_t>(id)].kind == NodeKind::kOp);
  output_ = id;
}

NodeId Graph::output() const {
  TAO_CHECK_GE(output_, 0) << "graph has no output";
  return output_;
}

const Node& Graph::node(NodeId id) const {
  TAO_CHECK(id >= 0 && id < static_cast<NodeId>(nodes_.size())) << "bad node id " << id;
  return nodes_[static_cast<size_t>(id)];
}

int64_t Graph::TotalFlops() const {
  int64_t total = 0;
  for (const NodeId id : op_nodes_) {
    total += NodeFlops(id);
  }
  return total;
}

int64_t Graph::NodeFlops(NodeId id) const {
  const Node& n = node(id);
  if (n.kind != NodeKind::kOp) {
    return 0;
  }
  const OpKernel& kernel = OpRegistry::Instance().Get(n.op);
  std::vector<Shape> input_shapes;
  input_shapes.reserve(n.inputs.size());
  for (const NodeId in : n.inputs) {
    input_shapes.push_back(node(in).shape);
  }
  return kernel.Flops(input_shapes, n.shape, n.attrs);
}

std::string Graph::NodeSignature(NodeId id) const {
  const Node& n = node(id);
  std::ostringstream out;
  out << "name=" << n.label << ";kind=" << static_cast<int>(n.kind) << ";op=" << n.op
      << ";inputs=[";
  for (size_t i = 0; i < n.inputs.size(); ++i) {
    if (i > 0) {
      out << " ";
    }
    out << n.inputs[i];
  }
  out << "];attrs={" << n.attrs.Canonical() << "};shape=" << n.shape.ToString();
  return out.str();
}

}  // namespace tao
