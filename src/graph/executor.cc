#include "src/graph/executor.h"

#include "src/util/check.h"

namespace tao {

ExecutionTrace Executor::Run(const std::vector<Tensor>& inputs,
                             const ExecutorOptions& options) const {
  return RunPerturbed(inputs, {}, options);
}

Tensor Executor::RunOutput(const std::vector<Tensor>& inputs) const {
  const ExecutionTrace trace = Run(inputs);
  return trace.value(graph_.output());
}

ExecutionTrace Executor::RunPerturbed(const std::vector<Tensor>& inputs,
                                      const std::vector<Perturbation>& perturbations,
                                      const ExecutorOptions& options) const {
  TAO_CHECK_EQ(inputs.size(), graph_.input_nodes().size());
  ExecutionTrace trace;
  trace.values.resize(static_cast<size_t>(graph_.num_nodes()));
  if (options.with_bounds) {
    trace.bounds.resize(static_cast<size_t>(graph_.num_nodes()));
    trace.has_bounds = true;
  }

  for (size_t i = 0; i < inputs.size(); ++i) {
    const NodeId id = graph_.input_nodes()[i];
    TAO_CHECK(inputs[i].shape() == graph_.node(id).shape)
        << "input " << i << " shape " << inputs[i].shape().ToString() << " != declared "
        << graph_.node(id).shape.ToString();
    trace.values[static_cast<size_t>(id)] = inputs[i];
  }
  for (const NodeId id : graph_.param_nodes()) {
    trace.values[static_cast<size_t>(id)] = graph_.node(id).value;
  }

  for (const NodeId id : graph_.op_nodes()) {
    const Node& node = graph_.node(id);
    const OpKernel& kernel = OpRegistry::Instance().Get(node.op);
    std::vector<Tensor> op_inputs;
    op_inputs.reserve(node.inputs.size());
    for (const NodeId in : node.inputs) {
      op_inputs.push_back(trace.values[static_cast<size_t>(in)]);
    }
    const OpContext ctx{device_, op_inputs, node.attrs};
    Tensor out = kernel.Forward(ctx);
    TAO_CHECK(out.shape() == node.shape)
        << node.label << ": forward produced " << out.shape().ToString() << ", expected "
        << node.shape.ToString();

    if (options.with_bounds) {
      const BoundContext bctx{device_, op_inputs,     out,
                              node.attrs, options.bound_mode, options.lambda};
      trace.bounds[static_cast<size_t>(id)] = kernel.Bound(bctx);
    }

    // Adversarial injection happens after the operator completes, before the tensor is
    // published to downstream consumers (Sec. 4.2: h_v <- h_v + Delta_v).
    for (const Perturbation& p : perturbations) {
      if (p.node == id) {
        TAO_CHECK(p.delta.shape() == out.shape());
        Tensor perturbed = out.Clone();
        auto pv = perturbed.mutable_values();
        const auto dv = p.delta.values();
        for (size_t i = 0; i < pv.size(); ++i) {
          pv[i] += dv[i];
        }
        out = perturbed;
      }
    }
    trace.values[static_cast<size_t>(id)] = std::move(out);
  }
  return trace;
}

}  // namespace tao
