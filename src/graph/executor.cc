#include "src/graph/executor.h"

#include <atomic>
#include <memory>
#include <utility>

#include "src/runtime/parallel_for.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/thread_pool.h"
#include "src/util/check.h"

namespace tao {

ExecutionTrace Executor::Run(const std::vector<Tensor>& inputs,
                             const ExecutorOptions& options) const {
  return RunInternal(inputs, {}, options, /*keep_values=*/true, nullptr);
}

Tensor Executor::RunOutput(const std::vector<Tensor>& inputs, const ExecutorOptions& options,
                           TensorArena::Stats* arena_stats) const {
  ExecutorOptions output_only = options;
  output_only.with_bounds = false;  // bounds require the full trace
  const ExecutionTrace trace =
      RunInternal(inputs, {}, output_only, /*keep_values=*/false, arena_stats);
  return trace.value(graph_.output());
}

ExecutionTrace Executor::RunPerturbed(const std::vector<Tensor>& inputs,
                                      const std::vector<Perturbation>& perturbations,
                                      const ExecutorOptions& options) const {
  return RunInternal(inputs, perturbations, options, /*keep_values=*/true, nullptr);
}

ExecutionTrace Executor::RunInternal(const std::vector<Tensor>& inputs,
                                     const std::vector<Perturbation>& perturbations,
                                     const ExecutorOptions& options, bool keep_values,
                                     TensorArena::Stats* arena_stats) const {
  TAO_CHECK_EQ(inputs.size(), graph_.input_nodes().size());
  ExecutionTrace trace;
  trace.values.resize(static_cast<size_t>(graph_.num_nodes()));
  if (options.with_bounds) {
    trace.bounds.resize(static_cast<size_t>(graph_.num_nodes()));
    trace.has_bounds = true;
  }

  for (size_t i = 0; i < inputs.size(); ++i) {
    const NodeId id = graph_.input_nodes()[i];
    TAO_CHECK(inputs[i].shape() == graph_.node(id).shape)
        << "input " << i << " shape " << inputs[i].shape().ToString() << " != declared "
        << graph_.node(id).shape.ToString();
    trace.values[static_cast<size_t>(id)] = inputs[i];
  }
  for (const NodeId id : graph_.param_nodes()) {
    trace.values[static_cast<size_t>(id)] = graph_.node(id).value;
  }

  const std::vector<NodeId>& ops = graph_.op_nodes();
  const int64_t num_ops = static_cast<int64_t>(ops.size());

  // Runtime handles. num_threads == 1 leaves both null: the scheduler degenerates to
  // the seed's sequential loop and kernels run their loops inline.
  ThreadPool* pool = options.num_threads > 1 ? &ThreadPool::Shared() : nullptr;
  const ParallelFor parallel(pool, options.num_threads);
  const ParallelFor* parallel_handle = pool != nullptr ? &parallel : nullptr;

  // Arena reuse is only sound when dead intermediates really die: a full trace
  // retains every value, so the arena is wired up on the output-only path alone.
  const bool release_dead = !keep_values && options.reuse_buffers;
  std::unique_ptr<TensorArena> arena;
  if (release_dead) {
    arena = std::make_unique<TensorArena>();
  }

  // Liveness ref-counts for the arena's release of dead intermediates: consumer
  // edges per node id. Built only when buffers can actually be recycled.
  std::vector<std::atomic<int32_t>> remaining_uses;
  if (release_dead) {
    remaining_uses = std::vector<std::atomic<int32_t>>(static_cast<size_t>(graph_.num_nodes()));
    for (int64_t k = 0; k < num_ops; ++k) {
      for (const NodeId in : graph_.node(ops[static_cast<size_t>(k)]).inputs) {
        remaining_uses[static_cast<size_t>(in)].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  const NodeId output = graph_.output();
  const auto execute_node = [&](int32_t k) {
    const NodeId id = ops[static_cast<size_t>(k)];
    const Node& node = graph_.node(id);
    const OpKernel& kernel = OpRegistry::Instance().Get(node.op);
    {
      std::vector<Tensor> op_inputs;
      op_inputs.reserve(node.inputs.size());
      for (const NodeId in : node.inputs) {
        op_inputs.push_back(trace.values[static_cast<size_t>(in)]);
      }
      const OpContext ctx{device_, op_inputs, node.attrs, parallel_handle, arena.get()};
      Tensor out = kernel.Forward(ctx);
      TAO_CHECK(out.shape() == node.shape)
          << node.label << ": forward produced " << out.shape().ToString() << ", expected "
          << node.shape.ToString();

      if (options.with_bounds) {
        const BoundContext bctx{device_,    op_inputs,          out,
                                node.attrs, options.bound_mode, options.lambda,
                                parallel_handle};
        trace.bounds[static_cast<size_t>(id)] = kernel.Bound(bctx);
      }

      // Adversarial injection happens after the operator completes, before the tensor
      // is published to downstream consumers (Sec. 4.2: h_v <- h_v + Delta_v).
      for (const Perturbation& p : perturbations) {
        if (p.node == id) {
          TAO_CHECK(p.delta.shape() == out.shape());
          Tensor perturbed = out.Clone();
          auto pv = perturbed.mutable_values();
          const auto dv = p.delta.values();
          for (size_t i = 0; i < pv.size(); ++i) {
            pv[i] += dv[i];
          }
          out = perturbed;
        }
      }
      trace.values[static_cast<size_t>(id)] = std::move(out);
      // op_inputs goes out of scope here: its aliases must die before the release
      // step below, or a dead input would look live and escape recycling.
    }
    if (release_dead) {
      for (const NodeId in : node.inputs) {
        if (remaining_uses[static_cast<size_t>(in)].fetch_sub(
                1, std::memory_order_acq_rel) != 1) {
          continue;
        }
        if (graph_.node(in).kind != NodeKind::kOp || in == output) {
          continue;  // caller/graph-owned storage, or the value we must return
        }
        arena->Recycle(std::move(trace.values[static_cast<size_t>(in)]));
        trace.values[static_cast<size_t>(in)] = Tensor();
      }
    }
  };

  if (pool == nullptr) {
    // Sequential path: the canonical topological order needs no dependency
    // bookkeeping — this is the seed interpreter, byte for byte.
    for (int64_t k = 0; k < num_ops; ++k) {
      execute_node(static_cast<int32_t>(k));
    }
  } else {
    // Dependency structure over op-node indices (positions in the canonical
    // topological order). pending[k] counts producer edges from other op nodes;
    // inputs/params are materialized above and never pend.
    std::vector<int32_t> op_index(static_cast<size_t>(graph_.num_nodes()), -1);
    for (int64_t k = 0; k < num_ops; ++k) {
      op_index[static_cast<size_t>(ops[static_cast<size_t>(k)])] = static_cast<int32_t>(k);
    }
    std::vector<std::vector<int32_t>> consumers(static_cast<size_t>(num_ops));
    std::vector<int32_t> pending(static_cast<size_t>(num_ops), 0);
    for (int64_t k = 0; k < num_ops; ++k) {
      const Node& node = graph_.node(ops[static_cast<size_t>(k)]);
      for (const NodeId in : node.inputs) {
        const int32_t producer = op_index[static_cast<size_t>(in)];
        if (producer >= 0) {
          consumers[static_cast<size_t>(producer)].push_back(static_cast<int32_t>(k));
          ++pending[static_cast<size_t>(k)];
        }
      }
    }
    const Scheduler scheduler(pool, options.num_threads);
    scheduler.Run(std::move(consumers), std::move(pending), execute_node);
  }

  if (arena_stats != nullptr && arena != nullptr) {
    *arena_stats = arena->stats();
  }
  return trace;
}

}  // namespace tao
