#include "src/graph/executor.h"

#include <atomic>
#include <limits>
#include <memory>
#include <utility>

#include "src/runtime/parallel_for.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/thread_pool.h"
#include "src/util/check.h"

namespace tao {

ExecutionTrace Executor::Run(const std::vector<Tensor>& inputs,
                             const ExecutorOptions& options) const {
  return RunInternal(inputs, {}, options, /*keep_values=*/true, nullptr);
}

Tensor Executor::RunOutput(const std::vector<Tensor>& inputs, const ExecutorOptions& options,
                           TensorArena::Stats* arena_stats) const {
  ExecutorOptions output_only = options;
  output_only.with_bounds = false;  // bounds require the full trace
  const ExecutionTrace trace =
      RunInternal(inputs, {}, output_only, /*keep_values=*/false, arena_stats);
  return trace.value(graph_.output());
}

ExecutionTrace Executor::RunPerturbed(const std::vector<Tensor>& inputs,
                                      const std::vector<Perturbation>& perturbations,
                                      const ExecutorOptions& options) const {
  return RunInternal(inputs, perturbations, options, /*keep_values=*/true, nullptr);
}

ExecutionTrace Executor::RunInternal(const std::vector<Tensor>& inputs,
                                     const std::vector<Perturbation>& perturbations,
                                     const ExecutorOptions& options, bool keep_values,
                                     TensorArena::Stats* arena_stats) const {
  std::vector<BatchItem> items(1);
  items[0].inputs = &inputs;
  items[0].perturbations = perturbations.empty() ? nullptr : &perturbations;
  items[0].keep_values = keep_values;
  std::vector<ExecutionTrace> traces = RunBatch(items, options, arena_stats);
  return std::move(traces[0]);
}

std::vector<Tensor> Executor::RunOutputBatch(
    const std::vector<std::vector<Tensor>>& batch_inputs, const ExecutorOptions& options,
    TensorArena::Stats* arena_stats) const {
  std::vector<BatchItem> items(batch_inputs.size());
  for (size_t i = 0; i < batch_inputs.size(); ++i) {
    items[i].inputs = &batch_inputs[i];
  }
  ExecutorOptions output_only = options;
  output_only.with_bounds = false;
  const std::vector<ExecutionTrace> traces = RunBatch(items, output_only, arena_stats);
  std::vector<Tensor> outputs;
  outputs.reserve(traces.size());
  for (const ExecutionTrace& trace : traces) {
    outputs.push_back(trace.value(graph_.output()));
  }
  return outputs;
}

std::vector<ExecutionTrace> Executor::RunBatch(const std::vector<BatchItem>& items,
                                               const ExecutorOptions& options,
                                               TensorArena::Stats* arena_stats) const {
  const size_t num_items = items.size();
  std::vector<ExecutionTrace> traces(num_items);
  if (num_items == 0) {
    return traces;
  }

  const size_t num_nodes = static_cast<size_t>(graph_.num_nodes());
  const std::vector<NodeId>& ops = graph_.op_nodes();
  const int64_t num_ops = static_cast<int64_t>(ops.size());
  // Per-lane node space: the graph's operators plus one epilogue node that runs the
  // lane's on_complete callback (commitment checks etc.) inside the DAG.
  const int64_t stride = num_ops + 1;
  TAO_CHECK(static_cast<int64_t>(num_items) * stride <
            static_cast<int64_t>(std::numeric_limits<int32_t>::max()))
      << "batch too large for int32 scheduler node indices";

  for (size_t i = 0; i < num_items; ++i) {
    const BatchItem& item = items[i];
    TAO_CHECK(item.inputs != nullptr);
    TAO_CHECK_EQ(item.inputs->size(), graph_.input_nodes().size());
    ExecutionTrace& trace = traces[i];
    trace.values.resize(num_nodes);
    if (options.with_bounds && item.keep_values) {
      trace.bounds.resize(num_nodes);
      trace.has_bounds = true;
    }
    for (size_t j = 0; j < item.inputs->size(); ++j) {
      const NodeId id = graph_.input_nodes()[j];
      TAO_CHECK((*item.inputs)[j].shape() == graph_.node(id).shape)
          << "lane " << i << " input " << j << " shape "
          << (*item.inputs)[j].shape().ToString() << " != declared "
          << graph_.node(id).shape.ToString();
      trace.values[static_cast<size_t>(id)] = (*item.inputs)[j];
    }
    // Weights are shared: the copies below alias the graph's storage.
    for (const NodeId id : graph_.param_nodes()) {
      trace.values[static_cast<size_t>(id)] = graph_.node(id).value;
    }
  }

  // Runtime handles. num_threads == 1 leaves both null: the scheduler degenerates to
  // the seed's sequential interpreter, lane after lane.
  ThreadPool* pool = options.num_threads > 1 ? &ThreadPool::Shared() : nullptr;
  const ParallelFor parallel(pool, options.num_threads);
  const ParallelFor* parallel_handle = pool != nullptr ? &parallel : nullptr;

  // One arena serves every recycling lane, so a buffer dying in one lane can be
  // adopted by another. VALUE reuse is only sound when dead intermediates really
  // die: full-trace lanes retain every value and never recycle outputs. The arena
  // still exists for pure keep-values runs under `reuse_buffers`, because kernels
  // recycle their per-chunk WORKSPACES (and bound scratch, via BoundContext)
  // through it even when every node value is retained.
  std::vector<char> release_dead(num_items, 0);
  bool any_release = false;
  for (size_t i = 0; i < num_items; ++i) {
    release_dead[i] = (!items[i].keep_values && options.reuse_buffers) ? 1 : 0;
    any_release = any_release || release_dead[i];
  }
  std::unique_ptr<TensorArena> arena;
  if (options.reuse_buffers) {
    arena = std::make_unique<TensorArena>();
  }

  // Liveness ref-counts (consumer edges per node id) for the arena's release of dead
  // intermediates, tracked per lane. The edge counts are a property of the graph,
  // counted once.
  std::vector<int32_t> base_uses;
  std::vector<std::vector<std::atomic<int32_t>>> remaining_uses(num_items);
  if (any_release) {
    base_uses.assign(num_nodes, 0);
    for (int64_t k = 0; k < num_ops; ++k) {
      for (const NodeId in : graph_.node(ops[static_cast<size_t>(k)]).inputs) {
        ++base_uses[static_cast<size_t>(in)];
      }
    }
    for (size_t i = 0; i < num_items; ++i) {
      if (!release_dead[i]) {
        continue;
      }
      remaining_uses[i] = std::vector<std::atomic<int32_t>>(num_nodes);
      for (size_t n = 0; n < num_nodes; ++n) {
        remaining_uses[i][n].store(base_uses[n], std::memory_order_relaxed);
      }
    }
  }

  const NodeId output = graph_.output();
  const auto execute_node = [&](size_t item_index, int64_t k) {
    const BatchItem& item = items[item_index];
    ExecutionTrace& trace = traces[item_index];
    const DeviceProfile& device = item.device != nullptr ? *item.device : device_;
    const NodeId id = ops[static_cast<size_t>(k)];
    const Node& node = graph_.node(id);
    const OpKernel& kernel = OpRegistry::Instance().Get(node.op);
    {
      std::vector<Tensor> op_inputs;
      op_inputs.reserve(node.inputs.size());
      for (const NodeId in : node.inputs) {
        op_inputs.push_back(trace.values[static_cast<size_t>(in)]);
      }
      const OpContext ctx{device, op_inputs, node.attrs, parallel_handle, arena.get()};
      Tensor out = kernel.Forward(ctx);
      TAO_CHECK(out.shape() == node.shape)
          << node.label << ": forward produced " << out.shape().ToString() << ", expected "
          << node.shape.ToString();

      if (options.with_bounds && item.keep_values) {
        const BoundContext bctx{device,     op_inputs,          out,
                                node.attrs, options.bound_mode, options.lambda,
                                parallel_handle, arena.get()};
        trace.bounds[static_cast<size_t>(id)] = kernel.Bound(bctx);
      }

      // Adversarial injection happens after the operator completes, before the tensor
      // is published to downstream consumers (Sec. 4.2: h_v <- h_v + Delta_v).
      if (item.perturbations != nullptr) {
        for (const Perturbation& p : *item.perturbations) {
          if (p.node == id) {
            TAO_CHECK(p.delta.shape() == out.shape());
            Tensor perturbed = out.Clone();
            auto pv = perturbed.mutable_values();
            const auto dv = p.delta.values();
            for (size_t v = 0; v < pv.size(); ++v) {
              pv[v] += dv[v];
            }
            out = perturbed;
          }
        }
      }
      trace.values[static_cast<size_t>(id)] = std::move(out);
      // op_inputs goes out of scope here: its aliases must die before the release
      // step below, or a dead input would look live and escape recycling.
    }
    if (release_dead[item_index]) {
      for (const NodeId in : node.inputs) {
        if (remaining_uses[item_index][static_cast<size_t>(in)].fetch_sub(
                1, std::memory_order_acq_rel) != 1) {
          continue;
        }
        if (graph_.node(in).kind != NodeKind::kOp || in == output) {
          continue;  // caller/graph-owned storage, or the value we must return
        }
        arena->Recycle(std::move(trace.values[static_cast<size_t>(in)]));
        trace.values[static_cast<size_t>(in)] = Tensor();
      }
    }
  };
  const auto execute_epilogue = [&](size_t item_index) {
    if (items[item_index].on_complete) {
      items[item_index].on_complete(item_index, traces[item_index]);
    }
  };

  if (pool == nullptr) {
    // Sequential path: lanes run back-to-back, each in the canonical topological
    // order — byte for byte the seed interpreter applied once per lane.
    for (size_t i = 0; i < num_items; ++i) {
      for (int64_t k = 0; k < num_ops; ++k) {
        execute_node(i, k);
      }
      execute_epilogue(i);
    }
  } else {
    // Dependency structure over op-node indices (positions in the canonical
    // topological order), computed once and replicated per lane at offset
    // lane * stride. pending[g] counts producer edges from other op nodes;
    // inputs/params are materialized above and never pend. Each lane's sink
    // operators feed its epilogue node, so the epilogue runs exactly when the lane
    // has fully executed — possibly while other lanes are still in flight.
    std::vector<int32_t> op_index(num_nodes, -1);
    for (int64_t k = 0; k < num_ops; ++k) {
      op_index[static_cast<size_t>(ops[static_cast<size_t>(k)])] = static_cast<int32_t>(k);
    }
    std::vector<std::vector<int32_t>> op_consumers(static_cast<size_t>(num_ops));
    std::vector<int32_t> op_pending(static_cast<size_t>(num_ops), 0);
    for (int64_t k = 0; k < num_ops; ++k) {
      const Node& node = graph_.node(ops[static_cast<size_t>(k)]);
      for (const NodeId in : node.inputs) {
        const int32_t producer = op_index[static_cast<size_t>(in)];
        if (producer >= 0) {
          op_consumers[static_cast<size_t>(producer)].push_back(static_cast<int32_t>(k));
          ++op_pending[static_cast<size_t>(k)];
        }
      }
    }
    int32_t num_sinks = 0;
    for (int64_t k = 0; k < num_ops; ++k) {
      if (op_consumers[static_cast<size_t>(k)].empty()) {
        ++num_sinks;
      }
    }

    const size_t total = num_items * static_cast<size_t>(stride);
    std::vector<std::vector<int32_t>> consumers(total);
    std::vector<int32_t> pending(total);
    for (size_t i = 0; i < num_items; ++i) {
      const int32_t offset = static_cast<int32_t>(i * static_cast<size_t>(stride));
      const int32_t epilogue = offset + static_cast<int32_t>(num_ops);
      for (int64_t k = 0; k < num_ops; ++k) {
        const size_t g = static_cast<size_t>(offset + k);
        std::vector<int32_t>& out_edges = consumers[g];
        out_edges.reserve(op_consumers[static_cast<size_t>(k)].size() + 1);
        for (const int32_t consumer : op_consumers[static_cast<size_t>(k)]) {
          out_edges.push_back(offset + consumer);
        }
        if (op_consumers[static_cast<size_t>(k)].empty()) {
          out_edges.push_back(epilogue);
        }
        pending[g] = op_pending[static_cast<size_t>(k)];
      }
      pending[static_cast<size_t>(epilogue)] = num_sinks;
    }

    const Scheduler scheduler(pool, options.num_threads);
    scheduler.Run(std::move(consumers), std::move(pending), [&](int32_t g) {
      const size_t item_index = static_cast<size_t>(g) / static_cast<size_t>(stride);
      const int64_t k = static_cast<int64_t>(g) % stride;
      if (k == num_ops) {
        execute_epilogue(item_index);
      } else {
        execute_node(item_index, k);
      }
    });
  }

  if (arena_stats != nullptr && arena != nullptr) {
    *arena_stats = arena->stats();
  }
  return traces;
}

}  // namespace tao
