// Verifiable subgraph extraction (Sec. 5.2): contiguous slices of the canonical
// topological operator order, their live-in/live-out frontiers (Eq. 13-14), canonical
// N-way partitioning for the dispute game, and slice re-execution from committed
// boundary tensors.

#ifndef TAO_SRC_GRAPH_SUBGRAPH_H_
#define TAO_SRC_GRAPH_SUBGRAPH_H_

#include <map>
#include <vector>

#include "src/device/device.h"
#include "src/graph/graph.h"

namespace tao {

// Half-open index range [begin, end) into Graph::op_nodes() — a contiguous slice of
// operators in the canonical topological order.
struct Slice {
  int64_t begin = 0;
  int64_t end = 0;

  int64_t size() const { return end - begin; }
  bool operator==(const Slice& other) const {
    return begin == other.begin && end == other.end;
  }
};

struct Frontier {
  // In(S): external producers feeding S — graph inputs or operators before the slice.
  std::vector<NodeId> live_in;
  // Parameter nodes referenced by S (committed separately under r_w; carried by
  // Merkle inclusion proof rather than by value).
  std::vector<NodeId> params;
  // Out(S): operators inside S whose values are consumed outside S (or the output).
  std::vector<NodeId> live_out;
};

// Computes In(S)/Out(S) by a linear scan, exactly as the paper's runtime does.
Frontier ComputeFrontier(const Graph& graph, const Slice& slice);

// Canonical deterministic partition of a slice into at most `n` contiguous children of
// near-equal operator count (larger remainders go to the earlier children). Both
// proposer and challenger derive the identical partition from (slice, n).
std::vector<Slice> PartitionSlice(const Slice& slice, int64_t n);

// Re-executes the operators of `slice` on `device`, reading live-in values from
// `boundary` (params come from the graph). Returns values for every op in the slice.
// `num_threads > 1` splits kernel outer loops across the shared runtime pool
// (intra-op); the slice's operators still run in canonical order, and values are
// bitwise identical for any thread count.
std::map<NodeId, Tensor> ExecuteSlice(const Graph& graph, const DeviceProfile& device,
                                      const Slice& slice,
                                      const std::map<NodeId, Tensor>& boundary,
                                      int num_threads = 1);

// Total forward FLOPs of the slice's operators.
int64_t SliceFlops(const Graph& graph, const Slice& slice);

}  // namespace tao

#endif  // TAO_SRC_GRAPH_SUBGRAPH_H_
