// Random graph generator for property-based testing: builds seeded, well-formed DAGs
// mixing elementwise arithmetic, activations, reductions, normalizations, matmuls, and
// data movement. Used by the fuzz suites to check executor/subgraph/bound/dispute
// invariants on shapes no hand-written model exercises.

#ifndef TAO_SRC_GRAPH_RANDOM_GRAPH_H_
#define TAO_SRC_GRAPH_RANDOM_GRAPH_H_

#include <memory>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace tao {

struct RandomGraphOptions {
  int64_t num_ops = 30;
  int64_t width = 24;      // feature dimension of the flowing [rows, width] tensors
  int64_t rows = 4;
  uint64_t seed = 0xf022;  // graph structure + parameter seed
};

struct RandomGraphResult {
  std::shared_ptr<Graph> graph;
  // Generates a compatible input for the graph's single input node.
  Tensor SampleInput(Rng& rng) const;
  Shape input_shape;
};

// Builds a connected DAG of approximately `num_ops` operators over 2-D tensors.
// Guarantees: single input, single output, every op reachable from the input, and all
// intermediate values numerically tame (normalizations interleaved so activations
// cannot blow up).
RandomGraphResult BuildRandomGraph(const RandomGraphOptions& options = {});

}  // namespace tao

#endif  // TAO_SRC_GRAPH_RANDOM_GRAPH_H_
