#include "src/graph/random_graph.h"

#include <cmath>

#include "src/util/check.h"

namespace tao {

Tensor RandomGraphResult::SampleInput(Rng& rng) const {
  return Tensor::Randn(input_shape, rng);
}

RandomGraphResult BuildRandomGraph(const RandomGraphOptions& options) {
  auto graph = std::make_shared<Graph>();
  Rng rng(options.seed);
  const int64_t width = options.width;
  const int64_t rows = options.rows;
  const Shape flow_shape{rows, width};

  const NodeId input = graph->AddInput("x", flow_shape);
  // Pool of nodes carrying [rows, width] tensors that later ops may consume.
  std::vector<NodeId> pool = {input};
  auto pick = [&]() -> NodeId { return pool[rng.NextBounded(pool.size())]; };

  int64_t since_norm = 0;
  for (int64_t i = 0; i < options.num_ops; ++i) {
    const std::string label = "rand" + std::to_string(i);
    NodeId produced = -1;
    // Interleave a normalization every few ops to keep magnitudes tame.
    const uint64_t kind = (since_norm >= 4) ? 9 : rng.NextBounded(12);
    switch (kind) {
      case 0: {  // binary arithmetic with a fresh parameter
        const NodeId p = graph->AddParam(label + ".p", Tensor::Randn(Shape{width}, rng, 0.3f));
        const char* ops[] = {"add", "sub", "mul"};
        produced = graph->AddOp(ops[rng.NextBounded(3)], label, {pick(), p});
        break;
      }
      case 1: {  // binary between two pool members
        produced = graph->AddOp(rng.NextBounded(2) == 0 ? "add" : "mul", label,
                                {pick(), pick()});
        break;
      }
      case 2: {  // activation
        const char* ops[] = {"relu", "gelu", "silu", "tanh"};
        produced = graph->AddOp(ops[rng.NextBounded(4)], label, {pick()});
        break;
      }
      case 3: {  // softmax over the feature axis
        Attrs attrs;
        attrs.Set("axis", static_cast<int64_t>(-1));
        produced = graph->AddOp("softmax", label, {pick()}, attrs);
        break;
      }
      case 4: {  // linear width -> width
        const float scale = 1.0f / std::sqrt(static_cast<float>(width));
        const NodeId w =
            graph->AddParam(label + ".w", Tensor::Randn(Shape{width, width}, rng, scale));
        const NodeId b = graph->AddParam(label + ".b", Tensor::Zeros(Shape{width}));
        produced = graph->AddOp("linear", label, {pick(), w, b});
        break;
      }
      case 5: {  // matmul with a parameter matrix
        const float scale = 1.0f / std::sqrt(static_cast<float>(width));
        const NodeId w =
            graph->AddParam(label + ".w", Tensor::Randn(Shape{width, width}, rng, scale));
        produced = graph->AddOp("matmul", label, {pick(), w});
        break;
      }
      case 6: {  // transpose round-trip (keeps shape via double transpose)
        Attrs perm;
        perm.Set("perm", std::vector<int64_t>{1, 0});
        const NodeId t = graph->AddOp("transpose", label + ".t", {pick()}, perm);
        produced = graph->AddOp("transpose", label, {t}, perm);
        break;
      }
      case 7: {  // reshape round-trip
        Attrs flat;
        flat.Set("shape", std::vector<int64_t>{rows * width});
        const NodeId f = graph->AddOp("reshape", label + ".flat", {pick()}, flat);
        Attrs back;
        back.Set("shape", std::vector<int64_t>{rows, width});
        produced = graph->AddOp("reshape", label, {f}, back);
        break;
      }
      case 8: {  // slice-concat identity (exercises multi-input data movement)
        Attrs left;
        left.Set("axis", static_cast<int64_t>(1));
        left.Set("start", static_cast<int64_t>(0));
        left.Set("end", width / 2);
        Attrs right;
        right.Set("axis", static_cast<int64_t>(1));
        right.Set("start", width / 2);
        right.Set("end", width);
        const NodeId src = pick();
        const NodeId a = graph->AddOp("slice", label + ".l", {src}, left);
        const NodeId b = graph->AddOp("slice", label + ".r", {src}, right);
        Attrs cat;
        cat.Set("axis", static_cast<int64_t>(1));
        produced = graph->AddOp("concat", label, {a, b}, cat);
        break;
      }
      case 9: {  // layer_norm (the magnitude stabilizer)
        const NodeId w = graph->AddParam(label + ".w", Tensor::Full(Shape{width}, 1.0f));
        const NodeId b = graph->AddParam(label + ".b", Tensor::Zeros(Shape{width}));
        Attrs attrs;
        attrs.Set("eps", 1e-5);
        produced = graph->AddOp("layer_norm", label, {pick(), w, b}, attrs);
        since_norm = -1;
        break;
      }
      case 10: {  // rms_norm
        const NodeId w = graph->AddParam(label + ".w", Tensor::Full(Shape{width}, 1.0f));
        Attrs attrs;
        attrs.Set("eps", 1e-6);
        produced = graph->AddOp("rms_norm", label, {pick(), w}, attrs);
        since_norm = -1;
        break;
      }
      default: {  // residual add of two pool members through a tanh squash
        const NodeId squashed = graph->AddOp("tanh", label + ".sq", {pick()});
        produced = graph->AddOp("add", label, {squashed, pick()});
        break;
      }
    }
    ++since_norm;
    pool.push_back(produced);
  }
  // Funnel everything into a single output: mean of the last value with a final norm.
  const NodeId w = graph->AddParam("out.w", Tensor::Full(Shape{width}, 1.0f));
  const NodeId b = graph->AddParam("out.b", Tensor::Zeros(Shape{width}));
  Attrs ln;
  ln.Set("eps", 1e-5);
  graph->AddOp("layer_norm", "out", {pool.back(), w, b}, ln);

  RandomGraphResult result;
  result.graph = graph;
  result.input_shape = flow_shape;
  return result;
}

}  // namespace tao
