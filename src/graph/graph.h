// Operator-granular dataflow graph IR (the analogue of the paper's FX-traced PyTorch
// graph, Sec. 2.2 Phase 0). Nodes are appended in execution order, so node-id order IS
// the canonical topological order the dispute game partitions over. Three node kinds:
//   kInput — user-provided tensors (the x in y = G(x));
//   kParam — committed weights, merkleized into r_w;
//   kOp    — primitive tensor operators dispatched through the OpRegistry.

#ifndef TAO_SRC_GRAPH_GRAPH_H_
#define TAO_SRC_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ops/attrs.h"
#include "src/ops/op_kernel.h"
#include "src/tensor/tensor.h"

namespace tao {

using NodeId = int32_t;

enum class NodeKind { kInput, kParam, kOp };

struct Node {
  NodeId id = -1;
  NodeKind kind = NodeKind::kOp;
  std::string op;     // kernel name for kOp nodes; "input"/"param" otherwise
  std::string label;  // human-readable name, e.g. "layer3.attn.softmax"
  std::vector<NodeId> inputs;
  Attrs attrs;
  Shape shape;   // output shape
  Tensor value;  // parameter payload for kParam nodes
};

class Graph {
 public:
  Graph() { RegisterAllOps(); }

  NodeId AddInput(const std::string& label, Shape shape);
  NodeId AddParam(const std::string& label, Tensor value);
  // Infers the output shape via the kernel registry and validates input arity.
  NodeId AddOp(const std::string& op, const std::string& label, std::vector<NodeId> inputs,
               Attrs attrs = {});

  void SetOutput(NodeId id);
  NodeId output() const;

  const Node& node(NodeId id) const;
  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  const std::vector<Node>& nodes() const { return nodes_; }

  // Ids of operator nodes in canonical topological order (the set V of the paper).
  const std::vector<NodeId>& op_nodes() const { return op_nodes_; }
  int64_t num_ops() const { return static_cast<int64_t>(op_nodes_.size()); }

  // Ids of input / parameter nodes in insertion order.
  const std::vector<NodeId>& input_nodes() const { return input_nodes_; }
  const std::vector<NodeId>& param_nodes() const { return param_nodes_; }

  // FLOPs of one forward execution (sum of per-operator kernel FLOP counts).
  int64_t TotalFlops() const;
  int64_t NodeFlops(NodeId id) const;

  // Canonical operator signature sigma(n) = canon(label, kind, op, inputs, attrs);
  // hashed into the graph-structure Merkle tree r_g (Sec. 5.2).
  std::string NodeSignature(NodeId id) const;

 private:
  std::vector<Node> nodes_;
  std::vector<NodeId> op_nodes_;
  std::vector<NodeId> input_nodes_;
  std::vector<NodeId> param_nodes_;
  NodeId output_ = -1;
};

}  // namespace tao

#endif  // TAO_SRC_GRAPH_GRAPH_H_
