#include "src/graph/subgraph.h"

#include <set>

#include "src/runtime/parallel_for.h"
#include "src/runtime/thread_pool.h"
#include "src/util/check.h"

namespace tao {

Frontier ComputeFrontier(const Graph& graph, const Slice& slice) {
  TAO_CHECK(slice.begin >= 0 && slice.end <= graph.num_ops() && slice.begin < slice.end)
      << "bad slice [" << slice.begin << "," << slice.end << ")";
  const std::vector<NodeId>& ops = graph.op_nodes();
  std::set<NodeId> members;
  for (int64_t i = slice.begin; i < slice.end; ++i) {
    members.insert(ops[static_cast<size_t>(i)]);
  }

  Frontier frontier;
  std::set<NodeId> live_in_seen;
  std::set<NodeId> param_seen;
  for (int64_t i = slice.begin; i < slice.end; ++i) {
    const Node& node = graph.node(ops[static_cast<size_t>(i)]);
    for (const NodeId in : node.inputs) {
      if (members.count(in) > 0) {
        continue;
      }
      const Node& producer = graph.node(in);
      if (producer.kind == NodeKind::kParam) {
        if (param_seen.insert(in).second) {
          frontier.params.push_back(in);
        }
      } else if (live_in_seen.insert(in).second) {
        frontier.live_in.push_back(in);
      }
    }
  }

  // Out(S): members consumed by any node after the slice, plus the graph output.
  std::set<NodeId> consumed_outside;
  for (const Node& node : graph.nodes()) {
    if (node.kind != NodeKind::kOp || members.count(node.id) > 0) {
      continue;
    }
    for (const NodeId in : node.inputs) {
      if (members.count(in) > 0) {
        consumed_outside.insert(in);
      }
    }
  }
  for (int64_t i = slice.begin; i < slice.end; ++i) {
    const NodeId id = ops[static_cast<size_t>(i)];
    if (consumed_outside.count(id) > 0 || id == graph.output()) {
      frontier.live_out.push_back(id);
    }
  }
  return frontier;
}

std::vector<Slice> PartitionSlice(const Slice& slice, int64_t n) {
  TAO_CHECK_GT(n, 1);
  const int64_t total = slice.size();
  const int64_t children = std::min(n, total);
  std::vector<Slice> parts;
  parts.reserve(static_cast<size_t>(children));
  const int64_t base = total / children;
  const int64_t remainder = total % children;
  int64_t cursor = slice.begin;
  for (int64_t j = 0; j < children; ++j) {
    const int64_t len = base + (j < remainder ? 1 : 0);
    parts.push_back(Slice{cursor, cursor + len});
    cursor += len;
  }
  TAO_CHECK_EQ(cursor, slice.end);
  return parts;
}

std::map<NodeId, Tensor> ExecuteSlice(const Graph& graph, const DeviceProfile& device,
                                      const Slice& slice,
                                      const std::map<NodeId, Tensor>& boundary,
                                      int num_threads) {
  const std::vector<NodeId>& ops = graph.op_nodes();
  ThreadPool* pool = num_threads > 1 ? &ThreadPool::Shared() : nullptr;
  const ParallelFor parallel(pool, num_threads);
  const ParallelFor* parallel_handle = pool != nullptr ? &parallel : nullptr;
  std::map<NodeId, Tensor> values;
  for (int64_t i = slice.begin; i < slice.end; ++i) {
    const Node& node = graph.node(ops[static_cast<size_t>(i)]);
    const OpKernel& kernel = OpRegistry::Instance().Get(node.op);
    std::vector<Tensor> op_inputs;
    op_inputs.reserve(node.inputs.size());
    for (const NodeId in : node.inputs) {
      const auto local = values.find(in);
      if (local != values.end()) {
        op_inputs.push_back(local->second);
        continue;
      }
      const Node& producer = graph.node(in);
      if (producer.kind == NodeKind::kParam) {
        op_inputs.push_back(producer.value);
        continue;
      }
      const auto external = boundary.find(in);
      TAO_CHECK(external != boundary.end())
          << "missing live-in tensor for node " << in << " (" << producer.label << ")";
      op_inputs.push_back(external->second);
    }
    const OpContext ctx{device, op_inputs, node.attrs, parallel_handle};
    values[node.id] = kernel.Forward(ctx);
  }
  return values;
}

int64_t SliceFlops(const Graph& graph, const Slice& slice) {
  const std::vector<NodeId>& ops = graph.op_nodes();
  int64_t total = 0;
  for (int64_t i = slice.begin; i < slice.end; ++i) {
    total += graph.NodeFlops(ops[static_cast<size_t>(i)]);
  }
  return total;
}

}  // namespace tao
