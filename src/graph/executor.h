// Graph execution with per-node traces and optional theoretical-bound co-execution
// (the paper's "FX-based co-execution": one traced run yields both values and tau_theo
// per operator). The device profile parameterizes every reduction/intrinsic, so running
// the same graph under two profiles reproduces cross-device FP divergence.

#ifndef TAO_SRC_GRAPH_EXECUTOR_H_
#define TAO_SRC_GRAPH_EXECUTOR_H_

#include <vector>

#include "src/device/device.h"
#include "src/graph/graph.h"
#include "src/ops/fperror.h"

namespace tao {

// Per-node results of one traced run. `values[id]` is defined for every node (inputs
// and params included); `bounds[id]` only when bounds were requested and the node is an
// operator.
struct ExecutionTrace {
  std::vector<Tensor> values;
  std::vector<DTensor> bounds;
  bool has_bounds = false;

  const Tensor& value(NodeId id) const { return values[static_cast<size_t>(id)]; }
  const DTensor& bound(NodeId id) const { return bounds[static_cast<size_t>(id)]; }
};

struct ExecutorOptions {
  bool with_bounds = false;
  BoundMode bound_mode = BoundMode::kProbabilistic;
  double lambda = kDefaultLambda;
};

class Executor {
 public:
  Executor(const Graph& graph, const DeviceProfile& device)
      : graph_(graph), device_(device) {}

  // Runs the whole graph on `inputs` (one tensor per graph input, in declaration
  // order). Returns the full trace.
  ExecutionTrace Run(const std::vector<Tensor>& inputs, const ExecutorOptions& options = {}) const;

  // Convenience: runs and returns only the output tensor.
  Tensor RunOutput(const std::vector<Tensor>& inputs) const;

  // Overrides applied after each node executes: the malicious proposer of Sec. 4 adds
  // a perturbation Delta_v to the output of node `id` before downstream consumers see
  // it. The perturbed tensor is what lands in the trace (and what gets committed).
  struct Perturbation {
    NodeId node = -1;
    Tensor delta;
  };

  ExecutionTrace RunPerturbed(const std::vector<Tensor>& inputs,
                              const std::vector<Perturbation>& perturbations,
                              const ExecutorOptions& options = {}) const;

 private:
  const Graph& graph_;
  const DeviceProfile& device_;
};

}  // namespace tao

#endif  // TAO_SRC_GRAPH_EXECUTOR_H_
