// Graph execution with per-node traces and optional theoretical-bound co-execution
// (the paper's "FX-based co-execution": one traced run yields both values and tau_theo
// per operator). The device profile parameterizes every reduction/intrinsic, so running
// the same graph under two profiles reproduces cross-device FP divergence.
//
// Execution is a thin facade over the parallel runtime layer (src/runtime/): a
// dependency-counting Scheduler drains operator nodes across the shared ThreadPool
// (inter-op), a ParallelFor handle threaded through OpContext splits hot kernels'
// outer loops (intra-op), and a TensorArena recycles dead intermediates in
// output-only runs. The protocol invariant is bitwise determinism: traces are
// identical for every num_threads and arena setting, because thread count only
// repartitions loop iterations whose outputs are disjoint — commitments and bound
// checks hash exact values, so this is load-bearing, not cosmetic (see
// docs/runtime.md).

#ifndef TAO_SRC_GRAPH_EXECUTOR_H_
#define TAO_SRC_GRAPH_EXECUTOR_H_

#include <functional>
#include <vector>

#include "src/device/device.h"
#include "src/graph/graph.h"
#include "src/ops/fperror.h"
#include "src/runtime/arena.h"

namespace tao {

// Per-node results of one traced run. `values[id]` is defined for every node (inputs
// and params included); `bounds[id]` only when bounds were requested and the node is an
// operator.
struct ExecutionTrace {
  std::vector<Tensor> values;
  std::vector<DTensor> bounds;
  bool has_bounds = false;

  const Tensor& value(NodeId id) const { return values[static_cast<size_t>(id)]; }
  const DTensor& bound(NodeId id) const { return bounds[static_cast<size_t>(id)]; }
};

struct ExecutorOptions {
  bool with_bounds = false;
  BoundMode bound_mode = BoundMode::kProbabilistic;
  double lambda = kDefaultLambda;

  // --- runtime policy ---------------------------------------------------------------
  // Worker count including the calling thread. 1 = the seed's sequential interpreter
  // (exact baseline); >1 enables inter-op scheduling and intra-op loop splitting on
  // the shared pool. Values and bounds are bitwise identical either way.
  int num_threads = 1;
  // Recycle intermediates whose last consumer has executed through a TensorArena.
  // Only effective on the output-only path (RunOutput): full traces retain every
  // value, so nothing is ever dead there.
  bool reuse_buffers = false;
};

class Executor {
 public:
  Executor(const Graph& graph, const DeviceProfile& device)
      : graph_(graph), device_(device) {}

  // Runs the whole graph on `inputs` (one tensor per graph input, in declaration
  // order). Returns the full trace.
  ExecutionTrace Run(const std::vector<Tensor>& inputs, const ExecutorOptions& options = {}) const;

  // Convenience: runs and returns only the output tensor. This path honors
  // `options.reuse_buffers` (dead intermediates are released to the arena as the
  // schedule advances); `arena_stats`, when non-null, receives the arena's
  // allocation/recycle counters for the run.
  Tensor RunOutput(const std::vector<Tensor>& inputs, const ExecutorOptions& options = {},
                   TensorArena::Stats* arena_stats = nullptr) const;

  // Overrides applied after each node executes: the malicious proposer of Sec. 4 adds
  // a perturbation Delta_v to the output of node `id` before downstream consumers see
  // it. The perturbed tensor is what lands in the trace (and what gets committed).
  struct Perturbation {
    NodeId node = -1;
    Tensor delta;
  };

  ExecutionTrace RunPerturbed(const std::vector<Tensor>& inputs,
                              const std::vector<Perturbation>& perturbations,
                              const ExecutorOptions& options = {}) const;

  // --- batched execution --------------------------------------------------------------
  // One lane of a batched run: an independent execution of this graph with its own
  // inputs, optional perturbations, and device profile, sharing the graph's weights
  // (and, with `reuse_buffers`, one TensorArena) with every other lane. All lanes are
  // lowered into a single Scheduler DAG, so node tasks from different lanes interleave
  // in the pool instead of running back-to-back.
  struct BatchItem {
    const std::vector<Tensor>* inputs = nullptr;
    const std::vector<Perturbation>* perturbations = nullptr;  // null = none
    const DeviceProfile* device = nullptr;  // null = the executor's device
    // Retain every node's value (Run semantics). When false the lane is output-only
    // (RunOutput semantics) and its dead intermediates can be arena-recycled.
    bool keep_values = false;
    // Runs as the lane's final DAG node, after every operator of the lane has
    // executed and while other lanes may still be executing — the natural place for
    // per-claim commitment checks. Receives the lane index and the lane's trace.
    std::function<void(size_t item, const ExecutionTrace&)> on_complete;
  };

  // Executes all lanes as one dependency-counting DAG. With num_threads <= 1 this is
  // exactly the lanes run back-to-back in order (the sequential baseline); with more
  // threads lanes interleave. Values are bitwise identical either way, per lane, to
  // an individual Run/RunOutput call with the same options. `arena_stats` aggregates
  // the shared arena's counters across every recycling lane.
  std::vector<ExecutionTrace> RunBatch(const std::vector<BatchItem>& items,
                                       const ExecutorOptions& options = {},
                                       TensorArena::Stats* arena_stats = nullptr) const;

  // Convenience: output-only batched run over B input sets on the executor's device.
  // Element i is bitwise identical to RunOutput(batch_inputs[i], options).
  std::vector<Tensor> RunOutputBatch(const std::vector<std::vector<Tensor>>& batch_inputs,
                                     const ExecutorOptions& options = {},
                                     TensorArena::Stats* arena_stats = nullptr) const;

 private:
  ExecutionTrace RunInternal(const std::vector<Tensor>& inputs,
                             const std::vector<Perturbation>& perturbations,
                             const ExecutorOptions& options, bool keep_values,
                             TensorArena::Stats* arena_stats) const;

  const Graph& graph_;
  const DeviceProfile& device_;
};

}  // namespace tao

#endif  // TAO_SRC_GRAPH_EXECUTOR_H_
